(* Governor robustness: budgets, structured outcomes, cross-domain
   cancellation promptness, and deterministic fault injection. The fault
   seed honors GFQ_FAULT_SEED so CI can sweep unwinding points. *)

module Graph = Gf_graph.Graph
module Generators = Gf_graph.Generators
module Rng = Gf_util.Rng
module Timing = Gf_util.Timing
module Query = Gf_query.Query
module Patterns = Gf_query.Patterns
module Plan = Gf_plan.Plan
module Exec = Gf_exec.Exec
module Counters = Gf_exec.Counters
module Governor = Gf_exec.Governor
module Parallel = Gf_exec.Parallel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fault_seed =
  match Option.bind (Sys.getenv_opt "GFQ_FAULT_SEED") int_of_string_opt with
  | Some s -> s
  | None -> 7

let graph () = Generators.holme_kim (Rng.create 11) ~n:400 ~m_per:5 ~p_triad:0.6 ~recip:0.3

(* High clustering plus planted 8-cliques: the acyclic 4-clique Q5 keeps
   producing tuples for far longer than any deadline used below. *)
let clique_graph () =
  let rng = Rng.create 42 in
  Generators.plant_cliques rng
    (Generators.holme_kim rng ~n:6_000 ~m_per:8 ~p_triad:0.9 ~recip:0.3)
    ~count:120 ~size:8

let identity_wco q = Plan.wco q (Array.init (Query.num_vertices q) Fun.id)

let q5_plan () =
  let q = Patterns.q 5 in
  identity_wco q

let triangle_plan () = identity_wco (Patterns.q 1)

let hj_plan () =
  let q = Patterns.cycle 4 in
  Plan.hash_join q (Plan.wco q [| 0; 1; 2 |]) (Plan.wco q [| 2; 3; 0 |])

let key t = String.concat "," (List.map string_of_int (Array.to_list t))

let is_truncated r o = o = Governor.Truncated r

let test_unlimited_completes () =
  let g = graph () in
  let plan = triangle_plan () in
  let total = Exec.count g plan in
  let c, o = Exec.run_gov g plan in
  check_bool "completed" true (o = Governor.Completed);
  check_int "all outputs" total c.Counters.output;
  check_bool "checks recorded" true (c.Counters.gov_checks > 0)

let test_output_cap_exact () =
  let g = graph () in
  let plan = triangle_plan () in
  let total = Exec.count g plan in
  check_bool "enough matches" true (total > 10);
  List.iter
    (fun cap ->
      let budget = Governor.budget ~max_output:cap () in
      let c, o = Exec.run_gov ~budget g plan in
      check_int (Printf.sprintf "cap %d outputs" cap) (min cap total) c.Counters.output;
      if cap <= total then
        check_bool
          (Printf.sprintf "cap %d truncated" cap)
          true
          (is_truncated Governor.Output_limit o)
      else check_bool (Printf.sprintf "cap %d completed" cap) true (o = Governor.Completed))
    [ 1; total / 2; total; total + 5 ]

let test_truncated_prefix_sequential () =
  (* A sequential truncated run's outputs are exactly a prefix of the full
     run's output stream. *)
  let g = graph () in
  let plan = triangle_plan () in
  let collect budget =
    let out = ref [] in
    let _, o = Exec.run_gov ?budget ~sink:(fun t -> out := key t :: !out) g plan in
    (List.rev !out, o)
  in
  let full, o_full = collect None in
  check_bool "full completed" true (o_full = Governor.Completed);
  let cap = List.length full / 3 in
  let part, o_part = collect (Some (Governor.budget ~max_output:cap ())) in
  check_bool "partial truncated" true (is_truncated Governor.Output_limit o_part);
  check_int "prefix length" cap (List.length part);
  check_bool "prefix consistent" true (part = List.filteri (fun i _ -> i < cap) full)

let test_truncated_subset_parallel () =
  (* Parallel truncation emits some min(cap, total)-sized subset of the full
     result, never an invented tuple and never a duplicate (the query has no
     automorphic duplicates under a WCO identity order). *)
  let g = graph () in
  let plan = triangle_plan () in
  let full = Hashtbl.create 1024 in
  let r_full =
    Parallel.run ~domains:4 ~sink:(fun t -> Hashtbl.replace full (key t) ()) g plan
  in
  check_bool "full completed" true (r_full.Parallel.outcome = Governor.Completed);
  let total = r_full.Parallel.counters.Counters.output in
  let cap = total / 3 in
  let seen = ref [] in
  let r =
    Parallel.run ~domains:4 ~limit:cap ~sink:(fun t -> seen := key t :: !seen) g plan
  in
  check_bool "truncated" true (is_truncated Governor.Output_limit r.Parallel.outcome);
  check_int "exactly cap outputs" cap r.Parallel.counters.Counters.output;
  check_int "sink saw each claim" cap (List.length !seen);
  check_int "domain split adds up" cap
    (Array.fold_left ( + ) 0 r.Parallel.per_domain_output);
  List.iter (fun k -> check_bool "subset of full" true (Hashtbl.mem full k)) !seen;
  let dedup = Hashtbl.create cap in
  List.iter (fun k -> Hashtbl.replace dedup k ()) !seen;
  check_int "no duplicates" cap (Hashtbl.length dedup)

let test_intermediate_cap () =
  let g = clique_graph () in
  let plan = q5_plan () in
  let cap = 1_000 in
  let c, o = Exec.run_gov ~budget:(Governor.budget ~max_intermediate:cap ()) g plan in
  check_bool "truncated" true (is_truncated Governor.Intermediate_limit o);
  (* Sequential: overshoot is bounded by one check cadence. *)
  check_bool "within one cadence" true
    (c.Counters.produced >= cap && c.Counters.produced <= cap + Governor.cadence)

let test_memory_cap () =
  let g = graph () in
  let c, o = Exec.run_gov ~budget:(Governor.budget ~max_bytes:256 ()) g (hj_plan ()) in
  check_bool "build trips byte cap" true (is_truncated Governor.Memory_limit o);
  ignore c;
  let r = Parallel.run ~domains:2 ~budget:(Governor.budget ~max_bytes:128 ()) g (q5_plan ()) in
  check_bool "batch alloc trips byte cap" true
    (is_truncated Governor.Memory_limit r.Parallel.outcome)

let test_byte_release_on_consumption () =
  (* Regression: batch bytes are charged when a morsel batch is allocated
     but must be *released* when the batch is replayed (consumed). Before
     the fix the governor accumulated every allocation, so any query whose
     cumulative batching exceeded [max_bytes] tripped Memory_limit even
     though live memory stayed tiny. Small batches on a triangle query make
     cumulative allocation blow well past the cap while live batches stay
     bounded by [max_local]. *)
  let g = graph () in
  let plan = triangle_plan () in
  let total = Exec.count g plan in
  let cap = 32_768 in
  let chunk = 16 and batch = 16 in
  let r =
    Parallel.run ~domains:1 ~chunk ~batch
      ~budget:(Governor.budget ~max_bytes:cap ())
      g plan
  in
  check_bool "bounded live batches complete" true (r.Parallel.outcome = Governor.Completed);
  check_int "all outputs" total r.Parallel.counters.Counters.output;
  (* Prove the run actually cycled more batch bytes than the cap: every
     morsel beyond the seeded ranges is a replayed batch, each of
     [batch * width * 8] bytes. Without release, this run would have
     tripped. *)
  let width = 3 in
  let ranges = (Gf_graph.Graph.num_vertices g + chunk - 1) / chunk in
  let batches = r.Parallel.counters.Counters.morsels - ranges in
  check_bool "cumulative batch bytes exceed the cap" true (batches * batch * width * 8 > cap)

let test_deadline_promptness () =
  (* The acceptance gate: a 50 ms deadline on a clique-heavy graph returns
     Truncated Deadline promptly at 1 and at 4 domains (mid-steal), with
     counter totals intact and every domain joined. The bound here is looser
     than the benchmarked 150 ms to tolerate loaded CI machines. *)
  let g = clique_graph () in
  let plan = q5_plan () in
  List.iter
    (fun domains ->
      let gov = Governor.create (Governor.budget ~deadline_s:0.05 ~max_output:1_000_000 ()) in
      let t0 = Timing.now_s () in
      let r = Parallel.run ~domains ~gov g plan in
      let dt = Timing.now_s () -. t0 in
      check_bool
        (Printf.sprintf "%d domains: deadline outcome" domains)
        true
        (is_truncated Governor.Deadline r.Parallel.outcome);
      check_bool (Printf.sprintf "%d domains: token observed" domains) true
        (Governor.tripped gov);
      check_bool (Printf.sprintf "%d domains: prompt (%.0f ms)" domains (dt *. 1000.)) true
        (dt < 1.0);
      check_bool (Printf.sprintf "%d domains: produced something" domains) true
        (r.Parallel.counters.Counters.produced > 0);
      check_int
        (Printf.sprintf "%d domains: per-domain counters" domains)
        domains
        (Array.length r.Parallel.per_domain);
      check_int
        (Printf.sprintf "%d domains: output totals add up" domains)
        r.Parallel.counters.Counters.output
        (Array.fold_left ( + ) 0 r.Parallel.per_domain_output))
    [ 1; 4 ]

let test_cancel_from_another_domain () =
  let g = clique_graph () in
  let plan = q5_plan () in
  let gov = Governor.create Governor.unlimited in
  let canceller =
    Domain.spawn (fun () ->
        let t0 = Timing.now_s () in
        while Timing.now_s () -. t0 < 0.02 do
          Domain.cpu_relax ()
        done;
        Governor.cancel gov)
  in
  let r = Parallel.run ~domains:2 ~gov g plan in
  Domain.join canceller;
  check_bool "cancelled" true (is_truncated Governor.Cancelled r.Parallel.outcome)

let test_fault_mid_extend () =
  (* Deterministic unwinding mid-intersection: the injected fault fires at
     the first governor check at or past a seeded produced-tuple count. *)
  let g = clique_graph () in
  let plan = q5_plan () in
  let rng = Rng.create fault_seed in
  let at = 1 + Rng.int rng 20_000 in
  let fault = { Governor.at_tuple = at; operator = "extend" } in
  let c, o = Exec.run_gov ~fault g plan in
  (match o with
  | Governor.Failed e ->
      check_bool "operator recorded" true (e.Governor.operator = "extend")
  | _ -> Alcotest.fail "expected a Failed outcome");
  check_bool "fired at the seeded point" true
    (c.Counters.produced >= at && c.Counters.produced <= at + (2 * Governor.cadence));
  (* Parallel: same fault, all domains unwind and join; counter totals
     survive the failure. *)
  let r = Parallel.run ~domains:4 ~fault g plan in
  (match r.Parallel.outcome with
  | Governor.Failed _ -> ()
  | _ -> Alcotest.fail "expected a parallel Failed outcome");
  check_bool "parallel counters flushed" true (r.Parallel.counters.Counters.produced >= at)

let test_fault_mid_hash_build () =
  let g = graph () in
  let plan = hj_plan () in
  let fault = { Governor.at_tuple = 5; operator = "hash-build" } in
  let r = Parallel.run ~domains:2 ~fault g plan in
  (match r.Parallel.outcome with
  | Governor.Failed _ -> ()
  | _ -> Alcotest.fail "expected failure during the shared build");
  (* Clean unwinding: the same plan runs to completion immediately after. *)
  let r2 = Parallel.run ~domains:2 g plan in
  check_bool "rerun completes" true (r2.Parallel.outcome = Governor.Completed);
  check_int "rerun count intact" (Exec.count g plan) r2.Parallel.counters.Counters.output

(* Two labeled anchors [a] (label 1) and [b] (label 2), each pointing at
   its own block of label-0 targets — [overlap] of them shared, plus
   [private_each] private per anchor — and the single edge [a -> b]. The
   labeled triangle below scans exactly one tuple off that edge and then
   closes with one intersection over both (huge) adjacency lists. *)
let anchored_graph ~overlap ~private_each =
  let n = 2 + overlap + (2 * private_each) in
  let vlabel = Array.make n 0 in
  vlabel.(0) <- 1;
  vlabel.(1) <- 2;
  let edges = ref [ (0, 1, 0) ] in
  for i = 0 to overlap - 1 do
    let v = 2 + i in
    edges := (0, v, 0) :: (1, v, 0) :: !edges
  done;
  for i = 0 to private_each - 1 do
    edges := (0, 2 + overlap + i, 0) :: !edges;
    edges := (1, 2 + overlap + private_each + i, 0) :: !edges
  done;
  Graph.build ~num_vlabels:3 ~num_elabels:1 ~vlabel ~edges:(Array.of_list !edges)

let anchored_triangle () =
  Query.create ~num_vertices:3 ~vlabels:[| 1; 2; 0 |]
    ~edges:
      [|
        { Query.src = 0; dst = 1; label = 0 };
        { Query.src = 0; dst = 2; label = 0 };
        { Query.src = 1; dst = 2; label = 0 };
      |]
    ()

let test_tick_granularity () =
  (* Regression for deadline granularity inside one E/I intersection. The
     closing intersection here scans 100k adjacency entries and produces
     nothing, while the scan produced a single tuple — far less than one
     check cadence. Before work-based ticking the governor never looked
     during (or after) the intersection, so an at_tuple=1 fault and an
     already-expired deadline were both silently outrun: the run came back
     Completed. With [tick_work] the scanned list length itself drains the
     check fuel. Fully deterministic — no wall-clock assertions. *)
  let g = anchored_graph ~overlap:0 ~private_each:50_000 in
  let plan = identity_wco (anchored_triangle ()) in
  check_int "the query itself is empty" 0 (Exec.count g plan);
  let fault = { Governor.at_tuple = 1; operator = "granularity" } in
  let _, o = Exec.run_gov ~fault g plan in
  (match o with
  | Governor.Failed e ->
      check_bool "fault operator recorded" true (e.Governor.operator = "granularity")
  | _ -> Alcotest.fail "fault must be seen inside the unproductive intersection");
  let _, o = Exec.run_gov ~budget:(Governor.budget ~deadline_s:0.0 ()) g plan in
  check_bool "expired deadline seen mid-intersection" true
    (is_truncated Governor.Deadline o)

let test_segmented_intersection () =
  (* Adjacency lists longer than the segmentation threshold (8192): the
     k-way intersection is computed over sub-slices of its smallest input.
     Both kernels must still find exactly the shared targets, and a tripped
     budget must unwind before the (well-known) full result is emitted. *)
  let overlap = 9_000 and private_each = 2_000 in
  let g = anchored_graph ~overlap ~private_each in
  let plan = identity_wco (anchored_triangle ()) in
  let collect ?leapfrog () =
    let rows = ref [] in
    let _, o =
      Exec.run_gov ?leapfrog ~sink:(fun t -> rows := Array.copy t :: !rows) g plan
    in
    check_bool "completed" true (o = Governor.Completed);
    List.sort compare !rows
  in
  let pairwise = collect () in
  let lf = collect ~leapfrog:true () in
  check_int "pairwise finds every shared target" overlap (List.length pairwise);
  check_bool "leapfrog agrees with pairwise" true (pairwise = lf);
  let c, o = Exec.run_gov ~budget:(Governor.budget ~deadline_s:0.0 ()) g plan in
  check_bool "deadline trips inside the segmented intersection" true
    (is_truncated Governor.Deadline o);
  check_bool "tripped before the full result" true (c.Counters.output < overlap)

let test_fault_seed_sweep () =
  (* GFQ_FAULT_SEED sweep: wherever the seeded fault lands, a Failed run
     reports only rows the clean run reports and no duplicates, and a run
     the fault misses entirely (at_tuple past the produced total) is exact.
     No budget is set, so Truncated is impossible. Sequential and 2-domain
     parallel both hold the guarantee. *)
  let g = graph () in
  let plan = triangle_plan () in
  let full = Hashtbl.create 4096 in
  let full_n = ref 0 in
  let _, o =
    Exec.run_gov
      ~sink:(fun t ->
        Hashtbl.replace full (key t) ();
        incr full_n)
      g plan
  in
  check_bool "reference completed" true (o = Governor.Completed);
  for s = fault_seed to fault_seed + 9 do
    let rng = Rng.create s in
    let at = 1 + Rng.int rng 6_000 in
    let fault = { Governor.at_tuple = at; operator = "sweep" } in
    let tag what = Printf.sprintf "seed %d: %s" s what in
    let seen = ref [] in
    let _, o = Exec.run_gov ~fault ~sink:(fun t -> seen := key t :: !seen) g plan in
    List.iter (fun k -> check_bool (tag "seq subset of full") true (Hashtbl.mem full k)) !seen;
    let dedup = Hashtbl.create 64 in
    List.iter (fun k -> Hashtbl.replace dedup k ()) !seen;
    check_int (tag "seq no duplicates") (List.length !seen) (Hashtbl.length dedup);
    (match o with
    | Governor.Completed -> check_int (tag "untripped run exact") !full_n (List.length !seen)
    | Governor.Failed _ -> check_bool (tag "failed run emits no more than full") true
        (List.length !seen <= !full_n)
    | Governor.Truncated _ -> Alcotest.fail (tag "no budget: Truncated impossible"));
    let seen_p = ref [] in
    let r = Parallel.run ~domains:2 ~fault ~sink:(fun t -> seen_p := key t :: !seen_p) g plan in
    List.iter
      (fun k -> check_bool (tag "par subset of full") true (Hashtbl.mem full k))
      !seen_p;
    match r.Parallel.outcome with
    | Governor.Completed -> check_int (tag "par untripped exact") !full_n (List.length !seen_p)
    | Governor.Failed _ -> ()
    | Governor.Truncated _ -> Alcotest.fail (tag "par: no budget: Truncated impossible")
  done

let test_sink_exception_releases_mutex () =
  (* A sink that throws mid-run must not leave the sink mutex locked: the
     other domain would deadlock on its next emit and the run never return. *)
  let g = graph () in
  let plan = triangle_plan () in
  let calls = ref 0 in
  let sink _ =
    incr calls;
    if !calls = 50 then failwith "sink blew up"
  in
  let r = Parallel.run ~domains:2 ~sink g plan in
  (match r.Parallel.outcome with
  | Governor.Failed e -> check_bool "worker fault" true (e.Governor.operator = "worker")
  | _ -> Alcotest.fail "expected the sink failure to surface");
  check_bool "sink was reached" true (!calls >= 50);
  let r2 = Parallel.run ~domains:2 ~sink:(fun _ -> ()) g plan in
  check_bool "rerun completes" true (r2.Parallel.outcome = Governor.Completed)

let suite =
  [
    ( "governor",
      [
        Alcotest.test_case "unlimited completes" `Quick test_unlimited_completes;
        Alcotest.test_case "output cap exact" `Quick test_output_cap_exact;
        Alcotest.test_case "truncated prefix (seq)" `Quick test_truncated_prefix_sequential;
        Alcotest.test_case "truncated subset (par)" `Quick test_truncated_subset_parallel;
        Alcotest.test_case "intermediate cap" `Quick test_intermediate_cap;
        Alcotest.test_case "memory cap" `Quick test_memory_cap;
        Alcotest.test_case "byte release on consumption" `Quick
          test_byte_release_on_consumption;
        Alcotest.test_case "deadline promptness" `Quick test_deadline_promptness;
        Alcotest.test_case "cancel from another domain" `Quick test_cancel_from_another_domain;
        Alcotest.test_case "fault mid-extend" `Quick test_fault_mid_extend;
        Alcotest.test_case "fault mid-hash-build" `Quick test_fault_mid_hash_build;
        Alcotest.test_case "tick granularity mid-intersection" `Quick test_tick_granularity;
        Alcotest.test_case "segmented intersection correct" `Quick
          test_segmented_intersection;
        Alcotest.test_case "fault seed sweep" `Quick test_fault_seed_sweep;
        Alcotest.test_case "sink exception frees mutex" `Quick test_sink_exception_releases_mutex;
      ] );
  ]
