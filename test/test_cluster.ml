(* The cluster layer: shard protocol, topology parsing, ranged-scan
   partitioning, the worker hook, and the coordinator's failure ladder —
   replica failover, per-shard breakers, hedging, and honest partial
   results. End-to-end tests run real servers on unix sockets inside this
   process; the kill -9 variants live in the multi-process soak
   ([gfq soak --topology]), where SIGKILL cannot take the test runner
   down with it. *)

module Gf = Graphflow
module Breaker = Gf_server.Breaker
module Ladder = Gf_server.Ladder
module Service = Gf_server.Service
module Server = Gf_server.Server
module Wire = Gf_server.Wire
module Governor = Gf.Governor
module Proto = Gf_cluster.Proto
module Topology = Gf_cluster.Topology
module Worker = Gf_cluster.Worker
module Coordinator = Gf_cluster.Coordinator
module Cfault = Gf_cluster.Cfault

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let has hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn = 0 || at 0

let graph () =
  Gf.Generators.holme_kim (Gf.Rng.create 11) ~n:300 ~m_per:4 ~p_triad:0.6 ~recip:0.3

let triangle = Gf.Patterns.q 1
let triangle_text = "a1->a2, a2->a3, a1->a3"

let sorted_rows rows = List.sort compare (List.map Array.to_list rows)

let reference db q =
  let rows = ref [] in
  let c, o = Gf.Db.run_gov ~sink:(fun r -> rows := Array.copy r :: !rows) db q in
  check_bool "reference completed" true (o = Governor.Completed);
  (sorted_rows !rows, c.Gf.Counters.output)

(* --- protocol ---------------------------------------------------------- *)

let test_proto_roundtrip () =
  (match Proto.parse_hello (Proto.hello_req ~node:"w3" ~role:"worker") with
  | Ok h ->
      check_int "proto" Proto.version h.Proto.p_proto;
      check_string "node" "w3" h.Proto.p_node;
      check_string "role" "worker" h.Proto.p_role
  | Error m -> Alcotest.fail m);
  check_bool "future proto parses" true
    (match Proto.parse_hello "hello proto=99 node=x role=y" with
    | Ok h -> h.Proto.p_proto = 99
    | Error _ -> false);
  check_bool "missing proto refused" true
    (Result.is_error (Proto.parse_hello "hello node=x"));
  let resp = Proto.hello_resp ~node:"w0" ~n:10 ~m:20 ~graph_version:3 ~clock_us:1234 in
  check_bool "hello resp n" true (Proto.json_int resp "n" = Some 10);
  check_bool "hello resp clock" true (Proto.json_int resp "clock_us" = Some 1234);
  check_bool "hello resp m" true (Proto.json_int resp "m" = Some 20);
  check_bool "hello resp gv" true (Proto.json_int resp "graph_version" = Some 3);
  let mm = Proto.version_mismatch ~node:"w0" ~theirs:99 in
  check_bool "mismatch structured" true
    (has mm "\"ok\":false" && has mm "\"error\":\"version_mismatch\"" && has mm "\"theirs\":99");
  (* Shard request line: part + options + query text, parsed back into a
     Service.request carrying the part. *)
  let line =
    Proto.shard_req ~part:(1, 4) ~timeout_ms:250 ~max_rows:10 ~rows:true triangle_text
  in
  (match Proto.parse_shard line with
  | Ok req ->
      check_bool "part" true (req.Service.part = Some (1, 4));
      check_bool "timeout" true (req.Service.timeout_ms = Some 250);
      check_bool "max_rows" true (req.Service.max_rows = Some 10);
      check_bool "rows" true req.Service.collect_rows;
      check_string "text preserved" triangle_text req.Service.text
  | Error m -> Alcotest.fail m);
  check_bool "bad part refused" true
    (Result.is_error (Proto.parse_part "part=4/4"));
  check_bool "degenerate part refused" true
    (Result.is_error (Proto.parse_part "part=0/0"));
  check_bool "shard without part refused" true
    (Result.is_error (Proto.parse_shard "shard q=Q1"))

let test_run_resp_shape () =
  let r =
    Proto.run_resp ~id:7 ~outcome:"partial" ~matches:41 ~shards:4 ~incomplete:[ 2 ]
      ~failovers:1 ~hedges:0 ~retries:3 ~exec_s:0.25 ~rows:[] ()
  in
  check_bool "ok" true (has r "\"ok\":true");
  check_bool "outcome" true (has r "\"outcome\":\"partial\"");
  check_bool "incomplete named" true (has r "\"incomplete_shards\":[2]");
  check_bool "matches" true (Proto.json_int r "matches" = Some 41);
  check_bool "failovers" true (Proto.json_int r "failovers" = Some 1);
  check_bool "no rows key when absent" true (not (has r "\"rows\""))

(* --- topology ---------------------------------------------------------- *)

let test_topology_parse () =
  let t =
    match
      Topology.parse
        "# comment\nshard 0 unix:/tmp/a.sock unix:/tmp/b.sock\n\nshard 1 tcp:127.0.0.1:7001\n"
    with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  check_int "shards" 2 (Topology.num_shards t);
  check_int "replicas of shard 0" 2 (List.length t.Topology.shards.(0).Topology.endpoints);
  check_string "primary first" "unix:/tmp/a.sock"
    (Topology.endpoint_to_string (List.hd t.Topology.shards.(0).Topology.endpoints));
  check_bool "gap in ids refused" true
    (Result.is_error (Topology.parse "shard 0 unix:/a\nshard 2 unix:/b\n"));
  check_bool "duplicate id refused" true
    (Result.is_error (Topology.parse "shard 0 unix:/a\nshard 0 unix:/b\n"));
  check_bool "bad endpoint refused" true
    (Result.is_error (Topology.parse "shard 0 carrier-pigeon:/a\n"));
  check_bool "empty refused" true (Result.is_error (Topology.parse "# nothing\n"))

(* --- ranged-scan sharding ---------------------------------------------- *)

let test_scan_part_exact_union () =
  (* The invariant the whole cluster rests on: disjoint parts of the
     driving scan union into exactly the full result — same count, same
     rows, no overlap, for any k. *)
  let db = Gf.Db.create (graph ()) in
  let expected_rows, expected = reference db triangle in
  List.iter
    (fun k ->
      let total = ref 0 in
      let rows = ref [] in
      for i = 0 to k - 1 do
        let c, o =
          Gf.Db.run_gov ~scan_part:(i, k)
            ~sink:(fun r -> rows := Array.copy r :: !rows)
            db triangle
        in
        check_bool "part completed" true (o = Governor.Completed);
        total := !total + c.Gf.Counters.output
      done;
      check_int (Printf.sprintf "k=%d count" k) expected !total;
      check_bool
        (Printf.sprintf "k=%d rows" k)
        true
        (sorted_rows !rows = expected_rows))
    [ 1; 2; 3; 5; 8 ]

(* --- ladder: deadline-aware backoff ------------------------------------ *)

let test_ladder_backoff_respects_deadline () =
  (* A retry storm near the deadline must not sleep past it: every backoff
     is capped at the remaining budget, hitting zero at the edge. *)
  let db = Gf.Db.create (graph ()) in
  let clock = ref 0.0 in
  let sleeps = ref [] in
  let cfg =
    {
      Ladder.domains = 1;
      budget = Governor.budget ~deadline_s:0.5 ();
      degraded_budget = Governor.budget ~deadline_s:0.5 ~max_output:10 ();
      backoff_base_s = 10.0 (* would sleep 5-10 s unclamped *);
      backoff_cap_s = 60.0;
    }
  in
  let r =
    Ladder.run
      ~sleep:(fun d ->
        sleeps := d :: !sleeps;
        clock := !clock +. d)
      ~now:(fun () -> !clock)
      ~fault:{ Governor.at_tuple = 1; operator = "test" }
      ~fault_attempts:max_int ~rng:(Gf.Rng.create 3) cfg db triangle
  in
  check_bool "retried" true (r.Ladder.attempts > 1);
  check_bool "some backoff taken" true (!sleeps <> []);
  List.iter
    (fun d -> check_bool "backoff within deadline budget" true (d <= 0.5 +. 1e-9))
    !sleeps;
  (* The clamp bottoms out at zero rather than going negative. *)
  List.iter (fun d -> check_bool "backoff non-negative" true (d >= 0.0)) !sleeps;
  (* Total sleep can never exceed the deadline itself. *)
  check_bool "total sleep within deadline" true
    (List.fold_left ( +. ) 0.0 !sleeps <= 0.5 +. 1e-9)

(* --- worker hook ------------------------------------------------------- *)

let worker_service ?(workers = 2) g =
  let ladder =
    {
      Ladder.domains = 1;
      budget = Governor.unlimited;
      degraded_budget = Governor.budget ~max_output:10 ();
      backoff_base_s = 0.001;
      backoff_cap_s = 0.01;
    }
  in
  let config = { Service.default_config with Service.workers; ladder } in
  Service.create ~config (Gf.Db.create g)

let test_worker_hook () =
  let g = graph () in
  let svc = worker_service g in
  let w =
    Worker.create ~node:"w7" ~n:(Gf.Graph.num_vertices g) ~m:(Gf.Graph.num_edges g) svc
  in
  let hook = Worker.hook w in
  (* Handshake: matching proto gets the fingerprint, a mixed-version pair
     is refused with a structured error. *)
  (match hook (Proto.hello_req ~node:"c" ~role:"coordinator") with
  | `Reply r ->
      check_bool "hello ok" true (has r "\"ok\":true");
      check_bool "hello n" true
        (Proto.json_int r "n" = Some (Gf.Graph.num_vertices g))
  | _ -> Alcotest.fail "hello must reply");
  (match hook "hello proto=99 node=c role=coordinator" with
  | `Reply r -> check_bool "mixed version refused" true (has r "version_mismatch")
  | _ -> Alcotest.fail "bad hello must reply");
  (* A shard request executes just its slice. *)
  let db = Gf.Db.create g in
  let _, expected = reference db triangle in
  let m0, m1 =
    let matches part =
      match hook (Proto.shard_req ~part ~rows:false triangle_text) with
      | `Reply r ->
          check_bool "shard ok" true (has r "\"ok\":true");
          check_bool "shard completed" true (has r "\"outcome\":\"completed\"");
          Option.value (Proto.json_int r "matches") ~default:(-1)
      | _ -> Alcotest.fail "shard must reply"
    in
    (matches (0, 2), matches (1, 2))
  in
  check_int "parts sum to full count" expected (m0 + m1);
  (* Non-cluster lines fall through to the normal wire protocol. *)
  check_bool "ping passes through" true (hook "ping" = `Pass);
  check_bool "run passes through" true (hook ("run q=" ^ triangle_text) = `Pass);
  Service.drain svc

let test_worker_fault_sites () =
  let g = graph () in
  let svc = worker_service g in
  let w =
    Worker.create ~node:"w0" ~n:(Gf.Graph.num_vertices g) ~m:(Gf.Graph.num_edges g) svc
  in
  let hook = Worker.hook w in
  let line = Proto.shard_req ~part:(0, 2) ~rows:false triangle_text in
  (* conn-drop: the connection dies without a reply byte — the
     coordinator-visible shape of a worker kill -9 mid-dispatch. *)
  Cfault.arm Cfault.Conn_drop ~after:1;
  check_bool "conn-drop closes" true (hook line = `Close);
  check_bool "fault disarmed after firing" true (hook line <> `Close);
  (* split-refusal: a worker that no longer believes it owns the shard
     refuses loudly instead of answering wrong. *)
  Cfault.arm Cfault.Split_refusal ~after:1;
  (match hook line with
  | `Reply r ->
      check_bool "not_owner" true (has r "\"error\":\"not_owner\"" && has r "\"ok\":false")
  | _ -> Alcotest.fail "split refusal must reply");
  Cfault.disarm ();
  Service.drain svc

(* --- end-to-end over sockets ------------------------------------------- *)

let tmpdir () =
  let dir = Filename.temp_file "gfclu" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

(* A worker server on a unix socket, shut down via its own wire command. *)
type live_worker = { path : string; thread : Thread.t; svc : Service.t }

let start_worker ~dir ~node g =
  let path = Filename.concat dir (node ^ ".sock") in
  let svc = worker_service g in
  let w =
    Worker.create ~node ~n:(Gf.Graph.num_vertices g) ~m:(Gf.Graph.num_edges g) svc
  in
  let ready_m = Mutex.create () and ready_cv = Condition.create () in
  let ready = ref false in
  let thread =
    Thread.create
      (fun () ->
        Server.serve ~hook:(Worker.hook w)
          ~on_ready:(fun _ ->
            Mutex.lock ready_m;
            ready := true;
            Condition.broadcast ready_cv;
            Mutex.unlock ready_m)
          svc (Server.Unix_path path))
      ()
  in
  Mutex.lock ready_m;
  while not !ready do
    Condition.wait ready_cv ready_m
  done;
  Mutex.unlock ready_m;
  { path; thread; svc }

let stop_worker lw =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX lw.path) with
  | () ->
      let oc = Unix.out_channel_of_descr fd in
      output_string oc "shutdown\n";
      flush oc;
      (try ignore (input_line (Unix.in_channel_of_descr fd)) with _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ( try Unix.close fd with Unix.Unix_error _ -> ()));
  Thread.join lw.thread

let coord_config ?(hedge = None) ?(retries = 2) ?(breaker = Breaker.default_config) () =
  {
    Coordinator.default_config with
    Coordinator.connect_timeout_s = 0.5;
    rpc_timeout_s = 5.0;
    retries;
    hedge_after_s = hedge;
    breaker;
    probe_interval_s = 0.2;
    probe_timeout_s = 0.2;
  }

let run_req () =
  match Wire.parse_request ("run rows q=" ^ triangle_text) with
  | Ok (Wire.Run req) -> req
  | _ -> Alcotest.fail "run request must parse"

let test_cluster_end_to_end () =
  let g = graph () in
  let db = Gf.Db.create g in
  let expected_rows, expected = reference db triangle in
  let dir = tmpdir () in
  let w0 = start_worker ~dir ~node:"w0" g in
  let w1 = start_worker ~dir ~node:"w1" g in
  let topo =
    match
      Topology.parse
        (Printf.sprintf "shard 0 unix:%s unix:%s\nshard 1 unix:%s unix:%s\n" w0.path
           w1.path w1.path w0.path)
    with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  let coord = Coordinator.create ~config:(coord_config ()) topo in
  (* Healthy cluster: the sharded answer is the exact full answer. *)
  let r = Coordinator.run coord ~text:triangle_text (run_req ()) in
  check_string "outcome" "completed" r.Coordinator.r_outcome;
  check_int "matches" expected r.Coordinator.r_matches;
  check_bool "rows exact" true (sorted_rows r.Coordinator.r_rows = expected_rows);
  check_bool "no failovers" true (r.Coordinator.r_failovers = 0);
  check_bool "nothing incomplete" true (r.Coordinator.r_incomplete = []);
  let reply = Coordinator.to_reply r in
  check_bool "reply classified" true (has reply "\"outcome\":\"completed\"");
  (* Kill w0's server: shard 0 fails over to its replica on w1 and the
     answer is still exact — and says so via the failover count. *)
  stop_worker w0;
  let r2 = Coordinator.run coord ~text:triangle_text (run_req ()) in
  check_string "outcome after failover" "completed" r2.Coordinator.r_outcome;
  check_int "matches after failover" expected r2.Coordinator.r_matches;
  check_bool "rows after failover" true (sorted_rows r2.Coordinator.r_rows = expected_rows);
  check_bool "failover counted" true (r2.Coordinator.r_failovers >= 1);
  (* Kill the last worker: nothing can answer, and the reply must say
     failed — never a silent zero-match "completed". *)
  stop_worker w1;
  let r3 = Coordinator.run coord ~text:triangle_text (run_req ()) in
  check_string "outcome after total loss" "failed" r3.Coordinator.r_outcome;
  check_int "both shards named" 2 (List.length r3.Coordinator.r_incomplete);
  let stats = Coordinator.stats_json coord in
  check_bool "stats carries failovers" true
    (match Proto.json_int stats "failovers" with Some n -> n >= 1 | None -> false);
  Coordinator.stop coord

let test_partial_failure_is_explicit () =
  (* Shard 1's only endpoint accepts and instantly closes — the
     coordinator-visible shape of a worker kill -9 between dispatch and
     reply. The reply must carry partial + the missing shard id, with the
     live shard's matches intact: an undercount is only acceptable when it
     is announced. *)
  let g = graph () in
  let dir = tmpdir () in
  let w0 = start_worker ~dir ~node:"w0" g in
  let dead_path = Filename.concat dir "dead.sock" in
  let dead_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind dead_fd (Unix.ADDR_UNIX dead_path);
  Unix.listen dead_fd 8;
  let dead_stop = ref false in
  let dead_thread =
    Thread.create
      (fun () ->
        while not !dead_stop do
          match Unix.select [ dead_fd ] [] [] 0.1 with
          | [ _ ], _, _ ->
              let c, _ = Unix.accept dead_fd in
              Unix.close c
          | _ -> ()
        done)
      ()
  in
  let topo =
    match
      Topology.parse
        (Printf.sprintf "shard 0 unix:%s\nshard 1 unix:%s\n" w0.path dead_path)
    with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  let coord = Coordinator.create ~config:(coord_config ~retries:1 ()) topo in
  let db = Gf.Db.create g in
  let _, expected = reference db triangle in
  let r = Coordinator.run coord ~text:triangle_text (run_req ()) in
  check_string "outcome" "partial" r.Coordinator.r_outcome;
  check_bool "missing shard named" true (r.Coordinator.r_incomplete = [ 1 ]);
  (* The live shard's slice still arrived whole: strictly fewer matches
     than the full answer, strictly more than nothing is not guaranteed —
     but it must equal exactly the shard-0 slice. *)
  let c0, _ = Gf.Db.run_gov ~scan_part:(0, 2) db triangle in
  check_int "live slice intact" c0.Gf.Counters.output r.Coordinator.r_matches;
  check_bool "honest undercount" true (r.Coordinator.r_matches < expected);
  let reply = Coordinator.to_reply r in
  check_bool "reply names missing shard" true (has reply "\"incomplete_shards\":[1]");
  Coordinator.stop coord;
  dead_stop := true;
  Thread.join dead_thread;
  Unix.close dead_fd;
  stop_worker w0

let test_breaker_per_shard_isolation () =
  (* Shard 0 points at nothing; hammering it opens shard 0's breaker
     while shard 1 keeps answering — failure is contained per shard. *)
  let g = graph () in
  let dir = tmpdir () in
  let w0 = start_worker ~dir ~node:"w0" g in
  let nowhere = Filename.concat dir "nowhere.sock" in
  let topo =
    match
      Topology.parse (Printf.sprintf "shard 0 unix:%s\nshard 1 unix:%s\n" nowhere w0.path)
    with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  let breaker =
    { Breaker.window = 8; min_samples = 2; failure_threshold = 0.5; cooldown_s = 60.0 }
  in
  let coord = Coordinator.create ~config:(coord_config ~retries:0 ~breaker ()) topo in
  let last = ref None in
  for _ = 1 to 4 do
    last := Some (Coordinator.run coord ~text:triangle_text (run_req ()))
  done;
  let r = Option.get !last in
  check_string "still partial, never failed" "partial" r.Coordinator.r_outcome;
  check_bool "only shard 0 missing" true (r.Coordinator.r_incomplete = [ 0 ]);
  (* By now shard 0's breaker is open and fails fast; shard 1's is closed. *)
  check_bool "shard-0 breaker open" true
    (r.Coordinator.r_shards.(0).Coordinator.sr_detail = "per-shard circuit breaker open"
    || r.Coordinator.r_shards.(0).Coordinator.sr_outcome = "breaker_open");
  check_bool "shard-1 healthy" true r.Coordinator.r_shards.(1).Coordinator.sr_ok;
  let stats = Coordinator.stats_json coord in
  check_bool "stats shows one open breaker" true
    (has stats "\"open\"" && has stats "\"closed\"");
  Coordinator.stop coord;
  stop_worker w0

let test_hedging_beats_straggler () =
  (* Shard 0's primary stalls 0.6 s on every shard request; with a 50 ms
     hedge the replica answers first and the request completes fast and
     exact. *)
  let g = graph () in
  let db = Gf.Db.create g in
  let _, expected = reference db triangle in
  let dir = tmpdir () in
  let slow_svc = worker_service g in
  let slow =
    Worker.create ~slow_s:0.6 ~node:"slow"
      ~n:(Gf.Graph.num_vertices g)
      ~m:(Gf.Graph.num_edges g)
      slow_svc
  in
  let slow_path = Filename.concat dir "slow.sock" in
  let ready = ref false in
  let ready_m = Mutex.create () and ready_cv = Condition.create () in
  let slow_thread =
    Thread.create
      (fun () ->
        Server.serve ~hook:(Worker.hook slow)
          ~on_ready:(fun _ ->
            Mutex.lock ready_m;
            ready := true;
            Condition.broadcast ready_cv;
            Mutex.unlock ready_m)
          slow_svc (Server.Unix_path slow_path))
      ()
  in
  Mutex.lock ready_m;
  while not !ready do
    Condition.wait ready_cv ready_m
  done;
  Mutex.unlock ready_m;
  let fast = start_worker ~dir ~node:"fast" g in
  let topo =
    match
      Topology.parse
        (Printf.sprintf "shard 0 unix:%s unix:%s\nshard 1 unix:%s\n" slow_path fast.path
           fast.path)
    with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  let coord = Coordinator.create ~config:(coord_config ~hedge:(Some 0.05) ()) topo in
  let t0 = Unix.gettimeofday () in
  let r = Coordinator.run coord ~text:triangle_text (run_req ()) in
  let dt = Unix.gettimeofday () -. t0 in
  check_string "outcome" "completed" r.Coordinator.r_outcome;
  check_int "matches exact" expected r.Coordinator.r_matches;
  check_bool "hedge fired" true (r.Coordinator.r_hedges >= 1);
  check_bool "hedge won on shard 0" true r.Coordinator.r_shards.(0).Coordinator.sr_hedge_win;
  check_bool "replica answered" true r.Coordinator.r_shards.(0).Coordinator.sr_failover;
  check_bool "straggler did not gate latency" true (dt < 0.55);
  Coordinator.stop coord;
  stop_worker fast;
  (* The slow worker still owes its stalled reply; shutting it down drains
     that request first. *)
  stop_worker { path = slow_path; thread = slow_thread; svc = slow_svc }

let test_fingerprint_mismatch_refused () =
  (* Two workers serving different graphs cannot form one cluster: shard
     answers would be slices of different answer sets. The first hello
     fixes the fingerprint; a worker disagreeing with it is refused and
     its shard goes incomplete rather than poisoning the union. *)
  let g = graph () in
  let other =
    Gf.Generators.holme_kim (Gf.Rng.create 99) ~n:120 ~m_per:3 ~p_triad:0.5 ~recip:0.2
  in
  let dir = tmpdir () in
  let w0 = start_worker ~dir ~node:"w0" g in
  let w1 = start_worker ~dir ~node:"w1" other in
  let topo =
    match
      Topology.parse (Printf.sprintf "shard 0 unix:%s\nshard 1 unix:%s\n" w0.path w1.path)
    with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  let coord = Coordinator.create ~config:(coord_config ~retries:0 ()) topo in
  let r = Coordinator.run coord ~text:triangle_text (run_req ()) in
  check_string "outcome" "partial" r.Coordinator.r_outcome;
  (* Whichever worker handshakes first fixes the fingerprint; the *other*
     one is refused. Exactly one shard must go incomplete, explicitly. *)
  check_int "one shard incomplete" 1 (List.length r.Coordinator.r_incomplete);
  let bad = List.hd r.Coordinator.r_incomplete in
  check_bool "refusal is explicit" true
    (has r.Coordinator.r_shards.(bad).Coordinator.sr_detail "fingerprint");
  Coordinator.stop coord;
  stop_worker w0;
  stop_worker w1

let test_stitched_trace_failover () =
  (* Cross-process trace propagation, end to end: one shard whose primary
     endpoint is a dead socket and whose replica is a live worker, driven
     by a traced run. The stitched trace the coordinator retains must pin
     BOTH the failed attempt (coordinator-side span carrying its error)
     and the winning replica's worker-side spans, each under its own
     process track — and the retained Chrome JSON must stay balanced. *)
  let g = graph () in
  let db = Gf.Db.create g in
  let _, expected = reference db triangle in
  let dir = tmpdir () in
  let w0 = start_worker ~dir ~node:"w0" g in
  let dead = Filename.concat dir "dead.sock" in
  let topo =
    match Topology.parse (Printf.sprintf "shard 0 unix:%s unix:%s\n" dead w0.path) with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  let coord = Coordinator.create ~config:(coord_config ~retries:1 ()) topo in
  let req =
    match Wire.parse_request ("run rows trace q=" ^ triangle_text) with
    | Ok (Wire.Run req) -> req
    | _ -> Alcotest.fail "traced run request must parse"
  in
  let r = Coordinator.run coord ~text:triangle_text req in
  check_string "outcome" "completed" r.Coordinator.r_outcome;
  check_int "matches survive the failover" expected r.Coordinator.r_matches;
  check_bool "failover counted" true (r.Coordinator.r_failovers >= 1);
  let tid =
    match r.Coordinator.r_trace_id with
    | Some id -> id
    | None -> Alcotest.fail "traced cluster run must return a trace id"
  in
  check_bool "untraced run carries no trace id" true
    ((Coordinator.run coord ~text:triangle_text (run_req ())).Coordinator.r_trace_id = None);
  (* Fetch the retained trace exactly as a wire client would. *)
  let reply =
    match Coordinator.hook coord (Printf.sprintf "trace id=%d" tid) with
    | `Reply s -> s
    | _ -> Alcotest.fail "coordinator must answer trace id=N"
  in
  check_bool "envelope ok" true (has reply "\"ok\":true");
  (* Coordinator-side: the shard span, the dead attempt with its error, and
     the attempt that won. *)
  check_bool "shard span present" true (has reply "\"name\":\"shard-0\"");
  check_bool "failed attempt pinned with its error" true (has reply "\"result\":\"error: ");
  check_bool "winning attempt pinned" true (has reply "\"result\":\"completed\"");
  (* Worker-side spans landed under the worker's own process track (the
     in-process worker reports this very pid on the wire — distinct from
     the trace's default pid 1 all coordinator spans live on). *)
  let wpid = Unix.getpid () in
  check_bool "worker process track" true
    (has reply (Printf.sprintf "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d," wpid));
  check_bool "worker track labeled node (endpoint)" true (has reply "w0 (unix:");
  check_bool "worker request span grafted" true (has reply "\"name\":\"request\"");
  check_bool "coordinator process track" true
    (has reply "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,");
  (* The nesting gate on the retained JSON: begins and ends pair off, and
     both processes contributed events. *)
  let count needle =
    let nh = String.length reply and nn = String.length needle in
    let rec go i acc =
      if i + nn > nh then acc
      else go (i + 1) (if String.sub reply i nn = needle then acc + 1 else acc)
    in
    go 0 0
  in
  check_bool "chrome events balanced" true
    (count "\"ph\":\"B\"" = count "\"ph\":\"E\"" && count "\"ph\":\"B\"" > 0);
  check_bool "events on both processes" true
    (count "\"pid\":1," > 0 && count (Printf.sprintf "\"pid\":%d," wpid) > 0);
  (* The distributed query also pinned itself in the coordinator slowlog. *)
  let slow =
    match Coordinator.hook coord "slowlog 5" with
    | `Reply s -> s
    | _ -> Alcotest.fail "coordinator must answer slowlog"
  in
  check_bool "slowlog knows the request" true (has slow "\"plan\":\"cluster\"");
  Coordinator.stop coord;
  stop_worker w0

let suite =
  [
    ( "cluster.proto",
      [
        Alcotest.test_case "handshake and shard roundtrip" `Quick test_proto_roundtrip;
        Alcotest.test_case "aggregate reply shape" `Quick test_run_resp_shape;
        Alcotest.test_case "topology parsing" `Quick test_topology_parse;
      ] );
    ( "cluster.shard",
      [
        Alcotest.test_case "ranged scans union exactly" `Quick test_scan_part_exact_union;
        Alcotest.test_case "backoff respects deadline" `Quick
          test_ladder_backoff_respects_deadline;
        Alcotest.test_case "worker hook" `Quick test_worker_hook;
        Alcotest.test_case "worker fault sites" `Quick test_worker_fault_sites;
      ] );
    ( "cluster.e2e",
      [
        Alcotest.test_case "exact answers and replica failover" `Quick
          test_cluster_end_to_end;
        Alcotest.test_case "partial failure is explicit" `Quick
          test_partial_failure_is_explicit;
        Alcotest.test_case "breakers isolate per shard" `Quick
          test_breaker_per_shard_isolation;
        Alcotest.test_case "hedging beats a straggler" `Quick test_hedging_beats_straggler;
        Alcotest.test_case "fingerprint mismatch refused" `Quick
          test_fingerprint_mismatch_refused;
        Alcotest.test_case "stitched trace spans failed attempt and winner" `Quick
          test_stitched_trace_failover;
      ] );
  ]
