(* The durability stack: CRC32, WAL framing/rotation/torn-tail repair,
   the delta overlay, checksummed v2 snapshots, store recovery, and the
   service mutation path. Crash-torture (fork + kill -9) lives in the
   separate single-threaded test_torture executable. *)

module Gf = Graphflow
module Wal = Gf_wal.Wal
module Store = Gf_wal.Store
module Delta = Gf.Delta
module Service = Gf_server.Service

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let with_temp_dir f =
  let dir = Filename.temp_file "gf_wal" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let small_graph () =
  Gf.Graph.build ~num_vlabels:2 ~num_elabels:2
    ~vlabel:[| 0; 1; 0; 1; 0 |]
    ~edges:[| (0, 1, 0); (0, 2, 1); (1, 2, 0); (2, 3, 0); (3, 4, 1) |]

(* --- crc32 ------------------------------------------------------------ *)

let test_crc32_vectors () =
  (* The standard check value for CRC-32 (IEEE 802.3, reflected). *)
  check_bool "check value" true (Gf.Crc32.string "123456789" = 0xCBF43926l);
  check_bool "empty" true (Gf.Crc32.string "" = 0l);
  (* Incremental folding must equal one-shot. *)
  let s = "the quick brown fox jumps over the lazy dog" in
  let c = ref Gf.Crc32.init in
  String.iter (fun ch -> c := Gf.Crc32.update_string !c (String.make 1 ch)) s;
  check_bool "incremental = one-shot" true (Gf.Crc32.finish !c = Gf.Crc32.string s);
  (* Sensitivity: any single flipped bit changes the sum. *)
  let b = Bytes.of_string s in
  Bytes.set b 7 (Char.chr (Char.code (Bytes.get b 7) lxor 1));
  check_bool "bit flip detected" true (Gf.Crc32.string (Bytes.to_string b) <> Gf.Crc32.string s)

(* --- wal framing, rotation, recovery ---------------------------------- *)

let ops_equal (a : Wal.op) (b : Wal.op) = a = b

let collect_replay ?from_lsn dir =
  let acc = ref [] in
  match Wal.replay ?from_lsn dir (fun ~lsn op -> acc := (lsn, op) :: !acc) with
  | Ok last -> Ok (last, List.rev !acc)
  | Error e -> Error e

let test_wal_roundtrip_rotation () =
  with_temp_dir (fun dir ->
      (* Tiny segments force several rotations across 60 records. *)
      let w = Result.get_ok (Wal.open_log ~segment_bytes:256 dir) in
      let expect = ref [] in
      for i = 1 to 60 do
        let op =
          match i mod 4 with
          | 0 -> Wal.Add_edge { u = i; v = i + 1; elabel = 0 }
          | 1 -> Wal.Del_edge { u = i; v = i + 2; elabel = 1 }
          | 2 -> Wal.Add_vertex { label = i mod 3 }
          | _ -> Wal.Del_vertex { v = i }
        in
        let lsn = Result.get_ok (Wal.append w op) in
        check_int "dense lsn" i lsn;
        expect := (i, op) :: !expect
      done;
      check_int "nothing durable before sync" 0 (Wal.durable_lsn w);
      check_int "sync covers all" 60 (Result.get_ok (Wal.sync w));
      check_int "durable after sync" 60 (Wal.durable_lsn w);
      Wal.close w;
      check_bool "rotated into several segments" true
        (List.length (Wal.segment_files dir) > 2);
      let last, got = Result.get_ok (collect_replay dir) in
      check_int "replay reaches last lsn" 60 last;
      check_int "every record replayed" 60 (List.length got);
      List.iter2
        (fun (l1, o1) (l2, o2) ->
          check_int "lsn order" l1 l2;
          check_bool "op roundtrip" true (ops_equal o1 o2))
        (List.rev !expect) got;
      (* from_lsn replays a strict suffix. *)
      let _, suffix = Result.get_ok (collect_replay ~from_lsn:50 dir) in
      check_int "suffix length" 10 (List.length suffix);
      check_int "suffix start" 51 (fst (List.hd suffix)))

let test_wal_torn_tail_truncated () =
  with_temp_dir (fun dir ->
      let w = Result.get_ok (Wal.open_log dir) in
      for i = 1 to 10 do
        ignore (Result.get_ok (Wal.append w (Wal.Add_edge { u = i; v = i + 1; elabel = 0 })))
      done;
      ignore (Result.get_ok (Wal.sync w));
      Wal.close w;
      (* Tear the tail: chop the final record mid-frame, as a crash during
         append would. *)
      let seg =
        Filename.concat dir (List.nth (Wal.segment_files dir) (List.length (Wal.segment_files dir) - 1))
      in
      let size = (Unix.stat seg).Unix.st_size in
      let fd = Unix.openfile seg [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd (size - 5);
      Unix.close fd;
      let last, got = Result.get_ok (collect_replay dir) in
      check_int "torn record dropped" 9 last;
      check_int "nine survive" 9 (List.length got);
      (* The repair rewrote the file: a second replay sees a clean log. *)
      let last2, _ = Result.get_ok (collect_replay dir) in
      check_int "idempotent repair" 9 last2;
      (* And the log re-opens for appending with the next LSN. *)
      let w2 = Result.get_ok (Wal.open_log dir) in
      check_int "next lsn after repair" 10 (Result.get_ok (Wal.append w2 (Wal.Add_vertex { label = 0 })));
      ignore (Result.get_ok (Wal.sync w2));
      Wal.close w2)

let test_wal_corruption_mid_log_refused () =
  with_temp_dir (fun dir ->
      (* Two segments; corrupt the middle of the FIRST one. Truncation is
         only legal on the final tail — this must refuse. *)
      let w = Result.get_ok (Wal.open_log ~segment_bytes:128 dir) in
      for i = 1 to 30 do
        ignore (Result.get_ok (Wal.append w (Wal.Add_edge { u = i; v = i + 1; elabel = 0 })))
      done;
      ignore (Result.get_ok (Wal.sync w));
      Wal.close w;
      let segs = Wal.segment_files dir in
      check_bool "multiple segments" true (List.length segs > 1);
      let first = Filename.concat dir (List.hd segs) in
      let fd = Unix.openfile first [ Unix.O_WRONLY ] 0 in
      let _ = Unix.lseek fd 40 Unix.SEEK_SET in
      ignore (Unix.write fd (Bytes.make 4 '\xff') 0 4);
      Unix.close fd;
      match collect_replay dir with
      | Error (Wal.Corrupt _) -> ()
      | Ok _ -> Alcotest.fail "corrupt interior record must refuse replay"
      | Error e -> Alcotest.fail ("wrong error: " ^ Wal.error_to_string e))

let test_wal_missing_prefix_refused () =
  with_temp_dir (fun dir ->
      let w = Result.get_ok (Wal.open_log ~segment_bytes:128 dir) in
      for i = 1 to 30 do
        ignore (Result.get_ok (Wal.append w (Wal.Add_edge { u = i; v = i + 1; elabel = 0 })))
      done;
      ignore (Result.get_ok (Wal.sync w));
      Wal.close w;
      Sys.remove (Filename.concat dir (List.hd (Wal.segment_files dir)));
      match collect_replay dir with
      | Error (Wal.Missing_prefix _) -> ()
      | Ok _ -> Alcotest.fail "replay from 0 with a deleted leading segment must refuse"
      | Error e -> Alcotest.fail ("wrong error: " ^ Wal.error_to_string e))

let test_wal_drop_segments () =
  with_temp_dir (fun dir ->
      let w = Result.get_ok (Wal.open_log ~segment_bytes:128 dir) in
      for i = 1 to 30 do
        ignore (Result.get_ok (Wal.append w (Wal.Add_edge { u = i; v = i + 1; elabel = 0 })))
      done;
      ignore (Result.get_ok (Wal.sync w));
      ignore (Result.get_ok (Wal.rotate w));
      let before = List.length (Wal.segment_files dir) in
      let dropped = Result.get_ok (Wal.drop_segments_below w 31) in
      check_bool "dropped covered segments" true (dropped > 0);
      check_int "files removed" (before - dropped) (List.length (Wal.segment_files dir));
      (* The suffix past a from_lsn matching a surviving boundary replays. *)
      let _, got = Result.get_ok (collect_replay ~from_lsn:30 dir) in
      check_int "nothing past 30 yet" 0 (List.length got);
      ignore (Result.get_ok (Wal.append w (Wal.Add_vertex { label = 1 })));
      ignore (Result.get_ok (Wal.sync w));
      Wal.close w;
      let last, got = Result.get_ok (collect_replay ~from_lsn:30 dir) in
      check_int "new record replayable" 31 last;
      check_int "one new record" 1 (List.length got))

(* --- delta overlay ---------------------------------------------------- *)

let test_delta_semantics () =
  let d = Delta.create (small_graph ()) in
  check_int "starts at version 0" 0 (Delta.version d);
  check_bool "base edge live" true (Delta.mem_edge d 0 1 ~elabel:0);
  (* Duplicate insert is a noop but still bumps the version (LSN rule). *)
  check_bool "dup insert noop" true (Delta.add_edge d 0 1 ~elabel:0 = Ok Delta.Noop);
  check_int "noop bumps version" 1 (Delta.version d);
  check_bool "new edge" true (Delta.add_edge d 4 0 ~elabel:1 = Ok Delta.Applied);
  check_bool "overlay read sees it" true (Delta.mem_edge d 4 0 ~elabel:1);
  check_bool "delete base edge" true (Delta.del_edge d 0 1 ~elabel:0 = Ok Delta.Applied);
  check_bool "deleted edge gone" true (not (Delta.mem_edge d 0 1 ~elabel:0));
  check_bool "absent delete noop" true (Delta.del_edge d 0 4 ~elabel:0 = Ok Delta.Noop);
  (* Structural refusals. *)
  check_bool "self loop refused" true (Delta.add_edge d 2 2 ~elabel:0 = Error (Delta.Self_loop 2));
  check_bool "bad vertex refused" true
    (Delta.add_edge d 0 99 ~elabel:0 = Error (Delta.Vertex_out_of_range 99));
  check_bool "bad elabel refused" true
    (Delta.add_edge d 0 3 ~elabel:7 = Error (Delta.Elabel_out_of_range 7));
  (* Vertex append: dense ids. *)
  let id = Result.get_ok (Delta.add_vertex d ~label:1) in
  check_int "new vertex id" 5 id;
  check_int "live vertices" 6 (Delta.live_vertices d);
  check_bool "edge to new vertex" true (Delta.add_edge d 0 5 ~elabel:0 = Ok Delta.Applied);
  (* Tombstone: incident edges die, the id is never reused. *)
  check_bool "del vertex" true (Delta.del_vertex d 2 = Ok Delta.Applied);
  check_bool "incident base edge gone" true (not (Delta.mem_edge d 1 2 ~elabel:0));
  check_bool "tombstoned refuses new edges" true
    (Delta.add_edge d 0 2 ~elabel:0 = Error (Delta.Tombstoned 2));
  check_bool "double delete noop" true (Delta.del_vertex d 2 = Ok Delta.Noop);
  (* Merge publishes a CSR that agrees with the overlay view. *)
  let before = Delta.edge_array d in
  let g2 = Delta.merge d in
  check_int "merge clears pending" 0 (Delta.pending d);
  check_int "merged version catches up" (Delta.version d) (Delta.merged_version d);
  let after = Delta.edge_array d in
  check_bool "merge preserves the edge set" true (before = after);
  check_int "merged CSR edge count" (Array.length after) (Gf.Graph.num_edges g2);
  check_int "merged CSR vertices" 6 (Gf.Graph.num_vertices g2);
  (* Post-merge reads keep working against the new base. *)
  check_bool "post-merge read" true (Delta.mem_edge d 4 0 ~elabel:1)

let test_delta_neighbours_sorted_view () =
  let d = Delta.create (small_graph ()) in
  ignore (Result.get_ok (Delta.add_edge d 0 4 ~elabel:0));
  ignore (Result.get_ok (Delta.add_edge d 0 3 ~elabel:0));
  ignore (Result.get_ok (Delta.add_edge d 0 2 ~elabel:0));
  ignore (Result.get_ok (Delta.del_edge d 0 1 ~elabel:0));
  (* Neighbours of 0 over elabel 0 after the overlay: base {1} minus the
     delete, plus sorted inserts {2,3,4}, partitioned by the neighbour's
     label (vlabel = [|0;1;0;1;0|]). *)
  let ns = Delta.neighbours d 0 ~elabel:0 ~nlabel:0 in
  check_bool "sorted overlay view" true (ns = [| 2; 4 |]);
  let ns1 = Delta.neighbours d 0 ~elabel:0 ~nlabel:1 in
  check_bool "other partition" true (ns1 = [| 3 |])

(* --- snapshot v2 integrity -------------------------------------------- *)

let test_snapshot_v2_roundtrip_and_bitrot () =
  let g = small_graph () in
  let path = Filename.temp_file "gf_wal" ".gfq" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Gf.Graph_io.save_snapshot ~wal_version:42 g path;
      (match Gf.Graph_io.load_snapshot_versioned path with
      | Ok (g2, wal_version) ->
          check_int "wal version carried" 42 wal_version;
          check_int "vertices" (Gf.Graph.num_vertices g) (Gf.Graph.num_vertices g2);
          check_int "edges" (Gf.Graph.num_edges g) (Gf.Graph.num_edges g2)
      | Error e -> Alcotest.fail (Gf.Graph_io.load_error_to_string e));
      (* Bit rot in a section body: the CRC trailer must catch it at load
         time, before the file is ever mapped. *)
      let size = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      let _ = Unix.lseek fd (size / 2) Unix.SEEK_SET in
      ignore (Unix.write fd (Bytes.make 1 '\xa5') 0 1);
      Unix.close fd;
      match Gf.Graph_io.load_snapshot_versioned path with
      | Error { kind = Gf.Graph_io.Checksum _; _ } -> ()
      | Ok _ -> Alcotest.fail "bit rot must be detected"
      | Error e -> Alcotest.fail ("wrong error: " ^ Gf.Graph_io.load_error_to_string e))

let test_snapshot_v1_still_loads () =
  let g = small_graph () in
  let path = Filename.temp_file "gf_wal" ".gfq" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Gf.Graph_io.save_snapshot_v1 g path;
      match Gf.Graph_io.load_snapshot_versioned path with
      | Ok (g2, wal_version) ->
          check_int "v1 has no wal version" 0 wal_version;
          check_int "v1 roundtrip edges" (Gf.Graph.num_edges g) (Gf.Graph.num_edges g2)
      | Error e -> Alcotest.fail (Gf.Graph_io.load_error_to_string e))

(* Every failed load path must close its fd — a recovering store probes
   corrupt snapshot generations in a loop, and each probe leaking one
   descriptor would exhaust the table under repeated crash cycles. *)
let test_snapshot_failed_load_closes_fd () =
  let open_fds () = Array.length (Sys.readdir "/proc/self/fd") in
  let g = small_graph () in
  let good = Filename.temp_file "gf_wal" ".gfq" in
  let torn = Filename.temp_file "gf_wal" ".gfq" in
  let rotted = Filename.temp_file "gf_wal" ".gfq" in
  Fun.protect
    ~finally:(fun () -> List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ good; torn; rotted ])
    (fun () ->
      Gf.Graph_io.save_snapshot g good;
      Gf.Graph_io.save_snapshot g torn;
      let fd = Unix.openfile torn [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd 48;
      Unix.close fd;
      Gf.Graph_io.save_snapshot g rotted;
      let size = (Unix.stat rotted).Unix.st_size in
      let fd = Unix.openfile rotted [ Unix.O_WRONLY ] 0 in
      let _ = Unix.lseek fd (size / 2) Unix.SEEK_SET in
      ignore (Unix.write fd (Bytes.make 1 '\xa5') 0 1);
      Unix.close fd;
      let baseline = open_fds () in
      for _ = 1 to 16 do
        (match Gf.Graph_io.load_snapshot_versioned torn with
        | Ok _ -> Alcotest.fail "torn snapshot must not load"
        | Error _ -> ());
        (match Gf.Graph_io.load_snapshot_versioned rotted with
        | Ok _ -> Alcotest.fail "rotted snapshot must not load"
        | Error _ -> ());
        match Gf.Graph_io.load_snapshot_versioned "/nonexistent/snap.gfq" with
        | Ok _ -> Alcotest.fail "missing snapshot must not load"
        | Error _ -> ()
      done;
      check_int "no fd leaked across failed loads" baseline (open_fds ()))

(* --- store recovery --------------------------------------------------- *)

let store_cfg =
  { Store.segment_bytes = 512; sync_every_append = false; merge_threshold = 8; snapshots_kept = 2 }

let test_store_recovery_roundtrip () =
  with_temp_dir (fun dir ->
      let st = Result.get_ok (Store.open_store ~config:store_cfg ~init:(small_graph ()) dir) in
      for i = 0 to 3 do
        ignore (Result.get_ok (Store.add_edge st i (i + 1) ~elabel:1))
      done;
      let vid = snd (Result.get_ok (Store.add_vertex st ~label:1)) in
      ignore (Result.get_ok (Store.add_edge st 0 vid ~elabel:0));
      ignore (Result.get_ok (Store.sync st));
      let snap_v = Result.get_ok (Store.checkpoint st) in
      check_int "checkpoint at current version" (Store.version st) snap_v;
      (* More mutations after the checkpoint: recovery = snapshot + replay. *)
      ignore (Result.get_ok (Store.del_edge st 0 1 ~elabel:0));
      ignore (Result.get_ok (Store.del_vertex st 3));
      ignore (Result.get_ok (Store.sync st));
      let version = Store.version st in
      let expect_edges =
        let d = Delta.create (Store.merge_now st) in
        Delta.edge_array d
      in
      Store.close st;
      let st2 = Result.get_ok (Store.open_store ~config:store_cfg ~init:(small_graph ()) dir) in
      let r = Store.recovery_info st2 in
      check_bool "seated the snapshot" true (r.Store.snapshot <> None);
      check_int "replayed past snapshot" (version - snap_v) r.Store.replayed;
      check_int "version recovered" version (Store.version st2);
      let recovered =
        let d = Delta.create (Store.merge_now st2) in
        Delta.edge_array d
      in
      check_bool "recovered edges equal" true (expect_edges = recovered);
      Store.close st2)

let test_store_recovery_equals_state () =
  with_temp_dir (fun dir ->
      let st = Result.get_ok (Store.open_store ~config:store_cfg ~init:(small_graph ()) dir) in
      let rng = Gf.Rng.create 99 in
      for _ = 1 to 100 do
        let u = Gf.Rng.int rng (Store.live_vertices st)
        and v = Gf.Rng.int rng (Store.live_vertices st) in
        match Gf.Rng.int rng 10 with
        | 0 -> ignore (Store.add_vertex st ~label:(Gf.Rng.int rng 2))
        | 1 | 2 -> ignore (Store.del_edge st u v ~elabel:(Gf.Rng.int rng 2))
        | _ -> ignore (Store.add_edge st u v ~elabel:(Gf.Rng.int rng 2))
      done;
      ignore (Result.get_ok (Store.sync st));
      let version = Store.version st in
      let g_before = Store.merge_now st in
      let edges_before =
        let d = Delta.create g_before in
        Delta.edge_array d
      in
      Store.close st;
      let st2 = Result.get_ok (Store.open_store ~config:store_cfg ~init:(small_graph ()) dir) in
      check_int "version recovered exactly" version (Store.version st2);
      let edges_after =
        let d = Delta.create (Store.merge_now st2) in
        Delta.edge_array d
      in
      check_bool "recovered graph equals pre-crash graph" true (edges_before = edges_after);
      Store.close st2)

let test_store_refuses_gutted_log () =
  with_temp_dir (fun dir ->
      let st = Result.get_ok (Store.open_store ~config:store_cfg ~init:(small_graph ()) dir) in
      for i = 0 to 3 do
        ignore (Result.get_ok (Store.add_edge st i (i + 1) ~elabel:1))
      done;
      ignore (Result.get_ok (Store.sync st));
      ignore (Result.get_ok (Store.checkpoint st));
      ignore (Result.get_ok (Store.add_edge st 4 0 ~elabel:0));
      ignore (Result.get_ok (Store.sync st));
      Store.close st;
      (* Delete every snapshot: the log's surviving segments now start
         after the replay point (the checkpoint dropped the prefix), so
         opening must refuse rather than serve a wrong graph. *)
      Array.iter
        (fun n ->
          if Filename.check_suffix n ".gfq" then Sys.remove (Filename.concat dir n))
        (Sys.readdir dir);
      match Store.open_store ~config:store_cfg ~init:(small_graph ()) dir with
      | Error (Store.Wal_error (Wal.Missing_prefix _)) -> ()
      | Ok st ->
          Store.close st;
          Alcotest.fail "ahead-of-snapshot log must refuse to open"
      | Error e -> Alcotest.fail ("wrong error: " ^ Store.open_error_to_string e))

let test_store_falls_back_to_older_snapshot () =
  with_temp_dir (fun dir ->
      let st = Result.get_ok (Store.open_store ~config:store_cfg ~init:(small_graph ()) dir) in
      ignore (Result.get_ok (Store.add_edge st 0 3 ~elabel:0));
      ignore (Result.get_ok (Store.sync st));
      ignore (Result.get_ok (Store.checkpoint st));
      ignore (Result.get_ok (Store.add_edge st 0 4 ~elabel:0));
      ignore (Result.get_ok (Store.sync st));
      ignore (Result.get_ok (Store.checkpoint st));
      let version = Store.version st in
      let edges_before =
        let d = Delta.create (Store.merge_now st) in
        Delta.edge_array d
      in
      Store.close st;
      let snaps =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun n -> Filename.check_suffix n ".gfq")
        |> List.sort compare
      in
      check_int "two generations kept" 2 (List.length snaps);
      (* Rot the NEWEST snapshot; recovery must warn, fall back to the
         older generation, and replay the gap from the log. This only
         works because checkpoint drops segments below the OLDEST retained
         snapshot, not the newest. *)
      let newest = Filename.concat dir (List.nth snaps 1) in
      let size = (Unix.stat newest).Unix.st_size in
      let fd = Unix.openfile newest [ Unix.O_WRONLY ] 0 in
      let _ = Unix.lseek fd (size / 2) Unix.SEEK_SET in
      ignore (Unix.write fd (Bytes.make 1 '\xa5') 0 1);
      Unix.close fd;
      let st2 = Result.get_ok (Store.open_store ~config:store_cfg ~init:(small_graph ()) dir) in
      let r = Store.recovery_info st2 in
      check_bool "warned about the rotted generation" true (r.Store.warnings <> []);
      (match r.Store.snapshot with
      | Some (name, _) -> check_string "older generation seated" (List.nth snaps 0) name
      | None -> Alcotest.fail "must still seat a snapshot");
      check_int "version recovered through fallback" version (Store.version st2);
      let edges_after =
        let d = Delta.create (Store.merge_now st2) in
        Delta.edge_array d
      in
      check_bool "state recovered through fallback" true (edges_before = edges_after);
      Store.close st2)

let test_store_auto_merge_and_invalidation () =
  with_temp_dir (fun dir ->
      let st = Result.get_ok (Store.open_store ~config:store_cfg ~init:(small_graph ()) dir) in
      let merges = ref [] in
      Store.set_on_merge st (fun v -> merges := v :: !merges);
      check_int "graph version starts at 0" 0 (Store.graph_version st);
      (* merge_threshold = 8. Vertex appends are never noops, so each one
         adds exactly one pending overlay op; the eighth trips the merge. *)
      for i = 0 to 9 do
        ignore (Store.add_vertex st ~label:(i mod 2))
      done;
      check_bool "auto-merge fired" true (!merges <> []);
      check_bool "graph version advanced" true (Store.graph_version st > 0);
      check_int "graph version = merge callback" (List.hd !merges) (Store.graph_version st);
      Store.close st)

(* --- service mutation path -------------------------------------------- *)

let service_config =
  { Service.default_config with workers = 0; slowlog_capacity = 32 }

let test_service_mutations () =
  with_temp_dir (fun dir ->
      let st = Result.get_ok (Store.open_store ~config:store_cfg ~init:(small_graph ()) dir) in
      let svc = Service.create ~config:service_config (Gf.Db.create (small_graph ())) in
      (* Read-only until a store is attached. *)
      (match Service.mutate svc (Service.M_add_vertex { label = 0 }) with
      | Error Service.M_read_only -> ()
      | _ -> Alcotest.fail "mutation without a store must be refused");
      Service.attach_store svc st;
      (match Service.mutate svc ~text:"addedge 0 3" (Service.M_add_edge { u = 0; v = 3; elabel = 0 }) with
      | Ok r ->
          check_bool "applied" true r.Service.m_applied;
          check_bool "durable covers lsn" true (r.Service.m_durable >= r.Service.m_lsn)
      | Error e -> Alcotest.fail (Service.mutation_error_to_string e));
      (match Service.mutate svc (Service.M_add_edge { u = 0; v = 99; elabel = 0 }) with
      | Error (Service.M_invalid _) -> ()
      | _ -> Alcotest.fail "invalid mutation must be structured refusal");
      (* A checkpoint merges and re-seats the db: replies must carry the
         new graph version. *)
      (match Service.mutate svc Service.M_checkpoint with
      | Ok r -> check_bool "checkpoint advances graph version" true (r.Service.m_graph_version > 0)
      | Error e -> Alcotest.fail (Service.mutation_error_to_string e));
      let stats = Service.stats svc in
      check_bool "stats see the store" true
        (stats.Service.s_graph_version > 0
        && stats.Service.s_checkpoints = 1
        && stats.Service.s_wal_durable = stats.Service.s_wal_version);
      (* The query path runs against the merged CSR and reports it. *)
      (match Service.submit svc (Service.request (Gf.Patterns.q 1)) with
      | Ok reply -> check_int "query sees merged version" (Service.graph_version svc) reply.Service.graph_version
      | Error _ -> Alcotest.fail "query must be admitted");
      Service.drain svc;
      Store.close st)

(* The merge-publication hook must invalidate the plan cache: cached plans
   were costed against the pre-merge catalogue, and the advanced graph
   version makes them unreachable anyway. *)
let test_service_plan_cache_invalidation () =
  with_temp_dir (fun dir ->
      let st = Result.get_ok (Store.open_store ~config:store_cfg ~init:(small_graph ()) dir) in
      let cache = Gf.Plan_cache.create () in
      let svc =
        Service.create ~config:service_config
          (Gf.Db.create ~plan_cache:cache (small_graph ()))
      in
      Service.attach_store svc st;
      let q = Gf.Patterns.q 1 in
      let submit () =
        match Service.submit svc (Service.request q) with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "query must be admitted"
      in
      submit ();
      submit ();
      let s1 = Service.stats svc in
      check_bool "identical resubmission hits" true (s1.Service.s_plan_cache_hits >= 1);
      check_bool "cold submission missed" true (s1.Service.s_plan_cache_misses >= 1);
      (* addedge + checkpoint merges the overlay and bumps graph_version:
         the hook must drop every cached plan. *)
      (match Service.mutate svc (Service.M_add_edge { u = 0; v = 3; elabel = 0 }) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Service.mutation_error_to_string e));
      (match Service.mutate svc Service.M_checkpoint with
      | Ok r -> check_bool "merge advanced version" true (r.Service.m_graph_version > 0)
      | Error e -> Alcotest.fail (Service.mutation_error_to_string e));
      let s2 = Service.stats svc in
      check_bool "merge invalidated the cache" true
        (s2.Service.s_plan_cache_invalidations >= 1);
      check_int "cache emptied" 0 s2.Service.s_plan_cache_entries;
      submit ();
      let s3 = Service.stats svc in
      check_bool "post-merge resubmission re-plans" true
        (s3.Service.s_plan_cache_misses > s2.Service.s_plan_cache_misses);
      Service.drain svc;
      Store.close st)

let suite =
  [
    ( "wal.crc32",
      [ Alcotest.test_case "vectors and incremental folding" `Quick test_crc32_vectors ] );
    ( "wal.log",
      [
        Alcotest.test_case "roundtrip with rotation" `Quick test_wal_roundtrip_rotation;
        Alcotest.test_case "torn tail truncated" `Quick test_wal_torn_tail_truncated;
        Alcotest.test_case "interior corruption refused" `Quick test_wal_corruption_mid_log_refused;
        Alcotest.test_case "missing prefix refused" `Quick test_wal_missing_prefix_refused;
        Alcotest.test_case "drop covered segments" `Quick test_wal_drop_segments;
      ] );
    ( "wal.delta",
      [
        Alcotest.test_case "overlay semantics and merge" `Quick test_delta_semantics;
        Alcotest.test_case "neighbours overlay view" `Quick test_delta_neighbours_sorted_view;
      ] );
    ( "wal.snapshot",
      [
        Alcotest.test_case "v2 roundtrip and bit-rot detection" `Quick
          test_snapshot_v2_roundtrip_and_bitrot;
        Alcotest.test_case "v1 backward compatible" `Quick test_snapshot_v1_still_loads;
        Alcotest.test_case "failed loads close their fd" `Quick test_snapshot_failed_load_closes_fd;
      ] );
    ( "wal.store",
      [
        Alcotest.test_case "snapshot+replay recovery" `Quick test_store_recovery_roundtrip;
        Alcotest.test_case "recovered state equals pre-close state" `Quick
          test_store_recovery_equals_state;
        Alcotest.test_case "ahead-of-snapshot log refused" `Quick test_store_refuses_gutted_log;
        Alcotest.test_case "bit-rotted snapshot falls back a generation" `Quick
          test_store_falls_back_to_older_snapshot;
        Alcotest.test_case "auto-merge bumps graph version" `Quick
          test_store_auto_merge_and_invalidation;
      ] );
    ( "wal.service",
      [
        Alcotest.test_case "durable mutations end to end" `Quick test_service_mutations;
        Alcotest.test_case "merge invalidates plan cache" `Quick
          test_service_plan_cache_invalidation;
      ] );
  ]
