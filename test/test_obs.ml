(* The observability layer: span traces (nesting, ring overwrite, balanced
   Chrome export, renderer), the flight recorder (ring, retention, slow
   promotion), metric quantiles and nanosecond sum precision, and the
   acceptance gates for traced runs: every begin has a matching end per
   tid, and the operator summary track sums to the profile's totals. *)

module Trace = Gf_obs.Trace
module Recorder = Gf_obs.Recorder
module Metrics = Gf_exec.Metrics
module Exec = Gf_exec.Exec
module Parallel = Gf_exec.Parallel
module Profile = Gf_exec.Profile
module Governor = Gf_exec.Governor
module Plan = Gf_plan.Plan
module Generators = Gf_graph.Generators
module Rng = Gf_util.Rng
open Gf_query

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let has hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn = 0 || at 0

(* The acceptance gate for every exported trace: per tid, the B/E stream
   is a well-formed bracket sequence with matching names. *)
let check_balanced msg tr =
  let stacks = Hashtbl.create 8 in
  List.iter
    (fun (ph, tid, _ts, name) ->
      let st = Option.value (Hashtbl.find_opt stacks tid) ~default:[] in
      match ph with
      | 'B' -> Hashtbl.replace stacks tid (name :: st)
      | 'E' -> (
          match st with
          | top :: rest when top = name -> Hashtbl.replace stacks tid rest
          | _ -> Alcotest.fail (Printf.sprintf "%s: unmatched E %S on tid %d" msg name tid))
      | ph -> Alcotest.fail (Printf.sprintf "%s: unknown phase %c" msg ph))
    (Trace.chrome_events tr);
  Hashtbl.iter
    (fun tid st ->
      if st <> [] then
        Alcotest.fail (Printf.sprintf "%s: %d unclosed spans on tid %d" msg (List.length st) tid))
    stacks

(* --- trace core -------------------------------------------------------- *)

let test_trace_nesting () =
  let tr = Trace.create () in
  let b = Trace.buffer ~name:"worker" tr ~tid:7 in
  Trace.begin_span ~cat:"outer" b "a";
  Trace.begin_span b "b";
  Trace.instant b "tick";
  Trace.end_span ~args:[ ("rows", Trace.Int 3) ] b;
  Trace.end_span b;
  let spans = Trace.spans tr in
  check_int "three spans" 3 (List.length spans);
  let find n = List.find (fun s -> s.Trace.name = n) spans in
  check_int "outer depth" 0 (find "a").Trace.depth;
  check_int "inner depth" 1 (find "b").Trace.depth;
  check_int "instant depth" 2 (find "tick").Trace.depth;
  check_bool "end args recorded" true
    (List.mem_assoc "rows" (find "b").Trace.args);
  check_bool "inner within outer" true
    ((find "b").Trace.ts_us >= (find "a").Trace.ts_us
    && (find "b").Trace.ts_us + (find "b").Trace.dur_us
       <= (find "a").Trace.ts_us + (find "a").Trace.dur_us);
  check_balanced "nesting" tr;
  (* Stray end is ignored, not corrupting. *)
  Trace.end_span b;
  check_int "stray end ignored" 3 (List.length (Trace.spans tr))

let test_trace_ring_overwrite () =
  let tr = Trace.create ~capacity:16 () in
  let b = Trace.buffer tr ~tid:1 in
  for i = 1 to 50 do
    Trace.span b (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  check_int "ring keeps newest" 16 (List.length (Trace.spans tr));
  check_int "drops counted" 34 (Trace.dropped tr);
  check_bool "oldest survivor is s35" true
    (List.exists (fun s -> s.Trace.name = "s35") (Trace.spans tr));
  check_bool "s34 overwritten" true
    (not (List.exists (fun s -> s.Trace.name = "s34") (Trace.spans tr)));
  check_balanced "after overwrite" tr;
  check_bool "renderer reports drops" true (has (Trace.render tr) "34 spans dropped")

let test_trace_unwind () =
  (* A governor trip unwinds without orderly end_span calls; close_all must
     leave a balanced trace, and [span] must close on raise. *)
  let tr = Trace.create () in
  let b = Trace.buffer tr ~tid:1 in
  (try Trace.span b "raising" (fun () -> failwith "boom") with Failure _ -> ());
  Trace.begin_span b "p";
  Trace.begin_span b "q";
  Trace.begin_span b "r";
  Trace.close_all b;
  check_int "all recorded" 4 (List.length (Trace.spans tr));
  check_balanced "unwind" tr

let test_trace_chrome_json () =
  let tr = Trace.create () in
  let b = Trace.buffer ~name:"exec" tr ~tid:1 in
  Trace.span b "we\"ird\nname" (fun () -> Trace.instant b "i");
  let json = Trace.to_chrome_json tr in
  check_bool "envelope" true (has json "\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  check_bool "thread name metadata" true
    (has json "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1");
  check_bool "names escaped" true (has json "we\\\"ird\\nname");
  check_bool "timestamps normalized to zero" true (has json "\"ts\":0");
  check_bool "single line" true (not (String.contains json '\n'));
  (* Synthesized (add_complete) spans merge into the same stream. *)
  let t0 = Trace.now_us () in
  Trace.add_complete b ~name:"queue-wait" ~ts_us:(t0 - 500) ~dur_us:200;
  check_balanced "with synthesized span" tr

let test_trace_concurrent_domains () =
  (* Domains hammering their own buffers and the shared metrics registry
     concurrently: no events lost, per-tid streams balanced. *)
  Metrics.reset ();
  let tr = Trace.create ~capacity:4096 () in
  let h = Metrics.histogram "gf_test_obs_concurrent_seconds" in
  let c = Metrics.counter "gf_test_obs_concurrent_total" in
  let per_domain = 500 and domains = 4 in
  let work i () =
    let b = Trace.buffer ~name:(Printf.sprintf "domain %d" i) tr ~tid:(20 + i) in
    for j = 1 to per_domain do
      Trace.span b "work"
        ~args:[ ("j", Trace.Int j) ]
        (fun () ->
          Metrics.observe h 0.4e-6;
          Metrics.inc c)
    done
  in
  let ds = List.init domains (fun i -> Domain.spawn (work i)) in
  List.iter Domain.join ds;
  check_int "no spans lost" (domains * per_domain) (List.length (Trace.spans tr));
  check_int "no drops" 0 (Trace.dropped tr);
  check_balanced "concurrent" tr;
  check_int "no observations lost" (domains * per_domain) (Metrics.histogram_count h);
  check_int "no increments lost" (domains * per_domain) (Metrics.counter_value c);
  (* The satellite regression: 2000 sub-microsecond observations must not
     truncate to a zero _sum (they did when the sum was kept in µs). *)
  check_bool "sub-microsecond observations accumulate" true (Metrics.histogram_sum h > 0.0);
  Alcotest.(check (float 0.01)) "ns-accumulated sum" (float_of_int (domains * per_domain) *. 0.4e-6)
    (Metrics.histogram_sum h)

(* --- metrics: quantiles ------------------------------------------------ *)

let test_quantile () =
  Metrics.reset ();
  let buckets = [| 1.0; 2.0; 4.0; 8.0 |] in
  let h = Metrics.histogram ~buckets "gf_test_obs_quantile_seconds" in
  check_bool "empty is nan" true (Float.is_nan (Metrics.quantile h 0.5));
  for _ = 1 to 100 do
    Metrics.observe h 1.5
  done;
  (* All mass in (1,2]: linear interpolation inside that bucket. *)
  check_float "p50 of uniform bucket" 1.5 (Metrics.quantile h 0.5);
  check_float "p0 is bucket floor" 1.0 (Metrics.quantile h 0.0);
  check_float "p100 is bucket ceiling" 2.0 (Metrics.quantile h 1.0);
  let h2 = Metrics.histogram ~buckets "gf_test_obs_quantile2_seconds" in
  for _ = 1 to 50 do
    Metrics.observe h2 0.5
  done;
  for _ = 1 to 50 do
    Metrics.observe h2 3.0
  done;
  check_float "p25 in first bucket" 0.5 (Metrics.quantile h2 0.25);
  check_float "p50 at first bucket ceiling" 1.0 (Metrics.quantile h2 0.5);
  check_float "p75 in third bucket" 3.0 (Metrics.quantile h2 0.75);
  let h3 = Metrics.histogram ~buckets "gf_test_obs_quantile3_seconds" in
  for _ = 1 to 10 do
    Metrics.observe h3 100.0
  done;
  check_float "overflow reports last finite boundary" 8.0 (Metrics.quantile h3 0.5);
  check_float "clamped p" 8.0 (Metrics.quantile h3 2.0)

let test_sum_precision () =
  Metrics.reset ();
  let h = Metrics.histogram "gf_test_obs_precision_seconds" in
  for _ = 1 to 1000 do
    Metrics.observe h 0.4e-6
  done;
  check_bool "nonzero sum" true (Metrics.histogram_sum h > 0.0);
  Alcotest.(check (float 1e-6)) "sum close to 0.4ms" 4e-4 (Metrics.histogram_sum h);
  check_bool "exposition carries the nonzero sum" true
    (not (has (Metrics.exposition ()) "gf_test_obs_precision_seconds_sum 0.000000"))

(* --- flight recorder --------------------------------------------------- *)

let rec_one ?(traced = false) ?trace_json ?(latency = 0.01) r q =
  Recorder.record r ~query:q ~plan:"sig" ~outcome:"completed" ~latency_s:latency
    ~queue_s:0.0 ~rung:"sequential" ~attempts:1 ~retries:0 ~top_ops:[] ~traced ?trace_json ()

let test_recorder_ring () =
  let r = Recorder.create ~capacity:4 ~retain:2 ~slow_s:0.1 () in
  let ids = List.init 6 (fun i -> rec_one r (Printf.sprintf "q%d" (i + 1))) in
  check_bool "ids monotonic from 1" true (ids = [ 1; 2; 3; 4; 5; 6 ]);
  check_int "ring bounded" 4 (Recorder.length r);
  let recent = Recorder.recent r 10 in
  check_bool "newest first, oldest evicted" true
    (List.map (fun x -> x.Recorder.id) recent = [ 6; 5; 4; 3 ]);
  check_bool "recent k limits" true (List.length (Recorder.recent r 2) = 2);
  let j = Recorder.record_to_json (List.hd recent) in
  check_bool "record json has query" true (has j "\"query\":\"q6\"");
  check_bool "record json has outcome" true (has j "\"outcome\":\"completed\"")

let test_recorder_retention () =
  let r = Recorder.create ~capacity:32 ~retain:2 ~slow_s:0.1 () in
  let t1 = rec_one ~traced:true ~trace_json:"{\"n\":1}" r "t1" in
  let t2 = rec_one ~traced:true ~trace_json:"{\"n\":2}" r "t2" in
  let t3 = rec_one ~traced:true ~trace_json:"{\"n\":3}" r "t3" in
  check_bool "oldest recent trace evicted" true (Recorder.find_trace r t1 = None);
  check_bool "recent traces kept" true
    (Recorder.find_trace r t2 = Some "{\"n\":2}" && Recorder.find_trace r t3 = Some "{\"n\":3}");
  (* A slow trace is pinned: later traffic evicts recent traces around it. *)
  let s = rec_one ~traced:true ~trace_json:"{\"slow\":1}" ~latency:0.5 r "slow" in
  check_bool "slow flagged" true (List.exists (fun x -> x.Recorder.slow) (Recorder.recent r 1));
  let _ = rec_one ~traced:true ~trace_json:"{\"n\":4}" r "t4" in
  let _ = rec_one ~traced:true ~trace_json:"{\"n\":5}" r "t5" in
  let _ = rec_one ~traced:true ~trace_json:"{\"n\":6}" r "t6" in
  check_bool "slow trace outlives recent eviction" true
    (Recorder.find_trace r s = Some "{\"slow\":1}");
  check_bool "fast trace evicted meanwhile" true (Recorder.find_trace r t3 = None);
  check_bool "retained ids ascending include slow" true
    (let ids = Recorder.retained_ids r in
     List.mem s ids && List.sort compare ids = ids);
  check_float "threshold exposed" 0.1 (Recorder.slow_threshold r)

let test_recorder_json_escaping () =
  let r = Recorder.create () in
  let _ = rec_one r "a\nb\"c\\d" in
  let j = Recorder.record_to_json (List.hd (Recorder.recent r 1)) in
  check_bool "one line" true (not (String.contains j '\n'));
  check_bool "newline escaped" true (has j "a\\nb\\\"c\\\\d")

(* --- traced runs: the acceptance gates --------------------------------- *)

let graph () = Generators.holme_kim (Rng.create 11) ~n:300 ~m_per:4 ~p_triad:0.5 ~recip:0.4

let hybrid_plan () =
  let q = Patterns.diamond_x in
  Plan.hash_join q (Plan.wco q [| 1; 2; 0 |]) (Plan.wco q [| 1; 2; 3 |])

(* Operator summary track vs the profile it was synthesized from: the span
   durations must sum to the profile's total self time within 5% (they are
   packed from per-op µs roundings, so in practice they are equal). *)
let check_operator_track msg tr prof =
  let ops_total =
    Array.fold_left (fun acc o -> acc +. o.Profile.time_s) 0.0 (Profile.ops prof)
  in
  let track =
    List.filter (fun s -> s.Trace.cat = "operator") (Trace.spans tr)
    |> List.fold_left (fun acc s -> acc +. (float_of_int s.Trace.dur_us /. 1e6)) 0.0
  in
  check_int (msg ^ ": one span per operator")
    (Array.length (Profile.ops prof))
    (List.length (List.filter (fun s -> s.Trace.cat = "operator") (Trace.spans tr)));
  check_bool
    (Printf.sprintf "%s: operator track %.6fs within 5%% of profile %.6fs" msg track ops_total)
    true
    (Float.abs (track -. ops_total) <= (0.05 *. ops_total) +. 3e-6)

let test_traced_sequential () =
  let g = graph () in
  let plan = hybrid_plan () in
  let tr = Trace.create () in
  let prof = Profile.create plan in
  let c, outcome = Exec.run_gov ~prof ~trace:tr g plan in
  check_bool "completed" true (outcome = Governor.Completed);
  check_bool "produced matches" true (c.Gf_exec.Counters.output > 0);
  check_balanced "sequential traced" tr;
  check_bool "execute span present" true
    (List.exists (fun s -> s.Trace.name = "execute") (Trace.spans tr));
  check_bool "hash-join build span present" true
    (List.exists (fun s -> s.Trace.name = "hj-build") (Trace.spans tr));
  check_operator_track "sequential" tr prof

let test_traced_sequential_trip () =
  (* A budget trip unwinds mid-pipeline; the exported trace must still be
     balanced (the executor's close_all covers the abandoned stack). *)
  let g = graph () in
  let plan = hybrid_plan () in
  let tr = Trace.create () in
  let _, outcome =
    Exec.run_gov ~budget:(Governor.budget ~max_output:5 ()) ~trace:tr g plan
  in
  check_bool "truncated" true
    (match outcome with Governor.Truncated _ -> true | _ -> false);
  check_balanced "truncated traced" tr

let test_traced_parallel () =
  let g = graph () in
  let plan = hybrid_plan () in
  let tr = Trace.create () in
  let prof = Profile.create plan in
  let report = Parallel.run ~domains:4 ~prof ~trace:tr g plan in
  check_bool "parallel completed" true (report.Parallel.outcome = Governor.Completed);
  check_balanced "parallel traced" tr;
  let spans = Trace.spans tr in
  let tids = List.sort_uniq compare (List.map (fun s -> s.Trace.tid) spans) in
  check_bool "coordinator + 4 domains + operator track" true
    (List.for_all (fun t -> List.mem t tids) [ 9; 10; 11; 12; 13; 100 ]);
  check_bool "worker root spans" true
    (List.length (List.filter (fun s -> s.Trace.name = "worker") spans) = 4);
  check_bool "morsel spans recorded" true
    (List.exists (fun s -> s.Trace.name = "morsel") spans);
  check_operator_track "parallel" tr prof;
  (* Sequential and parallel agree on the answer even when traced. *)
  let c_seq = Exec.run g plan in
  check_int "traced parallel count matches sequential"
    c_seq.Gf_exec.Counters.output report.Parallel.counters.Gf_exec.Counters.output

(* --- cross-process spans: export, graft, skew -------------------------- *)

let test_export_graft_roundtrip () =
  (* A "worker" trace with hostile names/args is serialized, shipped, and
     grafted into a "coordinator" trace: everything must survive the wire
     encoding, land on its own process track, and stay balanced. *)
  let worker = Trace.create () in
  let wb = Trace.buffer ~name:"exec|thread;1" worker ~tid:3 in
  Trace.begin_span ~cat:"we|ird;cat" wb "sp|an;on\nwire";
  Trace.begin_span wb "inner";
  Trace.end_span ~args:[ ("rows", Trace.Int 42); ("sel", Trace.Float 0.125); ("q", Trace.Str "a,b|c;d") ] wb;
  Trace.end_span wb;
  let data = Trace.export_spans worker in
  check_bool "wire data is one line" true (not (String.contains data '\n'));
  let coord = Trace.create () in
  let cb = Trace.buffer ~name:"coordinator" coord ~tid:1 in
  Trace.span cb "request" (fun () -> ());
  Trace.graft coord ~pid:4242 ~pname:"w0 (unix:/w0.sock)" ~skew_us:1_000_000 data;
  let spans = Trace.spans coord in
  check_int "local + grafted spans" 3 (List.length spans);
  let find n = List.find (fun s -> s.Trace.name = n) spans in
  let outer = find "sp|an;on\nwire" in
  check_int "grafted pid" 4242 outer.Trace.pid;
  check_int "grafted tid preserved" 3 outer.Trace.tid;
  check_bool "category survives" true (outer.Trace.cat = "we|ird;cat");
  let inner = find "inner" in
  check_int "depth survives" 1 inner.Trace.depth;
  check_bool "int arg survives" true (List.assoc "rows" inner.Trace.args = Trace.Int 42);
  check_bool "float arg survives exactly" true (List.assoc "sel" inner.Trace.args = Trace.Float 0.125);
  check_bool "string arg survives" true (List.assoc "q" inner.Trace.args = Trace.Str "a,b|c;d");
  (* Skew adjustment: the worker clock ran 1s ahead, so grafted timestamps
     come back shifted down by exactly that much. *)
  let worker_outer =
    List.find (fun s -> s.Trace.name = "sp|an;on\nwire") (Trace.spans worker)
  in
  check_int "skew subtracted" (worker_outer.Trace.ts_us - 1_000_000) outer.Trace.ts_us;
  check_balanced "grafted trace" coord;
  let json = Trace.to_chrome_json coord in
  check_bool "worker process track named" true
    (has json "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":4242");
  check_bool "coordinator process track named" true
    (has json "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1");
  check_bool "grafted thread name carries pid" true
    (has json "\"ph\":\"M\",\"pid\":4242,\"tid\":3");
  check_bool "events carry their pid" true (has json "\"pid\":4242,\"tid\":3,\"args\"");
  check_bool "single line" true (not (String.contains json '\n'));
  check_bool "renderer shows the process" true (has (Trace.render coord) "w0 (unix:/w0.sock)")

let test_graft_malformed () =
  (* Garbage from the wire must never corrupt the local trace: bad records
     are skipped, good ones in the same payload still land. *)
  let tr = Trace.create () in
  Trace.graft tr ~pid:7 ~pname:"w" ~skew_us:0
    "garbage;S|x|y|z;B|notanint|n;S|1|10|5|0|ok|cat|;B|2|fine;;|||";
  let spans = Trace.spans tr in
  check_int "only the well-formed span landed" 1 (List.length spans);
  check_bool "its name decoded" true ((List.hd spans).Trace.name = "ok");
  check_balanced "after malformed graft" tr;
  (* Graft into a live trace twice (two replicas of the same shard answer):
     tracks are distinct per pid so nothing collides. *)
  Trace.graft tr ~pid:8 ~pname:"w'" ~skew_us:0 "S|1|10|5|0|ok|cat|";
  check_int "second process grafted" 2 (List.length (Trace.spans tr));
  check_int "two pids" 2 (List.length (Trace.pids tr));
  check_balanced "two grafts" tr

(* --- metrics: labels and exposition ------------------------------------ *)

let test_metrics_labels () =
  Metrics.reset ();
  let c0 = Metrics.counter ~help:"a counter" "gf_test_labels_total" in
  let ca = Metrics.counter ~labels:[ ("shard", "0") ] "gf_test_labeled_total" in
  let cb = Metrics.counter ~labels:[ ("shard", "1") ] "gf_test_labeled_total" in
  Metrics.inc c0;
  Metrics.inc ~by:2 ca;
  Metrics.inc ~by:5 cb;
  (* Same (name, labels) must resolve to the same series; label order must
     not mint a new one. *)
  check_bool "same series" true
    (Metrics.counter ~labels:[ ("shard", "0") ] "gf_test_labeled_total" == ca);
  let h = Metrics.histogram ~labels:[ ("shard", "0"); ("role", "w") ] "gf_test_labeled_seconds" in
  Metrics.observe h 0.5;
  let esc = Metrics.counter ~labels:[ ("q", "he said \"hi\"\\\n") ] "gf_test_escaped_total" in
  Metrics.inc esc;
  let e = Metrics.exposition () in
  check_bool "bare sample unchanged" true (has e "gf_test_labels_total 1\n");
  check_bool "labeled samples" true
    (has e "gf_test_labeled_total{shard=\"0\"} 2\n" && has e "gf_test_labeled_total{shard=\"1\"} 5\n");
  (* One HELP/TYPE header per family, not per labeled series. *)
  let count_sub needle =
    let nh = String.length e and nn = String.length needle in
    let rec go i acc =
      if i + nn > nh then acc
      else go (i + 1) (if String.sub e i nn = needle then acc + 1 else acc)
    in
    go 0 0
  in
  check_int "one TYPE line per family" 1 (count_sub "# TYPE gf_test_labeled_total counter");
  check_bool "histogram labels sorted, le last" true
    (has e "gf_test_labeled_seconds_bucket{role=\"w\",shard=\"0\",le=\"+Inf\"} 1\n");
  check_bool "histogram sum/count labeled" true
    (has e "gf_test_labeled_seconds_count{role=\"w\",shard=\"0\"} 1\n");
  check_bool "label values escaped" true
    (has e "gf_test_escaped_total{q=\"he said \\\"hi\\\"\\\\\\n\"} 1\n");
  Metrics.reset ()

(* --- the /metrics HTTP listener ----------------------------------------- *)

let test_expose_http () =
  let hits = ref 0 in
  let ex =
    match
      Gf_obs.Expose.start ~port:0
        [
          ("/metrics", fun () -> incr hits; ("text/plain; version=0.0.4", "gf_up 1\n"));
          ("/healthz", fun () -> ("text/plain", "ok\n"));
          ("/boom", fun () -> failwith "handler bug");
        ]
    with
    | Ok ex -> ex
    | Error m -> Alcotest.fail ("expose start: " ^ m)
  in
  let port = Gf_obs.Expose.port ex in
  check_bool "picked a real port" true (port > 0);
  let get path =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    let req = Printf.sprintf "GET %s HTTP/1.0\r\nHost: x\r\n\r\n" path in
    ignore (Unix.write_substring fd req 0 (String.length req));
    let buf = Buffer.create 256 and chunk = Bytes.create 1024 in
    let rec drain () =
      match Unix.read fd chunk 0 1024 with
      | 0 -> ()
      | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
      | exception Unix.Unix_error _ -> ()
    in
    drain ();
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Buffer.contents buf
  in
  let metrics = get "/metrics" in
  check_bool "200" true (has metrics "HTTP/1.0 200 OK");
  check_bool "content type" true (has metrics "Content-Type: text/plain; version=0.0.4");
  check_bool "content length" true (has metrics "Content-Length: 8");
  check_bool "body" true (has metrics "gf_up 1\n");
  check_int "handler ran once" 1 !hits;
  check_bool "query string routes too" true (has (get "/metrics?x=1") "gf_up 1");
  check_bool "healthz" true (has (get "/healthz") "ok");
  check_bool "404 structured" true (has (get "/nope") "HTTP/1.0 404 Not Found");
  check_bool "handler exception is a 500, not a crash" true
    (has (get "/boom") "HTTP/1.0 500 Internal Server Error");
  check_bool "still serving after the 500" true (has (get "/metrics") "gf_up 1");
  Gf_obs.Expose.stop ex;
  Gf_obs.Expose.stop ex (* idempotent *)

let suite =
  [
    ( "obs.trace",
      [
        Alcotest.test_case "nesting and balance" `Quick test_trace_nesting;
        Alcotest.test_case "ring overwrite" `Quick test_trace_ring_overwrite;
        Alcotest.test_case "unwind paths" `Quick test_trace_unwind;
        Alcotest.test_case "chrome json export" `Quick test_trace_chrome_json;
        Alcotest.test_case "concurrent domains" `Quick test_trace_concurrent_domains;
        Alcotest.test_case "export/graft roundtrip" `Quick test_export_graft_roundtrip;
        Alcotest.test_case "graft skips malformed records" `Quick test_graft_malformed;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "quantiles" `Quick test_quantile;
        Alcotest.test_case "nanosecond sum precision" `Quick test_sum_precision;
        Alcotest.test_case "labels and exposition" `Quick test_metrics_labels;
      ] );
    ( "obs.expose",
      [ Alcotest.test_case "http listener" `Quick test_expose_http ] );
    ( "obs.recorder",
      [
        Alcotest.test_case "bounded ring" `Quick test_recorder_ring;
        Alcotest.test_case "trace retention and slow pinning" `Quick test_recorder_retention;
        Alcotest.test_case "json escaping" `Quick test_recorder_json_escaping;
      ] );
    ( "obs.traced-runs",
      [
        Alcotest.test_case "sequential" `Quick test_traced_sequential;
        Alcotest.test_case "budget trip stays balanced" `Quick test_traced_sequential_trip;
        Alcotest.test_case "parallel acceptance" `Quick test_traced_parallel;
      ] );
  ]
