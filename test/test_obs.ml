(* The observability layer: span traces (nesting, ring overwrite, balanced
   Chrome export, renderer), the flight recorder (ring, retention, slow
   promotion), metric quantiles and nanosecond sum precision, and the
   acceptance gates for traced runs: every begin has a matching end per
   tid, and the operator summary track sums to the profile's totals. *)

module Trace = Gf_obs.Trace
module Recorder = Gf_obs.Recorder
module Metrics = Gf_exec.Metrics
module Exec = Gf_exec.Exec
module Parallel = Gf_exec.Parallel
module Profile = Gf_exec.Profile
module Governor = Gf_exec.Governor
module Plan = Gf_plan.Plan
module Generators = Gf_graph.Generators
module Rng = Gf_util.Rng
open Gf_query

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let has hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn = 0 || at 0

(* The acceptance gate for every exported trace: per tid, the B/E stream
   is a well-formed bracket sequence with matching names. *)
let check_balanced msg tr =
  let stacks = Hashtbl.create 8 in
  List.iter
    (fun (ph, tid, _ts, name) ->
      let st = Option.value (Hashtbl.find_opt stacks tid) ~default:[] in
      match ph with
      | 'B' -> Hashtbl.replace stacks tid (name :: st)
      | 'E' -> (
          match st with
          | top :: rest when top = name -> Hashtbl.replace stacks tid rest
          | _ -> Alcotest.fail (Printf.sprintf "%s: unmatched E %S on tid %d" msg name tid))
      | ph -> Alcotest.fail (Printf.sprintf "%s: unknown phase %c" msg ph))
    (Trace.chrome_events tr);
  Hashtbl.iter
    (fun tid st ->
      if st <> [] then
        Alcotest.fail (Printf.sprintf "%s: %d unclosed spans on tid %d" msg (List.length st) tid))
    stacks

(* --- trace core -------------------------------------------------------- *)

let test_trace_nesting () =
  let tr = Trace.create () in
  let b = Trace.buffer ~name:"worker" tr ~tid:7 in
  Trace.begin_span ~cat:"outer" b "a";
  Trace.begin_span b "b";
  Trace.instant b "tick";
  Trace.end_span ~args:[ ("rows", Trace.Int 3) ] b;
  Trace.end_span b;
  let spans = Trace.spans tr in
  check_int "three spans" 3 (List.length spans);
  let find n = List.find (fun s -> s.Trace.name = n) spans in
  check_int "outer depth" 0 (find "a").Trace.depth;
  check_int "inner depth" 1 (find "b").Trace.depth;
  check_int "instant depth" 2 (find "tick").Trace.depth;
  check_bool "end args recorded" true
    (List.mem_assoc "rows" (find "b").Trace.args);
  check_bool "inner within outer" true
    ((find "b").Trace.ts_us >= (find "a").Trace.ts_us
    && (find "b").Trace.ts_us + (find "b").Trace.dur_us
       <= (find "a").Trace.ts_us + (find "a").Trace.dur_us);
  check_balanced "nesting" tr;
  (* Stray end is ignored, not corrupting. *)
  Trace.end_span b;
  check_int "stray end ignored" 3 (List.length (Trace.spans tr))

let test_trace_ring_overwrite () =
  let tr = Trace.create ~capacity:16 () in
  let b = Trace.buffer tr ~tid:1 in
  for i = 1 to 50 do
    Trace.span b (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  check_int "ring keeps newest" 16 (List.length (Trace.spans tr));
  check_int "drops counted" 34 (Trace.dropped tr);
  check_bool "oldest survivor is s35" true
    (List.exists (fun s -> s.Trace.name = "s35") (Trace.spans tr));
  check_bool "s34 overwritten" true
    (not (List.exists (fun s -> s.Trace.name = "s34") (Trace.spans tr)));
  check_balanced "after overwrite" tr;
  check_bool "renderer reports drops" true (has (Trace.render tr) "34 spans dropped")

let test_trace_unwind () =
  (* A governor trip unwinds without orderly end_span calls; close_all must
     leave a balanced trace, and [span] must close on raise. *)
  let tr = Trace.create () in
  let b = Trace.buffer tr ~tid:1 in
  (try Trace.span b "raising" (fun () -> failwith "boom") with Failure _ -> ());
  Trace.begin_span b "p";
  Trace.begin_span b "q";
  Trace.begin_span b "r";
  Trace.close_all b;
  check_int "all recorded" 4 (List.length (Trace.spans tr));
  check_balanced "unwind" tr

let test_trace_chrome_json () =
  let tr = Trace.create () in
  let b = Trace.buffer ~name:"exec" tr ~tid:1 in
  Trace.span b "we\"ird\nname" (fun () -> Trace.instant b "i");
  let json = Trace.to_chrome_json tr in
  check_bool "envelope" true (has json "\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  check_bool "thread name metadata" true
    (has json "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1");
  check_bool "names escaped" true (has json "we\\\"ird\\nname");
  check_bool "timestamps normalized to zero" true (has json "\"ts\":0");
  check_bool "single line" true (not (String.contains json '\n'));
  (* Synthesized (add_complete) spans merge into the same stream. *)
  let t0 = Trace.now_us () in
  Trace.add_complete b ~name:"queue-wait" ~ts_us:(t0 - 500) ~dur_us:200;
  check_balanced "with synthesized span" tr

let test_trace_concurrent_domains () =
  (* Domains hammering their own buffers and the shared metrics registry
     concurrently: no events lost, per-tid streams balanced. *)
  Metrics.reset ();
  let tr = Trace.create ~capacity:4096 () in
  let h = Metrics.histogram "gf_test_obs_concurrent_seconds" in
  let c = Metrics.counter "gf_test_obs_concurrent_total" in
  let per_domain = 500 and domains = 4 in
  let work i () =
    let b = Trace.buffer ~name:(Printf.sprintf "domain %d" i) tr ~tid:(20 + i) in
    for j = 1 to per_domain do
      Trace.span b "work"
        ~args:[ ("j", Trace.Int j) ]
        (fun () ->
          Metrics.observe h 0.4e-6;
          Metrics.inc c)
    done
  in
  let ds = List.init domains (fun i -> Domain.spawn (work i)) in
  List.iter Domain.join ds;
  check_int "no spans lost" (domains * per_domain) (List.length (Trace.spans tr));
  check_int "no drops" 0 (Trace.dropped tr);
  check_balanced "concurrent" tr;
  check_int "no observations lost" (domains * per_domain) (Metrics.histogram_count h);
  check_int "no increments lost" (domains * per_domain) (Metrics.counter_value c);
  (* The satellite regression: 2000 sub-microsecond observations must not
     truncate to a zero _sum (they did when the sum was kept in µs). *)
  check_bool "sub-microsecond observations accumulate" true (Metrics.histogram_sum h > 0.0);
  Alcotest.(check (float 0.01)) "ns-accumulated sum" (float_of_int (domains * per_domain) *. 0.4e-6)
    (Metrics.histogram_sum h)

(* --- metrics: quantiles ------------------------------------------------ *)

let test_quantile () =
  Metrics.reset ();
  let buckets = [| 1.0; 2.0; 4.0; 8.0 |] in
  let h = Metrics.histogram ~buckets "gf_test_obs_quantile_seconds" in
  check_bool "empty is nan" true (Float.is_nan (Metrics.quantile h 0.5));
  for _ = 1 to 100 do
    Metrics.observe h 1.5
  done;
  (* All mass in (1,2]: linear interpolation inside that bucket. *)
  check_float "p50 of uniform bucket" 1.5 (Metrics.quantile h 0.5);
  check_float "p0 is bucket floor" 1.0 (Metrics.quantile h 0.0);
  check_float "p100 is bucket ceiling" 2.0 (Metrics.quantile h 1.0);
  let h2 = Metrics.histogram ~buckets "gf_test_obs_quantile2_seconds" in
  for _ = 1 to 50 do
    Metrics.observe h2 0.5
  done;
  for _ = 1 to 50 do
    Metrics.observe h2 3.0
  done;
  check_float "p25 in first bucket" 0.5 (Metrics.quantile h2 0.25);
  check_float "p50 at first bucket ceiling" 1.0 (Metrics.quantile h2 0.5);
  check_float "p75 in third bucket" 3.0 (Metrics.quantile h2 0.75);
  let h3 = Metrics.histogram ~buckets "gf_test_obs_quantile3_seconds" in
  for _ = 1 to 10 do
    Metrics.observe h3 100.0
  done;
  check_float "overflow reports last finite boundary" 8.0 (Metrics.quantile h3 0.5);
  check_float "clamped p" 8.0 (Metrics.quantile h3 2.0)

let test_sum_precision () =
  Metrics.reset ();
  let h = Metrics.histogram "gf_test_obs_precision_seconds" in
  for _ = 1 to 1000 do
    Metrics.observe h 0.4e-6
  done;
  check_bool "nonzero sum" true (Metrics.histogram_sum h > 0.0);
  Alcotest.(check (float 1e-6)) "sum close to 0.4ms" 4e-4 (Metrics.histogram_sum h);
  check_bool "exposition carries the nonzero sum" true
    (not (has (Metrics.exposition ()) "gf_test_obs_precision_seconds_sum 0.000000"))

(* --- flight recorder --------------------------------------------------- *)

let rec_one ?(traced = false) ?trace_json ?(latency = 0.01) r q =
  Recorder.record r ~query:q ~plan:"sig" ~outcome:"completed" ~latency_s:latency
    ~queue_s:0.0 ~rung:"sequential" ~attempts:1 ~retries:0 ~top_ops:[] ~traced ?trace_json ()

let test_recorder_ring () =
  let r = Recorder.create ~capacity:4 ~retain:2 ~slow_s:0.1 () in
  let ids = List.init 6 (fun i -> rec_one r (Printf.sprintf "q%d" (i + 1))) in
  check_bool "ids monotonic from 1" true (ids = [ 1; 2; 3; 4; 5; 6 ]);
  check_int "ring bounded" 4 (Recorder.length r);
  let recent = Recorder.recent r 10 in
  check_bool "newest first, oldest evicted" true
    (List.map (fun x -> x.Recorder.id) recent = [ 6; 5; 4; 3 ]);
  check_bool "recent k limits" true (List.length (Recorder.recent r 2) = 2);
  let j = Recorder.record_to_json (List.hd recent) in
  check_bool "record json has query" true (has j "\"query\":\"q6\"");
  check_bool "record json has outcome" true (has j "\"outcome\":\"completed\"")

let test_recorder_retention () =
  let r = Recorder.create ~capacity:32 ~retain:2 ~slow_s:0.1 () in
  let t1 = rec_one ~traced:true ~trace_json:"{\"n\":1}" r "t1" in
  let t2 = rec_one ~traced:true ~trace_json:"{\"n\":2}" r "t2" in
  let t3 = rec_one ~traced:true ~trace_json:"{\"n\":3}" r "t3" in
  check_bool "oldest recent trace evicted" true (Recorder.find_trace r t1 = None);
  check_bool "recent traces kept" true
    (Recorder.find_trace r t2 = Some "{\"n\":2}" && Recorder.find_trace r t3 = Some "{\"n\":3}");
  (* A slow trace is pinned: later traffic evicts recent traces around it. *)
  let s = rec_one ~traced:true ~trace_json:"{\"slow\":1}" ~latency:0.5 r "slow" in
  check_bool "slow flagged" true (List.exists (fun x -> x.Recorder.slow) (Recorder.recent r 1));
  let _ = rec_one ~traced:true ~trace_json:"{\"n\":4}" r "t4" in
  let _ = rec_one ~traced:true ~trace_json:"{\"n\":5}" r "t5" in
  let _ = rec_one ~traced:true ~trace_json:"{\"n\":6}" r "t6" in
  check_bool "slow trace outlives recent eviction" true
    (Recorder.find_trace r s = Some "{\"slow\":1}");
  check_bool "fast trace evicted meanwhile" true (Recorder.find_trace r t3 = None);
  check_bool "retained ids ascending include slow" true
    (let ids = Recorder.retained_ids r in
     List.mem s ids && List.sort compare ids = ids);
  check_float "threshold exposed" 0.1 (Recorder.slow_threshold r)

let test_recorder_json_escaping () =
  let r = Recorder.create () in
  let _ = rec_one r "a\nb\"c\\d" in
  let j = Recorder.record_to_json (List.hd (Recorder.recent r 1)) in
  check_bool "one line" true (not (String.contains j '\n'));
  check_bool "newline escaped" true (has j "a\\nb\\\"c\\\\d")

(* --- traced runs: the acceptance gates --------------------------------- *)

let graph () = Generators.holme_kim (Rng.create 11) ~n:300 ~m_per:4 ~p_triad:0.5 ~recip:0.4

let hybrid_plan () =
  let q = Patterns.diamond_x in
  Plan.hash_join q (Plan.wco q [| 1; 2; 0 |]) (Plan.wco q [| 1; 2; 3 |])

(* Operator summary track vs the profile it was synthesized from: the span
   durations must sum to the profile's total self time within 5% (they are
   packed from per-op µs roundings, so in practice they are equal). *)
let check_operator_track msg tr prof =
  let ops_total =
    Array.fold_left (fun acc o -> acc +. o.Profile.time_s) 0.0 (Profile.ops prof)
  in
  let track =
    List.filter (fun s -> s.Trace.cat = "operator") (Trace.spans tr)
    |> List.fold_left (fun acc s -> acc +. (float_of_int s.Trace.dur_us /. 1e6)) 0.0
  in
  check_int (msg ^ ": one span per operator")
    (Array.length (Profile.ops prof))
    (List.length (List.filter (fun s -> s.Trace.cat = "operator") (Trace.spans tr)));
  check_bool
    (Printf.sprintf "%s: operator track %.6fs within 5%% of profile %.6fs" msg track ops_total)
    true
    (Float.abs (track -. ops_total) <= (0.05 *. ops_total) +. 3e-6)

let test_traced_sequential () =
  let g = graph () in
  let plan = hybrid_plan () in
  let tr = Trace.create () in
  let prof = Profile.create plan in
  let c, outcome = Exec.run_gov ~prof ~trace:tr g plan in
  check_bool "completed" true (outcome = Governor.Completed);
  check_bool "produced matches" true (c.Gf_exec.Counters.output > 0);
  check_balanced "sequential traced" tr;
  check_bool "execute span present" true
    (List.exists (fun s -> s.Trace.name = "execute") (Trace.spans tr));
  check_bool "hash-join build span present" true
    (List.exists (fun s -> s.Trace.name = "hj-build") (Trace.spans tr));
  check_operator_track "sequential" tr prof

let test_traced_sequential_trip () =
  (* A budget trip unwinds mid-pipeline; the exported trace must still be
     balanced (the executor's close_all covers the abandoned stack). *)
  let g = graph () in
  let plan = hybrid_plan () in
  let tr = Trace.create () in
  let _, outcome =
    Exec.run_gov ~budget:(Governor.budget ~max_output:5 ()) ~trace:tr g plan
  in
  check_bool "truncated" true
    (match outcome with Governor.Truncated _ -> true | _ -> false);
  check_balanced "truncated traced" tr

let test_traced_parallel () =
  let g = graph () in
  let plan = hybrid_plan () in
  let tr = Trace.create () in
  let prof = Profile.create plan in
  let report = Parallel.run ~domains:4 ~prof ~trace:tr g plan in
  check_bool "parallel completed" true (report.Parallel.outcome = Governor.Completed);
  check_balanced "parallel traced" tr;
  let spans = Trace.spans tr in
  let tids = List.sort_uniq compare (List.map (fun s -> s.Trace.tid) spans) in
  check_bool "coordinator + 4 domains + operator track" true
    (List.for_all (fun t -> List.mem t tids) [ 9; 10; 11; 12; 13; 100 ]);
  check_bool "worker root spans" true
    (List.length (List.filter (fun s -> s.Trace.name = "worker") spans) = 4);
  check_bool "morsel spans recorded" true
    (List.exists (fun s -> s.Trace.name = "morsel") spans);
  check_operator_track "parallel" tr prof;
  (* Sequential and parallel agree on the answer even when traced. *)
  let c_seq = Exec.run g plan in
  check_int "traced parallel count matches sequential"
    c_seq.Gf_exec.Counters.output report.Parallel.counters.Gf_exec.Counters.output

let suite =
  [
    ( "obs.trace",
      [
        Alcotest.test_case "nesting and balance" `Quick test_trace_nesting;
        Alcotest.test_case "ring overwrite" `Quick test_trace_ring_overwrite;
        Alcotest.test_case "unwind paths" `Quick test_trace_unwind;
        Alcotest.test_case "chrome json export" `Quick test_trace_chrome_json;
        Alcotest.test_case "concurrent domains" `Quick test_trace_concurrent_domains;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "quantiles" `Quick test_quantile;
        Alcotest.test_case "nanosecond sum precision" `Quick test_sum_precision;
      ] );
    ( "obs.recorder",
      [
        Alcotest.test_case "bounded ring" `Quick test_recorder_ring;
        Alcotest.test_case "trace retention and slow pinning" `Quick test_recorder_retention;
        Alcotest.test_case "json escaping" `Quick test_recorder_json_escaping;
      ] );
    ( "obs.traced-runs",
      [
        Alcotest.test_case "sequential" `Quick test_traced_sequential;
        Alcotest.test_case "budget trip stays balanced" `Quick test_traced_sequential_trip;
        Alcotest.test_case "parallel acceptance" `Quick test_traced_parallel;
      ] );
  ]
