(* Differential tests for the intersection kernels: the scalar OCaml
   fallback, the C stubs (SIMD where the CPU has it), and leapfrog must all
   produce bit-identical output — the set intersection of strictly
   increasing sequences is unique, so any divergence is a kernel bug.
   Inputs deliberately cover the kernels' dispatch regimes: balanced pairs
   (shuffle path), heavily skewed pairs (blocked galloping), dense
   consecutive runs (full-match compaction), empties and singletons, and
   both element widths on each side. *)

open Gf_util
module Graph = Gf_graph.Graph
module Gf = Graphflow

let check_int = Alcotest.(check int)

let run_kernel mode a alo ahi b blo bhi =
  Sorted.with_kernel_mode mode (fun () ->
      let out = Int_vec.create () in
      Sorted.intersect2 out a alo ahi b blo bhi;
      Int_vec.to_array out)

let naive a alo ahi b blo bhi =
  let out = ref [] in
  for i = alo to ahi - 1 do
    let x = Buf.get a i in
    let found = ref false in
    for j = blo to bhi - 1 do
      if Buf.get b j = x then found := true
    done;
    if !found then out := x :: !out
  done;
  Array.of_list (List.rev !out)

(* Sorted distinct arrays with controllable length and density. [density]
   close to 1.0 yields dense consecutive runs (the shuffle kernel's
   full-match fast path); small densities yield sparse lists. *)
let gen_sorted rng ~len ~density =
  let out = Array.make len 0 in
  let v = ref 0 in
  for i = 0 to len - 1 do
    let gap = 1 + Rng.geometric rng density in
    v := !v + gap;
    out.(i) <- !v
  done;
  out

let widths = [ `I32; `I64 ]

let width_name = function `I32 -> "i32" | `I64 -> "i64" | `Auto -> "auto"

(* One differential trial: every kernel and width combination against the
   quadratic reference. *)
let differential_trial rng ~la ~lb ~density =
  let a = gen_sorted rng ~len:la ~density in
  let b =
    (* Overlap half the time by sampling b out of a's value range. *)
    if Rng.int rng 2 = 0 then gen_sorted rng ~len:lb ~density
    else
      Array.init lb (fun _ -> if la = 0 then Rng.int rng 100 else a.(Rng.int rng la))
      |> Array.to_list |> List.sort_uniq compare |> Array.of_list
  in
  let lb = Array.length b in
  List.iter
    (fun wa ->
      List.iter
        (fun wb ->
          let ba = Buf.of_int_array ~width:wa a and bb = Buf.of_int_array ~width:wb b in
          let expect = naive ba 0 la bb 0 lb in
          let scalar = run_kernel Sorted.Scalar ba 0 la bb 0 lb in
          let simd = run_kernel Sorted.Simd ba 0 la bb 0 lb in
          let label =
            Printf.sprintf "la=%d lb=%d %s x %s" la lb (width_name wa) (width_name wb)
          in
          Alcotest.(check (array int)) (label ^ " scalar") expect scalar;
          Alcotest.(check (array int)) (label ^ " simd") expect simd;
          (* leapfrog over the same pair *)
          let out = Int_vec.create () in
          Sorted.leapfrog out [| (ba, 0, la); (bb, 0, lb) |];
          Alcotest.(check (array int)) (label ^ " leapfrog") expect (Int_vec.to_array out))
        widths)
    widths

let test_differential_balanced () =
  let rng = Rng.create 101 in
  for _ = 1 to 40 do
    let la = Rng.int rng 400 and lb = Rng.int rng 400 in
    differential_trial rng ~la ~lb ~density:0.3
  done

let test_differential_skewed () =
  let rng = Rng.create 102 in
  for _ = 1 to 25 do
    (* strongly skewed ratios exercise the galloping kernels *)
    let la = 1 + Rng.int rng 12 and lb = 500 + Rng.int rng 3000 in
    differential_trial rng ~la ~lb ~density:0.5;
    differential_trial rng ~la:lb ~lb:la ~density:0.5
  done

let test_differential_dense_runs () =
  let rng = Rng.create 103 in
  for _ = 1 to 20 do
    let la = 64 + Rng.int rng 512 and lb = 64 + Rng.int rng 512 in
    (* density 0.95: long runs of consecutive integers, near-total overlap *)
    differential_trial rng ~la ~lb ~density:0.95
  done

let test_differential_degenerate () =
  let rng = Rng.create 104 in
  List.iter
    (fun (la, lb) -> differential_trial rng ~la ~lb ~density:0.4)
    [ (0, 0); (0, 5); (5, 0); (1, 1); (1, 1000); (1000, 1); (2, 3) ]

(* Offsets: kernels must respect slice bounds, not touch [0, lo). *)
let test_differential_sub_slices () =
  let rng = Rng.create 105 in
  for _ = 1 to 30 do
    let raw_a = gen_sorted rng ~len:200 ~density:0.4 in
    let raw_b = gen_sorted rng ~len:300 ~density:0.4 in
    let alo = Rng.int rng 100 and blo = Rng.int rng 150 in
    let ahi = alo + Rng.int rng (200 - alo) and bhi = blo + Rng.int rng (300 - blo) in
    List.iter
      (fun wa ->
        List.iter
          (fun wb ->
            let a = Buf.of_int_array ~width:wa raw_a in
            let b = Buf.of_int_array ~width:wb raw_b in
            let expect = naive a alo ahi b blo bhi in
            Alcotest.(check (array int))
              "sub-slice scalar" expect
              (run_kernel Sorted.Scalar a alo ahi b blo bhi);
            Alcotest.(check (array int))
              "sub-slice simd" expect
              (run_kernel Sorted.Simd a alo ahi b blo bhi))
          widths)
      widths
  done

(* Appending onto a non-empty output vector must preserve the prefix (the
   SIMD path writes through raw pointers at an offset). *)
let test_append_preserves_prefix () =
  let rng = Rng.create 106 in
  for _ = 1 to 20 do
    let a = Sorted.of_array (gen_sorted rng ~len:300 ~density:0.6) in
    let ba, _, la = a in
    let b = Sorted.of_array (gen_sorted rng ~len:300 ~density:0.6) in
    let bb, _, lb = b in
    let run mode =
      Sorted.with_kernel_mode mode (fun () ->
          let out = Int_vec.of_array [| -1; -2; -3 |] in
          Sorted.intersect2 out ba 0 la bb 0 lb;
          Int_vec.to_array out)
    in
    let s = run Sorted.Scalar and v = run Sorted.Simd in
    Alcotest.(check (array int)) "prefix + result identical" s v;
    check_int "prefix [0]" (-1) s.(0);
    check_int "prefix [2]" (-3) s.(2)
  done

(* Multiway cascade under both kernels, mixed widths via graph + Int_vec
   intermediates (I64 results against I32 adjacency). *)
let test_multiway_mixed_width () =
  let rng = Rng.create 107 in
  for _ = 1 to 15 do
    let k = 2 + Rng.int rng 4 in
    let slices =
      Array.init k (fun _ ->
          let len = Rng.int rng 300 in
          let w = if Rng.int rng 2 = 0 then `I32 else `I64 in
          let arr = gen_sorted rng ~len ~density:0.7 in
          (Buf.of_int_array ~width:w arr, 0, len))
    in
    let run mode =
      Sorted.with_kernel_mode mode (fun () ->
          let out = Int_vec.create () and scratch = Int_vec.create () in
          Sorted.intersect out slices ~scratch;
          Int_vec.to_array out)
    in
    let s = run Sorted.Scalar and v = run Sorted.Simd in
    Alcotest.(check (array int)) "k-way scalar = simd" s v;
    let out = Int_vec.create () in
    Sorted.leapfrog out slices;
    Alcotest.(check (array int)) "k-way leapfrog agrees" s (Int_vec.to_array out)
  done

(* ---------- full-query crosscheck: scalar vs simd ---------- *)

let crosscheck_graph seed =
  let rng = Rng.create seed in
  let n = 300 in
  let vlabel = Array.init n (fun _ -> Rng.int rng 2) in
  let edges =
    Array.init 2400 (fun _ -> (Rng.int rng n, Rng.int rng n, Rng.int rng 2))
  in
  Graph.build ~num_vlabels:2 ~num_elabels:2 ~vlabel ~edges

let test_full_query_crosscheck () =
  let g = crosscheck_graph 201 in
  let db = Gf.Db.create g in
  let queries =
    [
      "a1->a2, a2->a3, a1->a3";
      "a1->a2, a2->a3, a3->a4, a1->a4";
      "a1->a2, a1->a3, a2->a3, a2->a4, a3->a4";
    ]
  in
  List.iter
    (fun qs ->
      let q = Gf.Db.parse_query qs in
      let count mode =
        Sorted.with_kernel_mode mode (fun () -> (Gf.Db.run db q).Gf.Counters.output)
      in
      let s = count Sorted.Scalar and v = count Sorted.Simd in
      check_int (qs ^ ": scalar = simd matches") s v)
    queries

(* The same crosscheck through a saved-and-mmap'd snapshot: kernel results
   must not depend on whether adjacency is built or mapped. *)
let test_full_query_crosscheck_mmap () =
  let g = crosscheck_graph 202 in
  let path = Filename.temp_file "gfq_test" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Gf.Graph_io.save_snapshot g path;
      let gm =
        match Gf.Graph_io.load_snapshot_result path with
        | Ok g -> g
        | Error e -> Alcotest.fail (Gf.Graph_io.load_error_to_string e)
      in
      Alcotest.(check bool) "mapped" true (Graph.residency gm).Graph.mapped;
      let q = Gf.Db.parse_query "a1->a2, a2->a3, a1->a3" in
      let run graph mode =
        Sorted.with_kernel_mode mode (fun () ->
            (Gf.Db.run (Gf.Db.create graph) q).Gf.Counters.output)
      in
      let built = run g Sorted.Scalar in
      check_int "mmap scalar" built (run gm Sorted.Scalar);
      check_int "mmap simd" built (run gm Sorted.Simd))

let test_kernel_mode_plumbing () =
  let saved = Sorted.kernel_mode () in
  Sorted.set_kernel_mode Sorted.Scalar;
  Alcotest.(check string) "scalar name" "scalar" (Sorted.kernel_name ());
  Sorted.with_kernel_mode Sorted.Simd (fun () ->
      Alcotest.(check bool)
        "simd name" true
        (match Sorted.kernel_name () with
        | "simd-avx2" | "simd-sse" | "simd-c-scalar" -> true
        | _ -> false));
  Alcotest.(check string) "mode restored" "scalar"
    (Sorted.kernel_mode_to_string (Sorted.kernel_mode ()));
  Sorted.set_kernel_mode saved;
  (match Sorted.kernel_mode_of_string "simd" with
  | Some Sorted.Simd -> ()
  | _ -> Alcotest.fail "mode_of_string simd");
  let lvl = Sorted.cpu_level () in
  Alcotest.(check bool) "cpu_level in range" true (lvl >= 0 && lvl <= 2)

let suite =
  [
    ( "kernels.differential",
      [
        Alcotest.test_case "balanced" `Quick test_differential_balanced;
        Alcotest.test_case "skewed" `Quick test_differential_skewed;
        Alcotest.test_case "dense runs" `Quick test_differential_dense_runs;
        Alcotest.test_case "degenerate" `Quick test_differential_degenerate;
        Alcotest.test_case "sub-slices" `Quick test_differential_sub_slices;
        Alcotest.test_case "append preserves prefix" `Quick test_append_preserves_prefix;
        Alcotest.test_case "multiway mixed width" `Quick test_multiway_mixed_width;
      ] );
    ( "kernels.crosscheck",
      [
        Alcotest.test_case "full queries scalar=simd" `Quick test_full_query_crosscheck;
        Alcotest.test_case "full queries via mmap snapshot" `Quick
          test_full_query_crosscheck_mmap;
        Alcotest.test_case "mode plumbing" `Quick test_kernel_mode_plumbing;
      ] );
  ]
