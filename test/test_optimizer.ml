open Gf_query
module Catalog = Gf_catalog.Catalog
module Cost = Gf_opt.Cost
module Cost_model = Gf_opt.Cost_model
module Planner = Gf_opt.Planner
module Plan = Gf_plan.Plan
module Exec = Gf_exec.Exec
module Naive = Gf_exec.Naive
module Counters = Gf_exec.Counters
module Graph = Gf_graph.Graph
module Generators = Gf_graph.Generators
module Rng = Gf_util.Rng
module Bitset = Gf_util.Bitset

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let graph () = Generators.holme_kim (Rng.create 42) ~n:180 ~m_per:3 ~p_triad:0.5 ~recip:0.35

let cat_of g = Catalog.create ~z:400 ~h:3 g

let test_planner_correct_all_queries () =
  let g = graph () in
  let cat = cat_of g in
  List.iter
    (fun i ->
      let q = Patterns.q i in
      let p, _cost = Planner.plan cat q in
      let expected = Naive.count g q in
      check_int (Printf.sprintf "Q%d hybrid plan count" i) expected (Exec.count g p))
    [ 1; 2; 3; 4; 5; 6; 8; 11; 12; 13 ]

let test_planner_correct_labeled () =
  let g = Graph.relabel (graph ()) (Rng.create 5) ~num_vlabels:2 ~num_elabels:2 in
  let cat = cat_of g in
  let rng = Rng.create 6 in
  List.iter
    (fun i ->
      let q = Patterns.randomize_edge_labels rng (Patterns.q i) ~num_elabels:2 in
      let p, _ = Planner.plan cat q in
      check_int
        (Printf.sprintf "Q%d labeled plan count" i)
        (Naive.count g q) (Exec.count g p))
    [ 1; 2; 3; 4; 8; 11 ]

let test_wco_only_mode () =
  let g = graph () in
  let cat = cat_of g in
  let opts = { Planner.default_opts with mode = Planner.Wco_only } in
  let p, _ = Planner.plan ~opts cat Patterns.diamond_x in
  (* A WCO plan has exactly m - 2 E/I operators and no joins. *)
  check_int "wco plan shape" 2 (Plan.num_ei_operators p);
  check_int "wco chain" 2 (Plan.max_ei_chain p);
  check_int "count" (Naive.count g Patterns.diamond_x) (Exec.count g p)

let test_bj_only_four_cycle () =
  let g = graph () in
  let cat = cat_of g in
  let opts = { Planner.default_opts with mode = Planner.Bj_only } in
  let q = Patterns.cycle 4 in
  let p, _ = Planner.plan ~opts cat q in
  check_int "no E/I in BJ plan" 0 (Plan.num_ei_operators p);
  check_int "count" (Naive.count g q) (Exec.count g p)

let test_bj_only_triangle_impossible () =
  let g = graph () in
  let cat = cat_of g in
  let opts = { Planner.default_opts with mode = Planner.Bj_only } in
  check_bool "no BJ plan for triangle" true
    (try
       ignore (Planner.plan ~opts cat Patterns.asymmetric_triangle);
       false
     with Planner.No_plan _ -> true)

let test_antiparallel_rejected () =
  let g = graph () in
  let cat = cat_of g in
  let q = Query.unlabeled_edges 3 [ (0, 1); (1, 0); (1, 2) ] in
  check_bool "anti-parallel pair raises No_plan" true
    (try
       ignore (Planner.plan cat q);
       false
     with Planner.No_plan _ -> true)

let test_wco_order_counts () =
  let g = graph () in
  let cat = cat_of g in
  (* Asymmetric triangle: exactly 3 deduplicated QVOs (Section 3.2.1). *)
  check_int "triangle orders" 3
    (List.length (Planner.all_wco_orders cat Patterns.asymmetric_triangle));
  (* Diamond-X: 5 scan pairs x 2 completion orders = 10 orderings. *)
  check_int "diamond-x orders" 10 (List.length (Planner.all_wco_orders cat Patterns.diamond_x))

let test_best_order_is_min_cost () =
  let g = graph () in
  let cat = cat_of g in
  let q = Patterns.diamond_x in
  let all = Planner.all_wco_orders cat q in
  let _, best_cost = Planner.best_wco_order cat q in
  List.iter (fun (_, c) -> check_bool "best <= all" true (best_cost <= c +. 1e-9)) all

let test_wco_order_cost_consistent () =
  let g = graph () in
  let cat = cat_of g in
  let q = Patterns.diamond_x in
  List.iter
    (fun (o, c) ->
      let c2 = Planner.wco_order_cost cat q o in
      check_bool
        (Printf.sprintf "cost consistent (%f vs %f)" c c2)
        true
        (abs_float (c -. c2) <= 1e-6 *. Float.max 1.0 c))
    (Planner.all_wco_orders cat q)

let test_triangle_direction_choice () =
  (* On a preferential-attachment graph backward lists are heavy-tailed;
     Section 3.2.1's sigma_1 (forward-forward intersections, ordering
     a1 a2 a3) must be the picked ordering, and estimated i-costs must rank
     the plans in the same order as their actual i-costs. *)
  let g = Generators.barabasi_albert (Rng.create 11) ~n:2500 ~m_per:5 ~recip:0.0 in
  let cat = Catalog.create ~z:2000 g in
  let q = Patterns.asymmetric_triangle in
  let orders = Planner.all_wco_orders cat q in
  let actual_icost o =
    let c = Exec.run ~cache:false g (Plan.wco q o) in
    float_of_int c.Counters.icost
  in
  (* The picked ordering must be the true best, and estimated order must
     agree with actual order for every pair separated by more than 20% in
     actual i-cost (near-ties may flip). *)
  let actuals = List.map (fun (o, est) -> (o, est, actual_icost o)) orders in
  let best_est = List.fold_left (fun a b -> let _, ea, _ = a and _, eb, _ = b in if eb < ea then b else a) (List.hd actuals) actuals in
  let best_act = List.fold_left (fun a b -> let _, _, aa = a and _, _, ab = b in if ab < aa then b else a) (List.hd actuals) actuals in
  let key (o, _, _) = String.concat "" (Array.to_list o |> List.map string_of_int) in
  Alcotest.(check string) "picked = true best" (key best_act) (key best_est);
  List.iter
    (fun (o1, e1, a1) ->
      List.iter
        (fun (o2, e2, a2) ->
          if a1 *. 1.2 < a2 then
            check_bool
              (Printf.sprintf "est order %s(%f) < %s(%f)" (key (o1, e1, a1)) e1
                 (key (o2, e2, a2)) e2)
              true (e1 < e2))
        actuals)
    actuals

let test_cache_conscious_beats_oblivious_on_symmetric_diamond () =
  (* Section 5.2: on the symmetric diamond-X the cache-conscious optimizer
     picks an ordering that uses the intersection cache; the oblivious one
     cannot tell the two groups apart. We check the conscious pick actually
     gets cache hits at runtime. *)
  let g = graph () in
  let cat = cat_of g in
  let q = Patterns.symmetric_diamond_x in
  let order, _ = Planner.best_wco_order ~cache_conscious:true cat q in
  let c = Exec.run ~cache:true g (Plan.wco q order) in
  check_bool "conscious pick uses the cache" true (c.Counters.cache_hits > 0)

let test_hybrid_cost_never_worse () =
  let g = graph () in
  let cat = cat_of g in
  List.iter
    (fun i ->
      let q = Patterns.q i in
      let _, hybrid_cost = Planner.plan cat q in
      let _, wco_cost =
        Planner.plan ~opts:{ Planner.default_opts with mode = Planner.Wco_only } cat q
      in
      check_bool
        (Printf.sprintf "Q%d hybrid (%f) <= wco (%f)" i hybrid_cost wco_cost)
        true
        (hybrid_cost <= wco_cost +. 1e-6))
    [ 1; 2; 3; 5; 8; 11; 12; 13 ]

let test_beam_mode_still_correct () =
  let g = graph () in
  let cat = cat_of g in
  let opts = { Planner.default_opts with beam_threshold = 4; beam_width = 3 } in
  List.iter
    (fun i ->
      let q = Patterns.q i in
      let p, _ = Planner.plan ~opts cat q in
      check_int (Printf.sprintf "Q%d beam plan count" i) (Naive.count g q) (Exec.count g p))
    [ 3; 8; 12; 13 ]

let test_projection_constraint_no_open_triangles () =
  (* Every Hash_join in a chosen plan must satisfy the edge-coverage rule;
     Plan.hash_join enforces it, so just stress the planner across queries
     and datasets to make sure construction never raises. *)
  let g = Generators.barabasi_albert (Rng.create 12) ~n:500 ~m_per:5 ~recip:0.2 in
  let cat = Catalog.create ~z:300 g in
  List.iter
    (fun i ->
      let q = Patterns.q i in
      let p, _ = Planner.plan cat q in
      check_int (Printf.sprintf "Q%d on web graph" i) (Naive.count g q) (Exec.count g p))
    [ 1; 2; 3; 4; 8; 10; 11; 13 ]

let test_calibration_recovers_weights () =
  (* Synthetic: time = icost / 1000 for E/I; hash joins obey
     w1 = 5, w2 = 2 in the same time unit. *)
  let ei = List.init 20 (fun i -> let ic = float_of_int ((i + 1) * 1000) in (ic, ic /. 1000.0)) in
  let hj =
    List.init 30 (fun i ->
        let n1 = float_of_int ((i mod 6) + 1) *. 100.0 in
        let n2 = float_of_int ((i mod 5) + 1) *. 300.0 in
        (n1, n2, ((5.0 *. n1) +. (2.0 *. n2)) /. 1000.0))
  in
  let w = Cost.calibrate ~ei ~hj in
  check_bool (Printf.sprintf "w1 ~5 (%f)" w.Cost.w1) true (abs_float (w.Cost.w1 -. 5.0) < 0.01);
  check_bool (Printf.sprintf "w2 ~2 (%f)" w.Cost.w2) true (abs_float (w.Cost.w2 -. 2.0) < 0.01)

let test_calibration_degenerate () =
  let w = Cost.calibrate ~ei:[] ~hj:[] in
  check_bool "defaults" true (w = Cost.default_weights)

let test_cost_model_card_matches_catalog () =
  let g = graph () in
  let cat = Catalog.create ~z:1_000_000 g in
  let q = Patterns.asymmetric_triangle in
  let model = Cost_model.create cat q in
  let card = Cost_model.card model (Bitset.full 3) in
  let truth = float_of_int (Naive.count g q) in
  check_bool
    (Printf.sprintf "card est %f vs truth %f" card truth)
    true
    (Catalog.q_error ~estimate:card ~truth <= 2.0)

let test_cost_model_cache_conscious_cheaper () =
  (* On a triangle-rich graph (complete DAG: C(n,3) triangles >> C(n,2)
     edges), the cache-friendly diamond-X ordering must cost strictly less
     under conscious estimation: the last E/I's inputs repeat per scanned
     edge, not per triangle. *)
  let n = 40 in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j, 0) :: !edges
    done
  done;
  let g =
    Graph.build ~num_vlabels:1 ~num_elabels:1 ~vlabel:(Array.make n 0)
      ~edges:(Array.of_list !edges)
  in
  let cat = Catalog.create ~z:2000 g in
  let q = Patterns.diamond_x in
  (* Ordering a2 a3 a1 a4 (0-based: 1 2 0 3): last extension's descriptors
     touch a2, a3 = the scan pair. *)
  let order = [| 1; 2; 0; 3 |] in
  let conscious = Planner.wco_order_cost ~cache_conscious:true cat q order in
  let oblivious = Planner.wco_order_cost ~cache_conscious:false cat q order in
  check_bool
    (Printf.sprintf "conscious %f < oblivious %f" conscious oblivious)
    true (conscious < oblivious)

(* A correction multiplier must scale [card] (and so every derived cost)
   for exactly the requested subset, leaving others at the raw estimate. *)
let test_corrections_scale_card () =
  let g = graph () in
  let cat = cat_of g in
  let q = Patterns.asymmetric_triangle in
  let base = Cost_model.create cat q in
  let full = Bitset.full 3 in
  let corrected =
    Cost_model.create ~corrections:(fun s -> if s = full then 8.0 else 1.0) cat q
  in
  let b = Cost_model.card base full in
  check_bool "raw card positive" true (b > 0.0);
  Alcotest.(check (float 1e-6)) "corrected = 8x raw" (8.0 *. b) (Cost_model.card corrected full);
  let pair = Bitset.of_list [ 0; 1 ] in
  Alcotest.(check (float 1e-6))
    "untouched subset unchanged" (Cost_model.card base pair) (Cost_model.card corrected pair)

(* Non-finite q-errors must render as valid JSON ([null]) and as readable
   text — a [-inf] slipping through %.6g would break every JSON consumer. *)
let nonfinite_row =
  {
    Gf_opt.Explain.id = 0;
    label = "E/I a3 <- a1,a2";
    kind = Gf_exec.Profile.Extend;
    depth = 0;
    est_card = infinity;
    act_card = 3;
    card_q = neg_infinity;
    est_cost = 1.5;
    act_cost = 2.5;
    cost_q = Some nan;
    time_s = 0.001;
    cache_hits = 0;
    intersections = 1;
    hj_build = 0;
    hj_probe = 0;
  }

let contains re s =
  try
    ignore (Str.search_forward (Str.regexp re) s 0);
    true
  with Not_found -> false

let test_explain_json_nonfinite () =
  let json = Gf_opt.Explain.rows_to_json [ nonfinite_row ] in
  check_bool "no bare inf" false (contains "[^\"]inf" json);
  check_bool "no 1e999" false (contains "1e999" json);
  check_bool "est_card null" true (contains "\"est_card\":null" json);
  check_bool "card_q null" true (contains "\"card_q_error\":null" json);
  check_bool "cost_q null" true (contains "\"cost_q_error\":null" json)

let test_explain_text_nonfinite () =
  let txt = Gf_opt.Explain.to_string [ nonfinite_row ] in
  check_bool "negative infinity q-error rendered" true (contains "-inf" txt)

let suite =
  [
    ( "optimizer.planner",
      [
        Alcotest.test_case "correct on all queries" `Slow test_planner_correct_all_queries;
        Alcotest.test_case "correct labeled" `Slow test_planner_correct_labeled;
        Alcotest.test_case "wco-only mode" `Quick test_wco_only_mode;
        Alcotest.test_case "bj-only 4-cycle" `Quick test_bj_only_four_cycle;
        Alcotest.test_case "bj-only triangle impossible" `Quick test_bj_only_triangle_impossible;
        Alcotest.test_case "beam mode" `Slow test_beam_mode_still_correct;
        Alcotest.test_case "web graph queries" `Slow test_projection_constraint_no_open_triangles;
        Alcotest.test_case "anti-parallel rejected" `Quick test_antiparallel_rejected;
        Alcotest.test_case "hybrid never worse" `Slow test_hybrid_cost_never_worse;
      ] );
    ( "optimizer.orders",
      [
        Alcotest.test_case "order counts" `Quick test_wco_order_counts;
        Alcotest.test_case "best order min" `Quick test_best_order_is_min_cost;
        Alcotest.test_case "order cost consistent" `Quick test_wco_order_cost_consistent;
        Alcotest.test_case "triangle directions" `Slow test_triangle_direction_choice;
        Alcotest.test_case "cache-conscious pick" `Quick test_cache_conscious_beats_oblivious_on_symmetric_diamond;
      ] );
    ( "optimizer.cost",
      [
        Alcotest.test_case "calibration" `Quick test_calibration_recovers_weights;
        Alcotest.test_case "calibration degenerate" `Quick test_calibration_degenerate;
        Alcotest.test_case "card matches" `Slow test_cost_model_card_matches_catalog;
        Alcotest.test_case "conscious cheaper" `Quick test_cost_model_cache_conscious_cheaper;
        Alcotest.test_case "corrections scale card" `Quick test_corrections_scale_card;
      ] );
    ( "optimizer.explain",
      [
        Alcotest.test_case "non-finite q-errors valid JSON" `Quick
          test_explain_json_nonfinite;
        Alcotest.test_case "non-finite q-errors in text" `Quick test_explain_text_nonfinite;
      ] );
  ]
