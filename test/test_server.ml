(* The service layer: wire protocol, circuit breaker, retry ladder,
   admission queue, drain, and the socket server end-to-end. Every test is
   deterministic: fake clocks drive the breaker cooldown, recorded sleeps
   replace real backoff, and workers = 0 pumps the queue synchronously. *)

module Gf = Graphflow
module Breaker = Gf_server.Breaker
module Ladder = Gf_server.Ladder
module Service = Gf_server.Service
module Server = Gf_server.Server
module Wire = Gf_server.Wire
module Governor = Gf.Governor
module Metrics = Gf.Metrics

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let graph () =
  Gf.Generators.holme_kim (Gf.Rng.create 11) ~n:400 ~m_per:5 ~p_triad:0.6 ~recip:0.3

let db () = Gf.Db.create (graph ())
let triangle = Gf.Patterns.q 1

let sorted_rows rows = List.sort compare (List.map Array.to_list rows)

let reference_rows db q =
  let rows = ref [] in
  let c, o = Gf.Db.run_gov ~sink:(fun r -> rows := Array.copy r :: !rows) db q in
  Alcotest.(check bool) "reference completed" true (o = Governor.Completed);
  (sorted_rows !rows, c.Gf.Counters.output)

(* --- wire ------------------------------------------------------------- *)

let test_wire_parse () =
  check_bool "ping" true (Wire.parse_request " ping " = Ok Wire.Ping);
  check_bool "metrics" true (Wire.parse_request "metrics" = Ok Wire.Metrics_req);
  check_bool "shutdown" true (Wire.parse_request "shutdown" = Ok Wire.Shutdown);
  (match Wire.parse_request "run timeout_ms=250 max_rows=10 rows=1 q=a1->a2, a2->a3, a1->a3" with
  | Ok (Wire.Run r) ->
      check_bool "timeout" true (r.Service.timeout_ms = Some 250);
      check_bool "max_rows" true (r.Service.max_rows = Some 10);
      check_bool "collect" true r.Service.collect_rows;
      check_bool "no fault" true (r.Service.fault_at = None)
  | _ -> Alcotest.fail "run with options must parse");
  (match Wire.parse_request "run fault_at=5 fault_all=1 q=Q1" with
  | Ok (Wire.Run r) ->
      check_bool "fault_at" true (r.Service.fault_at = Some 5);
      check_bool "fault_all" true r.Service.fault_all
  | _ -> Alcotest.fail "Q-pattern via q= must parse");
  (match Wire.parse_request "run rows fault_all q=Q1" with
  | Ok (Wire.Run r) ->
      check_bool "bare rows flag" true r.Service.collect_rows;
      check_bool "bare fault_all flag" true r.Service.fault_all
  | _ -> Alcotest.fail "bare boolean flags must parse");
  (match Wire.parse_request "a1->a2, a2->a3, a1->a3" with
  | Ok (Wire.Run r) -> check_bool "bare query defaults" true (not r.Service.collect_rows)
  | _ -> Alcotest.fail "bare line must parse as run");
  check_bool "empty rejected" true (Result.is_error (Wire.parse_request "   "));
  check_bool "bad option" true (Result.is_error (Wire.parse_request "run nope q=Q1"));
  check_bool "bad int" true (Result.is_error (Wire.parse_request "run max_rows=x q=Q1"));
  check_bool "missing q" true (Result.is_error (Wire.parse_request "run max_rows=3"));
  check_bool "bad query" true (Result.is_error (Wire.parse_request "run q=@@@"));
  (* The observability commands. *)
  check_bool "stats" true (Wire.parse_request "stats" = Ok Wire.Stats);
  check_bool "slowlog default" true (Wire.parse_request "slowlog" = Ok (Wire.Slowlog 10));
  check_bool "slowlog n" true (Wire.parse_request "slowlog 5" = Ok (Wire.Slowlog 5));
  check_bool "slowlog 0 rejected" true (Result.is_error (Wire.parse_request "slowlog 0"));
  check_bool "trace id=" true (Wire.parse_request "trace id=3" = Ok (Wire.Trace_of 3));
  check_bool "trace bare id" true (Wire.parse_request "trace 7" = Ok (Wire.Trace_of 7));
  check_bool "trace garbage rejected" true (Result.is_error (Wire.parse_request "trace x"));
  (match Wire.parse_request "run trace q=Q1" with
  | Ok (Wire.Run r) ->
      check_bool "trace flag" true r.Service.trace;
      check_string "query text captured" "Q1" r.Service.text
  | _ -> Alcotest.fail "run trace must parse");
  (match Wire.parse_request "run trace=1 rows q=Q1" with
  | Ok (Wire.Run r) -> check_bool "trace=1" true (r.Service.trace && r.Service.collect_rows)
  | _ -> Alcotest.fail "run trace=1 must parse");
  (* The mutation commands. *)
  check_bool "addedge" true
    (Wire.parse_request "addedge 3 7"
    = Ok (Wire.Mutate (Service.M_add_edge { u = 3; v = 7; elabel = 0 }, false)));
  check_bool "addedge labeled traced" true
    (Wire.parse_request "addedge 3 7 2 trace"
    = Ok (Wire.Mutate (Service.M_add_edge { u = 3; v = 7; elabel = 2 }, true)));
  check_bool "deledge" true
    (Wire.parse_request "deledge 4 5 1"
    = Ok (Wire.Mutate (Service.M_del_edge { u = 4; v = 5; elabel = 1 }, false)));
  check_bool "addvertex default label" true
    (Wire.parse_request "addvertex" = Ok (Wire.Mutate (Service.M_add_vertex { label = 0 }, false)));
  check_bool "addvertex labeled" true
    (Wire.parse_request "addvertex 3" = Ok (Wire.Mutate (Service.M_add_vertex { label = 3 }, false)));
  check_bool "delvertex" true
    (Wire.parse_request "delvertex 9" = Ok (Wire.Mutate (Service.M_del_vertex { v = 9 }, false)));
  check_bool "checkpoint" true
    (Wire.parse_request "checkpoint" = Ok (Wire.Mutate (Service.M_checkpoint, false)));
  check_bool "checkpoint traced" true
    (Wire.parse_request "checkpoint trace" = Ok (Wire.Mutate (Service.M_checkpoint, true)));
  check_bool "addedge arity" true (Result.is_error (Wire.parse_request "addedge 3"));
  check_bool "addedge bad int" true (Result.is_error (Wire.parse_request "addedge a b"));
  check_bool "delvertex arity" true (Result.is_error (Wire.parse_request "delvertex"));
  check_bool "checkpoint extra" true (Result.is_error (Wire.parse_request "checkpoint 3"))

(* Embedded query text must not break the one-line framing: newlines and
   quotes come back escaped inside the slowlog reply. *)
let test_wire_slowlog_escaping () =
  let r = Gf.Recorder.create () in
  let _ =
    Gf.Recorder.record r ~query:"a1->a2,\na2->a3 \"x\"" ~plan:"sig" ~outcome:"completed"
      ~latency_s:0.01 ~queue_s:0.0 ~rung:"sequential" ~attempts:1 ~retries:0 ~top_ops:[]
      ~traced:false ()
  in
  let resp = Wire.slowlog_resp (Gf.Recorder.recent r 10) in
  check_bool "single line" true (not (String.contains resp '\n'));
  let has hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  check_bool "count" true (has resp "\"count\":1");
  check_bool "newline escaped" true (has resp "a1->a2,\\na2->a3 \\\"x\\\"")

(* --- breaker ---------------------------------------------------------- *)

let test_breaker_state_machine () =
  let clock = ref 0.0 in
  let cfg =
    { Breaker.window = 4; min_samples = 4; failure_threshold = 0.5; cooldown_s = 10.0 }
  in
  let b = Breaker.create ~now:(fun () -> !clock) cfg in
  check_bool "starts closed" true (Breaker.state b = Breaker.Closed);
  (* Below min_samples nothing trips, even at 100% failure. *)
  Breaker.record b ~ok:false;
  Breaker.record b ~ok:false;
  Breaker.record b ~ok:false;
  check_bool "needs min samples" true (Breaker.state b = Breaker.Closed);
  Breaker.record b ~ok:false;
  check_bool "opens at threshold" true (Breaker.state b = Breaker.Open);
  check_bool "open rejects" true (Breaker.admit b = `Reject);
  (* Cooldown not elapsed: still rejecting. *)
  clock := 9.9;
  check_bool "still open" true (Breaker.admit b = `Reject);
  (* Cooldown elapsed: half-open, exactly one probe admitted. *)
  clock := 10.5;
  check_bool "probe admitted" true (Breaker.admit b = `Admit);
  check_bool "half-open" true (Breaker.state b = Breaker.Half_open);
  check_bool "second probe rejected" true (Breaker.admit b = `Reject);
  (* Failed probe: back to open, cooldown restarts. *)
  Breaker.record b ~ok:false;
  check_bool "reopened" true (Breaker.state b = Breaker.Open);
  clock := 15.0;
  check_bool "new cooldown running" true (Breaker.admit b = `Reject);
  clock := 21.0;
  check_bool "second probe" true (Breaker.admit b = `Admit);
  (* Successful probe: closed, window reset (old failures forgotten). *)
  Breaker.record b ~ok:true;
  check_bool "recovered" true (Breaker.state b = Breaker.Closed);
  Breaker.record b ~ok:false;
  Breaker.record b ~ok:false;
  Breaker.record b ~ok:false;
  check_bool "window was reset" true (Breaker.state b = Breaker.Closed)

let test_breaker_sliding_window () =
  let b =
    Breaker.create
      ~now:(fun () -> 0.0)
      { Breaker.window = 4; min_samples = 4; failure_threshold = 0.75; cooldown_s = 1.0 }
  in
  (* Two old failures slide out; the window never reaches 3/4 failures. *)
  Breaker.record b ~ok:false;
  Breaker.record b ~ok:false;
  Breaker.record b ~ok:true;
  Breaker.record b ~ok:true;
  Breaker.record b ~ok:true;
  Breaker.record b ~ok:false;
  check_bool "slid out" true (Breaker.state b = Breaker.Closed)

(* Half-open is a single-probe state: when the cooldown elapses and many
   threads race [admit] simultaneously, exactly one may win the probe slot
   — a second admitted probe would double-tap a backend that is still
   being assessed. *)
let test_breaker_half_open_single_probe () =
  let clock = ref 0.0 in
  let cfg =
    { Breaker.window = 4; min_samples = 4; failure_threshold = 0.5; cooldown_s = 1.0 }
  in
  let trip_then_race () =
    let b = Breaker.create ~now:(fun () -> !clock) cfg in
    for _ = 1 to 4 do
      Breaker.record b ~ok:false
    done;
    check_bool "tripped open" true (Breaker.state b = Breaker.Open);
    clock := !clock +. 2.0;
    let admitted = Atomic.make 0 and go = Atomic.make false in
    let worker () =
      while not (Atomic.get go) do
        Thread.yield ()
      done;
      match Breaker.admit b with
      | `Admit -> Atomic.incr admitted
      | `Reject -> ()
    in
    let ths = List.init 16 (fun _ -> Thread.create worker ()) in
    Atomic.set go true;
    List.iter Thread.join ths;
    check_int "exactly one probe admitted" 1 (Atomic.get admitted);
    check_bool "stays half-open while probing" true (Breaker.state b = Breaker.Half_open);
    b
  in
  (* Round 1: the probe succeeds; losers' rejections must not have
     perturbed the state machine. *)
  let b = trip_then_race () in
  Breaker.record b ~ok:true;
  check_bool "probe success closes" true (Breaker.state b = Breaker.Closed);
  check_bool "closed admits freely" true (Breaker.admit b = `Admit && Breaker.admit b = `Admit);
  (* Round 2 (fresh breaker): the probe fails; the race for the next probe
     slot after the restarted cooldown is again single-winner. *)
  let b = trip_then_race () in
  Breaker.record b ~ok:false;
  check_bool "probe failure reopens" true (Breaker.state b = Breaker.Open);
  check_bool "reopened rejects" true (Breaker.admit b = `Reject);
  clock := !clock +. 2.0;
  check_bool "next probe admitted" true (Breaker.admit b = `Admit);
  check_bool "and is again exclusive" true (Breaker.admit b = `Reject)

(* --- ladder ----------------------------------------------------------- *)

let ladder_cfg =
  {
    Ladder.domains = 1;
    budget = Governor.unlimited;
    degraded_budget = Governor.budget ~max_output:10 ();
    backoff_base_s = 0.01;
    backoff_cap_s = 1.0;
  }

let test_ladder_retry_recovers () =
  let db = db () in
  let expected_rows, total = reference_rows db triangle in
  check_bool "graph has triangles" true (total > 50);
  (* Degraded budget roomy enough not to bind: the retry must reproduce the
     full answer even though it lands on the last rung (domains = 1 has
     only sequential -> degraded). *)
  let cfg =
    { ladder_cfg with Ladder.degraded_budget = Governor.budget ~max_output:1_000_000 () }
  in
  let sleeps = ref [] in
  let rows = ref [] in
  let r =
    Ladder.run
      ~sleep:(fun d -> sleeps := d :: !sleeps)
      ~fault:{ Governor.at_tuple = 5; operator = "test" }
      ~sink:(fun t -> rows := Array.copy t :: !rows)
      ~rng:(Gf.Rng.create 123) cfg db triangle
  in
  check_bool "completed" true (r.Ladder.outcome = Governor.Completed);
  check_int "attempts" 2 r.Ladder.attempts;
  check_int "retries" 1 r.Ladder.retries;
  check_string "rung" "degraded" r.Ladder.rung;
  (* Retried-then-completed is indistinguishable from first-try completion:
     the failed attempt leaked nothing, the accepted attempt delivered
     everything. *)
  check_bool "rows match naive exactly" true (sorted_rows !rows = expected_rows);
  (* Backoffs are deterministic: recompute from the same seeded stream. *)
  let rng' = Gf.Rng.create 123 in
  let expected_backoff = 0.01 *. (0.5 +. Gf.Rng.float rng' 0.5) in
  (match r.Ladder.backoffs with
  | [ d ] ->
      check_bool "jittered backoff" true (d = expected_backoff);
      check_bool "sleep taken" true (!sleeps = [ d ])
  | _ -> Alcotest.fail "expected exactly one backoff");
  (* Same seed, same schedule. *)
  let r2 =
    Ladder.run ~sleep:ignore
      ~fault:{ Governor.at_tuple = 5; operator = "test" }
      ~rng:(Gf.Rng.create 123) cfg db triangle
  in
  check_bool "deterministic backoffs" true (r.Ladder.backoffs = r2.Ladder.backoffs)

let test_ladder_retry_exact_match () =
  (* With a full-budget retry rung available (parallel first), a fault on
     the first attempt retried on the sequential rung completes and matches
     the naive answer exactly. *)
  let db = db () in
  let expected_rows, _ = reference_rows db triangle in
  let cfg = { ladder_cfg with Ladder.domains = 2 } in
  let rows = ref [] in
  let r =
    Ladder.run ~sleep:ignore
      ~fault:{ Governor.at_tuple = 5; operator = "test" }
      ~sink:(fun t -> rows := Array.copy t :: !rows)
      ~rng:(Gf.Rng.create 7) cfg db triangle
  in
  check_bool "completed" true (r.Ladder.outcome = Governor.Completed);
  check_int "attempts" 2 r.Ladder.attempts;
  check_string "rung" "sequential" r.Ladder.rung;
  check_bool "not degraded" true (not r.Ladder.degraded);
  check_bool "rows match naive exactly" true (sorted_rows !rows = expected_rows)

let test_ladder_degraded_rung () =
  (* A fault that fires on every attempt: the degraded rung's reduced
     budget pre-empts the fault point, turning a hard failure into a
     structured truncated answer. *)
  let db = db () in
  let r =
    Ladder.run ~sleep:ignore
      ~fault:{ Governor.at_tuple = 500; operator = "test" }
      ~fault_attempts:max_int ~rng:(Gf.Rng.create 9) ladder_cfg db triangle
  in
  check_bool "truncated" true (r.Ladder.outcome = Governor.Truncated Governor.Output_limit);
  check_string "rung" "degraded" r.Ladder.rung;
  check_bool "degraded" true r.Ladder.degraded;
  check_int "rows capped" 10 r.Ladder.counters.Gf.Counters.output

let test_ladder_exhausted_fails () =
  (* A fault early enough to beat even the degraded budget on every rung:
     the ladder reports the structured failure. *)
  let db = db () in
  (* No budget on the degraded rung either, so nothing pre-empts the fault. *)
  let cfg = { ladder_cfg with Ladder.degraded_budget = Governor.unlimited } in
  let rows = ref [] in
  let r =
    Ladder.run ~sleep:ignore
      ~fault:{ Governor.at_tuple = 1; operator = "flaky-op" }
      ~fault_attempts:max_int
      ~sink:(fun t -> rows := t :: !rows)
      ~rng:(Gf.Rng.create 3) cfg db triangle
  in
  (match r.Ladder.outcome with
  | Governor.Failed e -> check_string "operator" "flaky-op" e.Governor.operator
  | _ -> Alcotest.fail "expected Failed");
  check_int "attempts = rung count" (List.length (Ladder.rungs cfg)) r.Ladder.attempts;
  check_bool "failed answers leak no rows" true (!rows = [])

(* --- service ---------------------------------------------------------- *)

let sync_config ?(queue = 2) ?(ladder = ladder_cfg) ?(breaker = Breaker.default_config)
    ?(clock = ref 0.0) () =
  {
    Service.default_config with
    Service.queue_capacity = queue;
    workers = 0;
    ladder;
    breaker;
    now = (fun () -> !clock);
    sleep = ignore;
  }

(* A degraded rung roomy enough never to bind on the test graph. *)
let roomy_ladder =
  { ladder_cfg with Ladder.degraded_budget = Governor.budget ~max_output:1_000_000 () }

(* A degraded rung with no budget at all: a fault that fires on every
   attempt yields a hard Failed instead of being pre-empted into a
   truncation. *)
let no_net_ladder = { ladder_cfg with Ladder.degraded_budget = Governor.unlimited }

let test_service_queue_full () =
  Metrics.reset ();
  let svc = Service.create ~config:(sync_config ~queue:2 ()) (db ()) in
  let req = Service.request triangle in
  let t1 = Result.get_ok (Service.submit_async svc req) in
  let t2 = Result.get_ok (Service.submit_async svc req) in
  (match Service.submit_async svc req with
  | Error Service.Queue_full -> ()
  | _ -> Alcotest.fail "third submit must be shed: queue full");
  check_int "depth" 2 (Service.queue_depth svc);
  check_bool "pump 1" true (Service.step svc);
  check_bool "pump 2" true (Service.step svc);
  check_bool "queue dry" true (not (Service.step svc));
  let r1 = Service.await svc t1 and r2 = Service.await svc t2 in
  check_bool "both completed" true
    (r1.Service.result.Ladder.outcome = Governor.Completed
    && r2.Service.result.Ladder.outcome = Governor.Completed);
  check_int "ids in admission order" 1 r1.Service.id;
  check_int "second id" 2 r2.Service.id;
  let exposition = Metrics.exposition () in
  let has needle =
    let nh = String.length exposition and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub exposition i nn = needle || at (i + 1)) in
    at 0
  in
  check_bool "shed counted" true (has "gf_server_shed_queue_full_total 1");
  check_bool "admissions counted" true (has "gf_server_admitted_total 2")

let test_service_breaker_recovery () =
  let clock = ref 0.0 in
  let breaker =
    { Breaker.window = 4; min_samples = 4; failure_threshold = 0.5; cooldown_s = 10.0 }
  in
  let svc =
    Service.create ~config:(sync_config ~queue:8 ~ladder:no_net_ladder ~breaker ~clock ()) (db ())
  in
  let failing =
    { (Service.request triangle) with Service.fault_at = Some 1; fault_all = true }
  in
  (* Four hard failures open the breaker. *)
  for i = 1 to 4 do
    match Service.submit svc failing with
    | Ok r ->
        check_bool
          (Printf.sprintf "request %d failed" i)
          true
          (match r.Service.result.Ladder.outcome with Governor.Failed _ -> true | _ -> false)
    | Error _ -> Alcotest.fail "must be admitted while breaker is closed"
  done;
  check_bool "breaker open" true (Service.breaker_state svc = Breaker.Open);
  (match Service.submit_async svc (Service.request triangle) with
  | Error Service.Breaker_open -> ()
  | _ -> Alcotest.fail "open breaker must shed");
  (* After the cooldown one probe is admitted; its success closes the
     breaker and normal service resumes. *)
  clock := 11.0;
  (match Service.submit svc (Service.request triangle) with
  | Ok r -> check_bool "probe ok" true (r.Service.result.Ladder.outcome = Governor.Completed)
  | Error _ -> Alcotest.fail "probe must be admitted after cooldown");
  check_bool "breaker closed" true (Service.breaker_state svc = Breaker.Closed);
  (match Service.submit svc (Service.request triangle) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "closed breaker must admit")

let test_service_retry_metrics () =
  Metrics.reset ();
  let svc = Service.create ~config:(sync_config ~queue:4 ~ladder:roomy_ladder ()) (db ()) in
  let req = { (Service.request triangle) with Service.fault_at = Some 5 } in
  (match Service.submit svc req with
  | Ok r ->
      check_int "one retry" 1 r.Service.result.Ladder.retries;
      check_bool "not failed" true
        (match r.Service.result.Ladder.outcome with Governor.Failed _ -> false | _ -> true)
  | Error _ -> Alcotest.fail "must be admitted");
  let exposition = Metrics.exposition () in
  let has needle =
    let nh = String.length exposition and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub exposition i nn = needle || at (i + 1)) in
    at 0
  in
  check_bool "retry counted in exposition" true (has "gf_server_retries_total 1");
  check_bool "outcome counted" true (has "gf_server_requests_completed_total 1")

let test_service_drain () =
  Metrics.reset ();
  let svc = Service.create ~config:(sync_config ~queue:8 ()) (db ()) in
  let req = Service.request triangle in
  let t1 = Result.get_ok (Service.submit_async svc req) in
  let t2 = Result.get_ok (Service.submit_async svc req) in
  Service.drain svc;
  (* Queued work is answered, not run. *)
  let r1 = Service.await svc t1 and r2 = Service.await svc t2 in
  check_bool "queued answered cancelled" true
    (r1.Service.result.Ladder.outcome = Governor.Truncated Governor.Cancelled
    && r2.Service.result.Ladder.outcome = Governor.Truncated Governor.Cancelled);
  check_int "no attempts made" 0 r1.Service.result.Ladder.attempts;
  (* Admission is closed. *)
  (match Service.submit_async svc req with
  | Error Service.Draining -> ()
  | _ -> Alcotest.fail "draining service must shed");
  (* Idempotent. *)
  Service.drain svc;
  check_bool "drain flag" true (Service.draining svc)

let test_service_drain_cancels_inflight () =
  (* Drain cancels a request a real worker thread has already dequeued.
     Deterministic: the first attempt fails (injected fault) and the
     backoff sleep parks the worker until the main thread starts the
     drain — the retry's governor is then cancelled at attach, so the
     request is answered [Truncated Cancelled] without a timing race. *)
  let svc = ref None in
  let bm = Mutex.create () and bc = Condition.create () in
  let in_backoff = ref false in
  let sleep _ =
    Mutex.lock bm;
    in_backoff := true;
    Condition.broadcast bc;
    Mutex.unlock bm;
    let rec until_draining () =
      match !svc with
      | Some s when Service.draining s -> ()
      | _ ->
          Unix.sleepf 0.001;
          until_draining ()
    in
    until_draining ()
  in
  let config =
    { (sync_config ~queue:4 ~ladder:roomy_ladder ()) with Service.workers = 1; sleep }
  in
  let s = Service.create ~config (db ()) in
  svc := Some s;
  let req = { (Service.request triangle) with Service.fault_at = Some 1 } in
  let tkt = Result.get_ok (Service.submit_async s req) in
  Mutex.lock bm;
  while not !in_backoff do
    Condition.wait bc bm
  done;
  Mutex.unlock bm;
  let t0 = Unix.gettimeofday () in
  Service.drain s;
  let reply = Service.await s tkt in
  let elapsed = Unix.gettimeofday () -. t0 in
  check_bool "in-flight query cancelled" true
    (reply.Service.result.Ladder.outcome = Governor.Truncated Governor.Cancelled);
  check_bool "the failed attempt was made" true (reply.Service.result.Ladder.attempts >= 1);
  check_bool "no rows leak from a cancelled request" true (reply.Service.rows = []);
  check_bool "drain prompt" true (elapsed < 30.0)

let test_service_flight_recorder () =
  Metrics.reset ();
  let has hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  let svc = Service.create ~config:(sync_config ~queue:4 ~ladder:roomy_ladder ()) (db ()) in
  let plain = { (Service.request triangle) with Service.text = "tri-plain" } in
  (match Service.submit svc plain with
  | Ok r ->
      check_bool "every request is recorded" true (r.Service.record_id > 0);
      check_bool "plain request untraced" true (not r.Service.traced)
  | Error _ -> Alcotest.fail "plain request must run");
  let traced =
    { (Service.request triangle) with Service.text = "tri-traced"; trace = true }
  in
  (match Service.submit svc traced with
  | Ok r -> (
      check_bool "traced reply flagged" true r.Service.traced;
      let rc = Service.recorder svc in
      (match Gf.Recorder.find_trace rc r.Service.record_id with
      | Some json -> check_bool "retained trace is chrome json" true (has json "\"traceEvents\":[")
      | None -> Alcotest.fail "traced request must retain its trace");
      let recs = Gf.Recorder.recent rc 10 in
      check_int "both requests recorded" 2 (List.length recs);
      let top = List.hd recs in
      check_string "query text kept" "tri-traced" top.Gf.Recorder.query;
      check_bool "plan digest kept" true (top.Gf.Recorder.plan <> "" && top.Gf.Recorder.plan <> "?");
      check_bool "top operators from the trace" true
        (top.Gf.Recorder.top_ops <> [] && List.length top.Gf.Recorder.top_ops <= 3))
  | Error _ -> Alcotest.fail "traced request must run");
  let s = Service.stats svc in
  check_int "stats admitted" 2 s.Service.s_admitted;
  check_int "stats completed" 2 s.Service.s_completed;
  check_int "stats slowlog depth" 2 s.Service.s_slowlog;
  check_bool "stats breaker" true (s.Service.s_breaker = Breaker.Closed);
  check_bool "stats quantiles ordered" true
    (s.Service.s_p50_ms >= 0.0 && s.Service.s_p95_ms >= s.Service.s_p50_ms
   && s.Service.s_p99_ms >= s.Service.s_p95_ms)

(* --- socket server end-to-end ----------------------------------------- *)

let test_server_end_to_end () =
  let dir = Filename.temp_file "gfsrv" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "gfq.sock" in
  let config =
    { Service.default_config with Service.workers = 2; ladder = ladder_cfg }
  in
  let svc = Service.create ~config (db ()) in
  let ready_m = Mutex.create () and ready_cv = Condition.create () in
  let ready = ref false in
  let server_thread =
    Thread.create
      (fun () ->
        Server.serve
          ~on_ready:(fun _ ->
            Mutex.lock ready_m;
            ready := true;
            Condition.broadcast ready_cv;
            Mutex.unlock ready_m)
          svc (Server.Unix_path path))
      ()
  in
  Mutex.lock ready_m;
  while not !ready do
    Condition.wait ready_cv ready_m
  done;
  Mutex.unlock ready_m;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let roundtrip line =
    output_string oc line;
    output_char oc '\n';
    flush oc;
    input_line ic
  in
  let has hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  check_string "ping" {|{"ok":true,"type":"pong"}|} (roundtrip "ping");
  let run = roundtrip "run rows=1 max_rows=2 q=a1->a2, a2->a3, a1->a3" in
  check_bool "run ok" true (has run "\"ok\":true");
  check_bool "run truncated" true (has run "truncated");
  check_bool "run rows" true (has run "\"rows\":[[");
  let bad = roundtrip "run q=@@@" in
  check_bool "parse error is structured" true (has bad "\"error\":\"parse\"");
  let m = roundtrip "metrics" in
  check_bool "metrics exposed" true (has m "gf_server_admitted_total");
  (* The flight-recorder surface: a traced run hands back a trace_id that
     the trace command resolves to retained Chrome JSON. *)
  let tr_run = roundtrip "run trace q=a1->a2, a2->a3, a1->a3" in
  check_bool "traced run flagged" true (has tr_run "\"traced\":true");
  let trace_id =
    let marker = "\"trace_id\":" in
    let mlen = String.length marker and len = String.length tr_run in
    let rec find i =
      if i + mlen > len then Alcotest.fail "traced reply carries no trace_id"
      else if String.sub tr_run i mlen = marker then i + mlen
      else find (i + 1)
    in
    let st = find 0 in
    let rec fin j = if j < len && tr_run.[j] >= '0' && tr_run.[j] <= '9' then fin (j + 1) else j in
    int_of_string (String.sub tr_run st (fin st - st))
  in
  let sl = roundtrip "slowlog 5" in
  check_bool "slowlog well-formed" true (has sl "\"ok\":true" && has sl "\"records\":[");
  check_bool "slowlog carries query text" true (has sl "a1-\\u003ea2" || has sl "a1->a2");
  let st_resp = roundtrip "stats" in
  check_bool "stats well-formed" true
    (has st_resp "\"ok\":true" && has st_resp "\"queue_depth\":" && has st_resp "\"breaker\":\""
   && has st_resp "\"p95_ms\":");
  let tresp = roundtrip (Printf.sprintf "trace id=%d" trace_id) in
  check_bool "trace fetched by id" true (has tresp "\"ok\":true" && has tresp "\"traceEvents\":[");
  check_bool "missing trace is structured" true (has (roundtrip "trace id=99999") "not_found");
  let bye = roundtrip "shutdown" in
  check_bool "shutdown acked" true (has bye "shutting_down");
  Thread.join server_thread;
  check_bool "socket removed" true (not (Sys.file_exists path));
  check_bool "service drained" true (Service.draining svc);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Unix.rmdir dir

let suite =
  [
    ( "server.wire",
      [
        Alcotest.test_case "request parsing" `Quick test_wire_parse;
        Alcotest.test_case "slowlog framing" `Quick test_wire_slowlog_escaping;
      ] );
    ( "server.breaker",
      [
        Alcotest.test_case "state machine" `Quick test_breaker_state_machine;
        Alcotest.test_case "sliding window" `Quick test_breaker_sliding_window;
        Alcotest.test_case "half-open single probe under contention" `Quick
          test_breaker_half_open_single_probe;
      ] );
    ( "server.ladder",
      [
        Alcotest.test_case "retry recovers" `Quick test_ladder_retry_recovers;
        Alcotest.test_case "retry matches naive exactly" `Quick test_ladder_retry_exact_match;
        Alcotest.test_case "degraded rung truncates" `Quick test_ladder_degraded_rung;
        Alcotest.test_case "ladder exhausted" `Quick test_ladder_exhausted_fails;
      ] );
    ( "server.service",
      [
        Alcotest.test_case "queue full sheds" `Quick test_service_queue_full;
        Alcotest.test_case "breaker opens and recovers" `Quick test_service_breaker_recovery;
        Alcotest.test_case "retry metrics" `Quick test_service_retry_metrics;
        Alcotest.test_case "drain" `Quick test_service_drain;
        Alcotest.test_case "drain cancels in-flight" `Quick test_service_drain_cancels_inflight;
        Alcotest.test_case "flight recorder" `Quick test_service_flight_recorder;
      ] );
    ( "server.socket",
      [ Alcotest.test_case "end to end" `Quick test_server_end_to_end ] );
  ]
