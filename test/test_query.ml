open Gf_query
module Bitset = Gf_util.Bitset

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let triangle = Patterns.asymmetric_triangle
let dx = Patterns.diamond_x

let test_create_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "self loop" true
    (bad (fun () -> Query.unlabeled_edges 2 [ (0, 0) ]));
  check_bool "duplicate edge" true
    (bad (fun () -> Query.unlabeled_edges 2 [ (0, 1); (0, 1) ]));
  check_bool "out of range" true (bad (fun () -> Query.unlabeled_edges 2 [ (0, 2) ]));
  check_bool "anti-parallel ok" false
    (bad (fun () -> Query.unlabeled_edges 2 [ (0, 1); (1, 0) ]))

let test_basic_accessors () =
  check_int "n" 4 (Query.num_vertices dx);
  check_int "m" 5 (Query.num_edges dx);
  check_bool "has 0->1" true (Query.has_edge dx 0 1);
  check_bool "no 1->0" false (Query.has_edge dx 1 0);
  check_bool "adjacent both ways" true (Query.adjacent dx 1 0);
  Alcotest.(check (list int)) "neighbours of a2" [ 0; 2; 3 ]
    (Bitset.elements (Query.neighbours dx 1))

let test_connectivity () =
  check_bool "triangle connected" true (Query.is_connected triangle);
  check_bool "subset {0,1}" true (Query.is_connected_subset dx (Bitset.of_list [ 0; 1 ]));
  check_bool "subset {0,3}" false (Query.is_connected_subset dx (Bitset.of_list [ 0; 3 ]));
  check_bool "singleton" true (Query.is_connected_subset dx (Bitset.singleton 2));
  check_bool "empty" false (Query.is_connected_subset dx Bitset.empty);
  let disconnected =
    Query.create ~num_vertices:4
      ~edges:[| { Query.src = 0; dst = 1; label = 0 }; { Query.src = 2; dst = 3; label = 0 } |]
      ()
  in
  check_bool "disconnected" false (Query.is_connected disconnected)

let test_induced () =
  (* Diamond-X onto {a1,a2,a3} = triangle. *)
  let sub, map = Query.induced dx (Bitset.of_list [ 0; 1; 2 ]) in
  check_int "sub n" 3 (Query.num_vertices sub);
  check_int "sub m" 3 (Query.num_edges sub);
  Alcotest.(check (array int)) "map" [| 0; 1; 2 |] map;
  check_bool "iso to triangle" true (Canon.iso sub triangle);
  (* Onto {a2,a3,a4}: triangle a2->a3, a2->a4, a3->a4. *)
  let sub2, map2 = Query.induced dx (Bitset.of_list [ 1; 2; 3 ]) in
  Alcotest.(check (array int)) "map2" [| 1; 2; 3 |] map2;
  check_bool "second triangle" true (Canon.iso sub2 triangle);
  (* Onto {a1,a4}: no edges. *)
  let sub3, _ = Query.induced dx (Bitset.of_list [ 0; 3 ]) in
  check_int "no edges" 0 (Query.num_edges sub3)

let test_connected_orders_triangle () =
  let orders = Query.connected_orders triangle in
  (* Triangle: all 3! = 6 orders have connected prefixes. *)
  check_int "count" 6 (List.length orders);
  List.iter
    (fun o ->
      check_int "length" 3 (Array.length o);
      let sorted = Array.copy o in
      Array.sort compare sorted;
      Alcotest.(check (array int)) "permutation" [| 0; 1; 2 |] sorted)
    orders

let test_connected_orders_star () =
  (* 4-star: center 0. First vertex can be anything, but prefixes must stay
     connected: after two leaves without center, disconnected. *)
  let star = Patterns.q 11 in
  let orders = Query.connected_orders star in
  List.iter
    (fun o ->
      let prefix = ref Bitset.empty in
      Array.iter
        (fun v ->
          prefix := Bitset.add v !prefix;
          check_bool "prefix connected" true (Query.is_connected_subset star !prefix))
        o)
    orders;
  (* center first: 4! orders; center second: 4 choices of first leaf, then 3! = 24+24 = 48 *)
  check_int "count" 48 (List.length orders)

let test_connected_orders_extending () =
  let orders = Query.connected_orders_extending dx ~bound:(Bitset.of_list [ 0; 1 ]) in
  (* Extend {a1,a2} by {a3,a4}: a3 first then a4 always ok; a4 first (adj to
     a2) then a3 ok: 2 orders. *)
  check_int "count" 2 (List.length orders);
  List.iter (fun o -> check_int "len" 2 (Array.length o)) orders

let test_automorphisms () =
  check_int "asym triangle trivial" 1 (List.length (Query.automorphisms triangle));
  check_int "diamond-x trivial" 1 (List.length (Query.automorphisms dx));
  (* Directed 4-cycle has the rotation group of order 4. *)
  check_int "4-cycle rotations" 4 (List.length (Query.automorphisms (Patterns.cycle 4)));
  (* Symmetric diamond-X: swapping the two 3-cycles (a1 <-> a4). *)
  check_int "sym diamond-x" 2 (List.length (Query.automorphisms Patterns.symmetric_diamond_x))

let test_relabel_vertices () =
  let perm = [| 2; 0; 1 |] in
  let t2 = Query.relabel_vertices triangle perm in
  (* 0->1 becomes 2->0, 1->2 becomes 0->1, 0->2 becomes 2->1 *)
  check_bool "2->0" true (Query.has_edge t2 2 0);
  check_bool "0->1" true (Query.has_edge t2 0 1);
  check_bool "2->1" true (Query.has_edge t2 2 1);
  check_bool "equal self" true (Query.equal triangle triangle);
  check_bool "not equal" false (Query.equal triangle t2)

(* ---------- Canon ---------- *)

let test_canon_iso_invariance () =
  (* Any vertex renaming of diamond-X has the same code. *)
  let base, _ = (Canon.code dx, ()) in
  List.iter
    (fun perm_list ->
      let perm = Array.of_list perm_list in
      let renamed = Query.relabel_vertices dx perm in
      Alcotest.(check string) "code invariant" (fst base) (fst (Canon.code renamed)))
    [ [ 1; 0; 2; 3 ]; [ 3; 2; 1; 0 ]; [ 2; 3; 0; 1 ] ]

let test_canon_distinguishes () =
  check_bool "triangle vs 3-cycle" false (Canon.iso triangle (Patterns.cycle 3));
  check_bool "dx vs tailed" false (Canon.iso dx Patterns.tailed_triangle);
  check_bool "labels matter" false
    (Canon.iso triangle
       (Query.create ~num_vertices:3 ~vlabels:[| 1; 0; 0 |]
          ~edges:(triangle.Query.edges) ()))

let test_canon_mark () =
  (* Tailed triangle: marking the tail vertex vs a triangle vertex differ. *)
  let t = Patterns.tailed_triangle in
  check_bool "mark 3 vs mark 0" false
    (fst (Canon.code ~mark:3 t) = fst (Canon.code ~mark:0 t));
  (* In the directed 3-cycle every vertex is equivalent: marks agree. *)
  let c3 = Patterns.cycle 3 in
  Alcotest.(check string) "cycle marks equal"
    (fst (Canon.code ~mark:0 c3))
    (fst (Canon.code ~mark:1 c3))

let test_canon_perm_is_consistent () =
  let code, perm = Canon.code dx in
  (* Applying the returned permutation must give a query whose identity
     permutation yields the same code. *)
  let canonical = Query.relabel_vertices dx perm in
  let code2, _ = Canon.code canonical in
  Alcotest.(check string) "perm consistent" code code2

(* Property: canonical code is invariant under random relabeling. *)
let prop_canon_invariant =
  let gen = QCheck2.Gen.(pair (int_range 2 5) (int_bound 1000)) in
  QCheck2.Test.make ~name:"canon code invariant under relabeling" ~count:100 gen
    (fun (n, seed) ->
      let rng = Gf_util.Rng.create seed in
      let q = Patterns.random_query rng ~num_vertices:n ~dense:true ~num_vlabels:2 in
      let perm = Array.init n (fun i -> i) in
      Gf_util.Rng.shuffle rng perm;
      let q2 = Query.relabel_vertices q perm in
      fst (Canon.code q) = fst (Canon.code q2))

(* Beyond [Canon.max_exact] vertices, [code] must not raise: it degrades to
   a structural fallback key ("#"-prefixed, disjoint from true canonical
   codes) that is stable across calls and never aliases distinct shapes. *)
let test_canon_large_fallback () =
  let nine = Patterns.path 9 in
  let code, perm = Canon.code nine in
  check_bool "fallback prefixed" true (String.length code > 0 && code.[0] = '#');
  check_bool "identity perm" true (Array.to_list perm = List.init 9 Fun.id);
  (* Memoized: a second call returns the identical key. *)
  Alcotest.(check string) "stable across calls" code (fst (Canon.code nine));
  (* Distinct large shapes get distinct keys. *)
  check_bool "no aliasing" false (code = fst (Canon.code (Patterns.cycle 9)));
  (* Exact codes never collide with fallback keys. *)
  check_bool "disjoint from exact codes" false ((fst (Canon.code dx)).[0] = '#');
  (* iso degrades to structural equality, staying reflexive. *)
  check_bool "iso reflexive" true (Canon.iso nine (Patterns.path 9));
  check_bool "iso distinguishes" false (Canon.iso nine (Patterns.cycle 9))

let test_canon_memo_consistency () =
  (* Memoized and fresh computations agree, including with marks. *)
  let t = Patterns.tailed_triangle in
  let a = fst (Canon.code ~mark:2 t) in
  let b = fst (Canon.code ~mark:2 t) in
  Alcotest.(check string) "marked memo stable" a b;
  check_bool "mark keys distinct from unmarked" false (a = fst (Canon.code t))

(* ---------- Parser ---------- *)

let test_parser_triangle () =
  let q = Parser.parse "a1->a2, a2->a3, a1->a3" in
  check_bool "parses to triangle" true (Query.equal q triangle)

let test_parser_labels () =
  let q = Parser.parse "u:1, u->v@2, v->w, w:3" in
  check_int "vlabel u" 1 (Query.vlabel q 0);
  check_int "vlabel v" 0 (Query.vlabel q 1);
  check_int "vlabel w" 3 (Query.vlabel q 2);
  check_bool "edge label" true
    (Array.exists (fun e -> e.Query.src = 0 && e.Query.dst = 1 && e.Query.label = 2)
       q.Query.edges)

let test_parser_errors () =
  let fails s = try ignore (Parser.parse s); false with Failure _ -> true in
  check_bool "empty" true (fails "");
  check_bool "garbage" true (fails "hello world");
  check_bool "self loop" true (fails "a->a");
  check_bool "disconnected" true (fails "a->b, c->d");
  check_bool "dup edge" true (fails "a->b, a->b")

let test_parser_error_positions () =
  (* parse_result reports the byte offset of the offending item, so callers
     can point a caret at it. *)
  let err s =
    match Parser.parse_result s with
    | Ok _ -> Alcotest.fail ("accepted: " ^ s)
    | Error e ->
        check_bool "input preserved" true (e.Parse_error.input = s);
        e
  in
  let e = err "a1->a2, garbage" in
  check_int "offset of bad item" 8 e.Parse_error.pos;
  let e = err "a->b, u->v@zzz" in
  check_int "offset of bad edge label" 8 e.Parse_error.pos;
  check_bool "message names the token" true
    (String.length e.Parse_error.message > 0);
  let e = err "" in
  check_int "empty query at 0" 0 e.Parse_error.pos;
  (match Parser.parse_result "a->b, b->c" with
  | Ok q -> check_int "ok path intact" 3 (Query.num_vertices q)
  | Error e -> Alcotest.fail (Parse_error.to_string e))

(* ---------- Patterns ---------- *)

let test_patterns_shapes () =
  let expect = [ (1, 3, 3); (2, 4, 4); (3, 4, 5); (4, 4, 5); (5, 4, 6); (6, 4, 6);
                 (7, 5, 10); (8, 5, 6); (9, 6, 8); (10, 6, 8); (11, 5, 4); (12, 6, 6);
                 (13, 6, 5); (14, 7, 21) ] in
  List.iter
    (fun (i, n, m) ->
      let q = Patterns.q i in
      check_int (Printf.sprintf "Q%d vertices" i) n (Query.num_vertices q);
      check_int (Printf.sprintf "Q%d edges" i) m (Query.num_edges q);
      check_bool (Printf.sprintf "Q%d connected" i) true (Query.is_connected q))
    expect

let test_patterns_q12_is_cycle () =
  check_bool "Q12 = 6-cycle" true (Canon.iso (Patterns.q 12) (Patterns.cycle 6))

let test_randomize_edge_labels () =
  let rng = Gf_util.Rng.create 17 in
  let q = Patterns.randomize_edge_labels rng (Patterns.q 3) ~num_elabels:3 in
  check_int "same shape" 5 (Query.num_edges q);
  check_bool "labels in range" true
    (Array.for_all (fun e -> e.Query.label >= 0 && e.Query.label < 3) q.Query.edges)

let test_random_query () =
  let rng = Gf_util.Rng.create 23 in
  for n = 3 to 10 do
    let sparse = Patterns.random_query rng ~num_vertices:n ~dense:false ~num_vlabels:4 in
    let dense = Patterns.random_query rng ~num_vertices:n ~dense:true ~num_vlabels:4 in
    check_bool "sparse connected" true (Query.is_connected sparse);
    check_bool "dense connected" true (Query.is_connected dense);
    check_bool "dense has more edges" true
      (Query.num_edges dense >= Query.num_edges sparse)
  done

let suite =
  let q t = QCheck_alcotest.to_alcotest t in
  [
    ( "query.core",
      [
        Alcotest.test_case "validation" `Quick test_create_validation;
        Alcotest.test_case "accessors" `Quick test_basic_accessors;
        Alcotest.test_case "connectivity" `Quick test_connectivity;
        Alcotest.test_case "induced" `Quick test_induced;
        Alcotest.test_case "orders triangle" `Quick test_connected_orders_triangle;
        Alcotest.test_case "orders star" `Quick test_connected_orders_star;
        Alcotest.test_case "orders extending" `Quick test_connected_orders_extending;
        Alcotest.test_case "automorphisms" `Quick test_automorphisms;
        Alcotest.test_case "relabel" `Quick test_relabel_vertices;
      ] );
    ( "query.canon",
      [
        Alcotest.test_case "iso invariance" `Quick test_canon_iso_invariance;
        Alcotest.test_case "distinguishes" `Quick test_canon_distinguishes;
        Alcotest.test_case "marks" `Quick test_canon_mark;
        Alcotest.test_case "perm consistent" `Quick test_canon_perm_is_consistent;
        Alcotest.test_case "large-pattern fallback" `Quick test_canon_large_fallback;
        Alcotest.test_case "memo consistency" `Quick test_canon_memo_consistency;
        q prop_canon_invariant;
      ] );
    ( "query.parser",
      [
        Alcotest.test_case "triangle" `Quick test_parser_triangle;
        Alcotest.test_case "labels" `Quick test_parser_labels;
        Alcotest.test_case "errors" `Quick test_parser_errors;
        Alcotest.test_case "error positions" `Quick test_parser_error_positions;
      ] );
    ( "query.patterns",
      [
        Alcotest.test_case "shapes" `Quick test_patterns_shapes;
        Alcotest.test_case "q12 cycle" `Quick test_patterns_q12_is_cycle;
        Alcotest.test_case "randomize labels" `Quick test_randomize_edge_labels;
        Alcotest.test_case "random query" `Quick test_random_query;
      ] );
  ]
