open Gf_query
module Plan = Gf_plan.Plan
module Exec = Gf_exec.Exec
module Naive = Gf_exec.Naive
module Counters = Gf_exec.Counters
module Graph = Gf_graph.Graph
module Generators = Gf_graph.Generators
module Rng = Gf_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Small unlabeled test graph with a healthy mix of triangles and paths. *)
let small_graph () =
  Generators.holme_kim (Rng.create 77) ~n:300 ~m_per:4 ~p_triad:0.5 ~recip:0.3

let labeled_graph () =
  Graph.relabel (small_graph ()) (Rng.create 78) ~num_vlabels:2 ~num_elabels:2

let sort_tuples l = List.sort compare l

(* Reorder an exec tuple (in plan schema order) into query-vertex order. *)
let to_assignment schema tuple =
  let n = Array.length schema in
  let out = Array.make n (-1) in
  Array.iteri (fun i v -> out.(v) <- tuple.(i)) schema;
  out

let check_plan_matches_naive ?(distinct = false) g q plan label =
  let expected = Naive.collect ~distinct g q |> sort_tuples in
  let got =
    Exec.collect ~distinct g plan
    |> List.map (to_assignment (Plan.vars plan))
    |> sort_tuples
  in
  Alcotest.(check (list (array int))) label expected got

let test_triangle_all_orders () =
  let g = small_graph () in
  let q = Patterns.asymmetric_triangle in
  let expected = Naive.count g q in
  check_bool "graph has triangles" true (expected > 0);
  List.iter
    (fun order ->
      let plan = Plan.wco q order in
      check_int
        (Printf.sprintf "order %s" (String.concat "" (Array.to_list order |> List.map string_of_int)))
        expected (Exec.count g plan))
    (Query.connected_orders q)

let test_triangle_tuples_match_naive () =
  let g = small_graph () in
  let q = Patterns.asymmetric_triangle in
  let plan = Plan.wco q [| 0; 1; 2 |] in
  check_plan_matches_naive g q plan "triangle tuples"

let test_diamond_x_all_orders () =
  let g = small_graph () in
  let q = Patterns.diamond_x in
  let expected = Naive.count g q in
  check_bool "graph has diamond-x" true (expected > 0);
  List.iter
    (fun order ->
      let plan = Plan.wco q order in
      check_int "diamond-x order" expected (Exec.count g plan))
    (Query.connected_orders q)

let test_labeled_query () =
  let g = labeled_graph () in
  let q =
    Query.create ~num_vertices:3 ~vlabels:[| 0; 1; 0 |]
      ~edges:
        [|
          { Query.src = 0; dst = 1; label = 0 };
          { Query.src = 1; dst = 2; label = 1 };
          { Query.src = 0; dst = 2; label = 0 };
        |]
      ()
  in
  let plan = Plan.wco q [| 0; 1; 2 |] in
  check_plan_matches_naive g q plan "labeled triangle";
  check_int "labeled count" (Naive.count g q) (Exec.count g plan)

let test_hash_join_diamond_x () =
  let g = small_graph () in
  let q = Patterns.diamond_x in
  let expected = Naive.count g q in
  (* Diamond-X as join of triangles (a1,a2,a3) and (a2,a3,a4) on {a2,a3} —
     the hybrid plan of Figure 1(c). *)
  let t1 = Plan.wco q [| 1; 2; 0 |] in
  let t2 = Plan.wco q [| 1; 2; 3 |] in
  let plan = Plan.hash_join q t1 t2 in
  check_int "hybrid = wco count" expected (Exec.count g plan);
  check_plan_matches_naive g q plan "hybrid tuples"

let test_bj_plan_four_cycle () =
  let g = small_graph () in
  let q = Patterns.cycle 4 in
  let expected = Naive.count g q in
  (* 4-cycle as a join of two 2-paths: {a1,a2,a3} path and {a3,a4,a1} path,
     joined on {a1,a3}. *)
  let p1 = Plan.wco q [| 0; 1; 2 |] in
  let p2 = Plan.wco q [| 2; 3; 0 |] in
  let plan = Plan.hash_join q p1 p2 in
  check_int "bj 4-cycle" expected (Exec.count g plan);
  check_plan_matches_naive g q plan "bj tuples"

let test_extend_after_join () =
  (* A plan outside GHD space: join two edges into a path, then intersect to
     close the triangle... here: tailed triangle = join(edge a1a2, edge a2a4)
     -> path, then extend a3 by 2-way intersection. *)
  let g = small_graph () in
  let q = Patterns.tailed_triangle in
  let e01 = List.find (fun (e : Query.edge) -> e.src = 0 && e.dst = 1) (Array.to_list q.Query.edges) in
  let e13 = List.find (fun (e : Query.edge) -> e.src = 1 && e.dst = 3) (Array.to_list q.Query.edges) in
  let p = Plan.hash_join q (Plan.scan q e01) (Plan.scan q e13) in
  let plan = Plan.extend q p 2 in
  check_int "extend after join" (Naive.count g q) (Exec.count g plan);
  check_plan_matches_naive g q plan "extend-after-join tuples"

let test_cache_semantics () =
  let g = small_graph () in
  let q = Patterns.diamond_x in
  (* Ordering a2 a3 a1 a4 (0-indexed: 1 2 0 3): the last E/I re-intersects
     a2/a3 lists, whose values change only with the scan tuple -> cache hits. *)
  let plan = Plan.wco q [| 1; 2; 0; 3 |] in
  let on = Exec.run ~cache:true g plan in
  let off = Exec.run ~cache:false g plan in
  check_int "same output" on.Counters.output off.Counters.output;
  check_bool "cache hits happen" true (on.Counters.cache_hits > 0);
  check_int "no hits when off" 0 off.Counters.cache_hits;
  check_bool "cache lowers icost" true (on.Counters.icost < off.Counters.icost)

let test_no_cache_benefit_ordering () =
  let g = small_graph () in
  let q = Patterns.diamond_x in
  (* Ordering a1 a2 a3 a4: last E/I touches a3 = the just-extended vertex,
     so consecutive tuples rarely share sources. Expect far fewer hits than
     the cache-friendly ordering. *)
  let friendly = Exec.run g (Plan.wco q [| 1; 2; 0; 3 |]) in
  let unfriendly = Exec.run g (Plan.wco q [| 0; 1; 2; 3 |]) in
  check_bool "friendly ordering caches more" true
    (friendly.Counters.cache_hits > unfriendly.Counters.cache_hits)

let test_icost_counts_list_sizes () =
  (* Hand-built graph: vertex 0 -> {1,2,3}, so extending the single edge
     (0,1) by descriptor on 0 costs |adj(0)| = 3. *)
  let g =
    Graph.build ~num_vlabels:1 ~num_elabels:1 ~vlabel:(Array.make 5 0)
      ~edges:[| (0, 1, 0); (0, 2, 0); (0, 3, 0); (4, 0, 0) |]
  in
  let q = Query.unlabeled_edges 3 [ (0, 1); (0, 2) ] in
  let plan = Plan.wco q [| 0; 1; 2 |] in
  let c = Exec.run ~cache:false g plan in
  (* Scan produces all 4 edges (u,v). The E/I accesses u's forward list:
     |fwd(0)| = 3 for the three (0,_) tuples, |fwd(4)| = 1 for (4,0):
     icost = 3*3 + 1 = 10; output = 3*3 + 1 = 10; intermediate = 4 scans. *)
  check_int "icost" 10 c.Counters.icost;
  check_int "output" 10 c.Counters.output;
  check_int "intermediate" 4 (Counters.intermediate c)

let test_leapfrog_execution () =
  let g = small_graph () in
  List.iter
    (fun i ->
      let q = Patterns.q i in
      List.iter
        (fun order ->
          let plan = Plan.wco q order in
          check_int
            (Printf.sprintf "Q%d leapfrog = pairwise" i)
            (Exec.count g plan)
            (Exec.run ~leapfrog:true g plan).Counters.output)
        (List.filteri (fun j _ -> j < 2) (Query.connected_orders q)))
    [ 1; 3; 5; 7 ]

let test_limit () =
  let g = small_graph () in
  let q = Patterns.asymmetric_triangle in
  let plan = Plan.wco q [| 0; 1; 2 |] in
  let c = Exec.run ~limit:5 g plan in
  check_int "limited" 5 c.Counters.output

let test_distinct () =
  let g = small_graph () in
  (* The 2-path a1->a2<-a3 can map a1 = a3 homomorphically. *)
  let q = Query.unlabeled_edges 3 [ (0, 1); (2, 1) ] in
  let plan = Plan.wco q [| 0; 1; 2 |] in
  let homo = Exec.count g plan in
  let iso = Exec.count ~distinct:true g plan in
  check_int "naive homo" (Naive.count g q) homo;
  check_int "naive iso" (Naive.count ~distinct:true g q) iso;
  check_bool "iso < homo" true (iso < homo)

let test_distinct_hash_join () =
  let g = small_graph () in
  let q = Patterns.cycle 4 in
  let p1 = Plan.wco q [| 0; 1; 2 |] in
  let p2 = Plan.wco q [| 2; 3; 0 |] in
  let plan = Plan.hash_join q p1 p2 in
  check_int "distinct join" (Naive.count ~distinct:true g q) (Exec.count ~distinct:true g plan)

let test_plan_validation () =
  let q = Patterns.diamond_x in
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "extend bound target" true
    (bad (fun () -> Plan.extend q (Plan.wco q [| 0; 1; 2 |]) 2));
  let q6 = Patterns.cycle 6 in
  check_bool "non-adjacent extend" true
    (bad (fun () -> Plan.extend q6 (Plan.wco q6 [| 0; 1 |]) 3));
  check_bool "disjoint join" true
    (bad (fun () -> Plan.hash_join q6 (Plan.wco q6 [| 0; 1 |]) (Plan.wco q6 [| 3; 4 |])));
  check_bool "uncovered edge join" true
    (bad (fun () ->
         (* Join paths a1a2a3 and a3a4a5 of diamond-free 5-cycle... use Q3:
            triangles {0,1,2} and {1,3} edge: union misses edge 2->3. *)
         let t1 = Plan.wco q [| 0; 1; 2 |] in
         let e13 =
           Array.to_list q.Query.edges |> List.find (fun (e : Query.edge) -> e.src = 1 && e.dst = 3)
         in
         Plan.hash_join q t1 (Plan.scan q e13)));
  check_bool "wco disconnected prefix" true (bad (fun () -> Plan.wco q6 [| 0; 3 |]))

let test_plan_printing_and_signature () =
  let q = Patterns.diamond_x in
  let p1 = Plan.wco q [| 0; 1; 2; 3 |] in
  let p2 = Plan.wco q [| 1; 0; 2; 3 |] in
  (* Same scanned edge (a1,a2) and same intersections: equal signatures. *)
  Alcotest.(check string) "signature dedup" (Plan.signature p1) (Plan.signature p2);
  let p3 = Plan.wco q [| 1; 2; 0; 3 |] in
  check_bool "different plans differ" true (Plan.signature p1 <> Plan.signature p3);
  check_bool "printable" true (String.length (Plan.to_string p1) > 0)

let test_ei_chain_metrics () =
  let q = Patterns.diamond_x in
  let wco = Plan.wco q [| 0; 1; 2; 3 |] in
  check_int "wco ei ops" 2 (Plan.num_ei_operators wco);
  check_int "wco chain" 2 (Plan.max_ei_chain wco);
  let hybrid = Plan.hash_join q (Plan.wco q [| 1; 2; 0 |]) (Plan.wco q [| 1; 2; 3 |]) in
  check_int "hybrid ei ops" 2 (Plan.num_ei_operators hybrid);
  check_int "hybrid chain" 1 (Plan.max_ei_chain hybrid)

(* Property: on random small graphs, every connected order of every <=5-vertex
   benchmark query agrees with the naive matcher. *)
let prop_all_orders_correct =
  let gen = QCheck2.Gen.(pair (int_range 1 8) (int_bound 10_000)) in
  QCheck2.Test.make ~name:"wco plans match naive matcher" ~count:25 gen (fun (qi, seed) ->
      let qi = if qi > 6 then 11 else qi (* keep patterns small *) in
      let q = Patterns.q qi in
      let rng = Rng.create seed in
      let g = Generators.holme_kim rng ~n:60 ~m_per:3 ~p_triad:0.4 ~recip:0.3 in
      let expected = Naive.count g q in
      List.for_all
        (fun order -> Exec.count g (Plan.wco q order) = expected)
        (Query.connected_orders q))

let prop_labeled_plans_correct =
  let gen = QCheck2.Gen.(int_bound 10_000) in
  QCheck2.Test.make ~name:"labeled wco plans match naive" ~count:20 gen (fun seed ->
      let rng = Rng.create seed in
      let g0 = Generators.holme_kim rng ~n:80 ~m_per:3 ~p_triad:0.4 ~recip:0.3 in
      let g = Graph.relabel g0 rng ~num_vlabels:2 ~num_elabels:2 in
      let q0 = Patterns.q (1 + Rng.int rng 4) in
      let q = Patterns.randomize_edge_labels rng q0 ~num_elabels:2 in
      let expected = Naive.count g q in
      List.for_all
        (fun order -> Exec.count g (Plan.wco q order) = expected)
        (Query.connected_orders q))

(* Regression: [count_fast] used to silently drop [~leapfrog] (always the
   pairwise cascade) and force non-distinct semantics. It must now agree
   with [count] under every flag combination, on the ablation query set. *)
let test_count_fast_flags () =
  let g = small_graph () in
  List.iter
    (fun (name, q) ->
      let plan = Plan.wco q (Array.init (Query.num_vertices q) Fun.id) in
      let expected = Exec.count g plan in
      let distinct_expected = Exec.count ~distinct:true g plan in
      check_int (name ^ ": plain") expected (Exec.count_fast g plan);
      check_int (name ^ ": cache off") expected (Exec.count_fast ~cache:false g plan);
      check_int (name ^ ": leapfrog") expected (Exec.count_fast ~leapfrog:true g plan);
      check_int (name ^ ": leapfrog, cache off") expected
        (Exec.count_fast ~cache:false ~leapfrog:true g plan);
      check_int (name ^ ": distinct") distinct_expected
        (Exec.count_fast ~distinct:true g plan);
      check_int (name ^ ": distinct leapfrog") distinct_expected
        (Exec.count_fast ~distinct:true ~leapfrog:true g plan))
    [
      ("triangle", Patterns.asymmetric_triangle);
      ("diamond-x", Patterns.diamond_x);
      ("tailed triangle", Patterns.tailed_triangle);
      ("4-cycle", Patterns.cycle 4);
    ]

let suite =
  let q t = QCheck_alcotest.to_alcotest t in
  [
    ( "exec.correctness",
      [
        Alcotest.test_case "triangle all orders" `Quick test_triangle_all_orders;
        Alcotest.test_case "triangle tuples" `Quick test_triangle_tuples_match_naive;
        Alcotest.test_case "diamond-x all orders" `Quick test_diamond_x_all_orders;
        Alcotest.test_case "labeled query" `Quick test_labeled_query;
        Alcotest.test_case "hash join diamond-x" `Quick test_hash_join_diamond_x;
        Alcotest.test_case "bj 4-cycle" `Quick test_bj_plan_four_cycle;
        Alcotest.test_case "extend after join" `Quick test_extend_after_join;
        q prop_all_orders_correct;
        q prop_labeled_plans_correct;
      ] );
    ( "exec.features",
      [
        Alcotest.test_case "cache semantics" `Quick test_cache_semantics;
        Alcotest.test_case "cache-friendly ordering" `Quick test_no_cache_benefit_ordering;
        Alcotest.test_case "icost counting" `Quick test_icost_counts_list_sizes;
        Alcotest.test_case "leapfrog exec" `Quick test_leapfrog_execution;
        Alcotest.test_case "limit" `Quick test_limit;
        Alcotest.test_case "distinct" `Quick test_distinct;
        Alcotest.test_case "distinct hash join" `Quick test_distinct_hash_join;
        Alcotest.test_case "count_fast flags" `Quick test_count_fast_flags;
      ] );
    ( "plan.structure",
      [
        Alcotest.test_case "validation" `Quick test_plan_validation;
        Alcotest.test_case "printing/signature" `Quick test_plan_printing_and_signature;
        Alcotest.test_case "ei chains" `Quick test_ei_chain_metrics;
      ] );
  ]
