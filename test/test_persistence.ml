open Gf_query
module Catalog = Gf_catalog.Catalog
module Generators = Gf_graph.Generators
module Graph = Gf_graph.Graph
module Graph_io = Gf_graph.Graph_io
module Rng = Gf_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let graph () = Generators.holme_kim (Rng.create 95) ~n:200 ~m_per:4 ~p_triad:0.5 ~recip:0.3

let test_catalog_roundtrip () =
  let g = graph () in
  let cat = Catalog.create ~h:3 ~z:200 g in
  (* Materialize some entries. *)
  ignore (Catalog.entry cat Patterns.asymmetric_triangle ~new_vertex:2);
  ignore (Catalog.entry cat Patterns.diamond_x ~new_vertex:3);
  ignore (Catalog.entry cat (Patterns.cycle 3) ~new_vertex:2);
  let n = Catalog.num_entries cat in
  check_bool "entries materialized" true (n >= 3);
  let path = Filename.temp_file "gf_cat" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Catalog.save cat path;
      let cat2 = Catalog.load g path in
      check_int "same entry count" n (Catalog.num_entries cat2);
      check_int "same h" (Catalog.h cat) (Catalog.h cat2);
      check_int "same z" (Catalog.z cat) (Catalog.z cat2);
      (* Loaded entries must be identical (no resampling). *)
      let e1 = Option.get (Catalog.entry cat Patterns.asymmetric_triangle ~new_vertex:2) in
      let e2 = Option.get (Catalog.entry cat2 Patterns.asymmetric_triangle ~new_vertex:2) in
      check_bool "identical mu" true (e1.Catalog.mu = e2.Catalog.mu);
      check_int "identical samples" e1.Catalog.samples e2.Catalog.samples;
      check_bool "identical sizes" true (e1.Catalog.sizes = e2.Catalog.sizes))

let test_catalog_load_then_extend () =
  (* A loaded catalogue still materializes new entries lazily. *)
  let g = graph () in
  let cat = Catalog.create ~h:3 ~z:200 g in
  ignore (Catalog.entry cat Patterns.asymmetric_triangle ~new_vertex:2);
  let path = Filename.temp_file "gf_cat" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Catalog.save cat path;
      let cat2 = Catalog.load g path in
      let before = Catalog.num_entries cat2 in
      ignore (Catalog.entry cat2 Patterns.tailed_triangle ~new_vertex:3);
      check_bool "lazy growth after load" true (Catalog.num_entries cat2 > before))

let test_catalog_load_errors () =
  let g = graph () in
  let fails content =
    let path = Filename.temp_file "gf_cat" ".txt" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out path in
        output_string oc content;
        close_out oc;
        try
          ignore (Catalog.load g path);
          false
        with Failure _ -> true)
  in
  check_bool "empty" true (fails "");
  check_bool "bad header" true (fails "nope\n");
  check_bool "bad params" true (fails "graphflow-catalog v1\nxyz\n");
  check_bool "orphan size" true (fails "graphflow-catalog v1\n3 100\nsize 0 f 0 1.0\n")

(* --- crash-safe writes and structured catalog errors ------------------- *)

let read_all p = In_channel.with_open_text p In_channel.input_all
let write_file p s = Out_channel.with_open_text p (fun oc -> output_string oc s)

let with_temp_dir f =
  let dir = Filename.temp_file "gf_persist" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let tmp_siblings dir =
  Sys.readdir dir |> Array.to_list |> List.filter (fun n -> contains n ".tmp.")

let test_atomic_file_crash () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "data.txt" in
      Gf_util.Atomic_file.write path (fun oc -> output_string oc "version-1\n");
      check_bool "written" true (read_all path = "version-1\n");
      (* The writer dies mid-write: the previous contents survive, the temp
         is removed, and the exception propagates. *)
      let raised =
        try
          Gf_util.Atomic_file.write path (fun oc ->
              output_string oc "version-2 partial";
              failwith "simulated crash");
          false
        with Failure _ -> true
      in
      check_bool "exception propagates" true raised;
      check_bool "previous contents intact" true (read_all path = "version-1\n");
      check_int "no temp sibling left" 0 (List.length (tmp_siblings dir));
      (* A stale temp from a kill -9'd process never shadows the target: the
         next successful write still replaces the target atomically. *)
      write_file (path ^ ".tmp.999999") "torn half-writ";
      Gf_util.Atomic_file.write path (fun oc -> output_string oc "version-3\n");
      check_bool "stale tmp ignored by readers of the target" true
        (read_all path = "version-3\n"))

let test_saves_leave_no_tmp () =
  let g = graph () in
  with_temp_dir (fun dir ->
      let cpath = Filename.concat dir "cat.txt" in
      let gpath = Filename.concat dir "graph.txt" in
      let cat = Catalog.create ~h:3 ~z:200 g in
      ignore (Catalog.entry cat Patterns.asymmetric_triangle ~new_vertex:2);
      Catalog.save cat cpath;
      Graph_io.save g gpath;
      check_int "no temp siblings after save" 0 (List.length (tmp_siblings dir));
      check_bool "catalog loads back" true (Catalog.num_entries (Catalog.load g cpath) >= 1);
      check_bool "graph loads back" true (Result.is_ok (Graph_io.load_result gpath)))

let test_catalog_save_torn () =
  (* kill -9 mid-save: the in-progress temp is torn and never renamed; the
     published file is byte-identical and still loads. The torn bytes
     themselves are detected as corrupt, never silently accepted. *)
  let g = graph () in
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "cat.txt" in
      let cat = Catalog.create ~h:3 ~z:200 g in
      ignore (Catalog.entry cat Patterns.asymmetric_triangle ~new_vertex:2);
      ignore (Catalog.entry cat Patterns.diamond_x ~new_vertex:3);
      Catalog.save cat path;
      let v1_bytes = read_all path in
      let n = Catalog.num_entries (Catalog.load g path) in
      let stale = Printf.sprintf "%s.tmp.%d" path 999999 in
      write_file stale (String.sub v1_bytes 0 (String.length v1_bytes * 2 / 3));
      check_bool "published file untouched" true (read_all path = v1_bytes);
      check_int "and still loads" n (Catalog.num_entries (Catalog.load g path));
      (match Catalog.load_result g stale with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "torn temp file must not load");
      (* The next save simply replaces the target. *)
      ignore (Catalog.entry cat (Patterns.cycle 3) ~new_vertex:2);
      Catalog.save cat path;
      check_bool "resave replaces target" true
        (Catalog.num_entries (Catalog.load g path) >= n))

let test_catalog_structured_errors () =
  let g = graph () in
  let error_of content =
    let path = Filename.temp_file "gf_cat" ".txt" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        write_file path content;
        match Catalog.load_result g path with
        | Ok _ -> Alcotest.fail ("accepted corrupt input: " ^ String.escaped content)
        | Error e -> e)
  in
  (match Catalog.load_result g "/nonexistent/gf_cat.txt" with
  | Error { kind = Catalog.Unreadable _; _ } -> ()
  | _ -> Alcotest.fail "missing file must be Unreadable");
  (match (error_of "nope\n").Catalog.kind with
  | Catalog.Bad_header "nope" -> ()
  | _ -> Alcotest.fail "expected Bad_header");
  (match (error_of "graphflow-catalog v1\nxyz\n").Catalog.kind with
  | Catalog.Bad_params "xyz" -> ()
  | _ -> Alcotest.fail "wrong parameter arity must be Bad_params");
  (match (error_of "graphflow-catalog v1\n3 abc\n").Catalog.kind with
  | Catalog.Bad_token "abc" -> ()
  | _ -> Alcotest.fail "non-integer parameter must be Bad_token");
  (let e = error_of "graphflow-catalog v1\n3 100\nsize 0 f 0 1.0\n" in
   (match e.Catalog.kind with
   | Catalog.Orphan_size -> ()
   | _ -> Alcotest.fail "size before any entry must be Orphan_size");
   check_int "line points at the offender" 3 e.Catalog.line);
  (match
     (error_of
        "graphflow-catalog v1\n3 100\nentry ab 1.0 2.0 3 2\nsize 0 f 0 1.0\nend\n")
       .Catalog.kind
   with
  | Catalog.Size_count_mismatch { expected = 2; got = 1 } -> ()
  | _ -> Alcotest.fail "short size section must be Size_count_mismatch");
  (match
     (error_of "graphflow-catalog v1\n3 100\nentry ab 1.0 2.0 3 1\nsize 0 x 0 1.0\n")
       .Catalog.kind
   with
  | Catalog.Bad_token "x" -> ()
  | _ -> Alcotest.fail "bad direction must be Bad_token");
  (* v2 carries the entry count and a trailing end marker: both a missing
     entry and a missing marker mean the file is torn. *)
  (match
     (error_of "graphflow-catalog v2\n3 100 2\nentry ab 1.0 2.0 3 0\nend\n").Catalog.kind
   with
  | Catalog.Truncated { expected_entries = 2; got = 1 } -> ()
  | _ -> Alcotest.fail "missing entry must be Truncated");
  (match
     (error_of "graphflow-catalog v2\n3 100 1\nentry ab 1.0 2.0 3 0\n").Catalog.kind
   with
  | Catalog.Truncated { expected_entries = 1; got = 1 } -> ()
  | _ -> Alcotest.fail "missing end marker must be Truncated");
  (* A well-formed v1 file (no count, no marker) still loads. *)
  let v1 = "graphflow-catalog v1\n3 100\nentry ab 1.0 2.0 3 1\nsize 0 f 0 1.0\n" in
  let path = Filename.temp_file "gf_cat" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path v1;
      match Catalog.load_result g path with
      | Ok t -> check_int "v1 accepted" 1 (Catalog.num_entries t)
      | Error e -> Alcotest.fail (Catalog.load_error_to_string e))

let test_count_fast_matches_count () =
  let g = graph () in
  let open Gf_plan in
  let open Gf_exec in
  List.iter
    (fun i ->
      let q = Patterns.q i in
      List.iter
        (fun order ->
          let plan = Plan.wco q order in
          check_int
            (Printf.sprintf "Q%d count_fast" i)
            (Exec.count g plan) (Exec.count_fast g plan))
        (List.filteri (fun j _ -> j < 3) (Query.connected_orders q)))
    [ 1; 2; 3; 4; 5; 11 ]

let test_count_fast_non_extend_root () =
  let g = graph () in
  let open Gf_plan in
  let open Gf_exec in
  let q = Patterns.cycle 4 in
  let plan = Plan.hash_join q (Plan.wco q [| 0; 1; 2 |]) (Plan.wco q [| 2; 3; 0 |]) in
  check_int "join root falls back" (Exec.count g plan) (Exec.count_fast g plan)

let test_graph_roundtrip () =
  let g =
    Graph.relabel (graph ()) (Rng.create 3) ~num_vlabels:3 ~num_elabels:2
  in
  let path = Filename.temp_file "gf_graph" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graph_io.save g path;
      match Graph_io.load_result path with
      | Error e -> Alcotest.fail (Graph_io.load_error_to_string e)
      | Ok g2 ->
          check_int "vertices" (Graph.num_vertices g) (Graph.num_vertices g2);
          check_int "edges" (Graph.num_edges g) (Graph.num_edges g2);
          check_int "vlabels" (Graph.num_vlabels g) (Graph.num_vlabels g2);
          check_int "elabels" (Graph.num_elabels g) (Graph.num_elabels g2);
          for v = 0 to Graph.num_vertices g - 1 do
            check_int "vertex label" (Graph.vlabel g v) (Graph.vlabel g2 v)
          done;
          let sorted g = List.sort compare (Array.to_list (Graph.edge_array g)) in
          check_bool "edge set" true (sorted g = sorted g2))

let load_string content =
  let path = Filename.temp_file "gf_graph" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      Graph_io.load_result path)

let test_graph_load_errors () =
  let kind_of content =
    match load_string content with
    | Ok _ -> Alcotest.fail ("accepted corrupt input: " ^ String.escaped content)
    | Error e -> e.Graph_io.kind
  in
  (match Graph_io.load_result "/nonexistent/gf_graph.txt" with
  | Error { kind = Graph_io.Unreadable _; _ } -> ()
  | _ -> Alcotest.fail "missing file must be Unreadable");
  (match kind_of "nope\n" with
  | Graph_io.Bad_header h -> check_bool "header text" true (h = "nope")
  | _ -> Alcotest.fail "expected Bad_header");
  (match kind_of "graphflow v1\n" with
  | Graph_io.Truncated _ -> ()
  | _ -> Alcotest.fail "EOF before size line must be Truncated");
  (match kind_of "graphflow v1\n3 1 1 1\ne 0 x 0\n" with
  | Graph_io.Bad_token "x" -> ()
  | _ -> Alcotest.fail "non-integer token must be Bad_token");
  (match kind_of "graphflow v1\n3 1 1 1\nv 5 1\ne 0 1 0\n" with
  | Graph_io.Bad_vertex 5 -> ()
  | _ -> Alcotest.fail "out-of-range vertex id must be Bad_vertex");
  (match kind_of "graphflow v1\n3 1 1 1\ne 0 7 0\n" with
  | Graph_io.Dangling_edge (0, 7) -> ()
  | _ -> Alcotest.fail "edge endpoint past n must be Dangling_edge");
  (match kind_of "graphflow v1\n3 2 1 1\ne 0 1 0\n" with
  | Graph_io.Edge_count_mismatch { expected = 2; got = 1 } -> ()
  | _ -> Alcotest.fail "short edge section must be Edge_count_mismatch");
  (* Line numbers point at the offending line (1-based). *)
  (match load_string "graphflow v1\n3 1 1 1\nv 5 1\n" with
  | Error e -> check_int "error line" 3 e.Graph_io.line
  | Ok _ -> Alcotest.fail "expected an error");
  (* The raising wrapper keeps the original Failure contract. *)
  check_bool "load raises Failure" true
    (try
       ignore (Graph_io.load "/nonexistent/gf_graph.txt");
       false
     with Failure _ -> true)

let suite =
  [
    ( "graph_io",
      [
        Alcotest.test_case "roundtrip" `Quick test_graph_roundtrip;
        Alcotest.test_case "corrupt inputs" `Quick test_graph_load_errors;
      ] );
    ( "persistence",
      [
        Alcotest.test_case "catalog roundtrip" `Quick test_catalog_roundtrip;
        Alcotest.test_case "load then extend" `Quick test_catalog_load_then_extend;
        Alcotest.test_case "load errors" `Quick test_catalog_load_errors;
        Alcotest.test_case "atomic write crash" `Quick test_atomic_file_crash;
        Alcotest.test_case "saves leave no temp" `Quick test_saves_leave_no_tmp;
        Alcotest.test_case "torn save detected" `Quick test_catalog_save_torn;
        Alcotest.test_case "structured load errors" `Quick test_catalog_structured_errors;
      ] );
    ( "exec.count_fast",
      [
        Alcotest.test_case "matches count" `Quick test_count_fast_matches_count;
        Alcotest.test_case "non-extend root" `Quick test_count_fast_non_extend_root;
      ] );
  ]
