(* Cross-subsystem agreement on random inputs: for random small queries on
   random graphs, every execution path in the repository must produce the
   same match count as the naive reference matcher. This is the test that
   catches planner/executor disagreements no unit test anticipates. *)

open Gf_query
module Catalog = Gf_catalog.Catalog
module Planner = Gf_opt.Planner
module Plan = Gf_plan.Plan
module Exec = Gf_exec.Exec
module Parallel = Gf_exec.Parallel
module Naive = Gf_exec.Naive
module Counters = Gf_exec.Counters
module Adaptive = Gf_adaptive.Adaptive
module Ghd = Gf_ghd.Ghd
module Bj = Gf_baseline.Bj
module Cfl = Gf_baseline.Cfl
module Query_gen = Gf_baseline.Query_gen
module Spectrum = Gf_spectrum.Spectrum
module Graph = Gf_graph.Graph
module Generators = Gf_graph.Generators
module Rng = Gf_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let random_graph rng =
  let n = 40 + Rng.int rng 80 in
  let g =
    Generators.holme_kim rng ~n ~m_per:(2 + Rng.int rng 3)
      ~p_triad:(Rng.float rng 0.6) ~recip:(Rng.float rng 0.5)
  in
  if Rng.bool rng then Graph.relabel g rng ~num_vlabels:(1 + Rng.int rng 2) ~num_elabels:(1 + Rng.int rng 2)
  else g

(* A random connected query without anti-parallel pairs, labels within the
   graph's alphabets. *)
let random_query rng g =
  let nv = 3 + Rng.int rng 3 in
  let q0 = Patterns.random_query rng ~num_vertices:nv ~dense:(Rng.bool rng) ~num_vlabels:(Graph.num_vlabels g) in
  Patterns.randomize_edge_labels rng q0 ~num_elabels:(Graph.num_elabels g)

let prop_all_engines_agree =
  QCheck2.Test.make ~name:"planner/adaptive/ghd/bj/parallel/leapfrog = naive" ~count:30
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng in
      let q = random_query rng g in
      let expected = Naive.count g q in
      let cat = Catalog.create ~z:150 g in
      let plan, _ = Planner.plan cat q in
      let ok msg v =
        if v <> expected then
          QCheck2.Test.fail_reportf "%s: %d <> naive %d on %s" msg v expected
            (Query.to_string q)
        else true
      in
      ok "planner" (Exec.count g plan)
      && ok "cache off" (Exec.run ~cache:false g plan).Counters.output
      && ok "leapfrog" (Exec.run ~leapfrog:true g plan).Counters.output
      && ok "count_fast" (Exec.count_fast g plan)
      && ok "count_fast leapfrog" (Exec.count_fast ~leapfrog:true g plan)
      && ok "parallel(3)" (Parallel.run ~domains:3 g plan).Parallel.counters.Counters.output
      && ok "parallel(4) small morsels"
           (Parallel.run ~domains:4 ~chunk:3 ~batch:4 g plan).Parallel.counters.Counters.output
      && ok "parallel leapfrog"
           (Parallel.run ~domains:2 ~leapfrog:true g plan).Parallel.counters.Counters.output
      && ok "parallel chunked baseline"
           (Parallel.run_chunked ~domains:2 g plan).Parallel.counters.Counters.output
      && (let distinct_expected = Naive.count ~distinct:true g q in
          (let got = Exec.count_fast ~distinct:true g plan in
           got = distinct_expected
           ||
           QCheck2.Test.fail_reportf "count_fast distinct: %d <> naive %d on %s" got
             distinct_expected (Query.to_string q))
          && (let got = (fst (Adaptive.run ~distinct:true cat g q plan)).Counters.output in
              got = distinct_expected
              ||
              QCheck2.Test.fail_reportf "adaptive distinct: %d <> naive %d on %s" got
                distinct_expected (Query.to_string q))
          && List.for_all
            (fun d ->
              let got =
                (Parallel.run ~domains:d ~distinct:true ~chunk:5 g plan).Parallel.counters
                  .Counters.output
              in
              if got <> distinct_expected then
                QCheck2.Test.fail_reportf "parallel distinct(%d): %d <> naive %d on %s" d got
                  distinct_expected (Query.to_string q)
              else true)
            [ 1; 2; 4 ])
      && (let lim = (expected / 2) + 1 in
          let got =
            (Parallel.run ~domains:3 ~limit:lim ~chunk:4 ~batch:8 g plan).Parallel.counters
              .Counters.output
          in
          if got <> min lim expected then
            QCheck2.Test.fail_reportf "parallel limit %d: emitted %d on %s" lim got
              (Query.to_string q)
          else true)
      && ok "adaptive" (fst (Adaptive.run cat g q plan)).Counters.output
      && ok "bj baseline" (Bj.count g q)
      && ok "eh plan"
           (Exec.count g (Ghd.to_plan cat q (Ghd.min_width_decomposition q) Ghd.Lexicographic)))

let prop_spectrum_plans_agree =
  QCheck2.Test.make ~name:"every spectrum plan = naive" ~count:15
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng in
      let q = random_query rng g in
      let expected = Naive.count g q in
      let all, _ = Spectrum.plans ~per_subset_cap:3 ~family_cap:8 q in
      List.for_all
        (fun (fam, p) ->
          let got = Exec.count g p in
          if got <> expected then
            QCheck2.Test.fail_reportf "%s plan: %d <> %d on %s"
              (Spectrum.family_to_string fam) got expected (Query.to_string q)
          else true)
        all)

(* The same spectrum — WCO, BJ and hybrid shapes alike — through the
   morsel-driven executor: parallel must equal sequential for every plan
   shape, with hash-join build work done once rather than per domain. *)
let prop_spectrum_plans_agree_parallel =
  QCheck2.Test.make ~name:"every spectrum plan: parallel = sequential" ~count:8
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng in
      let q = random_query rng g in
      let expected = Naive.count g q in
      let all, _ = Spectrum.plans ~per_subset_cap:2 ~family_cap:6 q in
      List.for_all
        (fun (fam, p) ->
          let seq = Exec.run g p in
          List.for_all
            (fun d ->
              let r = Parallel.run ~domains:d ~chunk:7 ~batch:16 g p in
              if r.Parallel.counters.Counters.output <> expected then
                QCheck2.Test.fail_reportf "%s plan parallel(%d): %d <> %d on %s"
                  (Spectrum.family_to_string fam) d r.Parallel.counters.Counters.output
                  expected (Query.to_string q)
              else if
                r.Parallel.counters.Counters.hj_build_tuples
                <> seq.Counters.hj_build_tuples
              then
                QCheck2.Test.fail_reportf
                  "%s plan parallel(%d): build tuples %d <> sequential %d on %s"
                  (Spectrum.family_to_string fam) d
                  r.Parallel.counters.Counters.hj_build_tuples seq.Counters.hj_build_tuples
                  (Query.to_string q)
              else true)
            [ 1; 2; 4 ])
        all)

let prop_cfl_agrees_distinct =
  QCheck2.Test.make ~name:"cfl = naive distinct" ~count:20
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng in
      let q = random_query rng g in
      Cfl.count g q = Naive.count ~distinct:true g q)

let prop_data_queries_match =
  QCheck2.Test.make ~name:"data-extracted queries have >= 1 distinct match" ~count:20
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng in
      let q = Query_gen.from_data g rng ~num_vertices:(4 + Rng.int rng 4) ~dense:(Rng.bool rng) in
      Naive.count ~distinct:true g q >= 1)

(* Acceptance criteria for the morsel-driven executor: on a skewed
   (power-law) graph, a multi-domain run actually steals work, and the
   per-domain outputs partition the sequential result exactly. *)
let test_work_stealing_skew () =
  let g = Generators.dataset ~scale:0.02 Generators.Twitter in
  let q = Patterns.q 1 in
  let plan = Plan.wco q [| 0; 1; 2 |] in
  let seq = Exec.count g plan in
  (* Scheduling on a loaded single-core machine could in principle let every
     domain consume exactly its own seed; retry a few times before calling
     the absence of steals a failure. *)
  let rec attempt k =
    let r = Parallel.run ~domains:4 ~chunk:4 ~batch:32 g plan in
    check_int "skewed count" seq r.Parallel.counters.Counters.output;
    check_int "shares sum to output" seq (Array.fold_left ( + ) 0 r.Parallel.per_domain_output);
    check_bool "morsels executed" true (r.Parallel.counters.Counters.morsels > 4);
    if r.Parallel.counters.Counters.steals = 0 && k > 0 then attempt (k - 1)
    else check_bool "steals observed" true (r.Parallel.counters.Counters.steals > 0)
  in
  attempt 5

let test_parallel_hybrid_features () =
  let g = Generators.holme_kim (Rng.create 11) ~n:300 ~m_per:4 ~p_triad:0.5 ~recip:0.4 in
  let q = Patterns.diamond_x in
  let plan = Plan.hash_join q (Plan.wco q [| 1; 2; 0 |]) (Plan.wco q [| 1; 2; 3 |]) in
  let seqc = Exec.run g plan in
  List.iter
    (fun d ->
      let r = Parallel.run ~domains:d ~chunk:8 ~batch:16 g plan in
      check_int (Printf.sprintf "hybrid count %dd" d) seqc.Counters.output
        r.Parallel.counters.Counters.output;
      (* Build side executed once, not once per domain. *)
      check_int
        (Printf.sprintf "hybrid build tuples %dd" d)
        seqc.Counters.hj_build_tuples r.Parallel.counters.Counters.hj_build_tuples)
    [ 1; 2; 4 ];
  let sd = (Exec.run ~distinct:true g plan).Counters.output in
  List.iter
    (fun d ->
      check_int
        (Printf.sprintf "hybrid distinct %dd" d)
        sd
        (Parallel.run ~domains:d ~distinct:true g plan).Parallel.counters.Counters.output)
    [ 1; 2; 4 ];
  let lim = (seqc.Counters.output / 3) + 1 in
  check_int "hybrid limit exact"
    (min lim seqc.Counters.output)
    (Parallel.run ~domains:4 ~limit:lim ~chunk:8 ~batch:16 g plan).Parallel.counters
      .Counters.output;
  let acc = ref 0 in
  let (_ : Parallel.report) = Parallel.run ~domains:4 ~sink:(fun _ -> incr acc) g plan in
  check_int "thread-safe sink sees every tuple" seqc.Counters.output !acc

(* Regression: the adaptive executor used to ignore distinct semantics —
   adaptively-routed segments emitted tuples with repeated data vertices
   that a distinct [Exec] run filters. Pin adaptive = Exec = naive under
   [distinct] on queries long enough to be adaptable: a 4-clique, and a
   4-cycle on a reciprocal-heavy graph where non-injective matches
   actually exist (so the filter provably fires). *)
let test_adaptive_distinct () =
  let g = Generators.holme_kim (Rng.create 5) ~n:250 ~m_per:4 ~p_triad:0.6 ~recip:0.6 in
  let cat = Catalog.create ~z:150 g in
  List.iter
    (fun (name, q) ->
      let plan = Plan.wco q (Array.init (Query.num_vertices q) Fun.id) in
      let expected = Naive.count ~distinct:true g q in
      check_int (name ^ ": exec distinct")
        expected
        (Exec.run ~distinct:true g plan).Counters.output;
      check_int (name ^ ": adaptive distinct")
        expected
        (fst (Adaptive.run ~distinct:true cat g q plan)).Counters.output)
    [ ("clique", Patterns.clique 4 ~cyclic:false); ("cycle", Patterns.cycle 4) ];
  (* The cycle admits a1=a3 / a2=a4 homomorphisms over reciprocal edges, so
     distinct must strictly shrink the count here — otherwise this test
     exercises nothing. *)
  let q = Patterns.cycle 4 in
  check_bool "filter actually fires" true
    (Naive.count ~distinct:true g q < Naive.count g q)

let test_count_by () =
  let g = Generators.holme_kim (Rng.create 7) ~n:150 ~m_per:4 ~p_triad:0.5 ~recip:0.3 in
  let db = Graphflow.Db.create ~z:150 g in
  let q = Patterns.asymmetric_triangle in
  let by_a1 = Graphflow.Db.count_by db q ~key:[ 0 ] in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 by_a1 in
  check_int "group counts sum to total" (Graphflow.Db.count db q) total;
  (* Sorted descending. *)
  let rec desc = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && desc rest
    | _ -> true
  in
  check_bool "descending" true (desc by_a1);
  (* Grouping by all vertices gives singleton groups. *)
  let by_all = Graphflow.Db.count_by db q ~key:[ 0; 1; 2 ] in
  check_bool "all-key groups are singletons" true (List.for_all (fun (_, n) -> n = 1) by_all);
  check_bool "bad key rejected" true
    (try ignore (Graphflow.Db.count_by db q ~key:[ 9 ]); false with Invalid_argument _ -> true)

let test_to_dot () =
  let q = Patterns.q 9 in
  let hybrid =
    Plan.extend q
      (Plan.hash_join q (Plan.wco q [| 2; 3; 4 |]) (Plan.wco q [| 0; 1; 2 |]))
      5
  in
  let dot = Plan.to_dot hybrid in
  check_bool "digraph" true (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  List.iter
    (fun needle ->
      check_bool (needle ^ " present") true
        (let re = Str.regexp_string needle in
         try ignore (Str.search_forward re dot 0); true with Not_found -> false))
    [ "SCAN"; "HASH-JOIN"; "E/I"; "build"; "probe" ]

let suite =
  let q t = QCheck_alcotest.to_alcotest t in
  [
    ( "crosscheck",
      [
        q prop_all_engines_agree;
        q prop_spectrum_plans_agree;
        q prop_spectrum_plans_agree_parallel;
        q prop_cfl_agrees_distinct;
        q prop_data_queries_match;
      ] );
    ( "parallel.morsel",
      [
        Alcotest.test_case "work stealing on skew" `Quick test_work_stealing_skew;
        Alcotest.test_case "hybrid features" `Quick test_parallel_hybrid_features;
      ] );
    ( "api",
      [
        Alcotest.test_case "adaptive distinct" `Quick test_adaptive_distinct;
        Alcotest.test_case "count_by" `Quick test_count_by;
        Alcotest.test_case "to_dot" `Quick test_to_dot;
      ] );
  ]
