(* Second-layer unit tests: behaviours of each subsystem that the primary
   suites exercise only indirectly. *)

open Gf_query
module Graph = Gf_graph.Graph
module Generators = Gf_graph.Generators
module Stats = Gf_graph.Stats
module Catalog = Gf_catalog.Catalog
module Planner = Gf_opt.Planner
module Plan = Gf_plan.Plan
module Exec = Gf_exec.Exec
module Naive = Gf_exec.Naive
module Counters = Gf_exec.Counters
module Adaptive = Gf_adaptive.Adaptive
module Ghd = Gf_ghd.Ghd
module Bj = Gf_baseline.Bj
module Cfl = Gf_baseline.Cfl
module Rng = Gf_util.Rng
module Bitset = Gf_util.Bitset
module Sorted = Gf_util.Sorted
module Int_vec = Gf_util.Int_vec

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let graph () = Generators.holme_kim (Rng.create 111) ~n:200 ~m_per:4 ~p_triad:0.5 ~recip:0.3

(* ---------- graph ---------- *)

let test_max_out_cap () =
  let g = Generators.holme_kim ~max_out:6 (Rng.create 112) ~n:1500 ~m_per:5 ~recip:0.5 ~p_triad:0.3 in
  for v = 0 to Graph.num_vertices g - 1 do
    if Graph.degree g Graph.Fwd v > 6 then
      Alcotest.failf "vertex %d out-degree %d exceeds cap" v (Graph.degree g Graph.Fwd v)
  done

let test_plant_cliques () =
  let base = Generators.erdos_renyi (Rng.create 113) ~n:300 ~m:600 in
  let g = Generators.plant_cliques (Rng.create 114) base ~count:3 ~size:7 in
  check_bool "edges added" true (Graph.num_edges g > Graph.num_edges base);
  let db = Graphflow.Db.create ~z:100 g in
  check_bool "7-cliques exist" true (Graphflow.Db.count db (Patterns.q 14) >= 3)

let test_degree_equals_partition_sums () =
  let g = Graph.relabel (graph ()) (Rng.create 115) ~num_vlabels:3 ~num_elabels:2 in
  for v = 0 to Graph.num_vertices g - 1 do
    List.iter
      (fun dir ->
        let total = ref 0 in
        for el = 0 to 1 do
          for nl = 0 to 2 do
            total := !total + Graph.partition_size g dir v ~elabel:el ~nlabel:nl
          done
        done;
        if !total <> Graph.degree g dir v then
          Alcotest.failf "degree mismatch at %d: %d vs %d" v !total (Graph.degree g dir v))
      [ Graph.Fwd; Graph.Bwd ]
  done

let test_neighbours_any_nlabel_spans_partitions () =
  let g = Graph.relabel (graph ()) (Rng.create 116) ~num_vlabels:3 ~num_elabels:1 in
  for v = 0 to 40 do
    let _, lo, hi = Graph.neighbours_any_nlabel g Graph.Fwd v ~elabel:0 in
    let parts = ref 0 in
    for nl = 0 to 2 do
      parts := !parts + Graph.partition_size g Graph.Fwd v ~elabel:0 ~nlabel:nl
    done;
    check_int "span covers all nlabel partitions" !parts (hi - lo)
  done

let test_stats_summary_fields () =
  let g = graph () in
  let s = Stats.summarize ~samples:100 g in
  check_int "n" (Graph.num_vertices g) s.Stats.num_vertices;
  check_int "m" (Graph.num_edges g) s.Stats.num_edges;
  check_bool "avg consistent" true
    (abs_float (s.Stats.avg_out_degree -. (float_of_int s.Stats.num_edges /. float_of_int s.Stats.num_vertices)) < 1e-6);
  check_bool "clustering in [0,1]" true (s.Stats.avg_clustering >= 0.0 && s.Stats.avg_clustering <= 1.0)

let test_triangle_sampling_estimate () =
  let g = graph () in
  let exact = float_of_int (Naive.count g Patterns.asymmetric_triangle) in
  let est = Stats.count_triangles_sampled g (Rng.create 117) ~samples:(Graph.num_edges g) in
  check_bool
    (Printf.sprintf "sampled %f vs exact %f" est exact)
    true
    (Catalog.q_error ~estimate:est ~truth:exact < 1.2)

(* ---------- sorted kernels ---------- *)

let test_gallop_via_skewed_leapfrog () =
  (* Heavily skewed 3-way with one singleton: leapfrog must terminate fast
     and return the correct element. *)
  let big = Sorted.of_array (Array.init 50_000 (fun i -> i * 2)) in
  let out = Int_vec.create () in
  Sorted.leapfrog out [| big; Sorted.of_array [| 77_776 |]; big |];
  Alcotest.(check (array int)) "skewed" [| 77_776 |] (Int_vec.to_array out)

(* ---------- catalogue ---------- *)

let test_edge_count_memoized_consistent () =
  let g = Graph.relabel (graph ()) (Rng.create 118) ~num_vlabels:2 ~num_elabels:2 in
  let cat = Catalog.create g in
  let total = ref 0 in
  for el = 0 to 1 do
    for sl = 0 to 1 do
      for dl = 0 to 1 do
        total := !total + Catalog.edge_count cat ~elabel:el ~slabel:sl ~dlabel:dl
      done
    done
  done;
  check_int "partition counts sum to m" (Graph.num_edges g) !total

let test_mu_double_removal () =
  (* h=2 with a 5-vertex extension forces removing 2 vertices in the
     fallback (z-set size 2). *)
  let g = graph () in
  let cat = Catalog.create ~h:2 ~z:200 g in
  let q = Patterns.q 8 (* bowtie, 5 vertices *) in
  let mu = Catalog.mu_estimate cat q ~new_vertex:4 in
  check_bool "finite non-negative" true (Float.is_finite mu && mu >= 0.0)

let test_exhaustive_then_save_load () =
  let g = Generators.erdos_renyi (Rng.create 119) ~n:80 ~m:320 in
  let cat = Catalog.create ~h:2 ~z:100 g in
  let n = Catalog.build_exhaustive cat in
  let path = Filename.temp_file "gf_cat2" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Catalog.save cat path;
      let cat2 = Catalog.load g path in
      check_int "all entries persisted" n (Catalog.num_entries cat2))

(* ---------- planner ---------- *)

let test_beam_matches_full_on_medium_query () =
  (* For a 6-vertex query, beam mode (threshold 4) and full mode must both
     produce correct plans; costs may differ. *)
  let g = graph () in
  let cat = Catalog.create ~z:200 g in
  let q = Patterns.q 9 in
  let expected = Naive.count g q in
  let full, _ = Planner.plan cat q in
  let beam, _ =
    Planner.plan ~opts:{ Planner.default_opts with beam_threshold = 4; beam_width = 4 } cat q
  in
  check_int "full correct" expected (Exec.count g full);
  check_int "beam correct" expected (Exec.count g beam)

let test_planner_deterministic () =
  let g = graph () in
  let cat = Catalog.create ~z:200 g in
  let p1, c1 = Planner.plan cat (Patterns.q 8) in
  let p2, c2 = Planner.plan cat (Patterns.q 8) in
  Alcotest.(check string) "same plan" (Plan.signature p1) (Plan.signature p2);
  check_bool "same cost" true (c1 = c2)

let test_wco_only_all_queries () =
  let g = graph () in
  let cat = Catalog.create ~z:200 g in
  let opts = { Planner.default_opts with mode = Planner.Wco_only } in
  List.iter
    (fun i ->
      let q = Patterns.q i in
      let p, _ = Planner.plan ~opts cat q in
      check_int (Printf.sprintf "Q%d wco-only" i) (Query.num_vertices q - 2) (Plan.num_ei_operators p);
      check_int (Printf.sprintf "Q%d wco-only count" i) (Naive.count g q) (Exec.count g p))
    [ 2; 3; 4; 8; 11 ]

(* ---------- adaptive ---------- *)

let test_adaptive_stats_shape () =
  let g = graph () in
  let cat = Catalog.create ~z:200 g in
  let q = Patterns.diamond_x in
  let plan = Plan.wco q [| 1; 2; 0; 3 |] in
  let _, stats = Adaptive.run cat g q plan in
  check_int "one segment" 1 stats.Adaptive.segments;
  (* Extending {a2,a3} by {a1,a4}: both orders are connected -> 2 candidates. *)
  check_int "two candidate orderings" 2 stats.Adaptive.candidate_orderings;
  check_bool "used at least one" true (stats.Adaptive.orderings_used >= 1);
  check_bool "routed = scan tuples" true (stats.Adaptive.tuples_routed > 0)

let test_adaptive_sink_and_limit_together () =
  let g = graph () in
  let cat = Catalog.create ~z:200 g in
  let q = Patterns.diamond_x in
  let plan = Plan.wco q [| 0; 1; 2; 3 |] in
  let seen = ref 0 in
  let c, _ = Adaptive.run ~limit:9 ~sink:(fun _ -> incr seen) cat g q plan in
  check_int "limited" 9 c.Counters.output;
  check_int "sink calls" 9 !seen

(* ---------- ghd ---------- *)

let test_ghd_decompositions_sorted_by_width () =
  List.iter
    (fun i ->
      let all = Ghd.decompositions (Patterns.q i) in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a.Ghd.width <= b.Ghd.width +. 1e-9 && nondecreasing rest
        | _ -> true
      in
      check_bool (Printf.sprintf "Q%d sorted" i) true (nondecreasing all))
    [ 2; 3; 8; 10 ]

let test_ghd_plan_with_orders_arity () =
  let q = Patterns.diamond_x in
  let d = Ghd.min_width_decomposition q in
  check_bool "arity mismatch rejected" true
    (try
       ignore (Ghd.plan_with_orders q d [| [| 0; 1; 2 |] |]);
       false
     with Invalid_argument _ -> true)

let test_ghd_labeled_queries () =
  let g = Graph.relabel (graph ()) (Rng.create 120) ~num_vlabels:1 ~num_elabels:2 in
  let cat = Catalog.create ~z:200 g in
  let rng = Rng.create 121 in
  List.iter
    (fun i ->
      let q = Patterns.randomize_edge_labels rng (Patterns.q i) ~num_elabels:2 in
      let d = Ghd.min_width_decomposition q in
      let p = Ghd.to_plan cat q d Ghd.Best_estimated in
      check_int (Printf.sprintf "Q%d_2 EH" i) (Naive.count g q) (Exec.count g p))
    [ 3; 8; 12 ]

(* ---------- baselines ---------- *)

let test_bj_default_order_covers_edges () =
  List.iter
    (fun i ->
      let q = Patterns.q i in
      (* run with the default order; stats must account for every edge
         (matches equals naive proves the order covered the query). *)
      let g = graph () in
      check_int (Printf.sprintf "Q%d bj" i) (Naive.count g q) (Bj.count g q))
    [ 6; 9; 10; 12 ]

let test_cfl_stats () =
  let g = Graph.relabel (graph ()) (Rng.create 122) ~num_vlabels:4 ~num_elabels:1 in
  let s = Cfl.run g Patterns.diamond_x in
  check_int "core of diamond-x" 4 s.Cfl.core_size;
  check_bool "candidates checked" true (s.Cfl.candidates_checked > 0);
  check_int "matches correct" (Naive.count ~distinct:true g Patterns.diamond_x) s.Cfl.matches

(* ---------- patterns / query ---------- *)

let test_clique_automorphism_trivial () =
  (* The acyclic orientation makes every vertex distinguishable. *)
  check_int "acyclic 4-clique rigid" 1 (List.length (Query.automorphisms (Patterns.clique 4 ~cyclic:false)));
  check_int "cyclic 4-clique" 1 (List.length (Query.automorphisms (Patterns.clique 4 ~cyclic:true)))

let test_cycle_automorphisms () =
  List.iter
    (fun k -> check_int (Printf.sprintf "%d-cycle rotations" k) k
        (List.length (Query.automorphisms (Patterns.cycle k))))
    [ 3; 4; 5; 6 ]

let test_q9_structure () =
  (* Q9 per DESIGN.md: two triangles sharing a3, closed through a6. *)
  let q = Patterns.q 9 in
  check_bool "a3 in both triangles" true (Bitset.cardinal (Query.neighbours q 2) = 4);
  check_bool "a6 closes" true (Query.has_edge q 0 5 && Query.has_edge q 4 5)

let suite =
  [
    ( "depth.graph",
      [
        Alcotest.test_case "max_out cap" `Quick test_max_out_cap;
        Alcotest.test_case "plant cliques" `Quick test_plant_cliques;
        Alcotest.test_case "degree = partition sums" `Quick test_degree_equals_partition_sums;
        Alcotest.test_case "any-nlabel span" `Quick test_neighbours_any_nlabel_spans_partitions;
        Alcotest.test_case "stats fields" `Quick test_stats_summary_fields;
        Alcotest.test_case "triangle sampling" `Quick test_triangle_sampling_estimate;
        Alcotest.test_case "skewed leapfrog" `Quick test_gallop_via_skewed_leapfrog;
      ] );
    ( "depth.catalog",
      [
        Alcotest.test_case "edge counts sum" `Quick test_edge_count_memoized_consistent;
        Alcotest.test_case "double removal" `Quick test_mu_double_removal;
        Alcotest.test_case "exhaustive save/load" `Quick test_exhaustive_then_save_load;
      ] );
    ( "depth.planner",
      [
        Alcotest.test_case "beam vs full" `Quick test_beam_matches_full_on_medium_query;
        Alcotest.test_case "deterministic" `Quick test_planner_deterministic;
        Alcotest.test_case "wco-only suite" `Slow test_wco_only_all_queries;
      ] );
    ( "depth.adaptive",
      [
        Alcotest.test_case "stats shape" `Quick test_adaptive_stats_shape;
        Alcotest.test_case "sink + limit" `Quick test_adaptive_sink_and_limit_together;
      ] );
    ( "depth.ghd",
      [
        Alcotest.test_case "sorted by width" `Quick test_ghd_decompositions_sorted_by_width;
        Alcotest.test_case "arity" `Quick test_ghd_plan_with_orders_arity;
        Alcotest.test_case "labeled" `Quick test_ghd_labeled_queries;
      ] );
    ( "depth.baselines",
      [
        Alcotest.test_case "bj default orders" `Slow test_bj_default_order_covers_edges;
        Alcotest.test_case "cfl stats" `Quick test_cfl_stats;
      ] );
    ( "depth.query",
      [
        Alcotest.test_case "clique rigidity" `Quick test_clique_automorphism_trivial;
        Alcotest.test_case "cycle automorphisms" `Quick test_cycle_automorphisms;
        Alcotest.test_case "q9 structure" `Quick test_q9_structure;
      ] );
  ]
