open Gf_graph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Small labeled fixture:
   vertices 0..4, vlabels [0;1;0;1;0]
   edges: 0->1(e0) 0->2(e0) 0->3(e1) 1->2(e0) 3->2(e0) 4->0(e0) 2->4(e1) *)
let fixture () =
  Graph.build ~num_vlabels:2 ~num_elabels:2 ~vlabel:[| 0; 1; 0; 1; 0 |]
    ~edges:[| (0, 1, 0); (0, 2, 0); (0, 3, 1); (1, 2, 0); (3, 2, 0); (4, 0, 0); (2, 4, 1) |]

let test_build_counts () =
  let g = fixture () in
  check_int "n" 5 (Graph.num_vertices g);
  check_int "m" 7 (Graph.num_edges g);
  check_int "nv" 2 (Graph.num_vlabels g);
  check_int "ne" 2 (Graph.num_elabels g);
  check_int "vlabel 1" 1 (Graph.vlabel g 1)

let test_build_dedup_and_self_loops () =
  let g =
    Graph.build ~num_vlabels:1 ~num_elabels:1 ~vlabel:[| 0; 0 |]
      ~edges:[| (0, 1, 0); (0, 1, 0); (1, 1, 0); (1, 0, 0) |]
  in
  check_int "dedup + no self loop" 2 (Graph.num_edges g)

let test_neighbours_partitions () =
  let g = fixture () in
  (* Vertex 0 forward: label-0 edges to {1 (vl 1), 2 (vl 0)}; label-1 edge to 3. *)
  let sub (arr, lo, hi) = Gf_util.Buf.sub_array arr lo hi in
  Alcotest.(check (array int))
    "0 fwd e0 nl0" [| 2 |]
    (sub (Graph.neighbours g Graph.Fwd 0 ~elabel:0 ~nlabel:0));
  Alcotest.(check (array int))
    "0 fwd e0 nl1" [| 1 |]
    (sub (Graph.neighbours g Graph.Fwd 0 ~elabel:0 ~nlabel:1));
  Alcotest.(check (array int))
    "0 fwd e1 nl1" [| 3 |]
    (sub (Graph.neighbours g Graph.Fwd 0 ~elabel:1 ~nlabel:1));
  (* Vertex 2 backward, label 0: sources {0, 1, 3}; partition by source label. *)
  Alcotest.(check (array int))
    "2 bwd e0 nl0" [| 0 |]
    (sub (Graph.neighbours g Graph.Bwd 2 ~elabel:0 ~nlabel:0));
  Alcotest.(check (array int))
    "2 bwd e0 nl1" [| 1; 3 |]
    (sub (Graph.neighbours g Graph.Bwd 2 ~elabel:0 ~nlabel:1))

let test_degree_and_partition_size () =
  let g = fixture () in
  check_int "deg fwd 0" 3 (Graph.degree g Graph.Fwd 0);
  check_int "deg bwd 2" 3 (Graph.degree g Graph.Bwd 2);
  check_int "deg bwd 0" 1 (Graph.degree g Graph.Bwd 0);
  check_int "psize" 2 (Graph.partition_size g Graph.Bwd 2 ~elabel:0 ~nlabel:1)

let test_has_edge () =
  let g = fixture () in
  check_bool "0->1 e0" true (Graph.has_edge g 0 1 ~elabel:0);
  check_bool "0->1 e1" false (Graph.has_edge g 0 1 ~elabel:1);
  check_bool "1->0" false (Graph.has_edge g 1 0 ~elabel:0);
  check_bool "2->4 e1" true (Graph.has_edge g 2 4 ~elabel:1)

let test_vertices_with_label () =
  let g = fixture () in
  Alcotest.(check (array int)) "label 0" [| 0; 2; 4 |] (Graph.vertices_with_label g 0);
  Alcotest.(check (array int)) "label 1" [| 1; 3 |] (Graph.vertices_with_label g 1)

let test_iter_edges () =
  let g = fixture () in
  let acc = ref [] in
  Graph.iter_edges g ~elabel:0 ~slabel:0 ~dlabel:0 (fun u v -> acc := (u, v) :: !acc);
  Alcotest.(check (list (pair int int)))
    "scan e0 l0->l0"
    [ (0, 2); (4, 0) ]
    (List.sort compare !acc);
  check_int "count agrees" 2 (Graph.count_edges g ~elabel:0 ~slabel:0 ~dlabel:0)

let test_iter_edges_range_partitions_work () =
  let g = fixture () in
  (* label-0 sources are [0;2;4]; ranges [0,1) + [1,3) must equal full scan. *)
  let collect lo hi =
    let acc = ref [] in
    Graph.iter_edges_range g ~elabel:0 ~slabel:0 ~dlabel:0 ~lo ~hi (fun u v ->
        acc := (u, v) :: !acc);
    !acc
  in
  let full = collect 0 3 in
  let split = collect 0 1 @ collect 1 3 in
  Alcotest.(check (list (pair int int)))
    "range split = full" (List.sort compare full) (List.sort compare split)

let test_sample_edge () =
  let g = fixture () in
  let rng = Gf_util.Rng.create 1 in
  for _ = 1 to 50 do
    match Graph.sample_edge g rng ~elabel:0 ~slabel:0 ~dlabel:0 with
    | None -> Alcotest.fail "expected an edge"
    | Some (u, v) -> check_bool "sampled edge valid" true (List.mem (u, v) [ (0, 2); (4, 0) ])
  done;
  check_bool "no match -> None" true
    (Graph.sample_edge g rng ~elabel:1 ~slabel:1 ~dlabel:1 = None)

let test_sample_edge_uniform () =
  let g = fixture () in
  let rng = Gf_util.Rng.create 2 in
  let c02 = ref 0 and c32 = ref 0 in
  for _ = 1 to 2000 do
    match Graph.sample_edge g rng ~elabel:0 ~slabel:0 ~dlabel:0 with
    | Some (0, 2) -> incr c02
    | Some (4, 0) -> incr c32
    | _ -> Alcotest.fail "unexpected edge"
  done;
  check_bool "roughly uniform" true (abs (!c02 - !c32) < 300)

let test_edge_array_roundtrip () =
  let g = fixture () in
  let edges = Graph.edge_array g in
  check_int "edge count" 7 (Array.length edges);
  let g2 =
    Graph.build ~num_vlabels:2 ~num_elabels:2
      ~vlabel:(Array.init 5 (Graph.vlabel g))
      ~edges
  in
  Alcotest.(check (list (triple int int int)))
    "round trip"
    (Array.to_list (Graph.edge_array g) |> List.sort compare)
    (Array.to_list (Graph.edge_array g2) |> List.sort compare)

let test_relabel () =
  let g = fixture () in
  let g2 = Graph.relabel g (Gf_util.Rng.create 3) ~num_vlabels:3 ~num_elabels:2 in
  check_int "same n" 5 (Graph.num_vertices g2);
  check_int "same m" 7 (Graph.num_edges g2);
  check_int "new nv" 3 (Graph.num_vlabels g2);
  let unlabeled (u, v, _) = (u, v) in
  Alcotest.(check (list (pair int int)))
    "same topology"
    (Array.to_list (Graph.edge_array g) |> List.map unlabeled |> List.sort compare)
    (Array.to_list (Graph.edge_array g2) |> List.map unlabeled |> List.sort compare)

(* ---------- generators ---------- *)

let test_erdos_renyi () =
  let g = Generators.erdos_renyi (Gf_util.Rng.create 4) ~n:100 ~m:400 in
  check_int "n" 100 (Graph.num_vertices g);
  check_int "m" 400 (Graph.num_edges g)

let test_barabasi_albert_skew () =
  let g = Generators.barabasi_albert (Gf_util.Rng.create 5) ~n:2000 ~m_per:5 ~recip:0.0 in
  let s = Stats.summarize ~samples:200 g in
  check_bool "in-degree more skewed than out"
    true
    (s.Stats.in_degree_cv > s.Stats.out_degree_cv +. 0.5)

let test_holme_kim_clustering () =
  let rng1 = Gf_util.Rng.create 6 and rng2 = Gf_util.Rng.create 6 in
  let low = Generators.holme_kim rng1 ~n:2000 ~m_per:5 ~p_triad:0.0 ~recip:0.2 in
  let high = Generators.holme_kim rng2 ~n:2000 ~m_per:5 ~p_triad:0.8 ~recip:0.2 in
  let cl g = (Stats.summarize ~samples:300 g).Stats.avg_clustering in
  check_bool "triad formation raises clustering" true (cl high > cl low *. 1.5)

let test_datasets_build () =
  List.iter
    (fun name ->
      let g = Generators.dataset ~scale:0.02 name in
      check_bool
        (Generators.dataset_name_to_string name ^ " nonempty")
        true
        (Graph.num_vertices g > 0 && Graph.num_edges g > 0))
    Generators.all_dataset_names

let test_dataset_names () =
  check_bool "roundtrip" true
    (List.for_all
       (fun d ->
         Generators.dataset_name_of_string (Generators.dataset_name_to_string d) = Some d)
       Generators.all_dataset_names);
  check_bool "unknown" true (Generators.dataset_name_of_string "nope" = None)

let test_io_roundtrip () =
  let g =
    Generators.erdos_renyi (Gf_util.Rng.create 7) ~n:50 ~m:120
    |> fun g -> Graph.relabel g (Gf_util.Rng.create 8) ~num_vlabels:3 ~num_elabels:2
  in
  let path = Filename.temp_file "gf_test" ".graph" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graph_io.save g path;
      let g2 = Graph_io.load path in
      check_int "n" (Graph.num_vertices g) (Graph.num_vertices g2);
      check_int "m" (Graph.num_edges g) (Graph.num_edges g2);
      Alcotest.(check (list (triple int int int)))
        "edges"
        (Array.to_list (Graph.edge_array g) |> List.sort compare)
        (Array.to_list (Graph.edge_array g2) |> List.sort compare);
      for v = 0 to Graph.num_vertices g - 1 do
        check_int "vlabel" (Graph.vlabel g v) (Graph.vlabel g2 v)
      done)

(* The binary snapshot: bit-identical round trip through save + mmap load,
   auto-detection by magic, structured errors for torn and foreign files. *)
let snap_fixture () =
  Generators.erdos_renyi (Gf_util.Rng.create 21) ~n:120 ~m:900 |> fun g ->
  Graph.relabel g (Gf_util.Rng.create 22) ~num_vlabels:3 ~num_elabels:2

let with_snapshot g f =
  let path = Filename.temp_file "gf_test" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Graph_io.save_snapshot g path;
      f path)

let test_snapshot_roundtrip () =
  let g = snap_fixture () in
  with_snapshot g (fun path ->
      let g2 = Graph_io.load_snapshot path in
      check_int "n" (Graph.num_vertices g) (Graph.num_vertices g2);
      check_int "m" (Graph.num_edges g) (Graph.num_edges g2);
      Alcotest.(check (list (triple int int int)))
        "edges identical"
        (Array.to_list (Graph.edge_array g))
        (Array.to_list (Graph.edge_array g2));
      for v = 0 to Graph.num_vertices g - 1 do
        check_int "vlabel" (Graph.vlabel g v) (Graph.vlabel g2 v)
      done;
      check_bool "tagged mapped" true (Graph.origin g2 = Graph.Mapped path);
      let r = Graph.residency g2 in
      check_bool "mapped residency" true r.Graph.mapped;
      check_bool "off-heap bytes positive" true (r.Graph.offheap_bytes > 0);
      check_int "narrow ids (n < 2^31)" 4 r.Graph.nbr_width;
      (* auto-detection: the generic loader must take the snapshot path *)
      match Graph_io.load_result path with
      | Ok g3 -> check_int "autodetected" (Graph.num_edges g) (Graph.num_edges g3)
      | Error e -> Alcotest.fail (Graph_io.load_error_to_string e))

let test_snapshot_torn_detection () =
  let g = snap_fixture () in
  with_snapshot g (fun path ->
      let sz = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd (sz - 3);
      Unix.close fd;
      match Graph_io.load_snapshot_result path with
      | Error { kind = Graph_io.Torn _; _ } -> ()
      | Ok _ -> Alcotest.fail "torn snapshot loaded"
      | Error e -> Alcotest.fail ("wrong error: " ^ Graph_io.load_error_to_string e))

let test_snapshot_bad_version () =
  let g = snap_fixture () in
  with_snapshot g (fun path ->
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      ignore (Unix.lseek fd 8 Unix.SEEK_SET);
      ignore (Unix.write_substring fd "\042" 0 1);
      Unix.close fd;
      match Graph_io.load_snapshot_result path with
      | Error { kind = Graph_io.Bad_version 42; _ } -> ()
      | Ok _ -> Alcotest.fail "bad version loaded"
      | Error e -> Alcotest.fail ("wrong error: " ^ Graph_io.load_error_to_string e))

let test_snapshot_queries_agree () =
  let g = snap_fixture () in
  with_snapshot g (fun path ->
      let gm = Graph_io.load_snapshot path in
      (* neighbour slices over mapped storage behave identically *)
      for v = 0 to Graph.num_vertices g - 1 do
        for el = 0 to 1 do
          for nl = 0 to 2 do
            let a, alo, ahi = Graph.neighbours g Graph.Fwd v ~elabel:el ~nlabel:nl in
            let b, blo, bhi = Graph.neighbours gm Graph.Fwd v ~elabel:el ~nlabel:nl in
            Alcotest.(check (array int))
              "slice" (Gf_util.Buf.sub_array a alo ahi)
              (Gf_util.Buf.sub_array b blo bhi)
          done
        done
      done)

(* Property: every partition slice is strictly sorted, and fwd/bwd agree. *)
let prop_partitions_sorted =
  let gen = QCheck2.Gen.(pair (int_range 5 40) (int_bound 200)) in
  QCheck2.Test.make ~name:"adjacency partitions sorted; fwd = bwd transposed" ~count:60 gen
    (fun (n, m) ->
      let rng = Gf_util.Rng.create (n + (m * 1000)) in
      let edges =
        Array.init m (fun _ ->
            (Gf_util.Rng.int rng n, Gf_util.Rng.int rng n, Gf_util.Rng.int rng 2))
      in
      let vlabel = Array.init n (fun _ -> Gf_util.Rng.int rng 2) in
      let g = Graph.build ~num_vlabels:2 ~num_elabels:2 ~vlabel ~edges in
      let ok = ref true in
      for v = 0 to n - 1 do
        for el = 0 to 1 do
          for nl = 0 to 1 do
            List.iter
              (fun dir ->
                let arr, lo, hi = Graph.neighbours g dir v ~elabel:el ~nlabel:nl in
                if not (Gf_util.Sorted.is_sorted_strict arr lo hi) then ok := false)
              [ Graph.Fwd; Graph.Bwd ]
          done
        done
      done;
      (* Transposition check: u in bwd(v) iff edge u->v exists. *)
      Array.iter
        (fun (u, v, el) ->
          if u <> v then begin
            let arr, lo, hi = Graph.neighbours g Graph.Bwd v ~elabel:el ~nlabel:vlabel.(u) in
            if not (Gf_util.Sorted.member arr lo hi u) then ok := false
          end)
        edges;
      !ok)

let suite =
  let q t = QCheck_alcotest.to_alcotest t in
  [
    ( "graph.core",
      [
        Alcotest.test_case "build counts" `Quick test_build_counts;
        Alcotest.test_case "dedup/self-loops" `Quick test_build_dedup_and_self_loops;
        Alcotest.test_case "partitions" `Quick test_neighbours_partitions;
        Alcotest.test_case "degrees" `Quick test_degree_and_partition_size;
        Alcotest.test_case "has_edge" `Quick test_has_edge;
        Alcotest.test_case "vertices_with_label" `Quick test_vertices_with_label;
        Alcotest.test_case "iter_edges" `Quick test_iter_edges;
        Alcotest.test_case "iter_edges ranges" `Quick test_iter_edges_range_partitions_work;
        Alcotest.test_case "sample_edge" `Quick test_sample_edge;
        Alcotest.test_case "sample_edge uniform" `Quick test_sample_edge_uniform;
        Alcotest.test_case "edge_array roundtrip" `Quick test_edge_array_roundtrip;
        Alcotest.test_case "relabel" `Quick test_relabel;
        q prop_partitions_sorted;
      ] );
    ( "graph.generators",
      [
        Alcotest.test_case "erdos-renyi" `Quick test_erdos_renyi;
        Alcotest.test_case "BA skew" `Slow test_barabasi_albert_skew;
        Alcotest.test_case "holme-kim clustering" `Slow test_holme_kim_clustering;
        Alcotest.test_case "datasets build" `Slow test_datasets_build;
        Alcotest.test_case "dataset names" `Quick test_dataset_names;
      ] );
    ( "graph.io",
      [
        Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
        Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
        Alcotest.test_case "snapshot torn detection" `Quick test_snapshot_torn_detection;
        Alcotest.test_case "snapshot bad version" `Quick test_snapshot_bad_version;
        Alcotest.test_case "snapshot queries agree" `Quick test_snapshot_queries_agree;
      ] );
  ]
