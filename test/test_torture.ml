(* Crash-torture driver: fork a durable-store writer, SIGKILL it at an
   armed fault point, recover, and require the store to come back as
   exactly the acknowledged prefix — across every fault point and a seed
   matrix, plus one clean (no-crash) control round per seed.

   A standalone executable, NOT part of test_main: Torture.run forks, and
   fork in a process with running threads (alcotest machinery, other
   suites' leftovers) risks a child stuck on an orphaned lock. The
   GFQ_TORTURE_SEEDS environment variable widens the matrix in CI. *)

module Fault = Gf_wal.Fault
module Torture = Gf_wal.Torture

let points =
  [
    Fault.Wal_mid_record;
    Fault.Wal_pre_fsync;
    Fault.Wal_mid_rotation;
    Fault.Checkpoint_mid_rename;
  ]

let () =
  let num_seeds =
    match Sys.getenv_opt "GFQ_TORTURE_SEEDS" with
    | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 8)
    | None -> 8
  in
  let failures = ref 0 and rounds = ref 0 in
  let round seed crash =
    incr rounds;
    let cfg = { (Torture.default ~seed) with crash } in
    let label =
      match crash with
      | None -> "none"
      | Some (p, after) -> Printf.sprintf "%s@%d" (Fault.point_to_string p) after
    in
    match Torture.run cfg with
    | Ok o ->
        Printf.printf "torture seed=%-4d crash=%-25s %s\n%!" seed label (Torture.pp_outcome o)
    | Error m ->
        incr failures;
        Printf.printf "torture seed=%-4d crash=%-25s FAIL: %s\n%!" seed label m
  in
  for i = 0 to num_seeds - 1 do
    let seed = 7 + (i * 31) in
    round seed None;
    List.iteri
      (fun pi p ->
        (* Frequent points (every append / fsync) get a hit count landing
           mid-run; rare points (rotation, checkpoint) fire only a handful
           of times, so arm an early hit. A fault point never reached is a
           legal outcome — the child just runs to completion. *)
        let after =
          match p with
          | Fault.Wal_mid_record | Fault.Wal_pre_fsync -> 1 + ((seed + (pi * 29)) mod 80)
          | Fault.Wal_mid_rotation | Fault.Checkpoint_mid_rename -> 1 + ((seed + pi) mod 3)
        in
        round seed (Some (p, after)))
      points
  done;
  Printf.printf "torture: %d rounds, %d failures\n%!" !rounds !failures;
  exit (if !failures > 0 then 1 else 0)
