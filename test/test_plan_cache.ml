(* The plan cache: hit/miss/replan accounting, canonical-space skeleton
   instantiation across renumbered isomorphs, graph-version invalidation,
   drift-triggered re-optimization, LRU bounds, and thread safety. *)

module Gf = Graphflow
module Plan_cache = Gf.Plan_cache

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let graph () =
  Gf.Generators.holme_kim (Gf.Rng.create 81) ~n:200 ~m_per:4 ~p_triad:0.5 ~recip:0.3

let db_with_cache ?(capacity = 16) () =
  let cache = Plan_cache.create ~capacity () in
  (Gf.Db.create ~z:200 ~plan_cache:cache (graph ()), cache)

let triangle = Gf.Db.parse_query "a1->a2, a2->a3, a1->a3"

(* The same labeled shape as [triangle], submitted under a different vertex
   numbering (the scanned edge differs, every edge is renamed). *)
let triangle_renumbered = Gf.Db.parse_query "a3->a1, a1->a2, a3->a2"

let test_hit_on_resubmission () =
  let db, cache = db_with_cache () in
  let expected = Gf.Naive.count (Gf.Db.graph db) triangle in
  check_int "first run" expected (Gf.Db.count db triangle);
  check_int "second run" expected (Gf.Db.count db triangle);
  let s = Plan_cache.stats cache in
  check_int "one miss" 1 s.Plan_cache.misses;
  check_bool "hits recorded" true (s.Plan_cache.hits >= 1);
  check_int "one entry" 1 s.Plan_cache.entries;
  let p1, _ = Gf.Db.plan db triangle in
  let p2, _ = Gf.Db.plan db triangle in
  check_string "same signature" (Gf.Plan.signature p1) (Gf.Plan.signature p2)

let test_isomorph_shares_entry () =
  let db, cache = db_with_cache () in
  let expected = Gf.Naive.count (Gf.Db.graph db) triangle in
  check_int "original numbering" expected (Gf.Db.count db triangle);
  (* The renumbered isomorph must be served from the same entry — and the
     instantiated plan must be correct for ITS numbering, not the cached
     query's. *)
  check_int "renumbered isomorph" expected (Gf.Db.count db triangle_renumbered);
  let s = Plan_cache.stats cache in
  check_int "single template" 1 s.Plan_cache.entries;
  check_int "no second miss" 1 s.Plan_cache.misses;
  check_bool "served from cache" true (s.Plan_cache.hits >= 1)

let test_version_bump_misses () =
  let db, cache = db_with_cache () in
  ignore (Gf.Db.plan db triangle);
  let s0 = Plan_cache.stats cache in
  check_int "miss then" 1 s0.Plan_cache.misses;
  (* Re-seating on a graph (the merge-publication path) advances the version:
     the old entry must not be served. *)
  let db2 = Gf.Db.with_graph db (graph ()) in
  check_bool "version advanced" true (Gf.Db.graph_version db2 > Gf.Db.graph_version db);
  ignore (Gf.Db.plan db2 triangle);
  let s1 = Plan_cache.stats cache in
  check_int "stale version misses" 2 s1.Plan_cache.misses;
  check_int "replaced, not duplicated" 1 s1.Plan_cache.entries

let test_invalidate () =
  let db, cache = db_with_cache () in
  ignore (Gf.Db.plan db triangle);
  ignore (Gf.Db.plan db Gf.Patterns.diamond_x);
  check_int "two entries" 2 (Plan_cache.stats cache).Plan_cache.entries;
  Plan_cache.invalidate cache;
  let s = Plan_cache.stats cache in
  check_int "empty" 0 s.Plan_cache.entries;
  check_int "one invalidation" 1 s.Plan_cache.invalidations

(* Synthetic q-error sequence: feed observations whose actuals dwarf the
   estimates; the correction EWMA must cross the drift threshold, mark the
   entry stale, and the next lookup must replan (with corrections applied). *)
let test_drift_triggers_replan () =
  let db, cache = db_with_cache () in
  let cat = Gf.Db.catalog db in
  let opts = Gf.Planner.default_opts in
  let r0 = Plan_cache.lookup cache ~opts ~graph_version:0 cat triangle in
  check_bool "cold lookup misses" true (r0.Plan_cache.outcome = Plan_cache.Miss);
  let synthetic_rows plan act =
    Gf.Plan.operators plan |> Array.to_list
    |> List.map (fun (_, id) ->
           {
             Gf.Explain.id;
             label = "synthetic";
             kind = Gf.Profile.Scan;
             depth = 0;
             est_card = 10.0;
             act_card = act;
             card_q = 1.0;
             est_cost = 0.0;
             act_cost = 0.0;
             cost_q = None;
             time_s = 0.0;
             cache_hits = 0;
             intersections = 0;
             hj_build = 0;
             hj_probe = 0;
           })
  in
  check_bool "fresh entry not stale" false (Plan_cache.is_stale cache triangle);
  Plan_cache.observe cache ~graph_version:0 triangle r0.Plan_cache.plan
    (synthetic_rows r0.Plan_cache.plan 1_000_000);
  check_bool "drift marked" true (Plan_cache.is_stale cache triangle);
  let r1 = Plan_cache.lookup cache ~opts ~graph_version:0 cat triangle in
  check_bool "stale entry replans" true (r1.Plan_cache.outcome = Plan_cache.Replan);
  let s = Plan_cache.stats cache in
  check_int "replan counted" 1 s.Plan_cache.replans;
  check_bool "feedback counted" true (s.Plan_cache.feedbacks >= 1);
  (* Each replan snapshots the corrections in force; a replanned plan may
     surface operator subsets not yet corrected (drift again), but the
     subset space is finite, so the same observation stream must stop
     triggering replans within a few rounds. *)
  let rec converge n plan =
    check_bool "converges within a few replans" true (n < 6);
    Plan_cache.observe cache ~graph_version:0 triangle plan (synthetic_rows plan 1_000_000);
    if Plan_cache.is_stale cache triangle then begin
      let r = Plan_cache.lookup cache ~opts ~graph_version:0 cat triangle in
      check_bool "stale replans" true (r.Plan_cache.outcome = Plan_cache.Replan);
      converge (n + 1) r.Plan_cache.plan
    end
  in
  converge 0 r1.Plan_cache.plan;
  let r2 = Plan_cache.lookup cache ~opts ~graph_version:0 cat triangle in
  check_bool "post-convergence hit" true (r2.Plan_cache.outcome = Plan_cache.Hit)

let test_bounded_eviction () =
  let db, cache = db_with_cache ~capacity:4 () in
  for i = 1 to 8 do
    ignore (Gf.Db.plan db (Gf.Patterns.q i))
  done;
  let s = Plan_cache.stats cache in
  check_bool "bounded" true (s.Plan_cache.entries <= 4);
  check_int "evictions" 4 s.Plan_cache.evictions;
  check_int "all cold" 8 s.Plan_cache.misses;
  (* Recency: the last-planned templates survived. *)
  check_bool "mru survives" true (Plan_cache.mem cache (Gf.Patterns.q 8));
  check_bool "lru evicted" false (Plan_cache.mem cache (Gf.Patterns.q 1))

let test_large_pattern_fallback () =
  (* 9 vertices exceeds Canon's exact canonicalization: the structural
     fallback key must cache (and hit) instead of raising. *)
  let db, cache = db_with_cache () in
  let nine_path = Gf.Patterns.path 9 in
  let p1, _ = Gf.Db.plan db nine_path in
  let p2, _ = Gf.Db.plan db nine_path in
  check_string "same plan" (Gf.Plan.signature p1) (Gf.Plan.signature p2);
  let s = Plan_cache.stats cache in
  check_int "one miss" 1 s.Plan_cache.misses;
  check_bool "fallback key hits" true (s.Plan_cache.hits >= 1)

let test_racing_clients () =
  let db, cache = db_with_cache () in
  let queries =
    [| triangle; triangle_renumbered; Gf.Patterns.diamond_x; Gf.Patterns.cycle 4 |]
  in
  let expected = Array.map (Gf.Naive.count (Gf.Db.graph db)) queries in
  let per_thread = 12 and threads = 6 in
  let failures = Atomic.make 0 in
  let worker k () =
    for i = 0 to per_thread - 1 do
      let j = (k + i) mod Array.length queries in
      if Gf.Db.count db queries.(j) <> expected.(j) then Atomic.incr failures
    done
  in
  let ts = List.init threads (fun k -> Thread.create (worker k) ()) in
  List.iter Thread.join ts;
  check_int "all results correct" 0 (Atomic.get failures);
  let s = Plan_cache.stats cache in
  (* triangle and its renumbering share one template. *)
  check_int "templates" 3 s.Plan_cache.entries;
  check_int "every lookup accounted" (threads * per_thread)
    (s.Plan_cache.hits + s.Plan_cache.misses + s.Plan_cache.replans)

(* run_gov's feedback path: warmup executions run profiled and fold
   observations without failing requests. *)
let test_run_gov_feedback () =
  let db, cache = db_with_cache () in
  for _ = 1 to 5 do
    ignore (Gf.Db.run_gov db triangle)
  done;
  let s = Plan_cache.stats cache in
  check_bool "warmup runs fed back" true (s.Plan_cache.feedbacks >= 1);
  check_bool "hits recorded" true (s.Plan_cache.hits >= 3)

let test_explain_analyze_feeds_cache () =
  let db, cache = db_with_cache () in
  let a = Gf.Db.explain_analyze db triangle in
  check_bool "completed" true (a.Gf.Db.outcome = Gf.Governor.Completed);
  let s = Plan_cache.stats cache in
  check_bool "profiled run observed" true (s.Plan_cache.feedbacks >= 1)

let suite =
  [
    ( "plan_cache",
      [
        Alcotest.test_case "hit on resubmission" `Quick test_hit_on_resubmission;
        Alcotest.test_case "renumbered isomorph shares entry" `Quick
          test_isomorph_shares_entry;
        Alcotest.test_case "graph version bump misses" `Quick test_version_bump_misses;
        Alcotest.test_case "invalidate drops all" `Quick test_invalidate;
        Alcotest.test_case "drift triggers replan" `Quick test_drift_triggers_replan;
        Alcotest.test_case "bounded LRU eviction" `Quick test_bounded_eviction;
        Alcotest.test_case "fallback key beyond 8 vertices" `Quick
          test_large_pattern_fallback;
        Alcotest.test_case "racing clients" `Quick test_racing_clients;
        Alcotest.test_case "run_gov feedback" `Quick test_run_gov_feedback;
        Alcotest.test_case "explain_analyze feeds cache" `Quick
          test_explain_analyze_feeds_cache;
      ] );
  ]
