(* Per-operator profiling: the boundary-switching attribution must be
   *conservative* (per-operator columns sum to the run's counter totals,
   whatever path ran and however it ended) and *order-independent* for the
   order-independent counters (parallel merge equals sequential per op).
   Also covers the EXPLAIN ANALYZE join and the metrics registry. *)

open Gf_query
module Generators = Gf_graph.Generators
module Rng = Gf_util.Rng
module Plan = Gf_plan.Plan
module Exec = Gf_exec.Exec
module Counters = Gf_exec.Counters
module Governor = Gf_exec.Governor
module Profile = Gf_exec.Profile
module Metrics = Gf_exec.Metrics
module Parallel = Gf_exec.Parallel
module Explain = Gf_opt.Explain
module Db = Graphflow.Db

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let graph () = Generators.holme_kim (Rng.create 11) ~n:300 ~m_per:4 ~p_triad:0.5 ~recip:0.4

(* Hybrid diamond-X: exercises SCAN, E/I and HASH-JOIN rows at once. *)
let hybrid_plan () =
  let q = Patterns.diamond_x in
  Plan.hash_join q (Plan.wco q [| 1; 2; 0 |]) (Plan.wco q [| 1; 2; 3 |])

let wco_plan () =
  let q = Patterns.q 5 in
  Plan.wco q (Array.init (Query.num_vertices q) Fun.id)

let sum f prof = Array.fold_left (fun acc o -> acc + f o) 0 (Profile.ops prof)

(* Per-operator columns must sum to the run's counter totals: the profiler
   only ever *attributes* counter deltas, it never creates or drops any. *)
let check_sums msg prof (c : Counters.t) =
  check_int (msg ^ ": produced") c.Counters.produced (sum (fun o -> o.Profile.produced) prof);
  check_int (msg ^ ": icost") c.Counters.icost (sum (fun o -> o.Profile.icost) prof);
  check_int (msg ^ ": cache hits") c.Counters.cache_hits
    (sum (fun o -> o.Profile.cache_hits) prof);
  check_int (msg ^ ": intersections") c.Counters.intersections
    (sum (fun o -> o.Profile.intersections) prof);
  check_int (msg ^ ": hj build") c.Counters.hj_build_tuples
    (sum (fun o -> o.Profile.hj_build) prof);
  check_int (msg ^ ": hj probe") c.Counters.hj_probe_tuples
    (sum (fun o -> o.Profile.hj_probe) prof)

let test_sum_consistency_sequential () =
  let g = graph () in
  List.iter
    (fun (name, plan) ->
      let prof = Profile.create plan in
      let c = Exec.run ~prof g plan in
      check_int (name ^ ": one row per operator")
        (Array.length (Plan.operators plan))
        (Array.length (Profile.ops prof));
      Array.iteri
        (fun i o -> check_int (name ^ ": preorder ids") i o.Profile.id)
        (Profile.ops prof);
      check_sums name prof c;
      Array.iter
        (fun o -> check_bool (name ^ ": self time non-negative") true (o.Profile.time_s >= 0.))
        (Profile.ops prof);
      (* An unprofiled run is unchanged by profiling. *)
      check_int (name ^ ": same output") c.Counters.output (Exec.run g plan).Counters.output)
    [ ("hybrid", hybrid_plan ()); ("wco", wco_plan ()) ]

(* Parallel per-domain profiles merged after the join must equal the
   sequential profile operator by operator for the order-independent
   columns. [cache:false] because cache-hit streaks (and hence per-operator
   icost) depend on tuple arrival order, which morsel scheduling permutes;
   with the cache off, icost is a pure function of the tuple set. *)
let test_parallel_merge_equals_sequential () =
  let g = graph () in
  List.iter
    (fun (name, plan) ->
      let sprof = Profile.create plan in
      let sc = Exec.run ~cache:false ~prof:sprof g plan in
      let pprof = Profile.create plan in
      let r = Parallel.run ~domains:4 ~cache:false ~chunk:8 ~batch:16 ~prof:pprof g plan in
      check_int (name ^ ": output") sc.Counters.output r.Parallel.counters.Counters.output;
      Array.iter2
        (fun (s : Profile.op) (p : Profile.op) ->
          check_string (name ^ ": labels align") s.Profile.label p.Profile.label;
          check_int
            (Printf.sprintf "%s: op %d produced" name s.Profile.id)
            s.Profile.produced p.Profile.produced;
          check_int
            (Printf.sprintf "%s: op %d icost" name s.Profile.id)
            s.Profile.icost p.Profile.icost;
          check_int
            (Printf.sprintf "%s: op %d intersections" name s.Profile.id)
            s.Profile.intersections p.Profile.intersections;
          check_int
            (Printf.sprintf "%s: op %d hj build" name s.Profile.id)
            s.Profile.hj_build p.Profile.hj_build;
          check_int
            (Printf.sprintf "%s: op %d hj probe" name s.Profile.id)
            s.Profile.hj_probe p.Profile.hj_probe)
        (Profile.ops sprof) (Profile.ops pprof))
    [ ("hybrid", hybrid_plan ()); ("wco", wco_plan ()) ]

(* Under a governor truncation the per-domain attribution is cut off
   mid-pipeline at unpredictable points, so sequential equality is off the
   table — but the merged profile must still sum to the merged counters
   exactly ([Profile.finish] charges the deltas outstanding on the [Trip]
   unwind path). *)
let test_truncation_sum_consistency () =
  let g = graph () in
  let plan = wco_plan () in
  let total = Exec.count g plan in
  let cap = (total / 3) + 1 in
  let prof = Profile.create plan in
  let r =
    Parallel.run ~domains:4 ~chunk:4 ~batch:8
      ~budget:(Governor.budget ~max_output:cap ())
      ~prof g plan
  in
  check_bool "truncated" true (r.Parallel.outcome = Governor.Truncated Governor.Output_limit);
  check_sums "truncated parallel" prof r.Parallel.counters

(* Profiles refuse to merge across shapes and to explain foreign plans. *)
let test_shape_guards () =
  let hybrid = hybrid_plan () and wco = wco_plan () in
  check_bool "merge rejects different plans" true
    (try
       Profile.merge_into ~into:(Profile.create hybrid) (Profile.create wco);
       false
     with Invalid_argument _ -> true);
  let g = graph () in
  let db = Db.create ~z:150 g in
  let q = Patterns.diamond_x in
  check_bool "explain rejects foreign profile" true
    (try
       ignore
         (Explain.rows (Db.catalog db) q (fst (Db.plan db q)) (Profile.create (wco_plan ())));
       false
     with Invalid_argument _ -> true)

(* EXPLAIN ANALYZE must be identically shaped whichever engine ran: same
   operators, same ids/labels, same estimates; actual cardinalities equal
   between sequential and parallel (tuple production is order-independent).
   Adaptive rows share the shape but charge whole-segment work to the chain
   root, so only its totals are compared. *)
let test_explain_analyze_shapes_agree () =
  let g = graph () in
  let db = Db.create ~z:150 g in
  let q = Patterns.diamond_x in
  let a_seq = Db.explain_analyze db q in
  let a_par = Db.explain_analyze ~domains:3 db q in
  let a_ad = Db.explain_analyze ~adaptive:true db q in
  let matches = Db.count db q in
  List.iter
    (fun (name, (a : Db.analysis)) ->
      check_int (name ^ ": matches") matches a.Db.counters.Counters.output;
      check_bool (name ^ ": completed") true (a.Db.outcome = Governor.Completed);
      check_int (name ^ ": one row per operator")
        (Array.length (Plan.operators a.Db.plan))
        (List.length a.Db.rows))
    [ ("sequential", a_seq); ("parallel", a_par); ("adaptive", a_ad) ];
  List.iter
    (fun (name, (a : Db.analysis)) ->
      List.iter2
        (fun (s : Explain.row) (o : Explain.row) ->
          check_int (name ^ ": ids") s.Explain.id o.Explain.id;
          check_string (name ^ ": labels") s.Explain.label o.Explain.label;
          check_bool (name ^ ": est_card") true (s.Explain.est_card = o.Explain.est_card);
          check_bool (name ^ ": est_cost") true (s.Explain.est_cost = o.Explain.est_cost))
        a_seq.Db.rows a.Db.rows)
    [ ("parallel", a_par); ("adaptive", a_ad) ];
  List.iter2
    (fun (s : Explain.row) (p : Explain.row) ->
      check_int "seq vs par act_card" s.Explain.act_card p.Explain.act_card)
    a_seq.Db.rows a_par.Db.rows;
  (* Whatever the engine (adaptive legitimately produces a different
     intermediate count — it reorders segments), each analysis's rows must
     sum to its own run's produced total. *)
  List.iter
    (fun (name, (a : Db.analysis)) ->
      check_int (name ^ ": act_card sums to produced") a.Db.counters.Counters.produced
        (List.fold_left (fun acc (r : Explain.row) -> acc + r.Explain.act_card) 0 a.Db.rows))
    [ ("sequential", a_seq); ("parallel", a_par); ("adaptive", a_ad) ];
  (* Both renderers accept every shape. *)
  List.iter
    (fun (a : Db.analysis) ->
      check_bool "text render" true (String.length (Db.analysis_to_string a) > 0);
      let j = Db.analysis_to_json a in
      check_bool "json render" true
        (String.length j > 0 && j.[0] = '{' && j.[String.length j - 1] = '}'))
    [ a_seq; a_par; a_ad ]

let contains hay needle =
  let re = Str.regexp_string needle in
  try
    ignore (Str.search_forward re hay 0);
    true
  with Not_found -> false

let test_metrics_registry () =
  Metrics.reset ();
  let c = Metrics.counter ~help:"a test counter" "test_ops_total" in
  Metrics.inc c;
  Metrics.inc ~by:4 c;
  check_int "counter accumulates" 5 (Metrics.counter_value c);
  check_int "creation is idempotent" 5 (Metrics.counter_value (Metrics.counter "test_ops_total"));
  let h = Metrics.histogram ~help:"a test histogram" "test_seconds" in
  Metrics.observe h 0.002;
  Metrics.observe h 1.5;
  check_int "histogram counts" 2 (Metrics.histogram_count h);
  check_bool "kind mismatch rejected" true
    (try
       ignore (Metrics.histogram "test_ops_total");
       false
     with Invalid_argument _ -> true);
  let e = Metrics.exposition () in
  List.iter
    (fun needle -> check_bool (needle ^ " exposed") true (contains e needle))
    [
      "# TYPE test_ops_total counter";
      "test_ops_total 5";
      "# TYPE test_seconds histogram";
      "test_seconds_bucket{le=\"+Inf\"} 2";
      "test_seconds_count 2";
    ];
  Metrics.reset ()

let test_db_metrics_instrumented () =
  Metrics.reset ();
  let g = graph () in
  let db = Db.create ~z:150 g in
  let q = Patterns.asymmetric_triangle in
  let n = Db.count db q in
  let (_ : Counters.t * Governor.outcome) = Db.run_gov ~budget:(Governor.budget ~max_output:1 ()) db q in
  check_int "queries counted" 2 (Metrics.counter_value (Metrics.counter "gf_queries_total"));
  check_bool "matches counted" true
    (Metrics.counter_value (Metrics.counter "gf_query_matches_total") >= n);
  check_int "truncations counted" 1
    (Metrics.counter_value (Metrics.counter "gf_queries_truncated_total"));
  check_int "latencies observed" 2 (Metrics.histogram_count (Metrics.histogram "gf_query_seconds"));
  check_bool "exposition carries query metrics" true
    (contains (Db.metrics_exposition ()) "gf_query_seconds_bucket");
  Metrics.reset ()

let suite =
  [
    ( "profile",
      [
        Alcotest.test_case "sequential sums to counters" `Quick test_sum_consistency_sequential;
        Alcotest.test_case "parallel merge = sequential" `Quick
          test_parallel_merge_equals_sequential;
        Alcotest.test_case "truncation stays consistent" `Quick test_truncation_sum_consistency;
        Alcotest.test_case "shape guards" `Quick test_shape_guards;
        Alcotest.test_case "explain analyze shapes agree" `Quick
          test_explain_analyze_shapes_agree;
      ] );
    ( "metrics",
      [
        Alcotest.test_case "registry" `Quick test_metrics_registry;
        Alcotest.test_case "db instrumentation" `Quick test_db_metrics_instrumented;
      ] );
  ]
