open Gf_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Int_vec ---------- *)

let test_int_vec_basic () =
  let v = Int_vec.create () in
  check_bool "empty" true (Int_vec.is_empty v);
  for i = 0 to 99 do
    Int_vec.push v (i * 2)
  done;
  check_int "length" 100 (Int_vec.length v);
  check_int "get 7" 14 (Int_vec.get v 7);
  Int_vec.set v 7 (-1);
  check_int "set/get" (-1) (Int_vec.get v 7);
  Int_vec.clear v;
  check_int "cleared" 0 (Int_vec.length v)

let test_int_vec_bounds () =
  let v = Int_vec.of_array [| 1; 2; 3 |] in
  Alcotest.check_raises "get oob" (Invalid_argument "Int_vec.get") (fun () ->
      ignore (Int_vec.get v 3));
  Alcotest.check_raises "get neg" (Invalid_argument "Int_vec.get") (fun () ->
      ignore (Int_vec.get v (-1)));
  Alcotest.check_raises "set oob" (Invalid_argument "Int_vec.set") (fun () ->
      Int_vec.set v 5 0)

let test_int_vec_append () =
  let a = Int_vec.of_array [| 1; 2 |] and b = Int_vec.of_array [| 3; 4; 5 |] in
  Int_vec.append a b;
  Alcotest.(check (array int)) "append" [| 1; 2; 3; 4; 5 |] (Int_vec.to_array a);
  let c = Int_vec.create () in
  Int_vec.push_array c [| 9; 8; 7; 6 |] 1 3;
  Alcotest.(check (array int)) "push_array slice" [| 8; 7 |] (Int_vec.to_array c)

let test_int_vec_copy_from () =
  let a = Int_vec.of_array [| 1; 2; 3 |] in
  let b = Int_vec.of_array [| 9 |] in
  Int_vec.copy_from b a;
  Alcotest.(check (array int)) "copied" [| 1; 2; 3 |] (Int_vec.to_array b);
  Int_vec.push a 4;
  check_int "independent" 3 (Int_vec.length b)

let test_int_vec_fold_iter () =
  let v = Int_vec.of_array [| 1; 2; 3; 4 |] in
  check_int "fold sum" 10 (Int_vec.fold_left ( + ) 0 v);
  let acc = ref [] in
  Int_vec.iter (fun x -> acc := x :: !acc) v;
  Alcotest.(check (list int)) "iter order" [ 4; 3; 2; 1 ] !acc

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref true in
  for _ = 1 to 20 do
    if Rng.int a 1_000_000 <> Rng.int b 1_000_000 then same := false
  done;
  check_bool "streams differ" false !same

let test_rng_range () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    check_bool "in range" true (x >= 0 && x < 17)
  done

let test_rng_uniformity () =
  let r = Rng.create 11 in
  let buckets = Array.make 10 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    let i = Rng.int r 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let frac = float_of_int c /. float_of_int trials in
      check_bool (Printf.sprintf "bucket %d near 0.1 (%f)" i frac) true
        (frac > 0.08 && frac < 0.12))
    buckets

let test_rng_shuffle_permutes () =
  let r = Rng.create 5 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_sample_without_replacement () =
  let r = Rng.create 9 in
  let s = Rng.sample_without_replacement r ~n:100 ~k:30 in
  check_int "size" 30 (Array.length s);
  let distinct = Hashtbl.create 64 in
  Array.iter
    (fun x ->
      check_bool "range" true (x >= 0 && x < 100);
      check_bool "distinct" false (Hashtbl.mem distinct x);
      Hashtbl.replace distinct x ())
    s;
  check_bool "ascending" true
    (Sorted.is_sorted_strict (Buf.of_int_array s) 0 (Array.length s))

let test_rng_geometric () =
  let r = Rng.create 13 in
  check_int "p=1 is 0" 0 (Rng.geometric r 1.0);
  let sum = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    sum := !sum + Rng.geometric r 0.5
  done;
  (* mean of geometric(0.5) failures-before-success = 1 *)
  let mean = float_of_int !sum /. float_of_int trials in
  check_bool (Printf.sprintf "mean near 1 (%f)" mean) true (mean > 0.9 && mean < 1.1)

(* ---------- Sorted ---------- *)

let naive_intersect a b =
  Array.to_list a |> List.filter (fun x -> Array.exists (( = ) x) b) |> Array.of_list

(* Kernels operate on off-heap Buf slices; wrap test arrays at the edge. *)
let ba a = Buf.of_int_array a
let sl a : Sorted.slice = (ba a, 0, Array.length a)

let test_intersect2_small () =
  let a = [| 1; 3; 5; 7; 9 |] and b = [| 2; 3; 4; 7; 10 |] in
  let out = Int_vec.create () in
  Sorted.intersect2 out (ba a) 0 (Array.length a) (ba b) 0 (Array.length b);
  Alcotest.(check (array int)) "intersection" [| 3; 7 |] (Int_vec.to_array out)

let test_intersect2_disjoint_and_empty () =
  let out = Int_vec.create () in
  Sorted.intersect2 out (ba [| 1; 2 |]) 0 2 (ba [| 3; 4 |]) 0 2;
  check_int "disjoint" 0 (Int_vec.length out);
  Sorted.intersect2 out (ba [||]) 0 0 (ba [| 1 |]) 0 1;
  check_int "empty lhs" 0 (Int_vec.length out)

let test_intersect2_galloping_path () =
  (* Force the galloping branch with a strongly skewed size ratio. *)
  let big = Array.init 10_000 (fun i -> i * 3) in
  let small = [| 0; 4242; 4243; 2999 * 3; 9999 * 3 |] in
  let out = Int_vec.create () in
  Sorted.intersect2 out (ba small) 0 (Array.length small) (ba big) 0 (Array.length big);
  (* 4242 = 3 * 1414 is in [big]; 4243 is not. *)
  Alcotest.(check (array int)) "gallop" [| 0; 4242; 2999 * 3; 9999 * 3 |] (Int_vec.to_array out)

let test_intersect2_slices () =
  let a = ba [| 0; 1; 2; 3; 4; 5 |] in
  let out = Int_vec.create () in
  (* Only consider a[2..5) = {2,3,4} against {3,4,5}. *)
  Sorted.intersect2 out a 2 5 (ba [| 3; 4; 5 |]) 0 3;
  Alcotest.(check (array int)) "slice" [| 3; 4 |] (Int_vec.to_array out)

let test_intersect_multiway () =
  let slices =
    [|
      sl [| 1; 2; 3; 4; 5; 6; 7; 8 |];
      sl [| 2; 4; 6; 8; 10 |];
      sl [| 4; 5; 6; 7; 8 |];
    |]
  in
  let out = Int_vec.create () and scratch = Int_vec.create () in
  Sorted.intersect out slices ~scratch;
  Alcotest.(check (array int)) "3-way" [| 4; 6; 8 |] (Int_vec.to_array out)

let test_intersect_single_and_zero () =
  let out = Int_vec.create () and scratch = Int_vec.create () in
  Sorted.intersect out [| sl [| 5; 6 |] |] ~scratch;
  Alcotest.(check (array int)) "1-way copies" [| 5; 6 |] (Int_vec.to_array out);
  Int_vec.clear out;
  Sorted.intersect out [||] ~scratch;
  check_int "0-way empty" 0 (Int_vec.length out)

let test_leapfrog_small () =
  let slices =
    [|
      sl [| 1; 2; 3; 4; 5; 6; 7; 8 |];
      sl [| 2; 4; 6; 8; 10 |];
      sl [| 4; 5; 6; 7; 8 |];
    |]
  in
  let out = Int_vec.create () in
  Sorted.leapfrog out slices;
  Alcotest.(check (array int)) "3-way leapfrog" [| 4; 6; 8 |] (Int_vec.to_array out)

let test_leapfrog_edge_cases () =
  let out = Int_vec.create () in
  Sorted.leapfrog out [||];
  check_int "0-way" 0 (Int_vec.length out);
  Sorted.leapfrog out [| sl [| 3; 9 |] |];
  Alcotest.(check (array int)) "1-way copies" [| 3; 9 |] (Int_vec.to_array out);
  Int_vec.clear out;
  Sorted.leapfrog out [| sl [| 1 |]; sl [||] |];
  check_int "empty iterator" 0 (Int_vec.length out);
  Int_vec.clear out;
  Sorted.leapfrog out [| sl [| 1; 3 |]; sl [| 2; 4 |] |];
  check_int "disjoint" 0 (Int_vec.length out)

let prop_leapfrog_matches_pairwise =
  let gen = QCheck2.Gen.(list_size (int_range 2 6) (list_size (int_bound 120) (int_bound 400))) in
  QCheck2.Test.make ~name:"leapfrog = pairwise cascade" ~count:300 gen (fun lists ->
      let arrays = List.map (fun l -> List.sort_uniq compare l |> Array.of_list) lists in
      let slices = Array.of_list (List.map sl arrays) in
      let out1 = Int_vec.create () and scratch = Int_vec.create () in
      Sorted.intersect out1 slices ~scratch;
      let out2 = Int_vec.create () in
      Sorted.leapfrog out2 slices;
      Int_vec.to_array out1 = Int_vec.to_array out2)

let test_lower_bound_member () =
  let a = ba [| 2; 4; 6; 8 |] in
  check_int "lb exact" 1 (Sorted.lower_bound a 0 4 4);
  check_int "lb between" 2 (Sorted.lower_bound a 0 4 5);
  check_int "lb before" 0 (Sorted.lower_bound a 0 4 0);
  check_int "lb after" 4 (Sorted.lower_bound a 0 4 99);
  check_bool "member yes" true (Sorted.member a 0 4 6);
  check_bool "member no" false (Sorted.member a 0 4 5)

let test_gallop_edges () =
  let raw = [| 10; 20; 30; 40; 50; 60; 70; 80 |] in
  let a = ba raw in
  let n = Array.length raw in
  (* empty slice: lo = hi is the only possible answer *)
  check_int "empty slice" 3 (Sorted.gallop a 3 3 25);
  check_int "empty slice at 0" 0 (Sorted.gallop a 0 0 99);
  (* whole-array boundaries *)
  check_int "before first" 0 (Sorted.gallop a 0 n 5);
  check_int "at first" 0 (Sorted.gallop a 0 n 10);
  check_int "exact interior" 4 (Sorted.gallop a 0 n 50);
  check_int "between keys" 4 (Sorted.gallop a 0 n 45);
  check_int "at last" (n - 1) (Sorted.gallop a 0 n 80);
  check_int "past last" n (Sorted.gallop a 0 n 99);
  (* single-element slices *)
  check_int "single hit" 2 (Sorted.gallop a 2 3 30);
  check_int "single miss low" 2 (Sorted.gallop a 2 3 25);
  check_int "single miss high" 3 (Sorted.gallop a 2 3 35);
  (* sub-slice windows must clamp at hi, never run past it *)
  check_int "subslice clamp" 5 (Sorted.gallop a 2 5 99);
  check_int "subslice interior" 3 (Sorted.gallop a 2 5 40)

(* Property: gallop is lower_bound, for any sub-slice and probe. *)
let prop_gallop_equals_lower_bound =
  let gen =
    QCheck2.Gen.(
      pair (list_size (int_bound 300) (int_bound 1000)) (pair (int_bound 1001) (int_bound 300)))
  in
  QCheck2.Test.make ~name:"gallop = lower_bound" ~count:300 gen (fun (l, (x, off)) ->
      let a = List.sort_uniq compare l |> Array.of_list in
      let n = Array.length a in
      let lo = if n = 0 then 0 else off mod (n + 1) in
      Sorted.gallop (ba a) lo n x = Sorted.lower_bound (ba a) lo n x)

let test_leapfrog_degenerate_slices () =
  let out = Int_vec.create () in
  (* single-element slices, all equal keys *)
  Sorted.leapfrog out [| sl [| 7 |]; sl [| 7 |]; sl [| 7 |] |];
  Alcotest.(check (array int)) "singletons equal" [| 7 |] (Int_vec.to_array out);
  Int_vec.clear out;
  (* single-element slices, distinct keys *)
  Sorted.leapfrog out [| sl [| 7 |]; sl [| 8 |] |];
  check_int "singletons distinct" 0 (Int_vec.length out);
  (* identical slices: intersection is the slice itself *)
  let a = [| 1; 4; 9; 16; 25 |] in
  let s = sl a in
  Sorted.leapfrog out [| s; s; s |];
  Alcotest.(check (array int)) "identical slices" a (Int_vec.to_array out);
  Int_vec.clear out;
  (* one slice's first key exceeds every other slice's last key: the very
     first seek overshoots to the end on all others *)
  Sorted.leapfrog out [| sl [| 1; 2; 3 |]; sl [| 90; 100 |] |];
  check_int "disjoint ranges (high last)" 0 (Int_vec.length out);
  Sorted.leapfrog out [| sl [| 90; 100 |]; sl [| 1; 2; 3 |]; sl [| 2; 91 |] |];
  check_int "disjoint ranges (high first)" 0 (Int_vec.length out);
  (* same shapes through the pairwise cascade for agreement *)
  let scratch = Int_vec.create () in
  Sorted.intersect out [| sl [| 1; 2; 3 |]; sl [| 90; 100 |] |] ~scratch;
  check_int "cascade agrees" 0 (Int_vec.length out)

(* 4-way-and-wider intersections exercise the second ping-pong buffer;
   passing ~scratch2 must not change the result. *)
let test_intersect_wide_scratch2 () =
  let slices =
    [|
      sl [| 1; 2; 3; 4; 5; 6; 7; 8; 9 |];
      sl [| 2; 4; 6; 8; 10 |];
      sl [| 1; 2; 4; 6; 8 |];
      sl [| 4; 6; 8; 12 |];
    |]
  in
  let out = Int_vec.create () and scratch = Int_vec.create () in
  Sorted.intersect out slices ~scratch;
  Alcotest.(check (array int)) "4-way default" [| 4; 6; 8 |] (Int_vec.to_array out);
  Int_vec.clear out;
  let scratch2 = Int_vec.create () in
  Sorted.intersect ~scratch2 out slices ~scratch;
  Alcotest.(check (array int)) "4-way with scratch2" [| 4; 6; 8 |] (Int_vec.to_array out);
  (* reuse the same buffers for a second, wider call: stale contents must
     not leak into the result *)
  Int_vec.clear out;
  let five = Array.append slices [| sl [| 0; 4; 8; 100 |] |] in
  Sorted.intersect ~scratch2 out five ~scratch;
  Alcotest.(check (array int)) "5-way reused buffers" [| 4; 8 |] (Int_vec.to_array out)

(* Property: intersect2 agrees with a naive quadratic implementation. *)
let prop_intersect2 =
  let gen =
    QCheck2.Gen.(
      pair (list_size (int_bound 200) (int_bound 500)) (list_size (int_bound 200) (int_bound 500)))
  in
  QCheck2.Test.make ~name:"intersect2 matches naive" ~count:300 gen (fun (la, lb) ->
      let dedup_sort l = List.sort_uniq compare l |> Array.of_list in
      let a = dedup_sort la and b = dedup_sort lb in
      let out = Int_vec.create () in
      Sorted.intersect2 out (ba a) 0 (Array.length a) (ba b) 0 (Array.length b);
      Int_vec.to_array out = naive_intersect a b)

let prop_intersect_multiway =
  let gen = QCheck2.Gen.(list_size (int_range 2 5) (list_size (int_bound 100) (int_bound 300))) in
  QCheck2.Test.make ~name:"k-way intersect matches pairwise folding" ~count:200 gen
    (fun lists ->
      let arrays = List.map (fun l -> List.sort_uniq compare l |> Array.of_list) lists in
      let slices = Array.of_list (List.map sl arrays) in
      let out = Int_vec.create () and scratch = Int_vec.create () in
      Sorted.intersect out slices ~scratch;
      let expected =
        match arrays with
        | [] -> [||]
        | first :: rest -> List.fold_left (fun acc a -> naive_intersect acc a) first rest
      in
      Int_vec.to_array out = expected)

let prop_gallop_equals_tandem =
  let gen = QCheck2.Gen.(pair (list_size (int_bound 20) (int_bound 2000)) (list_size (int_range 500 800) (int_bound 2000))) in
  QCheck2.Test.make ~name:"gallop path = tandem path" ~count:100 gen (fun (la, lb) ->
      let a = List.sort_uniq compare la |> Array.of_list in
      let b = List.sort_uniq compare lb |> Array.of_list in
      let out = Int_vec.create () in
      Sorted.intersect2 out (ba a) 0 (Array.length a) (ba b) 0 (Array.length b);
      Int_vec.to_array out = naive_intersect a b)

(* ---------- Bitset ---------- *)

let test_bitset_basic () =
  let s = Bitset.of_list [ 0; 3; 5 ] in
  check_bool "mem 3" true (Bitset.mem 3 s);
  check_bool "mem 1" false (Bitset.mem 1 s);
  check_int "cardinal" 3 (Bitset.cardinal s);
  Alcotest.(check (list int)) "elements sorted" [ 0; 3; 5 ] (Bitset.elements s);
  check_int "min_elt" 0 (Bitset.min_elt s);
  let s2 = Bitset.remove 0 s in
  check_int "min after remove" 3 (Bitset.min_elt s2);
  check_bool "subset" true (Bitset.subset s2 s);
  check_bool "not subset" false (Bitset.subset s s2)

let test_bitset_set_ops () =
  let a = Bitset.of_list [ 1; 2; 3 ] and b = Bitset.of_list [ 3; 4 ] in
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Bitset.elements (Bitset.union a b));
  Alcotest.(check (list int)) "inter" [ 3 ] (Bitset.elements (Bitset.inter a b));
  Alcotest.(check (list int)) "diff" [ 1; 2 ] (Bitset.elements (Bitset.diff a b));
  check_int "full 4" 15 (Bitset.full 4)

let test_bitset_subset_enumeration () =
  let s = Bitset.of_list [ 0; 1; 2 ] in
  let subsets = Bitset.fold_proper_nonempty_subsets (fun x acc -> x :: acc) s [] in
  check_int "2^3 - 2 proper nonempty" 6 (List.length subsets);
  List.iter
    (fun x ->
      check_bool "proper" true (x <> s && x <> Bitset.empty);
      check_bool "subset" true (Bitset.subset x s))
    subsets

let suite =
  let q t = QCheck_alcotest.to_alcotest t in
  [
    ( "util.int_vec",
      [
        Alcotest.test_case "basic" `Quick test_int_vec_basic;
        Alcotest.test_case "bounds" `Quick test_int_vec_bounds;
        Alcotest.test_case "append" `Quick test_int_vec_append;
        Alcotest.test_case "copy_from" `Quick test_int_vec_copy_from;
        Alcotest.test_case "fold/iter" `Quick test_int_vec_fold_iter;
      ] );
    ( "util.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seeds differ" `Quick test_rng_different_seeds;
        Alcotest.test_case "range" `Quick test_rng_range;
        Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
        Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        Alcotest.test_case "sample w/o replacement" `Quick test_rng_sample_without_replacement;
        Alcotest.test_case "geometric" `Quick test_rng_geometric;
      ] );
    ( "util.sorted",
      [
        Alcotest.test_case "intersect2 small" `Quick test_intersect2_small;
        Alcotest.test_case "disjoint/empty" `Quick test_intersect2_disjoint_and_empty;
        Alcotest.test_case "galloping" `Quick test_intersect2_galloping_path;
        Alcotest.test_case "slices" `Quick test_intersect2_slices;
        Alcotest.test_case "multiway" `Quick test_intersect_multiway;
        Alcotest.test_case "single/zero way" `Quick test_intersect_single_and_zero;
        Alcotest.test_case "lower_bound/member" `Quick test_lower_bound_member;
        Alcotest.test_case "gallop edges" `Quick test_gallop_edges;
        Alcotest.test_case "wide intersect scratch2" `Quick test_intersect_wide_scratch2;
        Alcotest.test_case "leapfrog small" `Quick test_leapfrog_small;
        Alcotest.test_case "leapfrog edges" `Quick test_leapfrog_edge_cases;
        Alcotest.test_case "leapfrog degenerate" `Quick test_leapfrog_degenerate_slices;
        q prop_intersect2;
        q prop_gallop_equals_lower_bound;
        q prop_intersect_multiway;
        q prop_gallop_equals_tandem;
        q prop_leapfrog_matches_pairwise;
      ] );
    ( "util.bitset",
      [
        Alcotest.test_case "basic" `Quick test_bitset_basic;
        Alcotest.test_case "set ops" `Quick test_bitset_set_ops;
        Alcotest.test_case "subset enumeration" `Quick test_bitset_subset_enumeration;
      ] );
  ]
