open Gf_query

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_triangle () =
  let q, vars = Cypher.parse "MATCH (a)-->(b), (b)-->(c), (a)-->(c)" in
  check_bool "triangle" true (Query.equal q Patterns.asymmetric_triangle);
  Alcotest.(check (list (pair string int))) "vars" [ ("a", 0); ("b", 1); ("c", 2) ] vars

let test_chain () =
  let q, _ = Cypher.parse "MATCH (a)-->(b)-->(c)-->(a)" in
  check_bool "3-cycle" true (Canon.iso q (Patterns.cycle 3))

let test_reversed_edge () =
  let q, _ = Cypher.parse "MATCH (a)-->(b)<--(c)" in
  check_int "n" 3 (Query.num_vertices q);
  check_bool "a->b" true (Query.has_edge q 0 1);
  check_bool "c->b" true (Query.has_edge q 2 1)

let test_labels_numeric () =
  let q, _ = Cypher.parse "MATCH (a:1)-[:2]->(b:0)" in
  check_int "vlabel a" 1 (Query.vlabel q 0);
  check_int "vlabel b" 0 (Query.vlabel q 1);
  check_int "elabel" 2 q.Query.edges.(0).Query.label

let test_labels_named () =
  (* Named labels are interned in order of first appearance. *)
  let q, _ = Cypher.parse "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:LIKES]->(c:Post)" in
  check_int "Person = 0" 0 (Query.vlabel q 0);
  check_int "Person again" 0 (Query.vlabel q 1);
  check_int "Post = 1" 1 (Query.vlabel q 2);
  check_int "KNOWS = 0" 0 q.Query.edges.(0).Query.label;
  check_int "LIKES = 1" 1 q.Query.edges.(1).Query.label

let test_anonymous_nodes () =
  let q, vars = Cypher.parse "MATCH (a)-->()-->(a)" in
  check_int "two vars incl anon" 2 (List.length vars);
  (* a -> anon -> a *)
  check_bool "fwd" true (Query.has_edge q 0 1);
  check_bool "bwd" true (Query.has_edge q 1 0)

let test_diamond_x () =
  let q, _ = Cypher.parse "MATCH (a)-->(b), (a)-->(c), (b)-->(c), (b)-->(d), (c)-->(d)" in
  check_bool "diamond-x" true (Query.equal q Patterns.diamond_x)

let test_match_keyword_optional () =
  let q, _ = Cypher.parse "(a)-->(b)" in
  check_int "edge" 1 (Query.num_edges q)

let test_errors () =
  let fails s = try ignore (Cypher.parse s); false with Failure _ -> true in
  check_bool "empty" true (fails "");
  check_bool "unclosed paren" true (fails "MATCH (a");
  check_bool "undirected" true (fails "MATCH (a)--(b)");
  check_bool "disconnected" true (fails "MATCH (a)-->(b), (c)-->(d)");
  check_bool "stray <" true (fails "MATCH (a)<(b)");
  check_bool "trailing" true (fails "MATCH (a)-->(b) extra")

let test_error_positions () =
  let err s =
    match Cypher.parse_result s with
    | Ok _ -> Alcotest.fail ("accepted: " ^ s)
    | Error e ->
        check_bool "input preserved" true (e.Parse_error.input = s);
        e
  in
  (* Tokens carry their byte offsets; the lexer error points at the '?'. *)
  let e = err "MATCH (a)-->(b)?" in
  check_int "lexer offset" 15 e.Parse_error.pos;
  (* A parse error past the end of input reports the input length. *)
  let e = err "MATCH (a" in
  check_int "eof offset" 8 e.Parse_error.pos;
  check_bool "eof pos in bounds" true (e.Parse_error.pos <= String.length e.Parse_error.input);
  (match Cypher.parse_result "MATCH (a)-->(b)" with
  | Ok (q, vars) ->
      check_int "ok path intact" 2 (Query.num_vertices q);
      check_int "var table" 2 (List.length vars)
  | Error e -> Alcotest.fail (Parse_error.to_string e))

let test_agrees_with_dsl () =
  let q1, _ = Cypher.parse "MATCH (u)-->(v), (v)-->(w), (u)-->(w), (v)-->(x), (w)-->(x)" in
  let q2 = Parser.parse "u->v, v->w, u->w, v->x, w->x" in
  check_bool "same query" true (Query.equal q1 q2)

let suite =
  [
    ( "query.cypher",
      [
        Alcotest.test_case "triangle" `Quick test_triangle;
        Alcotest.test_case "chain" `Quick test_chain;
        Alcotest.test_case "reversed edge" `Quick test_reversed_edge;
        Alcotest.test_case "numeric labels" `Quick test_labels_numeric;
        Alcotest.test_case "named labels" `Quick test_labels_named;
        Alcotest.test_case "anonymous nodes" `Quick test_anonymous_nodes;
        Alcotest.test_case "diamond-x" `Quick test_diamond_x;
        Alcotest.test_case "optional MATCH" `Quick test_match_keyword_optional;
        Alcotest.test_case "errors" `Quick test_errors;
        Alcotest.test_case "error positions" `Quick test_error_positions;
        Alcotest.test_case "agrees with DSL" `Quick test_agrees_with_dsl;
      ] );
  ]
