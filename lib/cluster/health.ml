module Metrics = Gf_exec.Metrics

type status = Up | Down

let status_to_string = function Up -> "up" | Down -> "down"

type entry = {
  ep : Gf_server.Server.endpoint;
  mutable st : status;
  mutable ok_streak : int;
  mutable fail_streak : int;
}

type t = {
  node : string;
  probe_interval_s : float;
  probe_timeout_s : float;
  down_after : int;
  up_after : int;
  m : Mutex.t;
  entries : (string, entry) Hashtbl.t;
  mutable stopped : bool;
  mutable thread : Thread.t option;
}

let c_inc name help = Metrics.inc (Metrics.counter ~help name)

let probe_once t entry =
  let ok =
    match Remote.connect ~timeout_s:t.probe_timeout_s entry.ep with
    | Error _ -> false
    | Ok conn ->
        let r =
          Remote.handshake conn ~timeout_s:t.probe_timeout_s ~node:t.node ~role:"probe"
        in
        Remote.close conn;
        Result.is_ok r
  in
  Mutex.lock t.m;
  if ok then begin
    entry.ok_streak <- entry.ok_streak + 1;
    entry.fail_streak <- 0;
    (* Hysteresis: one good probe must not flap a Down endpoint back into
       rotation — demand [up_after] consecutive successes. *)
    if entry.st = Down && entry.ok_streak >= t.up_after then begin
      entry.st <- Up;
      c_inc "gf_cluster_health_up_total" "Endpoints marked Up by the prober"
    end
  end
  else begin
    entry.fail_streak <- entry.fail_streak + 1;
    entry.ok_streak <- 0;
    c_inc "gf_cluster_probe_failures_total" "Failed health probes";
    if entry.st = Up && entry.fail_streak >= t.down_after then begin
      entry.st <- Down;
      c_inc "gf_cluster_health_down_total" "Endpoints marked Down by the prober"
    end
  end;
  Mutex.unlock t.m

let probe_loop t =
  while not t.stopped do
    let entries =
      Mutex.lock t.m;
      let es = Hashtbl.fold (fun _ e acc -> e :: acc) t.entries [] in
      Mutex.unlock t.m;
      es
    in
    List.iter (fun e -> if not t.stopped then probe_once t e) entries;
    (* Sleep in short slices so [stop] is honoured promptly. *)
    let slices = int_of_float (Float.max 1. (t.probe_interval_s /. 0.05)) in
    let rec nap i = if i > 0 && not t.stopped then (Thread.delay 0.05; nap (i - 1)) in
    nap slices
  done

let create ?(probe_interval_s = 1.0) ?(probe_timeout_s = 0.5) ?(down_after = 2)
    ?(up_after = 2) ~node endpoints =
  let t =
    {
      node;
      probe_interval_s;
      probe_timeout_s;
      down_after = max 1 down_after;
      up_after = max 1 up_after;
      m = Mutex.create ();
      entries = Hashtbl.create 8;
      stopped = false;
      thread = None;
    }
  in
  List.iter
    (fun ep ->
      let key = Topology.endpoint_to_string ep in
      if not (Hashtbl.mem t.entries key) then
        (* Optimistic start: an endpoint is Up until probes prove
           otherwise, so a cold coordinator routes immediately. *)
        Hashtbl.replace t.entries key { ep; st = Up; ok_streak = 0; fail_streak = 0 })
    endpoints;
  t.thread <- Some (Thread.create probe_loop t);
  t

let status t ep =
  let key = Topology.endpoint_to_string ep in
  Mutex.lock t.m;
  let st = match Hashtbl.find_opt t.entries key with Some e -> e.st | None -> Up in
  Mutex.unlock t.m;
  st

let snapshot t =
  Mutex.lock t.m;
  let xs = Hashtbl.fold (fun k e acc -> (k, e.st) :: acc) t.entries [] in
  Mutex.unlock t.m;
  List.sort compare xs

let stop t =
  t.stopped <- true;
  match t.thread with
  | Some th ->
      t.thread <- None;
      Thread.join th
  | None -> ()
