module Server = Gf_server.Server

(* A connection with a private read buffer: every read is bounded by
   SO_RCVTIMEO, so no cluster RPC can hang — a dead peer surfaces as a
   timeout or EOF within the deadline, never as a stuck thread. *)
type conn = { fd : Unix.file_descr; rbuf : Buffer.t }

let addr_of = function
  | Server.Unix_path p -> Unix.ADDR_UNIX p
  | Server.Tcp (host, port) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      Unix.ADDR_INET (addr, port)

let domain_of = function
  | Server.Unix_path _ -> Unix.PF_UNIX
  | Server.Tcp _ -> Unix.PF_INET

let connect ?(timeout_s = 1.0) ep =
  (* A peer can die between our write and its read; surface that as an
     error on the socket, not a process-killing signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match
    let fd = Unix.socket (domain_of ep) Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
       Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s
     with Unix.Unix_error _ -> ());
    (* Bounded connect: nonblocking + select, then surface the socket
       error (a refused unix socket fails immediately; TCP may be in
       progress). *)
    Unix.set_nonblock fd;
    (match Unix.connect fd (addr_of ep) with
    | () -> ()
    | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _)
      -> (
        match Unix.select [] [ fd ] [] timeout_s with
        | [], [], [] ->
            Unix.close fd;
            failwith "connect timeout"
        | _ -> (
            match Unix.getsockopt_error fd with
            | None -> ()
            | Some err ->
                Unix.close fd;
                raise (Unix.Unix_error (err, "connect", "")))));
    Unix.clear_nonblock fd;
    fd
  with
  | fd -> Ok { fd; rbuf = Buffer.create 256 }
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | exception Failure m -> Error m

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let send_line conn ~timeout_s line =
  (try Unix.setsockopt_float conn.fd Unix.SO_SNDTIMEO timeout_s
   with Unix.Unix_error _ -> ());
  let data = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length data in
  let rec write off =
    if off >= len then Ok ()
    else
      match Unix.write conn.fd data off (len - off) with
      | 0 -> Error "write: connection closed"
      | n -> write (off + n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Error "write timeout"
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  write 0

let recv_line conn ~timeout_s =
  (try Unix.setsockopt_float conn.fd Unix.SO_RCVTIMEO timeout_s
   with Unix.Unix_error _ -> ());
  let chunk = Bytes.create 4096 in
  let rec take () =
    let s = Buffer.contents conn.rbuf in
    match String.index_opt s '\n' with
    | Some i ->
        let line = String.sub s 0 i in
        Buffer.clear conn.rbuf;
        Buffer.add_substring conn.rbuf s (i + 1) (String.length s - i - 1);
        Ok line
    | None -> (
        match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
        | 0 -> Error "eof"
        | n ->
            Buffer.add_subbytes conn.rbuf chunk 0 n;
            take ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            Error "read timeout"
        | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
  in
  take ()

let request conn ~timeout_s line =
  match send_line conn ~timeout_s line with
  | Error _ as e -> e
  | Ok () -> recv_line conn ~timeout_s

(* ------------------------------------------------------------------ *)
(* Handshake                                                           *)
(* ------------------------------------------------------------------ *)

type peer = { node : string; n : int; m : int; graph_version : int; skew_us : int }

let handshake conn ~timeout_s ~node ~role =
  (* Bracket the exchange with local clock reads: the peer stamps its
     reply with its own clock, and peer-minus-midpoint approximates the
     clock skew (NTP-style, error bounded by half the round trip). The
     skew realigns grafted trace timestamps, where half-RTT jitter is
     well under a span's width. *)
  let t0 = Gf_obs.Trace.now_us () in
  match request conn ~timeout_s (Proto.hello_req ~node ~role) with
  | Error m -> Error ("hello: " ^ m)
  | Ok reply -> (
      let t1 = Gf_obs.Trace.now_us () in
      match (Proto.json_bool reply "ok", Proto.json_int reply "proto") with
      | Some true, Some p when p = Proto.version ->
          Ok
            {
              node = Option.value (Proto.json_str reply "node") ~default:"?";
              n = Option.value (Proto.json_int reply "n") ~default:0;
              m = Option.value (Proto.json_int reply "m") ~default:0;
              graph_version = Option.value (Proto.json_int reply "graph_version") ~default:0;
              skew_us =
                (match Proto.json_int reply "clock_us" with
                | Some peer_clock -> peer_clock - ((t0 + t1) / 2)
                | None -> 0);
            }
      | Some true, Some p ->
          Error (Printf.sprintf "version_mismatch: peer speaks proto %d, we speak %d" p Proto.version)
      | Some false, _ ->
          Error
            (Option.value (Proto.json_str reply "error") ~default:"refused"
            ^ Option.fold ~none:""
                ~some:(fun d -> ": " ^ d)
                (Proto.json_str reply "detail"))
      | _ -> Error "hello: malformed reply")

(* ------------------------------------------------------------------ *)
(* Per-endpoint connection pool                                        *)
(* ------------------------------------------------------------------ *)

type pool = {
  m : Mutex.t;
  idle : (string, conn list) Hashtbl.t;
  max_idle : int;
}

let pool_create ?(max_idle = 4) () = { m = Mutex.create (); idle = Hashtbl.create 8; max_idle }

let checkout pool ep =
  let key = Topology.endpoint_to_string ep in
  Mutex.lock pool.m;
  let c =
    match Hashtbl.find_opt pool.idle key with
    | Some (c :: rest) ->
        Hashtbl.replace pool.idle key rest;
        Some c
    | _ -> None
  in
  Mutex.unlock pool.m;
  c

let checkin pool ep conn =
  let key = Topology.endpoint_to_string ep in
  Mutex.lock pool.m;
  let cur = Option.value (Hashtbl.find_opt pool.idle key) ~default:[] in
  let keep = List.length cur < pool.max_idle in
  if keep then Hashtbl.replace pool.idle key (conn :: cur);
  Mutex.unlock pool.m;
  if not keep then close conn

let pool_close pool =
  Mutex.lock pool.m;
  Hashtbl.iter (fun _ conns -> List.iter close conns) pool.idle;
  Hashtbl.reset pool.idle;
  Mutex.unlock pool.m
