module Service = Gf_server.Service
module Wire = Gf_server.Wire

type t = {
  service : Service.t;
  node : string;
  n : int;
  m : int;
  slow_s : float option;  (** static straggler injection (bench) *)
}

let create ?slow_s ~node ~n ~m service = { service; node; n; m; slow_s }

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let hook t line : [ `Reply of string | `Close | `Pass ] =
  let line = String.trim line in
  if starts_with ~prefix:"hello" line then
    match Proto.parse_hello line with
    | Error m -> `Reply (Wire.error_resp ~kind:"parse" ~detail:m)
    | Ok h ->
        if h.Proto.p_proto <> Proto.version then
          `Reply (Proto.version_mismatch ~node:t.node ~theirs:h.Proto.p_proto)
        else
          let gv = (Service.stats t.service).Service.s_graph_version in
          `Reply
            (Proto.hello_resp ~node:t.node ~n:t.n ~m:t.m ~graph_version:gv
               ~clock_us:(Gf_obs.Trace.now_us ()))
  else if starts_with ~prefix:"shard " line then begin
    (* Fault sites, in dispatch order: the kill fires between receiving the
       morsel and producing any reply byte — exactly the window the
       coordinator's failover must cover. *)
    ignore (Cfault.fire Cfault.Worker_kill : bool);
    if Cfault.fire Cfault.Conn_drop then `Close
    else if Cfault.fire Cfault.Split_refusal then
      match Proto.parse_shard line with
      | Ok req -> `Reply (Proto.not_owner ~node:t.node ~part:(Option.get req.Service.part))
      | Error m -> `Reply (Wire.error_resp ~kind:"parse" ~detail:m)
    else begin
      if Cfault.fire Cfault.Slow_worker then Thread.delay 0.5;
      (match t.slow_s with Some s -> Thread.delay s | None -> ());
      match Proto.parse_shard line with
      | Error m -> `Reply (Wire.error_resp ~kind:"parse" ~detail:m)
      | Ok req -> (
          match Service.submit t.service req with
          | Ok reply ->
              (* Traced request: ship the span tree back so the coordinator
                 can stitch it into the cluster-wide trace under this
                 worker's own process track. *)
              let obs =
                match (Proto.shard_trace_ctx line, reply.Service.trace_obj) with
                | Some (trace_id, parent), Some tr ->
                    Some
                      {
                        Proto.o_trace_id = trace_id;
                        o_parent = parent;
                        o_pid = Unix.getpid ();
                        o_clock_us = Gf_obs.Trace.now_us ();
                        o_spans = Gf_obs.Trace.export_spans tr;
                      }
                | _ -> None
              in
              `Reply (Proto.shard_resp ~node:t.node ~part:(Option.get req.Service.part) ?obs reply)
          | Error reason -> `Reply (Wire.rejected reason))
    end
  end
  else `Pass
