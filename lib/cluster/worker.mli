(** The worker role: a {!Gf_server.Server.serve} hook layered over a
    normal service. [hello] lines answer the handshake (protocol version,
    node id, graph fingerprint — or a structured [version_mismatch]
    refusal); [shard part=i/k ... q=...] lines execute that slice of the
    query through the service's full resilience stack (admission queue,
    ladder, governor) and reply with a shard result; everything else
    passes through to the standard wire protocol, so a worker is still a
    complete [gfq serve] node (ping, stats, metrics, mutations against
    its own store).

    {!Cfault} sites fire on shard dispatch — worker-kill (SIGKILL between
    dispatch and reply), conn-drop ([`Close] without a reply byte),
    slow-worker (0.5 s stall), split-refusal ([not_owner]). [slow_s]
    injects a static stall on every shard request — the bench's
    deterministic straggler. *)

type t

val create : ?slow_s:float -> node:string -> n:int -> m:int -> Gf_server.Service.t -> t
(** [n]/[m] are the served graph's vertex/edge counts — the fingerprint
    the coordinator checks at [hello]. *)

val hook : t -> Gf_server.Server.hook
