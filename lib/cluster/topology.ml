module Server = Gf_server.Server

type shard = { id : int; endpoints : Server.endpoint list }
type t = { shards : shard array }

let parse_endpoint s =
  let s = String.trim s in
  if String.length s > 5 && String.sub s 0 5 = "unix:" then
    Ok (Server.Unix_path (String.sub s 5 (String.length s - 5)))
  else if String.length s > 4 && String.sub s 0 4 = "tcp:" then begin
    let rest = String.sub s 4 (String.length s - 4) in
    match String.rindex_opt rest ':' with
    | None -> Error (Printf.sprintf "bad endpoint %S (want tcp:host:port)" s)
    | Some i -> (
        let host = String.sub rest 0 i
        and port = String.sub rest (i + 1) (String.length rest - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 -> Ok (Server.Tcp (host, p))
        | _ -> Error (Printf.sprintf "bad port in endpoint %S" s))
  end
  else Error (Printf.sprintf "bad endpoint %S (want unix:/path or tcp:host:port)" s)

let endpoint_to_string = function
  | Server.Unix_path p -> "unix:" ^ p
  | Server.Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

(* workers.conf: one line per shard — "shard <id> <endpoint> [<endpoint>...]"
   with the primary first and read replicas after; '#' starts a comment. *)
let parse contents =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let lines = String.split_on_char '\n' contents in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        match String.split_on_char ' ' line |> List.filter (fun s -> String.trim s <> "") with
        | [] -> go (lineno + 1) acc rest
        | "shard" :: id :: (_ :: _ as eps) -> (
            match int_of_string_opt id with
            | None -> err "workers.conf line %d: bad shard id %S" lineno id
            | Some id -> (
                let rec eps_of acc = function
                  | [] -> Ok (List.rev acc)
                  | e :: more -> (
                      match parse_endpoint e with
                      | Ok ep -> eps_of (ep :: acc) more
                      | Error m -> err "workers.conf line %d: %s" lineno m)
                in
                match eps_of [] eps with
                | Ok endpoints -> go (lineno + 1) ({ id; endpoints } :: acc) rest
                | Error _ as e -> e))
        | "shard" :: _ ->
            err "workers.conf line %d: shard needs an id and at least one endpoint" lineno
        | tok :: _ -> err "workers.conf line %d: unknown directive %S" lineno tok)
  in
  match go 1 [] lines with
  | Error _ as e -> e
  | Ok [] -> Error "workers.conf: no shards"
  | Ok shards ->
      let shards = List.sort (fun a b -> compare a.id b.id) shards in
      let k = List.length shards in
      let ok =
        List.for_all2 (fun s want -> s.id = want) shards (List.init k Fun.id)
      in
      if not ok then
        Error
          (Printf.sprintf "workers.conf: shard ids must be contiguous 0..%d (got %s)"
             (k - 1)
             (String.concat "," (List.map (fun s -> string_of_int s.id) shards)))
      else Ok { shards = Array.of_list shards }

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | contents -> parse contents

let num_shards t = Array.length t.shards
