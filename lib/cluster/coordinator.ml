module Gf = Graphflow
module Metrics = Gf_exec.Metrics
module Breaker = Gf_server.Breaker
module Service = Gf_server.Service
module Wire = Gf_server.Wire
module Trace = Gf.Trace
module Governor = Gf.Governor

type config = {
  node : string;
  connect_timeout_s : float;
  rpc_timeout_s : float;
  retries : int;  (** extra attempts per shard beyond the first *)
  hedge_after_s : float option;  (** straggler hedging; [None] = off *)
  max_result_bytes : int option;  (** byte cap across streamed partials *)
  breaker : Breaker.config;
  probe_interval_s : float;
  probe_timeout_s : float;
  slowlog_capacity : int;
}

let default_config =
  {
    node = "coordinator";
    connect_timeout_s = 1.0;
    rpc_timeout_s = 10.0;
    retries = 2;
    hedge_after_s = Some 0.25;
    max_result_bytes = Some (64 * 1024 * 1024);
    breaker = Breaker.default_config;
    probe_interval_s = 1.0;
    probe_timeout_s = 0.5;
    slowlog_capacity = 256;
  }

type t = {
  cfg : config;
  topo : Topology.t;
  pool : Remote.pool;
  breakers : Breaker.t array;  (** one per shard: a bad shard opens alone *)
  health : Health.t;
  recorder : Gf.Recorder.t;
  m : Mutex.t;
  mutable fingerprint : (int * int) option;  (** (n, m) agreed by the cluster *)
  mutable next_id : int;
  mutable requests : int;
  mutable failovers : int;
  mutable hedges : int;
  mutable stopped : bool;
}

let c_inc ?(by = 1) name help = Metrics.inc ~by (Metrics.counter ~help name)

let create ?(config = default_config) topo =
  let endpoints =
    Array.to_list topo.Topology.shards
    |> List.concat_map (fun s -> s.Topology.endpoints)
  in
  {
    cfg = config;
    topo;
    pool = Remote.pool_create ();
    breakers =
      Array.init (Topology.num_shards topo) (fun _ -> Breaker.create config.breaker);
    health =
      Health.create ~probe_interval_s:config.probe_interval_s
        ~probe_timeout_s:config.probe_timeout_s ~node:config.node endpoints;
    recorder = Gf.Recorder.create ~capacity:config.slowlog_capacity ();
    m = Mutex.create ();
    fingerprint = None;
    next_id = 0;
    requests = 0;
    failovers = 0;
    hedges = 0;
    stopped = false;
  }

let stop t =
  t.stopped <- true;
  Health.stop t.health;
  Remote.pool_close t.pool

(* ------------------------------------------------------------------ *)
(* One RPC attempt against one endpoint                                *)
(* ------------------------------------------------------------------ *)

(* Dial (or reuse) a handshaken connection. The first successful hello
   fixes the cluster's graph fingerprint; any endpoint disagreeing on
   (n, m) is refused — identical graphs are what make per-worker plans
   identical, and a mismatched worker would silently corrupt the union. *)
let obtain_conn t ep =
  match Remote.checkout t.pool ep with
  | Some c -> Ok c
  | None -> (
      match Remote.connect ~timeout_s:t.cfg.connect_timeout_s ep with
      | Error _ as e -> e
      | Ok c -> (
          match
            Remote.handshake c ~timeout_s:t.cfg.connect_timeout_s ~node:t.cfg.node
              ~role:"coordinator"
          with
          | Error m ->
              Remote.close c;
              Error m
          | Ok peer ->
              Mutex.lock t.m;
              let verdict =
                match t.fingerprint with
                | None ->
                    t.fingerprint <- Some (peer.Remote.n, peer.Remote.m);
                    Ok c
                | Some (n, m) when n = peer.Remote.n && m = peer.Remote.m -> Ok c
                | Some (n, m) ->
                    Error
                      (Printf.sprintf
                         "fingerprint_mismatch: %s serves n=%d m=%d, cluster agreed n=%d m=%d"
                         peer.Remote.node peer.Remote.n peer.Remote.m n m)
              in
              Mutex.unlock t.m;
              (match verdict with Error _ -> Remote.close c | Ok _ -> ());
              verdict))

let attempt t ep line =
  match obtain_conn t ep with
  | Error _ as e -> e
  | Ok c -> (
      match Remote.request c ~timeout_s:t.cfg.rpc_timeout_s line with
      | Ok reply ->
          Remote.checkin t.pool ep c;
          Ok reply
      | Error _ as e ->
          (* A timed-out or reset connection may still have the reply in
             flight: never reuse it — the next request would read a stale
             line. *)
          Remote.close c;
          e)

(* Classify a worker's reply line. [`Good] replies are terminal;
   [`Retryable] ones (worker-side failure, rejection, split-brain
   [not_owner]) re-route to the next endpoint. *)
let classify reply =
  match Proto.json_bool reply "ok" with
  | Some true -> (
      match Proto.json_str reply "outcome" with
      | Some o
        when String.length o >= 9 && String.sub o 0 9 = "completed" ->
          `Good ("completed", reply)
      | Some o
        when String.length o >= 9 && String.sub o 0 9 = "truncated" ->
          `Good ("truncated", reply)
      | Some o -> `Retryable ("worker outcome: " ^ o)
      | None -> `Retryable "malformed shard reply (no outcome)")
  | Some false ->
      let e = Option.value (Proto.json_str reply "error") ~default:"error" in
      `Retryable ("worker refused: " ^ e)
  | None -> `Retryable "malformed shard reply"

type shard_result = {
  sr_shard : int;
  sr_ok : bool;
  sr_outcome : string;
      (** completed | truncated | failed | breaker_open | unreachable *)
  sr_matches : int;
  sr_rows : int array list;
  sr_endpoint : string;
  sr_attempts : int;
  sr_failover : bool;  (** served by a non-primary endpoint *)
  sr_hedged : bool;  (** a hedge request was launched *)
  sr_hedge_win : bool;  (** ...and the hedge answered first *)
  sr_detail : string;
}

let sr_fail shard outcome detail attempts =
  {
    sr_shard = shard;
    sr_ok = false;
    sr_outcome = outcome;
    sr_matches = 0;
    sr_rows = [];
    sr_endpoint = "";
    sr_attempts = attempts;
    sr_failover = false;
    sr_hedged = false;
    sr_hedge_win = false;
    sr_detail = detail;
  }

(* Race one attempt against a hedge launched [after] seconds later on the
   next endpoint: first good reply wins, the loser's thread drains on its
   own socket timeouts. Only used for the opening attempt — retries are
   already failure handling, hedging them again just multiplies load. *)
let hedged_attempt t ~after ep1 ep2 line =
  let m = Mutex.create () and cv = Condition.create () in
  let winner = ref None and pending = ref 1 and launched = ref false in
  let errors = ref [] in
  let fire ep =
    ignore
      (Thread.create
         (fun () ->
           let r = attempt t ep line in
           Mutex.lock m;
           (match r with
           | Ok reply -> (
               match classify reply with
               | `Good (kind, reply) ->
                   if !winner = None then winner := Some (ep, kind, reply)
               | `Retryable why -> errors := why :: !errors)
           | Error why -> errors := why :: !errors);
           decr pending;
           Condition.broadcast cv;
           Mutex.unlock m)
         ())
  in
  fire ep1;
  Mutex.lock m;
  let deadline = Unix.gettimeofday () +. t.cfg.rpc_timeout_s +. after +. 1.0 in
  let rec wait () =
    match !winner with
    | Some (ep, kind, reply) ->
        Mutex.unlock m;
        `Won (ep, kind, reply, !launched)
    | None ->
        if !pending = 0 then begin
          let errs = !errors in
          Mutex.unlock m;
          `Lost (errs, !launched)
        end
        else if Unix.gettimeofday () > deadline then begin
          Mutex.unlock m;
          `Lost ([ "hedge wait timeout" ], !launched)
        end
        else begin
          (* First wake-up doubles as the hedge trigger. *)
          Mutex.unlock m;
          Thread.delay (if !launched then 0.02 else after);
          Mutex.lock m;
          if (not !launched) && !winner = None && !pending > 0 then begin
            launched := true;
            incr pending;
            c_inc "gf_cluster_hedges_total" "Hedge requests launched for stragglers";
            fire ep2
          end;
          wait ()
        end
  in
  wait ()

(* ------------------------------------------------------------------ *)
(* One shard of one request                                            *)
(* ------------------------------------------------------------------ *)

let run_shard t ~line ~tbuf idx =
  let shard = t.topo.Topology.shards.(idx) in
  let primary = List.hd shard.Topology.endpoints in
  let brk = t.breakers.(idx) in
  (match tbuf with
  | Some b ->
      Trace.begin_span ~cat:"cluster"
        ~args:[ ("shard", Trace.Int idx) ]
        b
        (Printf.sprintf "shard-%d" idx)
  | None -> ());
  let finish sr =
    Breaker.record brk ~ok:sr.sr_ok;
    (match tbuf with
    | Some b ->
        Trace.end_span
          ~args:
            [ ("outcome", Trace.Str sr.sr_outcome);
              ("endpoint", Str sr.sr_endpoint);
              ("attempts", Int sr.sr_attempts);
            ]
          b
    | None -> ());
    c_inc "gf_cluster_shard_requests_total" "Shard RPCs issued (per shard, per request)";
    if sr.sr_ok && sr.sr_failover then begin
      Mutex.lock t.m;
      t.failovers <- t.failovers + 1;
      Mutex.unlock t.m;
      c_inc "gf_cluster_failovers_total" "Shard requests served by a non-primary endpoint"
    end;
    if not sr.sr_ok then
      c_inc "gf_cluster_incomplete_shards_total" "Shard requests that returned no result";
    sr
  in
  match Breaker.admit brk with
  | `Reject -> finish (sr_fail idx "breaker_open" "per-shard circuit breaker open" 0)
  | `Admit -> (
      (* Routing order: healthy endpoints first (primary-first within each
         class), but Down endpoints stay in the tail — health is advisory,
         and when everything looks dead we still try before giving up. *)
      let up, down =
        List.partition (fun ep -> Health.status t.health ep = Health.Up) shard.Topology.endpoints
      in
      let order = up @ down in
      let good ~ep ~kind ~reply ~attempts ~hedged ~hedge_win =
        {
          sr_shard = idx;
          sr_ok = true;
          sr_outcome = kind;
          sr_matches = Option.value (Proto.json_int reply "matches") ~default:0;
          sr_rows = Proto.json_rows reply;
          sr_endpoint = Topology.endpoint_to_string ep;
          sr_attempts = attempts;
          sr_failover = ep <> primary;
          sr_hedged = hedged;
          sr_hedge_win = hedge_win;
          sr_detail = "";
        }
      in
      let max_attempts = t.cfg.retries + 1 in
      let rec go attempts last_err = function
        | [] ->
            finish
              (sr_fail idx
                 (if attempts = 0 then "unreachable" else "failed")
                 last_err attempts)
        | _ when attempts >= max_attempts ->
            finish (sr_fail idx "failed" last_err attempts)
        | ep :: rest -> (
            if attempts > 0 then
              c_inc "gf_cluster_shard_retries_total"
                "Shard attempts re-routed after a failure";
            match attempt t ep line with
            | Ok reply -> (
                match classify reply with
                | `Good (kind, reply) ->
                    finish
                      (good ~ep ~kind ~reply ~attempts:(attempts + 1) ~hedged:false
                         ~hedge_win:false)
                | `Retryable why -> go (attempts + 1) why rest)
            | Error why -> go (attempts + 1) why rest)
      in
      match (t.cfg.hedge_after_s, order) with
      | Some after, ep1 :: ep2 :: rest when not t.stopped -> (
          match hedged_attempt t ~after ep1 ep2 line with
          | `Won (ep, kind, reply, hedged) ->
              let hedge_win = hedged && ep == ep2 in
              if hedge_win then
                c_inc "gf_cluster_hedge_wins_total" "Hedge requests that answered first";
              finish
                (good ~ep ~kind ~reply ~attempts:(if hedged then 2 else 1) ~hedged
                   ~hedge_win)
          | `Lost (errs, hedged) ->
              (* If the primary failed before the hedge timer fired, ep2 was
                 never contacted — it must stay in the retry order or a
                 fast-failing primary would skip its own replica. *)
              let attempts = if hedged then 2 else 1 in
              let last_err = match errs with e :: _ -> e | [] -> "unreachable" in
              go attempts last_err (if hedged then rest else ep2 :: rest))
      | _ -> go 0 "unreachable" order)

(* ------------------------------------------------------------------ *)
(* A whole client request: fan out, gather, aggregate honestly         *)
(* ------------------------------------------------------------------ *)

type result = {
  r_id : int;
  r_outcome : string;  (** completed | truncated | partial | failed *)
  r_matches : int;
  r_incomplete : int list;
  r_failovers : int;
  r_hedges : int;
  r_retries : int;
  r_rows : int array list;
  r_exec_s : float;
  r_shards : shard_result array;
}

let run t ~text (req : Service.request) =
  let k = Topology.num_shards t.topo in
  let id =
    Mutex.lock t.m;
    t.next_id <- t.next_id + 1;
    t.requests <- t.requests + 1;
    let id = t.next_id in
    Mutex.unlock t.m;
    id
  in
  c_inc "gf_cluster_requests_total" "Client requests fanned out by the coordinator";
  let trace =
    if req.Service.trace then Some (Trace.create ~capacity:8192 ()) else None
  in
  let line i =
    Proto.shard_req ~part:(i, k) ?timeout_ms:req.Service.timeout_ms
      ?max_rows:req.Service.max_rows ~rows:req.Service.collect_rows text
  in
  (* The byte cap rides the same governor machinery queries use: every
     shard reply's bytes are charged as materialized state, and a trip
     turns the aggregate into an honest [truncated]. *)
  let gov =
    Governor.create
      (Gf.Governor.budget ?max_bytes:t.cfg.max_result_bytes ())
  in
  let gov_h = Governor.handle gov in
  let t0 = Unix.gettimeofday () in
  let results = Array.make k None in
  let times = Array.make k 0.0 in
  let threads =
    List.init k (fun i ->
        Thread.create
          (fun () ->
            let tbuf =
              Option.map (fun tr -> Trace.buffer ~name:(Printf.sprintf "shard-%d" i) tr ~tid:(10 + i)) trace
            in
            let s0 = Unix.gettimeofday () in
            let sr = run_shard t ~line:(line i) ~tbuf i in
            times.(i) <- Unix.gettimeofday () -. s0;
            Governor.add_bytes gov_h
              (List.fold_left (fun a r -> a + (8 * Array.length r)) 0 sr.sr_rows
              + 64 + String.length sr.sr_detail);
            (match tbuf with Some b -> Trace.close_all b | None -> ());
            results.(i) <- Some sr)
          ())
  in
  List.iter Thread.join threads;
  let exec_s = Unix.gettimeofday () -. t0 in
  let srs =
    Array.mapi
      (fun i r ->
        match r with
        | Some sr -> sr
        | None -> sr_fail i "failed" "shard thread died" 0)
      results
  in
  let incomplete =
    Array.to_list srs |> List.filter (fun s -> not s.sr_ok) |> List.map (fun s -> s.sr_shard)
  in
  let bytes_tripped = Governor.tripped gov in
  let matches = Array.fold_left (fun a s -> a + s.sr_matches) 0 srs in
  let any_truncated =
    bytes_tripped || Array.exists (fun s -> s.sr_ok && s.sr_outcome = "truncated") srs
  in
  let outcome =
    if List.length incomplete = k then "failed"
    else if incomplete <> [] then "partial"
    else if any_truncated then "truncated"
    else "completed"
  in
  let rows =
    (* Stream order is shard order; under a tripped byte cap rows are
       dropped wholesale rather than silently truncated mid-shard. *)
    if bytes_tripped then []
    else Array.to_list srs |> List.concat_map (fun s -> s.sr_rows)
  in
  let failovers = Array.fold_left (fun a s -> a + Bool.to_int (s.sr_ok && s.sr_failover)) 0 srs in
  let hedges = Array.fold_left (fun a s -> a + Bool.to_int s.sr_hedged) 0 srs in
  let retries = Array.fold_left (fun a s -> a + (max 0 (s.sr_attempts - 1))) 0 srs in
  Mutex.lock t.m;
  t.hedges <- t.hedges + hedges;
  Mutex.unlock t.m;
  if outcome = "partial" then
    c_inc "gf_cluster_partial_results_total"
      "Client replies degraded to partial (incomplete_shards marked)";
  let top_ops =
    Array.to_list srs
    |> List.map (fun s ->
           (Printf.sprintf "shard-%d[%s]" s.sr_shard s.sr_outcome, times.(s.sr_shard)))
  in
  ignore
    (Gf.Recorder.record t.recorder ~query:text ~plan:"cluster" ~outcome ~latency_s:exec_s
       ~queue_s:0.0 ~rung:"cluster" ~attempts:(retries + k) ~retries ~top_ops
       ~traced:(trace <> None)
       ?trace_json:(Option.map Trace.to_chrome_json trace)
       ()
      : int);
  {
    r_id = id;
    r_outcome = outcome;
    r_matches = matches;
    r_incomplete = incomplete;
    r_failovers = failovers;
    r_hedges = hedges;
    r_retries = retries;
    r_rows = rows;
    r_exec_s = exec_s;
    r_shards = srs;
  }

let to_reply r =
  Proto.run_resp ~id:r.r_id ~outcome:r.r_outcome ~matches:r.r_matches
    ~shards:(Array.length r.r_shards) ~incomplete:r.r_incomplete ~failovers:r.r_failovers
    ~hedges:r.r_hedges ~retries:r.r_retries ~exec_s:r.r_exec_s ~rows:r.r_rows

(* ------------------------------------------------------------------ *)
(* Stats + server hook                                                 *)
(* ------------------------------------------------------------------ *)

let stats_json t =
  Mutex.lock t.m;
  let requests = t.requests and failovers = t.failovers and hedges = t.hedges in
  Mutex.unlock t.m;
  let breakers =
    Array.to_list t.breakers
    |> List.map (fun b -> "\"" ^ Breaker.state_to_string (Breaker.state b) ^ "\"")
    |> String.concat ","
  in
  let health =
    Health.snapshot t.health
    |> List.map (fun (ep, st) ->
           Printf.sprintf "{\"endpoint\":\"%s\",\"status\":\"%s\"}"
             (Gf.Explain.json_escape ep)
             (Health.status_to_string st))
    |> String.concat ","
  in
  Printf.sprintf
    "{\"ok\":true,\"type\":\"cluster_stats\",\"node\":\"%s\",\"shards\":%d,\"requests\":%d,\"failovers\":%d,\"hedges\":%d,\"breakers\":[%s],\"health\":[%s]}"
    (Gf.Explain.json_escape t.cfg.node)
    (Topology.num_shards t.topo) requests failovers hedges breakers health

let hook t line : [ `Reply of string | `Close | `Pass ] =
  let trimmed = String.trim line in
  match Wire.parse_request trimmed with
  | Ok (Wire.Run req) ->
      let text = if req.Service.text = "" then trimmed else req.Service.text in
      `Reply (to_reply (run t ~text req))
  | Ok Wire.Stats -> `Reply (stats_json t)
  | Ok (Wire.Slowlog n) -> `Reply (Wire.slowlog_resp (Gf.Recorder.recent t.recorder n))
  | Ok (Wire.Trace_of id) -> (
      match Gf.Recorder.find_trace t.recorder id with
      | Some json -> `Reply (Wire.trace_resp ~id json)
      | None -> `Reply (Wire.trace_not_found id))
  | Ok (Wire.Mutate _) ->
      `Reply
        (Wire.error_resp ~kind:"read_only"
           ~detail:
             "cluster coordinator is read-only: apply mutations on the shard owner's store")
  | Ok _ | Error _ -> `Pass
