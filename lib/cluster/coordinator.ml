module Gf = Graphflow
module Metrics = Gf_exec.Metrics
module Breaker = Gf_server.Breaker
module Service = Gf_server.Service
module Wire = Gf_server.Wire
module Trace = Gf.Trace
module Governor = Gf.Governor

type config = {
  node : string;
  connect_timeout_s : float;
  rpc_timeout_s : float;
  retries : int;  (** extra attempts per shard beyond the first *)
  hedge_after_s : float option;  (** straggler hedging; [None] = off *)
  max_result_bytes : int option;  (** byte cap across streamed partials *)
  breaker : Breaker.config;
  probe_interval_s : float;
  probe_timeout_s : float;
  slowlog_capacity : int;
  slow_s : float;  (** slow-pin threshold for distributed queries *)
  stats_interval_s : float;  (** worker stats pull period; <= 0 = on demand only *)
}

let default_config =
  {
    node = "coordinator";
    connect_timeout_s = 1.0;
    rpc_timeout_s = 10.0;
    retries = 2;
    hedge_after_s = Some 0.25;
    max_result_bytes = Some (64 * 1024 * 1024);
    breaker = Breaker.default_config;
    probe_interval_s = 1.0;
    probe_timeout_s = 0.5;
    slowlog_capacity = 256;
    slow_s = 0.25;
    stats_interval_s = 2.0;
  }

type t = {
  cfg : config;
  topo : Topology.t;
  pool : Remote.pool;
  breakers : Breaker.t array;  (** one per shard: a bad shard opens alone *)
  health : Health.t;
  recorder : Gf.Recorder.t;
  m : Mutex.t;
  skews : (string, int) Hashtbl.t;
      (** per-endpoint clock skew (peer − local, µs) from the last handshake *)
  mutable fingerprint : (int * int) option;  (** (n, m) agreed by the cluster *)
  mutable next_id : int;
  mutable requests : int;
  mutable failovers : int;
  mutable hedges : int;
  mutable hedge_wins : int;
  mutable fleet : (string * (string, string) result) list;
      (** last pulled worker [stats] reply (or error) per endpoint *)
  mutable fleet_thread : Thread.t option;
  mutable stopped : bool;
}

let c_inc ?(by = 1) name help = Metrics.inc ~by (Metrics.counter ~help name)

let fleet_endpoints t =
  Array.to_list t.topo.Topology.shards
  |> List.concat_map (fun s -> s.Topology.endpoints)
  |> List.sort_uniq (fun a b ->
         compare (Topology.endpoint_to_string a) (Topology.endpoint_to_string b))

(* One-shot [stats] pull from every distinct endpoint. Uses fresh
   connections rather than the RPC pool: a wedged worker must cost one
   probe timeout, never poison a pooled query connection. *)
let fleet_pull t =
  fleet_endpoints t
  |> List.map (fun ep ->
         let key = Topology.endpoint_to_string ep in
         match Remote.connect ~timeout_s:t.cfg.probe_timeout_s ep with
         | Error e -> (key, Error e)
         | Ok c ->
             let r = Remote.request c ~timeout_s:t.cfg.probe_timeout_s "stats" in
             Remote.close c;
             (key, r))

let fleet_refresh t =
  let entries = fleet_pull t in
  Mutex.lock t.m;
  t.fleet <- entries;
  Mutex.unlock t.m

let fleet_loop t =
  while not t.stopped do
    fleet_refresh t;
    (* Sleep in short slices so [stop] is honoured promptly. *)
    let slices = int_of_float (Float.max 1. (t.cfg.stats_interval_s /. 0.05)) in
    let rec nap i = if i > 0 && not t.stopped then (Thread.delay 0.05; nap (i - 1)) in
    nap slices
  done

let create ?(config = default_config) topo =
  let endpoints =
    Array.to_list topo.Topology.shards
    |> List.concat_map (fun s -> s.Topology.endpoints)
  in
  let t =
    {
      cfg = config;
      topo;
      pool = Remote.pool_create ();
      breakers =
        Array.init (Topology.num_shards topo) (fun _ -> Breaker.create config.breaker);
      health =
        Health.create ~probe_interval_s:config.probe_interval_s
          ~probe_timeout_s:config.probe_timeout_s ~node:config.node endpoints;
      recorder = Gf.Recorder.create ~capacity:config.slowlog_capacity ~slow_s:config.slow_s ();
      m = Mutex.create ();
      skews = Hashtbl.create 8;
      fingerprint = None;
      next_id = 0;
      requests = 0;
      failovers = 0;
      hedges = 0;
      hedge_wins = 0;
      fleet = [];
      fleet_thread = None;
      stopped = false;
    }
  in
  if config.stats_interval_s > 0.0 then
    t.fleet_thread <- Some (Thread.create fleet_loop t);
  t

let stop t =
  t.stopped <- true;
  Health.stop t.health;
  (match t.fleet_thread with
  | Some th ->
      t.fleet_thread <- None;
      Thread.join th
  | None -> ());
  Remote.pool_close t.pool

let skew_of t ep_str =
  Mutex.lock t.m;
  let s = Option.value (Hashtbl.find_opt t.skews ep_str) ~default:0 in
  Mutex.unlock t.m;
  s

(* ------------------------------------------------------------------ *)
(* One RPC attempt against one endpoint                                *)
(* ------------------------------------------------------------------ *)

(* Dial (or reuse) a handshaken connection. The first successful hello
   fixes the cluster's graph fingerprint; any endpoint disagreeing on
   (n, m) is refused — identical graphs are what make per-worker plans
   identical, and a mismatched worker would silently corrupt the union. *)
let obtain_conn t ep =
  match Remote.checkout t.pool ep with
  | Some c -> Ok c
  | None -> (
      match Remote.connect ~timeout_s:t.cfg.connect_timeout_s ep with
      | Error _ as e -> e
      | Ok c -> (
          match
            Remote.handshake c ~timeout_s:t.cfg.connect_timeout_s ~node:t.cfg.node
              ~role:"coordinator"
          with
          | Error m ->
              Remote.close c;
              Error m
          | Ok peer ->
              Mutex.lock t.m;
              (* Latest handshake wins: skew drifts, each reconnect
                 re-measures it. *)
              Hashtbl.replace t.skews (Topology.endpoint_to_string ep) peer.Remote.skew_us;
              let verdict =
                match t.fingerprint with
                | None ->
                    t.fingerprint <- Some (peer.Remote.n, peer.Remote.m);
                    Ok c
                | Some (n, m) when n = peer.Remote.n && m = peer.Remote.m -> Ok c
                | Some (n, m) ->
                    Error
                      (Printf.sprintf
                         "fingerprint_mismatch: %s serves n=%d m=%d, cluster agreed n=%d m=%d"
                         peer.Remote.node peer.Remote.n peer.Remote.m n m)
              in
              Mutex.unlock t.m;
              (match verdict with Error _ -> Remote.close c | Ok _ -> ());
              verdict))

let attempt t ep line =
  match obtain_conn t ep with
  | Error _ as e -> e
  | Ok c -> (
      match Remote.request c ~timeout_s:t.cfg.rpc_timeout_s line with
      | Ok reply ->
          Remote.checkin t.pool ep c;
          Ok reply
      | Error _ as e ->
          (* A timed-out or reset connection may still have the reply in
             flight: never reuse it — the next request would read a stale
             line. *)
          Remote.close c;
          e)

(* Classify a worker's reply line. [`Good] replies are terminal;
   [`Retryable] ones (worker-side failure, rejection, split-brain
   [not_owner]) re-route to the next endpoint. *)
let classify reply =
  match Proto.json_bool reply "ok" with
  | Some true -> (
      match Proto.json_str reply "outcome" with
      | Some o
        when String.length o >= 9 && String.sub o 0 9 = "completed" ->
          `Good ("completed", reply)
      | Some o
        when String.length o >= 9 && String.sub o 0 9 = "truncated" ->
          `Good ("truncated", reply)
      | Some o -> `Retryable ("worker outcome: " ^ o)
      | None -> `Retryable "malformed shard reply (no outcome)")
  | Some false ->
      let e = Option.value (Proto.json_str reply "error") ~default:"error" in
      `Retryable ("worker refused: " ^ e)
  | None -> `Retryable "malformed shard reply"

type shard_result = {
  sr_shard : int;
  sr_ok : bool;
  sr_outcome : string;
      (** completed | truncated | failed | breaker_open | unreachable *)
  sr_matches : int;
  sr_rows : int array list;
  sr_endpoint : string;
  sr_attempts : int;
  sr_failover : bool;  (** served by a non-primary endpoint *)
  sr_hedged : bool;  (** a hedge request was launched *)
  sr_hedge_win : bool;  (** ...and the hedge answered first *)
  sr_detail : string;
}

let sr_fail shard outcome detail attempts =
  {
    sr_shard = shard;
    sr_ok = false;
    sr_outcome = outcome;
    sr_matches = 0;
    sr_rows = [];
    sr_endpoint = "";
    sr_attempts = attempts;
    sr_failover = false;
    sr_hedged = false;
    sr_hedge_win = false;
    sr_detail = detail;
  }

(* Race one attempt against a hedge launched [after] seconds later on the
   next endpoint: first good reply wins, the loser's thread drains on its
   own socket timeouts. Only used for the opening attempt — retries are
   already failure handling, hedging them again just multiplies load.
   [on_reply] sees every reply line that arrived (winner or not, good or
   failed) — the trace stitcher wants the losing replica's spans too. *)
let hedged_attempt t ~after ?(on_reply = fun _ _ -> ()) ep1 ep2 line =
  let m = Mutex.create () and cv = Condition.create () in
  let winner = ref None and pending = ref 1 and launched = ref false in
  let errors = ref [] in
  let fire ep =
    ignore
      (Thread.create
         (fun () ->
           let r = attempt t ep line in
           (match r with Ok reply -> on_reply ep reply | Error _ -> ());
           Mutex.lock m;
           (match r with
           | Ok reply -> (
               match classify reply with
               | `Good (kind, reply) ->
                   if !winner = None then winner := Some (ep, kind, reply)
               | `Retryable why -> errors := why :: !errors)
           | Error why -> errors := why :: !errors);
           decr pending;
           Condition.broadcast cv;
           Mutex.unlock m)
         ())
  in
  fire ep1;
  Mutex.lock m;
  let deadline = Unix.gettimeofday () +. t.cfg.rpc_timeout_s +. after +. 1.0 in
  let rec wait () =
    match !winner with
    | Some (ep, kind, reply) ->
        Mutex.unlock m;
        `Won (ep, kind, reply, !launched)
    | None ->
        if !pending = 0 then begin
          let errs = !errors in
          Mutex.unlock m;
          `Lost (errs, !launched)
        end
        else if Unix.gettimeofday () > deadline then begin
          Mutex.unlock m;
          `Lost ([ "hedge wait timeout" ], !launched)
        end
        else begin
          (* First wake-up doubles as the hedge trigger. *)
          Mutex.unlock m;
          Thread.delay (if !launched then 0.02 else after);
          Mutex.lock m;
          if (not !launched) && !winner = None && !pending > 0 then begin
            launched := true;
            incr pending;
            c_inc "gf_cluster_hedges_total" "Hedge requests launched for stragglers";
            fire ep2
          end;
          wait ()
        end
  in
  wait ()

(* ------------------------------------------------------------------ *)
(* One shard of one request                                            *)
(* ------------------------------------------------------------------ *)

let run_shard t ~line ~tbuf ?(on_reply = fun _ _ -> ()) idx =
  let shard = t.topo.Topology.shards.(idx) in
  let primary = List.hd shard.Topology.endpoints in
  let brk = t.breakers.(idx) in
  (match tbuf with
  | Some b ->
      Trace.begin_span ~cat:"cluster"
        ~args:[ ("shard", Trace.Int idx) ]
        b
        (Printf.sprintf "shard-%d" idx)
  | None -> ());
  let finish sr =
    Breaker.record brk ~ok:sr.sr_ok;
    (match tbuf with
    | Some b ->
        Trace.end_span
          ~args:
            [ ("outcome", Trace.Str sr.sr_outcome);
              ("endpoint", Str sr.sr_endpoint);
              ("attempts", Int sr.sr_attempts);
            ]
          b
    | None -> ());
    c_inc "gf_cluster_shard_requests_total" "Shard RPCs issued (per shard, per request)";
    if sr.sr_ok && sr.sr_failover then begin
      Mutex.lock t.m;
      t.failovers <- t.failovers + 1;
      Mutex.unlock t.m;
      c_inc "gf_cluster_failovers_total" "Shard requests served by a non-primary endpoint"
    end;
    if not sr.sr_ok then
      c_inc "gf_cluster_incomplete_shards_total" "Shard requests that returned no result";
    sr
  in
  match Breaker.admit brk with
  | `Reject -> finish (sr_fail idx "breaker_open" "per-shard circuit breaker open" 0)
  | `Admit -> (
      (* Routing order: healthy endpoints first (primary-first within each
         class), but Down endpoints stay in the tail — health is advisory,
         and when everything looks dead we still try before giving up. *)
      let up, down =
        List.partition (fun ep -> Health.status t.health ep = Health.Up) shard.Topology.endpoints
      in
      let order = up @ down in
      let good ~ep ~kind ~reply ~attempts ~hedged ~hedge_win =
        {
          sr_shard = idx;
          sr_ok = true;
          sr_outcome = kind;
          sr_matches = Option.value (Proto.json_int reply "matches") ~default:0;
          sr_rows = Proto.json_rows reply;
          sr_endpoint = Topology.endpoint_to_string ep;
          sr_attempts = attempts;
          sr_failover = ep <> primary;
          sr_hedged = hedged;
          sr_hedge_win = hedge_win;
          sr_detail = "";
        }
      in
      let max_attempts = t.cfg.retries + 1 in
      (* Each synchronous attempt gets its own span on the shard track —
         failed attempts stay visible in the stitched trace next to the
         replica that eventually answered. *)
      let traced_attempt ep =
        (match tbuf with
        | Some b ->
            Trace.begin_span ~cat:"cluster"
              ~args:[ ("endpoint", Trace.Str (Topology.endpoint_to_string ep)) ]
              b "attempt"
        | None -> ());
        let r = attempt t ep line in
        (match r with Ok reply -> on_reply ep reply | Error _ -> ());
        (match tbuf with
        | Some b ->
            let verdict =
              match r with
              | Ok reply -> (
                  match classify reply with
                  | `Good (kind, _) -> kind
                  | `Retryable why -> "retryable: " ^ why)
              | Error why -> "error: " ^ why
            in
            Trace.end_span ~args:[ ("result", Trace.Str verdict) ] b
        | None -> ());
        r
      in
      let rec go attempts last_err = function
        | [] ->
            finish
              (sr_fail idx
                 (if attempts = 0 then "unreachable" else "failed")
                 last_err attempts)
        | _ when attempts >= max_attempts ->
            finish (sr_fail idx "failed" last_err attempts)
        | ep :: rest -> (
            if attempts > 0 then
              c_inc "gf_cluster_shard_retries_total"
                "Shard attempts re-routed after a failure";
            match traced_attempt ep with
            | Ok reply -> (
                match classify reply with
                | `Good (kind, reply) ->
                    finish
                      (good ~ep ~kind ~reply ~attempts:(attempts + 1) ~hedged:false
                         ~hedge_win:false)
                | `Retryable why -> go (attempts + 1) why rest)
            | Error why -> go (attempts + 1) why rest)
      in
      match (t.cfg.hedge_after_s, order) with
      | Some after, ep1 :: ep2 :: rest when not t.stopped -> (
          (match tbuf with
          | Some b ->
              Trace.begin_span ~cat:"cluster"
                ~args:
                  [ ("primary", Trace.Str (Topology.endpoint_to_string ep1));
                    ("hedge", Str (Topology.endpoint_to_string ep2));
                  ]
                b "hedged-attempt"
          | None -> ());
          match hedged_attempt t ~after ~on_reply ep1 ep2 line with
          | `Won (ep, kind, reply, hedged) ->
              let hedge_win = hedged && ep == ep2 in
              if hedge_win then
                c_inc "gf_cluster_hedge_wins_total" "Hedge requests that answered first";
              (match tbuf with
              | Some b ->
                  Trace.end_span
                    ~args:
                      [ ("winner", Trace.Str (Topology.endpoint_to_string ep));
                        ("hedged", Str (string_of_bool hedged));
                        ("result", Str kind);
                      ]
                    b
              | None -> ());
              finish
                (good ~ep ~kind ~reply ~attempts:(if hedged then 2 else 1) ~hedged
                   ~hedge_win)
          | `Lost (errs, hedged) ->
              (* If the primary failed before the hedge timer fired, ep2 was
                 never contacted — it must stay in the retry order or a
                 fast-failing primary would skip its own replica. *)
              (match tbuf with
              | Some b ->
                  Trace.end_span
                    ~args:
                      [ ("result", Trace.Str ("lost: " ^ String.concat "; " errs));
                        ("hedged", Str (string_of_bool hedged));
                      ]
                    b
              | None -> ());
              let attempts = if hedged then 2 else 1 in
              let last_err = match errs with e :: _ -> e | [] -> "unreachable" in
              go attempts last_err (if hedged then rest else ep2 :: rest))
      | _ -> go 0 "unreachable" order)

(* ------------------------------------------------------------------ *)
(* A whole client request: fan out, gather, aggregate honestly         *)
(* ------------------------------------------------------------------ *)

type result = {
  r_id : int;
  r_outcome : string;  (** completed | truncated | partial | failed *)
  r_matches : int;
  r_incomplete : int list;
  r_failovers : int;
  r_hedges : int;
  r_retries : int;
  r_rows : int array list;
  r_exec_s : float;
  r_trace_id : int option;
      (** flight-recorder handle for the stitched trace (traced requests) *)
  r_shards : shard_result array;
}

let run t ~text (req : Service.request) =
  let k = Topology.num_shards t.topo in
  let id =
    Mutex.lock t.m;
    t.next_id <- t.next_id + 1;
    t.requests <- t.requests + 1;
    let id = t.next_id in
    Mutex.unlock t.m;
    id
  in
  c_inc "gf_cluster_requests_total" "Client requests fanned out by the coordinator";
  let trace =
    if req.Service.trace then Some (Trace.create ~capacity:8192 ()) else None
  in
  (* Trace context: the request id doubles as the propagated trace id; the
     per-shard parent span name tells the worker (and a human reading the
     wire) where its tree lands. *)
  let line i =
    let trace_ctx =
      Option.map (fun _ -> (id, Printf.sprintf "shard-%d" i)) trace
    in
    Proto.shard_req ~part:(i, k) ?timeout_ms:req.Service.timeout_ms
      ?max_rows:req.Service.max_rows ?trace_ctx ~rows:req.Service.collect_rows text
  in
  (* Every ok reply line that carried a span payload, from any attempt —
     winners, losers of hedges, and failed tries alike all end up in the
     stitched trace. *)
  let grafts_m = Mutex.create () in
  let grafts = ref [] in
  let on_reply ep reply =
    if trace <> None && Proto.json_int reply "pid" <> None then begin
      Mutex.lock grafts_m;
      grafts := (Topology.endpoint_to_string ep, reply) :: !grafts;
      Mutex.unlock grafts_m
    end
  in
  (* The byte cap rides the same governor machinery queries use: every
     shard reply's bytes are charged as materialized state, and a trip
     turns the aggregate into an honest [truncated]. *)
  let gov =
    Governor.create
      (Gf.Governor.budget ?max_bytes:t.cfg.max_result_bytes ())
  in
  let gov_h = Governor.handle gov in
  let t0 = Unix.gettimeofday () in
  let results = Array.make k None in
  let times = Array.make k 0.0 in
  let threads =
    List.init k (fun i ->
        Thread.create
          (fun () ->
            let tbuf =
              Option.map (fun tr -> Trace.buffer ~name:(Printf.sprintf "shard-%d" i) tr ~tid:(10 + i)) trace
            in
            let s0 = Unix.gettimeofday () in
            let sr = run_shard t ~line:(line i) ~tbuf ~on_reply i in
            times.(i) <- Unix.gettimeofday () -. s0;
            Metrics.observe
              (Metrics.histogram ~help:"Per-shard RPC seconds (all attempts)"
                 ~labels:[ ("shard", string_of_int i) ]
                 "gf_cluster_shard_seconds")
              times.(i);
            Governor.add_bytes gov_h
              (List.fold_left (fun a r -> a + (8 * Array.length r)) 0 sr.sr_rows
              + 64 + String.length sr.sr_detail);
            (match tbuf with Some b -> Trace.close_all b | None -> ());
            results.(i) <- Some sr)
          ())
  in
  List.iter Thread.join threads;
  let exec_s = Unix.gettimeofday () -. t0 in
  let srs =
    Array.mapi
      (fun i r ->
        match r with
        | Some sr -> sr
        | None -> sr_fail i "failed" "shard thread died" 0)
      results
  in
  let incomplete =
    Array.to_list srs |> List.filter (fun s -> not s.sr_ok) |> List.map (fun s -> s.sr_shard)
  in
  let bytes_tripped = Governor.tripped gov in
  let matches = Array.fold_left (fun a s -> a + s.sr_matches) 0 srs in
  let any_truncated =
    bytes_tripped || Array.exists (fun s -> s.sr_ok && s.sr_outcome = "truncated") srs
  in
  let outcome =
    if List.length incomplete = k then "failed"
    else if incomplete <> [] then "partial"
    else if any_truncated then "truncated"
    else "completed"
  in
  let rows =
    (* Stream order is shard order; under a tripped byte cap rows are
       dropped wholesale rather than silently truncated mid-shard. *)
    if bytes_tripped then []
    else Array.to_list srs |> List.concat_map (fun s -> s.sr_rows)
  in
  let failovers = Array.fold_left (fun a s -> a + Bool.to_int (s.sr_ok && s.sr_failover)) 0 srs in
  let hedges = Array.fold_left (fun a s -> a + Bool.to_int s.sr_hedged) 0 srs in
  let hedge_wins = Array.fold_left (fun a s -> a + Bool.to_int s.sr_hedge_win) 0 srs in
  let retries = Array.fold_left (fun a s -> a + (max 0 (s.sr_attempts - 1))) 0 srs in
  Mutex.lock t.m;
  t.hedges <- t.hedges + hedges;
  t.hedge_wins <- t.hedge_wins + hedge_wins;
  Mutex.unlock t.m;
  Metrics.observe
    (Metrics.histogram ~help:"End-to-end coordinator request seconds"
       "gf_cluster_request_seconds")
    exec_s;
  if outcome = "partial" then
    c_inc "gf_cluster_partial_results_total"
      "Client replies degraded to partial (incomplete_shards marked)";
  (* Stitch the worker span trees in BEFORE the flight recorder snapshots
     the trace: a slow distributed query pins the full cross-process
     picture, not just the coordinator's side. *)
  (match trace with
  | None -> ()
  | Some tr ->
      Mutex.lock grafts_m;
      let collected = !grafts in
      Mutex.unlock grafts_m;
      List.iter
        (fun (ep_str, reply) ->
          match (Proto.json_int reply "pid", Proto.json_str reply "spans") with
          | Some pid, Some spans ->
              let node = Option.value (Proto.json_str reply "node") ~default:"worker" in
              Trace.graft tr ~pid
                ~pname:(Printf.sprintf "%s (%s)" node ep_str)
                ~skew_us:(skew_of t ep_str) spans
          | _ -> ())
        (List.rev collected));
  let top_ops =
    Array.to_list srs
    |> List.map (fun s ->
           (Printf.sprintf "shard-%d[%s]" s.sr_shard s.sr_outcome, times.(s.sr_shard)))
  in
  let record_id =
    Gf.Recorder.record t.recorder ~query:text ~plan:"cluster" ~outcome ~latency_s:exec_s
      ~queue_s:0.0 ~rung:"cluster" ~attempts:(retries + k) ~retries ~top_ops
      ~traced:(trace <> None)
      ?trace_json:(Option.map Trace.to_chrome_json trace)
      ()
  in
  {
    r_id = id;
    r_outcome = outcome;
    r_matches = matches;
    r_incomplete = incomplete;
    r_failovers = failovers;
    r_hedges = hedges;
    r_retries = retries;
    r_rows = rows;
    r_exec_s = exec_s;
    r_trace_id = (match trace with Some _ -> Some record_id | None -> None);
    r_shards = srs;
  }

let recorder t = t.recorder

let to_reply r =
  Proto.run_resp ~id:r.r_id ~outcome:r.r_outcome ~matches:r.r_matches
    ~shards:(Array.length r.r_shards) ~incomplete:r.r_incomplete ~failovers:r.r_failovers
    ~hedges:r.r_hedges ~retries:r.r_retries ~exec_s:r.r_exec_s ?trace_id:r.r_trace_id
    ~rows:r.r_rows ()

(* ------------------------------------------------------------------ *)
(* Stats + server hook                                                 *)
(* ------------------------------------------------------------------ *)

(* A histogram quantile in milliseconds, JSON-safe: an empty histogram
   reports 0 rather than NaN (which would corrupt the JSON line). *)
let q_ms h p =
  let v = Metrics.quantile h p *. 1e3 in
  if Float.is_nan v then 0.0 else v

let stats_json t =
  Mutex.lock t.m;
  let requests = t.requests
  and failovers = t.failovers
  and hedges = t.hedges
  and hedge_wins = t.hedge_wins
  and fleet = t.fleet in
  Mutex.unlock t.m;
  (* Cold cache (first scrape before the puller's first pass): pull
     synchronously so `gfq top` never renders an empty fleet. *)
  let fleet =
    if fleet = [] && not t.stopped then begin
      fleet_refresh t;
      Mutex.lock t.m;
      let f = t.fleet in
      Mutex.unlock t.m;
      f
    end
    else fleet
  in
  let breakers =
    Array.to_list t.breakers
    |> List.map (fun b -> "\"" ^ Breaker.state_to_string (Breaker.state b) ^ "\"")
    |> String.concat ","
  in
  let health =
    Health.snapshot t.health
    |> List.map (fun (ep, st) ->
           Printf.sprintf "{\"endpoint\":\"%s\",\"status\":\"%s\"}"
             (Gf.Explain.json_escape ep)
             (Health.status_to_string st))
    |> String.concat ","
  in
  let req_h = Metrics.histogram "gf_cluster_request_seconds" in
  let shard_latency =
    List.init (Topology.num_shards t.topo) (fun i ->
        let h =
          Metrics.histogram ~labels:[ ("shard", string_of_int i) ] "gf_cluster_shard_seconds"
        in
        Printf.sprintf
          "{\"shard\":%d,\"count\":%d,\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f}" i
          (Metrics.histogram_count h) (q_ms h 0.50) (q_ms h 0.95) (q_ms h 0.99))
    |> String.concat ","
  in
  let fleet_json =
    fleet
    |> List.map (fun (ep, r) ->
           match r with
           | Ok stats when String.length stats > 0 && stats.[0] = '{' ->
               Printf.sprintf "{\"endpoint\":\"%s\",\"stats\":%s}"
                 (Gf.Explain.json_escape ep) stats
           | Ok garbage ->
               Printf.sprintf "{\"endpoint\":\"%s\",\"error\":\"%s\"}"
                 (Gf.Explain.json_escape ep)
                 (Gf.Explain.json_escape ("malformed stats: " ^ garbage))
           | Error e ->
               Printf.sprintf "{\"endpoint\":\"%s\",\"error\":\"%s\"}"
                 (Gf.Explain.json_escape ep) (Gf.Explain.json_escape e))
    |> String.concat ","
  in
  Printf.sprintf
    "{\"ok\":true,\"type\":\"cluster_stats\",\"node\":\"%s\",\"shards\":%d,\"requests\":%d,\"failovers\":%d,\"hedges\":%d,\"hedge_wins\":%d,\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f,\"breakers\":[%s],\"health\":[%s],\"shard_latency\":[%s],\"fleet\":[%s]}"
    (Gf.Explain.json_escape t.cfg.node)
    (Topology.num_shards t.topo) requests failovers hedges hedge_wins (q_ms req_h 0.50)
    (q_ms req_h 0.95) (q_ms req_h 0.99) breakers health shard_latency fleet_json

let hook t line : [ `Reply of string | `Close | `Pass ] =
  let trimmed = String.trim line in
  match Wire.parse_request trimmed with
  | Ok (Wire.Run req) ->
      let text = if req.Service.text = "" then trimmed else req.Service.text in
      `Reply (to_reply (run t ~text req))
  | Ok Wire.Stats -> `Reply (stats_json t)
  | Ok (Wire.Slowlog n) -> `Reply (Wire.slowlog_resp (Gf.Recorder.recent t.recorder n))
  | Ok (Wire.Trace_of id) -> (
      match Gf.Recorder.find_trace t.recorder id with
      | Some json -> `Reply (Wire.trace_resp ~id json)
      | None -> `Reply (Wire.trace_not_found id))
  | Ok (Wire.Mutate _) ->
      `Reply
        (Wire.error_resp ~kind:"read_only"
           ~detail:
             "cluster coordinator is read-only: apply mutations on the shard owner's store")
  | Ok _ | Error _ -> `Pass
