type point = Worker_kill | Conn_drop | Slow_worker | Split_refusal

let point_to_string = function
  | Worker_kill -> "worker-kill"
  | Conn_drop -> "conn-drop"
  | Slow_worker -> "slow-worker"
  | Split_refusal -> "split-refusal"

let point_of_string = function
  | "worker-kill" -> Some Worker_kill
  | "conn-drop" -> Some Conn_drop
  | "slow-worker" -> Some Slow_worker
  | "split-refusal" -> Some Split_refusal
  | _ -> None

(* armed = Some (point, hits-remaining): the fault fires on the nth hit of
   its point, once. A plain ref, same single-writer discipline as
   [Gf_wal.Fault] — soak children arm from the environment before serving
   anything. *)
let armed : (point * int ref) option ref = ref None

let arm p ~after = armed := Some (p, ref (max 1 after))
let disarm () = armed := None

(* GFQ_CLUSTER_FAULT="<point>[:<after>]", e.g. "worker-kill:3" kills the
   process on the 3rd shard request it sees. *)
let arm_from_env () =
  match Sys.getenv_opt "GFQ_CLUSTER_FAULT" with
  | None -> false
  | Some s -> (
      let s = String.trim s in
      let name, after =
        match String.index_opt s ':' with
        | None -> (s, 1)
        | Some i -> (
            ( String.sub s 0 i,
              match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
              | Some k -> k
              | None -> 1 ))
      in
      match point_of_string name with
      | None -> false
      | Some p ->
          arm p ~after;
          true)

(* [fire p] — should the armed fault trigger at this hit of [p]? Counts
   down and reports [true] exactly once. [Worker_kill] does not return:
   the process dies like a power cut (SIGKILL bypasses at_exit, channel
   buffers, every finaliser) — the exact failure the coordinator's
   failover path must absorb. *)
let fire p =
  match !armed with
  | Some (q, left) when q = p ->
      decr left;
      if !left <= 0 then begin
        disarm ();
        if p = Worker_kill then begin
          Unix.kill (Unix.getpid ()) Sys.sigkill;
          exit 137
        end;
        true
      end
      else false
  | _ -> false
