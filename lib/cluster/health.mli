(** Per-worker health probing with hysteresis. A background thread
    hello-probes every endpoint on an interval; an endpoint transitions
    Up→Down only after [down_after] consecutive failures and Down→Up only
    after [up_after] consecutive successes, so a single dropped probe (or
    a single lucky one) cannot flap routing. Endpoints start Up —
    optimistic, partition-tolerant: the coordinator would rather try a
    possibly-dead worker (bounded by RPC timeouts) than refuse a
    possibly-alive one.

    Health is advisory routing state, not a gate: when every endpoint of
    a shard is Down the coordinator still tries them all before declaring
    the shard incomplete. Transitions bump
    [gf_cluster_health_up_total] / [gf_cluster_health_down_total] /
    [gf_cluster_probe_failures_total]. *)

type status = Up | Down

val status_to_string : status -> string

type t

val create :
  ?probe_interval_s:float ->
  ?probe_timeout_s:float ->
  ?down_after:int ->
  ?up_after:int ->
  node:string ->
  Gf_server.Server.endpoint list ->
  t
(** Starts the probe thread (defaults: 1 s interval, 0.5 s timeout,
    down after 2, up after 2). Duplicate endpoints are probed once. *)

val status : t -> Gf_server.Server.endpoint -> status
val snapshot : t -> (string * status) list
val stop : t -> unit
