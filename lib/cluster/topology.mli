(** The coordinator's static view of the cluster: [k] shards, each owned
    by a primary worker with optional read replicas. Shard [i] of [k] is
    the i-th equal slice of every query's driving-scan source space —
    ownership is of a scan range, not of edges, so any worker holding the
    (full, snapshot-mapped) graph can serve any shard: replicas are free,
    and failover is just re-dispatching the part to the next endpoint.

    [workers.conf] format, one line per shard ('#' comments):
    {v
    shard 0 unix:/tmp/w0.sock unix:/tmp/w0b.sock   # primary, then replicas
    shard 1 tcp:10.0.0.2:7001
    v}
    Shard ids must be contiguous [0..k-1]. *)

type shard = { id : int; endpoints : Gf_server.Server.endpoint list  (** primary first *) }
type t = { shards : shard array }

val parse_endpoint : string -> (Gf_server.Server.endpoint, string) result
(** ["unix:/path"] or ["tcp:host:port"]. *)

val endpoint_to_string : Gf_server.Server.endpoint -> string

val parse : string -> (t, string) result
(** Parse workers.conf contents. *)

val load : string -> (t, string) result
(** Parse a workers.conf file. *)

val num_shards : t -> int
