(** Deterministic cross-process fault injection for the cluster, extending
    the crash-point discipline of {!Gf_wal.Fault} to distributed failure
    modes. Armed via {!arm} (tests, bench) or [GFQ_CLUSTER_FAULT] in the
    environment ([gfq soak --topology] arms its worker children this way),
    a fault fires exactly once, at the nth hit of its point:

    - [Worker_kill] — the worker SIGKILLs itself between morsel dispatch
      and reply (the coordinator sees a mid-request EOF);
    - [Conn_drop] — the worker drops the connection without replying;
    - [Slow_worker] — the worker stalls before executing (straggler;
      exercises hedging);
    - [Split_refusal] — the worker answers [not_owner] (split-brain:
      a node that no longer believes it owns the shard must refuse
      structurally, not answer with wrong data). *)

type point = Worker_kill | Conn_drop | Slow_worker | Split_refusal

val point_to_string : point -> string
val point_of_string : string -> point option

val arm : point -> after:int -> unit
(** Fire at the [after]-th hit (min 1) of the point. *)

val disarm : unit -> unit

val arm_from_env : unit -> bool
(** Arm from [GFQ_CLUSTER_FAULT="<point>[:<after>]"]; [true] if armed. *)

val fire : point -> bool
(** Called at each potential fault site. [true] exactly when the armed
    fault triggers here (and disarms); [Worker_kill] never returns. *)
