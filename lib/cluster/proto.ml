module Gf = Graphflow
module Wire = Gf_server.Wire
module Service = Gf_server.Service
module Ladder = Gf_server.Ladder

let version = 1

exception Bad of string

(* ------------------------------------------------------------------ *)
(* hello: version + node-id handshake                                  *)
(* ------------------------------------------------------------------ *)

let hello_req ~node ~role = Printf.sprintf "hello proto=%d node=%s role=%s" version node role

type hello = { p_proto : int; p_node : string; p_role : string }

let parse_hello line =
  let toks = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
  match toks with
  | "hello" :: opts ->
      let proto = ref (-1) and node = ref "?" and role = ref "?" in
      (try
         List.iter
           (fun tok ->
             match String.index_opt tok '=' with
             | None -> raise (Bad (Printf.sprintf "bad hello option %S" tok))
             | Some eq -> (
                 let k = String.sub tok 0 eq in
                 let v = String.sub tok (eq + 1) (String.length tok - eq - 1) in
                 match k with
                 | "proto" -> (
                     match int_of_string_opt v with
                     | Some p -> proto := p
                     | None -> raise (Bad (Printf.sprintf "bad proto %S" v)))
                 | "node" -> node := v
                 | "role" -> role := v
                 | _ -> raise (Bad (Printf.sprintf "unknown hello option %S" k))))
           opts;
         if !proto < 0 then Error "hello missing proto="
         else Ok { p_proto = !proto; p_node = !node; p_role = !role }
       with Bad m -> Error m)
  | _ -> Error "not a hello"

(* [clock_us] is the responder's wall clock at reply time: the caller
   brackets the exchange with its own clock reads and derives the
   peer-minus-local skew used to line up cross-process trace timestamps. *)
let hello_resp ~node ~n ~m ~graph_version ~clock_us =
  Printf.sprintf
    "{\"ok\":true,\"type\":\"hello\",\"proto\":%d,\"node\":\"%s\",\"n\":%d,\"m\":%d,\"graph_version\":%d,\"clock_us\":%d}"
    version
    (Gf.Explain.json_escape node)
    n m graph_version clock_us

let version_mismatch ~node ~theirs =
  Printf.sprintf
    "{\"ok\":false,\"error\":\"version_mismatch\",\"proto\":%d,\"theirs\":%d,\"node\":\"%s\",\"detail\":\"refusing mixed-version pair: speak proto %d\"}"
    version theirs
    (Gf.Explain.json_escape node)
    version

(* ------------------------------------------------------------------ *)
(* shard: a range-restricted run                                       *)
(* ------------------------------------------------------------------ *)

let shard_req ~part:(i, k) ?timeout_ms ?max_rows ?trace_ctx ~rows q =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "shard part=%d/%d" i k);
  (match timeout_ms with
  | Some t -> Buffer.add_string b (Printf.sprintf " timeout_ms=%d" t)
  | None -> ());
  (match max_rows with
  | Some r -> Buffer.add_string b (Printf.sprintf " max_rows=%d" r)
  | None -> ());
  (* Trace context propagation: the coordinator's trace id plus the name
     of the shard span the worker's tree will be grafted under. [parent]
     is a span name, single-token by construction (no spaces). *)
  (match trace_ctx with
  | Some (trace_id, parent) ->
      Buffer.add_string b (Printf.sprintf " trace_id=%d parent=%s" trace_id parent)
  | None -> ());
  if rows then Buffer.add_string b " rows";
  Buffer.add_string b (" q=" ^ q);
  Buffer.contents b

let parse_part v =
  match String.index_opt v '/' with
  | Some s -> (
      let i = int_of_string_opt (String.sub v 0 s)
      and k = int_of_string_opt (String.sub v (s + 1) (String.length v - s - 1)) in
      match (i, k) with
      | Some i, Some k when k > 0 && i >= 0 && i < k -> Ok (i, k)
      | _ -> Error (Printf.sprintf "bad part %S (want i/k with 0 <= i < k)" v))
  | None -> Error (Printf.sprintf "bad part %S (want i/k)" v)

(* Same option grammar as [run] (q= last, consuming the rest of the line)
   plus the mandatory part=i/k. *)
let parse_shard line =
  let prefix = "shard " in
  let plen = String.length prefix in
  if String.length line <= plen || String.sub line 0 plen <> prefix then Error "not a shard request"
  else begin
    let rest = String.sub line plen (String.length line - plen) in
    let len = String.length rest in
    let part = ref None
    and timeout = ref None
    and max_rows = ref None
    and trace = ref false
    and collect = ref false in
    let int_v k v =
      match int_of_string_opt v with
      | Some n when n >= 0 -> n
      | _ -> raise (Bad (Printf.sprintf "option %s needs a non-negative integer, got %S" k v))
    in
    try
      let rec go i =
        if i >= len then raise (Bad "missing q=<query>")
        else if rest.[i] = ' ' then go (i + 1)
        else if i + 2 <= len && String.sub rest i 2 = "q=" then
          String.sub rest (i + 2) (len - i - 2)
        else begin
          let j = match String.index_from_opt rest i ' ' with Some j -> j | None -> len in
          let tok = String.sub rest i (j - i) in
          (match String.index_opt tok '=' with
          | None -> (
              match tok with
              | "rows" -> collect := true
              | _ -> raise (Bad (Printf.sprintf "bad option %S (expected key=value)" tok)))
          | Some eq -> (
              let k = String.sub tok 0 eq in
              let v = String.sub tok (eq + 1) (String.length tok - eq - 1) in
              match k with
              | "part" -> (
                  match parse_part v with
                  | Ok p -> part := Some p
                  | Error e -> raise (Bad e))
              | "timeout_ms" -> timeout := Some (int_v k v)
              | "max_rows" -> max_rows := Some (int_v k v)
              | "trace_id" ->
                  ignore (int_v k v);
                  trace := true
              | "parent" -> () (* correlation only; echoed via [shard_trace_ctx] *)
              | _ -> raise (Bad (Printf.sprintf "unknown option %S" k))));
          go j
        end
      in
      let qtext = go 0 in
      match !part with
      | None -> Error "shard needs part=i/k"
      | Some part -> (
          match Wire.parse_query qtext with
          | Error e -> Error e
          | Ok query ->
              Ok
                {
                  (Service.request query) with
                  Service.text = qtext;
                  timeout_ms = !timeout;
                  max_rows = !max_rows;
                  part = Some part;
                  collect_rows = !collect;
                  trace = !trace;
                })
    with Bad m -> Error m
  end

(* The trace context of a shard request line, for echoing in the reply:
   (trace_id, parent span name). Tolerates any token order; [None] when
   the request carries no trace context. *)
let shard_trace_ctx line =
  (* Only the option region before " q=" — query text is free-form. *)
  let line =
    let len = String.length line in
    let rec find i =
      if i + 3 > len then line
      else if String.sub line i 3 = " q=" then String.sub line 0 i
      else find (i + 1)
    in
    find 0
  in
  let toks = String.split_on_char ' ' line in
  let id = ref None and parent = ref "shard" in
  List.iter
    (fun tok ->
      let pref p = String.length tok > String.length p && String.sub tok 0 (String.length p) = p in
      let v p = String.sub tok (String.length p) (String.length tok - String.length p) in
      if pref "trace_id=" then id := int_of_string_opt (v "trace_id=")
      else if pref "parent=" then parent := v "parent=")
    toks;
  Option.map (fun id -> (id, !parent)) !id

let rows_json rows =
  let row r = "[" ^ String.concat "," (Array.to_list (Array.map string_of_int r)) ^ "]" in
  "[" ^ String.concat "," (List.map row rows) ^ "]"

(* Worker-side observability payload attached to a traced shard reply:
   the span tree ([Trace.export_spans], already wire-safe — no quote,
   backslash or newline can appear), the producer's OS pid for the
   Chrome process track, and its clock at reply time as a skew
   cross-check. *)
type obs = {
  o_trace_id : int;
  o_parent : string;
  o_pid : int;
  o_clock_us : int;
  o_spans : string;
}

let shard_resp ~node ~part:(i, k) ?obs (reply : Service.reply) =
  let r = reply.Service.result in
  let base =
    Printf.sprintf
      "{\"ok\":true,\"type\":\"shard\",\"part\":\"%d/%d\",\"node\":\"%s\",\"outcome\":\"%s\",\"matches\":%d,\"attempts\":%d,\"rung\":\"%s\",\"exec_s\":%.6f,\"graph_version\":%d"
      i k
      (Gf.Explain.json_escape node)
      (Gf.Explain.json_escape (Gf.Governor.outcome_to_string r.Ladder.outcome))
      r.Ladder.counters.Gf.Counters.output r.Ladder.attempts
      (Gf.Explain.json_escape r.Ladder.rung)
      reply.Service.exec_s reply.Service.graph_version
  in
  let base =
    match obs with
    | None -> base
    | Some o ->
        base
        ^ Printf.sprintf
            ",\"trace_id\":%d,\"parent_span\":\"%s\",\"pid\":%d,\"clock_us\":%d,\"spans\":\"%s\""
            o.o_trace_id
            (Gf.Explain.json_escape o.o_parent)
            o.o_pid o.o_clock_us o.o_spans
  in
  if reply.Service.rows = [] then base ^ "}"
  else base ^ ",\"rows\":" ^ rows_json reply.Service.rows ^ "}"

let not_owner ~node ~part:(i, k) =
  Printf.sprintf
    "{\"ok\":false,\"error\":\"not_owner\",\"node\":\"%s\",\"part\":\"%d/%d\",\"detail\":\"split-brain refusal: this node does not own the shard\"}"
    (Gf.Explain.json_escape node)
    i k

(* ------------------------------------------------------------------ *)
(* Reply scraping: responses are single-line JSON we built ourselves   *)
(* (or a peer built with the same code), so targeted field extraction  *)
(* is enough — no JSON dependency.                                     *)
(* ------------------------------------------------------------------ *)

let find_field s key =
  let pat = "\"" ^ key ^ "\":" in
  let plen = String.length pat and slen = String.length s in
  let rec go i =
    if i + plen > slen then None
    else if String.sub s i plen = pat then Some (i + plen)
    else go (i + 1)
  in
  go 0

let json_int s key =
  match find_field s key with
  | None -> None
  | Some i ->
      let j = ref i in
      if !j < String.length s && s.[!j] = '-' then incr j;
      let start = !j in
      while !j < String.length s && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      if !j = start then None
      else int_of_string_opt (String.sub s i (!j - i))

let json_str s key =
  match find_field s key with
  | None -> None
  | Some i ->
      if i >= String.length s || s.[i] <> '"' then None
      else begin
        let b = Buffer.create 16 in
        let rec go j =
          if j >= String.length s then None
          else
            match s.[j] with
            | '"' -> Some (Buffer.contents b)
            | '\\' when j + 1 < String.length s ->
                Buffer.add_char b s.[j + 1];
                go (j + 2)
            | c ->
                Buffer.add_char b c;
                go (j + 1)
        in
        go (i + 1)
      end

let json_bool s key =
  match find_field s key with
  | None -> None
  | Some i ->
      if i + 4 <= String.length s && String.sub s i 4 = "true" then Some true
      else if i + 5 <= String.length s && String.sub s i 5 = "false" then Some false
      else None

(* "rows":[[1,2],[3,4]] — ints only, emitted by [rows_json]. *)
let json_rows s =
  match find_field s "rows" with
  | None -> []
  | Some i ->
      if i >= String.length s || s.[i] <> '[' then []
      else begin
        let rows = ref [] and cur = ref [] and num = Buffer.create 8 in
        let flush_num () =
          if Buffer.length num > 0 then begin
            (match int_of_string_opt (Buffer.contents num) with
            | Some v -> cur := v :: !cur
            | None -> ());
            Buffer.clear num
          end
        in
        (try
           for j = i + 1 to String.length s - 1 do
             match s.[j] with
             | '[' -> cur := []
             | ']' ->
                 flush_num ();
                 if !cur <> [] then rows := Array.of_list (List.rev !cur) :: !rows;
                 cur := [];
                 (* second ']' in a row closes the outer array *)
                 if j + 1 >= String.length s || s.[j + 1] <> ',' then raise Exit
             | ',' -> flush_num ()
             | ('0' .. '9' | '-') as c -> Buffer.add_char num c
             | _ -> raise Exit
           done
         with Exit -> ());
        List.rev !rows
      end

(* ------------------------------------------------------------------ *)
(* Coordinator client reply                                            *)
(* ------------------------------------------------------------------ *)

let run_resp ~id ~outcome ~matches ~shards ~incomplete ~failovers ~hedges ~retries ~exec_s
    ?trace_id ~rows () =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"ok\":true,\"id\":%d,\"outcome\":\"%s\",\"matches\":%d,\"shards\":%d,\"incomplete_shards\":[%s],\"failovers\":%d,\"hedges\":%d,\"retries\":%d,\"exec_s\":%.6f"
       id outcome matches shards
       (String.concat "," (List.map string_of_int incomplete))
       failovers hedges retries exec_s);
  (* [trace_id] is the coordinator's flight-recorder handle for the
     stitched trace: clients fetch it with [trace id=N]. *)
  (match trace_id with
  | Some tid -> Buffer.add_string b (Printf.sprintf ",\"traced\":true,\"trace_id\":%d" tid)
  | None -> ());
  if rows <> [] then Buffer.add_string b (",\"rows\":" ^ rows_json rows);
  Buffer.add_string b "}";
  Buffer.contents b
