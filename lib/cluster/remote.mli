(** The coordinator's client side of the wire: timeout-bounded connect,
    one-line request/response, the hello handshake, and a small
    per-endpoint connection pool.

    Every operation is bounded — connect by select, reads and writes by
    SO_RCVTIMEO/SO_SNDTIMEO plus a private line buffer over [Unix.read] —
    so a dead or wedged peer becomes a structured [Error] within the
    deadline. No cluster code path may block indefinitely on a socket:
    that is the difference between a worker loss degrading a result and
    hanging a client. *)

type conn

val connect : ?timeout_s:float -> Gf_server.Server.endpoint -> (conn, string) result
val close : conn -> unit
val send_line : conn -> timeout_s:float -> string -> (unit, string) result
val recv_line : conn -> timeout_s:float -> (string, string) result

val request : conn -> timeout_s:float -> string -> (string, string) result
(** One request line out, one response line back. *)

(** What the peer told us at [hello]: identity plus graph fingerprint —
    the coordinator refuses endpoints whose (n, m) disagree with the rest
    of the cluster, since identical graphs are what make per-worker plans
    identical and shard unions exact. [skew_us] is the peer-minus-local
    clock offset estimated NTP-style from the handshake round trip (0
    when the peer predates [clock_us]); the coordinator uses it to align
    grafted worker trace timestamps with its own clock. *)
type peer = { node : string; n : int; m : int; graph_version : int; skew_us : int }

val handshake : conn -> timeout_s:float -> node:string -> role:string -> (peer, string) result

(** Pool of idle, already-handshaked connections, keyed by endpoint.
    Errored connections must be {!close}d, never checked back in. *)
type pool

val pool_create : ?max_idle:int -> unit -> pool
val checkout : pool -> Gf_server.Server.endpoint -> conn option
val checkin : pool -> Gf_server.Server.endpoint -> conn -> unit
val pool_close : pool -> unit
