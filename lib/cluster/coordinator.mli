(** The coordinator role: fans a client [run] out as [k] shard requests
    (one per shard of the driving-scan source space), gathers the partial
    matches under a byte-capped governor, and aggregates them into one
    honestly-classified reply.

    The failure ladder, per shard:

    + admission through that shard's own {!Gf_server.Breaker} — one bad
      shard opens alone, healthy shards keep serving;
    + endpoints tried primary-first with {!Health}-aware ordering (Down
      endpoints demoted to the tail, still tried last — health is
      advisory, not a gate);
    + the opening attempt is hedged: after [hedge_after_s] without an
      answer a duplicate fires at the next endpoint and the first good
      reply wins (stragglers lose to replicas instead of stalling p99);
    + a timeout / connection reset / worker refusal re-routes to the next
      endpoint, up to [retries] extra attempts;
    + when no endpoint survives, the shard is declared incomplete — and
      the client reply says so in [incomplete_shards], with the aggregate
      outcome degraded to [partial] (or [failed] when nothing answered).

    A reply is [completed] only when every shard completed; any shard
    truncation or a coordinator byte-cap trip yields [truncated]. Matches
    are never silently undercounted: missing shards are always named.

    Observability: [gf_cluster_*] metrics (requests, shard requests,
    failovers, hedges and hedge wins, retries, incomplete shards,
    partials, request/per-shard latency histograms), per-shard spans in
    traced requests (tids 10+) with per-attempt sub-spans, and a flight
    recorder behind the standard [slowlog] / [trace id=N] wire commands.

    A traced request propagates its trace context to the workers
    ([trace_id=N parent=shard-i] on the shard line); each worker ships its
    serialized span tree back in the reply and the coordinator grafts the
    trees into one trace — per-process Chrome tracks, timestamps realigned
    with the handshake-measured clock skew — before the flight recorder
    snapshots it, so a slow distributed query pins the full cross-process
    picture. A background thread pulls worker [stats] every
    [stats_interval_s] and {!stats_json} merges them into the
    [cluster_stats] reply `gfq top` renders. *)

type config = {
  node : string;
  connect_timeout_s : float;
  rpc_timeout_s : float;
  retries : int;
  hedge_after_s : float option;
  max_result_bytes : int option;
  breaker : Gf_server.Breaker.config;
  probe_interval_s : float;
  probe_timeout_s : float;
  slowlog_capacity : int;
  slow_s : float;  (** slow-pin threshold for distributed queries *)
  stats_interval_s : float;
      (** worker stats pull period; [<= 0] disables the background puller
          (stats are then pulled synchronously on demand) *)
}

val default_config : config

type t

val create : ?config:config -> Topology.t -> t
(** Starts the health prober. Connections are dialed lazily, handshaken
    ({!Proto.version} + graph fingerprint) and pooled. *)

val stop : t -> unit

type shard_result = {
  sr_shard : int;
  sr_ok : bool;
  sr_outcome : string;
  sr_matches : int;
  sr_rows : int array list;
  sr_endpoint : string;
  sr_attempts : int;
  sr_failover : bool;
  sr_hedged : bool;
  sr_hedge_win : bool;
  sr_detail : string;
}

type result = {
  r_id : int;
  r_outcome : string;  (** completed | truncated | partial | failed *)
  r_matches : int;
  r_incomplete : int list;
  r_failovers : int;
  r_hedges : int;
  r_retries : int;
  r_rows : int array list;
  r_exec_s : float;
  r_trace_id : int option;
      (** flight-recorder handle for the stitched trace ([trace id=N]) *)
  r_shards : shard_result array;
}

val run : t -> text:string -> Gf_server.Service.request -> result
(** [text] is the query text forwarded verbatim inside each shard line. *)

val to_reply : result -> string

val stats_json : t -> string
(** The merged [cluster_stats] line: coordinator counters, request-level
    and per-shard latency quantiles ([gf_cluster_request_seconds] /
    [gf_cluster_shard_seconds{shard="i"}]), breaker and health state, and
    a [fleet] array embedding each worker's own [stats] reply (or a
    structured error for unreachable workers). *)

val recorder : t -> Graphflow.Recorder.t
(** The coordinator-side flight recorder (stitched traces live here). *)

val hook : t -> Gf_server.Server.hook
(** Intercepts [run]/[stats]/[slowlog]/[trace id=N] (answered from the
    cluster) and mutations (structured [read_only] refusal — the cluster
    data path is read-only; mutate the owning worker's store); passes
    ping/metrics/shutdown through to the hosting server. *)
