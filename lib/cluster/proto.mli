(** The cluster dialect of the newline-delimited wire protocol.

    Two line shapes ride on top of the standard {!Gf_server.Wire} surface
    (both are intercepted by server hooks before normal dispatch):

    {v
    hello proto=1 node=<id> role=<coordinator|worker|probe>
    shard part=<i>/<k> [timeout_ms=N] [max_rows=N] [rows] q=<query>
    v}

    [hello] is the version + identity handshake: a worker answers with its
    protocol version, node id, and graph fingerprint (vertex count [n],
    edge count [m], graph version), or a structured [version_mismatch]
    refusal when the peer speaks a different protocol — skewed deploys
    fail loudly at connect, never mid-query.

    [shard] asks the worker to run the i-th of k equal slices of the
    query's driving-scan source space. The worker plans locally (same
    graph + same code = same plan on every worker), so disjoint parts
    union into exactly the full result. [q=] must come last — it consumes
    the rest of the line, the same rule as [run].

    Replies are single JSON lines; the scraping helpers below read fields
    back out of replies this module itself built (or a peer built with
    the same code), keeping the transport dependency-free. *)

(** Protocol version spoken by this build. *)
val version : int

val hello_req : node:string -> role:string -> string

type hello = { p_proto : int; p_node : string; p_role : string }

val parse_hello : string -> (hello, string) result
val hello_resp : node:string -> n:int -> m:int -> graph_version:int -> string
val version_mismatch : node:string -> theirs:int -> string

val shard_req :
  part:int * int -> ?timeout_ms:int -> ?max_rows:int -> rows:bool -> string -> string

val parse_part : string -> (int * int, string) result

val parse_shard : string -> (Gf_server.Service.request, string) result
(** The parsed request carries [part = Some (i, k)] and the query text. *)

val shard_resp : node:string -> part:int * int -> Gf_server.Service.reply -> string
val not_owner : node:string -> part:int * int -> string

(** Reply field scrapers (single-line JSON built by this module). *)

val json_int : string -> string -> int option
val json_str : string -> string -> string option
val json_bool : string -> string -> bool option
val json_rows : string -> int array list

val run_resp :
  id:int ->
  outcome:string ->
  matches:int ->
  shards:int ->
  incomplete:int list ->
  failovers:int ->
  hedges:int ->
  retries:int ->
  exec_s:float ->
  rows:int array list ->
  string
(** The coordinator's client-facing reply: [outcome] is
    [completed|truncated|partial|failed] and [incomplete_shards] lists the
    shard ids whose matches are missing — a partial answer is always
    honestly marked, never a silent undercount. *)
