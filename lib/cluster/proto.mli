(** The cluster dialect of the newline-delimited wire protocol.

    Two line shapes ride on top of the standard {!Gf_server.Wire} surface
    (both are intercepted by server hooks before normal dispatch):

    {v
    hello proto=1 node=<id> role=<coordinator|worker|probe>
    shard part=<i>/<k> [timeout_ms=N] [max_rows=N] [trace_id=N parent=<span>] [rows] q=<query>
    v}

    [hello] is the version + identity handshake: a worker answers with its
    protocol version, node id, and graph fingerprint (vertex count [n],
    edge count [m], graph version), or a structured [version_mismatch]
    refusal when the peer speaks a different protocol — skewed deploys
    fail loudly at connect, never mid-query.

    [shard] asks the worker to run the i-th of k equal slices of the
    query's driving-scan source space. The worker plans locally (same
    graph + same code = same plan on every worker), so disjoint parts
    union into exactly the full result. [q=] must come last — it consumes
    the rest of the line, the same rule as [run].

    Replies are single JSON lines; the scraping helpers below read fields
    back out of replies this module itself built (or a peer built with
    the same code), keeping the transport dependency-free. *)

(** Protocol version spoken by this build. *)
val version : int

val hello_req : node:string -> role:string -> string

type hello = { p_proto : int; p_node : string; p_role : string }

val parse_hello : string -> (hello, string) result

(** [clock_us] is the responder's wall clock at reply time
    ({!Gf_obs.Trace.now_us}); the caller brackets the exchange with its own
    clock and derives the peer-minus-local skew used to align grafted
    trace timestamps. *)
val hello_resp : node:string -> n:int -> m:int -> graph_version:int -> clock_us:int -> string

val version_mismatch : node:string -> theirs:int -> string

(** [trace_ctx] is [(trace_id, parent_span_name)] — present when the
    coordinator wants the worker to trace its part and ship the span tree
    back. [parent_span_name] must be a single token (no spaces). *)
val shard_req :
  part:int * int ->
  ?timeout_ms:int ->
  ?max_rows:int ->
  ?trace_ctx:int * string ->
  rows:bool ->
  string ->
  string

val parse_part : string -> (int * int, string) result

val parse_shard : string -> (Gf_server.Service.request, string) result
(** The parsed request carries [part = Some (i, k)], the query text, and
    [trace = true] when the line carried a [trace_id=]. *)

(** The [(trace_id, parent)] context of a shard request line, for echoing
    in the reply; [None] when the request is untraced. *)
val shard_trace_ctx : string -> (int * string) option

(** Worker-side observability payload of a traced shard reply: the span
    tree serialized with {!Gf_obs.Trace.export_spans} (wire-safe by
    construction), the worker's OS pid, and its clock at reply time. *)
type obs = {
  o_trace_id : int;
  o_parent : string;
  o_pid : int;
  o_clock_us : int;
  o_spans : string;
}

val shard_resp : node:string -> part:int * int -> ?obs:obs -> Gf_server.Service.reply -> string
val not_owner : node:string -> part:int * int -> string

(** Reply field scrapers (single-line JSON built by this module). *)

val json_int : string -> string -> int option
val json_str : string -> string -> string option
val json_bool : string -> string -> bool option
val json_rows : string -> int array list

val run_resp :
  id:int ->
  outcome:string ->
  matches:int ->
  shards:int ->
  incomplete:int list ->
  failovers:int ->
  hedges:int ->
  retries:int ->
  exec_s:float ->
  ?trace_id:int ->
  rows:int array list ->
  unit ->
  string
(** The coordinator's client-facing reply: [outcome] is
    [completed|truncated|partial|failed] and [incomplete_shards] lists the
    shard ids whose matches are missing — a partial answer is always
    honestly marked, never a silent undercount. [trace_id], when present,
    is the coordinator-side flight-recorder handle for the stitched
    cluster trace ([trace id=N] fetches it). *)
