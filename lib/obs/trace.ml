module Timing = Gf_util.Timing

type arg = Int of int | Str of string | Float of float

type span = {
  name : string;
  cat : string;
  pid : int;
  tid : int;
  ts_us : int;
  dur_us : int;
  depth : int;
  args : (string * arg) list;
}

type open_span = {
  o_name : string;
  o_cat : string;
  o_ts : int;
  o_args : (string * arg) list;
}

(* One buffer per recording thread of control (an OCaml domain, a service
   worker thread). Recording mutates only this buffer — no atomics, no
   locks, no contention between domains. The ring overwrites its oldest
   completed span when full (flight-recorder semantics); [n] keeps counting
   so drops are visible. [pid] defaults to 1 for locally recorded spans;
   grafted foreign buffers carry their producer's OS pid so Chrome trace
   viewers render one track group per process. *)
type buf = {
  pid : int;
  tid : int;
  tname : string;
  cap : int;
  ring : span array;
  mutable n : int; (* total spans recorded; slot = n mod cap *)
  mutable stack : open_span list;
}

type t = {
  capacity : int;
  m : Mutex.t; (* guards [bufs]/[pnames] registration/export, never recording *)
  mutable bufs : buf list;
  mutable pnames : (int * string) list; (* pid -> process name, for export *)
}

let dummy_span =
  { name = ""; cat = ""; pid = 0; tid = 0; ts_us = 0; dur_us = 0; depth = 0; args = [] }

let create ?(capacity = 8192) () =
  { capacity = max 16 capacity; m = Mutex.create (); bufs = []; pnames = [ (1, "gfq") ] }

let register_process t ~pid name =
  Mutex.lock t.m;
  t.pnames <- (pid, name) :: List.remove_assoc pid t.pnames;
  Mutex.unlock t.m

let buffer ?(name = "") ?(pid = 1) t ~tid =
  let b =
    {
      pid;
      tid;
      tname = name;
      cap = t.capacity;
      ring = Array.make t.capacity dummy_span;
      n = 0;
      stack = [];
    }
  in
  Mutex.lock t.m;
  t.bufs <- b :: t.bufs;
  Mutex.unlock t.m;
  b

let now_us = Timing.now_us

let push b s =
  b.ring.(b.n mod b.cap) <- s;
  b.n <- b.n + 1

let add_complete ?(cat = "") ?(args = []) b ~name ~ts_us ~dur_us =
  push b
    {
      name;
      cat;
      pid = b.pid;
      tid = b.tid;
      ts_us;
      dur_us = max 0 dur_us;
      depth = List.length b.stack;
      args;
    }

let begin_span ?(cat = "") ?(args = []) b name =
  b.stack <- { o_name = name; o_cat = cat; o_ts = Timing.now_us (); o_args = args } :: b.stack

let end_span ?(args = []) b =
  match b.stack with
  | [] -> () (* unmatched end: ignore rather than corrupt the stack *)
  | o :: rest ->
      b.stack <- rest;
      let now = Timing.now_us () in
      push b
        {
          name = o.o_name;
          cat = o.o_cat;
          pid = b.pid;
          tid = b.tid;
          ts_us = o.o_ts;
          dur_us = max 0 (now - o.o_ts);
          depth = List.length rest;
          args = o.o_args @ args;
        }

let span ?cat ?args b name f =
  begin_span ?cat ?args b name;
  Fun.protect ~finally:(fun () -> end_span b) f

let instant ?(cat = "") ?(args = []) b name =
  add_complete ~cat ~args b ~name ~ts_us:(Timing.now_us ()) ~dur_us:0

(* Close every open span — the unwind path (governor trips, faults) skips
   the orderly end_span calls, and an export must never see an unbalanced
   stack. *)
let close_all b = while b.stack <> [] do end_span b done

let buf_spans b =
  let stored = min b.n b.cap in
  (* Oldest first: recording order within the buffer. *)
  List.init stored (fun i -> b.ring.((b.n - stored + i) mod b.cap))

let with_bufs t f =
  Mutex.lock t.m;
  let bufs = t.bufs in
  Mutex.unlock t.m;
  f (List.rev bufs)

let spans t =
  with_bufs t (fun bufs ->
      List.concat_map buf_spans bufs |> List.stable_sort (fun a b -> compare a.ts_us b.ts_us))

let dropped t =
  with_bufs t (fun bufs -> List.fold_left (fun acc b -> acc + max 0 (b.n - b.cap)) 0 bufs)

(* --- cross-process span shipping --------------------------------------- *)

(* Workers serialize their span tree into a shard reply so the coordinator
   can stitch one cluster-wide trace. The payload is embedded as a JSON
   string field on the newline-delimited wire, whose scraper unescapes
   backslash sequences naively — so the format uses no backslashes at all:
   records are ';'-separated, fields '|'-separated, and every structural or
   non-printable character is %XX hex-escaped (URL style). *)

let wire_special c =
  match c with
  | '%' | '|' | ';' | ':' | ',' | '"' | '\\' -> true
  | c -> Char.code c < 0x21 || Char.code c > 0x7e

let wire_enc s =
  if String.for_all (fun c -> not (wire_special c)) s then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if wire_special c then Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
        else Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let wire_dec s =
  if not (String.contains s '%') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let hex c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> -1
    in
    let i = ref 0 in
    while !i < n do
      (if s.[!i] = '%' && !i + 2 < n && hex s.[!i + 1] >= 0 && hex s.[!i + 2] >= 0 then begin
         Buffer.add_char buf (Char.chr ((hex s.[!i + 1] * 16) + hex s.[!i + 2]));
         i := !i + 3
       end
       else begin
         Buffer.add_char buf s.[!i];
         incr i
       end)
    done;
    Buffer.contents buf
  end

let arg_enc (k, v) =
  let tv =
    match v with
    | Int i -> Printf.sprintf "i:%d" i
    | Float f -> Printf.sprintf "f:%s" (wire_enc (Printf.sprintf "%h" f))
    | Str s -> Printf.sprintf "s:%s" (wire_enc s)
  in
  Printf.sprintf "%s:%s" (wire_enc k) tv

let arg_dec item =
  match String.index_opt item ':' with
  | None -> None
  | Some i -> (
      let k = wire_dec (String.sub item 0 i) in
      let rest = String.sub item (i + 1) (String.length item - i - 1) in
      if String.length rest < 2 || rest.[1] <> ':' then None
      else
        let v = String.sub rest 2 (String.length rest - 2) in
        match rest.[0] with
        | 'i' -> Option.map (fun n -> (k, Int n)) (int_of_string_opt v)
        | 'f' -> Option.map (fun f -> (k, Float f)) (float_of_string_opt (wire_dec v))
        | 's' -> Some (k, Str (wire_dec v))
        | _ -> None)

(* Compact, wire-safe serialization of every recorded span plus the
   thread-name metadata needed to label foreign tracks:
     B|tid|tname                       one per buffer
     S|tid|ts|dur|depth|name|cat|args  one per span, args comma-separated *)
let export_spans t =
  let out = Buffer.create 1024 in
  let first = ref true in
  let record s =
    if !first then first := false else Buffer.add_char out ';';
    Buffer.add_string out s
  in
  with_bufs t (fun bufs ->
      List.iter
        (fun b ->
          record (Printf.sprintf "B|%d|%s" b.tid (wire_enc b.tname));
          List.iter
            (fun (s : span) ->
              record
                (Printf.sprintf "S|%d|%d|%d|%d|%s|%s|%s" s.tid s.ts_us s.dur_us s.depth
                   (wire_enc s.name) (wire_enc s.cat)
                   (String.concat "," (List.map arg_enc s.args))))
            (buf_spans b))
        bufs);
  Buffer.contents out

(* Splice a worker's serialized span tree into this trace under its own
   process track. [skew_us] is the worker-minus-coordinator clock offset
   measured at handshake; subtracting it moves foreign timestamps into the
   local clock frame so tracks line up in Perfetto. Malformed records are
   skipped — observability must not fail the request. *)
let graft t ~pid ~pname ~skew_us data =
  register_process t ~pid pname;
  let tracks : (int, buf) Hashtbl.t = Hashtbl.create 4 in
  let track ?(tname = "") tid =
    match Hashtbl.find_opt tracks tid with
    | Some b -> b
    | None ->
        let b = buffer ~name:tname ~pid t ~tid in
        Hashtbl.replace tracks tid b;
        b
  in
  String.split_on_char ';' data
  |> List.iter (fun rcd ->
         match String.split_on_char '|' rcd with
         | [ "B"; tid; tname ] -> (
             match int_of_string_opt tid with
             | Some tid -> ignore (track ~tname:(wire_dec tname) tid)
             | None -> ())
         | [ "S"; tid; ts; dur; depth; name; cat; args ] -> (
             match
               (int_of_string_opt tid, int_of_string_opt ts, int_of_string_opt dur,
                int_of_string_opt depth)
             with
             | Some tid, Some ts, Some dur, Some depth ->
                 let args =
                   if args = "" then []
                   else String.split_on_char ',' args |> List.filter_map arg_dec
                 in
                 push (track tid)
                   {
                     name = wire_dec name;
                     cat = wire_dec cat;
                     pid;
                     tid;
                     ts_us = ts - skew_us;
                     dur_us = max 0 dur;
                     depth;
                     args;
                   }
             | _ -> ())
         | _ -> ())

(* --- export ------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let arg_to_json = function
  | Int i -> string_of_int i
  | Float f ->
      if Float.is_nan f then "null"
      else if Float.abs f = infinity then "1e999"
      else Printf.sprintf "%.6g" f
  | Str s -> "\"" ^ json_escape s ^ "\""

let args_to_json args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (arg_to_json v)) args)
  ^ "}"

(* A begin or end event in the exported stream. *)
type event = { e_ph : char; e_name : string; e_cat : string; e_pid : int; e_tid : int;
               e_ts : int; e_args : (string * arg) list }

(* Per-track well-nested B/E emission. Spans within one track come from a
   stack discipline so they nest by construction, but merged synthesized
   spans and µs truncation can produce boundary ties; sorting containers
   first and clamping children to their parent's end makes the output
   provably balanced and properly nested whatever the input. *)
let events_of_track (pid, tid) spans =
  let arr = Array.of_list spans in
  let key s = (s.ts_us, -(s.ts_us + s.dur_us), s.depth) in
  (* Stable: ties keep recording order. *)
  let idx = Array.mapi (fun i s -> (key s, i, s)) arr in
  Array.sort (fun (ka, ia, _) (kb, ib, _) -> compare (ka, ia) (kb, ib)) idx;
  let out = ref [] in
  let emit e = out := e :: !out in
  let stack = ref [] in
  let close_upto ts =
    let rec go () =
      match !stack with
      | (s, e) :: rest when e <= ts ->
          emit
            { e_ph = 'E'; e_name = s.name; e_cat = s.cat; e_pid = pid; e_tid = tid; e_ts = e;
              e_args = [] };
          stack := rest;
          go ()
      | _ -> ()
    in
    go ()
  in
  Array.iter
    (fun (_, _, s) ->
      close_upto s.ts_us;
      let end_ts =
        match !stack with
        | (_, parent_end) :: _ -> min (s.ts_us + s.dur_us) parent_end
        | [] -> s.ts_us + s.dur_us
      in
      emit
        { e_ph = 'B'; e_name = s.name; e_cat = s.cat; e_pid = pid; e_tid = tid; e_ts = s.ts_us;
          e_args = s.args };
      stack := (s, end_ts) :: !stack)
    idx;
  List.iter
    (fun (s, e) ->
      emit
        { e_ph = 'E'; e_name = s.name; e_cat = s.cat; e_pid = pid; e_tid = tid; e_ts = e;
          e_args = [] })
    !stack;
  stack := [];
  List.rev !out

let by_track (spans : span list) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (s : span) ->
      let key = (s.pid, s.tid) in
      let l = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
      Hashtbl.replace tbl key (s :: l))
    spans;
  Hashtbl.fold (fun key l acc -> (key, List.rev l) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let events t =
  let spans = spans t in
  List.concat_map (fun (key, ss) -> events_of_track key ss) (by_track spans)

let chrome_events t =
  List.map (fun e -> (e.e_ph, e.e_tid, e.e_ts, e.e_name)) (events t)

let pids t =
  with_bufs t (fun bufs -> List.sort_uniq compare (List.map (fun b -> b.pid) bufs))

let process_name t pid =
  Mutex.lock t.m;
  let n = List.assoc_opt pid t.pnames in
  Mutex.unlock t.m;
  match n with
  | Some n -> n
  | None -> if pid = 1 then "gfq" else Printf.sprintf "pid-%d" pid

let to_chrome_json t =
  let evs = events t in
  let base = List.fold_left (fun acc e -> min acc e.e_ts) max_int evs in
  let base = if base = max_int then 0 else base in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let add s =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf s
  in
  let pids = match pids t with [] -> [ 1 ] | ps -> ps in
  List.iter
    (fun pid ->
      add
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
           pid
           (json_escape (process_name t pid))))
    pids;
  let seen_threads = Hashtbl.create 8 in
  with_bufs t (fun bufs ->
      List.iter
        (fun b ->
          if b.tname <> "" && not (Hashtbl.mem seen_threads (b.pid, b.tid)) then begin
            Hashtbl.replace seen_threads (b.pid, b.tid) ();
            add
              (Printf.sprintf
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
                 b.pid b.tid (json_escape b.tname))
          end)
        bufs);
  List.iter
    (fun e ->
      let cat = if e.e_cat = "" then "span" else e.e_cat in
      let args = if e.e_args = [] then "" else ",\"args\":" ^ args_to_json e.e_args in
      add
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"ts\":%d,\"pid\":%d,\"tid\":%d%s}"
           (json_escape e.e_name) (json_escape cat) e.e_ph (e.e_ts - base) e.e_pid e.e_tid args))
    evs;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* --- terminal renderer ------------------------------------------------- *)

let arg_to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s

let render t =
  let buf = Buffer.create 1024 in
  let name_of_track (pid, tid) =
    let proc = if pid = 1 then "" else Printf.sprintf "%s " (process_name t pid) in
    with_bufs t (fun bufs ->
        match List.find_opt (fun b -> b.pid = pid && b.tid = tid && b.tname <> "") bufs with
        | Some b -> Printf.sprintf "%stid %d (%s)" proc tid b.tname
        | None -> Printf.sprintf "%stid %d" proc tid)
  in
  List.iter
    (fun (key, ss) ->
      Buffer.add_string buf (name_of_track key);
      Buffer.add_char buf '\n';
      (* Rebuild the nesting with the same walk the exporter uses, printing
         a line per B event at its stack depth. *)
      let evs = events_of_track key ss in
      let depth = ref 0 in
      let durations = Hashtbl.create 64 in
      List.iter (fun s -> Hashtbl.add durations (s.ts_us, s.name) s.dur_us) ss;
      List.iter
        (fun e ->
          match e.e_ph with
          | 'B' ->
              let dur = Option.value (Hashtbl.find_opt durations (e.e_ts, e.e_name)) ~default:0 in
              let args =
                if e.e_args = [] then ""
                else
                  "  ["
                  ^ String.concat " "
                      (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (arg_to_string v)) e.e_args)
                  ^ "]"
              in
              Buffer.add_string buf
                (Printf.sprintf "  %-*s%-*s %10.3fms%s\n" (2 * !depth) "" (max 1 (40 - (2 * !depth)))
                   e.e_name
                   (float_of_int dur /. 1000.)
                   args);
              incr depth
          | _ -> decr depth)
        evs)
    (by_track (spans t));
  let d = dropped t in
  if d > 0 then Buffer.add_string buf (Printf.sprintf "  (%d spans dropped by full ring buffers)\n" d);
  Buffer.contents buf
