(* A deliberately tiny HTTP/1.0 server for metrics scraping and liveness
   probes. One accept thread, one short-lived connection per request,
   no keep-alive, no chunking — exactly enough for `curl :PORT/metrics`
   and a Prometheus scraper, with zero dependencies beyond Unix.

   Routes are plain thunks supplied by the caller, so this module needs
   no knowledge of the metrics registry (gf_obs stays below gf_exec in
   the library graph). *)

type handler = unit -> string * string (* content-type, body *)

type t = {
  fd : Unix.file_descr;
  port : int;
  mutable stopped : bool;
  mutable thread : Thread.t option;
}

let http_status = function
  | 200 -> "200 OK"
  | 404 -> "404 Not Found"
  | 405 -> "405 Method Not Allowed"
  | _ -> "500 Internal Server Error"

let respond fd code ctype body =
  let head =
    Printf.sprintf
      "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      (http_status code) ctype (String.length body)
  in
  let msg = head ^ body in
  let n = String.length msg in
  let rec send off =
    if off < n then
      match Unix.write_substring fd msg off (n - off) with
      | 0 -> ()
      | w -> send (off + w)
  in
  try send 0 with Unix.Unix_error _ -> ()

(* Read until the request line (first '\n') is complete; the rest of the
   headers can stay unread — the reply is tiny and the socket is closed
   right after, which every scraper and curl tolerate. Bounded so a
   malicious peer cannot grow the buffer. *)
let read_request fd =
  let chunk = Bytes.create 2048 in
  let acc = Buffer.create 256 in
  let rec fill () =
    if Buffer.length acc > 16384 then None
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> None
      | n ->
          Buffer.add_subbytes acc chunk 0 n;
          let s = Buffer.contents acc in
          (match String.index_opt s '\n' with
          | Some i -> Some (String.sub s 0 i)
          | None -> fill ())
      | exception Unix.Unix_error _ -> None
  in
  fill ()

let handle routes fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0 with Unix.Unix_error _ -> ());
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 2.0 with Unix.Unix_error _ -> ());
  (match read_request fd with
  | None -> ()
  | Some line -> (
      let line = String.trim line in
      match String.split_on_char ' ' line with
      | meth :: path :: _ when String.uppercase_ascii meth = "GET" -> (
          (* Strip any ?query — handlers take no parameters. *)
          let path =
            match String.index_opt path '?' with
            | Some i -> String.sub path 0 i
            | None -> path
          in
          match List.assoc_opt path routes with
          | Some h -> (
              (* A buggy handler degrades to a 500 on this one connection;
                 the listener itself must keep serving. *)
              match h () with
              | ctype, body -> respond fd 200 ctype body
              | exception _ -> respond fd 500 "text/plain" "internal error\n")
          | None -> respond fd 404 "text/plain" "not found\n")
      | _ :: _ :: _ -> respond fd 405 "text/plain" "method not allowed\n"
      | _ -> ()));
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t routes =
  while not t.stopped do
    (* Poll with a short timeout so [stop] is honoured promptly. *)
    match Unix.select [ t.fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.fd with
        | fd, _ -> if t.stopped then Unix.close fd else handle routes fd
        | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  done;
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let start ?(host = "127.0.0.1") ~port routes =
  match
    let addr = Unix.inet_addr_of_string host in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    Unix.listen fd 16;
    let port =
      match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
    in
    (fd, port)
  with
  | exception e -> Error (Printexc.to_string e)
  | fd, port ->
      let t = { fd; port; stopped = false; thread = None } in
      t.thread <- Some (Thread.create (fun () -> accept_loop t routes) ());
      Ok t

let port t = t.port

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    match t.thread with
    | Some th ->
        t.thread <- None;
        Thread.join th
    | None -> ()
  end
