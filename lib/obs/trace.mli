(** Span tracing with per-thread ring buffers and Chrome trace-event export.

    Each recording thread of control (an OCaml domain, a service worker)
    owns a {!buf}; recording into it is plain mutation of thread-local
    state, so concurrent domains never contend. Buffers are merged only at
    export time, under the trace's registration mutex.

    Spans are stored {e completed} — a begin/end pair becomes one ring
    entry when the span ends — and the exporter re-derives balanced,
    properly nested [B]/[E] event pairs per tid, so a trace loads cleanly
    in Perfetto / [chrome://tracing] even when ring overwrite dropped
    ancestors. *)

(** A span argument value, rendered into the Chrome [args] object. *)
type arg = Int of int | Str of string | Float of float

type span = {
  name : string;
  cat : string;
  pid : int;  (** process track; 1 for locally recorded spans *)
  tid : int;
  ts_us : int;  (** wall-clock start, µs ({!Gf_util.Timing.now_us}) *)
  dur_us : int;
  depth : int;  (** nesting depth at recording time *)
  args : (string * arg) list;
}

(** Per-thread recording buffer. Not thread-safe: each buffer must be used
    by exactly one thread of control. *)
type buf

(** A trace: a set of registered buffers sharing one capacity. *)
type t

(** [create ?capacity ()] makes an empty trace. [capacity] (default 8192)
    is the per-buffer ring size; when a buffer fills, its oldest spans are
    overwritten and counted in {!dropped}. *)
val create : ?capacity:int -> unit -> t

(** [buffer ?name ?pid t ~tid] registers a new recording buffer. [tid]
    becomes the Chrome thread id; [name], if nonempty, is exported as the
    thread name; [pid] (default 1) selects the process track. Safe to call
    from any domain. *)
val buffer : ?name:string -> ?pid:int -> t -> tid:int -> buf

(** [register_process t ~pid name] names a process track in the Chrome
    export ([process_name] metadata). Track 1 is "gfq" by default. *)
val register_process : t -> pid:int -> string -> unit

(** Current wall clock in integer microseconds — the span timestamp unit,
    re-exported for callers synthesizing spans via {!add_complete}. *)
val now_us : unit -> int

(** [begin_span b name] opens a span now. Nesting is tracked per buffer. *)
val begin_span : ?cat:string -> ?args:(string * arg) list -> buf -> string -> unit

(** [end_span b] closes the innermost open span, recording it into the
    ring. [args] are appended to the span's begin-time args. A call with no
    open span is ignored. *)
val end_span : ?args:(string * arg) list -> buf -> unit

(** [span b name f] runs [f ()] inside a span, closing it even on raise. *)
val span : ?cat:string -> ?args:(string * arg) list -> buf -> string -> (unit -> 'a) -> 'a

(** [instant b name] records a zero-duration marker (steals, trips). *)
val instant : ?cat:string -> ?args:(string * arg) list -> buf -> string -> unit

(** [add_complete b ~name ~ts_us ~dur_us] records an already-measured span
    (queue waits, operator summaries synthesized from a {e Profile}). *)
val add_complete :
  ?cat:string -> ?args:(string * arg) list -> buf -> name:string -> ts_us:int -> dur_us:int -> unit

(** Close every still-open span in [b] — the unwind path for governor
    trips and injected faults, so exports never see a dangling stack. *)
val close_all : buf -> unit

(** All recorded spans across buffers, sorted by start time. Call only
    after recording threads have quiesced (joined / returned). *)
val spans : t -> span list

(** Total spans lost to ring overwrite across all buffers. *)
val dropped : t -> int

(** Distinct process-track ids with at least one registered buffer,
    ascending. A purely local trace reports [[1]]. *)
val pids : t -> int list

(** Compact wire-safe serialization of every recorded span plus buffer
    (thread-name) metadata, for shipping a worker's span tree inside a
    single-line JSON reply: records are [';']-separated, fields
    ['|']-separated, structural and non-printable bytes [%XX]-escaped —
    the payload contains no quote, backslash, space or newline, so it
    survives the wire protocol's naive string unescaping byte-for-byte.
    Call after recording threads have quiesced. *)
val export_spans : t -> string

(** [graft t ~pid ~pname ~skew_us data] splices a span tree serialized by
    {!export_spans} in another process into [t], under process track
    [pid] named [pname]. [skew_us] (producer clock minus local clock, from
    the handshake) is subtracted from every timestamp so foreign tracks
    line up with local ones. Malformed records are skipped silently. *)
val graft : t -> pid:int -> pname:string -> skew_us:int -> string -> unit

(** The exported event stream as [(phase, tid, ts_us, name)] tuples,
    phase ['B'] or ['E'] — for tests asserting per-tid balance without
    parsing JSON. Tracks are emitted contiguously, so the stream stays
    balanced per tid even when grafted processes reuse a tid. *)
val chrome_events : t -> (char * int * int * string) list

(** Chrome trace-event JSON ([{"traceEvents":[...]}]) with process-name
    and thread-name metadata per (pid, tid) track; timestamps normalized
    so the earliest event is at 0. *)
val to_chrome_json : t -> string

(** Terminal span tree: one block per (process, tid) track, indentation
    showing nesting, durations in milliseconds. *)
val render : t -> string

(** JSON string escaping matching the wire protocol's framing rules;
    shared with {!Recorder}. *)
val json_escape : string -> string
