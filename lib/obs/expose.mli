(** Minimal HTTP/1.0 listener for observability endpoints: [GET /metrics]
    for Prometheus scrapers and [GET /healthz] for liveness probes.

    Routes are caller-supplied thunks (path -> content-type * body), so
    this module carries no dependency on the metrics registry — [gfq]
    wires [Metrics.exposition] in at startup. One accept thread serves
    one short-lived connection at a time; exposition bodies are tiny and
    scrape intervals are seconds, so serialization is a feature, not a
    bottleneck. *)

(** A route body: returns (content-type, body). Exceptions are caught and
    reported as a plain-text error body. *)
type handler = unit -> string * string

type t

(** [start ?host ~port routes] binds and begins serving. [port] 0 picks an
    ephemeral port (see {!port}); [host] defaults to loopback — metrics
    stay private unless explicitly bound wider. Unknown paths get 404,
    non-GET methods 405. *)
val start : ?host:string -> port:int -> (string * handler) list -> (t, string) result

(** The actually bound port (useful with [~port:0]). *)
val port : t -> int

(** Stop accepting and join the accept thread. Idempotent. *)
val stop : t -> unit
