(** Always-on query flight recorder: a bounded ring of recent query
    records, plus retained full traces for the last few traced requests
    and for any request slower than the promotion threshold. Thread-safe;
    recording happens once per query so a mutex costs nothing. *)

type record = {
  id : int;  (** monotonically increasing, the handle for [trace id=N] *)
  query : string;
  plan : string;  (** plan signature *)
  outcome : string;
  latency_s : float;
  queue_s : float;
  rung : string;  (** retry-ladder rung that produced the outcome *)
  attempts : int;
  retries : int;
  top_ops : (string * float) list;  (** top operators by self time, traced runs only *)
  traced : bool;
  slow : bool;  (** latency crossed the promotion threshold *)
  at_s : float;
}

type t

(** [create ?capacity ?retain ?slow_s ()] — [capacity] (default 256) bounds
    the record ring, [retain] (default 8) bounds each retained-trace list,
    [slow_s] (default 0.25) is the slow-query promotion threshold. *)
val create : ?capacity:int -> ?retain:int -> ?slow_s:float -> unit -> t

val slow_threshold : t -> float

(** Record one finished query; returns its id. When [traced] and
    [trace_json] is given, the trace is retained: in the recent-traces ring
    always, and pinned in the slow ring when [latency_s] crossed the
    threshold. *)
val record :
  t ->
  query:string ->
  plan:string ->
  outcome:string ->
  latency_s:float ->
  queue_s:float ->
  rung:string ->
  attempts:int ->
  retries:int ->
  top_ops:(string * float) list ->
  traced:bool ->
  ?trace_json:string ->
  unit ->
  int

(** [recent t k] — up to [k] most recent records, newest first. *)
val recent : t -> int -> record list

(** Records currently held in the ring. *)
val length : t -> int

(** [find_trace t id] — the retained Chrome JSON for [id], slow ring
    checked first (slow traces outlive recent-traffic eviction). *)
val find_trace : t -> int -> string option

(** Ids with a retained trace, ascending. *)
val retained_ids : t -> int list

(** One record as a JSON object, query text escaped for the
    newline-delimited wire protocol. *)
val record_to_json : record -> string
