(* Always-on flight recorder: a bounded ring of recent query records plus
   a small set of retained full traces. Recording is once per query and
   cross-thread (service workers), so a mutex is fine here — unlike span
   recording, which is per-domain and lock-free. *)

type record = {
  id : int;
  query : string;
  plan : string; (* plan signature / digest *)
  outcome : string;
  latency_s : float;
  queue_s : float;
  rung : string;
  attempts : int;
  retries : int;
  top_ops : (string * float) list; (* label, self seconds; traced runs only *)
  traced : bool;
  slow : bool;
  at_s : float;
}

type t = {
  cap : int;
  retain : int;
  slow_s : float;
  m : Mutex.t;
  ring : record option array;
  mutable n : int; (* total records; slot = n mod cap *)
  mutable next_id : int;
  (* Retained traces: [recent] is a FIFO of the last [retain] traced
     requests; [slow] pins traces whose latency crossed [slow_s] so a bad
     query survives later traffic. Both bounded by [retain]. *)
  mutable recent : (int * string) list;
  mutable slow_traces : (int * string) list;
}

let create ?(capacity = 256) ?(retain = 8) ?(slow_s = 0.25) () =
  {
    cap = max 1 capacity;
    retain = max 1 retain;
    slow_s;
    m = Mutex.create ();
    ring = Array.make (max 1 capacity) None;
    n = 0;
    next_id = 1;
    recent = [];
    slow_traces = [];
  }

let slow_threshold t = t.slow_s

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let truncate_list k l = List.filteri (fun i _ -> i < k) l

let record t ~query ~plan ~outcome ~latency_s ~queue_s ~rung ~attempts ~retries ~top_ops ~traced
    ?trace_json () =
  locked t (fun () ->
      let id = t.next_id in
      t.next_id <- id + 1;
      let slow = latency_s >= t.slow_s in
      let r =
        {
          id;
          query;
          plan;
          outcome;
          latency_s;
          queue_s;
          rung;
          attempts;
          retries;
          top_ops;
          traced;
          slow;
          at_s = Unix.gettimeofday ();
        }
      in
      t.ring.(t.n mod t.cap) <- Some r;
      t.n <- t.n + 1;
      (match trace_json with
      | Some j when traced ->
          t.recent <- truncate_list t.retain ((id, j) :: t.recent);
          if slow then t.slow_traces <- truncate_list t.retain ((id, j) :: t.slow_traces)
      | _ -> ());
      id)

let recent t k =
  locked t (fun () ->
      let stored = min t.n t.cap in
      let rec go i acc =
        if i < 0 || List.length acc >= k then acc
        else
          match t.ring.((t.n - stored + i) mod t.cap) with
          | Some r -> go (i - 1) (acc @ [ r ])
          | None -> go (i - 1) acc
      in
      (* newest first *)
      go (stored - 1) [])

let length t = locked t (fun () -> min t.n t.cap)

let find_trace t id =
  locked t (fun () ->
      match List.assoc_opt id t.slow_traces with
      | Some j -> Some j
      | None -> List.assoc_opt id t.recent)

let retained_ids t =
  locked t (fun () ->
      let ids = List.map fst t.slow_traces @ List.map fst t.recent in
      List.sort_uniq compare ids)

let record_to_json r =
  let esc = Trace.json_escape in
  let ops =
    String.concat ","
      (List.map (fun (l, s) -> Printf.sprintf "{\"op\":\"%s\",\"self_s\":%.6f}" (esc l) s) r.top_ops)
  in
  Printf.sprintf
    "{\"id\":%d,\"query\":\"%s\",\"plan\":\"%s\",\"outcome\":\"%s\",\"latency_s\":%.6f,\"queue_s\":%.6f,\"rung\":\"%s\",\"attempts\":%d,\"retries\":%d,\"traced\":%b,\"slow\":%b,\"top_ops\":[%s]}"
    r.id (esc r.query) (esc r.plan) (esc r.outcome) r.latency_s r.queue_s (esc r.rung) r.attempts
    r.retries r.traced r.slow ops
