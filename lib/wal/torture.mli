(** Crash-torture harness: fork a writer, [kill -9] it at an armed fault
    point, recover, and prove the store came back as exactly the durable
    prefix of what was acknowledged.

    The engine is deterministic end to end: the initial graph and the
    whole mutation stream derive from [seed], and the child draws a fixed
    number of random values per operation, so the parent can re-simulate
    the identical stream against a plain {!Gf_graph.Delta} without any
    channel back from the dead child. The child appends an
    [fsync]-covered ack line ([ops-covered durable-lsn]) after every
    group-commit sync; the parent asserts

    - {b no lost ack}: the recovered version is at least the last acked
      LSN, and
    - {b no phantom}: the recovered graph (full edge array + vertex
      labels) equals the simulation at exactly the recovered LSN — not
      one record more.

    Used by the [test_torture] driver and [gfq soak --crash]. Fork-based:
    callers must be single-threaded when invoking {!run}. *)

type config = {
  seed : int;
  ops : int;  (** mutations the child attempts *)
  init_vertices : int;
  init_edges : int;
  num_vlabels : int;
  num_elabels : int;
  sync_every : int;  (** group-commit + ack cadence, in ops *)
  checkpoint_every : int;  (** 0 = never checkpoint *)
  crash : (Fault.point * int) option;
      (** fault point and 1-based hit count; [None] runs to completion *)
  store_cfg : Store.config;
}

(** A config exercising every code path: mixed mutations, group commit,
    periodic checkpoints, small segments so rotation happens. *)
val default : seed:int -> config

type outcome = {
  crashed : bool;  (** the child died by SIGKILL at its fault point *)
  acked_ops : int;  (** ops covered by the child's last durable ack *)
  acked_lsn : int;
  recovered_lsn : int;  (** store version after recovery *)
  covered_ops : int;  (** ops the recovered state corresponds to *)
  replayed : int;  (** WAL records applied past the snapshot *)
  used_snapshot : bool;
}

val pp_outcome : outcome -> string

(** [run ?dir ?keep config] executes one torture round in [dir] (a fresh
    temp directory by default, removed on success, kept on failure — or
    always kept with [keep]). [Error] carries a human-readable diagnosis:
    lost acked writes, phantom records, recovery refusal, or a child that
    failed without being killed. *)
val run : ?dir:string -> ?keep:bool -> config -> (outcome, string) result
