type point = Wal_mid_record | Wal_pre_fsync | Wal_mid_rotation | Checkpoint_mid_rename

let point_to_string = function
  | Wal_mid_record -> "wal.mid_record"
  | Wal_pre_fsync -> "wal.pre_fsync"
  | Wal_mid_rotation -> "wal.mid_rotation"
  | Checkpoint_mid_rename -> "checkpoint.mid_rename"

let point_of_string = function
  | "wal.mid_record" -> Some Wal_mid_record
  | "wal.pre_fsync" -> Some Wal_pre_fsync
  | "wal.mid_rotation" -> Some Wal_mid_rotation
  | "checkpoint.mid_rename" -> Some Checkpoint_mid_rename
  | _ -> None

(* armed = Some (point, hits-remaining). A plain ref, not atomics: the
   write path is single-writer by construction and the torture child arms
   before spawning any work. *)
let armed : (point * int ref) option ref = ref None

let arm p ~after = armed := Some (p, ref (max 1 after))
let disarm () = armed := None

let arm_from_env () =
  match Sys.getenv_opt "GFQ_CRASH_POINT" with
  | None -> false
  | Some s -> (
      match point_of_string (String.trim s) with
      | None -> false
      | Some p ->
          let after =
            match Sys.getenv_opt "GFQ_CRASH_AFTER" with
            | Some n -> ( match int_of_string_opt (String.trim n) with Some k -> k | None -> 1)
            | None -> 1
          in
          arm p ~after;
          true)

let hit p =
  match !armed with
  | Some (q, left) when q = p ->
      decr left;
      if !left <= 0 then begin
        (* Die like a power cut: SIGKILL bypasses at_exit, channel
           buffers, and every finaliser — exactly what the recovery path
           must survive. *)
        Unix.kill (Unix.getpid ()) Sys.sigkill;
        (* unreachable, but keep the type checker honest if kill fails *)
        exit 137
      end
  | _ -> ()
