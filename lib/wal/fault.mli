(** Crash-point injection for the durability torture harness.

    A fault point is a named place in the write path where the torture
    driver wants the process to die as if the machine lost power — by
    [SIGKILL]ing itself, so no [at_exit], no buffered flush, no unwind
    runs. Production code calls {!hit} at each point; the call is a single
    branch on a [None] ref unless a crash has been armed, so the
    instrumented paths cost nothing in normal operation.

    Arming is either programmatic ({!arm}) or via environment, which is
    how the forked torture child and [gfq soak --crash] configure
    themselves:

    - [GFQ_CRASH_POINT]: one of [wal.mid_record], [wal.pre_fsync],
      [wal.mid_rotation], [checkpoint.mid_rename]
    - [GFQ_CRASH_AFTER]: die on the [n]-th time that point is reached
      (1-based, default 1) *)

type point =
  | Wal_mid_record  (** half an appended record written and flushed *)
  | Wal_pre_fsync  (** record fully written, covering fsync not issued *)
  | Wal_mid_rotation  (** new segment created, old segment still current *)
  | Checkpoint_mid_rename
      (** snapshot temp file durable, rename not yet published *)

val point_of_string : string -> point option
val point_to_string : point -> string

(** [arm point ~after] arms a crash on the [after]-th hit of [point]
    (1-based). Re-arming replaces the previous arming. *)
val arm : point -> after:int -> unit

(** [disarm ()] clears any armed crash (including one armed from the
    environment). *)
val disarm : unit -> unit

(** [arm_from_env ()] reads [GFQ_CRASH_POINT] / [GFQ_CRASH_AFTER] and arms
    accordingly; no-op when unset or unparseable. Returns [true] if a
    crash was armed. *)
val arm_from_env : unit -> bool

(** [hit point] records that execution reached [point]; if an armed crash
    matches and its countdown reaches zero, the process [SIGKILL]s itself
    and never returns. *)
val hit : point -> unit
