module Graph = Gf_graph.Graph
module Graph_io = Gf_graph.Graph_io
module Delta = Gf_graph.Delta
module Metrics = Gf_exec.Metrics

type config = {
  segment_bytes : int;
  sync_every_append : bool;
  merge_threshold : int;
  snapshots_kept : int;
}

let default_config =
  { segment_bytes = 8 * 1024 * 1024; sync_every_append = false; merge_threshold = 4096; snapshots_kept = 2 }

type open_error =
  | Wal_error of Wal.error
  | Snapshot_error of Graph_io.load_error
  | Replay_apply of { lsn : int; what : string }
  | Store_io of string

let open_error_to_string = function
  | Wal_error e -> "store: " ^ Wal.error_to_string e
  | Snapshot_error e -> "store: no loadable snapshot: " ^ Graph_io.load_error_to_string e
  | Replay_apply { lsn; what } ->
      Printf.sprintf "store: wal record %d refused during replay: %s" lsn what
  | Store_io msg -> "store: io error: " ^ msg

type recovery = { snapshot : (string * int) option; replayed : int; warnings : string list }

type mut_error = Invalid of Delta.error | Failed of string

let mut_error_to_string = function
  | Invalid e -> Delta.error_to_string e
  | Failed msg -> "store failed (read-only): " ^ msg

type t = {
  cfg : config;
  dir : string;
  wal : Wal.t;
  delta : Delta.t;
  wm : Mutex.t;
  mutable on_merge : int -> unit;
  mutable failed : string option;
  mutable ckpts : int;
  recovery : recovery;
}

(* Metrics are bumped by name at use-time so [Metrics.reset] in tests is
   always safe (same discipline as the service layer). *)
let c_inc ?(by = 1) name = Metrics.inc ~by (Metrics.counter name)

(* ------------------------------------------------------------------ *)
(* Snapshot directory conventions                                      *)
(* ------------------------------------------------------------------ *)

let snap_name v = Printf.sprintf "snap.%016d.gfq" v

let snap_version_of_name name =
  if String.length name = 25 && String.sub name 0 5 = "snap." && String.sub name 21 4 = ".gfq"
  then int_of_string_opt (String.sub name 5 16)
  else None

(* Ascending by version (zero-padded names sort numerically). *)
let snapshot_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n -> snap_version_of_name n <> None)
      |> List.sort compare

(* Read-only snapshot handoff: a cluster worker starts by mapping the newest
   checksum-valid snapshot, never opening the WAL or taking the writer role —
   generations that fail validation are skipped, mirroring recovery's
   fallback. *)
let attach_snapshot dir =
  let rec pick = function
    | [] -> Error (Printf.sprintf "no loadable snapshot in %s" dir)
    | name :: older -> (
        match Graph_io.load_snapshot_versioned (Filename.concat dir name) with
        | Ok (g, wv) -> Ok (name, wv, g)
        | Error _ -> pick older)
  in
  pick (List.rev (snapshot_files dir))

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

exception Replay_fail of open_error

let apply_replay delta ~lsn op =
  let check = function
    | Ok _ ->
        if Delta.version delta <> lsn then
          raise
            (Replay_fail
               (Replay_apply
                  {
                    lsn;
                    what =
                      Printf.sprintf "version drift: delta at %d after record %d"
                        (Delta.version delta) lsn;
                  }))
    | Error e -> raise (Replay_fail (Replay_apply { lsn; what = Delta.error_to_string e }))
  in
  match op with
  | Wal.Add_edge { u; v; elabel } -> check (Delta.add_edge delta u v ~elabel)
  | Wal.Del_edge { u; v; elabel } -> check (Delta.del_edge delta u v ~elabel)
  | Wal.Add_vertex { label } -> check (Result.map ignore (Delta.add_vertex delta ~label))
  | Wal.Del_vertex { v } -> check (Delta.del_vertex delta v)
  | Wal.Checkpoint _ -> Delta.tick delta

let open_store ?(config = default_config) ~init dir =
  try
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    (* Newest snapshot that passes its checksums wins; every rejected
       generation becomes a warning, not a guess. *)
    let warnings = ref [] in
    let rec pick = function
      | [] -> (None, None)
      | name :: older -> (
          match Graph_io.load_snapshot_versioned (Filename.concat dir name) with
          | Ok (g, wv) -> (Some (name, g, wv), None)
          | Error e ->
              warnings :=
                Printf.sprintf "snapshot %s rejected: %s" name (Graph_io.load_error_to_string e)
                :: !warnings;
              let chosen, _ = pick older in
              (chosen, Some e))
    in
    let snaps_desc = List.rev (snapshot_files dir) in
    let chosen, first_err = pick snaps_desc in
    match (chosen, first_err, snaps_desc) with
    | None, Some e, _ :: _ -> Error (Snapshot_error e)
    | _ ->
        let base, from_v, snap_info =
          match chosen with
          | Some (name, g, wv) -> (g, wv, Some (name, wv))
          | None -> (init, 0, None)
        in
        let delta = Delta.create ~version:from_v base in
        let replayed = ref 0 in
        (match
           Wal.replay ~from_lsn:from_v dir (fun ~lsn op ->
               apply_replay delta ~lsn op;
               incr replayed)
         with
        | Error e -> Error (Wal_error e)
        | Ok _last ->
            (match
               Wal.open_log ~segment_bytes:config.segment_bytes
                 ~sync_every_append:config.sync_every_append dir
             with
            | Error e -> Error (Wal_error e)
            | Ok wal ->
                c_inc ~by:!replayed "gf_wal_records_replayed_total";
                if !replayed > 0 || snap_info <> None then c_inc "gf_wal_recoveries_total";
                Ok
                  {
                    cfg = config;
                    dir;
                    wal;
                    delta;
                    wm = Mutex.create ();
                    on_merge = (fun _ -> ());
                    failed = None;
                    ckpts = 0;
                    recovery =
                      { snapshot = snap_info; replayed = !replayed; warnings = List.rev !warnings };
                  }))
  with
  | Replay_fail e -> Error e
  | Unix.Unix_error (e, _, _) -> Error (Store_io (Unix.error_message e))
  | Sys_error msg -> Error (Store_io msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let recovery_info t = t.recovery
let config t = t.cfg
let dir t = t.dir
let graph t = Delta.graph t.delta
let version t = Delta.version t.delta
let graph_version t = Delta.merged_version t.delta
let durable_lsn t = Wal.durable_lsn t.wal
let pending t = Delta.pending t.delta
let live_edges t = Delta.live_edges t.delta
let live_vertices t = Delta.live_vertices t.delta
let set_on_merge t f = t.on_merge <- f
let checkpoints t = t.ckpts

(* ------------------------------------------------------------------ *)
(* Mutations                                                           *)
(* ------------------------------------------------------------------ *)

let with_writer t f =
  Mutex.lock t.wm;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.wm) f

let do_merge t =
  let g = Delta.merge t.delta in
  c_inc "gf_wal_merges_total";
  t.on_merge (Delta.merged_version t.delta);
  g

let fail t msg =
  t.failed <- Some msg;
  c_inc "gf_wal_failures_total";
  Error (Failed msg)

(* Delta-first, then log: the overlay validated and applied the change
   (bumping version), so the WAL record's LSN must land exactly on the
   new version — the invariant replay re-checks. An append failure after
   a successful apply leaves memory ahead of disk; the store goes
   read-only rather than risk acking writes it cannot recover. *)
let log_applied t op =
  match Wal.append t.wal op with
  | Error e -> fail t (Wal.error_to_string e)
  | Ok lsn ->
      if lsn <> Delta.version t.delta then
        fail t
          (Printf.sprintf "lsn %d diverged from delta version %d" lsn (Delta.version t.delta))
      else begin
        c_inc "gf_wal_appends_total";
        if t.cfg.merge_threshold > 0 && Delta.pending t.delta >= t.cfg.merge_threshold then
          ignore (do_merge t);
        Ok lsn
      end

let guarded t f =
  with_writer t (fun () ->
      match t.failed with Some msg -> Error (Failed msg) | None -> f ())

let add_edge t u v ~elabel =
  guarded t (fun () ->
      match Delta.add_edge t.delta u v ~elabel with
      | Error e ->
          c_inc "gf_wal_rejected_total";
          Error (Invalid e)
      | Ok applied ->
          Result.map (fun lsn -> (lsn, applied)) (log_applied t (Wal.Add_edge { u; v; elabel })))

let del_edge t u v ~elabel =
  guarded t (fun () ->
      match Delta.del_edge t.delta u v ~elabel with
      | Error e ->
          c_inc "gf_wal_rejected_total";
          Error (Invalid e)
      | Ok applied ->
          Result.map (fun lsn -> (lsn, applied)) (log_applied t (Wal.Del_edge { u; v; elabel })))

let add_vertex t ~label =
  guarded t (fun () ->
      match Delta.add_vertex t.delta ~label with
      | Error e ->
          c_inc "gf_wal_rejected_total";
          Error (Invalid e)
      | Ok id -> Result.map (fun lsn -> (lsn, id)) (log_applied t (Wal.Add_vertex { label })))

let del_vertex t v =
  guarded t (fun () ->
      match Delta.del_vertex t.delta v with
      | Error e ->
          c_inc "gf_wal_rejected_total";
          Error (Invalid e)
      | Ok applied -> Result.map (fun lsn -> (lsn, applied)) (log_applied t (Wal.Del_vertex { v })))

(* No writer lock: [Wal.sync] has its own group-commit discipline, and
   holding the writer lock across an fsync would stall appenders and
   shrink commit groups. *)
let sync t =
  match t.failed with
  | Some msg -> Error (Failed msg)
  | None -> (
      c_inc "gf_wal_syncs_total";
      match Wal.sync t.wal with
      | Ok lsn -> Ok lsn
      | Error e -> Error (Failed (Wal.error_to_string e)))

let merge_now t = with_writer t (fun () -> do_merge t)

let prune_snapshots t =
  let snaps = snapshot_files t.dir in
  let n = List.length snaps in
  if n > t.cfg.snapshots_kept then begin
    List.filteri (fun i _ -> i < n - t.cfg.snapshots_kept) snaps
    |> List.iter (fun name -> try Sys.remove (Filename.concat t.dir name) with Sys_error _ -> ());
    fsync_dir t.dir
  end

let checkpoint t =
  guarded t (fun () ->
      let ( let* ) = Result.bind in
      let wal_err = function Ok v -> Ok v | Error e -> fail t (Wal.error_to_string e) in
      (* 1. Everything appended so far becomes durable before the marker. *)
      let* _ = wal_err (Wal.sync t.wal) in
      (* 2. The checkpoint marker takes the next LSN; tick keeps the
         delta's version in lockstep. *)
      Delta.tick t.delta;
      let v = Delta.version t.delta in
      let* lsn = wal_err (Wal.append t.wal (Wal.Checkpoint { version = v })) in
      if lsn <> v then fail t (Printf.sprintf "checkpoint lsn %d diverged from version %d" lsn v)
      else
        let* _ = wal_err (Wal.sync t.wal) in
        (* 3. Fold the overlay into a fresh CSR at exactly [v]. *)
        let g = do_merge t in
        (* 4. Publish the snapshot atomically; the pre-rename fault point
           proves a half-finished checkpoint is invisible to recovery. *)
        match
          Graph_io.save_snapshot_as ~version:2 ~wal_version:v
            ~before_rename:(fun _ -> Fault.hit Fault.Checkpoint_mid_rename)
            g
            (Filename.concat t.dir (snap_name v))
        with
        | exception Unix.Unix_error (e, _, _) -> fail t (Unix.error_message e)
        | exception Sys_error msg -> fail t msg
        | () ->
            fsync_dir t.dir;
            (* 5. The log prefix up to [v] is now redundant: rotate so the
               open segment starts past it, then drop covered segments.
               A crash anywhere in here is harmless — replay skips
               records at or below the snapshot's version. *)
            let* () = wal_err (Wal.rotate t.wal) in
            prune_snapshots t;
            (* Drop only segments no retained snapshot generation needs:
               fall-back recovery may seat the OLDEST surviving snapshot
               and must still find every record past its version. *)
            let keep_from =
              match List.filter_map snap_version_of_name (snapshot_files t.dir) with
              | [] -> v
              | vs -> List.fold_left min v vs
            in
            let* _ = wal_err (Wal.drop_segments_below t.wal (keep_from + 1)) in
            t.ckpts <- t.ckpts + 1;
            c_inc "gf_wal_checkpoints_total";
            Ok v)

let close t = Wal.close t.wal
