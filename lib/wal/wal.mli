(** Append-only write-ahead log for graph mutations.

    On-disk layout: a directory of segments [wal.<seq>.log], [seq]
    zero-padded to 8 digits and strictly increasing. Each segment opens
    with a 24-byte header — magic ["GFQWAL1\n"], format version (u64),
    and the LSN of its first record (u64) — followed by framed records:

    {v [len u32][crc32 u32][payload (len bytes)] v}

    where the CRC covers the payload only and the payload begins with an
    op byte ('E' add-edge, 'R' del-edge, 'V' add-vertex, 'X' del-vertex,
    'C' checkpoint) followed by little-endian u64 operands, the first of
    which is always the record's LSN. LSNs are assigned 1, 2, 3, … with
    no gaps across segments.

    Durability contract: {!append} buffers; a record is durable only once
    a {!sync} whose [durable_lsn] covers it returns. Group commit batches
    concurrent syncers behind one [fsync] — a leader flushes for every
    record appended up to the moment it syncs, followers just wait for a
    covering flush — so the fsync cost is shared across writers without
    weakening the ack rule (ack only after a covering sync).

    Recovery ({!replay}): segments are read in sequence order, each record
    re-framed and CRC-checked, LSN continuity enforced. A torn tail (short
    frame or CRC mismatch) is legal {e only} in the last segment — the
    signature of a crash mid-append — and is truncated away so the log is
    again well-formed; anywhere else it is [Corrupt]. A missing leading
    segment whose records would still be needed is [Missing_prefix]. *)

type op =
  | Add_edge of { u : int; v : int; elabel : int }
  | Del_edge of { u : int; v : int; elabel : int }
  | Add_vertex of { label : int }
  | Del_vertex of { v : int }
  | Checkpoint of { version : int }
      (** marks a durable snapshot at [version]; replay skips it *)

type error =
  | Corrupt of { segment : string; offset : int; what : string }
      (** torn or CRC-failing record anywhere but the final tail *)
  | Missing_prefix of { need_lsn : int; first_lsn : int }
      (** the oldest surviving segment starts after the replay point *)
  | Io of string

val error_to_string : error -> string

type t

(** [open_log ?segment_bytes ?sync_every_append dir] opens (creating if
    needed) the log in [dir], scans existing segments to find the next
    LSN, and starts a fresh segment. [segment_bytes] (default 8 MiB) is
    the rotation threshold: an append that would push the current segment
    past it rotates first. [sync_every_append] (default [false]) fsyncs
    on every append — the simple policy benchmarked against group
    commit. *)
val open_log : ?segment_bytes:int -> ?sync_every_append:bool -> string -> (t, error) result

(** Next LSN to be assigned (1 on an empty log). *)
val next_lsn : t -> int

(** Highest LSN covered by a completed fsync; 0 before any. *)
val durable_lsn : t -> int

(** [append t op] frames and buffers the record, returning its LSN. Not
    durable until a covering {!sync}. Thread-safe. *)
val append : t -> op -> (int, error) result

(** [sync t] ensures every record appended before the call is on disk
    (group commit: one caller leads the fsync, concurrent callers ride
    along), returning the new [durable_lsn]. *)
val sync : t -> (int, error) result

(** [rotate t] closes the current segment and starts the next one.
    Automatic when [segment_bytes] is exceeded; explicit after a
    checkpoint so old segments become deletable. *)
val rotate : t -> (unit, error) result

(** [drop_segments_below t lsn] deletes closed segments whose every
    record has LSN < [lsn] — safe once a snapshot at [lsn - 1] or later
    is durable. Returns the number of segment files removed. *)
val drop_segments_below : t -> int -> (int, error) result

val close : t -> unit

(** Number of [fsync] calls issued so far (group-commit effectiveness). *)
val fsyncs : t -> int

(** {1 Recovery} *)

(** [replay ?from_lsn dir f] folds [f] over every well-formed record with
    LSN > [from_lsn] (default 0) across all segments in order, verifying
    frames, CRCs, and LSN continuity. A torn tail in the {e final}
    segment is truncated (the file is rewritten to end at the last valid
    record) and replay succeeds; corruption anywhere else fails. Returns
    the last LSN seen (which is [from_lsn] on an empty log). *)
val replay : ?from_lsn:int -> string -> (lsn:int -> op -> unit) -> (int, error) result

(** [segment_files dir] lists segment basenames in ascending sequence
    order (exposed for tests and the torture verifier). *)
val segment_files : string -> string list
