module Graph = Gf_graph.Graph
module Delta = Gf_graph.Delta
module Rng = Gf_util.Rng

type config = {
  seed : int;
  ops : int;
  init_vertices : int;
  init_edges : int;
  num_vlabels : int;
  num_elabels : int;
  sync_every : int;
  checkpoint_every : int;
  crash : (Fault.point * int) option;
  store_cfg : Store.config;
}

let default ~seed =
  {
    seed;
    ops = 400;
    init_vertices = 60;
    init_edges = 300;
    num_vlabels = 3;
    num_elabels = 2;
    sync_every = 4;
    checkpoint_every = 64;
    crash = None;
    store_cfg =
      {
        Store.default_config with
        (* Small segments so rotation happens inside a torture round. *)
        segment_bytes = 2048;
        merge_threshold = 48;
      };
  }

type outcome = {
  crashed : bool;
  acked_ops : int;
  acked_lsn : int;
  recovered_lsn : int;
  covered_ops : int;
  replayed : int;
  used_snapshot : bool;
}

let pp_outcome o =
  Printf.sprintf
    "crashed=%b acked_ops=%d acked_lsn=%d recovered_lsn=%d covered_ops=%d replayed=%d snapshot=%b"
    o.crashed o.acked_ops o.acked_lsn o.recovered_lsn o.covered_ops o.replayed o.used_snapshot

(* ------------------------------------------------------------------ *)
(* Deterministic inputs                                                *)
(* ------------------------------------------------------------------ *)

let init_graph cfg =
  let rng = Rng.create ((cfg.seed * 2) + 1) in
  let n = cfg.init_vertices in
  let vlabel = Array.init n (fun _ -> Rng.int rng cfg.num_vlabels) in
  let edges =
    Array.init cfg.init_edges (fun _ ->
        (Rng.int rng n, Rng.int rng n, Rng.int rng cfg.num_elabels))
  in
  Graph.build ~num_vlabels:cfg.num_vlabels ~num_elabels:cfg.num_elabels ~vlabel ~edges

type op = Add of int * int * int | Del of int * int * int | Addv of int | Delv of int

(* Exactly four draws per op regardless of which arm is taken, so the
   child's stream and the parent's re-simulation can never diverge. *)
let draw_op rng cfg nverts =
  let r = Rng.int rng 100 in
  let a = Rng.int rng (max 1 nverts) in
  let b = Rng.int rng (max 1 nverts) in
  let c = Rng.int rng (max cfg.num_vlabels cfg.num_elabels) in
  if r < 65 then Add (a, b, c mod cfg.num_elabels)
  else if r < 85 then Del (a, b, c mod cfg.num_elabels)
  else if r < 96 then Addv (c mod cfg.num_vlabels)
  else Delv a

let ops_rng cfg = Rng.create ((cfg.seed * 2) + 2)

(* ------------------------------------------------------------------ *)
(* Paths and the ack channel                                           *)
(* ------------------------------------------------------------------ *)

let data_dir dir = Filename.concat dir "data"
let ack_path dir = Filename.concat dir "acks.log"

let write_ack fd ~ops ~lsn =
  let line = Printf.sprintf "%d %d\n" ops lsn in
  let b = Bytes.of_string line in
  let n = Unix.write fd b 0 (Bytes.length b) in
  ignore n;
  Unix.fsync fd

(* Last parseable line wins; a line torn by the kill is skipped. *)
let read_acks dir =
  match open_in (ack_path dir) with
  | exception Sys_error _ -> (0, 0)
  | ic ->
      let best = ref (0, 0) in
      (try
         while true do
           let line = input_line ic in
           match String.split_on_char ' ' (String.trim line) with
           | [ a; b ] -> (
               match (int_of_string_opt a, int_of_string_opt b) with
               | Some ops, Some lsn -> best := (ops, lsn)
               | _ -> ())
           | _ -> ()
         done
       with End_of_file -> ());
      close_in_noerr ic;
      !best

(* ------------------------------------------------------------------ *)
(* The child: mutate, sync, ack, die                                   *)
(* ------------------------------------------------------------------ *)

let apply_store st = function
  | Add (u, v, el) -> Result.map (fun _ -> ()) (Store.add_edge st u v ~elabel:el)
  | Del (u, v, el) -> Result.map (fun _ -> ()) (Store.del_edge st u v ~elabel:el)
  | Addv l -> Result.map (fun _ -> ()) (Store.add_vertex st ~label:l)
  | Delv v -> Result.map (fun _ -> ()) (Store.del_vertex st v)

let child_main cfg dir =
  (match cfg.crash with Some (p, after) -> Fault.arm p ~after | None -> ());
  let init = init_graph cfg in
  match Store.open_store ~config:cfg.store_cfg ~init (data_dir dir) with
  | Error e ->
      prerr_endline (Store.open_error_to_string e);
      exit 2
  | Ok st ->
      let ack_fd =
        Unix.openfile (ack_path dir) [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
      in
      let rng = ops_rng cfg in
      let fatal tag = function
        | Error (Store.Failed msg) ->
            prerr_endline (tag ^ ": " ^ msg);
            exit 3
        | Error (Store.Invalid _) | Ok _ -> ()
      in
      for i = 0 to cfg.ops - 1 do
        let op = draw_op rng cfg (Store.live_vertices st) in
        fatal "apply" (apply_store st op);
        if (i + 1) mod cfg.sync_every = 0 then begin
          match Store.sync st with
          | Error (Store.Failed msg) ->
              prerr_endline ("sync: " ^ msg);
              exit 3
          | Error (Store.Invalid _) -> ()
          | Ok durable -> write_ack ack_fd ~ops:(i + 1) ~lsn:durable
        end;
        if cfg.checkpoint_every > 0 && (i + 1) mod cfg.checkpoint_every = 0 then begin
          match Store.checkpoint st with
          | Error (Store.Failed msg) ->
              prerr_endline ("checkpoint: " ^ msg);
              exit 3
          | Error (Store.Invalid _) -> ()
          | Ok v -> write_ack ack_fd ~ops:(i + 1) ~lsn:v
        end
      done;
      (match Store.sync st with
      | Ok durable -> write_ack ack_fd ~ops:cfg.ops ~lsn:durable
      | Error _ -> ());
      Unix.close ack_fd;
      Store.close st;
      exit 0

(* ------------------------------------------------------------------ *)
(* The parent: re-simulate to the recovered LSN                        *)
(* ------------------------------------------------------------------ *)

let apply_delta d = function
  | Add (u, v, el) -> Result.map (fun _ -> ()) (Delta.add_edge d u v ~elabel:el)
  | Del (u, v, el) -> Result.map (fun _ -> ()) (Delta.del_edge d u v ~elabel:el)
  | Addv l -> Result.map (fun _ -> ()) (Delta.add_vertex d ~label:l)
  | Delv v -> Result.map (fun _ -> ()) (Delta.del_vertex d v)

(* Replays the deterministic op stream over a fresh delta until the
   simulated LSN reaches [target] — applied ops consume one LSN each
   (including noops), refused ops none, and each checkpoint the child
   would have taken consumes one for its marker. Returns the delta and
   how many ops the target covers. *)
let simulate cfg ~target =
  let d = Delta.create (init_graph cfg) in
  let rng = ops_rng cfg in
  let lsn = ref 0 in
  let covered = ref 0 in
  let i = ref 0 in
  while !lsn < target && !i < cfg.ops do
    let op = draw_op rng cfg (Delta.live_vertices d) in
    (match apply_delta d op with Ok () -> incr lsn | Error _ -> ());
    incr i;
    covered := !i;
    if !lsn < target && cfg.checkpoint_every > 0 && !i mod cfg.checkpoint_every = 0 then
      incr lsn (* the checkpoint marker the child logged here *)
  done;
  if !lsn <> target then
    Error (Printf.sprintf "simulation exhausted %d ops at lsn %d, target %d" !i !lsn target)
  else Ok (d, !covered)

let graph_state g =
  let edges = Graph.edge_array g in
  Array.sort compare edges;
  let labels = Array.init (Graph.num_vertices g) (Graph.vlabel g) in
  (edges, labels)

let delta_state d =
  let edges = Delta.edge_array d in
  Array.sort compare edges;
  let labels = Array.init (Delta.live_vertices d) (Delta.vlabel d) in
  (edges, labels)

let diff_states (re, rl) (ee, el) =
  if Array.length rl <> Array.length el then
    Some (Printf.sprintf "vertex count: recovered %d, expected %d" (Array.length rl) (Array.length el))
  else if rl <> el then Some "vertex labels differ"
  else if Array.length re <> Array.length ee then
    Some (Printf.sprintf "edge count: recovered %d, expected %d" (Array.length re) (Array.length ee))
  else if re <> ee then Some "edge arrays differ"
  else None

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let fresh_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go k =
    let d = Filename.concat base (Printf.sprintf "gfq_torture.%d.%d" (Unix.getpid ()) k) in
    match Unix.mkdir d 0o755 with () -> d | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (k + 1)
  in
  go 0

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (try Sys.readdir path with Sys_error _ -> [||]);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let verify cfg dir ~crashed finish fail =
  let acked_ops, acked_lsn = read_acks dir in
  match Store.open_store ~config:cfg.store_cfg ~init:(init_graph cfg) (data_dir dir) with
  | Error e -> fail (Printf.sprintf "recovery refused: %s" (Store.open_error_to_string e))
  | Ok st ->
      let recovered_lsn = Store.version st in
      let info = Store.recovery_info st in
      if recovered_lsn < acked_lsn then
        fail
          (Printf.sprintf "lost acked writes: acked lsn %d, recovered only %d" acked_lsn
             recovered_lsn)
      else (
        match simulate cfg ~target:recovered_lsn with
        | Error msg -> fail (Printf.sprintf "cannot reproduce recovered lsn: %s" msg)
        | Ok (expected, covered_ops) -> (
            let rec_state = graph_state (Store.merge_now st) in
            let exp_state = delta_state expected in
            Store.close st;
            match diff_states rec_state exp_state with
            | Some what ->
                fail
                  (Printf.sprintf "recovered state diverges at lsn %d: %s" recovered_lsn what)
            | None ->
                finish
                  (Ok
                     {
                       crashed;
                       acked_ops;
                       acked_lsn;
                       recovered_lsn;
                       covered_ops;
                       replayed = info.Store.replayed;
                       used_snapshot = info.Store.snapshot <> None;
                     })))

let run ?dir ?(keep = false) cfg =
  let dir, own_dir = match dir with Some d -> (d, false) | None -> (fresh_dir (), true) in
  (* Flush before forking so buffered output is not emitted twice. *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 -> ( try child_main cfg dir with _ -> exit 4)
  | pid -> (
      let _, status = Unix.waitpid [] pid in
      let crashed = status = Unix.WSIGNALED Sys.sigkill in
      let finish r =
        if own_dir && not keep && Result.is_ok r then rm_rf dir;
        r
      in
      let fail s = finish (Error (s ^ " [dir " ^ dir ^ "]")) in
      match status with
      | Unix.WEXITED 0 ->
          (* With a crash armed this is still legal: the armed point was
             never reached (crash_after beyond the number of hits).
             Verify the final state either way. *)
          verify cfg dir ~crashed:false finish fail
      | _ when crashed -> verify cfg dir ~crashed:true finish fail
      | Unix.WEXITED n -> fail (Printf.sprintf "child exited %d without crashing" n)
      | Unix.WSIGNALED s -> fail (Printf.sprintf "child killed by unexpected signal %d" s)
      | Unix.WSTOPPED s -> fail (Printf.sprintf "child stopped by signal %d" s))
