(** The durable graph store: snapshot + WAL + delta overlay, with the
    recovery state machine that stitches them back together after a
    crash.

    On disk, a data directory holds:

    - [snap.<version>.gfq] — CSR snapshots ({!Gf_graph.Graph_io} format
      v2), named by the WAL version they reflect; the newest {e valid}
      one wins, older ones are kept as fallback against bit rot
    - [wal.<seq>.log] — write-ahead log segments ({!Wal})

    Opening runs recovery: load the newest snapshot that passes its
    checksums (falling back to older ones, recording a warning per
    rejected file), seat it in a fresh {!Gf_graph.Delta}, then replay
    every WAL record with LSN past the snapshot's version. A torn tail in
    the final segment is truncated (crash mid-append); corruption
    anywhere else, or a log whose oldest surviving segment starts after
    the snapshot's version ({e ahead-of-snapshot}), refuses to open with
    a structured error rather than serving a silently wrong graph.

    Runtime writes go delta-first: validate + apply to the overlay, then
    append the WAL record (the assigned LSN always equals the delta's
    version — the recovery invariant), then acknowledge only once a
    covering {!sync} has returned. With [sync_every_append] the append
    itself syncs; otherwise callers group-commit through {!sync}.

    A single writer mutex serializes mutations; reads ({!graph}) are
    lock-free pointer loads of the current merged CSR, so the query path
    is untouched by all of this. *)

type t

type config = {
  segment_bytes : int;  (** WAL segment rotation threshold *)
  sync_every_append : bool;  (** fsync per record instead of group commit *)
  merge_threshold : int;
      (** fold the overlay into a fresh CSR once this many operations are
          pending; 0 disables auto-merge (merge only at checkpoint) *)
  snapshots_kept : int;  (** how many generations of snapshots to retain *)
}

val default_config : config

(** Why the store refused to open. Every case is a refusal to serve
    possibly-wrong data, never a best-effort guess. *)
type open_error =
  | Wal_error of Wal.error  (** corrupt / ahead-of-snapshot log *)
  | Snapshot_error of Gf_graph.Graph_io.load_error
      (** snapshots exist but none passes validation *)
  | Replay_apply of { lsn : int; what : string }
      (** a logged record was refused by the delta — the log and the
          snapshot disagree structurally *)
  | Store_io of string

val open_error_to_string : open_error -> string

(** What recovery did, for operators and the torture verifier. *)
type recovery = {
  snapshot : (string * int) option;  (** basename and version seated, if any *)
  replayed : int;  (** WAL records applied past the snapshot *)
  warnings : string list;  (** rejected snapshot generations, etc. *)
}

(** [open_store ?config ~init dir] creates [dir] if needed and runs
    recovery. [init] is the genesis graph used when no snapshot exists
    yet (a freshly loaded dataset, or an empty graph). *)
val open_store : ?config:config -> init:Gf_graph.Graph.t -> string -> (t, open_error) result

(** [attach_snapshot dir] maps the newest checksum-valid snapshot in [dir]
    read-only — [(basename, version, graph)] — without opening the WAL or
    taking the writer role. The cluster worker's instant-start path: a
    worker seeds itself from the store a checkpointing writer maintains,
    skipping generations that fail validation exactly as recovery would.
    Pending WAL records past the snapshot are not replayed (workers serve
    the checkpointed version; the version travels in shard replies so skew
    is visible). *)
val attach_snapshot : string -> (string * int * Gf_graph.Graph.t, string) result

val recovery_info : t -> recovery
val config : t -> config
val dir : t -> string

(** The current merged CSR — what queries execute against. Lock-free. *)
val graph : t -> Gf_graph.Graph.t

(** Version of the last applied record (= last assigned LSN). *)
val version : t -> int

(** Version the merged CSR reflects; bumps exactly when a merge publishes
    a new CSR — the invalidation key for plan/catalogue caches. *)
val graph_version : t -> int

val durable_lsn : t -> int
val pending : t -> int
val live_edges : t -> int
val live_vertices : t -> int

(** [set_on_merge t f] registers [f], called with the new merged version
    (under the writer lock) each time a merge publishes a new CSR. *)
val set_on_merge : t -> (int -> unit) -> unit

(** Why a mutation was refused: [Invalid] is the client's fault
    (structured delta validation), [Failed] means the log itself failed
    mid-write and the store went read-only to avoid diverging from disk. *)
type mut_error = Invalid of Gf_graph.Delta.error | Failed of string

val mut_error_to_string : mut_error -> string

(** Each mutation returns its LSN; it is durable (and may be acked) only
    once [durable_lsn] covers it — call {!sync} first unless the store
    runs [sync_every_append]. *)

val add_edge : t -> int -> int -> elabel:int -> (int * Gf_graph.Delta.applied, mut_error) result

val del_edge : t -> int -> int -> elabel:int -> (int * Gf_graph.Delta.applied, mut_error) result

(** Returns [(lsn, vertex_id)]. *)
val add_vertex : t -> label:int -> (int * int, mut_error) result

val del_vertex : t -> int -> (int * Gf_graph.Delta.applied, mut_error) result

(** Group-commit barrier: returns once every previously appended record
    is fsynced (one caller leads, concurrent callers ride along). *)
val sync : t -> (int, mut_error) result

(** [checkpoint t] makes the log prefix disposable: sync, log a
    checkpoint marker, merge the overlay, write a fresh snapshot (v2,
    checksummed) at the resulting version, rotate the WAL, drop wholly
    covered segments, and prune old snapshot generations. Returns the
    snapshot version. *)
val checkpoint : t -> (int, mut_error) result

(** Force a merge outside checkpoint (bench, tests). *)
val merge_now : t -> Gf_graph.Graph.t

(** Number of checkpoints taken since open. *)
val checkpoints : t -> int

val close : t -> unit
