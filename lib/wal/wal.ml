module Crc32 = Gf_util.Crc32

type op =
  | Add_edge of { u : int; v : int; elabel : int }
  | Del_edge of { u : int; v : int; elabel : int }
  | Add_vertex of { label : int }
  | Del_vertex of { v : int }
  | Checkpoint of { version : int }

type error =
  | Corrupt of { segment : string; offset : int; what : string }
  | Missing_prefix of { need_lsn : int; first_lsn : int }
  | Io of string

let error_to_string = function
  | Corrupt { segment; offset; what } ->
      Printf.sprintf "wal: corrupt record in %s at offset %d: %s" segment offset what
  | Missing_prefix { need_lsn; first_lsn } ->
      Printf.sprintf
        "wal: missing prefix: replay needs lsn %d but the oldest surviving segment starts at %d"
        need_lsn first_lsn
  | Io msg -> "wal: io error: " ^ msg

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let seg_magic = "GFQWAL1\n"
let seg_format = 1
let seg_header_size = 24

let seg_name seq = Printf.sprintf "wal.%08d.log" seq

let seg_seq_of_name name =
  if String.length name = 16 && String.sub name 0 4 = "wal." && String.sub name 12 4 = ".log"
  then int_of_string_opt (String.sub name 4 8)
  else None

let segment_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n -> seg_seq_of_name n <> None)
      |> List.sort compare (* zero-padded: lexicographic = numeric *)

(* Payload: op byte + little-endian u64 operands, lsn first. *)
let encode ~lsn op =
  let fields =
    match op with
    | Add_edge { u; v; elabel } -> ('E', [ lsn; u; v; elabel ])
    | Del_edge { u; v; elabel } -> ('R', [ lsn; u; v; elabel ])
    | Add_vertex { label } -> ('V', [ lsn; label ])
    | Del_vertex { v } -> ('X', [ lsn; v ])
    | Checkpoint { version } -> ('C', [ lsn; version ])
  in
  let tag, xs = fields in
  let b = Bytes.create (1 + (8 * List.length xs)) in
  Bytes.set b 0 tag;
  List.iteri (fun i x -> Bytes.set_int64_le b (1 + (8 * i)) (Int64.of_int x)) xs;
  b

(* Returns [Ok (lsn, op)] or [Error what]. Length must match the op's
   fixed operand count exactly. *)
let decode payload =
  let len = Bytes.length payload in
  let u64 i = Int64.to_int (Bytes.get_int64_le payload (1 + (8 * i))) in
  let need k what =
    if len <> 1 + (8 * k) then Error (Printf.sprintf "bad %s length %d" what len) else Ok ()
  in
  if len < 9 then Error (Printf.sprintf "payload too short (%d bytes)" len)
  else
    match Bytes.get payload 0 with
    | 'E' ->
        Result.map (fun () -> (u64 0, Add_edge { u = u64 1; v = u64 2; elabel = u64 3 })) (need 4 "add-edge")
    | 'R' ->
        Result.map (fun () -> (u64 0, Del_edge { u = u64 1; v = u64 2; elabel = u64 3 })) (need 4 "del-edge")
    | 'V' -> Result.map (fun () -> (u64 0, Add_vertex { label = u64 1 })) (need 2 "add-vertex")
    | 'X' -> Result.map (fun () -> (u64 0, Del_vertex { v = u64 1 })) (need 2 "del-vertex")
    | 'C' -> Result.map (fun () -> (u64 0, Checkpoint { version = u64 1 })) (need 2 "checkpoint")
    | c -> Error (Printf.sprintf "unknown op byte 0x%02x" (Char.code c))

let frame payload =
  let plen = Bytes.length payload in
  let b = Bytes.create (8 + plen) in
  Bytes.set_int32_le b 0 (Int32.of_int plen);
  Bytes.set_int32_le b 4 (Crc32.bytes payload);
  Bytes.blit payload 0 b 8 plen;
  b

let max_payload = 1 lsl 16

(* ------------------------------------------------------------------ *)
(* Low-level IO                                                        *)
(* ------------------------------------------------------------------ *)

let write_all fd buf pos len =
  let off = ref pos and left = ref len in
  while !left > 0 do
    let k = Unix.write fd buf !off !left in
    off := !off + k;
    left := !left - k
  done

let read_exact fd buf len =
  let got = ref 0 in
  (try
     while !got < len do
       let k = Unix.read fd buf !got (len - !got) in
       if k = 0 then raise Exit;
       got := !got + k
     done
   with Exit -> ());
  !got

(* Persist a directory entry (segment creation, deletion): fsync the
   directory itself. Best-effort on filesystems that refuse it. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let make_header ~first_lsn =
  let b = Bytes.create seg_header_size in
  Bytes.blit_string seg_magic 0 b 0 8;
  Bytes.set_int64_le b 8 (Int64.of_int seg_format);
  Bytes.set_int64_le b 16 (Int64.of_int first_lsn);
  b

(* [Ok first_lsn] or [Error what]; short header is reported as [Error]. *)
let read_header fd =
  let b = Bytes.create seg_header_size in
  let got = read_exact fd b seg_header_size in
  if got < seg_header_size then Error "short segment header"
  else if Bytes.sub_string b 0 8 <> seg_magic then Error "bad segment magic"
  else if Int64.to_int (Bytes.get_int64_le b 8) <> seg_format then
    Error
      (Printf.sprintf "unsupported wal format %d" (Int64.to_int (Bytes.get_int64_le b 8)))
  else Ok (Int64.to_int (Bytes.get_int64_le b 16))

let header_first_lsn dir name =
  match Unix.openfile (Filename.concat dir name) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd ->
      let r = read_header fd in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      r

(* ------------------------------------------------------------------ *)
(* Scanning (open + replay share this)                                 *)
(* ------------------------------------------------------------------ *)

exception Scan_err of error

(* Reads every record of one segment starting at [expect_lsn], calling
   [f ~lsn op] for records with lsn > from_lsn. [last] = is this the
   final segment (a torn tail is then repaired by truncation, or the
   whole file removed if even the header is torn). Returns the next
   expected lsn. *)
let scan_segment dir name ~expect_lsn ~from_lsn ~last ~repair f =
  let path = Filename.concat dir name in
  let corrupt offset what = raise (Scan_err (Corrupt { segment = name; offset; what })) in
  let fd =
    match Unix.openfile path [ Unix.O_RDONLY ] 0 with
    | fd -> fd
    | exception Unix.Unix_error (e, _, _) -> raise (Scan_err (Io (Unix.error_message e)))
  in
  let truncate_at offset =
    (* Torn tail in the final segment: cut the file back to the last
       well-formed record so the log is again parseable end to end. *)
    if repair then begin
      let wfd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate wfd offset;
      (try Unix.fsync wfd with Unix.Unix_error _ -> ());
      Unix.close wfd
    end
  in
  let remove_file () =
    if repair then begin
      (try Sys.remove path with Sys_error _ -> ());
      fsync_dir dir
    end
  in
  let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
  Fun.protect ~finally (fun () ->
      match read_header fd with
      | Error what ->
          if last then begin
            remove_file ();
            expect_lsn
          end
          else corrupt 0 what
      | Ok first_lsn ->
          if first_lsn <> expect_lsn then
            corrupt 16 (Printf.sprintf "segment starts at lsn %d, expected %d" first_lsn expect_lsn);
          let pos = ref seg_header_size in
          let lsn = ref expect_lsn in
          let hdr = Bytes.create 8 in
          let stop = ref false in
          while not !stop do
            let torn what = if last then (truncate_at !pos; stop := true) else corrupt !pos what in
            let got = read_exact fd hdr 8 in
            if got = 0 then stop := true
            else if got < 8 then torn "short frame header"
            else begin
              let plen = Int32.to_int (Bytes.get_int32_le hdr 0) in
              let crc = Bytes.get_int32_le hdr 4 in
              if plen < 9 || plen > max_payload then
                torn (Printf.sprintf "implausible record length %d" plen)
              else begin
                let payload = Bytes.create plen in
                let pgot = read_exact fd payload plen in
                if pgot < plen then torn "short record payload"
                else if Crc32.bytes payload <> crc then torn "crc mismatch"
                else
                  match decode payload with
                  | Error what -> corrupt !pos what
                  | Ok (rlsn, op) ->
                      if rlsn <> !lsn then
                        corrupt !pos (Printf.sprintf "lsn %d out of sequence, expected %d" rlsn !lsn);
                      if rlsn > from_lsn then f ~lsn:rlsn op;
                      incr lsn;
                      pos := !pos + 8 + plen
              end
            end
          done;
          !lsn)

(* Walks segments in order, enforcing header continuity, starting at the
   latest segment that still covers [from_lsn + 1]. [check_prefix] makes
   a gap before the replay point a hard [Missing_prefix] error (recovery);
   open-time scans pass [false] and start wherever the log starts. *)
let scan dir ~from_lsn ~check_prefix ~repair f =
  let segs = segment_files dir in
  match segs with
  | [] -> Ok from_lsn
  | _ -> (
      try
        let headed =
          List.map
            (fun name ->
              match header_first_lsn dir name with
              | Ok l -> (name, Some l)
              | Error _ -> (name, None))
            segs
        in
        (* A header-torn file is only tolerable as the final segment. *)
        let last_name = fst (List.nth headed (List.length headed - 1)) in
        List.iter
          (fun (name, h) ->
            if h = None && name <> last_name then
              raise (Scan_err (Corrupt { segment = name; offset = 0; what = "short segment header" })))
          headed;
        let need = from_lsn + 1 in
        let with_hdr = List.filter_map (fun (n, h) -> Option.map (fun l -> (n, l)) h) headed in
        let start =
          List.fold_left
            (fun acc (n, l) -> if l <= need then Some (n, l) else acc)
            None with_hdr
        in
        let start_name, start_lsn =
          match (start, with_hdr) with
          | Some s, _ -> s
          | None, (n, l) :: _ ->
              if check_prefix then raise (Scan_err (Missing_prefix { need_lsn = need; first_lsn = l }))
              else (n, l)
          | None, [] ->
              (* only a header-torn final segment exists *)
              (last_name, need)
        in
        let active = List.filter (fun (n, _) -> n >= start_name) headed in
        let expect = ref start_lsn in
        List.iter
          (fun (name, _) ->
            expect := scan_segment dir name ~expect_lsn:!expect ~from_lsn ~last:(name = last_name) ~repair f)
          active;
        Ok (!expect - 1)
      with
      | Scan_err e -> Error e
      | Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
      | Sys_error msg -> Error (Io msg))

let replay ?(from_lsn = 0) dir f = scan dir ~from_lsn ~check_prefix:true ~repair:true f

(* ------------------------------------------------------------------ *)
(* The writer                                                          *)
(* ------------------------------------------------------------------ *)

type t = {
  dir : string;
  segment_bytes : int;
  sync_every_append : bool;
  m : Mutex.t;
  done_cond : Condition.t;
  mutable fd : Unix.file_descr;
  mutable seg_seq : int;
  mutable seg_pos : int;  (** bytes written to the current segment *)
  mutable next : int;  (** next LSN to assign *)
  mutable appended : int;  (** last LSN handed to the OS *)
  mutable durable : int;  (** last LSN covered by a completed fsync *)
  mutable fsync_count : int;
  mutable closed : bool;
}

let next_lsn t = t.next
let durable_lsn t = t.durable
let fsyncs t = t.fsync_count

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Create segment [seq] starting at [first_lsn]; header written and
   fsynced, directory entry persisted. *)
let create_segment dir seq ~first_lsn =
  let path = Filename.concat dir (seg_name seq) in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644 in
  let hdr = make_header ~first_lsn in
  write_all fd hdr 0 seg_header_size;
  (try Unix.fsync fd with Unix.Unix_error _ -> ());
  fsync_dir dir;
  fd

let open_log ?(segment_bytes = 8 * 1024 * 1024) ?(sync_every_append = false) dir =
  try
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    (* Validate + repair whatever survived, find the next LSN. *)
    match scan dir ~from_lsn:0 ~check_prefix:false ~repair:true (fun ~lsn:_ _ -> ()) with
    | Error _ as e -> e
    | Ok last ->
        let last_seq =
          List.fold_left
            (fun acc n -> match seg_seq_of_name n with Some s -> max acc s | None -> acc)
            0 (segment_files dir)
        in
        let next = last + 1 in
        (* A fresh segment on every open: recovery never appends into a
           possibly-torn tail, it starts a clean file. *)
        let fd = create_segment dir (last_seq + 1) ~first_lsn:next in
        Ok
          {
            dir;
            segment_bytes;
            sync_every_append;
            m = Mutex.create ();
            done_cond = Condition.create ();
            fd;
            seg_seq = last_seq + 1;
            seg_pos = seg_header_size;
            next;
            appended = next - 1;
            durable = next - 1;
            fsync_count = 0;
            closed = false;
          }
  with
  | Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
  | Sys_error msg -> Error (Io msg)

let rotate_locked t =
  (* New segment first, then retire the old one — the window where crash
     torture kills us with both files on disk. *)
  let nfd = create_segment t.dir (t.seg_seq + 1) ~first_lsn:t.next in
  Fault.hit Fault.Wal_mid_rotation;
  (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  t.fd <- nfd;
  t.seg_seq <- t.seg_seq + 1;
  t.seg_pos <- seg_header_size

let fsync_locked t =
  let target = t.appended in
  Fault.hit Fault.Wal_pre_fsync;
  Unix.fsync t.fd;
  t.fsync_count <- t.fsync_count + 1;
  if target > t.durable then t.durable <- target;
  Condition.broadcast t.done_cond

let append t op =
  try
    locked t (fun () ->
        if t.closed then Error (Io "log closed")
        else begin
          let lsn = t.next in
          let b = frame (encode ~lsn op) in
          let len = Bytes.length b in
          if t.seg_pos + len > t.segment_bytes && t.seg_pos > seg_header_size then rotate_locked t;
          (* Two writes with a fault point between them: an armed
             mid-record crash leaves a genuinely torn frame for recovery
             to truncate. *)
          let half = len / 2 in
          write_all t.fd b 0 half;
          Fault.hit Fault.Wal_mid_record;
          write_all t.fd b half (len - half);
          t.seg_pos <- t.seg_pos + len;
          t.next <- lsn + 1;
          t.appended <- lsn;
          if t.sync_every_append then fsync_locked t;
          Ok lsn
        end)
  with
  | Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
  | Sys_error msg -> Error (Io msg)

let sync t =
  try
    locked t (fun () ->
        if t.closed then Error (Io "log closed")
        else begin
          let target = t.appended in
          (* Group commit: whoever gets the lock first flushes for every
             record appended so far; callers that arrive during that
             fsync find [durable] already covering them and return
             without touching the disk. *)
          if t.durable < target then fsync_locked t;
          Ok t.durable
        end)
  with
  | Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
  | Sys_error msg -> Error (Io msg)

let rotate t =
  try
    locked t (fun () ->
        if t.closed then Error (Io "log closed")
        else begin
          rotate_locked t;
          Ok ()
        end)
  with
  | Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
  | Sys_error msg -> Error (Io msg)

let drop_segments_below t lsn =
  try
    locked t (fun () ->
        let segs = segment_files t.dir in
        let headed =
          List.filter_map
            (fun n ->
              match header_first_lsn t.dir n with Ok l -> Some (n, l) | Error _ -> None)
            segs
        in
        (* A segment is disposable iff its successor starts at or below
           [lsn] (so every record in it has lsn < [lsn]) and it is not
           the open segment. *)
        let rec go removed = function
          | (name, _) :: ((_, next_first) :: _ as rest)
            when next_first <= lsn && name <> seg_name t.seg_seq ->
              (try Sys.remove (Filename.concat t.dir name) with Sys_error _ -> ());
              go (removed + 1) rest
          | _ :: rest -> go removed rest
          | [] -> removed
        in
        let removed = go 0 headed in
        if removed > 0 then fsync_dir t.dir;
        Ok removed)
  with
  | Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
  | Sys_error msg -> Error (Io msg)

let close t =
  locked t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
        (try Unix.close t.fd with Unix.Unix_error _ -> ())
      end)
