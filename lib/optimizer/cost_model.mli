(** The optimizer's estimation layer: per-query memoized cardinalities and
    the i-cost of candidate operators, backed by the subgraph catalogue.

    The "chain" of a plan is the sequence of sub-query vertex sets from the
    anchor of its root E/I chain (a SCAN pair or a HASH-JOIN output) to the
    plan's own vertex set. Cache-conscious i-cost estimation (Section 5.2)
    multiplies intersected list sizes by the cardinality of the smallest
    chain prefix containing every descriptor source instead of the full
    child cardinality: tuples stream in nested-loop order along the chain,
    so an intersection whose inputs avoid the most recently extended
    vertices repeats consecutively and is served by the E/I cache. *)

type t

(** [corrections], when given, maps a vertex subset to a multiplicative
    adjustment applied on top of the catalogue-derived cardinality estimate
    for that subset (1.0 = no adjustment). The plan cache supplies learned
    actual/estimate ratios here so that replanning a drifted template sees
    feedback-corrected cardinalities — and, since every operator cost
    derives from [card], corrected costs — without touching the catalogue. *)
val create :
  ?cache_conscious:bool ->
  ?weights:Cost.weights ->
  ?corrections:(Gf_util.Bitset.t -> float) ->
  Gf_catalog.Catalog.t ->
  Gf_query.Query.t ->
  t

val query : t -> Gf_query.Query.t
val cache_conscious : t -> bool

(** [card t s] is the estimated number of matches of the sub-query induced
    on vertex set [s] (|s| >= 2). Memoized. *)
val card : t -> Gf_util.Bitset.t -> float

(** [mu t ~child ~v] is the estimated selectivity of extending the sub-query
    on [child] by vertex [v]. Memoized. *)
val mu : t -> child:Gf_util.Bitset.t -> v:int -> float

(** [extension_icost t ~chain ~child ~v] is the estimated i-cost of the E/I
    operator extending [child] (whose root chain prefixes are [chain],
    anchor first, [child] last) by [v]. *)
val extension_icost : t -> chain:Gf_util.Bitset.t list -> child:Gf_util.Bitset.t -> v:int -> float

(** [hash_join_cost t s1 s2] is [w1 * card s1 + w2 * card s2] ([s1] is the
    build side). *)
val hash_join_cost : t -> Gf_util.Bitset.t -> Gf_util.Bitset.t -> float
