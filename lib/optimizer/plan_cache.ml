module Bitset = Gf_util.Bitset
module Query = Gf_query.Query
module Canon = Gf_query.Canon
module Plan = Gf_plan.Plan
module Catalog = Gf_catalog.Catalog
module Metrics = Gf_exec.Metrics
module Trace = Gf_obs.Trace

(* Plans are cached in *canonical* vertex space: a skeleton records the
   operator tree with every query vertex renamed through the canonical
   permutation, so two isomorphic queries submitted with different vertex
   numberings share one entry, and each lookup re-instantiates the skeleton
   against the caller's own numbering (linear in plan size — against the
   exponential cost of planning). *)
type skel =
  | S_scan of int * int * int  (* canonical src, canonical dst, edge label *)
  | S_extend of skel * int  (* canonical target *)
  | S_join of skel * skel  (* build, probe *)

let rec skel_of_plan perm = function
  | Plan.Scan { edge; _ } ->
      S_scan (perm.(edge.Query.src), perm.(edge.Query.dst), edge.Query.label)
  | Plan.Extend { child; target; _ } -> S_extend (skel_of_plan perm child, perm.(target))
  | Plan.Hash_join { build; probe; _ } ->
      S_join (skel_of_plan perm build, skel_of_plan perm probe)

let instantiate q perm skel =
  (* inv.(c) = this query's vertex at canonical position c. *)
  let n = Array.length perm in
  let inv = Array.make n 0 in
  Array.iteri (fun orig c -> inv.(c) <- orig) perm;
  let find_edge cs cd l =
    let s = inv.(cs) and d = inv.(cd) in
    let found = ref None in
    Array.iter
      (fun (e : Query.edge) ->
        if e.Query.src = s && e.Query.dst = d && e.Query.label = l then found := Some e)
      q.Query.edges;
    match !found with Some e -> e | None -> raise Not_found
  in
  let rec inst = function
    | S_scan (cs, cd, l) -> Plan.scan q (find_edge cs cd l)
    | S_extend (sk, ct) -> Plan.extend q (inst sk) inv.(ct)
    | S_join (b, p) -> Plan.hash_join q (inst b) (inst p)
  in
  inst skel

(* Translate a query-space vertex set into canonical space. *)
let to_canon perm s =
  List.fold_left (fun acc v -> Bitset.add perm.(v) acc) Bitset.empty (Bitset.elements s)

(* One learned adjustment: the geometric EWMA of observed actual/estimate
   cardinality ratios for a canonical vertex subset. *)
type corr = { mutable factor : float; mutable samples : int }

type entry = {
  mutable version : int;  (* graph_version the skeleton was planned against *)
  mutable skel : skel;
  mutable cost : float;  (* model cost at plan time *)
  corrections : (Bitset.t, corr) Hashtbl.t;
  mutable snapshot : (Bitset.t * float) list;
      (* correction factors in force when [skel] was chosen; drift is
         measured against these *)
  mutable runs : int;
  mutable stale : bool;  (* drift crossed the threshold: replan on next lookup *)
  mutable tick : int;  (* LRU recency *)
}

type outcome = Hit | Miss | Replan

type lookup_result = {
  plan : Plan.t;
  cost : float;
  outcome : outcome;
  feedback_due : bool;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  replans : int;
  invalidations : int;
  feedbacks : int;
  entries : int;
}

type t = {
  capacity : int;
  drift_threshold : float;
  feedback_warmup : int;
  feedback_period : int;
  table : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable replans : int;
  mutable invalidations : int;
  mutable feedbacks : int;
}

let default_capacity = 256
let default_drift_threshold = 4.0
let default_feedback_warmup = 3
let default_feedback_period = 32

(* Service-facing counters (the names the soak CI asserts on); the registry
   is process-global and lookups by name are idempotent, so bumping them
   here keeps Service/Db wiring trivial. *)
let m_inc name help = Metrics.inc (Metrics.counter ~help name)
let m_hit () = m_inc "gf_server_plan_cache_hits_total" "Plan cache lookups served from cache"
let m_miss () = m_inc "gf_server_plan_cache_misses_total" "Plan cache lookups that planned from scratch"
let m_evict () = m_inc "gf_server_plan_cache_evictions_total" "Plan cache entries evicted (LRU)"
let m_replan () = m_inc "gf_server_plan_cache_replans_total" "Plan cache drift-triggered replans"
let m_inval () = m_inc "gf_server_plan_cache_invalidations_total" "Plan cache wholesale invalidations (graph version advanced)"
let m_feedback () = m_inc "gf_server_plan_cache_feedback_total" "Profiled executions folded into plan cache corrections"

let create ?(capacity = default_capacity) ?(drift_threshold = default_drift_threshold)
    ?(feedback_warmup = default_feedback_warmup)
    ?(feedback_period = default_feedback_period) () =
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity must be >= 1";
  if drift_threshold < 1.0 then
    invalid_arg "Plan_cache.create: drift threshold must be >= 1.0";
  {
    capacity;
    drift_threshold;
    feedback_warmup;
    feedback_period = max 1 feedback_period;
    table = Hashtbl.create 64;
    lock = Mutex.create ();
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    replans = 0;
    invalidations = 0;
    feedbacks = 0;
  }

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      replans = t.replans;
      invalidations = t.invalidations;
      feedbacks = t.feedbacks;
      entries = Hashtbl.length t.table;
    }
  in
  Mutex.unlock t.lock;
  s

let invalidate t =
  Mutex.lock t.lock;
  Hashtbl.reset t.table;
  t.invalidations <- t.invalidations + 1;
  Mutex.unlock t.lock;
  m_inval ()

(* Callers hold the lock. *)
let touch t e =
  t.clock <- t.clock + 1;
  e.tick <- t.clock

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, t0) when t0 <= e.tick -> ()
      | _ -> victim := Some (k, e.tick))
    t.table;
  match !victim with
  | Some (k, _) ->
      Hashtbl.remove t.table k;
      t.evictions <- t.evictions + 1;
      m_evict ()
  | None -> ()

let feedback_due t e =
  e.runs <= t.feedback_warmup || e.runs mod t.feedback_period = 0

let clamp_lo = 1e-3
let clamp_hi = 1e3
let clamp r = Float.max clamp_lo (Float.min clamp_hi r)

(* Corrections as a query-space closure for the planner: translate the
   subset through the canonical permutation and look up the learned factor.
   [factors] is an immutable snapshot taken under the lock, so planning can
   run outside it. *)
let corrections_fn perm factors s =
  match List.assoc_opt (to_canon perm s) factors with Some f -> f | None -> 1.0

let current_factors e =
  Hashtbl.fold (fun s c acc -> (s, c.factor) :: acc) e.corrections []

let lookup ?trace t ~opts ~graph_version cat q =
  (match trace with
  | Some tb -> Trace.begin_span ~cat:"planner" tb "plan-cache"
  | None -> ());
  let code, perm = Canon.code q in
  Mutex.lock t.lock;
  let cached =
    match Hashtbl.find_opt t.table code with
    | Some e when e.version = graph_version && not e.stale ->
        touch t e;
        e.runs <- e.runs + 1;
        (* Snapshot what instantiation needs, then drop the lock. *)
        Some (`Hit (e.skel, e.cost, feedback_due t e))
    | Some e when e.version = graph_version ->
        touch t e;
        Some (`Drift (current_factors e))
    | Some _ ->
        (* Planned against an older graph: the corrections describe a graph
           that no longer exists, so drop the whole entry. *)
        Hashtbl.remove t.table code;
        None
    | None -> None
  in
  Mutex.unlock t.lock;
  let plan_fresh ?corrections outcome =
    let p, cost = Planner.plan ~opts ?trace ?corrections cat q in
    let skel = skel_of_plan perm p in
    Mutex.lock t.lock;
    let e =
      match Hashtbl.find_opt t.table code with
      | Some e -> e
      | None ->
          if Hashtbl.length t.table >= t.capacity then evict_lru t;
          let e =
            {
              version = graph_version;
              skel;
              cost;
              corrections = Hashtbl.create 8;
              snapshot = [];
              runs = 0;
              stale = false;
              tick = 0;
            }
          in
          Hashtbl.replace t.table code e;
          e
    in
    e.version <- graph_version;
    e.skel <- skel;
    e.cost <- cost;
    e.stale <- false;
    e.snapshot <- current_factors e;
    e.runs <- e.runs + 1;
    touch t e;
    (match outcome with
    | Miss ->
        t.misses <- t.misses + 1;
        m_miss ()
    | Replan ->
        t.replans <- t.replans + 1;
        m_replan ()
    | Hit -> ());
    let due = feedback_due t e in
    Mutex.unlock t.lock;
    { plan = p; cost; outcome; feedback_due = due }
  in
  let result =
    match cached with
    | Some (`Hit (skel, cost, due)) -> (
        match instantiate q perm skel with
        | p ->
            Mutex.lock t.lock;
            t.hits <- t.hits + 1;
            Mutex.unlock t.lock;
            m_hit ();
            { plan = p; cost; outcome = Hit; feedback_due = due }
        | exception _ ->
            (* A skeleton that does not fit the query means the canonical
               code aliased (cannot happen by construction) — recover by
               planning from scratch rather than failing the request. *)
            plan_fresh Miss)
    | Some (`Drift factors) ->
        plan_fresh ~corrections:(corrections_fn perm factors) Replan
    | None -> plan_fresh Miss
  in
  (match trace with
  | Some tb ->
      let o =
        match result.outcome with Hit -> "hit" | Miss -> "miss" | Replan -> "replan"
      in
      Trace.end_span ~args:[ ("outcome", Trace.Str o) ] tb
  | None -> ());
  result

(* Fold one profiled execution into the template's correction record.
   [rows] must come from {!Explain.rows} over the *uncorrected* model (which
   is what [Explain.rows] builds), so each ratio compares the catalogue's
   base estimate to ground truth; the EWMA then converges on the stable
   actual/estimate ratio instead of compounding previous corrections. *)
let observe t ~graph_version q plan rows =
  let code, perm = Canon.code q in
  let ops = Plan.operators plan in
  Mutex.lock t.lock;
  (match Hashtbl.find_opt t.table code with
  | Some e when e.version = graph_version ->
      let alpha = 0.5 in
      let drift = ref 1.0 in
      List.iter
        (fun (r : Explain.row) ->
          if r.Explain.id >= 0 && r.Explain.id < Array.length ops then begin
            let node = fst ops.(r.Explain.id) in
            let s = to_canon perm (Plan.var_set node) in
            let est = Float.max 1.0 r.Explain.est_card in
            let act = Float.max 1.0 (float_of_int r.Explain.act_card) in
            let ratio = clamp (act /. est) in
            let c =
              match Hashtbl.find_opt e.corrections s with
              | Some c ->
                  (* Geometric EWMA: ratios are multiplicative, so smooth
                     in log space. *)
                  c.factor <-
                    clamp
                      (Float.exp
                         (((1.0 -. alpha) *. Float.log c.factor)
                         +. (alpha *. Float.log ratio)));
                  c.samples <- c.samples + 1;
                  c
              | None ->
                  let c = { factor = ratio; samples = 1 } in
                  Hashtbl.replace e.corrections s c;
                  c
            in
            let planned =
              match List.assoc_opt s e.snapshot with Some f -> f | None -> 1.0
            in
            let d = Float.max (c.factor /. planned) (planned /. c.factor) in
            if d > !drift then drift := d
          end)
        rows;
      t.feedbacks <- t.feedbacks + 1;
      m_feedback ();
      if !drift > t.drift_threshold then e.stale <- true
  | _ -> ());
  Mutex.unlock t.lock

(* A side-effect-free read: no counters, no LRU touch, no insert. The
   service's flight-recorder digest path uses this so recording a plan
   signature does not distort hit/miss accounting. *)
let peek t ~graph_version q =
  let code, perm = Canon.code q in
  Mutex.lock t.lock;
  let skel =
    match Hashtbl.find_opt t.table code with
    | Some e when e.version = graph_version && not e.stale -> Some e.skel
    | _ -> None
  in
  Mutex.unlock t.lock;
  match skel with
  | None -> None
  | Some skel -> ( match instantiate q perm skel with p -> Some p | exception _ -> None)

(* Test/introspection helpers. *)
let mem t q =
  let code, _ = Canon.code q in
  Mutex.lock t.lock;
  let r = Hashtbl.mem t.table code in
  Mutex.unlock t.lock;
  r

let is_stale t q =
  let code, _ = Canon.code q in
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.table code with Some e -> e.stale | None -> false
  in
  Mutex.unlock t.lock;
  r
