(** A bounded LRU plan cache with feedback-driven re-optimization.

    Recurring queries under service traffic pay the optimizer's exponential
    search on every submission even though the plan never changes. This
    cache keys compiled plans by the query's canonical code ({!Gf_query.Canon.code},
    with its structural fallback for patterns beyond 8 vertices) plus the
    graph version, so:

    - isomorphic resubmissions — even with different vertex numberings —
      are served by re-instantiating a cached canonical-space plan skeleton
      (linear in plan size) instead of replanning;
    - each template accumulates a correction record: profiled executions
      fold per-operator actual/estimate cardinality ratios (the q-error
      actuals of EXPLAIN ANALYZE) into geometric EWMAs keyed by canonical
      vertex subset;
    - when the accumulated drift between the live corrections and those in
      force when the cached plan was chosen crosses a threshold, the entry
      is marked stale and the next lookup replans with the corrections
      applied to the cost model ({!Cost_model.create}'s [corrections]) —
      recurring queries converge on true-cost plans;
    - when the graph version advances (mutation merges), entries are
      dropped — lazily on lookup, or wholesale via {!invalidate} from the
      service's merge hook.

    All operations are thread-safe; planning itself runs outside the lock,
    so racing clients may both plan the same new template (last insert
    wins — benign). The cache bumps the [gf_server_plan_cache_*] metrics
    counters as a side effect of its operations. *)

type t

type outcome =
  | Hit  (** served by instantiating the cached skeleton *)
  | Miss  (** no usable entry: planned from scratch and inserted *)
  | Replan  (** drift-stale entry: replanned with learned corrections *)

type lookup_result = {
  plan : Gf_plan.Plan.t;  (** a plan for the submitted query's own numbering *)
  cost : float;  (** model cost at plan time *)
  outcome : outcome;
  feedback_due : bool;
      (** the caller should run this execution profiled and {!observe} the
          resulting rows: set during warmup and periodically thereafter *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  replans : int;
  invalidations : int;
  feedbacks : int;
  entries : int;
}

val default_capacity : int
val default_drift_threshold : float

(** [create ()] makes an empty cache. [capacity] bounds the entry count
    (LRU eviction; default 256). [drift_threshold] (>= 1.0, default 4.0) is
    the max ratio between a template's live correction factor and the one
    in force at plan time before the entry is marked stale.
    [feedback_warmup] (default 3) and [feedback_period] (default 32)
    control when [feedback_due] is set: each of the first [feedback_warmup]
    executions of a template, then every [feedback_period]-th. *)
val create :
  ?capacity:int ->
  ?drift_threshold:float ->
  ?feedback_warmup:int ->
  ?feedback_period:int ->
  unit ->
  t

(** [lookup t ~opts ~graph_version cat q] returns a plan for [q], consulting
    and maintaining the cache. On a miss the planner runs with [opts]
    against [cat]; on a drift-triggered replan it additionally receives the
    learned corrections. [trace] forwards to the planner and records a
    [plan-cache] span with the outcome. May raise {!Planner.No_plan} (never
    caches failures). *)
val lookup :
  ?trace:Gf_obs.Trace.buf ->
  t ->
  opts:Planner.opts ->
  graph_version:int ->
  Gf_catalog.Catalog.t ->
  Gf_query.Query.t ->
  lookup_result

(** [observe t ~graph_version q plan rows] folds the profiled actuals of one
    execution of [plan] (the exact plan value the profile ran, as returned
    by {!lookup}) into [q]'s template corrections. [rows] must be
    {!Explain.rows} output for that plan — its estimates come from the
    uncorrected model, so ratios measure the catalogue's true error. No-op
    when the template is absent or was planned against another graph
    version. *)
val observe :
  t ->
  graph_version:int ->
  Gf_query.Query.t ->
  Gf_plan.Plan.t ->
  Explain.row list ->
  unit

(** Drop every entry (the graph changed under us) and count one
    invalidation. *)
val invalidate : t -> unit

val stats : t -> stats

(** [peek t ~graph_version q] instantiates the cached plan for [q] without
    any side effect — no hit/miss accounting, no LRU touch, no insertion.
    [None] when absent, stale, or from another graph version. *)
val peek : t -> graph_version:int -> Gf_query.Query.t -> Gf_plan.Plan.t option

(** [mem t q] — is there an entry for [q]'s template (any version)? *)
val mem : t -> Gf_query.Query.t -> bool

(** [is_stale t q] — is [q]'s template marked for drift replan? *)
val is_stale : t -> Gf_query.Query.t -> bool
