(** EXPLAIN ANALYZE: join the optimizer's estimates against a run's
    per-operator actuals.

    For every operator of a profiled plan this reports the estimated
    cardinality ({!Cost_model.card} of the operator's vertex set) against
    the tuples it actually produced, and the estimated cost against the
    actual cost, each with its q-error ([max(est/truth, truth/est)] —
    the paper's catalogue-accuracy metric, Tables 10/11):

    - E/I operators: estimated i-cost ({!Cost_model.extension_icost} with
      the operator's chain reconstructed from the plan) vs the
      adjacency-list sizes it actually touched (Eq. 1);
    - HASH-JOIN operators: [w1*card(build) + w2*card(probe)] vs the same
      formula over actual build/probe tuple counts;
    - SCAN operators: cardinality only (their cost is not modeled).

    This lives in the optimizer layer (not [Gf_exec]) because it needs the
    catalogue-backed cost model; the execution layer only ever records
    actuals ({!Gf_exec.Profile}). *)

type row = {
  id : int;  (** stable operator id ({!Gf_plan.Plan.operators} preorder) *)
  label : string;
  kind : Gf_exec.Profile.kind;
  depth : int;
  est_card : float;
  act_card : int;  (** tuples the operator produced *)
  card_q : float;  (** q-error of [est_card] vs [act_card] *)
  est_cost : float;  (** estimated i-cost (E/I) or weighted join cost; 0 for scans *)
  act_cost : float;
  cost_q : float option;  (** [None] for scans (no modeled cost) *)
  time_s : float;  (** self wall time (summed across domains when parallel) *)
  cache_hits : int;
  intersections : int;
  hj_build : int;
  hj_probe : int;
}

(** [rows cat q plan prof] is one row per operator, in operator-id order.
    [cache_conscious] and [weights] should match the planner options that
    produced the plan so estimates are the ones the optimizer acted on.
    Raises [Invalid_argument] when [prof] was created for a different plan
    value. *)
val rows :
  ?cache_conscious:bool ->
  ?weights:Cost.weights ->
  Gf_catalog.Catalog.t ->
  Gf_query.Query.t ->
  Gf_plan.Plan.t ->
  Gf_exec.Profile.t ->
  row list

(** Fixed-width text table. *)
val to_string : row list -> string

(** JSON array of operator objects (est/actual/q-error per row). *)
val rows_to_json : row list -> string

(** Escape a string for embedding in a JSON literal (shared with [gfq]'s
    [--json] envelope). *)
val json_escape : string -> string
