(** The dynamic-programming optimizer (Section 4.3, Algorithm 1).

    For every connected vertex subset [S] of the query, the best plan is the
    cheapest of: (i) the best fully-enumerated WCO plan for [S]; (ii) the
    best plan for [S minus v] extended by an E/I operator; (iii) a HASH-JOIN
    of two smaller connected subsets whose union is [S], whose overlap is
    nonempty, and whose edges cover the sub-query induced on [S] (the
    projection constraint). HASH-JOINs convertible to an E/I — one side
    contributing a single new vertex — are pruned in [Hybrid] mode
    (Section 4.3's last rule) but kept in [Bj_only] mode, where they are the
    only way to grow plans.

    WCO plans are enumerated exhaustively (all prefix-connected orderings)
    so that cache-conscious costs see the full ordering; for queries larger
    than [beam_threshold] vertices this enumeration is skipped and only the
    [beam_width] cheapest sub-queries per level are kept (Section 4.4). *)

type mode = Hybrid | Wco_only | Bj_only

type opts = {
  mode : mode;
  cache_conscious : bool;  (** the cache-oblivious ablation sets this false *)
  weights : Cost.weights;
  beam_threshold : int;  (** default 8; above this, no exhaustive WCO enumeration *)
  beam_width : int;  (** default 5 *)
}

val default_opts : opts

(** Raised when the requested plan space contains no plan for the query
    (e.g. [Bj_only] on a query containing a triangle: under the projection
    constraint a triangle is only computable by an intersection). *)
exception No_plan of string

(** [plan cat q] is the chosen plan and its estimated cost (i-cost units).
    [trace] records an [optimize] span with [wco-enumeration] and
    [dp-enumeration] phase spans into the given buffer — the planner runs on
    the caller's thread, so it records into the caller's buffer rather than
    registering its own. [corrections] is forwarded to {!Cost_model.create}:
    the plan cache passes learned per-subset cardinality adjustments here
    when replanning a drifted template. *)
val plan :
  ?opts:opts ->
  ?trace:Gf_obs.Trace.buf ->
  ?corrections:(Gf_util.Bitset.t -> float) ->
  Gf_catalog.Catalog.t ->
  Gf_query.Query.t ->
  Gf_plan.Plan.t * float

(** [best_wco_order cat q] is the minimum-estimated-cost query vertex
    ordering over all prefix-connected orderings, with its cost. Used both
    by the optimizer and to hand "good" orderings to the EmptyHeaded
    emulation (EH-g). *)
val best_wco_order :
  ?cache_conscious:bool -> Gf_catalog.Catalog.t -> Gf_query.Query.t -> int array * float

(** [wco_order_cost cat q order] is the estimated cost of one ordering. *)
val wco_order_cost :
  ?cache_conscious:bool -> Gf_catalog.Catalog.t -> Gf_query.Query.t -> int array -> float

(** [all_wco_orders cat q] lists every prefix-connected ordering with its
    estimated cost, deduplicated so the two orderings that differ only in
    the orientation of the scanned first edge appear once. *)
val all_wco_orders :
  ?cache_conscious:bool ->
  Gf_catalog.Catalog.t ->
  Gf_query.Query.t ->
  (int array * float) list
