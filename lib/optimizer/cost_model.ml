module Bitset = Gf_util.Bitset
module Query = Gf_query.Query
module Catalog = Gf_catalog.Catalog
module Graph = Gf_graph.Graph

type t = {
  cat : Catalog.t;
  q : Query.t;
  cache_conscious : bool;
  weights : Cost.weights;
  corrections : (Bitset.t -> float) option;
  cards : (int, float) Hashtbl.t;
  mus : (int * int, float) Hashtbl.t;
  sizes : (int * int, float) Hashtbl.t; (* (child_set, v) -> sum of descriptor sizes *)
}

let create ?(cache_conscious = true) ?(weights = Cost.default_weights) ?corrections
    cat q =
  {
    cat;
    q;
    cache_conscious;
    weights;
    corrections;
    cards = Hashtbl.create 64;
    mus = Hashtbl.create 64;
    sizes = Hashtbl.create 64;
  }

let query t = t.q
let cache_conscious t = t.cache_conscious

(* The extension of child-set by v, as (induced sub-query, v's index in it). *)
let induced_extension t ~child ~v =
  let s = Bitset.add v child in
  let sub, map = Query.induced t.q s in
  let vpos = ref (-1) in
  Array.iteri (fun i ov -> if ov = v then vpos := i) map;
  (sub, map, !vpos)

let mu t ~child ~v =
  match Hashtbl.find_opt t.mus (child, v) with
  | Some m -> m
  | None ->
      let sub, _, vpos = induced_extension t ~child ~v in
      let m = Catalog.mu_estimate t.cat sub ~new_vertex:vpos in
      Hashtbl.replace t.mus (child, v) m;
      m

(* Raw catalogue-derived estimate, before feedback corrections. The
   recursion composes raw values only: a learned correction for subset [s]
   is the observed ratio actual/raw-estimate, so it must scale the raw
   estimate exactly once, at the point of use. *)
let rec raw_card t s =
  match Hashtbl.find_opt t.cards s with
  | Some c -> c
  | None ->
      let c =
        if Bitset.cardinal s < 2 then invalid_arg "Cost_model.card: need >= 2 vertices"
        else if Bitset.cardinal s = 2 then begin
          match Query.edges_within t.q s with
          | [] -> invalid_arg "Cost_model.card: 2-set without an edge"
          | es ->
              List.fold_left
                (fun acc (e : Query.edge) ->
                  Float.min acc
                    (float_of_int
                       (Catalog.edge_count t.cat ~elabel:e.label
                          ~slabel:(Query.vlabel t.q e.src)
                          ~dlabel:(Query.vlabel t.q e.dst))))
                infinity es
        end
        else begin
          (* Minimize over the last-extended vertex (Section 5.2's "pick a
             WCO plan", strengthened to a min). For big subsets the full
             minimization explores an exponential lattice, so beyond 8
             vertices only the first valid removal chain is followed — the
             paper's single-plan estimate. *)
          let exhaustive = Bitset.cardinal s <= 8 in
          let best = ref infinity in
          (try
             Bitset.iter
               (fun v ->
                 let rest = Bitset.remove v s in
                 if
                   Query.is_connected_subset t.q rest
                   && Bitset.inter (Query.neighbours t.q v) rest <> Bitset.empty
                 then begin
                   let est = raw_card t rest *. mu t ~child:rest ~v in
                   if est < !best then best := est;
                   if not exhaustive then raise Exit
                 end)
               s
           with Exit -> ());
          if !best < infinity then !best else 0.0
        end
      in
      Hashtbl.replace t.cards s c;
      c

let card t s =
  let c = raw_card t s in
  match t.corrections with None -> c | Some f -> c *. f s

(* Sum of the estimated sizes of the adjacency lists intersected when
   extending [child] by [v], and the set of descriptor source vertices. *)
let descriptor_sources t ~child ~v =
  Array.fold_left
    (fun acc (e : Query.edge) ->
      if e.dst = v && Bitset.mem e.src child then Bitset.add e.src acc
      else if e.src = v && Bitset.mem e.dst child then Bitset.add e.dst acc
      else acc)
    Bitset.empty t.q.Query.edges

let total_descriptor_size t ~child ~v =
  match Hashtbl.find_opt t.sizes (child, v) with
  | Some s -> s
  | None ->
      let sub, map, vpos = induced_extension t ~child ~v in
      (* Positions of the original vertices inside the induced sub-query. *)
      let pos_of = Hashtbl.create 8 in
      Array.iteri (fun i ov -> Hashtbl.replace pos_of ov i) map;
      let total = ref 0.0 in
      Array.iter
        (fun (e : Query.edge) ->
          if e.dst = v && Bitset.mem e.src child then
            total :=
              !total
              +. Catalog.descriptor_size t.cat sub ~new_vertex:vpos
                   ~src:(Hashtbl.find pos_of e.src) ~dir:Graph.Fwd ~elabel:e.label
          else if e.src = v && Bitset.mem e.dst child then
            total :=
              !total
              +. Catalog.descriptor_size t.cat sub ~new_vertex:vpos
                   ~src:(Hashtbl.find pos_of e.dst) ~dir:Graph.Bwd ~elabel:e.label)
        t.q.Query.edges;
      Hashtbl.replace t.sizes (child, v) !total;
      !total

let extension_icost t ~chain ~child ~v =
  let sources = descriptor_sources t ~child ~v in
  if sources = Bitset.empty then invalid_arg "Cost_model.extension_icost: no descriptors";
  let multiplier =
    if t.cache_conscious then begin
      (* Smallest chain prefix covering every descriptor source: consecutive
         tuples share that prefix's bindings, so at most card(prefix)
         distinct intersections run. Never more than card(child) either. *)
      let rec find = function
        | [] -> child
        | prefix :: rest -> if Bitset.subset sources prefix then prefix else find rest
      in
      Float.min (card t (find chain)) (card t child)
    end
    else card t child
  in
  multiplier *. total_descriptor_size t ~child ~v

let hash_join_cost t s1 s2 =
  (t.weights.Cost.w1 *. card t s1) +. (t.weights.Cost.w2 *. card t s2)
