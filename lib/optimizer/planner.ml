module Bitset = Gf_util.Bitset
module Query = Gf_query.Query
module Plan = Gf_plan.Plan
module Catalog = Gf_catalog.Catalog

type mode = Hybrid | Wco_only | Bj_only

type opts = {
  mode : mode;
  cache_conscious : bool;
  weights : Cost.weights;
  beam_threshold : int;
  beam_width : int;
}

let default_opts =
  {
    mode = Hybrid;
    cache_conscious = true;
    weights = Cost.default_weights;
    beam_threshold = 8;
    beam_width = 5;
  }

exception No_plan of string

type info = {
  plan : Plan.t;
  cost : float;
  chain : Bitset.t list; (* root E/I chain prefixes, anchor first, self last *)
}

(* Scan start pairs: one per unordered vertex pair carrying an edge. *)
let scan_pairs q =
  let seen = Hashtbl.create 8 in
  Array.to_list q.Query.edges
  |> List.filter (fun (e : Query.edge) ->
         let key = (min e.src e.dst, max e.src e.dst) in
         if Hashtbl.mem seen key then false
         else begin
           Hashtbl.replace seen key ();
           true
         end)

(* Depth-first enumeration of all prefix-connected orderings, calling
   [record subset cost chain order_rev] at every prefix of size >= 2. *)
let enumerate_wco model q record =
  let m = Query.num_vertices q in
  let rec dfs subset chain_rev cost order_rev =
    record subset cost (List.rev chain_rev) order_rev;
    if Bitset.cardinal subset < m then
      for v = 0 to m - 1 do
        if
          (not (Bitset.mem v subset))
          && Bitset.inter (Query.neighbours q v) subset <> Bitset.empty
        then begin
          let s' = Bitset.add v subset in
          let c =
            cost
            +. Cost_model.extension_icost model ~chain:(List.rev chain_rev) ~child:subset ~v
          in
          dfs s' (s' :: chain_rev) c (v :: order_rev)
        end
      done
  in
  List.iter
    (fun (e : Query.edge) ->
      let s0 = Bitset.of_list [ e.src; e.dst ] in
      dfs s0 [ s0 ] 0.0 [ e.dst; e.src ])
    (scan_pairs q)

let check_no_multi_pair q =
  if List.length (scan_pairs q) <> Array.length q.Query.edges then
    raise
      (No_plan
         "queries with parallel or anti-parallel edges between a vertex pair are not supported \
          by the planner")

let all_wco_orders ?(cache_conscious = true) cat q =
  check_no_multi_pair q;
  let model = Cost_model.create ~cache_conscious cat q in
  let m = Query.num_vertices q in
  let acc = ref [] in
  enumerate_wco model q (fun subset cost _chain order_rev ->
      if Bitset.cardinal subset = m then
        acc := (Array.of_list (List.rev order_rev), cost) :: !acc);
  List.rev !acc

let best_wco_order ?cache_conscious cat q =
  match all_wco_orders ?cache_conscious cat q with
  | [] -> raise (No_plan "no WCO ordering (query must have >= 2 vertices)")
  | first :: rest ->
      List.fold_left (fun (bo, bc) (o, c) -> if c < bc then (o, c) else (bo, bc)) first rest

let wco_order_cost ?(cache_conscious = true) cat q order =
  check_no_multi_pair q;
  let model = Cost_model.create ~cache_conscious cat q in
  let cost = ref 0.0 in
  let subset = ref (Bitset.of_list [ order.(0); order.(1) ]) in
  let chain = ref [ !subset ] in
  for k = 2 to Array.length order - 1 do
    let v = order.(k) in
    cost := !cost +. Cost_model.extension_icost model ~chain:(List.rev !chain) ~child:!subset ~v;
    subset := Bitset.add v !subset;
    chain := !subset :: !chain
  done;
  !cost

(* Enumerate connected subsets of the query's vertices, grouped by size. *)
let connected_subsets q =
  let m = Query.num_vertices q in
  let by_size = Array.make (m + 1) [] in
  for s = 1 to Bitset.full m do
    if Query.is_connected_subset q s then begin
      let k = Bitset.cardinal s in
      by_size.(k) <- s :: by_size.(k)
    end
  done;
  by_size

let plan ?(opts = default_opts) ?trace ?corrections cat q =
  check_no_multi_pair q;
  let m = Query.num_vertices q in
  if m < 2 then raise (No_plan "queries need at least 2 vertices");
  (* Raising paths below (No_plan) bypass the end_span; the trace owner
     closes dangling spans at export, so a failed optimization still shows
     as an open-ended [optimize] span rather than corrupting the trace. *)
  (match trace with
  | Some tb ->
      Gf_obs.Trace.begin_span ~cat:"planner"
        ~args:[ ("vertices", Gf_obs.Trace.Int m); ("edges", Int (Query.num_edges q)) ]
        tb "optimize"
  | None -> ());
  let model =
    Cost_model.create ~cache_conscious:opts.cache_conscious ~weights:opts.weights
      ?corrections cat q
  in
  let table : (Bitset.t, info) Hashtbl.t = Hashtbl.create 64 in
  (* Level 2: scans. *)
  List.iter
    (fun (e : Query.edge) ->
      let s = Bitset.of_list [ e.src; e.dst ] in
      Hashtbl.replace table s { plan = Plan.scan q e; cost = 0.0; chain = [ s ] })
    (scan_pairs q);
  (* Exhaustive WCO enumeration: best cost and ordering per subset. *)
  let best_wco : (Bitset.t, float * int list) Hashtbl.t = Hashtbl.create 64 in
  if opts.mode <> Bj_only && m <= opts.beam_threshold then begin
    (match trace with
    | Some tb -> Gf_obs.Trace.begin_span ~cat:"planner" tb "wco-enumeration"
    | None -> ());
    enumerate_wco model q (fun subset cost _chain order_rev ->
        match Hashtbl.find_opt best_wco subset with
        | Some (c, _) when c <= cost -> ()
        | _ -> Hashtbl.replace best_wco subset (cost, order_rev));
    match trace with
    | Some tb ->
        Gf_obs.Trace.end_span ~args:[ ("subsets", Gf_obs.Trace.Int (Hashtbl.length best_wco)) ] tb
    | None -> ()
  end;
  (* Full subset enumeration is 2^m: only for small queries. In beam mode
     (Section 4.4) level-k candidates are generated from the kept table
     entries instead — single-vertex extensions of kept (k-1)-subsets and
     unions of kept pairs. *)
  let by_size = if m <= opts.beam_threshold then Some (connected_subsets q) else None in
  let beam_candidates k =
    let cands = Hashtbl.create 64 in
    Hashtbl.iter
      (fun s _ ->
        if Bitset.cardinal s = k - 1 then
          for v = 0 to m - 1 do
            if
              (not (Bitset.mem v s))
              && Bitset.inter (Query.neighbours q v) s <> Bitset.empty
            then Hashtbl.replace cands (Bitset.add v s) ()
          done)
      table;
    Hashtbl.iter
      (fun s1 _ ->
        Hashtbl.iter
          (fun s2 _ ->
            let u = Bitset.union s1 s2 in
            if Bitset.cardinal u = k && Bitset.inter s1 s2 <> Bitset.empty then
              Hashtbl.replace cands u ())
          table)
      table;
    Hashtbl.fold (fun s () acc -> s :: acc) cands []
  in
  let subsets_at k = match by_size with Some a -> a.(k) | None -> beam_candidates k in
  let consider s best candidate =
    match candidate with
    | None -> best
    | Some info -> (
        match best with Some b when b.cost <= info.cost -> best | _ -> ignore s; Some info)
  in
  (match trace with
  | Some tb -> Gf_obs.Trace.begin_span ~cat:"planner" tb "dp-enumeration"
  | None -> ());
  for k = 3 to m do
    List.iter
      (fun s ->
        let best = ref None in
        (* (i) best enumerated WCO plan. *)
        (match Hashtbl.find_opt best_wco s with
        | Some (cost, order_rev) ->
            let order = Array.of_list (List.rev order_rev) in
            let p = Plan.wco q order in
            let chain = ref [] in
            let acc = ref Bitset.empty in
            Array.iteri
              (fun i v ->
                acc := Bitset.add v !acc;
                if i >= 1 then chain := !acc :: !chain)
              order;
            best := consider s !best (Some { plan = p; cost; chain = List.rev !chain })
        | None -> ());
        (* (ii) extend a best sub-plan by one vertex. *)
        if opts.mode <> Bj_only then
          Bitset.iter
            (fun v ->
              let child = Bitset.remove v s in
              if Bitset.inter (Query.neighbours q v) child <> Bitset.empty then
                match Hashtbl.find_opt table child with
                | Some ci ->
                    let c =
                      ci.cost +. Cost_model.extension_icost model ~chain:ci.chain ~child ~v
                    in
                    best :=
                      consider s !best
                        (Some
                           {
                             plan = Plan.extend q ci.plan v;
                             cost = c;
                             chain = ci.chain @ [ s ];
                           })
                | None -> ())
            s;
        (* (iii) hash join two best sub-plans. In beam mode the submask walk
           below would be 2^k per subset; the kept table is tiny, so
           enumerate pairs of kept entries instead. *)
        if opts.mode <> Wco_only && m > opts.beam_threshold then
          Hashtbl.iter
            (fun s1 i1 ->
              if Bitset.subset s1 s && s1 <> s then
                Hashtbl.iter
                  (fun s2 i2 ->
                    if
                      Bitset.union s1 s2 = s && s2 <> s
                      && Bitset.inter s1 s2 <> Bitset.empty
                    then begin
                      let new1 = Bitset.diff s1 s2 and new2 = Bitset.diff s2 s1 in
                      let convertible = Bitset.cardinal new1 <= 1 || Bitset.cardinal new2 <= 1 in
                      if (opts.mode = Bj_only) || not convertible then begin
                        let covered =
                          List.for_all
                            (fun (e : Query.edge) ->
                              (Bitset.mem e.src s1 && Bitset.mem e.dst s1)
                              || (Bitset.mem e.src s2 && Bitset.mem e.dst s2))
                            (Query.edges_within q s)
                        in
                        if covered then begin
                          let c1 = Cost_model.card model s1 and c2 = Cost_model.card model s2 in
                          let build, probe, bi, pi =
                            if c1 <= c2 then (s1, s2, i1, i2) else (s2, s1, i2, i1)
                          in
                          let cost =
                            bi.cost +. pi.cost +. Cost_model.hash_join_cost model build probe
                          in
                          best :=
                            consider s !best
                              (Some
                                 { plan = Plan.hash_join q bi.plan pi.plan; cost; chain = [ s ] })
                        end
                      end
                    end)
                  table)
            table
        else if opts.mode <> Wco_only then
          Bitset.fold_proper_nonempty_subsets
            (fun s1 () ->
              match Hashtbl.find_opt table s1 with
              | None -> ()
              | Some i1 ->
                  let rest = Bitset.diff s s1 in
                  if rest <> Bitset.empty then
                    (* Overlap O: any nonempty subset of s1; s2 = rest U O. *)
                    let consider_pair o =
                      let s2 = Bitset.union rest o in
                      if s2 <> s then
                        match Hashtbl.find_opt table s2 with
                        | None -> ()
                        | Some i2 ->
                            let new1 = Bitset.diff s1 s2 and new2 = Bitset.diff s2 s1 in
                            let convertible =
                              Bitset.cardinal new1 <= 1 || Bitset.cardinal new2 <= 1
                            in
                            if (opts.mode = Bj_only) || not convertible then begin
                              (* Projection constraint coverage: every induced
                                 edge must lie within one child. *)
                              let covered =
                                List.for_all
                                  (fun (e : Query.edge) ->
                                    (Bitset.mem e.src s1 && Bitset.mem e.dst s1)
                                    || (Bitset.mem e.src s2 && Bitset.mem e.dst s2))
                                  (Query.edges_within q s)
                              in
                              if covered then begin
                                (* Build on the smaller estimated side. *)
                                let c1 = Cost_model.card model s1
                                and c2 = Cost_model.card model s2 in
                                let build, probe, bi, pi =
                                  if c1 <= c2 then (s1, s2, i1, i2) else (s2, s1, i2, i1)
                                in
                                let cost =
                                  bi.cost +. pi.cost
                                  +. Cost_model.hash_join_cost model build probe
                                in
                                best :=
                                  consider s !best
                                    (Some
                                       {
                                         plan = Plan.hash_join q bi.plan pi.plan;
                                         cost;
                                         chain = [ s ];
                                       })
                              end
                            end
                    in
                    let o = ref s1 in
                    let continue = ref true in
                    while !continue do
                      consider_pair !o;
                      if !o = Bitset.empty then continue := false
                      else begin
                        o := (!o - 1) land s1;
                        if !o = Bitset.empty then continue := false else ()
                      end
                    done)
            s ();
        match !best with
        | Some info -> Hashtbl.replace table s info
        | None -> ())
      (subsets_at k);
    (* Beam pruning for very large queries (Section 4.4). *)
    if m > opts.beam_threshold && k < m then begin
      let level = ref [] in
      Hashtbl.iter
        (fun s i -> if Bitset.cardinal s = k then level := (s, i) :: !level)
        table;
      let sorted = List.sort (fun (_, a) (_, b) -> compare a.cost b.cost) !level in
      List.iteri (fun i (s, _) -> if i >= opts.beam_width then Hashtbl.remove table s) sorted
    end
  done;
  (match trace with
  | Some tb ->
      Gf_obs.Trace.end_span ~args:[ ("table", Gf_obs.Trace.Int (Hashtbl.length table)) ] tb
  | None -> ());
  match Hashtbl.find_opt table (Bitset.full m) with
  | Some info ->
      (match trace with
      | Some tb -> Gf_obs.Trace.end_span ~args:[ ("cost", Gf_obs.Trace.Float info.cost) ] tb
      | None -> ());
      (info.plan, info.cost)
  | None ->
      raise
        (No_plan
           (Printf.sprintf "plan space '%s' contains no plan for this query"
              (match opts.mode with Hybrid -> "hybrid" | Wco_only -> "wco" | Bj_only -> "bj")))
