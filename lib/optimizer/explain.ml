module Bitset = Gf_util.Bitset
module Plan = Gf_plan.Plan
module Catalog = Gf_catalog.Catalog
module Profile = Gf_exec.Profile

type row = {
  id : int;
  label : string;
  kind : Profile.kind;
  depth : int;
  est_card : float;
  act_card : int;
  card_q : float;
  est_cost : float;
  act_cost : float;
  cost_q : float option;
  time_s : float;
  cache_hits : int;
  intersections : int;
  hj_build : int;
  hj_probe : int;
}

(* The chain of an Extend node, for [Cost_model.extension_icost]: vertex-set
   prefixes from the anchor of the E/I chain it roots (a SCAN pair or a
   HASH-JOIN output) up to its child — anchor first, child last, matching
   how the planner builds chains while enumerating orders. *)
let chain_below = function
  | Plan.Extend { child; _ } ->
      let rec down acc n =
        match n with
        | Plan.Extend { child = c; _ } -> down (Plan.var_set n :: acc) c
        | anchor -> Plan.var_set anchor :: acc
      in
      down [] child
  | _ -> []

let rows ?cache_conscious ?weights cat q plan prof =
  let model = Cost_model.create ?cache_conscious ?weights cat q in
  let w = Option.value weights ~default:Cost.default_weights in
  if not (Profile.plan prof == plan) then
    invalid_arg "Explain.rows: profile belongs to a different plan";
  Array.map
    (fun (o : Profile.op) ->
      let node = fst (Plan.operators plan).(o.id) in
      let est_card = Cost_model.card model (Plan.var_set node) in
      let est_cost, act_cost, cost_q =
        match node with
        | Plan.Scan _ -> (0.0, 0.0, None)
        | Plan.Extend { target; child; _ } ->
            let est =
              Cost_model.extension_icost model ~chain:(chain_below node)
                ~child:(Plan.var_set child) ~v:target
            in
            let act = float_of_int o.icost in
            (est, act, Some (Catalog.q_error ~estimate:est ~truth:act))
        | Plan.Hash_join { build; probe; _ } ->
            let est =
              Cost_model.hash_join_cost model (Plan.var_set build) (Plan.var_set probe)
            in
            (* Actual cost under the same weights the model uses (Section
               4.2's w1/w2): build and probe tuples that actually flowed
               through this join's table. *)
            let act =
              (w.Cost.w1 *. float_of_int o.hj_build)
              +. (w.Cost.w2 *. float_of_int o.hj_probe)
            in
            (est, act, Some (Catalog.q_error ~estimate:est ~truth:act))
      in
      {
        id = o.id;
        label = o.label;
        kind = o.kind;
        depth = o.depth;
        est_card;
        act_card = o.produced;
        card_q = Catalog.q_error ~estimate:est_card ~truth:(float_of_int o.produced);
        est_cost;
        act_cost;
        cost_q;
        time_s = o.time_s;
        cache_hits = o.cache_hits;
        intersections = o.intersections;
        hj_build = o.hj_build;
        hj_probe = o.hj_probe;
      })
    (Profile.ops prof)
  |> Array.to_list

let fmt_f v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3g" v

let fmt_q = function
  | q when Float.is_nan q -> "-"
  | q when not (Float.is_finite q) -> if q > 0.0 then "inf" else "-inf"
  | q -> Printf.sprintf "%.2f" q

let to_string rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-3s %-28s %12s %12s %7s %12s %12s %7s %9s %s\n" "op" "operator"
       "est.card" "act.card" "q-err" "est.cost" "act.cost" "q-err" "time" "notes");
  List.iter
    (fun r ->
      let label =
        let s = String.make (2 * r.depth) ' ' ^ r.label in
        if String.length s > 28 then String.sub s 0 28 else s
      in
      let notes =
        match r.kind with
        | Profile.Extend ->
            Printf.sprintf "hits=%d inter=%d" r.cache_hits r.intersections
        | Profile.Hash_join -> Printf.sprintf "build=%d probe=%d" r.hj_build r.hj_probe
        | Profile.Scan -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "%-3d %-28s %12s %12d %7s %12s %12s %7s %8.3fs %s\n" r.id label
           (fmt_f r.est_card) r.act_card (fmt_q r.card_q) (fmt_f r.est_cost)
           (fmt_f r.act_cost)
           (match r.cost_q with None -> "-" | Some q -> fmt_q q)
           r.time_s notes))
    rows;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no literal for NaN or the infinities; [null] is the only
   representation every parser accepts. *)
let json_float v =
  if Float.is_finite v then Printf.sprintf "%.6g" v else "null"

let row_to_json r =
  Printf.sprintf
    "{\"id\":%d,\"operator\":\"%s\",\"kind\":\"%s\",\"depth\":%d,\"est_card\":%s,\"act_card\":%d,\"card_q_error\":%s,\"est_cost\":%s,\"act_cost\":%s,\"cost_q_error\":%s,\"time_s\":%s,\"cache_hits\":%d,\"intersections\":%d,\"hj_build\":%d,\"hj_probe\":%d}"
    r.id (json_escape r.label)
    (Profile.kind_to_string r.kind)
    r.depth (json_float r.est_card) r.act_card (json_float r.card_q)
    (json_float r.est_cost) (json_float r.act_cost)
    (match r.cost_q with None -> "null" | Some q -> json_float q)
    (json_float r.time_s) r.cache_hits r.intersections r.hj_build r.hj_probe

let rows_to_json rows = "[" ^ String.concat "," (List.map row_to_json rows) ^ "]"
