module Bitset = Gf_util.Bitset
module Int_vec = Gf_util.Int_vec
module Sorted = Gf_util.Sorted
module Graph = Gf_graph.Graph
module Query = Gf_query.Query
module Plan = Gf_plan.Plan
module Exec = Gf_exec.Exec
module Counters = Gf_exec.Counters
module Governor = Gf_exec.Governor
module Catalog = Gf_catalog.Catalog
module Cost_model = Gf_opt.Cost_model

type stats = {
  segments : int;
  candidate_orderings : int;
  tuples_routed : int;
  orderings_used : int;
}

let adaptable p = Plan.max_ei_chain p >= 2

(* Split a chain of Extend nodes: returns the anchor sub-plan and the
   extended targets in extension order. *)
let rec split_chain = function
  | Plan.Extend { child; target; _ } ->
      let anchor, targets = split_chain child in
      (anchor, targets @ [ target ])
  | p -> (p, [])

(* One E/I step of a candidate ordering. *)
type step = {
  target : int;
  target_label : int;
  descriptors : (int * Graph.direction * int) array; (* tuple position, dir, elabel *)
  est_sizes : float array; (* catalogue average size per descriptor *)
  est_total : float;
  mu : float;
  cover_prefix : int; (* smallest j such that bound + first j targets cover all
                         descriptor sources; 0 = bound alone *)
  (* runtime intersection-cache state *)
  srcs : int array;
  last_srcs : int array;
  slices : Sorted.slice array;
  result : Int_vec.t;
  scratch : Int_vec.t;
  scratch2 : Int_vec.t;
  mutable cache_valid : bool;
}

type ordering = {
  steps : step array;
  out_perm : int array; (* fixed-schema position -> partial-tuple position *)
  mutable routed : int;
}

let build_ordering cat model q ~anchor_vars ~bound_set ~fixed_schema order =
  let nb = Array.length anchor_vars in
  let pos_of = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace pos_of v i) anchor_vars;
  Array.iteri (fun j v -> Hashtbl.replace pos_of v (nb + j)) order;
  let prefix = ref bound_set in
  let steps =
    Array.mapi
      (fun j v ->
        let child = !prefix in
        let descriptors = ref [] in
        Array.iter
          (fun (e : Query.edge) ->
            if e.dst = v && Bitset.mem e.src child then
              descriptors := (e.src, Graph.Fwd, e.label) :: !descriptors
            else if e.src = v && Bitset.mem e.dst child then
              descriptors := (e.dst, Graph.Bwd, e.label) :: !descriptors)
          q.Query.edges;
        let descriptors = Array.of_list (List.rev !descriptors) in
        let sub, map = Query.induced q (Bitset.add v child) in
        let sub_pos = Hashtbl.create 8 in
        Array.iteri (fun i ov -> Hashtbl.replace sub_pos ov i) map;
        let vpos = Hashtbl.find sub_pos v in
        let est_sizes =
          Array.map
            (fun (src, dir, el) ->
              Catalog.descriptor_size cat sub ~new_vertex:vpos
                ~src:(Hashtbl.find sub_pos src) ~dir ~elabel:el)
            descriptors
        in
        let cover_prefix =
          let sources =
            Array.fold_left (fun s (src, _, _) -> Bitset.add src s) Bitset.empty descriptors
          in
          let rec find i covered =
            if Bitset.subset sources covered then i
            else if i >= j then j
            else find (i + 1) (Bitset.add order.(i) covered)
          in
          find 0 bound_set
        in
        let nd = Array.length descriptors in
        let step =
          {
            target = v;
            target_label = Query.vlabel q v;
            descriptors =
              Array.map (fun (src, dir, el) -> (Hashtbl.find pos_of src, dir, el)) descriptors;
            est_sizes;
            est_total = Array.fold_left ( +. ) 0.0 est_sizes;
            mu = Cost_model.mu model ~child ~v;
            cover_prefix;
            srcs = Array.make nd (-1);
            last_srcs = Array.make nd (-1);
            slices = Array.make nd Sorted.empty_slice;
            result = Int_vec.create ~capacity:32 ();
            scratch = Int_vec.create ~capacity:32 ();
            scratch2 = Int_vec.create ~capacity:32 ();
            cache_valid = false;
          }
        in
        prefix := Bitset.add v !prefix;
        step)
      order
  in
  let out_perm =
    Array.map (fun v -> Hashtbl.find pos_of v) fixed_schema
  in
  { steps; out_perm; routed = 0 }

(* Per-tuple cost re-evaluation (Example 6.2): replace the first step's
   estimated list sizes with the actual sizes of the anchor tuple's
   adjacency lists, scale its selectivity by the observed ratios, and
   re-derive downstream cardinalities from there. *)
let reestimate g ord tuple =
  let cost = ref 0.0 in
  let prefix_cards = Array.make (Array.length ord.steps + 1) 1.0 in
  Array.iteri
    (fun j step ->
      if j = 0 then begin
        let ratio = ref 1.0 in
        let actual_total = ref 0.0 in
        Array.iteri
          (fun i (pos, dir, el) ->
            let actual =
              float_of_int
                (Graph.partition_size g dir tuple.(pos) ~elabel:el ~nlabel:step.target_label)
            in
            actual_total := !actual_total +. actual;
            ratio := !ratio *. (actual /. Float.max step.est_sizes.(i) 0.5))
          step.descriptors;
        cost := !cost +. !actual_total;
        prefix_cards.(1) <- Float.max 0.0 (step.mu *. !ratio)
      end
      else begin
        let mult =
          Float.min prefix_cards.(step.cover_prefix) prefix_cards.(j)
        in
        cost := !cost +. (mult *. step.est_total);
        prefix_cards.(j + 1) <- prefix_cards.(j) *. step.mu
      end)
    ord.steps;
  !cost

let run ?(cache = true) ?(distinct = false) ?limit ?gov ?prof ?(sink = fun _ -> ()) cat g q plan =
  let model = Cost_model.create cat q in
  let seg_count = ref 0 in
  let cand_count = ref 0 in
  let routed_count = ref 0 in
  let all_orderings : ordering list ref = ref [] in
  let rewrite recurse (env : Exec.env) node =
    match node with
    | Plan.Extend _ when Plan.max_ei_chain node >= 2 && adaptable node -> (
        let anchor, targets = split_chain node in
        match targets with
        | [] | [ _ ] -> None
        | _ ->
            let anchor_vars = Plan.vars anchor in
            let bound_set = Plan.var_set anchor in
            let fixed_schema =
              Array.of_list (Array.to_list (Plan.vars node))
            in
            let fixed_targets =
              Array.sub fixed_schema (Array.length anchor_vars) (List.length targets)
            in
            (* Candidate orderings: all connected orders of the chain's
               vertex set extending the anchor. *)
            let full = Array.fold_left (fun s v -> Bitset.add v s) bound_set fixed_targets in
            let sub, map = Query.induced q full in
            let bound_sub =
              Array.to_list map
              |> List.mapi (fun i ov -> (i, ov))
              |> List.filter (fun (_, ov) -> Bitset.mem ov bound_set)
              |> List.map fst |> Bitset.of_list
            in
            let orders =
              Query.connected_orders_extending sub ~bound:bound_sub
              |> List.map (fun o -> Array.map (fun i -> map.(i)) o)
            in
            let orderings =
              List.map
                (fun o ->
                  build_ordering cat model q ~anchor_vars ~bound_set ~fixed_schema o)
                orders
            in
            incr seg_count;
            cand_count := !cand_count + List.length orderings;
            all_orderings := orderings @ !all_orderings;
            let orderings = Array.of_list orderings in
            let anchor_driver = recurse env anchor in
            let nb = Array.length anchor_vars in
            let width = Array.length fixed_schema in
            let partial = Array.make width 0 in
            let out_buf = Array.make width 0 in
            let c = env.Exec.c in
            Some
              (fun sink ->
                Array.iter
                  (fun (ord : ordering) ->
                    Array.iter
                      (fun st ->
                        st.cache_valid <- false;
                        Array.fill st.last_srcs 0 (Array.length st.last_srcs) (-1))
                      ord.steps)
                  orderings;
                anchor_driver (fun t ->
                    incr routed_count;
                    (* Route to the cheapest re-estimated ordering. *)
                    let best = ref 0 and best_cost = ref infinity in
                    Array.iteri
                      (fun i ord ->
                        let est = reestimate env.Exec.g ord t in
                        if est < !best_cost then begin
                          best_cost := est;
                          best := i
                        end)
                      orderings;
                    let ord = orderings.(!best) in
                    ord.routed <- ord.routed + 1;
                    Array.blit t 0 partial 0 nb;
                    let nsteps = Array.length ord.steps in
                    let rec exec_step j =
                      let st = ord.steps.(j) in
                      let nd = Array.length st.descriptors in
                      let same = ref st.cache_valid in
                      for i = 0 to nd - 1 do
                        let pos, _, _ = st.descriptors.(i) in
                        let s = partial.(pos) in
                        st.srcs.(i) <- s;
                        if s <> st.last_srcs.(i) then same := false
                      done;
                      if env.Exec.cache && !same then c.Counters.cache_hits <- c.Counters.cache_hits + 1
                      else begin
                        for i = 0 to nd - 1 do
                          let _, dir, el = st.descriptors.(i) in
                          let slice =
                            Graph.neighbours env.Exec.g dir st.srcs.(i) ~elabel:el
                              ~nlabel:st.target_label
                          in
                          st.slices.(i) <- slice;
                          c.Counters.icost <- c.Counters.icost + Sorted.slice_len slice
                        done;
                        c.Counters.intersections <- c.Counters.intersections + 1;
                        Int_vec.clear st.result;
                        Sorted.intersect ~scratch2:st.scratch2 st.result st.slices ~scratch:st.scratch;
                        Array.blit st.srcs 0 st.last_srcs 0 nd;
                        st.cache_valid <- true
                      end;
                      let n = Int_vec.length st.result in
                      for i = 0 to n - 1 do
                        let w = Int_vec.unsafe_get st.result i in
                        (* Injectivity under [distinct]: a candidate equal to
                           any already-bound vertex of this partial match is
                           dropped, matching the structural E/I operator. *)
                        if not (env.Exec.distinct && Exec.tuple_contains partial (nb + j) w)
                        then begin
                          partial.(nb + j) <- w;
                          if j + 1 = nsteps then begin
                            (* Permute back to the fixed plan schema. *)
                            for p = 0 to width - 1 do
                              out_buf.(p) <- partial.(ord.out_perm.(p))
                            done;
                            c.Counters.produced <- c.Counters.produced + 1;
                            Governor.tick env.Exec.gov c;
                            sink out_buf
                          end
                          else begin
                            c.Counters.produced <- c.Counters.produced + 1;
                            Governor.tick env.Exec.gov c;
                            exec_step (j + 1)
                          end
                        end
                      done
                    in
                    exec_step 0))
        )
    | _ -> None
  in
  let counters = Exec.run_rw ~rewrite ~cache ~distinct ?limit ?gov ?prof ~sink g plan in
  let used = List.length (List.filter (fun o -> o.routed > 0) !all_orderings) in
  ( counters,
    {
      segments = !seg_count;
      candidate_orderings = !cand_count;
      tuples_routed = !routed_count;
      orderings_used = used;
    } )
