(** Adaptive evaluation of WCO plan parts (Section 6).

    Every maximal chain of two or more E/I operators in a fixed plan is
    replaced by an adaptive segment. The segment fixes the sub-plan below
    the chain (its anchor: a SCAN or a HASH-JOIN) and, for each anchor
    tuple, re-estimates the cost of every connected ordering of the chain's
    remaining query vertices using the tuple's *actual* adjacency list sizes
    (catalogue averages are replaced by observed sizes, and selectivities are
    scaled by the observed/estimated ratios — Example 6.2). The tuple is
    routed to the cheapest ordering's pipeline; each ordering keeps its own
    intersection-cache state.

    Results are identical to the fixed plan's; only the work differs. *)

type stats = {
  segments : int;  (** adaptive segments installed *)
  candidate_orderings : int;  (** total candidate orderings across segments *)
  tuples_routed : int;  (** anchor tuples that went through a cost re-evaluation *)
  orderings_used : int;  (** distinct orderings that received at least one tuple *)
}

(** [run cat g q plan] executes [plan] with adaptive segments. The plan must
    be a plan for [q]. Output tuple schema is [Plan.vars plan] (adaptive
    segments permute their output back to the fixed schema). [distinct]
    requests injective (subgraph-isomorphism) matches: adaptive pipelines
    apply the same repeated-vertex filter as the structural E/I operator, so
    results match [Exec.run ~distinct:true] of the fixed plan. [gov] runs
    the query under an externally created governor; adaptive pipelines tick
    it per produced tuple like the structural operators, so budgets trip
    inside segments too. [prof] profiles per-operator actuals; all work of
    an adaptive segment (whatever ordering each tuple was routed to) is
    charged to the segment's chain-root operator id, and the interior chain
    operators it replaces report zero. *)
val run :
  ?cache:bool ->
  ?distinct:bool ->
  ?limit:int ->
  ?gov:Gf_exec.Governor.t ->
  ?prof:Gf_exec.Profile.t ->
  ?sink:(int array -> unit) ->
  Gf_catalog.Catalog.t ->
  Gf_graph.Graph.t ->
  Gf_query.Query.t ->
  Gf_plan.Plan.t ->
  Gf_exec.Counters.t * stats

(** [adaptable plan] is true when [plan] contains a chain of >= 2 E/I
    operators (the paper adapts exactly those plans). *)
val adaptable : Gf_plan.Plan.t -> bool
