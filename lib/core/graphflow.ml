module Graph = Gf_graph.Graph
module Generators = Gf_graph.Generators
module Graph_stats = Gf_graph.Stats
module Graph_io = Gf_graph.Graph_io
module Delta = Gf_graph.Delta
module Query = Gf_query.Query
module Query_parser = Gf_query.Parser
module Parse_error = Gf_query.Parse_error
module Cypher = Gf_query.Cypher
module Patterns = Gf_query.Patterns
module Canon = Gf_query.Canon
module Plan = Gf_plan.Plan
module Exec = Gf_exec.Exec
module Counters = Gf_exec.Counters
module Governor = Gf_exec.Governor
module Profile = Gf_exec.Profile
module Metrics = Gf_exec.Metrics
module Naive = Gf_exec.Naive
module Parallel = Gf_exec.Parallel
module Catalog = Gf_catalog.Catalog
module Independence = Gf_catalog.Independence
module Wander = Gf_catalog.Wander
module Cost = Gf_opt.Cost
module Cost_model = Gf_opt.Cost_model
module Planner = Gf_opt.Planner
module Plan_cache = Gf_opt.Plan_cache
module Explain = Gf_opt.Explain
module Adaptive = Gf_adaptive.Adaptive
module Simplex = Gf_lp.Simplex
module Edge_cover = Gf_lp.Edge_cover
module Ghd = Gf_ghd.Ghd
module Bj_baseline = Gf_baseline.Bj
module Cfl_baseline = Gf_baseline.Cfl
module Query_gen = Gf_baseline.Query_gen
module Spectrum = Gf_spectrum.Spectrum
module Rng = Gf_util.Rng
module Crc32 = Gf_util.Crc32
module Bitset = Gf_util.Bitset
module Buf = Gf_util.Buf
module Int_vec = Gf_util.Int_vec
module Sorted = Gf_util.Sorted
module Trace = Gf_obs.Trace
module Recorder = Gf_obs.Recorder

module Db = struct
  type t = {
    graph : Graph.t;
    catalog : Catalog.t;
    opts : Planner.opts;
    cache : Plan_cache.t option;
    version : int;  (* graph version the plan cache keys against *)
  }

  let create ?h ?z ?seed ?(opts = Planner.default_opts) ?plan_cache ?(version = 0)
      graph =
    { graph; catalog = Catalog.create ?h ?z ?seed graph; opts; cache = plan_cache; version }

  (* A db re-seated on a new graph: fresh catalogue (the old one's
     entries describe the old CSR's distributions), same planner opts.
     This is the merge-publication path of the durable store. The plan
     cache object is carried over but its entries are keyed by graph
     version, so they go stale the moment the version advances (callers
     with a durable store pass its version; otherwise we bump). *)
  let with_graph ?version db graph =
    {
      graph;
      catalog = Catalog.create graph;
      opts = db.opts;
      cache = db.cache;
      version = (match version with Some v -> v | None -> db.version + 1);
    }

  let graph db = db.graph
  let catalog db = db.catalog
  let plan_cache db = db.cache
  let graph_version db = db.version
  let parse_query = Query_parser.parse

  let plan db q =
    match db.cache with
    | None -> Planner.plan ~opts:db.opts db.catalog q
    | Some c ->
        let r = Plan_cache.lookup c ~opts:db.opts ~graph_version:db.version db.catalog q in
        (r.Plan_cache.plan, r.Plan_cache.cost)

  (* Plan signature for the flight recorder: a cached entry answers without
     touching hit/miss accounting. *)
  let plan_signature db q =
    match db.cache with
    | Some c -> (
        match Plan_cache.peek c ~graph_version:db.version q with
        | Some p -> Plan.signature p
        | None -> Plan.signature (fst (plan db q)))
    | None -> Plan.signature (fst (plan db q))

  (* Query-level metrics. Looked up by name at record time (not cached in
     globals) so a [Metrics.reset] between queries cannot leave increments
     going to unregistered cells. *)
  let observe_run seconds (c : Counters.t) outcome =
    Metrics.inc (Metrics.counter ~help:"Queries executed" "gf_queries_total");
    Metrics.inc ~by:c.Counters.output
      (Metrics.counter ~help:"Output tuples emitted" "gf_query_matches_total");
    Metrics.inc ~by:c.Counters.produced
      (Metrics.counter ~help:"Tuples produced by all operators" "gf_tuples_produced_total");
    Metrics.inc ~by:c.Counters.icost
      (Metrics.counter ~help:"Adjacency-list entries touched (i-cost, Eq. 1)"
         "gf_icost_total");
    (match outcome with
    | Governor.Completed -> ()
    | Governor.Truncated _ ->
        Metrics.inc (Metrics.counter ~help:"Queries truncated by a budget" "gf_queries_truncated_total")
    | Governor.Failed _ ->
        Metrics.inc (Metrics.counter ~help:"Queries that failed" "gf_queries_failed_total"));
    Metrics.observe
      (Metrics.histogram ~help:"Query latency in seconds" "gf_query_seconds")
      seconds

  let metrics_exposition () = Metrics.exposition ()

  let run ?(adaptive = false) ?limit ?sink db q =
    let p, _ = plan db q in
    let t0 = Gf_util.Timing.now_s () in
    let c =
      if adaptive && Adaptive.adaptable p then
        fst (Adaptive.run ?limit ?sink db.catalog db.graph q p)
      else Exec.run ?limit ?sink db.graph p
    in
    observe_run (Gf_util.Timing.now_s () -. t0) c Governor.Completed;
    c

  (* Fold the profiled actuals of one completed execution into the plan
     cache's per-template corrections. Estimation rows come from the
     uncorrected model, so ratios measure the catalogue's true error; any
     failure here is swallowed — feedback must never fail a request. *)
  let feed_cache db q p outcome prof =
    match (db.cache, outcome) with
    | Some cache, Governor.Completed -> (
        try
          let rows =
            Explain.rows ~cache_conscious:db.opts.Planner.cache_conscious
              ~weights:db.opts.Planner.weights db.catalog q p prof
          in
          Plan_cache.observe cache ~graph_version:db.version q p rows
        with _ -> ())
    | _ -> ()

  let run_gov ?(adaptive = false) ?(domains = 1) ?scan_part ?budget ?fault ?gov ?trace ?sink db q =
    (* The planner runs on this thread: give it its own buffer (tid 2) so
       optimization time is visible next to the execution tracks. *)
    let pbuf = Option.map (fun tr -> Trace.buffer ~name:"planner" tr ~tid:2) trace in
    let p, feedback_due =
      match db.cache with
      | None -> (fst (Planner.plan ~opts:db.opts ?trace:pbuf db.catalog q), false)
      | Some c ->
          let r =
            Plan_cache.lookup ?trace:pbuf c ~opts:db.opts ~graph_version:db.version
              db.catalog q
          in
          (r.Plan_cache.plan, r.Plan_cache.feedback_due)
    in
    (match pbuf with Some b -> Trace.close_all b | None -> ());
    (* Warmup and every Nth run of a cached template execute profiled so
       EXPLAIN ANALYZE actuals can feed the correction record. A sharded run
       never profiles: its actuals are a fraction of the full plan's
       estimates and would poison the correction EWMAs. *)
    let prof =
      if feedback_due && scan_part = None then Some (Profile.create p) else None
    in
    let t0 = Gf_util.Timing.now_s () in
    let c, outcome =
      match scan_part with
      | Some (i, k) ->
          (* Cluster shard: the driving scan restricted to the i-th of k
             equal slices of its source space. Always sequential — the
             worker process is the parallelism unit, and every worker must
             derive the identical plan (same catalogue, same graph) for
             disjoint ranges to union into the exact full result. *)
          let n = Exec.num_scan_sources db.graph p in
          let lo = i * n / k and hi = (i + 1) * n / k in
          let gov =
            match gov with
            | Some g -> g
            | None ->
                Governor.create ?fault (Option.value budget ~default:Governor.unlimited)
          in
          Exec.run_gov_rw
            ~rewrite:(Exec.ranged_scan_rewrite p ~lo ~hi)
            ~gov ?trace ?sink db.graph p
      | None ->
      if domains > 1 then begin
        let r = Parallel.run ~domains ?budget ?fault ?gov ?prof ?trace ?sink db.graph p in
        (r.Parallel.counters, r.Parallel.outcome)
      end
      else if adaptive && Adaptive.adaptable p then begin
        (* The adaptive evaluator has no span hooks yet: a traced adaptive
           run still records planner spans and the whole-query record, just
           no per-operator tracks. *)
        let gov =
          match gov with
          | Some t -> t
          | None ->
              Governor.create ?fault (Option.value budget ~default:Governor.unlimited)
        in
        let sink = Option.value sink ~default:(fun _ -> ()) in
        let c = fst (Adaptive.run ~gov ?prof ~sink db.catalog db.graph q p) in
        (c, Governor.outcome gov)
      end
      else Exec.run_gov ?budget ?fault ?gov ?prof ?trace ?sink db.graph p
    in
    observe_run (Gf_util.Timing.now_s () -. t0) c outcome;
    (match prof with Some prof -> feed_cache db q p outcome prof | None -> ());
    (c, outcome)

  type analysis = {
    plan : Plan.t;
    rows : Explain.row list;
    counters : Counters.t;
    outcome : Governor.outcome;
    seconds : float;
  }

  let explain_analyze ?(adaptive = false) ?(domains = 1) ?budget ?fault db q =
    let p, _ = plan db q in
    let prof = Profile.create p in
    let t0 = Gf_util.Timing.now_s () in
    let c, outcome =
      if domains > 1 then begin
        let r = Parallel.run ~domains ?budget ?fault ~prof db.graph p in
        (r.Parallel.counters, r.Parallel.outcome)
      end
      else if adaptive && Adaptive.adaptable p then begin
        let gov = Governor.create ?fault (Option.value budget ~default:Governor.unlimited) in
        let c = fst (Adaptive.run ~gov ~prof db.catalog db.graph q p) in
        (c, Governor.outcome gov)
      end
      else Exec.run_gov ?budget ?fault ~prof db.graph p
    in
    let seconds = Gf_util.Timing.now_s () -. t0 in
    observe_run seconds c outcome;
    let rows =
      Explain.rows ~cache_conscious:db.opts.Planner.cache_conscious
        ~weights:db.opts.Planner.weights db.catalog q p prof
    in
    (* Every EXPLAIN ANALYZE is a profiled execution: fold it into the plan
       cache's corrections when one is attached. *)
    (match (db.cache, outcome) with
    | Some cache, Governor.Completed -> (
        try Plan_cache.observe cache ~graph_version:db.version q p rows with _ -> ())
    | _ -> ());
    { plan = p; rows; counters = c; outcome; seconds }

  let analysis_to_string a =
    Format.asprintf "matches: %d@.outcome: %a@.time: %.3fs@.%a@.%s"
      a.counters.Counters.output Governor.pp_outcome a.outcome a.seconds Counters.pp
      a.counters (Explain.to_string a.rows)

  let counters_to_json (c : Counters.t) =
    Printf.sprintf
      "{\"output\":%d,\"produced\":%d,\"icost\":%d,\"cache_hits\":%d,\"intersections\":%d,\"hj_build\":%d,\"hj_probe\":%d,\"morsels\":%d,\"steals\":%d,\"busy_s\":%.6f,\"gov_checks\":%d}"
      c.Counters.output c.Counters.produced c.Counters.icost c.Counters.cache_hits
      c.Counters.intersections c.Counters.hj_build_tuples c.Counters.hj_probe_tuples
      c.Counters.morsels c.Counters.steals c.Counters.busy_s c.Counters.gov_checks

  let analysis_to_json a =
    Printf.sprintf
      "{\"matches\":%d,\"outcome\":\"%s\",\"time_s\":%.6f,\"counters\":%s,\"operators\":%s}"
      a.counters.Counters.output
      (Explain.json_escape (Governor.outcome_to_string a.outcome))
      a.seconds (counters_to_json a.counters)
      (Explain.rows_to_json a.rows)

  let count ?adaptive db q =
    let c = run ?adaptive db q in
    c.Counters.output

  let explain db q =
    let p, cost = plan db q in
    Format.asprintf "estimated cost: %.0f i-cost units@.%a@." cost Plan.pp p

  let estimate_cardinality db q = Catalog.estimate_cardinality db.catalog q

  let count_by ?adaptive db q ~key =
    let p, _ = plan db q in
    let schema = Plan.vars p in
    let positions =
      List.map
        (fun v ->
          let pos = ref (-1) in
          Array.iteri (fun i x -> if x = v then pos := i) schema;
          if !pos < 0 then invalid_arg "Db.count_by: key vertex not in query";
          !pos)
        key
    in
    let groups = Hashtbl.create 1024 in
    let sink t =
      let k = Array.of_list (List.map (fun p -> t.(p)) positions) in
      Hashtbl.replace groups k (1 + Option.value ~default:0 (Hashtbl.find_opt groups k))
    in
    let (_ : Counters.t) =
      if Option.value ~default:false adaptive && Adaptive.adaptable p then
        fst (Adaptive.run ~sink db.catalog db.graph q p)
      else Exec.run ~sink db.graph p
    in
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) groups []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
end
