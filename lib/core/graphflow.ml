module Graph = Gf_graph.Graph
module Generators = Gf_graph.Generators
module Graph_stats = Gf_graph.Stats
module Graph_io = Gf_graph.Graph_io
module Query = Gf_query.Query
module Query_parser = Gf_query.Parser
module Parse_error = Gf_query.Parse_error
module Cypher = Gf_query.Cypher
module Patterns = Gf_query.Patterns
module Canon = Gf_query.Canon
module Plan = Gf_plan.Plan
module Exec = Gf_exec.Exec
module Counters = Gf_exec.Counters
module Governor = Gf_exec.Governor
module Naive = Gf_exec.Naive
module Parallel = Gf_exec.Parallel
module Catalog = Gf_catalog.Catalog
module Independence = Gf_catalog.Independence
module Wander = Gf_catalog.Wander
module Cost = Gf_opt.Cost
module Cost_model = Gf_opt.Cost_model
module Planner = Gf_opt.Planner
module Adaptive = Gf_adaptive.Adaptive
module Simplex = Gf_lp.Simplex
module Edge_cover = Gf_lp.Edge_cover
module Ghd = Gf_ghd.Ghd
module Bj_baseline = Gf_baseline.Bj
module Cfl_baseline = Gf_baseline.Cfl
module Query_gen = Gf_baseline.Query_gen
module Spectrum = Gf_spectrum.Spectrum
module Rng = Gf_util.Rng
module Bitset = Gf_util.Bitset

module Db = struct
  type t = { graph : Graph.t; catalog : Catalog.t; opts : Planner.opts }

  let create ?h ?z ?seed ?(opts = Planner.default_opts) graph =
    { graph; catalog = Catalog.create ?h ?z ?seed graph; opts }

  let graph db = db.graph
  let catalog db = db.catalog
  let parse_query = Query_parser.parse
  let plan db q = Planner.plan ~opts:db.opts db.catalog q

  let run ?(adaptive = false) ?limit ?sink db q =
    let p, _ = plan db q in
    if adaptive && Adaptive.adaptable p then
      fst (Adaptive.run ?limit ?sink db.catalog db.graph q p)
    else Exec.run ?limit ?sink db.graph p

  let run_gov ?(adaptive = false) ?budget ?fault ?sink db q =
    let p, _ = plan db q in
    if adaptive && Adaptive.adaptable p then begin
      let gov = Governor.create ?fault (Option.value budget ~default:Governor.unlimited) in
      let sink = Option.value sink ~default:(fun _ -> ()) in
      let c = fst (Adaptive.run ~gov ~sink db.catalog db.graph q p) in
      (c, Governor.outcome gov)
    end
    else Exec.run_gov ?budget ?fault ?sink db.graph p

  let count ?adaptive db q =
    let c = run ?adaptive db q in
    c.Counters.output

  let explain db q =
    let p, cost = plan db q in
    Format.asprintf "estimated cost: %.0f i-cost units@.%a@." cost Plan.pp p

  let estimate_cardinality db q = Catalog.estimate_cardinality db.catalog q

  let count_by ?adaptive db q ~key =
    let p, _ = plan db q in
    let schema = Plan.vars p in
    let positions =
      List.map
        (fun v ->
          let pos = ref (-1) in
          Array.iteri (fun i x -> if x = v then pos := i) schema;
          if !pos < 0 then invalid_arg "Db.count_by: key vertex not in query";
          !pos)
        key
    in
    let groups = Hashtbl.create 1024 in
    let sink t =
      let k = Array.of_list (List.map (fun p -> t.(p)) positions) in
      Hashtbl.replace groups k (1 + Option.value ~default:0 (Hashtbl.find_opt groups k))
    in
    let (_ : Counters.t) =
      if Option.value ~default:false adaptive && Adaptive.adaptable p then
        fst (Adaptive.run ~sink db.catalog db.graph q p)
      else Exec.run ~sink db.graph p
    in
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) groups []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
end
