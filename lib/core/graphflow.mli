(** Graphflow-style subgraph query processing: the public API.

    This is an OCaml reproduction of the system described in Mhedhbi &
    Salihoglu, "Optimizing Subgraph Queries by Combining Binary and
    Worst-Case Optimal Joins" (VLDB 2019): a cost-based optimizer producing
    worst-case optimal, binary-join, and hybrid plans over a labeled
    in-memory graph, plus adaptive re-ordering at runtime.

    Quick start:
    {[
      let g = Graphflow.Generators.dataset Graphflow.Generators.Amazon in
      let db = Graphflow.Db.create g in
      let q = Graphflow.Db.parse_query "a1->a2, a2->a3, a1->a3" in
      let n = Graphflow.Db.count db q in
      Printf.printf "%d triangles\n" n
    ]}

    The [Db] module is the session facade; the re-exported modules expose
    each subsystem for advanced use (see DESIGN.md for the map). *)

module Graph = Gf_graph.Graph
module Generators = Gf_graph.Generators
module Graph_stats = Gf_graph.Stats
module Graph_io = Gf_graph.Graph_io
module Delta = Gf_graph.Delta
module Query = Gf_query.Query
module Query_parser = Gf_query.Parser
module Parse_error = Gf_query.Parse_error
module Cypher = Gf_query.Cypher
module Patterns = Gf_query.Patterns
module Canon = Gf_query.Canon
module Plan = Gf_plan.Plan
module Exec = Gf_exec.Exec
module Counters = Gf_exec.Counters
module Governor = Gf_exec.Governor
module Profile = Gf_exec.Profile
module Metrics = Gf_exec.Metrics
module Naive = Gf_exec.Naive
module Parallel = Gf_exec.Parallel
module Catalog = Gf_catalog.Catalog
module Independence = Gf_catalog.Independence
module Wander = Gf_catalog.Wander
module Cost = Gf_opt.Cost
module Cost_model = Gf_opt.Cost_model
module Planner = Gf_opt.Planner
module Plan_cache = Gf_opt.Plan_cache
module Explain = Gf_opt.Explain
module Adaptive = Gf_adaptive.Adaptive
module Simplex = Gf_lp.Simplex
module Edge_cover = Gf_lp.Edge_cover
module Ghd = Gf_ghd.Ghd
module Bj_baseline = Gf_baseline.Bj
module Cfl_baseline = Gf_baseline.Cfl
module Query_gen = Gf_baseline.Query_gen
module Spectrum = Gf_spectrum.Spectrum
module Rng = Gf_util.Rng
module Crc32 = Gf_util.Crc32
module Bitset = Gf_util.Bitset
module Buf = Gf_util.Buf
module Int_vec = Gf_util.Int_vec
module Sorted = Gf_util.Sorted
module Trace = Gf_obs.Trace
module Recorder = Gf_obs.Recorder

(** Session facade: a graph plus its subgraph catalogue and planner
    configuration. *)
module Db : sig
  type t

  (** [create g] attaches a lazily-populated catalogue ([h], [z] as in the
      paper; defaults 3 and 1000) and default planner options. [plan_cache]
      attaches a {!Plan_cache.t}: every subsequent plan/run routes planning
      through it (isomorphic resubmissions are served from cache, profiled
      runs feed its corrections). [version] is the starting graph version
      the cache keys against (a durable store passes its merge version;
      default 0). *)
  val create :
    ?h:int ->
    ?z:int ->
    ?seed:int ->
    ?opts:Gf_opt.Planner.opts ->
    ?plan_cache:Plan_cache.t ->
    ?version:int ->
    Graph.t ->
    t

  val graph : t -> Graph.t
  val catalog : t -> Catalog.t

  (** The attached plan cache, if any. *)
  val plan_cache : t -> Plan_cache.t option

  (** The graph version plan-cache entries are keyed against. *)
  val graph_version : t -> int

  (** [with_graph db g] is [db] re-seated on [g]: a fresh (empty, lazily
      repopulated) catalogue and the same planner options — how a durable
      store publishes a merged CSR without rebuilding the service. The plan
      cache object is carried over; [version] (default: previous + 1) moves
      the cache's keying forward so stale plans cannot be served. *)
  val with_graph : ?version:int -> t -> Graph.t -> t

  (** [parse_query s] parses the pattern DSL (see {!Query_parser}). *)
  val parse_query : string -> Query.t

  (** [plan db q] is the optimizer's plan and its estimated cost; served
      from the plan cache when one is attached. *)
  val plan : t -> Query.t -> Plan.t * float

  (** [plan_signature db q] is [Plan.signature] of [q]'s plan, answered from
      the plan cache without touching hit/miss accounting when possible —
      the flight recorder's digest path. *)
  val plan_signature : t -> Query.t -> string

  (** [count db q] optimizes and executes, returning the number of matches.
      [adaptive] enables runtime re-ordering of E/I chains (default off). *)
  val count : ?adaptive:bool -> t -> Query.t -> int

  (** [run db q] optimizes and executes; returns execution counters.
      [sink] receives every match (a reused buffer in [Plan.vars] column
      order). *)
  val run :
    ?adaptive:bool -> ?limit:int -> ?sink:(int array -> unit) -> t -> Query.t -> Counters.t

  (** [run_gov db q] optimizes and executes under a {!Governor.budget}
      (deadline, output/intermediate caps, byte cap; default unlimited) and
      reports the structured {!Governor.outcome} — [Completed],
      [Truncated reason] on a budget trip, [Failed error] on an (injected)
      operator fault. Counters and tuples already delivered to [sink] are
      preserved whatever the outcome. [gov] supplies an externally created
      governor — the hook a server uses to cancel in-flight queries from
      another thread ({!Governor.cancel}); when present, [budget] and
      [fault] are ignored (they were fixed at the governor's creation).

      [trace] opts the whole query into span tracing: planner spans
      (tid 2), executor spans (tid 1, or tids 9/10+ for parallel runs), and
      a per-operator summary track (tid 100) are recorded into it; export
      with {!Trace.to_chrome_json} or {!Trace.render}. The untraced path is
      unchanged — tracing costs one [option] branch per phase boundary.

      [scan_part = (i, k)] executes only the i-th of [k] equal slices of the
      plan's driving-scan source space (a cluster shard request): the union
      of matches over disjoint parts is exactly the full result, provided
      every part is planned against the same catalogue and graph version.
      A sharded run is always sequential ([adaptive]/[domains] are ignored)
      and never feeds the plan cache — partial actuals would poison the
      correction EWMAs. *)
  val run_gov :
    ?adaptive:bool ->
    ?domains:int ->
    ?scan_part:int * int ->
    ?budget:Governor.budget ->
    ?fault:Governor.fault ->
    ?gov:Governor.t ->
    ?trace:Trace.t ->
    ?sink:(int array -> unit) ->
    t ->
    Query.t ->
    Counters.t * Governor.outcome

  (** [explain db q] is a human-readable description of the chosen plan. *)
  val explain : t -> Query.t -> string

  (** The result of {!explain_analyze}: the chosen plan, one {!Explain.row}
      per operator joining estimates against profiled actuals, and the
      whole-run counters/outcome/latency. *)
  type analysis = {
    plan : Plan.t;
    rows : Explain.row list;
    counters : Counters.t;
    outcome : Governor.outcome;
    seconds : float;
  }

  (** [explain_analyze db q] optimizes, executes with per-operator
      profiling on, and joins each operator's estimated cardinality and
      cost (from the catalogue-backed cost model, under the db's planner
      options) against the actuals, with q-errors. [domains > 1] runs the
      morsel-driven parallel executor and merges the per-domain profiles —
      the rows are identically shaped whichever path ran. [adaptive] routes
      E/I chains adaptively (segment work is charged to the chain root;
      ignored when [domains > 1]). *)
  val explain_analyze :
    ?adaptive:bool ->
    ?domains:int ->
    ?budget:Governor.budget ->
    ?fault:Governor.fault ->
    t ->
    Query.t ->
    analysis

  (** Render an {!analysis} as the [gfq run --explain-analyze] text block
      (matches / outcome / time / counters, then the per-operator table). *)
  val analysis_to_string : analysis -> string

  (** Render an {!analysis} as one JSON object
      ([{"matches":..,"outcome":..,"time_s":..,"counters":{..},"operators":[..]}]). *)
  val analysis_to_json : analysis -> string

  (** Prometheus text exposition of the process-wide query metrics
      ([gf_queries_total], [gf_query_matches_total], [gf_icost_total],
      [gf_query_seconds] latency histogram, ...). Every [run]/[run_gov]/
      [count]/[explain_analyze] call records into them. *)
  val metrics_exposition : unit -> string

  (** [estimate_cardinality db q] is the catalogue-based estimate of the
      number of matches. *)
  val estimate_cardinality : t -> Query.t -> float

  (** [count_by db q ~key] groups matches by the data vertices bound to the
      given query vertices and counts each group; returns groups sorted by
      descending count. Example: diamonds grouped by (a1, a4) rank
      recommendation candidates. *)
  val count_by : ?adaptive:bool -> t -> Query.t -> key:int list -> (int array * int) list
end
