(** The newline-delimited request/response protocol spoken by [gfq serve].

    Requests are single lines:
    {v
    ping
    metrics
    shutdown
    run [timeout_ms=N] [max_rows=N] [max_intermediate=N]
        [fault_at=N] [fault_all] [rows] q=<query>
    <query>                        (a bare line is a plain run)
    v}
    where [<query>] is anything [gfq] accepts: the edge-list DSL
    ([a1->a2, a2->a3, a1->a3]), a [MATCH ...] pattern, or [Q1..Q14].
    The [q=] option must come last — it consumes the rest of the line.

    Responses are single JSON lines, always with a boolean ["ok"]:
    {v
    {"ok":true,"type":"pong"}
    {"ok":true,"id":3,"outcome":"completed","matches":980,...}
    {"ok":false,"error":"rejected","reason":"queue_full"}
    {"ok":false,"error":"parse","detail":"..."}
    v} *)

module Gf = Graphflow

type request =
  | Ping
  | Metrics_req
  | Shutdown
  | Run of Service.request

val parse_request : string -> (request, string) result
(** [Error detail] on an unknown keyword, malformed option, or query parse
    error ([detail] includes the caret-annotated position for the DSL). *)

val parse_query : string -> (Gf.Query.t, string) result
(** Q1..Q14 / [MATCH ...] / edge-list DSL — the [gfq] query surface. *)

(** Response builders (single JSON lines, no trailing newline). *)

val pong : string
val draining_resp : string

val ok_run : reply:Service.reply -> string
(** Includes outcome, matches, attempts/retries/degraded/rung, queue and
    exec seconds, and — when the request collected rows — the rows. *)

val rejected : Service.reject_reason -> string
val error_resp : kind:string -> detail:string -> string
val metrics_resp : string -> string
(** Wraps the Prometheus exposition as [{"ok":true,"metrics":"..."}] with
    newlines escaped, keeping the one-line framing. *)
