(** The newline-delimited request/response protocol spoken by [gfq serve].

    Requests are single lines:
    {v
    ping
    metrics
    stats
    slowlog [n]
    trace id=N
    shutdown
    addedge <u> <v> [<elabel>] [trace]
    deledge <u> <v> [<elabel>] [trace]
    addvertex [<label>] [trace]
    delvertex <v> [trace]
    checkpoint [trace]
    run [timeout_ms=N] [max_rows=N] [max_intermediate=N]
        [fault_at=N] [fault_all] [rows] [trace] q=<query>
    <query>                        (a bare line is a plain run)
    v}
    Mutation commands need the server started with [--data-dir]; they are
    acknowledged only after the write-ahead-log record is fsynced.
    where [<query>] is anything [gfq] accepts: the edge-list DSL
    ([a1->a2, a2->a3, a1->a3]), a [MATCH ...] pattern, or [Q1..Q14].
    The [q=] option must come last — it consumes the rest of the line.

    Responses are single JSON lines, always with a boolean ["ok"]:
    {v
    {"ok":true,"type":"pong"}
    {"ok":true,"id":3,"outcome":"completed","matches":980,...}
    {"ok":false,"error":"rejected","reason":"queue_full"}
    {"ok":false,"error":"parse","detail":"..."}
    v} *)

module Gf = Graphflow

type request =
  | Ping
  | Metrics_req
  | Shutdown
  | Stats  (** service health snapshot *)
  | Slowlog of int  (** the [n] most recent flight-recorder records *)
  | Trace_of of int  (** retained Chrome trace JSON for a record id *)
  | Run of Service.request
  | Mutate of Service.mutation * bool  (** mutation, [trace] flag *)

val parse_request : string -> (request, string) result
(** [Error detail] on an unknown keyword, malformed option, or query parse
    error ([detail] includes the caret-annotated position for the DSL). *)

val parse_query : string -> (Gf.Query.t, string) result
(** Q1..Q14 / [MATCH ...] / edge-list DSL — the [gfq] query surface. *)

(** Response builders (single JSON lines, no trailing newline). *)

val pong : string
val draining_resp : string

val ok_run : reply:Service.reply -> string
(** Includes outcome, matches, attempts/retries/degraded/rung, queue and
    exec seconds; traced requests additionally carry
    [,"traced":true,"trace_id":N] (fetch with [trace id=N]); and — when the
    request collected rows — the rows. *)

val rejected : Service.reject_reason -> string
val error_resp : kind:string -> detail:string -> string

val ok_mutation : Service.mutation_reply -> traced:bool -> string
(** [{"ok":true,"type":"applied","lsn":N,"applied":B,"version":N,
    "graph_version":N,"durable":N}] plus ["vertex"] for [addvertex] and
    ["trace_id"] when traced. *)

val mutation_rejected : Service.mutation_error -> string
(** Structured refusal: [read_only] (no [--data-dir]), [invalid]
    (validation), [wal_failed] (store went read-only), or the standard
    draining rejection. *)

val metrics_resp : string -> string
(** Wraps the Prometheus exposition as [{"ok":true,"metrics":"..."}] with
    newlines escaped, keeping the one-line framing. *)

val stats_resp : Service.stats -> string
(** [{"ok":true,"queue_depth":..,"breaker":"..","p50_ms":..,...}]. *)

val slowlog_resp : Gf.Recorder.record list -> string
(** [{"ok":true,"count":N,"records":[...]}]; embedded query text is escaped
    (newlines become [\n]) so the reply stays one line — the same framing
    rule as {!metrics_resp}. *)

val trace_resp : id:int -> string -> string
(** Nests the retained Chrome trace JSON raw as the final [trace] field:
    [{"ok":true,"id":N,"trace":{...}}]. *)

val trace_not_found : int -> string
