module Metrics = Gf_exec.Metrics

type config = {
  window : int;
  min_samples : int;
  failure_threshold : float;
  cooldown_s : float;
}

let default_config =
  { window = 32; min_samples = 8; failure_threshold = 0.5; cooldown_s = 5.0 }

type state = Closed | Open | Half_open

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type t = {
  cfg : config;
  now : unit -> float;
  m : Mutex.t;
  ring : bool array;  (** [true] = failure *)
  mutable head : int;  (** next write position *)
  mutable filled : int;
  mutable failures : int;
  mutable st : state;
  mutable opened_at : float;
  mutable probe_in_flight : bool;
}

let create ?(now = Unix.gettimeofday) cfg =
  if cfg.window < 1 then invalid_arg "Breaker.create: window < 1";
  {
    cfg;
    now;
    m = Mutex.create ();
    ring = Array.make cfg.window false;
    head = 0;
    filled = 0;
    failures = 0;
    st = Closed;
    opened_at = neg_infinity;
    probe_in_flight = false;
  }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Metrics are looked up by name at transition time (the registry pattern
   used by [Db.observe_run]) so [Metrics.reset] between tests is safe. *)
let count_transition which =
  Metrics.inc
    (Metrics.counter
       ~help:("Circuit breaker transitions to " ^ which)
       ("gf_server_breaker_" ^ which ^ "_total"))

let reset_window t =
  Array.fill t.ring 0 t.cfg.window false;
  t.head <- 0;
  t.filled <- 0;
  t.failures <- 0

let open_now t =
  t.st <- Open;
  t.opened_at <- t.now ();
  t.probe_in_flight <- false;
  count_transition "opened"

let state t = with_lock t (fun () -> t.st)

let admit t =
  with_lock t (fun () ->
      match t.st with
      | Closed -> `Admit
      | Open ->
          if t.now () -. t.opened_at >= t.cfg.cooldown_s then begin
            t.st <- Half_open;
            t.probe_in_flight <- true;
            count_transition "half_opened";
            `Admit
          end
          else `Reject
      | Half_open ->
          if t.probe_in_flight then `Reject
          else begin
            t.probe_in_flight <- true;
            `Admit
          end)

let record t ~ok =
  with_lock t (fun () ->
      match t.st with
      | Open -> ()
      | Half_open ->
          t.probe_in_flight <- false;
          if ok then begin
            t.st <- Closed;
            reset_window t;
            count_transition "closed"
          end
          else open_now t
      | Closed ->
          (* Slide the window: retire the value being overwritten. *)
          if t.filled = t.cfg.window then begin
            if t.ring.(t.head) then t.failures <- t.failures - 1
          end
          else t.filled <- t.filled + 1;
          t.ring.(t.head) <- not ok;
          if not ok then t.failures <- t.failures + 1;
          t.head <- (t.head + 1) mod t.cfg.window;
          if
            t.filled >= t.cfg.min_samples
            && float_of_int t.failures /. float_of_int t.filled
               >= t.cfg.failure_threshold
          then begin
            open_now t;
            reset_window t
          end)
