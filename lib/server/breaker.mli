(** A circuit breaker over recent request outcomes.

    The service records each finished request as ok / not-ok into a sliding
    window. When the window holds at least [min_samples] results and the
    failure fraction reaches [failure_threshold], the breaker {e opens}:
    requests are rejected immediately (fast failure) instead of being run
    against a backend that is currently melting down. After [cooldown_s]
    seconds the breaker {e half-opens} and admits exactly one probe
    request; if the probe succeeds the breaker closes (window reset), if it
    fails the breaker re-opens and the cooldown restarts.

    All transitions are counted in the {!Gf_exec.Metrics} registry
    ([gf_server_breaker_opened_total], [..._half_opened_total],
    [..._closed_total]).

    Thread-safe: every operation takes the breaker's mutex. *)

type config = {
  window : int;  (** number of recent requests considered *)
  min_samples : int;  (** no verdict before this many results *)
  failure_threshold : float;  (** open when failures/window >= this *)
  cooldown_s : float;  (** seconds open before half-opening *)
}

val default_config : config
(** window 32, min_samples 8, threshold 0.5, cooldown 5 s. *)

type state = Closed | Open | Half_open

val state_to_string : state -> string

type t

val create : ?now:(unit -> float) -> config -> t
(** [now] injects the clock — tests drive the cooldown deterministically
    with a fake clock; the default is [Unix.gettimeofday]. *)

val state : t -> state

val admit : t -> [ `Admit | `Reject ]
(** Ask to run one request. [`Admit] in Closed state; in Open state,
    [`Reject] until the cooldown elapses, then the breaker half-opens and
    admits the single probe; in Half_open, [`Reject] while the probe is in
    flight. *)

val record : t -> ok:bool -> unit
(** Report the outcome of an admitted request. Results arriving while the
    breaker is Open (stragglers admitted before the trip) are ignored. *)
