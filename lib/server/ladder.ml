module Gf = Graphflow
module Governor = Gf.Governor
module Counters = Gf.Counters

type config = {
  domains : int;
  budget : Governor.budget;
  degraded_budget : Governor.budget;
  backoff_base_s : float;
  backoff_cap_s : float;
}

let default_config =
  {
    domains = 1;
    budget = Governor.unlimited;
    degraded_budget =
      Governor.budget ~deadline_s:2.0 ~max_output:10_000 ~max_intermediate:1_000_000 ();
    backoff_base_s = 0.05;
    backoff_cap_s = 1.0;
  }

type rung = { name : string; domains : int; budget : Governor.budget }

let rungs (cfg : config) =
  let tail =
    [
      { name = "sequential"; domains = 1; budget = cfg.budget };
      { name = "degraded"; domains = 1; budget = cfg.degraded_budget };
    ]
  in
  if cfg.domains > 1 then
    { name = "parallel"; domains = cfg.domains; budget = cfg.budget } :: tail
  else tail

type result = {
  outcome : Governor.outcome;
  counters : Counters.t;
  attempts : int;
  retries : int;
  degraded : bool;
  rung : string;
  backoffs : float list;
}

let backoff_delay cfg rng attempt =
  let base = cfg.backoff_base_s *. (2.0 ** float_of_int attempt) in
  let capped = Float.min base cfg.backoff_cap_s in
  (* Jitter in [0.5, 1.0) of the capped delay, from the caller's seeded
     stream — deterministic under a fixed seed. *)
  capped *. (0.5 +. Gf.Rng.float rng 0.5)

let run ?(sleep = Unix.sleepf) ?(now = Unix.gettimeofday)
    ?(attach = fun _ -> fun () -> ()) ?fault ?(fault_attempts = 1) ?part ?sink
    ?trace ?tbuf ~rng cfg db q =
  let rungs = rungs cfg in
  (* A sharded request is the parallelism unit itself: every worker must
     execute the same sequential plan for disjoint ranges to union exactly,
     so the parallel rung is skipped. *)
  let rungs =
    if part = None then rungs else List.filter (fun r -> r.name <> "parallel") rungs
  in
  let started = now () in
  (* Deadline-aware backoff: never sleep past the point where the retry is
     guaranteed to trip the attempt budget's deadline on arrival. *)
  let clamp_to_deadline d =
    match cfg.budget.Governor.deadline_s with
    | None -> d
    | Some dl -> Float.max 0. (Float.min d (started +. dl -. now ()))
  in
  let total = List.length rungs in
  let backoffs = ref [] in
  let rec go attempt = function
    | [] -> assert false
    | rung :: rest ->
        let fault = if attempt < fault_attempts then fault else None in
        let gov = Governor.create ?fault rung.budget in
        let detach = attach gov in
        (* Buffer this attempt's rows; flush only if the attempt is
           accepted, so a failed attempt leaks nothing downstream. *)
        let buffered = ref [] in
        let attempt_sink =
          Option.map
            (fun _ -> fun tuple -> buffered := Array.copy tuple :: !buffered)
            sink
        in
        (match tbuf with
        | Some b ->
            Gf.Trace.begin_span ~cat:"ladder"
              ~args:
                [ ("rung", Gf.Trace.Str rung.name);
                  ("attempt", Int (attempt + 1));
                  ("domains", Int rung.domains);
                ]
              b "attempt"
        | None -> ());
        let c, outcome =
          Fun.protect
            ~finally:(fun () -> detach ())
            (fun () ->
              Gf.Db.run_gov ~domains:rung.domains ?scan_part:part ~gov ?trace
                ?sink:attempt_sink db q)
        in
        (match tbuf with
        | Some b ->
            Gf.Trace.end_span
              ~args:[ ("outcome", Gf.Trace.Str (Governor.outcome_to_string outcome)) ]
              b
        | None -> ());
        let finish ~flush ~degraded =
          (match sink with
          | Some push when flush -> List.iter push (List.rev !buffered)
          | _ -> ());
          {
            outcome;
            counters = c;
            attempts = attempt + 1;
            retries = attempt;
            degraded;
            rung = rung.name;
            backoffs = List.rev !backoffs;
          }
        in
        match outcome with
        | Governor.Completed -> finish ~flush:true ~degraded:(rung.name = "degraded")
        | Governor.Truncated Governor.Cancelled ->
            (* The service is draining: stop immediately, deliver nothing. *)
            finish ~flush:false ~degraded:false
        | Governor.Truncated _ ->
            (* A truncated answer is the degraded response we were after —
               retrying under the same budget would truncate again. *)
            finish ~flush:true ~degraded:true
        | Governor.Failed _ ->
            if attempt + 1 >= total then
              (* Out of rungs: report the failure, leak no partial rows. *)
              finish ~flush:false ~degraded:false
            else begin
              let d = clamp_to_deadline (backoff_delay cfg rng attempt) in
              backoffs := d :: !backoffs;
              (match tbuf with
              | Some b ->
                  Gf.Trace.span ~cat:"ladder"
                    ~args:[ ("delay_ms", Gf.Trace.Float (d *. 1e3)) ]
                    b "backoff"
                    (fun () -> sleep d)
              | None -> sleep d);
              go (attempt + 1) rest
            end
  in
  go 0 rungs
