(** The concurrent query service: a bounded admission queue in front of a
    worker pool, each request executed through the {!Ladder} under the
    {!Breaker}'s verdict.

    Admission ({!submit_async}) never blocks: when the service is draining,
    the queue is full, or the breaker is open, it returns a structured
    rejection immediately (load shedding). Checks run in that order, so a
    full queue cannot consume the breaker's half-open probe.

    Shutdown ({!drain}) is graceful: admission stops, requests still queued
    are answered [Truncated Cancelled] without running, in-flight requests
    are cancelled through their registered governors
    ({!Gf.Governor.cancel}), and worker threads are joined before [drain]
    returns. Idempotent.

    Everything observable is counted in the {!Gf_exec.Metrics} registry:
    [gf_server_admitted_total], the three [gf_server_shed_*_total]
    rejection counters, [gf_server_requests_{completed,truncated,failed}_total],
    [gf_server_retries_total], [gf_server_degraded_total],
    [gf_server_drains_total], and the [gf_server_queue_seconds] /
    [gf_server_request_seconds] histograms.

    With [workers = 0] no threads are spawned and {!step} pumps the queue
    synchronously — the deterministic mode the unit tests use. *)

module Gf = Graphflow

type config = {
  queue_capacity : int;
  workers : int;
  ladder : Ladder.config;
  breaker : Breaker.config;
  fault_seed : int option;
      (** chaos source: when set, roughly one request in four gets a
          deterministic first-attempt fault derived from this seed and the
          request id (the [GFQ_FAULT_SEED] convention) *)
  seed : int;  (** seeds per-request backoff-jitter streams *)
  now : unit -> float;  (** injectable clock (breaker cooldown, latency) *)
  sleep : float -> unit;  (** injectable backoff sleep *)
  slowlog_capacity : int;  (** flight-recorder ring size *)
  trace_retain : int;  (** retained full traces per retention ring *)
  slow_s : float;  (** latency promoting a trace to the pinned slow ring *)
  trace_capacity : int;  (** per-buffer span ring size for traced requests *)
}

val default_config : config
(** capacity 64, workers 4, default ladder/breaker, no chaos, seed 42,
    real clock and sleep; flight recorder of 256 records, 8 retained
    traces, 250 ms slow threshold. *)

(** One query request. [None] budget fields inherit the ladder's budget. *)
type request = {
  query : Gf.Query.t;
  text : string;  (** raw query text, for the flight recorder ("" if unknown) *)
  timeout_ms : int option;
  max_rows : int option;
  max_intermediate : int option;
  fault_at : int option;  (** explicit injected fault (testing) *)
  fault_all : bool;  (** fault every attempt, not just the first *)
  part : (int * int) option;
      (** cluster shard: run only the i-th of k slices of the driving scan *)
  collect_rows : bool;  (** buffer result rows into the reply *)
  trace : bool;  (** record a full span trace for this request *)
}

val request : Gf.Query.t -> request
(** A plain request: no overrides, rows not collected. *)

type reject_reason = Queue_full | Breaker_open | Draining

val reject_reason_to_string : reject_reason -> string

type reply = {
  id : int;  (** admission ticket number, 1-based *)
  result : Ladder.result;
  rows : int array list;  (** in emission order; [] unless [collect_rows] *)
  queue_s : float;  (** time spent queued *)
  exec_s : float;  (** time spent executing (all attempts + backoffs) *)
  record_id : int;  (** flight-recorder record id (0 when not recorded) *)
  traced : bool;  (** a full trace was recorded and retained *)
  trace_obj : Gf.Trace.t option;
      (** the recorded trace itself, for callers that re-export it (a
          cluster worker ships its span tree back inside the shard reply) *)
  graph_version : int;  (** merged-CSR version the query ran against (0 = no store) *)
}

type ticket
type t

val create : ?config:config -> Gf.Db.t -> t

(** {1 Durable mutations}

    When a {!Gf_wal.Store} is attached, the service accepts graph
    mutations: each one is validated and applied to the store's delta
    overlay, logged to the write-ahead log, and acknowledged only after a
    covering fsync (group commit batches concurrent acks behind one
    fsync). The store's writer lock is the single-writer admission:
    mutations from any number of connections serialize there, while the
    read path keeps executing against the current merged CSR untouched.

    Whenever the store publishes a new merged CSR, the service re-seats
    its [Db] on it ({!Gf.Db.with_graph}) — invalidating every catalogue
    entry, since the old statistics described the old graph — and bumps
    [gf_server_catalog_invalidations_total]. Without an attached store
    the service is read-only and every mutation is refused. *)

(** [attach_store t store] wires [store] in and immediately re-seats the
    db on the store's (possibly recovered) graph. Call before serving. *)
val attach_store : t -> Gf_wal.Store.t -> unit

val store : t -> Gf_wal.Store.t option

(** Current merged-CSR version; 0 when no store is attached. Carried in
    every run reply so clients can correlate results with graph state. *)
val graph_version : t -> int

type mutation =
  | M_add_edge of { u : int; v : int; elabel : int }
  | M_del_edge of { u : int; v : int; elabel : int }
  | M_add_vertex of { label : int }
  | M_del_vertex of { v : int }
  | M_checkpoint

type mutation_reply = {
  m_lsn : int;  (** the WAL record (or checkpoint version) *)
  m_applied : bool;  (** [false] when the operation was a no-op *)
  m_vertex : int option;  (** the id minted by [M_add_vertex] *)
  m_version : int;  (** store version after the mutation *)
  m_graph_version : int;
  m_durable : int;  (** durable LSN at ack time — always >= [m_lsn] *)
  m_record : int;  (** flight-recorder id (trace handle when traced) *)
}

type mutation_error =
  | M_read_only  (** no store attached (serve without [--data-dir]) *)
  | M_draining
  | M_invalid of string  (** structured delta validation refusal *)
  | M_failed of string  (** the WAL failed; the store went read-only *)

val mutation_error_to_string : mutation_error -> string

(** [mutate t mut] applies one durable mutation (see above for the ack
    discipline). [trace] records wal-apply / wal-sync / checkpoint spans
    into a retained trace, fetchable via the [trace] wire command with
    [m_record]. [text] is the raw command line for the flight recorder. *)
val mutate :
  t -> ?trace:bool -> ?text:string -> mutation -> (mutation_reply, mutation_error) result

val submit_async : t -> request -> (ticket, reject_reason) result
(** Non-blocking admission. [Error] is the structured shed decision;
    rejected requests do no work at all. *)

val await : t -> ticket -> reply
(** Block until the ticket's request has been answered (run, or cancelled
    by {!drain}). *)

val submit : t -> request -> (reply, reject_reason) result
(** [submit_async] + [await]. With [workers = 0] the request is pumped
    inline, so this is also the synchronous single-threaded entry point. *)

val step : t -> bool
(** Run one queued request on the calling thread; [false] when the queue
    is empty. The [workers = 0] test pump. *)

val drain : t -> unit
val draining : t -> bool
val queue_depth : t -> int
val breaker_state : t -> Breaker.state

(** The always-on flight recorder: one {!Gf.Recorder.record} per executed
    request (query text, plan digest, outcome, latency, ladder state, top
    operators by self-time for traced requests), with full traces retained
    for recent traced requests and pinned for those slower than
    [config.slow_s]. The [slowlog]/[trace] wire commands read it. *)
val recorder : t -> Gf.Recorder.t

(** A point-in-time health snapshot for the [stats] wire command. *)
type stats = {
  s_queue_depth : int;
  s_breaker : Breaker.state;
  s_draining : bool;
  s_admitted : int;
  s_completed : int;
  s_truncated : int;
  s_failed : int;
  s_retries : int;
  s_slowlog : int;  (** records currently held by the flight recorder *)
  s_p50_ms : float;  (** request-latency quantiles ({!Gf.Metrics.quantile});
                         0 before the first request *)
  s_p95_ms : float;
  s_p99_ms : float;
  s_kernel : string;  (** resolved intersection kernel, e.g. ["simd-avx2"] *)
  s_graph_offheap_bytes : int;  (** graph payload living outside the OCaml heap *)
  s_graph_heap_bytes : int;  (** derived heap-resident index structures *)
  s_graph_mapped : bool;  (** whether the payload is an mmap'd snapshot *)
  s_graph_nbr_width : int;  (** adjacency element width in bytes: 4 or 8 *)
  s_graph_version : int;  (** merged-CSR version (0 = no store attached) *)
  s_wal_version : int;  (** last applied LSN *)
  s_wal_durable : int;  (** last fsync-covered LSN *)
  s_wal_pending : int;  (** overlay operations not yet merged *)
  s_checkpoints : int;  (** checkpoints taken since open *)
  s_mutations : int;  (** mutations acknowledged *)
  s_plan_cache_hits : int;  (** plan-cache counters; all 0 when the db has no
                                cache attached ({!Gf.Db.create}'s [plan_cache]) *)
  s_plan_cache_misses : int;
  s_plan_cache_evictions : int;
  s_plan_cache_replans : int;  (** drift-triggered re-optimizations *)
  s_plan_cache_invalidations : int;  (** wholesale drops on merge publication *)
  s_plan_cache_feedbacks : int;  (** profiled executions folded into corrections *)
  s_plan_cache_entries : int;  (** live entries *)
}

val stats : t -> stats
