(** The concurrent query service: a bounded admission queue in front of a
    worker pool, each request executed through the {!Ladder} under the
    {!Breaker}'s verdict.

    Admission ({!submit_async}) never blocks: when the service is draining,
    the queue is full, or the breaker is open, it returns a structured
    rejection immediately (load shedding). Checks run in that order, so a
    full queue cannot consume the breaker's half-open probe.

    Shutdown ({!drain}) is graceful: admission stops, requests still queued
    are answered [Truncated Cancelled] without running, in-flight requests
    are cancelled through their registered governors
    ({!Gf.Governor.cancel}), and worker threads are joined before [drain]
    returns. Idempotent.

    Everything observable is counted in the {!Gf_exec.Metrics} registry:
    [gf_server_admitted_total], the three [gf_server_shed_*_total]
    rejection counters, [gf_server_requests_{completed,truncated,failed}_total],
    [gf_server_retries_total], [gf_server_degraded_total],
    [gf_server_drains_total], and the [gf_server_queue_seconds] /
    [gf_server_request_seconds] histograms.

    With [workers = 0] no threads are spawned and {!step} pumps the queue
    synchronously — the deterministic mode the unit tests use. *)

module Gf = Graphflow

type config = {
  queue_capacity : int;
  workers : int;
  ladder : Ladder.config;
  breaker : Breaker.config;
  fault_seed : int option;
      (** chaos source: when set, roughly one request in four gets a
          deterministic first-attempt fault derived from this seed and the
          request id (the [GFQ_FAULT_SEED] convention) *)
  seed : int;  (** seeds per-request backoff-jitter streams *)
  now : unit -> float;  (** injectable clock (breaker cooldown, latency) *)
  sleep : float -> unit;  (** injectable backoff sleep *)
  slowlog_capacity : int;  (** flight-recorder ring size *)
  trace_retain : int;  (** retained full traces per retention ring *)
  slow_s : float;  (** latency promoting a trace to the pinned slow ring *)
  trace_capacity : int;  (** per-buffer span ring size for traced requests *)
}

val default_config : config
(** capacity 64, workers 4, default ladder/breaker, no chaos, seed 42,
    real clock and sleep; flight recorder of 256 records, 8 retained
    traces, 250 ms slow threshold. *)

(** One query request. [None] budget fields inherit the ladder's budget. *)
type request = {
  query : Gf.Query.t;
  text : string;  (** raw query text, for the flight recorder ("" if unknown) *)
  timeout_ms : int option;
  max_rows : int option;
  max_intermediate : int option;
  fault_at : int option;  (** explicit injected fault (testing) *)
  fault_all : bool;  (** fault every attempt, not just the first *)
  collect_rows : bool;  (** buffer result rows into the reply *)
  trace : bool;  (** record a full span trace for this request *)
}

val request : Gf.Query.t -> request
(** A plain request: no overrides, rows not collected. *)

type reject_reason = Queue_full | Breaker_open | Draining

val reject_reason_to_string : reject_reason -> string

type reply = {
  id : int;  (** admission ticket number, 1-based *)
  result : Ladder.result;
  rows : int array list;  (** in emission order; [] unless [collect_rows] *)
  queue_s : float;  (** time spent queued *)
  exec_s : float;  (** time spent executing (all attempts + backoffs) *)
  record_id : int;  (** flight-recorder record id (0 when not recorded) *)
  traced : bool;  (** a full trace was recorded and retained *)
}

type ticket
type t

val create : ?config:config -> Gf.Db.t -> t

val submit_async : t -> request -> (ticket, reject_reason) result
(** Non-blocking admission. [Error] is the structured shed decision;
    rejected requests do no work at all. *)

val await : t -> ticket -> reply
(** Block until the ticket's request has been answered (run, or cancelled
    by {!drain}). *)

val submit : t -> request -> (reply, reject_reason) result
(** [submit_async] + [await]. With [workers = 0] the request is pumped
    inline, so this is also the synchronous single-threaded entry point. *)

val step : t -> bool
(** Run one queued request on the calling thread; [false] when the queue
    is empty. The [workers = 0] test pump. *)

val drain : t -> unit
val draining : t -> bool
val queue_depth : t -> int
val breaker_state : t -> Breaker.state

(** The always-on flight recorder: one {!Gf.Recorder.record} per executed
    request (query text, plan digest, outcome, latency, ladder state, top
    operators by self-time for traced requests), with full traces retained
    for recent traced requests and pinned for those slower than
    [config.slow_s]. The [slowlog]/[trace] wire commands read it. *)
val recorder : t -> Gf.Recorder.t

(** A point-in-time health snapshot for the [stats] wire command. *)
type stats = {
  s_queue_depth : int;
  s_breaker : Breaker.state;
  s_draining : bool;
  s_admitted : int;
  s_completed : int;
  s_truncated : int;
  s_failed : int;
  s_retries : int;
  s_slowlog : int;  (** records currently held by the flight recorder *)
  s_p50_ms : float;  (** request-latency quantiles ({!Gf.Metrics.quantile});
                         0 before the first request *)
  s_p95_ms : float;
  s_p99_ms : float;
  s_kernel : string;  (** resolved intersection kernel, e.g. ["simd-avx2"] *)
  s_graph_offheap_bytes : int;  (** graph payload living outside the OCaml heap *)
  s_graph_heap_bytes : int;  (** derived heap-resident index structures *)
  s_graph_mapped : bool;  (** whether the payload is an mmap'd snapshot *)
  s_graph_nbr_width : int;  (** adjacency element width in bytes: 4 or 8 *)
}

val stats : t -> stats
