module Gf = Graphflow

let json_escape = Gf.Explain.json_escape

(* A parse error rendered with a caret under the offending offset (the
   same presentation as the gfq CLI). *)
let show_parse_error (e : Gf.Parse_error.t) =
  Printf.sprintf "parse error: %s | %s | %s^" e.Gf.Parse_error.message
    e.Gf.Parse_error.input
    (String.make (min e.Gf.Parse_error.pos (String.length e.Gf.Parse_error.input)) ' ')

let parse_query s =
  match
    if String.length s >= 2 && s.[0] = 'Q' then
      int_of_string_opt (String.sub s 1 (String.length s - 1))
    else None
  with
  | Some i -> (
      match Gf.Patterns.q i with
      | q -> Ok q
      | exception (Failure m | Invalid_argument m) -> Error m)
  | None ->
      let upper = String.uppercase_ascii (String.trim s) in
      if String.length upper >= 5 && String.sub upper 0 5 = "MATCH" then
        match Gf.Cypher.parse_result s with
        | Ok (q, _) -> Ok q
        | Error e -> Error (show_parse_error e)
      else (
        match Gf.Query_parser.parse_result s with
        | Ok q -> Ok q
        | Error e -> Error (show_parse_error e))

type request =
  | Ping
  | Metrics_req
  | Shutdown
  | Stats
  | Slowlog of int
  | Trace_of of int
  | Run of Service.request
  | Mutate of Service.mutation * bool

exception Bad of string

(* Mutation commands are positional: [addedge 3 7] / [addedge 3 7 1], with
   an optional trailing [trace] token. *)
let parse_mutation cmd rest =
  let toks =
    String.split_on_char ' ' rest |> List.filter (fun s -> s <> "")
  in
  let trace, toks =
    match List.rev toks with
    | "trace" :: r -> (true, List.rev r)
    | _ -> (false, toks)
  in
  let int_tok what s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> n
    | _ -> raise (Bad (Printf.sprintf "%s needs a non-negative integer, got %S" what s))
  in
  let mut =
    match (cmd, toks) with
    | "addedge", [ u; v ] ->
        Service.M_add_edge
          { u = int_tok "addedge <u>" u; v = int_tok "addedge <v>" v; elabel = 0 }
    | "addedge", [ u; v; el ] ->
        Service.M_add_edge
          {
            u = int_tok "addedge <u>" u;
            v = int_tok "addedge <v>" v;
            elabel = int_tok "addedge <elabel>" el;
          }
    | "addedge", _ -> raise (Bad "usage: addedge <u> <v> [<elabel>] [trace]")
    | "deledge", [ u; v ] ->
        Service.M_del_edge
          { u = int_tok "deledge <u>" u; v = int_tok "deledge <v>" v; elabel = 0 }
    | "deledge", [ u; v; el ] ->
        Service.M_del_edge
          {
            u = int_tok "deledge <u>" u;
            v = int_tok "deledge <v>" v;
            elabel = int_tok "deledge <elabel>" el;
          }
    | "deledge", _ -> raise (Bad "usage: deledge <u> <v> [<elabel>] [trace]")
    | "addvertex", [] -> Service.M_add_vertex { label = 0 }
    | "addvertex", [ l ] -> Service.M_add_vertex { label = int_tok "addvertex <label>" l }
    | "addvertex", _ -> raise (Bad "usage: addvertex [<label>] [trace]")
    | "delvertex", [ v ] -> Service.M_del_vertex { v = int_tok "delvertex <v>" v }
    | "delvertex", _ -> raise (Bad "usage: delvertex <v> [trace]")
    | "checkpoint", [] -> Service.M_checkpoint
    | "checkpoint", _ -> raise (Bad "usage: checkpoint [trace]")
    | _ -> assert false
  in
  Mutate (mut, trace)

let parse_run rest =
  let timeout = ref None
  and max_rows = ref None
  and max_inter = ref None
  and fault_at = ref None
  and fault_all = ref false
  and collect = ref false
  and trace = ref false in
  let len = String.length rest in
  let int_v k v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> n
    | _ -> raise (Bad (Printf.sprintf "option %s needs a non-negative integer, got %S" k v))
  in
  let rec go i =
    if i >= len then raise (Bad "missing q=<query>")
    else if rest.[i] = ' ' then go (i + 1)
    else if i + 2 <= len && String.sub rest i 2 = "q=" then
      (* q= consumes the rest of the line. *)
      String.sub rest (i + 2) (len - i - 2)
    else begin
      let j = match String.index_from_opt rest i ' ' with Some j -> j | None -> len in
      let tok = String.sub rest i (j - i) in
      (match String.index_opt tok '=' with
      | None -> (
          (* Boolean options may appear as bare flags. *)
          match tok with
          | "fault_all" -> fault_all := true
          | "rows" -> collect := true
          | "trace" -> trace := true
          | _ -> raise (Bad (Printf.sprintf "bad option %S (expected key=value)" tok)))
      | Some eq -> (
          let k = String.sub tok 0 eq in
          let v = String.sub tok (eq + 1) (String.length tok - eq - 1) in
          match k with
          | "timeout_ms" -> timeout := Some (int_v k v)
          | "max_rows" -> max_rows := Some (int_v k v)
          | "max_intermediate" -> max_inter := Some (int_v k v)
          | "fault_at" -> fault_at := Some (int_v k v)
          | "fault_all" -> fault_all := v = "1" || v = "true"
          | "rows" -> collect := v = "1" || v = "true"
          | "trace" -> trace := v = "1" || v = "true"
          | _ -> raise (Bad (Printf.sprintf "unknown option %S" k))));
      go j
    end
  in
  let qtext = go 0 in
  match parse_query qtext with
  | Error e -> Error e
  | Ok query ->
      Ok
        {
          (Service.request query) with
          Service.text = qtext;
          timeout_ms = !timeout;
          max_rows = !max_rows;
          max_intermediate = !max_inter;
          fault_at = !fault_at;
          fault_all = !fault_all;
          collect_rows = !collect;
          trace = !trace;
        }

let parse_request line =
  let line = String.trim line in
  match line with
  | "" -> Error "empty request"
  | "ping" -> Ok Ping
  | "metrics" -> Ok Metrics_req
  | "shutdown" -> Ok Shutdown
  | "stats" -> Ok Stats
  | "slowlog" -> Ok (Slowlog 10)
  | _ when String.length line > 8 && String.sub line 0 8 = "slowlog " -> (
      let v = String.trim (String.sub line 8 (String.length line - 8)) in
      match int_of_string_opt v with
      | Some n when n > 0 -> Ok (Slowlog n)
      | _ -> Error (Printf.sprintf "slowlog needs a positive count, got %S" v))
  | _ when String.length line > 6 && String.sub line 0 6 = "trace " -> (
      let v = String.trim (String.sub line 6 (String.length line - 6)) in
      let v =
        if String.length v > 3 && String.sub v 0 3 = "id=" then
          String.sub v 3 (String.length v - 3)
        else v
      in
      match int_of_string_opt v with
      | Some n when n > 0 -> Ok (Trace_of n)
      | _ -> Error (Printf.sprintf "trace needs id=<record id>, got %S" v))
  | _
    when List.exists
           (fun cmd ->
             line = cmd
             || String.length line > String.length cmd
                && String.sub line 0 (String.length cmd + 1) = cmd ^ " ")
           [ "addedge"; "deledge"; "addvertex"; "delvertex"; "checkpoint" ] -> (
      let cmd, rest =
        match String.index_opt line ' ' with
        | None -> (line, "")
        | Some i -> (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
      in
      try Ok (parse_mutation cmd rest) with Bad m -> Error m)
  | _ ->
      let run_body =
        if line = "run" then Some ""
        else if String.length line > 4 && String.sub line 0 4 = "run " then
          Some (String.sub line 4 (String.length line - 4))
        else None
      in
      let body_result =
        match run_body with
        | Some body -> ( try parse_run body with Bad m -> Error m)
        | None -> (
            (* A bare line is a plain run of that query. *)
            match parse_query line with
            | Ok q -> Ok (Service.request q)
            | Error e -> Error e)
      in
      Result.map (fun r -> Run r) body_result

let pong = {|{"ok":true,"type":"pong"}|}
let draining_resp = {|{"ok":false,"error":"rejected","reason":"draining"}|}

let rows_json rows =
  let row r =
    "[" ^ String.concat "," (Array.to_list (Array.map string_of_int r)) ^ "]"
  in
  "[" ^ String.concat "," (List.map row rows) ^ "]"

let ok_run ~(reply : Service.reply) =
  let r = reply.Service.result in
  let base =
    Printf.sprintf
      "{\"ok\":true,\"id\":%d,\"outcome\":\"%s\",\"matches\":%d,\"attempts\":%d,\"retries\":%d,\"degraded\":%b,\"rung\":\"%s\",\"queue_s\":%.6f,\"exec_s\":%.6f"
      reply.Service.id
      (json_escape (Gf.Governor.outcome_to_string r.Ladder.outcome))
      r.Ladder.counters.Gf.Counters.output r.Ladder.attempts r.Ladder.retries
      r.Ladder.degraded (json_escape r.Ladder.rung) reply.Service.queue_s
      reply.Service.exec_s
  in
  let base = base ^ Printf.sprintf ",\"graph_version\":%d" reply.Service.graph_version in
  let base =
    if reply.Service.traced then
      base ^ Printf.sprintf ",\"traced\":true,\"trace_id\":%d" reply.Service.record_id
    else base
  in
  if reply.Service.rows = [] then base ^ "}"
  else base ^ ",\"rows\":" ^ rows_json reply.Service.rows ^ "}"

let rejected reason =
  Printf.sprintf "{\"ok\":false,\"error\":\"rejected\",\"reason\":\"%s\"}"
    (Service.reject_reason_to_string reason)

let error_resp ~kind ~detail =
  Printf.sprintf "{\"ok\":false,\"error\":\"%s\",\"detail\":\"%s\"}" (json_escape kind)
    (json_escape detail)

let ok_mutation (r : Service.mutation_reply) ~traced =
  let base =
    Printf.sprintf
      "{\"ok\":true,\"type\":\"applied\",\"lsn\":%d,\"applied\":%b,\"version\":%d,\"graph_version\":%d,\"durable\":%d"
      r.Service.m_lsn r.Service.m_applied r.Service.m_version r.Service.m_graph_version
      r.Service.m_durable
  in
  let base =
    match r.Service.m_vertex with
    | Some v -> base ^ Printf.sprintf ",\"vertex\":%d" v
    | None -> base
  in
  if traced then base ^ Printf.sprintf ",\"trace_id\":%d}" r.Service.m_record
  else base ^ "}"

let mutation_rejected (e : Service.mutation_error) =
  match e with
  | Service.M_draining -> draining_resp
  | Service.M_read_only ->
      error_resp ~kind:"read_only" ~detail:"mutations need a server started with --data-dir"
  | Service.M_invalid d -> error_resp ~kind:"invalid" ~detail:d
  | Service.M_failed d -> error_resp ~kind:"wal_failed" ~detail:d

let metrics_resp exposition =
  Printf.sprintf "{\"ok\":true,\"metrics\":\"%s\"}" (json_escape exposition)

let stats_resp (s : Service.stats) =
  Printf.sprintf
    "{\"ok\":true,\"queue_depth\":%d,\"breaker\":\"%s\",\"draining\":%b,\"admitted\":%d,\"completed\":%d,\"truncated\":%d,\"failed\":%d,\"retries\":%d,\"slowlog\":%d,\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f,\"kernel\":\"%s\",\"graph_offheap_bytes\":%d,\"graph_heap_bytes\":%d,\"graph_mapped\":%b,\"graph_nbr_width\":%d,\"graph_version\":%d,\"wal_version\":%d,\"wal_durable\":%d,\"wal_pending\":%d,\"checkpoints\":%d,\"mutations\":%d,\"plan_cache_hits\":%d,\"plan_cache_misses\":%d,\"plan_cache_evictions\":%d,\"plan_cache_replans\":%d,\"plan_cache_invalidations\":%d,\"plan_cache_feedbacks\":%d,\"plan_cache_entries\":%d}"
    s.Service.s_queue_depth
    (json_escape (Breaker.state_to_string s.Service.s_breaker))
    s.Service.s_draining s.Service.s_admitted s.Service.s_completed s.Service.s_truncated
    s.Service.s_failed s.Service.s_retries s.Service.s_slowlog s.Service.s_p50_ms
    s.Service.s_p95_ms s.Service.s_p99_ms (json_escape s.Service.s_kernel)
    s.Service.s_graph_offheap_bytes s.Service.s_graph_heap_bytes s.Service.s_graph_mapped
    s.Service.s_graph_nbr_width s.Service.s_graph_version s.Service.s_wal_version
    s.Service.s_wal_durable s.Service.s_wal_pending s.Service.s_checkpoints
    s.Service.s_mutations s.Service.s_plan_cache_hits s.Service.s_plan_cache_misses
    s.Service.s_plan_cache_evictions s.Service.s_plan_cache_replans
    s.Service.s_plan_cache_invalidations s.Service.s_plan_cache_feedbacks
    s.Service.s_plan_cache_entries

(* Embedded query text may contain anything the client typed; the records
   are escaped JSON objects, so the whole reply stays a single line (the
   framing rule shared with [metrics_resp]). *)
let slowlog_resp records =
  Printf.sprintf "{\"ok\":true,\"count\":%d,\"records\":[%s]}" (List.length records)
    (String.concat "," (List.map Gf.Recorder.record_to_json records))

(* The retained Chrome JSON is itself single-line (built by
   [Trace.to_chrome_json], which escapes every string); nest it raw as the
   last field so clients can split it out by position. *)
let trace_resp ~id json = Printf.sprintf "{\"ok\":true,\"id\":%d,\"trace\":%s}" id json

let trace_not_found id =
  Printf.sprintf
    "{\"ok\":false,\"error\":\"not_found\",\"detail\":\"no retained trace for id %d\"}" id
