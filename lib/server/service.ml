module Gf = Graphflow
module Governor = Gf.Governor
module Counters = Gf.Counters
module Metrics = Gf_exec.Metrics
module Trace = Gf.Trace
module Recorder = Gf.Recorder

type config = {
  queue_capacity : int;
  workers : int;
  ladder : Ladder.config;
  breaker : Breaker.config;
  fault_seed : int option;
  seed : int;
  now : unit -> float;
  sleep : float -> unit;
  slowlog_capacity : int;
  trace_retain : int;
  slow_s : float;
  trace_capacity : int;
}

let default_config =
  {
    queue_capacity = 64;
    workers = 4;
    ladder = Ladder.default_config;
    breaker = Breaker.default_config;
    fault_seed = None;
    seed = 42;
    now = Unix.gettimeofday;
    sleep = Unix.sleepf;
    slowlog_capacity = 256;
    trace_retain = 8;
    slow_s = 0.25;
    trace_capacity = 8192;
  }

type request = {
  query : Gf.Query.t;
  text : string;
  timeout_ms : int option;
  max_rows : int option;
  max_intermediate : int option;
  fault_at : int option;
  fault_all : bool;
  part : (int * int) option;
  collect_rows : bool;
  trace : bool;
}

let request query =
  {
    query;
    text = "";
    timeout_ms = None;
    max_rows = None;
    max_intermediate = None;
    fault_at = None;
    fault_all = false;
    part = None;
    collect_rows = false;
    trace = false;
  }

type reject_reason = Queue_full | Breaker_open | Draining

let reject_reason_to_string = function
  | Queue_full -> "queue_full"
  | Breaker_open -> "breaker_open"
  | Draining -> "draining"

type reply = {
  id : int;
  result : Ladder.result;
  rows : int array list;
  queue_s : float;
  exec_s : float;
  record_id : int;
  traced : bool;
  trace_obj : Trace.t option;
  graph_version : int;
}

type ticket = {
  tid : int;
  tm : Mutex.t;
  tcv : Condition.t;
  mutable answer : reply option;
}

type job = { req : request; tkt : ticket; enqueued_at : float }

type t = {
  mutable db : Gf.Db.t;
  cfg : config;
  breaker : Breaker.t;
  recorder : Recorder.t;
  m : Mutex.t;
  not_empty : Condition.t;
  queue : job Queue.t;
  active : (int, Governor.t) Hashtbl.t;  (** in-flight attempt governors, by id *)
  mutable next_id : int;
  mutable is_draining : bool;
  mutable threads : Thread.t list;
  mutable store : Gf_wal.Store.t option;
}

let recorder t = t.recorder
let store t = t.store

let graph_version t =
  match t.store with Some st -> Gf_wal.Store.graph_version st | None -> 0

(* Metrics looked up by name at record time (the [Db.observe_run] pattern)
   so a [Metrics.reset] between tests is harmless. *)
let c_inc ?by name help = Metrics.inc ?by (Metrics.counter ~help name)

let fulfill tkt answer =
  Mutex.lock tkt.tm;
  tkt.answer <- Some answer;
  Condition.broadcast tkt.tcv;
  Mutex.unlock tkt.tm

let run_job t job =
  let tkt = job.tkt in
  let queue_s = t.cfg.now () -. job.enqueued_at in
  Metrics.observe
    (Metrics.histogram ~help:"Seconds spent in the admission queue"
       "gf_server_queue_seconds")
    queue_s;
  let req = job.req in
  (* Per-request deterministic streams: backoff jitter from the service
     seed, chaos faults from the fault seed (GFQ_FAULT_SEED convention). *)
  let rng = Gf.Rng.create (t.cfg.seed lxor (tkt.tid * 0x9e3779b9)) in
  let fault =
    match req.fault_at with
    | Some at -> Some { Governor.at_tuple = at; operator = "injected" }
    | None -> (
        match t.cfg.fault_seed with
        | None -> None
        | Some fs ->
            let frng = Gf.Rng.create (fs lxor (tkt.tid * 0x1f123bb5)) in
            if Gf.Rng.int frng 4 = 0 then
              Some { Governor.at_tuple = 1 + Gf.Rng.int frng 2048; operator = "chaos" }
            else None)
  in
  let fault_attempts = if req.fault_all then max_int else 1 in
  (* Request overrides replace the ladder budget's fields; the degraded
     budget keeps whichever cap is tighter. *)
  let override v o = match o with Some _ -> o | None -> v in
  let tighter a b =
    match (a, b) with
    | Some x, Some y -> Some (min x y)
    | (Some _ as s), None | None, (Some _ as s) -> s
    | None, None -> None
  in
  let deadline = Option.map (fun ms -> float_of_int ms /. 1000.0) req.timeout_ms in
  let base = t.cfg.ladder.Ladder.budget in
  let degraded = t.cfg.ladder.Ladder.degraded_budget in
  let lcfg =
    {
      t.cfg.ladder with
      Ladder.budget =
        {
          Governor.deadline_s = override base.Governor.deadline_s deadline;
          max_output = override base.Governor.max_output req.max_rows;
          max_intermediate = override base.Governor.max_intermediate req.max_intermediate;
          max_bytes = base.Governor.max_bytes;
        };
      degraded_budget =
        {
          Governor.deadline_s = tighter degraded.Governor.deadline_s deadline;
          max_output = tighter degraded.Governor.max_output req.max_rows;
          max_intermediate = tighter degraded.Governor.max_intermediate req.max_intermediate;
          max_bytes = degraded.Governor.max_bytes;
        };
    }
  in
  let attach gov =
    Mutex.lock t.m;
    (* A drain may have started since this job was dequeued: make sure the
       attempt sees the cancellation rather than running to completion. *)
    if t.is_draining then Governor.cancel gov;
    Hashtbl.replace t.active tkt.tid gov;
    Mutex.unlock t.m;
    fun () ->
      Mutex.lock t.m;
      Hashtbl.remove t.active tkt.tid;
      Mutex.unlock t.m
  in
  let rows = ref [] in
  let sink = if req.collect_rows then Some (fun r -> rows := r :: !rows) else None in
  (* Tracing is opt-in per request: the untraced path allocates nothing and
     branches once per phase boundary. A traced request gets its own trace
     object; the service's lifecycle buffer is tid 0. *)
  let trace, tbuf =
    if req.trace then begin
      let tr = Trace.create ~capacity:t.cfg.trace_capacity () in
      let b = Trace.buffer ~name:"request" tr ~tid:0 in
      (* The queue wait already happened; synthesize it so the timeline
         starts at admission, not at dequeue. *)
      let now = Trace.now_us () in
      Trace.add_complete ~cat:"service" b ~name:"queue-wait"
        ~ts_us:(now - int_of_float (queue_s *. 1e6))
        ~dur_us:(int_of_float (queue_s *. 1e6));
      Trace.begin_span ~cat:"service" ~args:[ ("id", Trace.Int tkt.tid) ] b "request";
      (Some tr, Some b)
    end
    else (None, None)
  in
  (* One load of the (mutable) db for the whole job, so plan digest and
     execution agree on a graph even if a merge publishes mid-request. *)
  let db = t.db in
  let t0 = t.cfg.now () in
  let result =
    Ladder.run ~sleep:t.cfg.sleep ~now:t.cfg.now ~attach ?fault ~fault_attempts
      ?part:req.part ?sink ?trace ?tbuf ~rng lcfg db req.query
  in
  let exec_s = t.cfg.now () -. t0 in
  (match tbuf with
  | Some b ->
      Trace.end_span
        ~args:[ ("rung", Trace.Str result.Ladder.rung); ("attempts", Int result.Ladder.attempts) ]
        b;
      Trace.close_all b
  | None -> ());
  let ok = match result.Ladder.outcome with Governor.Failed _ -> false | _ -> true in
  Breaker.record t.breaker ~ok;
  (match result.Ladder.outcome with
  | Governor.Completed ->
      c_inc "gf_server_requests_completed_total" "Requests answered Completed"
  | Governor.Truncated _ ->
      c_inc "gf_server_requests_truncated_total" "Requests answered Truncated"
  | Governor.Failed _ ->
      c_inc "gf_server_requests_failed_total" "Requests answered Failed");
  if result.Ladder.retries > 0 then
    c_inc ~by:result.Ladder.retries "gf_server_retries_total"
      "Ladder retries across all requests";
  if result.Ladder.degraded then
    c_inc "gf_server_degraded_total" "Requests answered from a degraded rung";
  Metrics.observe
    (Metrics.histogram ~help:"Request execution seconds (attempts + backoffs)"
       "gf_server_request_seconds")
    exec_s;
  (* Flight recorder: one record per executed request, always on. The top
     operators come from the trace's operator-summary spans (traced
     requests only — the untraced path stays profile-free). *)
  let top_ops =
    match trace with
    | None -> []
    | Some tr ->
        Trace.spans tr
        |> List.filter_map (fun (s : Trace.span) ->
               if s.Trace.cat = "operator" then
                 Some (s.Trace.name, float_of_int s.Trace.dur_us /. 1e6)
               else None)
        |> List.sort (fun (_, a) (_, b) -> compare b a)
        |> List.filteri (fun i _ -> i < 3)
  in
  let digest = try Gf.Db.plan_signature db req.query with _ -> "?" in
  let record_id =
    Recorder.record t.recorder ~query:req.text ~plan:digest
      ~outcome:(Governor.outcome_to_string result.Ladder.outcome)
      ~latency_s:exec_s ~queue_s ~rung:result.Ladder.rung ~attempts:result.Ladder.attempts
      ~retries:result.Ladder.retries ~top_ops ~traced:req.trace
      ?trace_json:(Option.map Trace.to_chrome_json trace)
      ()
  in
  fulfill tkt
    {
      id = tkt.tid;
      result;
      rows = List.rev !rows;
      queue_s;
      exec_s;
      record_id;
      traced = req.trace;
      trace_obj = trace;
      graph_version = graph_version t;
    }

let rec worker_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.queue && not t.is_draining do
    Condition.wait t.not_empty t.m
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.m (* draining: exit *)
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.m;
    run_job t job;
    worker_loop t
  end

let create ?(config = default_config) db =
  let t =
    {
      db;
      cfg = config;
      breaker = Breaker.create ~now:config.now config.breaker;
      recorder =
        Recorder.create ~capacity:config.slowlog_capacity ~retain:config.trace_retain
          ~slow_s:config.slow_s ();
      m = Mutex.create ();
      not_empty = Condition.create ();
      queue = Queue.create ();
      active = Hashtbl.create 16;
      next_id = 0;
      is_draining = false;
      threads = [];
      store = None;
    }
  in
  t.threads <- List.init config.workers (fun _ -> Thread.create worker_loop t);
  t

let submit_async t req =
  Mutex.lock t.m;
  let decision =
    if t.is_draining then begin
      c_inc "gf_server_shed_draining_total" "Requests shed while draining";
      Error Draining
    end
    else if Queue.length t.queue >= t.cfg.queue_capacity then begin
      c_inc "gf_server_shed_queue_full_total" "Requests shed by the bounded queue";
      Error Queue_full
    end
    else
      (* Breaker last, so a full queue cannot eat the half-open probe. *)
      match Breaker.admit t.breaker with
      | `Reject ->
          c_inc "gf_server_shed_breaker_open_total"
            "Requests shed by the open circuit breaker";
          Error Breaker_open
      | `Admit ->
          t.next_id <- t.next_id + 1;
          let tkt =
            {
              tid = t.next_id;
              tm = Mutex.create ();
              tcv = Condition.create ();
              answer = None;
            }
          in
          Queue.push { req; tkt; enqueued_at = t.cfg.now () } t.queue;
          c_inc "gf_server_admitted_total" "Requests admitted to the queue";
          Condition.signal t.not_empty;
          Ok tkt
  in
  Mutex.unlock t.m;
  decision

let await _t tkt =
  Mutex.lock tkt.tm;
  while tkt.answer = None do
    Condition.wait tkt.tcv tkt.tm
  done;
  let answer = Option.get tkt.answer in
  Mutex.unlock tkt.tm;
  answer

let fulfilled tkt =
  Mutex.lock tkt.tm;
  let r = tkt.answer <> None in
  Mutex.unlock tkt.tm;
  r

let step t =
  Mutex.lock t.m;
  if Queue.is_empty t.queue then begin
    Mutex.unlock t.m;
    false
  end
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.m;
    run_job t job;
    true
  end

let submit t req =
  match submit_async t req with
  | Error r -> Error r
  | Ok tkt ->
      if t.cfg.workers = 0 then while (not (fulfilled tkt)) && step t do () done;
      Ok (await t tkt)

let drain t =
  Mutex.lock t.m;
  let first = not t.is_draining in
  t.is_draining <- true;
  let queued = Queue.fold (fun acc j -> j :: acc) [] t.queue in
  Queue.clear t.queue;
  let govs = Hashtbl.fold (fun _ g acc -> g :: acc) t.active [] in
  let threads = t.threads in
  t.threads <- [];
  Condition.broadcast t.not_empty;
  Mutex.unlock t.m;
  (* Cancel in-flight attempts: their governors trip at the next check and
     the ladder reports [Truncated Cancelled]. *)
  List.iter Governor.cancel govs;
  (* Answer everything still queued without running it. *)
  List.iter
    (fun job ->
      c_inc "gf_server_requests_truncated_total" "Requests answered Truncated";
      fulfill job.tkt
        {
          id = job.tkt.tid;
          result =
            {
              Ladder.outcome = Governor.Truncated Governor.Cancelled;
              counters = Counters.create ();
              attempts = 0;
              retries = 0;
              degraded = false;
              rung = "none";
              backoffs = [];
            };
          rows = [];
          queue_s = t.cfg.now () -. job.enqueued_at;
          exec_s = 0.0;
          record_id = 0;
          traced = false;
          trace_obj = None;
          graph_version = graph_version t;
        })
    (List.rev queued);
  List.iter Thread.join threads;
  if first then c_inc "gf_server_drains_total" "Service drains completed"

let draining t =
  Mutex.lock t.m;
  let d = t.is_draining in
  Mutex.unlock t.m;
  d

let queue_depth t =
  Mutex.lock t.m;
  let n = Queue.length t.queue in
  Mutex.unlock t.m;
  n

let breaker_state t = Breaker.state t.breaker

(* ------------------------------------------------------------------ *)
(* Durable mutations                                                   *)
(* ------------------------------------------------------------------ *)

module Store = Gf_wal.Store

type mutation =
  | M_add_edge of { u : int; v : int; elabel : int }
  | M_del_edge of { u : int; v : int; elabel : int }
  | M_add_vertex of { label : int }
  | M_del_vertex of { v : int }
  | M_checkpoint

type mutation_reply = {
  m_lsn : int;
  m_applied : bool;
  m_vertex : int option;
  m_version : int;
  m_graph_version : int;
  m_durable : int;
  m_record : int;
}

type mutation_error =
  | M_read_only
  | M_draining
  | M_invalid of string
  | M_failed of string

let mutation_error_to_string = function
  | M_read_only -> "read_only: no durable store attached (serve without --data-dir)"
  | M_draining -> "draining"
  | M_invalid d -> "invalid: " ^ d
  | M_failed d -> "wal_failed: " ^ d

let attach_store t st =
  t.store <- Some st;
  (* The store's graph is the recovered truth (snapshot + replay); the db
     the service was created with only supplied the genesis state. *)
  t.db <- Gf.Db.with_graph ~version:(Store.graph_version st) t.db (Store.graph st);
  Store.set_on_merge st (fun version ->
      (* Called under the store's writer lock: re-seat the db on the new
         CSR. The old catalogue's statistics described the old graph, so
         every entry is invalidated wholesale — and so is the plan cache:
         its plans were costed against those statistics, and re-keying the
         db on the new graph version makes any surviving entry unreachable
         anyway. *)
      let entries = Gf.Catalog.num_entries (Gf.Db.catalog t.db) in
      t.db <- Gf.Db.with_graph ~version t.db (Store.graph st);
      (match Gf.Db.plan_cache t.db with
      | Some cache -> Gf.Plan_cache.invalidate cache
      | None -> ());
      c_inc "gf_server_catalog_invalidations_total"
        "Catalogue invalidations forced by merged mutations";
      if entries > 0 then
        c_inc ~by:entries "gf_server_catalog_entries_invalidated_total"
          "Catalogue entries dropped by merge invalidations")

let mutation_text = function
  | M_add_edge { u; v; elabel } -> Printf.sprintf "addedge %d %d %d" u v elabel
  | M_del_edge { u; v; elabel } -> Printf.sprintf "deledge %d %d %d" u v elabel
  | M_add_vertex { label } -> Printf.sprintf "addvertex %d" label
  | M_del_vertex { v } -> Printf.sprintf "delvertex %d" v
  | M_checkpoint -> "checkpoint"

let mutate t ?(trace = false) ?text mut =
  if draining t then Error M_draining
  else
    match t.store with
    | None ->
        c_inc "gf_server_mutations_rejected_total" "Mutations refused";
        Error M_read_only
    | Some st -> (
        let text = match text with Some s -> s | None -> mutation_text mut in
        let tr, tbuf =
          if trace then begin
            let tr = Trace.create ~capacity:t.cfg.trace_capacity () in
            (Some tr, Some (Trace.buffer ~name:"mutation" tr ~tid:0))
          end
          else (None, None)
        in
        let sp name f =
          match tbuf with None -> f () | Some b -> Trace.span ~cat:"wal" b name f
        in
        let t0 = t.cfg.now () in
        let applied =
          match mut with
          | M_add_edge { u; v; elabel } ->
              Result.map
                (fun (lsn, a) -> (lsn, a = Gf.Delta.Applied, None))
                (sp "wal-apply" (fun () -> Store.add_edge st u v ~elabel))
          | M_del_edge { u; v; elabel } ->
              Result.map
                (fun (lsn, a) -> (lsn, a = Gf.Delta.Applied, None))
                (sp "wal-apply" (fun () -> Store.del_edge st u v ~elabel))
          | M_add_vertex { label } ->
              Result.map
                (fun (lsn, id) -> (lsn, true, Some id))
                (sp "wal-apply" (fun () -> Store.add_vertex st ~label))
          | M_del_vertex { v } ->
              Result.map
                (fun (lsn, a) -> (lsn, a = Gf.Delta.Applied, None))
                (sp "wal-apply" (fun () -> Store.del_vertex st v))
          | M_checkpoint ->
              Result.map (fun v -> (v, true, None)) (sp "checkpoint" (fun () -> Store.checkpoint st))
        in
        (* Acknowledge only after a covering fsync: [Store.sync] group-
           commits, so concurrent connections share one fsync. Checkpoint
           already syncs internally. *)
        let acked =
          match applied with
          | Error _ -> applied
          | Ok _ when mut = M_checkpoint -> applied
          | Ok _ -> (
              match sp "wal-sync" (fun () -> Store.sync st) with
              | Ok _ -> applied
              | Error e -> Error e)
        in
        let latency = t.cfg.now () -. t0 in
        let outcome, err =
          match acked with
          | Ok _ -> ("applied", None)
          | Error (Store.Invalid e) -> ("invalid", Some (M_invalid (Gf.Delta.error_to_string e)))
          | Error (Store.Failed msg) -> ("failed", Some (M_failed msg))
        in
        let record_id =
          Recorder.record t.recorder ~query:text ~plan:"wal" ~outcome ~latency_s:latency
            ~queue_s:0.0 ~rung:"wal" ~attempts:1 ~retries:0 ~top_ops:[] ~traced:trace
            ?trace_json:(Option.map Trace.to_chrome_json tr)
            ()
        in
        match (acked, err) with
        | Ok (lsn, was_applied, vertex), _ ->
            c_inc "gf_server_mutations_total" "Mutations acknowledged durable";
            Metrics.observe
              (Metrics.histogram ~help:"Mutation ack latency in seconds"
                 "gf_server_mutation_seconds")
              latency;
            Ok
              {
                m_lsn = lsn;
                m_applied = was_applied;
                m_vertex = vertex;
                m_version = Store.version st;
                m_graph_version = Store.graph_version st;
                m_durable = Store.durable_lsn st;
                m_record = record_id;
              }
        | Error _, Some e ->
            c_inc "gf_server_mutations_rejected_total" "Mutations refused";
            Error e
        | Error _, None -> assert false)

type stats = {
  s_queue_depth : int;
  s_breaker : Breaker.state;
  s_draining : bool;
  s_admitted : int;
  s_completed : int;
  s_truncated : int;
  s_failed : int;
  s_retries : int;
  s_slowlog : int;
  s_p50_ms : float;
  s_p95_ms : float;
  s_p99_ms : float;
  s_kernel : string;
  s_graph_offheap_bytes : int;
  s_graph_heap_bytes : int;
  s_graph_mapped : bool;
  s_graph_nbr_width : int;
  s_graph_version : int;
  s_wal_version : int;
  s_wal_durable : int;
  s_wal_pending : int;
  s_checkpoints : int;
  s_mutations : int;
  s_plan_cache_hits : int;
  s_plan_cache_misses : int;
  s_plan_cache_evictions : int;
  s_plan_cache_replans : int;
  s_plan_cache_invalidations : int;
  s_plan_cache_feedbacks : int;
  s_plan_cache_entries : int;
}

(* Counters read by name (0 if never bumped); the latency quantiles come
   from the request-seconds histogram via [Metrics.quantile]. *)
let stats t =
  let cv name = Metrics.counter_value (Metrics.counter name) in
  let h = Metrics.histogram "gf_server_request_seconds" in
  let q p = match Metrics.quantile h p with x when Float.is_nan x -> 0.0 | x -> x *. 1e3 in
  let r = Gf.Graph.residency (Gf.Db.graph t.db) in
  let pc =
    match Gf.Db.plan_cache t.db with
    | Some c -> Gf.Plan_cache.stats c
    | None ->
        {
          Gf.Plan_cache.hits = 0;
          misses = 0;
          evictions = 0;
          replans = 0;
          invalidations = 0;
          feedbacks = 0;
          entries = 0;
        }
  in
  {
    s_queue_depth = queue_depth t;
    s_breaker = breaker_state t;
    s_draining = draining t;
    s_admitted = cv "gf_server_admitted_total";
    s_completed = cv "gf_server_requests_completed_total";
    s_truncated = cv "gf_server_requests_truncated_total";
    s_failed = cv "gf_server_requests_failed_total";
    s_retries = cv "gf_server_retries_total";
    s_slowlog = Recorder.length t.recorder;
    s_p50_ms = q 0.50;
    s_p95_ms = q 0.95;
    s_p99_ms = q 0.99;
    s_kernel = Gf_util.Sorted.kernel_name ();
    s_graph_offheap_bytes = r.Gf.Graph.offheap_bytes;
    s_graph_heap_bytes = r.Gf.Graph.heap_bytes;
    s_graph_mapped = r.Gf.Graph.mapped;
    s_graph_nbr_width = r.Gf.Graph.nbr_width;
    s_graph_version = graph_version t;
    s_wal_version = (match t.store with Some st -> Store.version st | None -> 0);
    s_wal_durable = (match t.store with Some st -> Store.durable_lsn st | None -> 0);
    s_wal_pending = (match t.store with Some st -> Store.pending st | None -> 0);
    s_checkpoints = (match t.store with Some st -> Store.checkpoints st | None -> 0);
    s_mutations = cv "gf_server_mutations_total";
    s_plan_cache_hits = pc.Gf.Plan_cache.hits;
    s_plan_cache_misses = pc.Gf.Plan_cache.misses;
    s_plan_cache_evictions = pc.Gf.Plan_cache.evictions;
    s_plan_cache_replans = pc.Gf.Plan_cache.replans;
    s_plan_cache_invalidations = pc.Gf.Plan_cache.invalidations;
    s_plan_cache_feedbacks = pc.Gf.Plan_cache.feedbacks;
    s_plan_cache_entries = pc.Gf.Plan_cache.entries;
  }
