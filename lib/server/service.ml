module Gf = Graphflow
module Governor = Gf.Governor
module Counters = Gf.Counters
module Metrics = Gf_exec.Metrics
module Trace = Gf.Trace
module Recorder = Gf.Recorder

type config = {
  queue_capacity : int;
  workers : int;
  ladder : Ladder.config;
  breaker : Breaker.config;
  fault_seed : int option;
  seed : int;
  now : unit -> float;
  sleep : float -> unit;
  slowlog_capacity : int;
  trace_retain : int;
  slow_s : float;
  trace_capacity : int;
}

let default_config =
  {
    queue_capacity = 64;
    workers = 4;
    ladder = Ladder.default_config;
    breaker = Breaker.default_config;
    fault_seed = None;
    seed = 42;
    now = Unix.gettimeofday;
    sleep = Unix.sleepf;
    slowlog_capacity = 256;
    trace_retain = 8;
    slow_s = 0.25;
    trace_capacity = 8192;
  }

type request = {
  query : Gf.Query.t;
  text : string;
  timeout_ms : int option;
  max_rows : int option;
  max_intermediate : int option;
  fault_at : int option;
  fault_all : bool;
  collect_rows : bool;
  trace : bool;
}

let request query =
  {
    query;
    text = "";
    timeout_ms = None;
    max_rows = None;
    max_intermediate = None;
    fault_at = None;
    fault_all = false;
    collect_rows = false;
    trace = false;
  }

type reject_reason = Queue_full | Breaker_open | Draining

let reject_reason_to_string = function
  | Queue_full -> "queue_full"
  | Breaker_open -> "breaker_open"
  | Draining -> "draining"

type reply = {
  id : int;
  result : Ladder.result;
  rows : int array list;
  queue_s : float;
  exec_s : float;
  record_id : int;
  traced : bool;
}

type ticket = {
  tid : int;
  tm : Mutex.t;
  tcv : Condition.t;
  mutable answer : reply option;
}

type job = { req : request; tkt : ticket; enqueued_at : float }

type t = {
  db : Gf.Db.t;
  cfg : config;
  breaker : Breaker.t;
  recorder : Recorder.t;
  m : Mutex.t;
  not_empty : Condition.t;
  queue : job Queue.t;
  active : (int, Governor.t) Hashtbl.t;  (** in-flight attempt governors, by id *)
  mutable next_id : int;
  mutable is_draining : bool;
  mutable threads : Thread.t list;
}

let recorder t = t.recorder

(* Metrics looked up by name at record time (the [Db.observe_run] pattern)
   so a [Metrics.reset] between tests is harmless. *)
let c_inc ?by name help = Metrics.inc ?by (Metrics.counter ~help name)

let fulfill tkt answer =
  Mutex.lock tkt.tm;
  tkt.answer <- Some answer;
  Condition.broadcast tkt.tcv;
  Mutex.unlock tkt.tm

let run_job t job =
  let tkt = job.tkt in
  let queue_s = t.cfg.now () -. job.enqueued_at in
  Metrics.observe
    (Metrics.histogram ~help:"Seconds spent in the admission queue"
       "gf_server_queue_seconds")
    queue_s;
  let req = job.req in
  (* Per-request deterministic streams: backoff jitter from the service
     seed, chaos faults from the fault seed (GFQ_FAULT_SEED convention). *)
  let rng = Gf.Rng.create (t.cfg.seed lxor (tkt.tid * 0x9e3779b9)) in
  let fault =
    match req.fault_at with
    | Some at -> Some { Governor.at_tuple = at; operator = "injected" }
    | None -> (
        match t.cfg.fault_seed with
        | None -> None
        | Some fs ->
            let frng = Gf.Rng.create (fs lxor (tkt.tid * 0x1f123bb5)) in
            if Gf.Rng.int frng 4 = 0 then
              Some { Governor.at_tuple = 1 + Gf.Rng.int frng 2048; operator = "chaos" }
            else None)
  in
  let fault_attempts = if req.fault_all then max_int else 1 in
  (* Request overrides replace the ladder budget's fields; the degraded
     budget keeps whichever cap is tighter. *)
  let override v o = match o with Some _ -> o | None -> v in
  let tighter a b =
    match (a, b) with
    | Some x, Some y -> Some (min x y)
    | (Some _ as s), None | None, (Some _ as s) -> s
    | None, None -> None
  in
  let deadline = Option.map (fun ms -> float_of_int ms /. 1000.0) req.timeout_ms in
  let base = t.cfg.ladder.Ladder.budget in
  let degraded = t.cfg.ladder.Ladder.degraded_budget in
  let lcfg =
    {
      t.cfg.ladder with
      Ladder.budget =
        {
          Governor.deadline_s = override base.Governor.deadline_s deadline;
          max_output = override base.Governor.max_output req.max_rows;
          max_intermediate = override base.Governor.max_intermediate req.max_intermediate;
          max_bytes = base.Governor.max_bytes;
        };
      degraded_budget =
        {
          Governor.deadline_s = tighter degraded.Governor.deadline_s deadline;
          max_output = tighter degraded.Governor.max_output req.max_rows;
          max_intermediate = tighter degraded.Governor.max_intermediate req.max_intermediate;
          max_bytes = degraded.Governor.max_bytes;
        };
    }
  in
  let attach gov =
    Mutex.lock t.m;
    (* A drain may have started since this job was dequeued: make sure the
       attempt sees the cancellation rather than running to completion. *)
    if t.is_draining then Governor.cancel gov;
    Hashtbl.replace t.active tkt.tid gov;
    Mutex.unlock t.m;
    fun () ->
      Mutex.lock t.m;
      Hashtbl.remove t.active tkt.tid;
      Mutex.unlock t.m
  in
  let rows = ref [] in
  let sink = if req.collect_rows then Some (fun r -> rows := r :: !rows) else None in
  (* Tracing is opt-in per request: the untraced path allocates nothing and
     branches once per phase boundary. A traced request gets its own trace
     object; the service's lifecycle buffer is tid 0. *)
  let trace, tbuf =
    if req.trace then begin
      let tr = Trace.create ~capacity:t.cfg.trace_capacity () in
      let b = Trace.buffer ~name:"request" tr ~tid:0 in
      (* The queue wait already happened; synthesize it so the timeline
         starts at admission, not at dequeue. *)
      let now = Trace.now_us () in
      Trace.add_complete ~cat:"service" b ~name:"queue-wait"
        ~ts_us:(now - int_of_float (queue_s *. 1e6))
        ~dur_us:(int_of_float (queue_s *. 1e6));
      Trace.begin_span ~cat:"service" ~args:[ ("id", Trace.Int tkt.tid) ] b "request";
      (Some tr, Some b)
    end
    else (None, None)
  in
  let t0 = t.cfg.now () in
  let result =
    Ladder.run ~sleep:t.cfg.sleep ~attach ?fault ~fault_attempts ?sink ?trace ?tbuf ~rng lcfg
      t.db req.query
  in
  let exec_s = t.cfg.now () -. t0 in
  (match tbuf with
  | Some b ->
      Trace.end_span
        ~args:[ ("rung", Trace.Str result.Ladder.rung); ("attempts", Int result.Ladder.attempts) ]
        b;
      Trace.close_all b
  | None -> ());
  let ok = match result.Ladder.outcome with Governor.Failed _ -> false | _ -> true in
  Breaker.record t.breaker ~ok;
  (match result.Ladder.outcome with
  | Governor.Completed ->
      c_inc "gf_server_requests_completed_total" "Requests answered Completed"
  | Governor.Truncated _ ->
      c_inc "gf_server_requests_truncated_total" "Requests answered Truncated"
  | Governor.Failed _ ->
      c_inc "gf_server_requests_failed_total" "Requests answered Failed");
  if result.Ladder.retries > 0 then
    c_inc ~by:result.Ladder.retries "gf_server_retries_total"
      "Ladder retries across all requests";
  if result.Ladder.degraded then
    c_inc "gf_server_degraded_total" "Requests answered from a degraded rung";
  Metrics.observe
    (Metrics.histogram ~help:"Request execution seconds (attempts + backoffs)"
       "gf_server_request_seconds")
    exec_s;
  (* Flight recorder: one record per executed request, always on. The top
     operators come from the trace's operator-summary spans (traced
     requests only — the untraced path stays profile-free). *)
  let top_ops =
    match trace with
    | None -> []
    | Some tr ->
        Trace.spans tr
        |> List.filter_map (fun (s : Trace.span) ->
               if s.Trace.cat = "operator" then
                 Some (s.Trace.name, float_of_int s.Trace.dur_us /. 1e6)
               else None)
        |> List.sort (fun (_, a) (_, b) -> compare b a)
        |> List.filteri (fun i _ -> i < 3)
  in
  let digest =
    try Gf.Plan.signature (fst (Gf.Db.plan t.db req.query)) with _ -> "?"
  in
  let record_id =
    Recorder.record t.recorder ~query:req.text ~plan:digest
      ~outcome:(Governor.outcome_to_string result.Ladder.outcome)
      ~latency_s:exec_s ~queue_s ~rung:result.Ladder.rung ~attempts:result.Ladder.attempts
      ~retries:result.Ladder.retries ~top_ops ~traced:req.trace
      ?trace_json:(Option.map Trace.to_chrome_json trace)
      ()
  in
  fulfill tkt
    { id = tkt.tid; result; rows = List.rev !rows; queue_s; exec_s; record_id; traced = req.trace }

let rec worker_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.queue && not t.is_draining do
    Condition.wait t.not_empty t.m
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.m (* draining: exit *)
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.m;
    run_job t job;
    worker_loop t
  end

let create ?(config = default_config) db =
  let t =
    {
      db;
      cfg = config;
      breaker = Breaker.create ~now:config.now config.breaker;
      recorder =
        Recorder.create ~capacity:config.slowlog_capacity ~retain:config.trace_retain
          ~slow_s:config.slow_s ();
      m = Mutex.create ();
      not_empty = Condition.create ();
      queue = Queue.create ();
      active = Hashtbl.create 16;
      next_id = 0;
      is_draining = false;
      threads = [];
    }
  in
  t.threads <- List.init config.workers (fun _ -> Thread.create worker_loop t);
  t

let submit_async t req =
  Mutex.lock t.m;
  let decision =
    if t.is_draining then begin
      c_inc "gf_server_shed_draining_total" "Requests shed while draining";
      Error Draining
    end
    else if Queue.length t.queue >= t.cfg.queue_capacity then begin
      c_inc "gf_server_shed_queue_full_total" "Requests shed by the bounded queue";
      Error Queue_full
    end
    else
      (* Breaker last, so a full queue cannot eat the half-open probe. *)
      match Breaker.admit t.breaker with
      | `Reject ->
          c_inc "gf_server_shed_breaker_open_total"
            "Requests shed by the open circuit breaker";
          Error Breaker_open
      | `Admit ->
          t.next_id <- t.next_id + 1;
          let tkt =
            {
              tid = t.next_id;
              tm = Mutex.create ();
              tcv = Condition.create ();
              answer = None;
            }
          in
          Queue.push { req; tkt; enqueued_at = t.cfg.now () } t.queue;
          c_inc "gf_server_admitted_total" "Requests admitted to the queue";
          Condition.signal t.not_empty;
          Ok tkt
  in
  Mutex.unlock t.m;
  decision

let await _t tkt =
  Mutex.lock tkt.tm;
  while tkt.answer = None do
    Condition.wait tkt.tcv tkt.tm
  done;
  let answer = Option.get tkt.answer in
  Mutex.unlock tkt.tm;
  answer

let fulfilled tkt =
  Mutex.lock tkt.tm;
  let r = tkt.answer <> None in
  Mutex.unlock tkt.tm;
  r

let step t =
  Mutex.lock t.m;
  if Queue.is_empty t.queue then begin
    Mutex.unlock t.m;
    false
  end
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.m;
    run_job t job;
    true
  end

let submit t req =
  match submit_async t req with
  | Error r -> Error r
  | Ok tkt ->
      if t.cfg.workers = 0 then while (not (fulfilled tkt)) && step t do () done;
      Ok (await t tkt)

let drain t =
  Mutex.lock t.m;
  let first = not t.is_draining in
  t.is_draining <- true;
  let queued = Queue.fold (fun acc j -> j :: acc) [] t.queue in
  Queue.clear t.queue;
  let govs = Hashtbl.fold (fun _ g acc -> g :: acc) t.active [] in
  let threads = t.threads in
  t.threads <- [];
  Condition.broadcast t.not_empty;
  Mutex.unlock t.m;
  (* Cancel in-flight attempts: their governors trip at the next check and
     the ladder reports [Truncated Cancelled]. *)
  List.iter Governor.cancel govs;
  (* Answer everything still queued without running it. *)
  List.iter
    (fun job ->
      c_inc "gf_server_requests_truncated_total" "Requests answered Truncated";
      fulfill job.tkt
        {
          id = job.tkt.tid;
          result =
            {
              Ladder.outcome = Governor.Truncated Governor.Cancelled;
              counters = Counters.create ();
              attempts = 0;
              retries = 0;
              degraded = false;
              rung = "none";
              backoffs = [];
            };
          rows = [];
          queue_s = t.cfg.now () -. job.enqueued_at;
          exec_s = 0.0;
          record_id = 0;
          traced = false;
        })
    (List.rev queued);
  List.iter Thread.join threads;
  if first then c_inc "gf_server_drains_total" "Service drains completed"

let draining t =
  Mutex.lock t.m;
  let d = t.is_draining in
  Mutex.unlock t.m;
  d

let queue_depth t =
  Mutex.lock t.m;
  let n = Queue.length t.queue in
  Mutex.unlock t.m;
  n

let breaker_state t = Breaker.state t.breaker

type stats = {
  s_queue_depth : int;
  s_breaker : Breaker.state;
  s_draining : bool;
  s_admitted : int;
  s_completed : int;
  s_truncated : int;
  s_failed : int;
  s_retries : int;
  s_slowlog : int;
  s_p50_ms : float;
  s_p95_ms : float;
  s_p99_ms : float;
  s_kernel : string;
  s_graph_offheap_bytes : int;
  s_graph_heap_bytes : int;
  s_graph_mapped : bool;
  s_graph_nbr_width : int;
}

(* Counters read by name (0 if never bumped); the latency quantiles come
   from the request-seconds histogram via [Metrics.quantile]. *)
let stats t =
  let cv name = Metrics.counter_value (Metrics.counter name) in
  let h = Metrics.histogram "gf_server_request_seconds" in
  let q p = match Metrics.quantile h p with x when Float.is_nan x -> 0.0 | x -> x *. 1e3 in
  let r = Gf.Graph.residency (Gf.Db.graph t.db) in
  {
    s_queue_depth = queue_depth t;
    s_breaker = breaker_state t;
    s_draining = draining t;
    s_admitted = cv "gf_server_admitted_total";
    s_completed = cv "gf_server_requests_completed_total";
    s_truncated = cv "gf_server_requests_truncated_total";
    s_failed = cv "gf_server_requests_failed_total";
    s_retries = cv "gf_server_retries_total";
    s_slowlog = Recorder.length t.recorder;
    s_p50_ms = q 0.50;
    s_p95_ms = q 0.95;
    s_p99_ms = q 0.99;
    s_kernel = Gf_util.Sorted.kernel_name ();
    s_graph_offheap_bytes = r.Gf.Graph.offheap_bytes;
    s_graph_heap_bytes = r.Gf.Graph.heap_bytes;
    s_graph_mapped = r.Gf.Graph.mapped;
    s_graph_nbr_width = r.Gf.Graph.nbr_width;
  }
