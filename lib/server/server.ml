module Gf = Graphflow
module Metrics = Gf_exec.Metrics

type endpoint = Unix_path of string | Tcp of string * int

let c_inc name help = Metrics.inc (Metrics.counter ~help name)

type conn = { fd : Unix.file_descr; mutable thread : Thread.t option }

type hook = string -> [ `Reply of string | `Close | `Pass ]

type state = {
  service : Service.t;
  hook : hook;
  listen_fd : Unix.file_descr;
  m : Mutex.t;
  mutable conns : conn list;
  mutable stopping : bool;
}

let request_stop st =
  Mutex.lock st.m;
  st.stopping <- true;
  Mutex.unlock st.m

let handle_conn st conn =
  let ic = Unix.in_channel_of_descr conn.fd in
  let oc = Unix.out_channel_of_descr conn.fd in
  let respond line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> ()
    | line ->
        c_inc "gf_server_requests_received_total" "Request lines received";
        let continue =
          match st.hook line with
          | `Reply r ->
              respond r;
              true
          | `Close -> false
          | `Pass -> (
          match Wire.parse_request line with
          | Error detail ->
              respond (Wire.error_resp ~kind:"parse" ~detail);
              true
          | Ok Wire.Ping ->
              respond Wire.pong;
              true
          | Ok Wire.Metrics_req ->
              respond (Wire.metrics_resp (Metrics.exposition ()));
              true
          | Ok Wire.Stats ->
              respond (Wire.stats_resp (Service.stats st.service));
              true
          | Ok (Wire.Slowlog n) ->
              respond
                (Wire.slowlog_resp (Gf.Recorder.recent (Service.recorder st.service) n));
              true
          | Ok (Wire.Trace_of id) ->
              (match Gf.Recorder.find_trace (Service.recorder st.service) id with
              | Some json -> respond (Wire.trace_resp ~id json)
              | None -> respond (Wire.trace_not_found id));
              true
          | Ok Wire.Shutdown ->
              respond {|{"ok":true,"type":"shutting_down"}|};
              request_stop st;
              false
          | Ok (Wire.Run req) ->
              (match Service.submit st.service req with
              | Ok reply -> respond (Wire.ok_run ~reply)
              | Error reason -> respond (Wire.rejected reason));
              true
          | Ok (Wire.Mutate (mut, trace)) ->
              (match Service.mutate st.service ~trace ~text:line mut with
              | Ok reply -> respond (Wire.ok_mutation reply ~traced:trace)
              | Error e -> respond (Wire.mutation_rejected e));
              true)
        in
        if continue then loop ()
  in
  (try loop () with Sys_error _ | Unix.Unix_error _ -> ());
  Mutex.lock st.m;
  st.conns <- List.filter (fun c -> c != conn) st.conns;
  Mutex.unlock st.m;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let bind_endpoint = function
  | Unix_path path ->
      (try if (Unix.lstat path).Unix.st_kind = Unix.S_SOCK then Unix.unlink path
       with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      fd
  | Tcp (host, port) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      fd

let serve ?(on_ready = fun _ -> ()) ?(hook = fun _ -> `Pass) service endpoint =
  (* A client vanishing mid-response must not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = bind_endpoint endpoint in
  Unix.listen listen_fd 64;
  let st =
    { service; hook; listen_fd; m = Mutex.create (); conns = []; stopping = false }
  in
  let old_int = ref Sys.Signal_default and old_term = ref Sys.Signal_default in
  (try
     old_int := Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> request_stop st));
     old_term := Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> request_stop st))
   with Invalid_argument _ -> ());
  on_ready endpoint;
  let stopping () =
    Mutex.lock st.m;
    let s = st.stopping in
    Mutex.unlock st.m;
    s
  in
  (* Accept loop: runs on the calling thread until [request_stop]. A blocked
     [accept] is not woken by closing the socket from another thread on
     Linux, so poll with [select] and recheck the stop flag — [request_stop]
     (a shutdown request, SIGINT/SIGTERM) is seen within [poll_s]. *)
  Unix.set_nonblock listen_fd;
  let poll_s = 0.2 in
  let rec accept_loop () =
    if not (stopping ()) then begin
      (match Unix.select [ listen_fd ] [] [] poll_s with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept listen_fd with
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              ()
          | fd, _addr ->
              Unix.clear_nonblock fd;
              c_inc "gf_server_connections_total" "Connections accepted";
              let conn = { fd; thread = None } in
              Mutex.lock st.m;
              st.conns <- conn :: st.conns;
              Mutex.unlock st.m;
              conn.thread <- Some (Thread.create (fun () -> handle_conn st conn) ())));
      accept_loop ()
    end
  in
  accept_loop ();
  (* Graceful drain: stop admitting, answer the queue, cancel stragglers,
     join workers — then cut the remaining connections and join their
     threads. *)
  Service.drain service;
  Mutex.lock st.m;
  let conns = st.conns in
  Mutex.unlock st.m;
  List.iter
    (fun c -> try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  List.iter (fun c -> match c.thread with Some th -> Thread.join th | None -> ()) conns;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Sys.set_signal Sys.sigint !old_int with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm !old_term with Invalid_argument _ -> ());
  match endpoint with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()
