(** The socket front end: accepts connections on a Unix-domain or TCP
    endpoint and speaks the newline-delimited {!Wire} protocol, one
    request line in, one JSON response line out, dispatching [run]
    requests into the {!Service}.

    Shutdown: a [shutdown] request (or SIGINT/SIGTERM) stops the accept
    loop, drains the service gracefully ({!Service.drain} — queued
    requests answered [Truncated Cancelled], in-flight queries cancelled
    through their governors), closes the remaining connections, joins
    every connection thread, and returns. [serve] then removes the Unix
    socket path it created. *)

type endpoint = Unix_path of string | Tcp of string * int

(** A per-line intercept, consulted before {!Wire.parse_request}: [`Reply r]
    answers the line with the raw response [r], [`Close] drops the
    connection without replying (fault injection: a mid-request
    connection-reset as the client sees it), [`Pass] falls through to the
    standard dispatch. Cluster roles (worker shard execution, coordinator
    fan-out) are hooks over the same accept loop and protocol. *)
type hook = string -> [ `Reply of string | `Close | `Pass ]

val serve : ?on_ready:(endpoint -> unit) -> ?hook:hook -> Service.t -> endpoint -> unit
(** Blocks until shutdown. [on_ready] fires once the socket is listening
    (before the first accept) — the hook tests and the CLI use to print
    the address or release a waiting client. *)
