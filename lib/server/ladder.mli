(** Retry with degradation: the per-request resilience ladder.

    A request is attempted on a sequence of rungs, each cheaper and more
    conservative than the last:

    + {b parallel} — the morsel-driven executor on [domains] domains under
      the full budget (skipped when [domains <= 1]);
    + {b sequential} — the single-threaded executor, full budget;
    + {b degraded} — sequential under [degraded_budget], a reduced budget
      whose caps pre-empt the failure point and turn the answer into a
      structured [Truncated] (partial rows) instead of an error.

    Only [Failed] outcomes climb the ladder — a [Truncated] answer is
    already a valid degraded response and is accepted as-is, and
    [Truncated Cancelled] (the service is draining) returns immediately.
    Between attempts the ladder sleeps a capped exponential backoff with
    deterministic jitter drawn from the caller's {!Gf_util.Rng}, so a
    seeded test replays the exact same schedule.

    Rows are buffered per attempt and flushed to the caller's [sink] only
    from the accepted attempt — a failed first attempt cannot leak partial
    rows into the answer stream, so a retried-then-completed request is
    indistinguishable from one that completed first try. *)

module Gf = Graphflow

type config = {
  domains : int;  (** first-rung parallelism; <= 1 skips the parallel rung *)
  budget : Gf.Governor.budget;  (** rungs 1-2 *)
  degraded_budget : Gf.Governor.budget;  (** final rung *)
  backoff_base_s : float;  (** first backoff, before jitter *)
  backoff_cap_s : float;  (** backoff ceiling *)
}

val default_config : config
(** domains 1, unlimited budget, degraded = 10k output / 1M intermediate /
    2 s deadline, backoff 50 ms base / 1 s cap. *)

type rung = { name : string; domains : int; budget : Gf.Governor.budget }

val rungs : config -> rung list
(** The attempt sequence [run] walks, in order. *)

type result = {
  outcome : Gf.Governor.outcome;  (** of the accepted (last) attempt *)
  counters : Gf.Counters.t;  (** of the accepted (last) attempt *)
  attempts : int;
  retries : int;  (** [attempts - 1] *)
  degraded : bool;
      (** the answer came from the degraded rung or was truncated *)
  rung : string;  (** name of the rung that produced the answer *)
  backoffs : float list;  (** jittered sleeps taken, in order *)
}

val run :
  ?sleep:(float -> unit) ->
  ?now:(unit -> float) ->
  ?attach:(Gf.Governor.t -> unit -> unit) ->
  ?fault:Gf.Governor.fault ->
  ?fault_attempts:int ->
  ?part:int * int ->
  ?sink:(int array -> unit) ->
  ?trace:Gf.Trace.t ->
  ?tbuf:Gf.Trace.buf ->
  rng:Gf.Rng.t ->
  config ->
  Gf.Db.t ->
  Gf.Query.t ->
  result
(** [run ~rng cfg db q] walks the ladder until an attempt is accepted.

    [attach gov] is called at the start of every attempt with that
    attempt's governor and returns a detach thunk — the hook a service
    uses to expose in-flight governors for cross-thread cancellation
    ({!Gf.Governor.cancel} during drain). [fault] injects a deterministic
    fault into the first [fault_attempts] attempts (default 1: the fault
    fires once and the retry recovers — set it higher to keep a request
    failing on every rung). [sleep] replaces [Unix.sleepf] in tests, and
    [now] replaces [Unix.gettimeofday] — the clock against which each
    backoff is clamped to the budget's remaining [deadline_s], so a retry
    never sleeps past the point where the attempt is guaranteed to trip
    the governor on arrival.

    [part = (i, k)] marks a cluster shard request: every attempt executes
    only that slice of the driving scan ({!Gf.Db.run_gov}'s [scan_part]),
    and the parallel rung is skipped — the worker process is the
    parallelism unit, and identical sequential plans across workers are
    what make disjoint parts union into the exact full result.

    [trace] is forwarded to {!Gf.Db.run_gov} for each attempt; [tbuf] (the
    caller's recording buffer — the ladder runs on the caller's thread)
    records an [attempt] span per rung, with outcome, and a [backoff] span
    per sleep. *)
