type direction = Fwd | Bwd

type side = {
  nbr : int array;
  (* Partition offsets: slot (v, el, nl) at index (v * ne + el) * nv + nl.
     Length n * ne * nv + 1. Neighbour ids are sorted within a partition. *)
  off : int array;
}

type t = {
  n : int;
  m : int;
  nv : int;
  ne : int;
  vlabel : int array;
  fwd : side;
  bwd : side;
  by_label : int array array; (* vertices grouped by label, ascending *)
}

let num_vertices g = g.n
let num_edges g = g.m
let num_vlabels g = g.nv
let num_elabels g = g.ne
let vlabel g v = g.vlabel.(v)

let slot g v el nl = ((v * g.ne) + el) * g.nv + nl

let build_side ~n ~nv ~ne ~vlabel ~sources ~targets ~elabels =
  let m = Array.length sources in
  let nslots = (n * ne * nv) + 1 in
  let off = Array.make nslots 0 in
  let slot v el nl = ((v * ne) + el) * nv + nl in
  for e = 0 to m - 1 do
    let s = slot sources.(e) elabels.(e) vlabel.(targets.(e)) in
    off.(s + 1) <- off.(s + 1) + 1
  done;
  for i = 1 to nslots - 1 do
    off.(i) <- off.(i) + off.(i - 1)
  done;
  let cursor = Array.copy off in
  let nbr = Array.make m 0 in
  for e = 0 to m - 1 do
    let s = slot sources.(e) elabels.(e) vlabel.(targets.(e)) in
    nbr.(cursor.(s)) <- targets.(e);
    cursor.(s) <- cursor.(s) + 1
  done;
  (* Sort each partition by neighbour id. *)
  for s = 0 to nslots - 2 do
    let lo = off.(s) and hi = off.(s + 1) in
    if hi - lo > 1 then begin
      let part = Array.sub nbr lo (hi - lo) in
      Array.sort compare part;
      Array.blit part 0 nbr lo (hi - lo)
    end
  done;
  { nbr; off }

let build ~num_vlabels ~num_elabels ~vlabel ~edges =
  let n = Array.length vlabel in
  Array.iter
    (fun l ->
      if l < 0 || l >= num_vlabels then invalid_arg "Graph.build: vertex label out of range")
    vlabel;
  (* Drop self-loops and duplicates. *)
  let seen = Hashtbl.create (2 * Array.length edges) in
  let keep = ref [] in
  let count = ref 0 in
  Array.iter
    (fun ((u, v, el) as e) ->
      if u <> v then begin
        if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Graph.build: vertex out of range";
        if el < 0 || el >= num_elabels then invalid_arg "Graph.build: edge label out of range";
        let key = ((u * n) + v) * num_elabels + el in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          keep := e :: !keep;
          incr count
        end
      end)
    edges;
  let m = !count in
  let srcs = Array.make m 0 and dsts = Array.make m 0 and els = Array.make m 0 in
  List.iteri
    (fun i (u, v, el) ->
      srcs.(i) <- u;
      dsts.(i) <- v;
      els.(i) <- el)
    !keep;
  let fwd =
    build_side ~n ~nv:num_vlabels ~ne:num_elabels ~vlabel ~sources:srcs ~targets:dsts
      ~elabels:els
  in
  let bwd =
    build_side ~n ~nv:num_vlabels ~ne:num_elabels ~vlabel ~sources:dsts ~targets:srcs
      ~elabels:els
  in
  let by_label = Array.make num_vlabels [] in
  for v = n - 1 downto 0 do
    by_label.(vlabel.(v)) <- v :: by_label.(vlabel.(v))
  done;
  {
    n;
    m;
    nv = num_vlabels;
    ne = num_elabels;
    vlabel = Array.copy vlabel;
    fwd;
    bwd;
    by_label = Array.map Array.of_list by_label;
  }

let side g = function Fwd -> g.fwd | Bwd -> g.bwd

let neighbours g dir v ~elabel ~nlabel : Gf_util.Sorted.slice =
  let s = side g dir in
  let i = slot g v elabel nlabel in
  (s.nbr, s.off.(i), s.off.(i + 1))

let neighbours_any_nlabel g dir v ~elabel : Gf_util.Sorted.slice =
  let s = side g dir in
  let i0 = slot g v elabel 0 in
  (s.nbr, s.off.(i0), s.off.(i0 + g.nv))

let degree g dir v =
  let s = side g dir in
  let lo = slot g v 0 0 in
  s.off.(lo + (g.ne * g.nv)) - s.off.(lo)

let partition_size g dir v ~elabel ~nlabel =
  let s = side g dir in
  let i = slot g v elabel nlabel in
  s.off.(i + 1) - s.off.(i)

let has_edge g u v ~elabel =
  let arr, lo, hi = neighbours g Fwd u ~elabel ~nlabel:g.vlabel.(v) in
  Gf_util.Sorted.member arr lo hi v

let vertices_with_label g l = g.by_label.(l)
let num_with_label g l = Array.length g.by_label.(l)

let iter_edges_range g ~elabel ~slabel ~dlabel ~lo ~hi f =
  let vs = g.by_label.(slabel) in
  for i = lo to hi - 1 do
    let u = vs.(i) in
    let arr, plo, phi = neighbours g Fwd u ~elabel ~nlabel:dlabel in
    for j = plo to phi - 1 do
      f u (Array.unsafe_get arr j)
    done
  done

let iter_edges g ~elabel ~slabel ~dlabel f =
  iter_edges_range g ~elabel ~slabel ~dlabel ~lo:0 ~hi:(Array.length g.by_label.(slabel)) f

let count_edges g ~elabel ~slabel ~dlabel =
  let vs = g.by_label.(slabel) in
  let total = ref 0 in
  Array.iter (fun u -> total := !total + partition_size g Fwd u ~elabel ~nlabel:dlabel) vs;
  !total

let sample_edge g rng ~elabel ~slabel ~dlabel =
  let total = count_edges g ~elabel ~slabel ~dlabel in
  if total = 0 then None
  else begin
    let k = ref (Gf_util.Rng.int rng total) in
    let vs = g.by_label.(slabel) in
    let result = ref None in
    (try
       Array.iter
         (fun u ->
           let sz = partition_size g Fwd u ~elabel ~nlabel:dlabel in
           if !k < sz then begin
             let arr, lo, _ = neighbours g Fwd u ~elabel ~nlabel:dlabel in
             result := Some (u, arr.(lo + !k));
             raise Exit
           end
           else k := !k - sz)
         vs
     with Exit -> ());
    !result
  end

let edge_array g =
  let out = Array.make g.m (0, 0, 0) in
  let i = ref 0 in
  for v = 0 to g.n - 1 do
    for el = 0 to g.ne - 1 do
      for nl = 0 to g.nv - 1 do
        let arr, lo, hi = neighbours g Fwd v ~elabel:el ~nlabel:nl in
        for j = lo to hi - 1 do
          out.(!i) <- (v, arr.(j), el);
          incr i
        done
      done
    done
  done;
  out

let relabel g rng ~num_vlabels ~num_elabels =
  let vlabel = Array.init g.n (fun _ -> Gf_util.Rng.int rng num_vlabels) in
  let edges =
    Array.map (fun (u, v, _) -> (u, v, Gf_util.Rng.int rng num_elabels)) (edge_array g)
  in
  build ~num_vlabels ~num_elabels ~vlabel ~edges
