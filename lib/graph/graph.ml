module Buf = Gf_util.Buf

type direction = Fwd | Bwd

type side = {
  nbr : Buf.t;
  (* Partition offsets: slot (v, el, nl) at index (v * ne + el) * nv + nl.
     Length n * ne * nv + 1. Neighbour ids are sorted within a partition. *)
  off : Buf.i64a;
}

(* Where the off-heap storage came from: built in-process, or a binary
   snapshot mapped straight off disk (zero deserialization). *)
type origin = Built | Mapped of string

type t = {
  n : int;
  m : int;
  nv : int;
  ne : int;
  vlabel : Buf.i64a;
  fwd : side;
  bwd : side;
  by_label : int array array; (* vertices grouped by label, ascending *)
  origin : origin;
}

let num_vertices g = g.n
let num_edges g = g.m
let num_vlabels g = g.nv
let num_elabels g = g.ne
let vlabel g v = Bigarray.Array1.get g.vlabel v
let origin g = g.origin

let slot g v el nl = ((v * g.ne) + el) * g.nv + nl

(* Vertices grouped by label, rebuilt from [vlabel] in O(n) — derived
   state that is never persisted. *)
let group_by_label ~n ~nv (vlabel : Buf.i64a) =
  let counts = Array.make nv 0 in
  for v = 0 to n - 1 do
    let l = Bigarray.Array1.unsafe_get vlabel v in
    counts.(l) <- counts.(l) + 1
  done;
  let by_label = Array.map (fun c -> Array.make c 0) counts in
  let cursor = Array.make nv 0 in
  for v = 0 to n - 1 do
    let l = Bigarray.Array1.unsafe_get vlabel v in
    by_label.(l).(cursor.(l)) <- v;
    cursor.(l) <- cursor.(l) + 1
  done;
  by_label

let build_side ~n ~nv ~ne ~vlabel ~sources ~targets ~elabels =
  let m = Array.length sources in
  let nslots = (n * ne * nv) + 1 in
  let off = Buf.alloc_i64 nslots in
  Bigarray.Array1.fill off 0;
  let slot v el nl = ((v * ne) + el) * nv + nl in
  for e = 0 to m - 1 do
    let s = slot sources.(e) elabels.(e) vlabel.(targets.(e)) in
    Bigarray.Array1.unsafe_set off (s + 1) (Bigarray.Array1.unsafe_get off (s + 1) + 1)
  done;
  for i = 1 to nslots - 1 do
    Bigarray.Array1.unsafe_set off i
      (Bigarray.Array1.unsafe_get off i + Bigarray.Array1.unsafe_get off (i - 1))
  done;
  let cursor = Array.init nslots (fun i -> Bigarray.Array1.unsafe_get off i) in
  let nbr = Buf.alloc ~max_value:(max 0 (n - 1)) m in
  for e = 0 to m - 1 do
    let s = slot sources.(e) elabels.(e) vlabel.(targets.(e)) in
    Buf.unsafe_set nbr cursor.(s) targets.(e);
    cursor.(s) <- cursor.(s) + 1
  done;
  (* Sort each partition by neighbour id (build-time only: bounce through a
     heap scratch array per partition). *)
  for s = 0 to nslots - 2 do
    let lo = Bigarray.Array1.unsafe_get off s
    and hi = Bigarray.Array1.unsafe_get off (s + 1) in
    if hi - lo > 1 then begin
      let part = Buf.sub_array nbr lo hi in
      Array.sort compare part;
      for i = 0 to hi - lo - 1 do
        Buf.unsafe_set nbr (lo + i) part.(i)
      done
    end
  done;
  { nbr; off }

let build ~num_vlabels ~num_elabels ~vlabel ~edges =
  let n = Array.length vlabel in
  Array.iter
    (fun l ->
      if l < 0 || l >= num_vlabels then invalid_arg "Graph.build: vertex label out of range")
    vlabel;
  (* Drop self-loops and duplicates. *)
  let seen = Hashtbl.create (2 * Array.length edges) in
  let keep = ref [] in
  let count = ref 0 in
  Array.iter
    (fun ((u, v, el) as e) ->
      if u <> v then begin
        if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Graph.build: vertex out of range";
        if el < 0 || el >= num_elabels then invalid_arg "Graph.build: edge label out of range";
        let key = ((u * n) + v) * num_elabels + el in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          keep := e :: !keep;
          incr count
        end
      end)
    edges;
  let m = !count in
  let srcs = Array.make m 0 and dsts = Array.make m 0 and els = Array.make m 0 in
  List.iteri
    (fun i (u, v, el) ->
      srcs.(i) <- u;
      dsts.(i) <- v;
      els.(i) <- el)
    !keep;
  let fwd =
    build_side ~n ~nv:num_vlabels ~ne:num_elabels ~vlabel ~sources:srcs ~targets:dsts
      ~elabels:els
  in
  let bwd =
    build_side ~n ~nv:num_vlabels ~ne:num_elabels ~vlabel ~sources:dsts ~targets:srcs
      ~elabels:els
  in
  let vl = Buf.alloc_i64 n in
  for v = 0 to n - 1 do
    Bigarray.Array1.unsafe_set vl v vlabel.(v)
  done;
  {
    n;
    m;
    nv = num_vlabels;
    ne = num_elabels;
    vlabel = vl;
    fwd;
    bwd;
    by_label = group_by_label ~n ~nv:num_vlabels vl;
    origin = Built;
  }

let side g = function Fwd -> g.fwd | Bwd -> g.bwd

let neighbours g dir v ~elabel ~nlabel : Gf_util.Sorted.slice =
  let s = side g dir in
  let i = slot g v elabel nlabel in
  (s.nbr, Bigarray.Array1.unsafe_get s.off i, Bigarray.Array1.unsafe_get s.off (i + 1))

let neighbours_any_nlabel g dir v ~elabel : Gf_util.Sorted.slice =
  let s = side g dir in
  let i0 = slot g v elabel 0 in
  (s.nbr, Bigarray.Array1.unsafe_get s.off i0, Bigarray.Array1.unsafe_get s.off (i0 + g.nv))

let degree g dir v =
  let s = side g dir in
  let lo = slot g v 0 0 in
  Bigarray.Array1.unsafe_get s.off (lo + (g.ne * g.nv)) - Bigarray.Array1.unsafe_get s.off lo

let partition_size g dir v ~elabel ~nlabel =
  let s = side g dir in
  let i = slot g v elabel nlabel in
  Bigarray.Array1.unsafe_get s.off (i + 1) - Bigarray.Array1.unsafe_get s.off i

let has_edge g u v ~elabel =
  let arr, lo, hi = neighbours g Fwd u ~elabel ~nlabel:(vlabel g v) in
  Gf_util.Sorted.member arr lo hi v

let vertices_with_label g l = g.by_label.(l)
let num_with_label g l = Array.length g.by_label.(l)

let iter_edges_range g ~elabel ~slabel ~dlabel ~lo ~hi f =
  let vs = g.by_label.(slabel) in
  for i = lo to hi - 1 do
    let u = vs.(i) in
    let arr, plo, phi = neighbours g Fwd u ~elabel ~nlabel:dlabel in
    Buf.iter_range (fun v -> f u v) arr plo phi
  done

let iter_edges g ~elabel ~slabel ~dlabel f =
  iter_edges_range g ~elabel ~slabel ~dlabel ~lo:0 ~hi:(Array.length g.by_label.(slabel)) f

let count_edges g ~elabel ~slabel ~dlabel =
  let vs = g.by_label.(slabel) in
  let total = ref 0 in
  Array.iter (fun u -> total := !total + partition_size g Fwd u ~elabel ~nlabel:dlabel) vs;
  !total

let sample_edge g rng ~elabel ~slabel ~dlabel =
  let total = count_edges g ~elabel ~slabel ~dlabel in
  if total = 0 then None
  else begin
    let k = ref (Gf_util.Rng.int rng total) in
    let vs = g.by_label.(slabel) in
    let result = ref None in
    (try
       Array.iter
         (fun u ->
           let sz = partition_size g Fwd u ~elabel ~nlabel:dlabel in
           if !k < sz then begin
             let arr, lo, _ = neighbours g Fwd u ~elabel ~nlabel:dlabel in
             result := Some (u, Buf.get arr (lo + !k));
             raise Exit
           end
           else k := !k - sz)
         vs
     with Exit -> ());
    !result
  end

let edge_array g =
  let out = Array.make g.m (0, 0, 0) in
  let i = ref 0 in
  for v = 0 to g.n - 1 do
    for el = 0 to g.ne - 1 do
      for nl = 0 to g.nv - 1 do
        let arr, lo, hi = neighbours g Fwd v ~elabel:el ~nlabel:nl in
        Buf.iter_range
          (fun w ->
            out.(!i) <- (v, w, el);
            incr i)
          arr lo hi
      done
    done
  done;
  out

let relabel g rng ~num_vlabels ~num_elabels =
  let vlabel = Array.init g.n (fun _ -> Gf_util.Rng.int rng num_vlabels) in
  let edges =
    Array.map (fun (u, v, _) -> (u, v, Gf_util.Rng.int rng num_elabels)) (edge_array g)
  in
  build ~num_vlabels ~num_elabels ~vlabel ~edges

(* ------------------------------------------------------------------ *)
(* Storage accounting and raw-parts boundary (snapshot IO)             *)
(* ------------------------------------------------------------------ *)

type residency = {
  offheap_bytes : int;
  heap_bytes : int;
  mapped : bool;
  nbr_width : int;
}

let residency g =
  let side_bytes s = Buf.bytes s.nbr + (Bigarray.Array1.dim s.off * 8) in
  {
    offheap_bytes = (Bigarray.Array1.dim g.vlabel * 8) + side_bytes g.fwd + side_bytes g.bwd;
    (* by_label is the only remaining heap-resident index: n vertex ids
       plus one header-ish word per label bucket. *)
    heap_bytes = (g.n + (3 * g.nv)) * 8;
    mapped = (match g.origin with Mapped _ -> true | Built -> false);
    nbr_width = Buf.width_bytes g.fwd.nbr;
  }

module Raw = struct
  type parts = {
    n : int;
    m : int;
    nv : int;
    ne : int;
    vlabel : Buf.i64a;
    fwd_off : Buf.i64a;
    fwd_nbr : Buf.t;
    bwd_off : Buf.i64a;
    bwd_nbr : Buf.t;
  }
end

let to_raw g : Raw.parts =
  {
    n = g.n;
    m = g.m;
    nv = g.nv;
    ne = g.ne;
    vlabel = g.vlabel;
    fwd_off = g.fwd.off;
    fwd_nbr = g.fwd.nbr;
    bwd_off = g.bwd.off;
    bwd_nbr = g.bwd.nbr;
  }

let of_raw ?mapped_from (p : Raw.parts) =
  let nslots = (p.n * p.ne * p.nv) + 1 in
  let check cond msg = if not cond then Error msg else Ok () in
  let ( let* ) = Result.bind in
  let* () = check (p.n >= 0 && p.m >= 0 && p.nv >= 1 && p.ne >= 1) "bad dimensions" in
  let* () = check (Bigarray.Array1.dim p.vlabel = p.n) "vlabel length mismatch" in
  let* () =
    check
      (Bigarray.Array1.dim p.fwd_off = nslots && Bigarray.Array1.dim p.bwd_off = nslots)
      "offset table length mismatch"
  in
  let* () =
    check
      (Buf.length p.fwd_nbr = p.m && Buf.length p.bwd_nbr = p.m)
      "adjacency length mismatch"
  in
  let ends_ok (off : Buf.i64a) =
    nslots = 1
    || (Bigarray.Array1.get off 0 = 0 && Bigarray.Array1.get off (nslots - 1) = p.m)
  in
  let* () = check (ends_ok p.fwd_off && ends_ok p.bwd_off) "offset table endpoints" in
  let labels_ok = ref true in
  for v = 0 to p.n - 1 do
    let l = Bigarray.Array1.unsafe_get p.vlabel v in
    if l < 0 || l >= p.nv then labels_ok := false
  done;
  let* () = check !labels_ok "vertex label out of range" in
  Ok
    {
      n = p.n;
      m = p.m;
      nv = p.nv;
      ne = p.ne;
      vlabel = p.vlabel;
      fwd = { nbr = p.fwd_nbr; off = p.fwd_off };
      bwd = { nbr = p.bwd_nbr; off = p.bwd_off };
      by_label = group_by_label ~n:p.n ~nv:p.nv p.vlabel;
      origin = (match mapped_from with Some path -> Mapped path | None -> Built);
    }
