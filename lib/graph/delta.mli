(** A mutable delta store overlaid on the immutable CSR ({!Graph}).

    The CSR is built once and never touched in place — every reader
    (executor, kernels, mmap snapshots) keeps its zero-copy sorted-slice
    view. Mutations accumulate here instead: sorted per-partition insertion
    lists, a deletion set, and appended vertices. {!merge} folds the delta
    into a fresh CSR via the prefix-sum build ({!Graph.build}) and clears
    the overlay, so steady-state reads always run against a plain
    [Graph.t] and pay nothing for the write path.

    Versioning: every applied operation bumps a monotonic version — the
    log sequence number of the write-ahead log record that made it
    durable. [merged_version] is the version the current CSR reflects;
    [version] additionally counts the pending overlay. A query engine or
    catalogue keyed by [merged_version] is invalidated exactly when a
    merge publishes a new CSR.

    Not thread-safe: callers serialize writers (the service layer's
    single-writer admission) and must not call {!merge} while a reader
    holds the previous {!graph} — readers keep old CSRs alive simply by
    retaining them; merge never mutates a published graph. *)

type t

(** What applying an operation did. [Applied] changed live state; [Noop]
    was redundant (duplicate insert, delete of an absent edge) — replay of
    a WAL containing redundant records stays deterministic either way. *)
type applied = Applied | Noop

(** Why an operation was refused: structurally invalid against the current
    bounds (labels and vertex ids), never a transient condition. *)
type error =
  | Vertex_out_of_range of int
  | Vlabel_out_of_range of int
  | Elabel_out_of_range of int
  | Self_loop of int
  | Tombstoned of int  (** the vertex was deleted; its id is never reused *)

val error_to_string : error -> string

(** [create ?version graph] starts an empty overlay on [graph], with both
    versions at [version] (default 0). *)
val create : ?version:int -> Graph.t -> t

(** The CSR reflecting everything up to [merged_version]. Constant time;
    this is what queries execute against. *)
val graph : t -> Graph.t

val version : t -> int
val merged_version : t -> int

(** Pending overlay operations not yet folded into the CSR (edge inserts +
    edge deletes + appended vertices + vertex tombstones). *)
val pending : t -> int

(** Live totals including the overlay. *)
val live_edges : t -> int

val live_vertices : t -> int

(** {1 Mutations}

    Each mutator validates, applies to the overlay, and bumps [version] by
    one — including for [Noop]s, so the version stays equal to the LSN of
    the last WAL record applied. *)

(** [tick t] advances [version] by one without touching the overlay — for
    WAL records that carry no graph mutation (checkpoint markers), so
    [version] stays equal to the last log sequence number applied. *)
val tick : t -> unit

(** [add_edge t u v ~elabel] inserts a directed edge. Duplicates (already
    live) are [Noop]. Self-loops are refused, matching {!Graph.build}. *)
val add_edge : t -> int -> int -> elabel:int -> (applied, error) result

(** [del_edge t u v ~elabel] deletes an edge; absent edges are [Noop]. *)
val del_edge : t -> int -> int -> elabel:int -> (applied, error) result

(** [add_vertex t ~label] appends a vertex and returns its id (always
    [Applied]: ids are dense, the new vertex is [live_vertices - 1]). *)
val add_vertex : t -> label:int -> (int, error) result

(** [del_vertex t v] tombstones a vertex: all its incident edges (base and
    overlay) are deleted and future edges touching it are refused. The id
    itself stays allocated — ids are stable, never reused — and the vertex
    remains in the CSR as an isolated vertex after merge. Deleting a
    tombstone is [Noop]. *)
val del_vertex : t -> int -> (applied, error) result

(** {1 Overlay reads}

    Reads that must see unmerged mutations (mutation validation, tests,
    future delta-feed subscribers). Queries do not come through here. *)

(** [mem_edge t u v ~elabel] is edge liveness under the overlay. *)
val mem_edge : t -> int -> int -> elabel:int -> bool

val vlabel : t -> int -> int
val tombstoned : t -> int -> bool

(** [neighbours t u ~elabel ~nlabel] materializes the overlay view of one
    forward partition: base slice minus deletions plus sorted insertions.
    Allocates; not a hot path. *)
val neighbours : t -> int -> elabel:int -> nlabel:int -> int array

(** [edge_array t] is every live edge [(src, dst, elabel)] under the
    overlay — the full-graph comparison surface of the crash-torture
    harness. Sorted by [(src, dst, elabel)]. *)
val edge_array : t -> (int * int * int) array

(** {1 Merge} *)

(** [merge t] rebuilds the CSR with the overlay folded in (prefix-sum
    build over live edges), publishes it as {!graph}, advances
    [merged_version] to [version], clears the overlay, and returns the new
    CSR. A no-op returning the current graph when nothing is pending and
    the versions already agree. *)
val merge : t -> Graph.t

(** [install t graph ~version] replaces the base outright — recovery uses
    it to seat a freshly loaded snapshot. Requires an empty overlay. *)
val install : t -> Graph.t -> version:int -> unit
