(** Graph serialization: a human-readable text format and an mmap-loadable
    binary snapshot, auto-detected on load.

    Text format:
    {v
    graphflow v1
    <num_vertices> <num_edges> <num_vlabels> <num_elabels>
    v <id> <vlabel>        (one line per vertex with nonzero label)
    e <src> <dst> <elabel> (one line per edge)
    v}
    Vertices absent from [v] lines have label 0.

    Binary snapshot ("GFQSNAP1"): the graph's off-heap arrays written
    verbatim, native-endian, each section 8-byte aligned, closed by a
    trailer magic. Loading memory-maps each section in place — zero
    parsing, zero copying; pages fault in from disk on first touch, so a
    multi-gigabyte graph "loads" in microseconds and shares clean pages
    across processes.

    Format version 2 appends a 32-byte integrity block after the trailer:
    the WAL version (log sequence number) the snapshot reflects, a CRC-32
    per section, and a CRC-32 of the header. The loader verifies every
    checksum at open time, so bit rot surfaces as a structured
    [Checksum] refusal instead of silently wrong query results. Version 1
    files (no checksums, WAL version 0) remain loadable. *)

(** [save g path] writes the text format crash-safely: the bytes go to a
    [path.tmp.<pid>] sibling which is renamed over [path] only once fully
    written ({!Gf_util.Atomic_file}), so a crash mid-save leaves the
    previous file intact. *)
val save : Graph.t -> string -> unit

(** [save_snapshot ?wal_version g path] writes the binary snapshot
    (format version 2: section checksums + WAL version, default 0), with
    the same atomic tmp-and-rename discipline as {!save}. *)
val save_snapshot : ?wal_version:int -> Graph.t -> string -> unit

(** [save_snapshot_as ~version ?wal_version ?before_rename g path] is the
    general writer: [version] selects the format (1 = legacy, no
    integrity block; 2 = current), [before_rename] is forwarded to
    {!Gf_util.Atomic_file.write} — the hook crash torture uses to kill
    the process after the temp snapshot is durable but before the rename
    publishes it. *)
val save_snapshot_as :
  version:int -> ?wal_version:int -> ?before_rename:(string -> unit) -> Graph.t -> string -> unit

(** [save_snapshot_v1 g path] writes a legacy version-1 snapshot (no
    integrity block) — keeps the backward-compatible read path honest. *)
val save_snapshot_v1 : Graph.t -> string -> unit

(** What went wrong loading a graph file, and where. [line] is 1-based;
    0 when the error is not tied to a specific line. *)
type load_error = { path : string; line : int; kind : error_kind }

and error_kind =
  | Unreadable of string  (** missing or unreadable file (OS message) *)
  | Bad_header of string
  | Truncated of string  (** EOF before the named section *)
  | Bad_token of string  (** non-integer token or malformed line *)
  | Bad_vertex of int  (** vertex-label line with an out-of-range id *)
  | Dangling_edge of int * int  (** edge endpoint outside [0, num_vertices) *)
  | Edge_count_mismatch of { expected : int; got : int }
      (** fewer/more edge lines than the size line promised — the signature
          of a truncated file *)
  | Bad_version of int  (** snapshot with an unsupported format version *)
  | Foreign_endian  (** snapshot written under a different byte order *)
  | Torn of string
      (** snapshot whose size or trailer does not match its header — a
          truncated or interrupted copy *)
  | Invalid of string  (** snapshot sections fail structural validation *)
  | Checksum of string
      (** a v2 section checksum did not match — bit rot or tampering in
          the named section *)

val load_error_to_string : load_error -> string
val pp_load_error : Format.formatter -> load_error -> unit

(** [load_result path] loads either format, auto-detected by the leading
    magic bytes, reporting missing, truncated, and malformed files as a
    structured {!load_error}. *)
val load_result : string -> (Graph.t, load_error) result

(** [load_snapshot_result path] loads the binary snapshot only: header and
    dimensions validated, total size and trailer checked against the
    header (torn-file detection), then every section [Unix.map_file]'d in
    place. The resulting graph reports {!Graph.origin} [Mapped path]. *)
val load_snapshot_result : string -> (Graph.t, load_error) result

(** [load_snapshot_versioned path] is {!load_snapshot_result} plus the
    snapshot's recorded WAL version (0 for version-1 files) — the point
    recovery resumes log replay from. *)
val load_snapshot_versioned : string -> (Graph.t * int, load_error) result

(** [load_snapshot path] is {!load_snapshot_result} raising [Failure]. *)
val load_snapshot : string -> Graph.t

(** [load path] is {!load_result} raising [Failure] with the formatted
    message on error (the original API, kept for convenience). *)
val load : string -> Graph.t
