(** Text serialization of graphs.

    Format:
    {v
    graphflow v1
    <num_vertices> <num_edges> <num_vlabels> <num_elabels>
    v <id> <vlabel>        (one line per vertex with nonzero label)
    e <src> <dst> <elabel> (one line per edge)
    v}
    Vertices absent from [v] lines have label 0. *)

(** [save g path] writes the graph crash-safely: the bytes go to a
    [path.tmp.<pid>] sibling which is renamed over [path] only once fully
    written ({!Gf_util.Atomic_file}), so a crash mid-save leaves the
    previous file intact. *)
val save : Graph.t -> string -> unit

(** What went wrong loading a graph file, and where. [line] is 1-based;
    0 when the error is not tied to a specific line. *)
type load_error = { path : string; line : int; kind : error_kind }

and error_kind =
  | Unreadable of string  (** missing or unreadable file (OS message) *)
  | Bad_header of string
  | Truncated of string  (** EOF before the named section *)
  | Bad_token of string  (** non-integer token or malformed line *)
  | Bad_vertex of int  (** vertex-label line with an out-of-range id *)
  | Dangling_edge of int * int  (** edge endpoint outside [0, num_vertices) *)
  | Edge_count_mismatch of { expected : int; got : int }
      (** fewer/more edge lines than the size line promised — the signature
          of a truncated file *)

val load_error_to_string : load_error -> string
val pp_load_error : Format.formatter -> load_error -> unit

(** [load_result path] parses a file written by [save], reporting missing,
    truncated, and malformed files as a structured {!load_error}. *)
val load_result : string -> (Graph.t, load_error) result

(** [load path] is {!load_result} raising [Failure] with the formatted
    message on error (the original API, kept for convenience). *)
val load : string -> Graph.t
