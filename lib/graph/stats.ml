type summary = {
  num_vertices : int;
  num_edges : int;
  avg_out_degree : float;
  max_out_degree : int;
  max_in_degree : int;
  out_degree_cv : float;
  in_degree_cv : float;
  avg_clustering : float;
}

let degree_moments g dir =
  let n = Graph.num_vertices g in
  let sum = ref 0.0 and sumsq = ref 0.0 and maxd = ref 0 in
  for v = 0 to n - 1 do
    let d = Graph.degree g dir v in
    sum := !sum +. float_of_int d;
    sumsq := !sumsq +. (float_of_int d *. float_of_int d);
    if d > !maxd then maxd := d
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  let cv = if mean > 0.0 then sqrt (max 0.0 var) /. mean else 0.0 in
  (mean, cv, !maxd)

(* Undirected local clustering of vertex v, treating every edge as
   undirected: |edges among neighbours| / (d * (d-1)). *)
let local_clustering g v =
  let nbrs = Hashtbl.create 16 in
  let add u = if u <> v then Hashtbl.replace nbrs u () in
  let collect dir =
    for el = 0 to Graph.num_elabels g - 1 do
      let arr, lo, hi = Graph.neighbours_any_nlabel g dir v ~elabel:el in
      Gf_util.Buf.iter_range add arr lo hi
    done
  in
  collect Graph.Fwd;
  collect Graph.Bwd;
  let d = Hashtbl.length nbrs in
  if d < 2 then 0.0
  else begin
    let links = ref 0 in
    let connected a b =
      let rec any el =
        el < Graph.num_elabels g
        && (Graph.has_edge g a b ~elabel:el || Graph.has_edge g b a ~elabel:el || any (el + 1))
      in
      any 0
    in
    let keys = Hashtbl.fold (fun k () acc -> k :: acc) nbrs [] in
    let rec pairs = function
      | [] -> ()
      | x :: rest ->
          List.iter (fun y -> if connected x y then incr links) rest;
          pairs rest
    in
    pairs keys;
    2.0 *. float_of_int !links /. (float_of_int d *. float_of_int (d - 1))
  end

let summarize ?(samples = 2000) g =
  let n = Graph.num_vertices g in
  let out_mean, out_cv, max_out = degree_moments g Graph.Fwd in
  let _, in_cv, max_in = degree_moments g Graph.Bwd in
  let rng = Gf_util.Rng.create 42 in
  let k = min samples n in
  let acc = ref 0.0 in
  for _ = 1 to k do
    acc := !acc +. local_clustering g (Gf_util.Rng.int rng n)
  done;
  {
    num_vertices = n;
    num_edges = Graph.num_edges g;
    avg_out_degree = out_mean;
    max_out_degree = max_out;
    max_in_degree = max_in;
    out_degree_cv = out_cv;
    in_degree_cv = in_cv;
    avg_clustering = (if k > 0 then !acc /. float_of_int k else 0.0);
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "n=%d m=%d avg_out=%.2f max_out=%d max_in=%d out_cv=%.2f in_cv=%.2f clustering=%.3f"
    s.num_vertices s.num_edges s.avg_out_degree s.max_out_degree s.max_in_degree
    s.out_degree_cv s.in_degree_cv s.avg_clustering

let count_triangles_sampled g rng ~samples =
  let m = Graph.num_edges g in
  if m = 0 then 0.0
  else begin
    let total = ref 0 in
    let drawn = ref 0 in
    for _ = 1 to samples do
      match Graph.sample_edge g rng ~elabel:0 ~slabel:0 ~dlabel:0 with
      | None -> ()
      | Some (u, v) ->
          incr drawn;
          let a, alo, ahi = Graph.neighbours g Graph.Fwd u ~elabel:0 ~nlabel:0 in
          let b, blo, bhi = Graph.neighbours g Graph.Fwd v ~elabel:0 ~nlabel:0 in
          total := !total + Gf_util.Sorted.count_intersect2 a alo ahi b blo bhi
    done;
    if !drawn = 0 then 0.0
    else float_of_int !total /. float_of_int !drawn *. float_of_int m
  end
