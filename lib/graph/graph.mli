(** Directed labeled graph with label-partitioned sorted adjacency lists —
    the storage layer of Section 2 of the paper.

    Both forward and backward adjacency lists are indexed. Each vertex's list
    is partitioned first by edge label and then by the label of the neighbour
    vertex; within a partition, neighbours are sorted by vertex id so that
    multiway intersections run over sorted slices. Partition bounds are O(1)
    lookups.

    Offsets and adjacency live off-heap in {!Gf_util.Buf} bigarrays:
    adjacency narrows to int32 when vertex ids fit, the GC never scans the
    payload, C intersection kernels address it directly, and a binary
    snapshot maps straight into place ({!Graph_io}). Only the per-label
    vertex grouping stays on the OCaml heap; it is derived state, rebuilt
    from the label array in O(n) on load. *)

type t

type direction = Fwd | Bwd

(** Where the off-heap storage came from: built in this process, or
    memory-mapped from the named snapshot file (zero-copy — pages fault in
    from disk on first touch). *)
type origin = Built | Mapped of string

val origin : t -> origin

(** [build ~num_vlabels ~num_elabels ~vlabel ~edges] constructs the indexes
    from an edge list [(src, dst, elabel)]. Self-loops and duplicate
    [(src, dst, elabel)] triples are dropped. [vlabel.(v)] is the label of
    vertex [v]; its length defines the number of vertices. *)
val build :
  num_vlabels:int ->
  num_elabels:int ->
  vlabel:int array ->
  edges:(int * int * int) array ->
  t

val num_vertices : t -> int
val num_edges : t -> int
val num_vlabels : t -> int
val num_elabels : t -> int
val vlabel : t -> int -> int

(** [neighbours g dir v ~elabel ~nlabel] is the sorted slice of [v]'s
    neighbours along [dir] restricted to edge label [elabel] and neighbour
    vertex label [nlabel]. *)
val neighbours :
  t -> direction -> int -> elabel:int -> nlabel:int -> Gf_util.Sorted.slice

(** [neighbours_any_nlabel g dir v ~elabel] is the slice covering every
    neighbour label for [elabel] (partitions for a given edge label are
    contiguous; note ids are only sorted within one neighbour-label
    partition). *)
val neighbours_any_nlabel : t -> direction -> int -> elabel:int -> Gf_util.Sorted.slice

(** [degree g dir v] is the total size of [v]'s adjacency list along [dir],
    all partitions included. *)
val degree : t -> direction -> int -> int

(** [partition_size g dir v ~elabel ~nlabel] is the size of one partition. *)
val partition_size : t -> direction -> int -> elabel:int -> nlabel:int -> int

(** [has_edge g u v ~elabel] tests the presence of edge [u -> v] with the
    given label (binary search). *)
val has_edge : t -> int -> int -> elabel:int -> bool

(** [vertices_with_label g l] is the ascending array of vertices labeled
    [l]. *)
val vertices_with_label : t -> int -> int array

(** [num_with_label g l] is [Array.length (vertices_with_label g l)] without
    exposing the array — the source-range space the parallel executor carves
    into morsels. *)
val num_with_label : t -> int -> int

(** [iter_edges g ~elabel ~slabel ~dlabel f] calls [f u v] for every edge
    [u -> v] with edge label [elabel], source label [slabel], destination
    label [dlabel] — the SCAN operator's access path. *)
val iter_edges : t -> elabel:int -> slabel:int -> dlabel:int -> (int -> int -> unit) -> unit

(** [iter_edges_range] is [iter_edges] restricted to sources drawn from a
    sub-range of the label's vertex array — the unit of parallel work
    division. [lo] inclusive, [hi] exclusive, indices into
    [vertices_with_label g slabel]. *)
val iter_edges_range :
  t -> elabel:int -> slabel:int -> dlabel:int -> lo:int -> hi:int -> (int -> int -> unit) -> unit

(** [count_edges g ~elabel ~slabel ~dlabel] is the number of edges the
    corresponding SCAN would produce. *)
val count_edges : t -> elabel:int -> slabel:int -> dlabel:int -> int

(** [sample_edge g rng ~elabel ~slabel ~dlabel] draws a uniform random edge
    matching the predicates, or [None] when none exists. *)
val sample_edge :
  t -> Gf_util.Rng.t -> elabel:int -> slabel:int -> dlabel:int -> (int * int) option

(** [relabel g rng ~num_vlabels ~num_elabels] assigns uniform random vertex
    and edge labels, as the paper does for its labeled-query experiments
    (the Q^J_i notation). *)
val relabel : t -> Gf_util.Rng.t -> num_vlabels:int -> num_elabels:int -> t

(** [edge_array g] lists all edges as [(src, dst, elabel)] in index order. *)
val edge_array : t -> (int * int * int) array

(** {1 Storage accounting} *)

type residency = {
  offheap_bytes : int;  (** bigarray payload: offsets, adjacency, labels *)
  heap_bytes : int;  (** derived per-label grouping kept on the OCaml heap *)
  mapped : bool;  (** true when the off-heap payload is a file mapping *)
  nbr_width : int;  (** adjacency element width in bytes: 4 or 8 *)
}

val residency : t -> residency

(** {1 Raw parts — the snapshot IO boundary} *)

module Raw : sig
  (** The exact off-heap arrays of a graph, exposed so {!Graph_io} can
      write them to disk verbatim and rebuild a graph around mapped
      sections without copying. *)
  type parts = {
    n : int;
    m : int;
    nv : int;
    ne : int;
    vlabel : Gf_util.Buf.i64a;
    fwd_off : Gf_util.Buf.i64a;
    fwd_nbr : Gf_util.Buf.t;
    bwd_off : Gf_util.Buf.i64a;
    bwd_nbr : Gf_util.Buf.t;
  }
end

val to_raw : t -> Raw.parts

(** [of_raw ?mapped_from parts] reassembles a graph around the given
    arrays, validating structural invariants (dimensions, offset-table
    endpoints, label ranges) and rebuilding the per-label grouping.
    [mapped_from] tags the result as {!Mapped}. Errors are descriptive
    strings for {!Graph_io} to wrap. *)
val of_raw : ?mapped_from:string -> Raw.parts -> (t, string) result
