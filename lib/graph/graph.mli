(** In-memory directed labeled graph with label-partitioned sorted adjacency
    lists — the storage layer of Section 2 of the paper.

    Both forward and backward adjacency lists are indexed. Each vertex's list
    is partitioned first by edge label and then by the label of the neighbour
    vertex; within a partition, neighbours are sorted by vertex id so that
    multiway intersections run over sorted slices. Partition bounds are O(1)
    lookups. *)

type t

type direction = Fwd | Bwd

(** [build ~num_vlabels ~num_elabels ~vlabel ~edges] constructs the indexes
    from an edge list [(src, dst, elabel)]. Self-loops and duplicate
    [(src, dst, elabel)] triples are dropped. [vlabel.(v)] is the label of
    vertex [v]; its length defines the number of vertices. *)
val build :
  num_vlabels:int ->
  num_elabels:int ->
  vlabel:int array ->
  edges:(int * int * int) array ->
  t

val num_vertices : t -> int
val num_edges : t -> int
val num_vlabels : t -> int
val num_elabels : t -> int
val vlabel : t -> int -> int

(** [neighbours g dir v ~elabel ~nlabel] is the sorted slice of [v]'s
    neighbours along [dir] restricted to edge label [elabel] and neighbour
    vertex label [nlabel]. *)
val neighbours :
  t -> direction -> int -> elabel:int -> nlabel:int -> Gf_util.Sorted.slice

(** [neighbours_any_nlabel g dir v ~elabel] is the slice covering every
    neighbour label for [elabel] (partitions for a given edge label are
    contiguous; note ids are only sorted within one neighbour-label
    partition). *)
val neighbours_any_nlabel : t -> direction -> int -> elabel:int -> Gf_util.Sorted.slice

(** [degree g dir v] is the total size of [v]'s adjacency list along [dir],
    all partitions included. *)
val degree : t -> direction -> int -> int

(** [partition_size g dir v ~elabel ~nlabel] is the size of one partition. *)
val partition_size : t -> direction -> int -> elabel:int -> nlabel:int -> int

(** [has_edge g u v ~elabel] tests the presence of edge [u -> v] with the
    given label (binary search). *)
val has_edge : t -> int -> int -> elabel:int -> bool

(** [vertices_with_label g l] is the ascending array of vertices labeled
    [l]. *)
val vertices_with_label : t -> int -> int array

(** [num_with_label g l] is [Array.length (vertices_with_label g l)] without
    exposing the array — the source-range space the parallel executor carves
    into morsels. *)
val num_with_label : t -> int -> int

(** [iter_edges g ~elabel ~slabel ~dlabel f] calls [f u v] for every edge
    [u -> v] with edge label [elabel], source label [slabel], destination
    label [dlabel] — the SCAN operator's access path. *)
val iter_edges : t -> elabel:int -> slabel:int -> dlabel:int -> (int -> int -> unit) -> unit

(** [iter_edges_range] is [iter_edges] restricted to sources drawn from a
    sub-range of the label's vertex array — the unit of parallel work
    division. [lo] inclusive, [hi] exclusive, indices into
    [vertices_with_label g slabel]. *)
val iter_edges_range :
  t -> elabel:int -> slabel:int -> dlabel:int -> lo:int -> hi:int -> (int -> int -> unit) -> unit

(** [count_edges g ~elabel ~slabel ~dlabel] is the number of edges the
    corresponding SCAN would produce. *)
val count_edges : t -> elabel:int -> slabel:int -> dlabel:int -> int

(** [sample_edge g rng ~elabel ~slabel ~dlabel] draws a uniform random edge
    matching the predicates, or [None] when none exists. *)
val sample_edge :
  t -> Gf_util.Rng.t -> elabel:int -> slabel:int -> dlabel:int -> (int * int) option

(** [relabel g rng ~num_vlabels ~num_elabels] assigns uniform random vertex
    and edge labels, as the paper does for its labeled-query experiments
    (the Q^J_i notation). *)
val relabel : t -> Gf_util.Rng.t -> num_vlabels:int -> num_elabels:int -> t

(** [edge_array g] lists all edges as [(src, dst, elabel)] in index order. *)
val edge_array : t -> (int * int * int) array
