module Int_vec = Gf_util.Int_vec

type applied = Applied | Noop

type error =
  | Vertex_out_of_range of int
  | Vlabel_out_of_range of int
  | Elabel_out_of_range of int
  | Self_loop of int
  | Tombstoned of int

let error_to_string = function
  | Vertex_out_of_range v -> Printf.sprintf "vertex %d out of range" v
  | Vlabel_out_of_range l -> Printf.sprintf "vertex label %d out of range" l
  | Elabel_out_of_range l -> Printf.sprintf "edge label %d out of range" l
  | Self_loop v -> Printf.sprintf "self-loop on vertex %d refused" v
  | Tombstoned v -> Printf.sprintf "vertex %d is deleted (tombstoned)" v

(* Overlay representation: flat membership sets for O(1) liveness tests
   plus per-partition sorted lists keyed like the CSR's slots — (u, elabel,
   nlabel) — so a partition's overlay view merges with the base slice in
   one ordered pass. Both views are kept in lockstep; partitions are small
   between merges, so sorted insertion into a list is fine. *)
type t = {
  mutable base : Graph.t;
  mutable merged_version : int;
  mutable version : int;
  add_set : (int * int * int, unit) Hashtbl.t;  (** (u, v, el) inserted, not in base *)
  del_set : (int * int * int, unit) Hashtbl.t;  (** (u, v, el) deleted, present in base *)
  add_parts : (int * int * int, int list) Hashtbl.t;  (** (u, el, nl) -> sorted dsts *)
  del_parts : (int * int * int, int list) Hashtbl.t;
  extra_vlabel : Int_vec.t;  (** labels of vertices appended past [base.n] *)
  tombs : (int, unit) Hashtbl.t;
  mutable tombs_pending : int;  (** tombstones applied since the last merge *)
}

let create ?(version = 0) base =
  {
    base;
    merged_version = version;
    version;
    add_set = Hashtbl.create 64;
    del_set = Hashtbl.create 64;
    add_parts = Hashtbl.create 64;
    del_parts = Hashtbl.create 64;
    extra_vlabel = Int_vec.create ();
    tombs = Hashtbl.create 16;
    tombs_pending = 0;
  }

let graph t = t.base
let version t = t.version
let merged_version t = t.merged_version

let live_vertices t = Graph.num_vertices t.base + Int_vec.length t.extra_vlabel
let live_edges t = Graph.num_edges t.base - Hashtbl.length t.del_set + Hashtbl.length t.add_set

let pending t =
  Hashtbl.length t.add_set + Hashtbl.length t.del_set + Int_vec.length t.extra_vlabel
  + t.tombs_pending

let tombstoned t v = Hashtbl.mem t.tombs v

let vlabel t v =
  let n = Graph.num_vertices t.base in
  if v < n then Graph.vlabel t.base v else Int_vec.get t.extra_vlabel (v - n)

let rec insert_sorted x = function
  | [] -> [ x ]
  | y :: _ as l when x < y -> x :: l
  | y :: rest when x = y -> y :: rest
  | y :: rest -> y :: insert_sorted x rest

let rec remove_sorted x = function
  | [] -> []
  | y :: rest when y = x -> rest
  | y :: _ as l when y > x -> l
  | y :: rest -> y :: remove_sorted x rest

let part_add tbl key v =
  let l = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
  Hashtbl.replace tbl key (insert_sorted v l)

let part_remove tbl key v =
  match Hashtbl.find_opt tbl key with
  | None -> ()
  | Some l -> (
      match remove_sorted v l with
      | [] -> Hashtbl.remove tbl key
      | l' -> Hashtbl.replace tbl key l')

(* Edge liveness in the base CSR only (ignores the overlay). Appended
   vertices have no base adjacency. *)
let base_has t u v el =
  let n = Graph.num_vertices t.base in
  u < n && v < n && Graph.has_edge t.base u v ~elabel:el

let check_vertex t v = if v < 0 || v >= live_vertices t then Error (Vertex_out_of_range v) else Ok ()

let check_live_vertex t v =
  match check_vertex t v with
  | Error _ as e -> e
  | Ok () -> if Hashtbl.mem t.tombs v then Error (Tombstoned v) else Ok ()

let check_elabel t el =
  if el < 0 || el >= Graph.num_elabels t.base then Error (Elabel_out_of_range el) else Ok ()

let ( let* ) = Result.bind

let bump t = t.version <- t.version + 1
let tick t = bump t

let add_edge t u v ~elabel =
  let* () = check_live_vertex t u in
  let* () = check_live_vertex t v in
  let* () = check_elabel t elabel in
  let* () = if u = v then Error (Self_loop u) else Ok () in
  bump t;
  let key = (u, v, elabel) in
  if Hashtbl.mem t.add_set key then Ok Noop
  else if Hashtbl.mem t.del_set key then begin
    (* Re-inserting an edge the overlay had deleted: cancel the delete. *)
    Hashtbl.remove t.del_set key;
    part_remove t.del_parts (u, elabel, vlabel t v) v;
    Ok Applied
  end
  else if base_has t u v elabel then Ok Noop
  else begin
    Hashtbl.replace t.add_set key ();
    part_add t.add_parts (u, elabel, vlabel t v) v;
    Ok Applied
  end

let del_edge t u v ~elabel =
  let* () = check_vertex t u in
  let* () = check_vertex t v in
  let* () = check_elabel t elabel in
  bump t;
  let key = (u, v, elabel) in
  if Hashtbl.mem t.add_set key then begin
    Hashtbl.remove t.add_set key;
    part_remove t.add_parts (u, elabel, vlabel t v) v;
    Ok Applied
  end
  else if Hashtbl.mem t.del_set key then Ok Noop
  else if base_has t u v elabel then begin
    Hashtbl.replace t.del_set key ();
    part_add t.del_parts (u, elabel, vlabel t v) v;
    Ok Applied
  end
  else Ok Noop

let add_vertex t ~label =
  let* () =
    if label < 0 || label >= Graph.num_vlabels t.base then Error (Vlabel_out_of_range label)
    else Ok ()
  in
  bump t;
  let id = live_vertices t in
  Int_vec.push t.extra_vlabel label;
  Ok id

let del_vertex t v =
  let* () = check_vertex t v in
  bump t;
  if Hashtbl.mem t.tombs v then Ok Noop
  else begin
    (* Delete overlay edges incident to [v] first (full scan of the
       overlay set: tombstoning is rare and the overlay is small between
       merges), then every base edge incident to [v]. *)
    let overlay_incident =
      Hashtbl.fold
        (fun ((u, w, _) as key) () acc -> if u = v || w = v then key :: acc else acc)
        t.add_set []
    in
    List.iter
      (fun ((u, w, el) as key) ->
        Hashtbl.remove t.add_set key;
        part_remove t.add_parts (u, el, vlabel t w) w)
      overlay_incident;
    let n = Graph.num_vertices t.base in
    if v < n then begin
      let del_base u w el =
        let key = (u, w, el) in
        if not (Hashtbl.mem t.del_set key) then begin
          Hashtbl.replace t.del_set key ();
          part_add t.del_parts (u, el, vlabel t w) w
        end
      in
      for el = 0 to Graph.num_elabels t.base - 1 do
        let out = Graph.neighbours_any_nlabel t.base Graph.Fwd v ~elabel:el in
        let arr, lo, hi = out in
        Gf_util.Buf.iter_range (fun w -> del_base v w el) arr lo hi;
        let inc = Graph.neighbours_any_nlabel t.base Graph.Bwd v ~elabel:el in
        let arr, lo, hi = inc in
        Gf_util.Buf.iter_range (fun u -> del_base u v el) arr lo hi
      done
    end;
    Hashtbl.replace t.tombs v ();
    t.tombs_pending <- t.tombs_pending + 1;
    Ok Applied
  end

let mem_edge t u v ~elabel =
  u >= 0
  && v >= 0
  && u < live_vertices t
  && v < live_vertices t
  &&
  let key = (u, v, elabel) in
  if Hashtbl.mem t.add_set key then true
  else if Hashtbl.mem t.del_set key then false
  else base_has t u v elabel

let neighbours t u ~elabel ~nlabel =
  let adds = Option.value (Hashtbl.find_opt t.add_parts (u, elabel, nlabel)) ~default:[] in
  let dels = Option.value (Hashtbl.find_opt t.del_parts (u, elabel, nlabel)) ~default:[] in
  let base =
    if u < Graph.num_vertices t.base then begin
      let arr, lo, hi = Graph.neighbours t.base Graph.Fwd u ~elabel ~nlabel in
      Gf_util.Buf.sub_array arr lo hi
    end
    else [||]
  in
  (* One ordered pass: both the base slice and the overlay lists are
     sorted, deletions only name base members, insertions never do. *)
  let out = ref [] in
  let adds = ref adds and dels = ref dels in
  let emit x = out := x :: !out in
  Array.iter
    (fun x ->
      (* Flush insertions below x. *)
      let rec flush () =
        match !adds with
        | a :: rest when a < x ->
            emit a;
            adds := rest;
            flush ()
        | _ -> ()
      in
      flush ();
      match !dels with
      | d :: rest when d = x -> dels := rest
      | _ -> emit x)
    base;
  List.iter emit !adds;
  Array.of_list (List.rev !out)

let edge_array t =
  let live = ref [] in
  Array.iter
    (fun ((u, v, el) as e) -> if not (Hashtbl.mem t.del_set (u, v, el)) then live := e :: !live)
    (Graph.edge_array t.base);
  Hashtbl.iter (fun e () -> live := e :: !live) t.add_set;
  let a = Array.of_list !live in
  Array.sort compare a;
  a

let merge t =
  if pending t = 0 then begin
    t.merged_version <- t.version;
    t.base
  end
  else begin
    let n = live_vertices t in
    let base_n = Graph.num_vertices t.base in
    let vlabels = Array.init n (fun v -> if v < base_n then Graph.vlabel t.base v else Int_vec.get t.extra_vlabel (v - base_n)) in
    let edges = edge_array t in
    let g =
      Graph.build ~num_vlabels:(Graph.num_vlabels t.base) ~num_elabels:(Graph.num_elabels t.base)
        ~vlabel:vlabels ~edges
    in
    t.base <- g;
    t.merged_version <- t.version;
    Hashtbl.reset t.add_set;
    Hashtbl.reset t.del_set;
    Hashtbl.reset t.add_parts;
    Hashtbl.reset t.del_parts;
    Int_vec.clear t.extra_vlabel;
    t.tombs_pending <- 0;
    g
  end

let install t g ~version =
  if pending t <> 0 then invalid_arg "Delta.install: overlay not empty";
  t.base <- g;
  t.version <- version;
  t.merged_version <- version
