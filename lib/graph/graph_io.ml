type load_error = { path : string; line : int; kind : error_kind }

and error_kind =
  | Unreadable of string
  | Bad_header of string
  | Truncated of string
  | Bad_token of string
  | Bad_vertex of int
  | Dangling_edge of int * int
  | Edge_count_mismatch of { expected : int; got : int }

let kind_to_string = function
  | Unreadable msg -> "cannot read: " ^ msg
  | Bad_header h -> Printf.sprintf "bad header %S (expected \"graphflow v1\")" h
  | Truncated what -> "truncated file: missing " ^ what
  | Bad_token tok -> Printf.sprintf "malformed token %S" tok
  | Bad_vertex v -> Printf.sprintf "vertex id %d out of range" v
  | Dangling_edge (u, v) -> Printf.sprintf "edge (%d, %d) references a missing vertex" u v
  | Edge_count_mismatch { expected; got } ->
      Printf.sprintf "expected %d edges, got %d (truncated?)" expected got

let load_error_to_string e =
  if e.line > 0 then
    Printf.sprintf "Graph_io.load %s, line %d: %s" e.path e.line (kind_to_string e.kind)
  else Printf.sprintf "Graph_io.load %s: %s" e.path (kind_to_string e.kind)

let pp_load_error fmt e = Format.pp_print_string fmt (load_error_to_string e)

(* Crash-safe: write a temp sibling and rename into place, so a crash (or
   kill -9) mid-save never leaves a torn file where a loadable graph was. *)
let save g path =
  Gf_util.Atomic_file.write path (fun oc ->
      Printf.fprintf oc "graphflow v1\n";
      Printf.fprintf oc "%d %d %d %d\n" (Graph.num_vertices g) (Graph.num_edges g)
        (Graph.num_vlabels g) (Graph.num_elabels g);
      for v = 0 to Graph.num_vertices g - 1 do
        let l = Graph.vlabel g v in
        if l <> 0 then Printf.fprintf oc "v %d %d\n" v l
      done;
      Array.iter
        (fun (u, v, el) -> Printf.fprintf oc "e %d %d %d\n" u v el)
        (Graph.edge_array g))

exception Err of load_error

let load_result path =
  match open_in path with
  | exception Sys_error msg -> Error { path; line = 0; kind = Unreadable msg }
  | ic -> (
      let lineno = ref 0 in
      let fail kind = raise (Err { path; line = !lineno; kind }) in
      let read_line what =
        incr lineno;
        try input_line ic with End_of_file -> fail (Truncated what)
      in
      let int_of tok =
        match int_of_string_opt tok with Some i -> i | None -> fail (Bad_token tok)
      in
      try
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            let header = read_line "header" in
            if header <> "graphflow v1" then fail (Bad_header header);
            let n, m, nv, ne =
              let line = read_line "size line" in
              match String.split_on_char ' ' line with
              | [ a; b; c; d ] -> (int_of a, int_of b, int_of c, int_of d)
              | _ -> fail (Bad_token line)
            in
            if n < 0 || m < 0 || nv < 1 || ne < 1 then
              fail (Bad_token (Printf.sprintf "%d %d %d %d" n m nv ne));
            let vlabel = Array.make n 0 in
            let edges = ref [] in
            let count = ref 0 in
            (try
               while true do
                 incr lineno;
                 let line = input_line ic in
                 if line <> "" then
                   match String.split_on_char ' ' line with
                   | [ "v"; id; l ] ->
                       let id = int_of id in
                       if id < 0 || id >= n then fail (Bad_vertex id);
                       vlabel.(id) <- int_of l
                   | [ "e"; u; v; el ] ->
                       let u = int_of u and v = int_of v in
                       if u < 0 || u >= n || v < 0 || v >= n then
                         fail (Dangling_edge (u, v));
                       edges := (u, v, int_of el) :: !edges;
                       incr count
                   | _ -> fail (Bad_token line)
               done
             with End_of_file -> ());
            if !count <> m then begin
              lineno := 0;
              fail (Edge_count_mismatch { expected = m; got = !count })
            end;
            lineno := 0;
            match
              Graph.build ~num_vlabels:nv ~num_elabels:ne ~vlabel
                ~edges:(Array.of_list !edges)
            with
            | g -> Ok g
            | exception Invalid_argument msg -> fail (Bad_token msg))
      with Err e -> Error e)

let load path =
  match load_result path with
  | Ok g -> g
  | Error e -> failwith (load_error_to_string e)
