module Buf = Gf_util.Buf

type load_error = { path : string; line : int; kind : error_kind }

and error_kind =
  | Unreadable of string
  | Bad_header of string
  | Truncated of string
  | Bad_token of string
  | Bad_vertex of int
  | Dangling_edge of int * int
  | Edge_count_mismatch of { expected : int; got : int }
  | Bad_version of int
  | Foreign_endian
  | Torn of string
  | Invalid of string
  | Checksum of string

let kind_to_string = function
  | Unreadable msg -> "cannot read: " ^ msg
  | Bad_header h -> Printf.sprintf "bad header %S (expected \"graphflow v1\")" h
  | Truncated what -> "truncated file: missing " ^ what
  | Bad_token tok -> Printf.sprintf "malformed token %S" tok
  | Bad_vertex v -> Printf.sprintf "vertex id %d out of range" v
  | Dangling_edge (u, v) -> Printf.sprintf "edge (%d, %d) references a missing vertex" u v
  | Edge_count_mismatch { expected; got } ->
      Printf.sprintf "expected %d edges, got %d (truncated?)" expected got
  | Bad_version v -> Printf.sprintf "unsupported snapshot version %d (expected 1 or 2)" v
  | Foreign_endian -> "snapshot written on a machine with different endianness"
  | Torn what -> "torn snapshot: " ^ what
  | Invalid what -> "invalid snapshot contents: " ^ what
  | Checksum what -> "snapshot checksum mismatch (bit rot or tampering): " ^ what

let load_error_to_string e =
  if e.line > 0 then
    Printf.sprintf "Graph_io.load %s, line %d: %s" e.path e.line (kind_to_string e.kind)
  else Printf.sprintf "Graph_io.load %s: %s" e.path (kind_to_string e.kind)

let pp_load_error fmt e = Format.pp_print_string fmt (load_error_to_string e)

(* Crash-safe: write a temp sibling and rename into place, so a crash (or
   kill -9) mid-save never leaves a torn file where a loadable graph was. *)
let save g path =
  Gf_util.Atomic_file.write path (fun oc ->
      Printf.fprintf oc "graphflow v1\n";
      Printf.fprintf oc "%d %d %d %d\n" (Graph.num_vertices g) (Graph.num_edges g)
        (Graph.num_vlabels g) (Graph.num_elabels g);
      for v = 0 to Graph.num_vertices g - 1 do
        let l = Graph.vlabel g v in
        if l <> 0 then Printf.fprintf oc "v %d %d\n" v l
      done;
      Array.iter
        (fun (u, v, el) -> Printf.fprintf oc "e %d %d %d\n" u v el)
        (Graph.edge_array g))

(* ------------------------------------------------------------------ *)
(* Binary snapshot format (mmap-loadable, zero deserialization)        *)
(*                                                                     *)
(* Layout — all sections 8-byte aligned, native-endian:                *)
(*   0   "GFQSNAP1"                                                    *)
(*   8   version (1 | 2)                                               *)
(*   16  endianness probe 0x0123456789abcdef                           *)
(*   24  n   32  m   40  nv   48  ne   56  nbr width in bytes (4|8)    *)
(*   64  vlabel        n      x 8 bytes                                *)
(*   ..  fwd_off       nslots x 8                                      *)
(*   ..  fwd_nbr       m      x w, zero-padded to 8                    *)
(*   ..  bwd_off       nslots x 8                                      *)
(*   ..  bwd_nbr       m      x w, zero-padded to 8                    *)
(*   ..  "GFQSEND1"                                                    *)
(* Version 2 appends a 32-byte integrity block after the trailer       *)
(* magic:                                                              *)
(*   +8   wal_version  u64 — the WAL LSN this snapshot reflects; the   *)
(*        recovery state machine replays log records past it           *)
(*   +16  CRC-32 of each section (vlabel, fwd_off, fwd_nbr, bwd_off,   *)
(*        bwd_nbr; padding included), u32 each                         *)
(*   +36  CRC-32 of the 64-byte header, u32                            *)
(* where nslots = n*ne*nv + 1. Torn/truncated files are caught by the  *)
(* exact-size check plus the trailer; v2 additionally catches bit rot  *)
(* inside a section at open time (the checksum pass), not as wrong     *)
(* query results. Partially-visible writes cannot happen anyway        *)
(* because saves go through Atomic_file (tmp + rename). Loading maps   *)
(* each section in place with [Unix.map_file]: no parse, no copy —     *)
(* pages fault in from disk on first touch.                            *)
(* ------------------------------------------------------------------ *)

let snap_magic = "GFQSNAP1"
let snap_trailer = "GFQSEND1"
let snap_version = 2
let v2_block = 32
let endian_probe = 0x0123456789abcdefL
let header_size = 64
let align8 x = (x + 7) land lnot 7

type layout = {
  l_vlabel : int;
  l_fwd_off : int;
  l_fwd_nbr : int;
  l_bwd_off : int;
  l_bwd_nbr : int;
  l_trailer : int;
  l_total : int;
}

let snap_layout ~version ~n ~m ~nv ~ne ~w =
  let nslots = (n * ne * nv) + 1 in
  let l_vlabel = header_size in
  let l_fwd_off = l_vlabel + (8 * n) in
  let l_fwd_nbr = l_fwd_off + (8 * nslots) in
  let l_bwd_off = l_fwd_nbr + align8 (w * m) in
  let l_bwd_nbr = l_bwd_off + (8 * nslots) in
  let l_trailer = l_bwd_nbr + align8 (w * m) in
  let l_total = l_trailer + 8 + if version >= 2 then v2_block else 0 in
  { l_vlabel; l_fwd_off; l_fwd_nbr; l_bwd_off; l_bwd_nbr; l_trailer; l_total }

(* Chunked native-endian writes: bounce bigarray contents through one
   reusable Bytes buffer rather than a byte-at-a-time loop. Each writer
   folds the emitted bytes into a running CRC-32 so the v2 integrity block
   costs no second pass over the data. *)
let chunk_bytes = 65536

let write_i64a oc crc (a : Buf.i64a) =
  let buf = Bytes.create chunk_bytes in
  let per = chunk_bytes / 8 in
  let len = Bigarray.Array1.dim a in
  let i = ref 0 in
  while !i < len do
    let k = min per (len - !i) in
    for j = 0 to k - 1 do
      Bytes.set_int64_ne buf (j * 8) (Int64.of_int (Bigarray.Array1.unsafe_get a (!i + j)))
    done;
    output oc buf 0 (k * 8);
    crc := Gf_util.Crc32.update !crc buf 0 (k * 8);
    i := !i + k
  done

let write_i32a oc crc (a : Buf.i32a) =
  let buf = Bytes.create chunk_bytes in
  let per = chunk_bytes / 4 in
  let len = Bigarray.Array1.dim a in
  let i = ref 0 in
  while !i < len do
    let k = min per (len - !i) in
    for j = 0 to k - 1 do
      Bytes.set_int32_ne buf (j * 4) (Bigarray.Array1.unsafe_get a (!i + j))
    done;
    output oc buf 0 (k * 4);
    crc := Gf_util.Crc32.update !crc buf 0 (k * 4);
    i := !i + k
  done

let write_nbr oc crc (b : Buf.t) =
  (match b with Buf.I32 a -> write_i32a oc crc a | Buf.I64 a -> write_i64a oc crc a);
  let pad = align8 (Buf.bytes b) - Buf.bytes b in
  if pad > 0 then begin
    let zeros = String.make pad '\000' in
    output_string oc zeros;
    crc := Gf_util.Crc32.update_string !crc zeros
  end

let section_crc f =
  let crc = ref Gf_util.Crc32.init in
  f crc;
  Gf_util.Crc32.finish !crc

let save_snapshot_as ~version:snap_v ?(wal_version = 0) ?before_rename g path =
  let p = Graph.to_raw g in
  let w = Buf.width_bytes p.Graph.Raw.fwd_nbr in
  Gf_util.Atomic_file.write ?before_rename path (fun oc ->
      let hdr = Bytes.make header_size '\000' in
      Bytes.blit_string snap_magic 0 hdr 0 8;
      Bytes.set_int64_ne hdr 8 (Int64.of_int snap_v);
      Bytes.set_int64_ne hdr 16 endian_probe;
      Bytes.set_int64_ne hdr 24 (Int64.of_int p.Graph.Raw.n);
      Bytes.set_int64_ne hdr 32 (Int64.of_int p.Graph.Raw.m);
      Bytes.set_int64_ne hdr 40 (Int64.of_int p.Graph.Raw.nv);
      Bytes.set_int64_ne hdr 48 (Int64.of_int p.Graph.Raw.ne);
      Bytes.set_int64_ne hdr 56 (Int64.of_int w);
      output_bytes oc hdr;
      let c_vl = section_crc (fun c -> write_i64a oc c p.Graph.Raw.vlabel) in
      let c_fo = section_crc (fun c -> write_i64a oc c p.Graph.Raw.fwd_off) in
      let c_fn = section_crc (fun c -> write_nbr oc c p.Graph.Raw.fwd_nbr) in
      let c_bo = section_crc (fun c -> write_i64a oc c p.Graph.Raw.bwd_off) in
      let c_bn = section_crc (fun c -> write_nbr oc c p.Graph.Raw.bwd_nbr) in
      output_string oc snap_trailer;
      if snap_v >= 2 then begin
        let blk = Bytes.make v2_block '\000' in
        Bytes.set_int64_ne blk 0 (Int64.of_int wal_version);
        List.iteri
          (fun i c -> Bytes.set_int32_ne blk (8 + (i * 4)) c)
          [ c_vl; c_fo; c_fn; c_bo; c_bn; Gf_util.Crc32.bytes hdr ];
        output_bytes oc blk
      end)

let save_snapshot ?wal_version g path =
  save_snapshot_as ~version:snap_version ?wal_version g path

(* The legacy no-checksum writer, kept so the backward-compatible v1 read
   path stays tested. *)
let save_snapshot_v1 g path = save_snapshot_as ~version:1 g path

exception Err of load_error

let really_read fd buf =
  let len = Bytes.length buf in
  let got = ref 0 in
  (try
     while !got < len do
       let k = Unix.read fd buf !got (len - !got) in
       if k = 0 then raise Exit;
       got := !got + k
     done
   with Exit -> ());
  !got = len

(* CRC-32 of [len] file bytes starting at [pos], streamed through one
   reusable chunk — the v2 open-time integrity pass. *)
let range_crc fd ~pos ~len =
  ignore (Unix.lseek fd pos Unix.SEEK_SET);
  let buf = Bytes.create chunk_bytes in
  let crc = ref Gf_util.Crc32.init in
  let remaining = ref len in
  while !remaining > 0 do
    let want = min chunk_bytes !remaining in
    let got = Unix.read fd buf 0 want in
    if got = 0 then raise (Err { path = ""; line = 0; kind = Torn "short section read" });
    crc := Gf_util.Crc32.update !crc buf 0 got;
    remaining := !remaining - got
  done;
  Gf_util.Crc32.finish !crc

let map_i64 fd ~pos ~len : Buf.i64a =
  if len = 0 then Buf.alloc_i64 0
  else
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int Bigarray.c_layout false [| len |])

let map_nbr fd ~pos ~len ~w : Buf.t =
  if w = 4 then
    if len = 0 then Buf.I32 (Buf.alloc_i32 0)
    else
      Buf.I32
        (Bigarray.array1_of_genarray
           (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int32 Bigarray.c_layout false
              [| len |]))
  else Buf.I64 (map_i64 fd ~pos ~len)

(* The snapshot loader proper, running with the fd open. Raises [Err] on
   every refusal; the caller owns closing the descriptor, so no branch in
   here can leak it. *)
let load_snapshot_fd path fd =
  let fail kind = raise (Err { path; line = 0; kind }) in
  let size = (Unix.fstat fd).Unix.st_size in
  if size < header_size + 8 then fail (Torn "file shorter than header");
  let hdr = Bytes.create header_size in
  if not (really_read fd hdr) then fail (Torn "short header read");
  if Bytes.sub_string hdr 0 8 <> snap_magic then fail (Bad_header (Bytes.sub_string hdr 0 8));
  let field o = Int64.to_int (Bytes.get_int64_ne hdr o) in
  if Bytes.get_int64_ne hdr 16 <> endian_probe then fail Foreign_endian;
  let v = field 8 in
  if v <> 1 && v <> 2 then fail (Bad_version v);
  let n = field 24 and m = field 32 and nv = field 40 and ne = field 48 in
  let w = field 56 in
  if n < 0 || m < 0 || nv < 1 || ne < 1 || (w <> 4 && w <> 8) then
    fail (Invalid (Printf.sprintf "dimensions %d %d %d %d width %d" n m nv ne w));
  let lay = snap_layout ~version:v ~n ~m ~nv ~ne ~w in
  if size <> lay.l_total then
    fail (Torn (Printf.sprintf "size %d bytes, header promises %d" size lay.l_total));
  let tr = Bytes.create 8 in
  ignore (Unix.lseek fd lay.l_trailer Unix.SEEK_SET);
  if not (really_read fd tr) then fail (Torn "short trailer read");
  if Bytes.to_string tr <> snap_trailer then fail (Torn "missing trailer");
  let nslots = (n * ne * nv) + 1 in
  let wal_version =
    if v < 2 then 0
    else begin
      let blk = Bytes.create v2_block in
      ignore (Unix.lseek fd (lay.l_trailer + 8) Unix.SEEK_SET);
      if not (really_read fd blk) then fail (Torn "short integrity block read");
      let expect i = Bytes.get_int32_ne blk (8 + (i * 4)) in
      if Gf_util.Crc32.bytes hdr <> expect 5 then fail (Checksum "header");
      let sections =
        [
          ("vlabel", lay.l_vlabel, lay.l_fwd_off, 0);
          ("fwd_off", lay.l_fwd_off, lay.l_fwd_nbr, 1);
          ("fwd_nbr", lay.l_fwd_nbr, lay.l_bwd_off, 2);
          ("bwd_off", lay.l_bwd_off, lay.l_bwd_nbr, 3);
          ("bwd_nbr", lay.l_bwd_nbr, lay.l_trailer, 4);
        ]
      in
      List.iter
        (fun (name, pos, stop, i) ->
          let got = try range_crc fd ~pos ~len:(stop - pos) with Err _ -> fail (Torn ("short " ^ name ^ " read")) in
          if got <> expect i then fail (Checksum name))
        sections;
      Int64.to_int (Bytes.get_int64_ne blk 0)
    end
  in
  let parts =
    {
      Graph.Raw.n;
      m;
      nv;
      ne;
      vlabel = map_i64 fd ~pos:lay.l_vlabel ~len:n;
      fwd_off = map_i64 fd ~pos:lay.l_fwd_off ~len:nslots;
      fwd_nbr = map_nbr fd ~pos:lay.l_fwd_nbr ~len:m ~w;
      bwd_off = map_i64 fd ~pos:lay.l_bwd_off ~len:nslots;
      bwd_nbr = map_nbr fd ~pos:lay.l_bwd_nbr ~len:m ~w;
    }
  in
  match Graph.of_raw ~mapped_from:path parts with
  | Ok g -> (g, wal_version)
  | Error msg -> fail (Invalid msg)

(* Every branch — success, structured refusal, unexpected system error —
   funnels through the single [Unix.close] below; a refused torn or
   foreign-endian snapshot can no longer leak the descriptor. The mapped
   sections stay valid after close (mmap holds its own reference). *)
let load_snapshot_versioned path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (e, _, _) ->
      Error { path; line = 0; kind = Unreadable (Unix.error_message e) }
  | fd ->
      let result =
        match load_snapshot_fd path fd with
        | ok -> Ok ok
        | exception Err e -> Error e
        | exception Unix.Unix_error (e, _, _) ->
            Error { path; line = 0; kind = Unreadable (Unix.error_message e) }
        | exception Sys_error msg -> Error { path; line = 0; kind = Unreadable msg }
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      result

let load_snapshot_result path = Result.map fst (load_snapshot_versioned path)

let load_snapshot path =
  match load_snapshot_result path with
  | Ok g -> g
  | Error e -> failwith (load_error_to_string e)

(* Peek the first 8 bytes to tell a binary snapshot from the text format. *)
let is_snapshot path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let b = Bytes.create 8 in
          match really_input ic b 0 8 with
          | () -> Bytes.to_string b = snap_magic
          | exception End_of_file -> false)

let load_text_result path =
  match open_in path with
  | exception Sys_error msg -> Error { path; line = 0; kind = Unreadable msg }
  | ic -> (
      let lineno = ref 0 in
      let fail kind = raise (Err { path; line = !lineno; kind }) in
      let read_line what =
        incr lineno;
        try input_line ic with End_of_file -> fail (Truncated what)
      in
      let int_of tok =
        match int_of_string_opt tok with Some i -> i | None -> fail (Bad_token tok)
      in
      try
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            let header = read_line "header" in
            if header <> "graphflow v1" then fail (Bad_header header);
            let n, m, nv, ne =
              let line = read_line "size line" in
              match String.split_on_char ' ' line with
              | [ a; b; c; d ] -> (int_of a, int_of b, int_of c, int_of d)
              | _ -> fail (Bad_token line)
            in
            if n < 0 || m < 0 || nv < 1 || ne < 1 then
              fail (Bad_token (Printf.sprintf "%d %d %d %d" n m nv ne));
            let vlabel = Array.make n 0 in
            let edges = ref [] in
            let count = ref 0 in
            (try
               while true do
                 incr lineno;
                 let line = input_line ic in
                 if line <> "" then
                   match String.split_on_char ' ' line with
                   | [ "v"; id; l ] ->
                       let id = int_of id in
                       if id < 0 || id >= n then fail (Bad_vertex id);
                       vlabel.(id) <- int_of l
                   | [ "e"; u; v; el ] ->
                       let u = int_of u and v = int_of v in
                       if u < 0 || u >= n || v < 0 || v >= n then
                         fail (Dangling_edge (u, v));
                       edges := (u, v, int_of el) :: !edges;
                       incr count
                   | _ -> fail (Bad_token line)
               done
             with End_of_file -> ());
            if !count <> m then begin
              lineno := 0;
              fail (Edge_count_mismatch { expected = m; got = !count })
            end;
            lineno := 0;
            match
              Graph.build ~num_vlabels:nv ~num_elabels:ne ~vlabel
                ~edges:(Array.of_list !edges)
            with
            | g -> Ok g
            | exception Invalid_argument msg -> fail (Bad_token msg))
      with Err e -> Error e)

(* Auto-detect by magic: callers point [load_result] at either format. *)
let load_result path =
  if is_snapshot path then load_snapshot_result path else load_text_result path

let load path =
  match load_result path with
  | Ok g -> g
  | Error e -> failwith (load_error_to_string e)
