module Graph = Gf_graph.Graph
module Query = Gf_query.Query
module Rng = Gf_util.Rng

let neighbours_all g v =
  let acc = ref [] in
  for el = 0 to Graph.num_elabels g - 1 do
    List.iter
      (fun dir ->
        let arr, lo, hi = Graph.neighbours_any_nlabel g dir v ~elabel:el in
        Gf_util.Buf.iter_range (fun w -> acc := w :: !acc) arr lo hi)
      [ Graph.Fwd; Graph.Bwd ]
  done;
  !acc

let from_data g rng ~num_vertices ~dense =
  let n = Graph.num_vertices g in
  if num_vertices > n then invalid_arg "Query_gen.from_data: graph too small";
  (* Grow a connected vertex set by random neighbour expansion; retry from a
     new seed when stuck (e.g. an isolated vertex). *)
  let rec grow attempts =
    if attempts > 200 then invalid_arg "Query_gen.from_data: cannot grow a connected set";
    let chosen = Hashtbl.create 32 in
    let members = ref [] in
    let add v =
      if not (Hashtbl.mem chosen v) then begin
        Hashtbl.replace chosen v ();
        members := v :: !members
      end
    in
    add (Rng.int rng n);
    let stuck = ref false in
    while Hashtbl.length chosen < num_vertices && not !stuck do
      (* Candidates: neighbours of a random member not yet chosen. *)
      let ms = Array.of_list !members in
      let found = ref None in
      let tries = ref 0 in
      while !found = None && !tries < 50 do
        incr tries;
        let v = ms.(Rng.int rng (Array.length ms)) in
        let nbrs = neighbours_all g v |> List.filter (fun w -> not (Hashtbl.mem chosen w)) in
        if nbrs <> [] then found := Some (List.nth nbrs (Rng.int rng (List.length nbrs)))
      done;
      match !found with Some w -> add w | None -> stuck := true
    done;
    if Hashtbl.length chosen < num_vertices then grow (attempts + 1)
    else Array.of_list (List.rev !members)
  in
  let members = grow 0 in
  let index = Hashtbl.create 32 in
  Array.iteri (fun i v -> Hashtbl.replace index v i) members;
  (* Induced data edges, dropping one direction of reciprocal pairs (the
     planner's SCAN matches a single edge per vertex pair). *)
  let seen_pair = Hashtbl.create 64 in
  let induced = ref [] in
  Array.iteri
    (fun qi v ->
      for el = 0 to Graph.num_elabels g - 1 do
        let arr, lo, hi = Graph.neighbours_any_nlabel g Graph.Fwd v ~elabel:el in
        Gf_util.Buf.iter_range
          (fun w ->
            match Hashtbl.find_opt index w with
            | Some qj ->
                let key = (min qi qj, max qi qj) in
                if not (Hashtbl.mem seen_pair key) then begin
                  Hashtbl.replace seen_pair key ();
                  induced := Query.{ src = qi; dst = qj; label = el } :: !induced
                end
            | None -> ())
          arr lo hi
      done)
    members;
  let induced = Array.of_list !induced in
  let vlabels = Array.map (Graph.vlabel g) members in
  let nv = Array.length members in
  let target_edges =
    if dense then Array.length induced
    else min (Array.length induced) (nv + (nv / 4))
  in
  (* Keep a spanning tree first (connectivity), then random extras. *)
  let order = Array.init (Array.length induced) (fun i -> i) in
  Rng.shuffle rng order;
  let parent = Array.init nv (fun i -> i) in
  let rec find x = if parent.(x) = x then x else (parent.(x) <- find parent.(x); find parent.(x)) in
  let kept = Array.make (Array.length induced) false in
  let kept_count = ref 0 in
  Array.iter
    (fun i ->
      let e = induced.(i) in
      let a = find e.Query.src and b = find e.Query.dst in
      if a <> b then begin
        parent.(a) <- b;
        kept.(i) <- true;
        incr kept_count
      end)
    order;
  Array.iter
    (fun i ->
      if (not kept.(i)) && !kept_count < target_edges then begin
        kept.(i) <- true;
        incr kept_count
      end)
    order;
  let edges =
    Array.to_list induced
    |> List.filteri (fun i _ -> kept.(i))
    |> Array.of_list
  in
  let q = Query.create ~num_vertices:nv ~vlabels ~edges () in
  assert (Query.is_connected q);
  q
