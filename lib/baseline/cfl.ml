module Graph = Gf_graph.Graph
module Query = Gf_query.Query
module Bitset = Gf_util.Bitset

type stats = {
  matches : int;
  backtracks : int;
  candidates_checked : int;
  core_size : int;
}

exception Limit_reached

let core q =
  let n = Query.num_vertices q in
  let alive = ref (Bitset.full n) in
  let changed = ref true in
  while !changed do
    changed := false;
    Bitset.iter
      (fun v ->
        let deg = Bitset.cardinal (Bitset.inter (Query.neighbours q v) !alive) in
        if deg <= 1 then begin
          alive := Bitset.remove v !alive;
          changed := true
        end)
      !alive
  done;
  !alive

(* Degree lower-bound filter: a data vertex can match a query vertex only if
   it has at least as many forward and backward neighbours. *)
let degree_ok g q qv dv =
  let fwd_need =
    Array.fold_left
      (fun acc (e : Query.edge) -> if e.src = qv then acc + 1 else acc)
      0 q.Query.edges
  in
  let bwd_need =
    Array.fold_left
      (fun acc (e : Query.edge) -> if e.dst = qv then acc + 1 else acc)
      0 q.Query.edges
  in
  Graph.degree g Graph.Fwd dv >= fwd_need && Graph.degree g Graph.Bwd dv >= bwd_need

(* Candidate sets ("CPI-lite"): label + degree filtered. *)
let candidates g q =
  Array.init (Query.num_vertices q) (fun qv ->
      Graph.vertices_with_label g (Query.vlabel q qv)
      |> Array.to_list
      |> List.filter (degree_ok g q qv)
      |> Array.of_list)

let matching_order q (cands : int array array) =
  let n = Query.num_vertices q in
  let co = core q in
  let pick_region region placed order =
    (* Greedy: among unplaced region vertices adjacent to placed (or any if
       none placed), pick the smallest candidate set. *)
    let rec go placed acc =
      let best = ref (-1) in
      Bitset.iter
        (fun v ->
          if not (Bitset.mem v placed) then begin
            let adjacent =
              placed = Bitset.empty
              || Bitset.inter (Query.neighbours q v) placed <> Bitset.empty
            in
            if adjacent then
              if !best < 0 || Array.length cands.(v) < Array.length cands.(!best) then best := v
          end)
        region;
      if !best < 0 then (placed, List.rev acc)
      else go (Bitset.add !best placed) (!best :: acc)
    in
    let placed', region_order = go placed [] in
    (placed', order @ region_order)
  in
  let placed, order =
    if co <> Bitset.empty then pick_region co Bitset.empty [] else (Bitset.empty, [])
  in
  (* Forest vertices: those adjacent to placed first; seed with everything. *)
  let rest = Bitset.diff (Bitset.full n) placed in
  let _, order = pick_region rest placed order in
  Array.of_list order

let run ?limit g q =
  let cands = candidates g q in
  let order = matching_order q cands in
  let n = Query.num_vertices q in
  let assignment = Array.make n (-1) in
  let used = Hashtbl.create 16 in
  let matches = ref 0 and backtracks = ref 0 and checked = ref 0 in
  let consistent qv dv =
    Array.for_all
      (fun (e : Query.edge) ->
        if e.src = qv && assignment.(e.dst) >= 0 then
          Graph.has_edge g dv assignment.(e.dst) ~elabel:e.label
        else if e.dst = qv && assignment.(e.src) >= 0 then
          Graph.has_edge g assignment.(e.src) dv ~elabel:e.label
        else true)
      q.Query.edges
  in
  let rec go depth =
    if depth = n then begin
      incr matches;
      match limit with Some l when !matches >= l -> raise Limit_reached | _ -> ()
    end
    else begin
      let qv = order.(depth) in
      (* Candidates: from a matched neighbour's adjacency when available,
         otherwise the CPI candidate set. *)
      let from_neighbour =
        let found = ref None in
        Array.iter
          (fun (e : Query.edge) ->
            if !found = None then begin
              if e.src = qv && assignment.(e.dst) >= 0 then
                found := Some (assignment.(e.dst), Graph.Bwd, e.label)
              else if e.dst = qv && assignment.(e.src) >= 0 then
                found := Some (assignment.(e.src), Graph.Fwd, e.label)
            end)
          q.Query.edges;
        !found
      in
      let pool =
        match from_neighbour with
        | Some (dv, dir, el) ->
            let arr, lo, hi = Graph.neighbours g dir dv ~elabel:el ~nlabel:(Query.vlabel q qv) in
            Gf_util.Buf.sub_array arr lo hi
        | None -> cands.(qv)
      in
      let extended = ref false in
      Array.iter
        (fun dv ->
          incr checked;
          if
            (not (Hashtbl.mem used dv))
            && degree_ok g q qv dv
            && consistent qv dv
          then begin
            extended := true;
            assignment.(qv) <- dv;
            Hashtbl.replace used dv ();
            go (depth + 1);
            Hashtbl.remove used dv;
            assignment.(qv) <- -1
          end)
        pool;
      if not !extended then incr backtracks
    end
  in
  (try go 0 with Limit_reached -> ());
  {
    matches = !matches;
    backtracks = !backtracks;
    candidates_checked = !checked;
    core_size = Bitset.cardinal (core q);
  }

let count ?limit g q = (run ?limit g q).matches
