module Graph = Gf_graph.Graph
module Query = Gf_query.Query
module Bitset = Gf_util.Bitset

type stats = { matches : int; intermediate : int; expansions : int }

exception Limit_reached

(* Greedy default: after the first edge, prefer edges whose endpoints are
   both bound (cheap closing filters), then edges touching the prefix. *)
let default_order q =
  let n = Array.length q.Query.edges in
  let used = Array.make n false in
  let bound = ref Bitset.empty in
  let order = ref [] in
  let bind (e : Query.edge) = bound := Bitset.add e.src (Bitset.add e.dst !bound) in
  used.(0) <- true;
  bind q.Query.edges.(0);
  order := [ 0 ];
  for _ = 2 to n do
    let pick = ref (-1) in
    (* First choice: a closing edge. *)
    for i = 0 to n - 1 do
      if
        (not used.(i)) && !pick < 0
        && Bitset.mem q.Query.edges.(i).src !bound
        && Bitset.mem q.Query.edges.(i).dst !bound
      then pick := i
    done;
    (* Otherwise: any edge touching the prefix. *)
    if !pick < 0 then
      for i = 0 to n - 1 do
        if
          (not used.(i)) && !pick < 0
          && (Bitset.mem q.Query.edges.(i).src !bound || Bitset.mem q.Query.edges.(i).dst !bound)
        then pick := i
      done;
    if !pick >= 0 then begin
      used.(!pick) <- true;
      bind q.Query.edges.(!pick);
      order := !pick :: !order
    end
  done;
  List.rev !order

let run ?edge_order ?limit g q =
  let order = match edge_order with Some o -> o | None -> default_order q in
  if List.length order <> Array.length q.Query.edges then
    invalid_arg "Bj.run: order must cover every edge exactly once";
  let assignment = Array.make (Query.num_vertices q) (-1) in
  let matches = ref 0 in
  let intermediate = ref 0 in
  let expansions = ref 0 in
  let edges = Array.of_list (List.map (fun i -> q.Query.edges.(i)) order) in
  let n = Array.length edges in
  let rec step i =
    if i = n then begin
      incr matches;
      match limit with Some l when !matches >= l -> raise Limit_reached | _ -> ()
    end
    else begin
      let e = edges.(i) in
      let bs = assignment.(e.src) >= 0 and bd = assignment.(e.dst) >= 0 in
      if bs && bd then begin
        (* Closing join: existence check. *)
        if Graph.has_edge g assignment.(e.src) assignment.(e.dst) ~elabel:e.label then begin
          incr intermediate;
          step (i + 1)
        end
      end
      else if bs then begin
        let arr, lo, hi =
          Graph.neighbours g Graph.Fwd assignment.(e.src) ~elabel:e.label
            ~nlabel:(Query.vlabel q e.dst)
        in
        expansions := !expansions + (hi - lo);
        for j = lo to hi - 1 do
          assignment.(e.dst) <- Gf_util.Buf.unsafe_get arr j;
          incr intermediate;
          step (i + 1)
        done;
        assignment.(e.dst) <- -1
      end
      else if bd then begin
        let arr, lo, hi =
          Graph.neighbours g Graph.Bwd assignment.(e.dst) ~elabel:e.label
            ~nlabel:(Query.vlabel q e.src)
        in
        expansions := !expansions + (hi - lo);
        for j = lo to hi - 1 do
          assignment.(e.src) <- Gf_util.Buf.unsafe_get arr j;
          incr intermediate;
          step (i + 1)
        done;
        assignment.(e.src) <- -1
      end
      else begin
        (* Disconnected prefix: scan the edge (Cartesian with the prefix). *)
        Graph.iter_edges g ~elabel:e.label ~slabel:(Query.vlabel q e.src)
          ~dlabel:(Query.vlabel q e.dst) (fun u v ->
            assignment.(e.src) <- u;
            assignment.(e.dst) <- v;
            incr intermediate;
            step (i + 1));
        assignment.(e.src) <- -1;
        assignment.(e.dst) <- -1
      end
    end
  in
  (try step 0 with Limit_reached -> ());
  { matches = !matches; intermediate = !intermediate; expansions = !expansions }

let count ?edge_order g q = (run ?edge_order g q).matches

let all_edge_orders ?(max_orders = 5000) q =
  let n = Array.length q.Query.edges in
  let acc = ref [] in
  let count = ref 0 in
  let used = Array.make n false in
  let exception Done in
  let rec go depth bound prefix =
    if !count >= max_orders then raise Done;
    if depth = n then begin
      acc := List.rev prefix :: !acc;
      incr count
    end
    else
      for i = 0 to n - 1 do
        if not used.(i) then begin
          let e = q.Query.edges.(i) in
          let touches =
            depth = 0 || Bitset.mem e.src bound || Bitset.mem e.dst bound
          in
          if touches then begin
            used.(i) <- true;
            go (depth + 1) (Bitset.add e.src (Bitset.add e.dst bound)) (i :: prefix);
            used.(i) <- false
          end
        end
      done
  in
  (try go 0 Bitset.empty [] with Done -> ());
  List.rev !acc
