(** A small openCypher-style frontend (the Graphflow system of Section 7
    "supports a subset of the Cypher language"; this module accepts the
    corresponding MATCH pattern fragment).

    Grammar (whitespace-insensitive):
    {v
    query    := 'MATCH' pattern (',' pattern)*
    pattern  := node (edge node)*
    node     := '(' name? (':' label)? ')'
    edge     := '-' ('[' (':' type)? ']')? '->'
              | '<-' ('[' (':' type)? ']')? '-'
    v}
    Vertex labels and edge types are written as integers (the storage layer
    is label-id based) or as names, which are interned in first-appearance
    order. Anonymous nodes [()] get fresh variables.

    Examples:
    - ["MATCH (a)-->(b), (b)-->(c), (a)-->(c)"] — the asymmetric triangle;
    - ["MATCH (a:0)-[:1]->(b)<-[:1]-(c)"] — labeled, with a reversed edge;
    - ["MATCH (a)-->(b)-->(c)-->(a)"] — a directed 3-cycle as one chain. *)

(** [parse_result s] returns the query and the variable table
    (name -> vertex id), or a structured {!Parse_error.t} whose [pos] is
    the byte offset of the offending token. *)
val parse_result : string -> (Query.t * (string * int) list, Parse_error.t) result

(** [parse s] is {!parse_result} raising [Failure] with the formatted
    message on error (the original API, kept for convenience). *)
val parse : string -> Query.t * (string * int) list
