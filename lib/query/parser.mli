(** A tiny textual pattern language for queries.

    Grammar (whitespace-insensitive):
    {v
    query := item (',' item)*
    item  := name ':' int            vertex label declaration
           | name '->' name tag?     directed query edge
    tag   := '@' int                 edge label (default 0)
    v}
    Vertex names are bound to indices 0, 1, ... in order of first
    appearance. Example: ["a1->a2, a2->a3, a1->a3"] is the asymmetric
    triangle; ["u:1, u->v@2"] labels vertex [u] with 1 and the edge with 2. *)

(** [parse_result s] parses, reporting syntax errors, duplicate edges and
    unconnected queries as a structured {!Parse_error.t} with the byte
    offset of the offending item. *)
val parse_result : string -> (Query.t, Parse_error.t) result

(** [parse s] is {!parse_result} raising [Failure] with the formatted
    message on error (the original API, kept for convenience). *)
val parse : string -> Query.t
