(** Structured parse errors shared by the pattern-DSL ({!Parser}) and the
    Cypher ({!Cypher}) frontends. *)

type t = {
  message : string;  (** what went wrong *)
  input : string;  (** the full input being parsed *)
  pos : int;  (** byte offset into [input] where the error was detected *)
}

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Internal unwinding exception used by the parsers; the [_result] entry
    points never let it escape. *)
exception Error of t

(** [fail ~input ~pos msg] raises {!Error}. *)
val fail : input:string -> pos:int -> string -> 'a
