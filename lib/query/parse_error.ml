type t = { message : string; input : string; pos : int }

let to_string e =
  Printf.sprintf "%s at offset %d (in %S)" e.message e.pos e.input

let pp fmt e = Format.pp_print_string fmt (to_string e)

exception Error of t

let fail ~input ~pos message = raise (Error { message; input; pos })
