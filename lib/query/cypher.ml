(* Recursive-descent parser for the MATCH pattern fragment. *)

type token =
  | Match
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Colon
  | Comma
  | Dash (* - *)
  | Arrow_right (* -> *)
  | Arrow_left (* <- *)
  | Ident of string

(* Tokens carry the byte offset they start at, for error reporting. *)
let tokenize s =
  let fail ~pos msg = Parse_error.fail ~input:s ~pos msg in
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  let push t = tokens := (t, !i) :: !tokens in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' then incr i
    else if c = '(' then (push Lparen; incr i)
    else if c = ')' then (push Rparen; incr i)
    else if c = '[' then (push Lbracket; incr i)
    else if c = ']' then (push Rbracket; incr i)
    else if c = ':' then (push Colon; incr i)
    else if c = ',' then (push Comma; incr i)
    else if c = '-' then begin
      if !i + 1 < n && s.[!i + 1] = '>' then (push Arrow_right; i := !i + 2)
      else (push Dash; incr i)
    end
    else if c = '<' then begin
      if !i + 1 < n && s.[!i + 1] = '-' then (push Arrow_left; i := !i + 2)
      else fail ~pos:!i "stray '<'"
    end
    else if is_ident c then begin
      let j = ref !i in
      while !j < n && is_ident s.[!j] do
        incr j
      done;
      let word = String.sub s !i (!j - !i) in
      if String.uppercase_ascii word = "MATCH" then push Match else push (Ident word);
      i := !j
    end
    else fail ~pos:!i (Printf.sprintf "unexpected character %c" c)
  done;
  List.rev !tokens

type intern = { table : (string, int) Hashtbl.t; mutable next : int }

let intern t name =
  match Hashtbl.find_opt t.table name with
  | Some i -> i
  | None ->
      let i = t.next in
      t.next <- t.next + 1;
      Hashtbl.replace t.table name i;
      i

let parse_exn s =
  let fail ~pos msg = Parse_error.fail ~input:s ~pos msg in
  let tokens = ref (tokenize s) in
  let pos_of () = match !tokens with (_, p) :: _ -> p | [] -> String.length s in
  let peek () = match !tokens with (t, _) :: _ -> Some t | [] -> None in
  let next () =
    match !tokens with
    | (t, _) :: rest ->
        tokens := rest;
        t
    | [] -> fail ~pos:(String.length s) "unexpected end of input"
  in
  let expect t what =
    let p = pos_of () in
    if next () <> t then fail ~pos:p ("expected " ^ what)
  in
  let vars = { table = Hashtbl.create 8; next = 0 } in
  let labels = { table = Hashtbl.create 8; next = 0 } in
  let etypes = { table = Hashtbl.create 8; next = 0 } in
  let anon = ref 0 in
  let vlabels = Hashtbl.create 8 in
  let edges = ref [] in
  (* A label token is an integer (used directly) or a name (interned). *)
  let label_id ~pos pool = function
    | Ident w -> (
        match int_of_string_opt w with Some i when i >= 0 -> i | _ -> intern pool w)
    | _ -> fail ~pos "expected a label"
  in
  let next_label pool =
    let p = pos_of () in
    label_id ~pos:p pool (next ())
  in
  let parse_node () =
    expect Lparen "'('";
    let name =
      match peek () with
      | Some (Ident w) ->
          ignore (next ());
          w
      | _ ->
          incr anon;
          Printf.sprintf "$anon%d" !anon
    in
    let v = intern vars name in
    (match peek () with
    | Some Colon ->
        ignore (next ());
        Hashtbl.replace vlabels v (next_label labels)
    | _ -> ());
    expect Rparen "')'";
    v
  in
  (* edge := '-' ('[' ... ']')? '->'   |   '<-' ('[' ... ']')? '-' *)
  let parse_edge () =
    let bracket_type () =
      match peek () with
      | Some Lbracket ->
          ignore (next ());
          let t =
            match peek () with
            | Some Colon ->
                ignore (next ());
                next_label etypes
            | _ -> 0
          in
          expect Rbracket "']'";
          t
      | _ -> 0
    in
    let p = pos_of () in
    match next () with
    | Dash ->
        let t = bracket_type () in
        let p2 = pos_of () in
        (match next () with
        | Arrow_right -> `Out t
        | Dash -> fail ~pos:p2 "undirected edges are not supported; use -> or <-"
        | _ -> fail ~pos:p2 "expected '->'")
    | Arrow_right ->
        (* '-[..]->' tokenizes Dash then Arrow_right; bare '-->' tokenizes
           Dash Dash '>'... handled by Dash branch; a direct Arrow_right
           means '->' with no dash: accept as forward edge. *)
        `Out 0
    | Arrow_left ->
        let t = bracket_type () in
        expect Dash "'-'";
        `In t
    | _ -> fail ~pos:p "expected an edge"
  in
  let parse_pattern () =
    let v = ref (parse_node ()) in
    let rec chain () =
      match peek () with
      | Some (Dash | Arrow_left | Arrow_right) ->
          let e = parse_edge () in
          let w = parse_node () in
          (match e with
          | `Out t -> edges := (!v, w, t) :: !edges
          | `In t -> edges := (w, !v, t) :: !edges);
          v := w;
          chain ()
      | _ -> ()
    in
    chain ()
  in
  (match peek () with Some Match -> ignore (next ()) | _ -> ());
  parse_pattern ();
  let rec more () =
    match peek () with
    | Some Comma ->
        ignore (next ());
        (match peek () with Some Match -> ignore (next ()) | _ -> ());
        parse_pattern ();
        more ()
    | Some t ->
        ignore t;
        fail ~pos:(pos_of ()) "trailing tokens"
    | None -> ()
  in
  more ();
  let n = vars.next in
  if n = 0 then fail ~pos:0 "no vertices";
  let vl = Array.init n (fun i -> Option.value ~default:0 (Hashtbl.find_opt vlabels i)) in
  let q =
    try
      Query.create ~num_vertices:n ~vlabels:vl
        ~edges:
          (Array.of_list
             (List.rev_map (fun (a, b, t) -> Query.{ src = a; dst = b; label = t }) !edges))
        ()
    with Invalid_argument m -> fail ~pos:0 m
  in
  if not (Query.is_connected q) then fail ~pos:0 "pattern is not connected";
  let table = Hashtbl.fold (fun k v acc -> (k, v) :: acc) vars.table [] in
  (q, List.sort (fun (_, a) (_, b) -> compare a b) table)

let parse_result s =
  match parse_exn s with
  | r -> Ok r
  | exception Parse_error.Error e -> Error e

let parse s =
  match parse_result s with
  | Ok r -> r
  | Error e -> failwith ("Cypher parse error: " ^ Parse_error.to_string e)
