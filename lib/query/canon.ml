let encode_under q mark perm =
  (* perm.(i) = canonical position of original vertex i. *)
  let n = Query.num_vertices q in
  let vl = Array.make n 0 in
  for i = 0 to n - 1 do
    vl.(perm.(i)) <- Query.vlabel q i
  done;
  let edges =
    Array.to_list q.Query.edges
    |> List.map (fun e -> (perm.(e.Query.src), perm.(e.Query.dst), e.Query.label))
    |> List.sort compare
  in
  let buf = Buffer.create 64 in
  Buffer.add_string buf (string_of_int n);
  Buffer.add_char buf '|';
  Array.iter
    (fun l ->
      Buffer.add_string buf (string_of_int l);
      Buffer.add_char buf ',')
    vl;
  (match mark with
  | None -> Buffer.add_string buf "|-"
  | Some m ->
      Buffer.add_char buf '|';
      Buffer.add_string buf (string_of_int perm.(m)));
  List.iter
    (fun (s, d, l) -> Buffer.add_string buf (Printf.sprintf "|%d>%d@%d" s d l))
    edges;
  Buffer.contents buf

let rec perms_of = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (perms_of rest))
        l

let max_exact = 8

let identity n = Array.init n (fun i -> i)

let compute ?mark q =
  let n = Query.num_vertices q in
  if n > max_exact then
    (* Too many vertices for the factorial search: fall back to the exact
       structural encoding under the identity numbering.  The "#" prefix
       keeps fallback codes disjoint from true canonical codes, so equal
       codes still imply isomorphic queries (here: identical queries) —
       the fallback only loses hits for isomorphs submitted with a
       different vertex numbering, it can never alias distinct shapes. *)
    let perm = identity n in
    ("#" ^ encode_under q mark perm, perm)
  else begin
    let best = ref None in
    List.iter
      (fun p ->
        (* p as list: position i holds original vertex p_i; invert it. *)
        let perm = Array.make n 0 in
        List.iteri (fun pos orig -> perm.(orig) <- pos) p;
        let s = encode_under q mark perm in
        match !best with
        | Some (bs, _) when bs <= s -> ()
        | _ -> best := Some (s, perm))
      (perms_of (List.init n (fun i -> i)));
    match !best with Some r -> r | None -> assert false
  end

(* Canonicalization is O(n!) for n = 8; callers (the catalogue on every
   estimate, the plan cache on every lookup) hit the same handful of query
   values over and over, so memoize by structural (query, mark) key.  The
   table is process-global and bounded; it is cleared wholesale when it
   grows past [memo_cap] (distinct templates are few in practice).  A
   mutex guards it because service workers canonicalize concurrently. *)
let memo : (Query.t * int option, string * int array) Hashtbl.t = Hashtbl.create 64
let memo_cap = 4096
let memo_lock = Mutex.create ()

let code ?mark q =
  let key = (q, mark) in
  Mutex.lock memo_lock;
  match Hashtbl.find_opt memo key with
  | Some r ->
      Mutex.unlock memo_lock;
      r
  | None ->
      Mutex.unlock memo_lock;
      let r = compute ?mark q in
      Mutex.lock memo_lock;
      if Hashtbl.length memo >= memo_cap then Hashtbl.reset memo;
      Hashtbl.replace memo key r;
      Mutex.unlock memo_lock;
      r

let iso ?mark1 ?mark2 q1 q2 =
  Query.num_vertices q1 = Query.num_vertices q2
  && Query.num_edges q1 = Query.num_edges q2
  && fst (code ?mark:mark1 q1) = fst (code ?mark:mark2 q2)
