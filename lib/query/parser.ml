let is_space c = c = ' ' || c = '\t' || c = '\n'

(* Split on ',', keeping the byte offset of each trimmed item. *)
let split_items s =
  let n = String.length s in
  let items = ref [] in
  let start = ref 0 in
  for i = 0 to n do
    if i = n || s.[i] = ',' then begin
      let lo = ref !start and hi = ref i in
      while !lo < !hi && is_space s.[!lo] do
        incr lo
      done;
      while !hi > !lo && is_space s.[!hi - 1] do
        decr hi
      done;
      if !hi > !lo then items := (!lo, String.sub s !lo (!hi - !lo)) :: !items;
      start := i + 1
    end
  done;
  List.rev !items

let parse_exn s =
  let fail ~pos msg = Parse_error.fail ~input:s ~pos msg in
  let items = split_items s in
  if items = [] then fail ~pos:0 "empty query";
  let names = Hashtbl.create 8 in
  let next = ref 0 in
  let vertex ~pos name =
    if name = "" then fail ~pos "empty vertex name";
    String.iter
      (fun c ->
        if not ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_')
        then fail ~pos ("bad vertex name " ^ name))
      name;
    match Hashtbl.find_opt names name with
    | Some i -> i
    | None ->
        let i = !next in
        incr next;
        Hashtbl.replace names name i;
        i
  in
  let vlabels = Hashtbl.create 8 in
  let edges = ref [] in
  let parse_int ~pos what str =
    match int_of_string_opt (String.trim str) with
    | Some i when i >= 0 -> i
    | _ -> fail ~pos ("bad " ^ what ^ " " ^ str)
  in
  List.iter
    (fun (off, item) ->
      match String.index_opt item '>' with
      | Some gt when gt > 0 && item.[gt - 1] = '-' ->
          let lhs = String.trim (String.sub item 0 (gt - 1)) in
          let rhs = String.trim (String.sub item (gt + 1) (String.length item - gt - 1)) in
          let rhs_name, elabel =
            match String.index_opt rhs '@' with
            | None -> (rhs, 0)
            | Some at ->
                ( String.trim (String.sub rhs 0 at),
                  parse_int ~pos:(off + gt) "edge label"
                    (String.sub rhs (at + 1) (String.length rhs - at - 1)) )
          in
          let u = vertex ~pos:off lhs and v = vertex ~pos:(off + gt + 1) rhs_name in
          edges := Query.{ src = u; dst = v; label = elabel } :: !edges
      | _ -> (
          match String.index_opt item ':' with
          | Some colon ->
              let name = String.trim (String.sub item 0 colon) in
              let l =
                parse_int ~pos:(off + colon) "vertex label"
                  (String.sub item (colon + 1) (String.length item - colon - 1))
              in
              Hashtbl.replace vlabels (vertex ~pos:off name) l
          | None -> fail ~pos:off ("expected edge or label declaration, got " ^ item)))
    items;
  let n = !next in
  if n = 0 then fail ~pos:0 "no vertices";
  let vl = Array.init n (fun i -> Option.value ~default:0 (Hashtbl.find_opt vlabels i)) in
  let q =
    try Query.create ~num_vertices:n ~vlabels:vl ~edges:(Array.of_list (List.rev !edges)) ()
    with Invalid_argument m -> fail ~pos:0 m
  in
  if not (Query.is_connected q) then fail ~pos:0 "query is not connected";
  q

let parse_result s =
  match parse_exn s with
  | q -> Ok q
  | exception Parse_error.Error e -> Error e

let parse s =
  match parse_result s with
  | Ok q -> q
  | Error e -> failwith ("Query parse error: " ^ Parse_error.to_string e)
