(** Canonical codes for small query patterns.

    The subgraph catalogue (Section 5) keys its entries by pattern shape:
    two extensions with isomorphic labeled sub-queries (and the same new
    vertex) must share an entry. [code] computes, by brute force over vertex
    permutations, a canonical string for a query, optionally distinguishing
    one vertex (the "new" vertex of an extension). Practical pattern sizes
    are <= h + 1 <= 5 vertices; anything up to [max_exact] = 8 uses the
    exact factorial search.

    Codes are memoized per (query value, mark) in a bounded process-global
    table, so repeated canonicalization of the same template (the plan
    cache's lookup path, the catalogue's estimate path) costs a hash lookup
    rather than an O(n!) search. The table is thread-safe. *)

(** Largest vertex count canonicalized exactly (by permutation search). *)
val max_exact : int

(** [code ?mark q] is [(canonical_string, perm)] where [perm.(i)] is the
    canonical position of original vertex [i]. When [mark] is given, that
    vertex is distinguished so it always occupies a fixed role in the code.

    For patterns with more than [max_exact] vertices the factorial search
    is infeasible; [code] degrades to a structural fallback: the exact
    encoding under the identity numbering, prefixed with ["#"] so it can
    never collide with a true canonical code. Equal codes always imply
    isomorphic queries; beyond [max_exact] vertices, isomorphic queries
    submitted with different vertex numberings get different codes (a
    cache using the code as key merely misses — it never aliases). *)
val code : ?mark:int -> Query.t -> string * int array

(** [iso ?mark1 ?mark2 q1 q2] tests labeled isomorphism (respecting marks).
    Beyond [max_exact] vertices this degrades to structural equality under
    the given numbering: it may report [false] for renumbered isomorphs,
    never [true] for non-isomorphs. *)
val iso : ?mark1:int -> ?mark2:int -> Query.t -> Query.t -> bool
