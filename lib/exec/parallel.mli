(** Morsel-driven work-stealing parallel execution (Section 7).

    Each OCaml domain ("worker" in the paper) owns a deque of morsels. A
    morsel is either a range of the driving SCAN's source vertices or a batch
    of materialized partial matches from the first E/I level above that scan.
    Workers pop their own deque LIFO; when it runs dry they steal the oldest
    morsel from a victim's deque, so a skewed high-degree source vertex no
    longer serializes a whole chunk on one worker: the partial matches it
    fans out into are batched, pushed, and stolen like any other work.

    HASH-JOIN build sides are executed exactly once, before the workers
    start: each build runs in parallel (domains pull scan chunks into
    per-domain partial tables, merged into one shared table), and every
    domain then probes the frozen table read-only through its own row view.
    Build tuples are therefore counted once, not once per domain.

    The full sequential feature set is supported: [distinct], [leapfrog],
    [limit] (an atomic output claim through the governor — exactly
    [min limit total] tuples are emitted), and [sink] (invoked under a
    mutex, so any closure is safe; tuples are reused buffers, copy to
    retain). The graph and tables are immutable and shared; counters are
    per-domain and merged, with [morsels], [steals] and [busy_s] recording
    how the load actually spread.

    Every run executes under one shared {!Governor}: any domain tripping a
    budget (deadline, output/intermediate cap, byte cap), failing, or being
    {!Governor.cancel}led stops every other domain within one governor
    check cadence — once per morsel at the outside, usually within a few
    hundred tuples. Workers never let an exception escape the domain
    (no leaked siblings on [Domain.join]); sink exceptions and operator
    faults surface as [Failed] in the report's [outcome], and the sink
    mutex is released on every unwind path. *)

type report = {
  counters : Counters.t;  (** merged across domains, plus the build phase once *)
  per_domain : Counters.t array;
      (** per-domain execution counters — [busy_s] max/min is the imbalance
          signal, [steals] how much rebalancing happened *)
  per_domain_output : int array;  (** work division across domains *)
  outcome : Governor.outcome;  (** how the run ended; partial counters kept *)
}

(** [run ~domains g plan] executes with that many domains. [chunk] is the
    number of driving-scan source vertices per range morsel; [batch] the
    number of partial matches per stealable batch morsel. [budget]/[fault]
    create the query's governor; [gov] supplies one built externally (for
    cross-thread {!Governor.cancel}) and overrides both. [limit] tightens
    the budget's output cap.

    [prof] collects a per-operator profile: each domain records into a
    {!Profile.fresh} copy (same operator-id space) and the copies are
    merged into [prof] after the domains join — counter columns are
    exact, per-operator time sums CPU time across domains. Build-phase
    work is profiled once, like its counters.

    [trace] opts the run into span tracing: a coordinator buffer (tid 9)
    records the table-build and run phases, each domain records its own
    buffer (tid 10+wid) with a [worker] root span, per-morsel spans and
    steal markers, and a merged per-operator summary track (tid 100) is
    synthesized from the profile after the domains join. Domains never
    share a recording buffer, so tracing adds no cross-domain contention;
    a traced run is implicitly profiled. *)
val run :
  ?domains:int ->
  ?cache:bool ->
  ?distinct:bool ->
  ?leapfrog:bool ->
  ?limit:int ->
  ?budget:Governor.budget ->
  ?fault:Governor.fault ->
  ?gov:Governor.t ->
  ?prof:Profile.t ->
  ?trace:Gf_obs.Trace.t ->
  ?sink:(int array -> unit) ->
  ?chunk:int ->
  ?batch:int ->
  Gf_graph.Graph.t ->
  Gf_plan.Plan.t ->
  report

(** [count ~domains g plan] is the parallel match count. *)
val count :
  ?domains:int ->
  ?cache:bool ->
  ?distinct:bool ->
  ?leapfrog:bool ->
  ?limit:int ->
  Gf_graph.Graph.t ->
  Gf_plan.Plan.t ->
  int

(** [run_chunked ~domains g plan] is the previous static scheme, kept as the
    Figure 11 A/B baseline: every domain compiles the full plan (hash-join
    builds re-executed per domain!) and pulls fixed chunks of the driving
    scan from one shared atomic counter. Counting only — no [distinct],
    [leapfrog], [limit] or [sink]. Its [busy_s] is each worker's total wall
    time, directly comparable with the morsel executor's. *)
val run_chunked :
  ?domains:int -> ?cache:bool -> ?chunk:int -> Gf_graph.Graph.t -> Gf_plan.Plan.t -> report
