(* A tiny process-global metrics registry with Prometheus-style text
   exposition. Counters are atomic (domains increment them concurrently);
   the registry itself is mutex-guarded and creation is idempotent by
   metric name. *)

type counter = { c_name : string; c_help : string; value : int Atomic.t }

(* Log-bucketed histogram: bucket [i] counts observations <= le.(i); the
   last implicit bucket is +Inf. Sums are stored as nano-units in an
   atomic int so observation needs no lock; nanoseconds rather than
   microseconds because sub-µs operator timings would otherwise truncate
   to zero and drift [_sum] low. 63-bit ns still covers ~292 years. *)
type histogram = {
  h_name : string;
  h_help : string;
  le : float array;
  buckets : int Atomic.t array;
  inf : int Atomic.t;
  sum_ns : int Atomic.t;
  count : int Atomic.t;
}

type metric = Counter of counter | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 16
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter ?(help = "") name =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Counter c) -> c
      | Some (Histogram _) -> invalid_arg ("Metrics.counter: " ^ name ^ " is a histogram")
      | None ->
          let c = { c_name = name; c_help = help; value = Atomic.make 0 } in
          Hashtbl.replace registry name (Counter c);
          c)

(* Default latency buckets: 1 µs to ~134 s, doubling. *)
let default_buckets = Array.init 28 (fun i -> 1e-6 *. Float.of_int (1 lsl i))

let histogram ?(help = "") ?(buckets = default_buckets) name =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Histogram h) -> h
      | Some (Counter _) -> invalid_arg ("Metrics.histogram: " ^ name ^ " is a counter")
      | None ->
          let h =
            {
              h_name = name;
              h_help = help;
              le = buckets;
              buckets = Array.map (fun _ -> Atomic.make 0) buckets;
              inf = Atomic.make 0;
              sum_ns = Atomic.make 0;
              count = Atomic.make 0;
            }
          in
          Hashtbl.replace registry name (Histogram h);
          h)

let inc ?(by = 1) c = ignore (Atomic.fetch_and_add c.value by)
let counter_value c = Atomic.get c.value

let observe h v =
  let n = Array.length h.le in
  let rec find i = if i >= n then None else if v <= h.le.(i) then Some i else find (i + 1) in
  (match find 0 with
  | Some i -> ignore (Atomic.fetch_and_add h.buckets.(i) 1)
  | None -> ignore (Atomic.fetch_and_add h.inf 1));
  ignore (Atomic.fetch_and_add h.sum_ns (int_of_float (Float.round (v *. 1e9))));
  ignore (Atomic.fetch_and_add h.count 1)

let histogram_count h = Atomic.get h.count
let histogram_sum h = float_of_int (Atomic.get h.sum_ns) /. 1e9

(* Quantile estimate by linear interpolation inside the log buckets: find
   the bucket where the cumulative count crosses [p * count], then place
   the value proportionally between the bucket's bounds. Coarse (buckets
   double), but monotone and good enough for slowlog p50/p95/p99. *)
let quantile h p =
  let count = Atomic.get h.count in
  if count = 0 then Float.nan
  else
    let p = Float.min 1.0 (Float.max 0.0 p) in
    let target = p *. float_of_int count in
    let n = Array.length h.le in
    let rec walk i cum =
      if i >= n then
        (* Target falls in the +Inf bucket: no upper bound to interpolate
           against, report the last finite boundary. *)
        if n = 0 then Float.nan else h.le.(n - 1)
      else
        let c = cum + Atomic.get h.buckets.(i) in
        if float_of_int c >= target && c > cum then
          let lo = if i = 0 then 0.0 else h.le.(i - 1) in
          let hi = h.le.(i) in
          let frac = (target -. float_of_int cum) /. float_of_int (c - cum) in
          lo +. (frac *. (hi -. lo))
        else walk (i + 1) c
    in
    walk 0 0

let reset () = with_lock (fun () -> Hashtbl.reset registry)

let exposition () =
  let buf = Buffer.create 1024 in
  let metrics =
    with_lock (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry [])
  in
  let name_of = function Counter c -> c.c_name | Histogram h -> h.h_name in
  List.sort (fun a b -> compare (name_of a) (name_of b)) metrics
  |> List.iter (fun m ->
         match m with
         | Counter c ->
             if c.c_help <> "" then
               Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" c.c_name c.c_help);
             Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" c.c_name);
             Buffer.add_string buf (Printf.sprintf "%s %d\n" c.c_name (Atomic.get c.value))
         | Histogram h ->
             if h.h_help <> "" then
               Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" h.h_name h.h_help);
             Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" h.h_name);
             (* Prometheus buckets are cumulative. *)
             let cum = ref 0 in
             Array.iteri
               (fun i le ->
                 cum := !cum + Atomic.get h.buckets.(i);
                 Buffer.add_string buf
                   (Printf.sprintf "%s_bucket{le=\"%g\"} %d\n" h.h_name le !cum))
               h.le;
             cum := !cum + Atomic.get h.inf;
             Buffer.add_string buf
               (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" h.h_name !cum);
             Buffer.add_string buf
               (Printf.sprintf "%s_sum %g\n" h.h_name
                  (float_of_int (Atomic.get h.sum_ns) /. 1e9));
             Buffer.add_string buf
               (Printf.sprintf "%s_count %d\n" h.h_name (Atomic.get h.count)));
  Buffer.contents buf
