(* A tiny process-global metrics registry with Prometheus-style text
   exposition. Counters are atomic (domains increment them concurrently);
   the registry itself is mutex-guarded and creation is idempotent by
   metric name + label set. *)

type counter = {
  c_name : string;
  c_help : string;
  c_labels : (string * string) list;
  value : int Atomic.t;
}

(* Log-bucketed histogram: bucket [i] counts observations <= le.(i); the
   last implicit bucket is +Inf. Sums are stored as nano-units in an
   atomic int so observation needs no lock; nanoseconds rather than
   microseconds because sub-µs operator timings would otherwise truncate
   to zero and drift [_sum] low. 63-bit ns still covers ~292 years. *)
type histogram = {
  h_name : string;
  h_help : string;
  h_labels : (string * string) list;
  le : float array;
  buckets : int Atomic.t array;
  inf : int Atomic.t;
  sum_ns : int Atomic.t;
  count : int Atomic.t;
}

type metric = Counter of counter | Histogram of histogram

(* Prometheus label values may contain anything; the exposition format
   escapes backslash, double-quote and newline. *)
let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | ls ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) ls)
      ^ "}"

(* Registry key: base name plus canonically ordered labels, so the same
   (name, labels) pair always lands on the same cells while differently
   labelled series of one family coexist. *)
let series_key name labels = name ^ render_labels (List.sort compare labels)

let registry : (string, metric) Hashtbl.t = Hashtbl.create 16
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter ?(help = "") ?(labels = []) name =
  let labels = List.sort compare labels in
  let key = series_key name labels in
  with_lock (fun () ->
      match Hashtbl.find_opt registry key with
      | Some (Counter c) -> c
      | Some (Histogram _) -> invalid_arg ("Metrics.counter: " ^ key ^ " is a histogram")
      | None ->
          let c = { c_name = name; c_help = help; c_labels = labels; value = Atomic.make 0 } in
          Hashtbl.replace registry key (Counter c);
          c)

(* Default latency buckets: 1 µs to ~134 s, doubling. *)
let default_buckets = Array.init 28 (fun i -> 1e-6 *. Float.of_int (1 lsl i))

let histogram ?(help = "") ?(buckets = default_buckets) ?(labels = []) name =
  let labels = List.sort compare labels in
  let key = series_key name labels in
  with_lock (fun () ->
      match Hashtbl.find_opt registry key with
      | Some (Histogram h) -> h
      | Some (Counter _) -> invalid_arg ("Metrics.histogram: " ^ key ^ " is a counter")
      | None ->
          let h =
            {
              h_name = name;
              h_help = help;
              h_labels = labels;
              le = buckets;
              buckets = Array.map (fun _ -> Atomic.make 0) buckets;
              inf = Atomic.make 0;
              sum_ns = Atomic.make 0;
              count = Atomic.make 0;
            }
          in
          Hashtbl.replace registry key (Histogram h);
          h)

let inc ?(by = 1) c = ignore (Atomic.fetch_and_add c.value by)
let counter_value c = Atomic.get c.value

let observe h v =
  let n = Array.length h.le in
  let rec find i = if i >= n then None else if v <= h.le.(i) then Some i else find (i + 1) in
  (match find 0 with
  | Some i -> ignore (Atomic.fetch_and_add h.buckets.(i) 1)
  | None -> ignore (Atomic.fetch_and_add h.inf 1));
  ignore (Atomic.fetch_and_add h.sum_ns (int_of_float (Float.round (v *. 1e9))));
  ignore (Atomic.fetch_and_add h.count 1)

let histogram_count h = Atomic.get h.count
let histogram_sum h = float_of_int (Atomic.get h.sum_ns) /. 1e9

(* Quantile estimate by linear interpolation inside the log buckets: find
   the bucket where the cumulative count crosses [p * count], then place
   the value proportionally between the bucket's bounds. Coarse (buckets
   double), but monotone and good enough for slowlog p50/p95/p99. *)
let quantile h p =
  let count = Atomic.get h.count in
  if count = 0 then Float.nan
  else
    let p = Float.min 1.0 (Float.max 0.0 p) in
    let target = p *. float_of_int count in
    let n = Array.length h.le in
    let rec walk i cum =
      if i >= n then
        (* Target falls in the +Inf bucket: no upper bound to interpolate
           against, report the last finite boundary. *)
        if n = 0 then Float.nan else h.le.(n - 1)
      else
        let c = cum + Atomic.get h.buckets.(i) in
        if float_of_int c >= target && c > cum then
          let lo = if i = 0 then 0.0 else h.le.(i - 1) in
          let hi = h.le.(i) in
          let frac = (target -. float_of_int cum) /. float_of_int (c - cum) in
          lo +. (frac *. (hi -. lo))
        else walk (i + 1) c
    in
    walk 0 0

let reset () = with_lock (fun () -> Hashtbl.reset registry)

let exposition () =
  let buf = Buffer.create 1024 in
  let metrics =
    with_lock (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry [])
  in
  let name_of = function Counter c -> c.c_name | Histogram h -> h.h_name in
  let labels_of = function Counter c -> c.c_labels | Histogram h -> h.h_labels in
  (* Sort by (family, labels) so all series of a family are contiguous:
     HELP/TYPE are emitted once per family, then one sample line per
     labelled series. *)
  let sorted =
    List.sort
      (fun a b ->
        match compare (name_of a) (name_of b) with
        | 0 -> compare (labels_of a) (labels_of b)
        | n -> n)
      metrics
  in
  let last_family = ref "" in
  List.iter
    (fun m ->
      let fam = name_of m in
      let header help kind =
        if fam <> !last_family then begin
          last_family := fam;
          if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" fam help);
          Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" fam kind)
        end
      in
      match m with
      | Counter c ->
          header c.c_help "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" c.c_name (render_labels c.c_labels)
               (Atomic.get c.value))
      | Histogram h ->
          header h.h_help "histogram";
          (* Prometheus buckets are cumulative; [le] joins the series'
             own labels inside one brace group. *)
          let bucket_labels le =
            render_labels (h.h_labels @ [ ("le", le) ])
          in
          let cum = ref 0 in
          Array.iteri
            (fun i le ->
              cum := !cum + Atomic.get h.buckets.(i);
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" h.h_name
                   (bucket_labels (Printf.sprintf "%g" le))
                   !cum))
            h.le;
          cum := !cum + Atomic.get h.inf;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" h.h_name (bucket_labels "+Inf") !cum);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %g\n" h.h_name (render_labels h.h_labels)
               (float_of_int (Atomic.get h.sum_ns) /. 1e9));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" h.h_name (render_labels h.h_labels)
               (Atomic.get h.count)))
    sorted;
  Buffer.contents buf
