module Graph = Gf_graph.Graph
module Plan = Gf_plan.Plan
module Int_vec = Gf_util.Int_vec
module Sorted = Gf_util.Sorted
module Trace = Gf_obs.Trace

type env = {
  g : Graph.t;
  cache : bool;
  distinct : bool;
  leapfrog : bool;
  c : Counters.t;
  gov : Governor.handle;
  prof : Profile.t option;
  trace : Trace.buf option;
}

type rewrite =
  (env -> Plan.t -> (int array -> unit) -> unit) ->
  env ->
  Plan.t ->
  ((int array -> unit) -> unit) option

let tuple_contains tuple len v =
  let rec go i = i < len && (tuple.(i) = v || go (i + 1)) in
  go 0

(* Deadline granularity inside one E/I intersection. [tick] fires per
   *produced* tuple, so an intersection over huge adjacency lists that emits
   few or no tuples used to run to completion — however long — before the
   governor could see a deadline. Two complementary fixes, both free for
   small intersections:

   - the lists' total length is charged as governor work up front
     ([Governor.tick_work], [work_grain] list entries = one tick), bounding
     the gap *between* expensive intersections;
   - an intersection whose smallest list is longer than [segment] elements
     is computed in [segment]-sized sub-slices of that list (the k-way
     intersection distributes over a partition of any one input), with a
     work charge between segments — bounding the uninterruptible stretch
     *inside* a single giant intersection. *)
let work_grain_shift = 8 (* 256 list entries ~ one produced-tuple tick *)
let segment = 8192

let governed_intersect env result slices ~scratch ~scratch2 =
  let nd = Array.length slices in
  let min_i = ref 0 and min_len = ref max_int and total = ref 0 in
  for i = 0 to nd - 1 do
    let l = Sorted.slice_len slices.(i) in
    total := !total + l;
    if l < !min_len then begin
      min_len := l;
      min_i := i
    end
  done;
  Governor.tick_work env.gov env.c (!total asr work_grain_shift);
  if !min_len <= segment then
    if env.leapfrog then Sorted.leapfrog result slices
    else Sorted.intersect ~scratch2 result slices ~scratch
  else begin
    (* A Trip between segments leaves [slices.(min_i)] narrowed, which is
       fine: the raise unwinds the whole run and the operator state dies
       with it. *)
    let segmented () =
      let arr, lo, hi = slices.(!min_i) in
      let seg_lo = ref lo in
      while !seg_lo < hi do
        let seg_hi = min hi (!seg_lo + segment) in
        slices.(!min_i) <- (arr, !seg_lo, seg_hi);
        if env.leapfrog then Sorted.leapfrog result slices
        else Sorted.intersect ~scratch2 result slices ~scratch;
        seg_lo := seg_hi;
        if !seg_lo < hi then Governor.tick_work env.gov env.c segment
      done;
      slices.(!min_i) <- (arr, lo, hi)
    in
    (* Only the giant (segmented) path gets a span: it is rare by
       construction, and it is exactly the case a timeline viewer needs to
       see — a single intersection long enough to stall a domain. *)
    match env.trace with
    | None -> segmented ()
    | Some tb ->
        Trace.span ~cat:"intersect"
          ~args:[ ("lists", Int nd); ("min_len", Int !min_len); ("icost", Int !total) ]
          tb "giant-intersect" segmented
  end

(* Compile [plan] into a driver function: [driver sink] runs the pipeline,
   passing each produced tuple (a reused buffer) to [sink]. [rewrite] lets a
   caller (the adaptive executor) take over compilation of chosen sub-plans;
   it receives the recursive compiler so intercepted segments can still
   compile their own children normally. *)
let rec compile_rw rewrite env plan =
  let driver =
    match rewrite (compile_rw rewrite) env plan with
    | Some driver -> driver
    | None -> compile_structural rewrite env plan
  in
  (* The profiling branch is taken here, once per operator at plan-compile
     time: with no profile the driver is returned untouched and the compiled
     pipeline is identical to an unprofiled build — zero per-tuple cost. *)
  match env.prof with
  | None -> driver
  | Some p -> (
      match Profile.id_of p plan with
      | None -> driver
      | Some id -> Profile.wrap p env.c id driver)

and compile_structural rewrite env plan =
  let compile env plan = compile_rw rewrite env plan in
  match plan with
  | Plan.Scan { edge; slabel; dlabel; _ } ->
      let buf = Array.make 2 0 in
      fun sink ->
        Graph.iter_edges env.g ~elabel:edge.Gf_query.Query.label ~slabel ~dlabel (fun u v ->
            buf.(0) <- u;
            buf.(1) <- v;
            env.c.produced <- env.c.produced + 1;
            Governor.tick env.gov env.c;
            sink buf)
  | Plan.Extend { child; target_label; descriptors; vars; _ } ->
      let child_driver = compile env child in
      let width = Array.length vars in
      let nd = Array.length descriptors in
      let buf = Array.make width 0 in
      if nd = 1 then begin
        (* Single descriptor: the extension set is the adjacency list itself;
           iterate it directly, no copy. Cache = remembering the source. *)
        let d = descriptors.(0) in
        let last_src = ref (-1) in
        fun sink ->
          last_src := -1;
          child_driver (fun t ->
              Array.blit t 0 buf 0 (width - 1);
              let src = t.(d.Plan.pos) in
              let arr, lo, hi =
                Graph.neighbours env.g d.Plan.dir src ~elabel:d.Plan.elabel
                  ~nlabel:target_label
              in
              if env.cache && src = !last_src then
                env.c.cache_hits <- env.c.cache_hits + 1
              else begin
                env.c.icost <- env.c.icost + (hi - lo);
                env.c.intersections <- env.c.intersections + 1;
                Governor.tick_work env.gov env.c ((hi - lo) asr work_grain_shift);
                last_src := src
              end;
              for i = lo to hi - 1 do
                let w = Gf_util.Buf.unsafe_get arr i in
                if not (env.distinct && tuple_contains buf (width - 1) w) then begin
                  buf.(width - 1) <- w;
                  env.c.produced <- env.c.produced + 1;
                  Governor.tick env.gov env.c;
                  sink buf
                end
              done)
      end
      else begin
        let slices = Array.make nd Sorted.empty_slice in
        let srcs = Array.make nd (-1) in
        let last_srcs = Array.make nd (-1) in
        let result = Int_vec.create ~capacity:64 () in
        let scratch = Int_vec.create ~capacity:64 () in
        let scratch2 = Int_vec.create ~capacity:64 () in
        let cache_valid = ref false in
        fun sink ->
          cache_valid := false;
          Array.fill last_srcs 0 nd (-1);
          child_driver (fun t ->
              Array.blit t 0 buf 0 (width - 1);
              let same = ref !cache_valid in
              for i = 0 to nd - 1 do
                let s = t.(descriptors.(i).Plan.pos) in
                srcs.(i) <- s;
                if s <> last_srcs.(i) then same := false
              done;
              if env.cache && !same then env.c.cache_hits <- env.c.cache_hits + 1
              else begin
                for i = 0 to nd - 1 do
                  let d = descriptors.(i) in
                  let slice =
                    Graph.neighbours env.g d.Plan.dir srcs.(i) ~elabel:d.Plan.elabel
                      ~nlabel:target_label
                  in
                  slices.(i) <- slice;
                  env.c.icost <- env.c.icost + Sorted.slice_len slice
                done;
                env.c.intersections <- env.c.intersections + 1;
                Int_vec.clear result;
                governed_intersect env result slices ~scratch ~scratch2;
                Array.blit srcs 0 last_srcs 0 nd;
                cache_valid := true
              end;
              let n = Int_vec.length result in
              for i = 0 to n - 1 do
                let w = Int_vec.unsafe_get result i in
                if not (env.distinct && tuple_contains buf (width - 1) w) then begin
                  buf.(width - 1) <- w;
                  env.c.produced <- env.c.produced + 1;
                  Governor.tick env.gov env.c;
                  sink buf
                end
              done)
      end
  | Plan.Hash_join
      { build; probe; build_key_pos; probe_key_pos; build_extra_pos; vars; _ } ->
      let build_driver = compile env build in
      let probe_driver = compile env probe in
      let key_len = Array.length build_key_pos in
      let brow_len = Array.length (Plan.vars build) in
      let pwidth = Array.length (Plan.vars probe) in
      let width = Array.length vars in
      let nextra = Array.length build_extra_pos in
      let buf = Array.make width 0 in
      let key_buf = Array.make key_len 0 in
      fun sink ->
        let table = Join_table.create ~key_len ~row_len:brow_len in
        let row_bytes = Join_table.bytes_per_row table in
        let build () =
          build_driver (fun t ->
              for i = 0 to key_len - 1 do
                key_buf.(i) <- t.(build_key_pos.(i))
              done;
              Join_table.add table key_buf t;
              env.c.hj_build_tuples <- env.c.hj_build_tuples + 1;
              Governor.add_bytes env.gov row_bytes;
              Governor.tick env.gov env.c)
        in
        (* Phase spans, not per-tuple spans: one build span and one probe
           span per hash-join execution keeps the traced hot path identical
           to the untraced one. *)
        (match env.trace with
        | None -> build ()
        | Some tb ->
            let before = env.c.hj_build_tuples in
            Trace.begin_span ~cat:"hash-join" tb "hj-build";
            Fun.protect
              ~finally:(fun () ->
                Trace.end_span ~args:[ ("rows", Int (env.c.hj_build_tuples - before)) ] tb)
              build;
            Trace.begin_span ~cat:"hash-join" tb "hj-probe");
        Fun.protect ~finally:(fun () ->
            match env.trace with
            | Some tb -> Trace.end_span ~args:[ ("probes", Int env.c.hj_probe_tuples) ] tb
            | None -> ())
        @@ fun () ->
        probe_driver (fun t ->
            env.c.hj_probe_tuples <- env.c.hj_probe_tuples + 1;
            Governor.tick env.gov env.c;
            for i = 0 to key_len - 1 do
              key_buf.(i) <- t.(probe_key_pos.(i))
            done;
            Array.blit t 0 buf 0 pwidth;
            Join_table.iter_matches table key_buf (fun row ->
                let ok = ref true in
                for i = 0 to nextra - 1 do
                  let v = row.(build_extra_pos.(i)) in
                  buf.(pwidth + i) <- v;
                  if env.distinct && tuple_contains buf pwidth v then ok := false
                done;
                (* Injectivity among the build-extra columns themselves. *)
                if !ok && env.distinct && nextra > 1 then begin
                  for i = 0 to nextra - 1 do
                    for j = i + 1 to nextra - 1 do
                      if buf.(pwidth + i) = buf.(pwidth + j) then ok := false
                    done
                  done
                end;
                if !ok then begin
                  env.c.produced <- env.c.produced + 1;
                  Governor.tick env.gov env.c;
                  sink buf
                end))

let no_rewrite _ _ _ = None

(* Synthesize one span per operator from a profile's self-times, packed
   sequentially on a dedicated "operators" track starting at [t0_us]. The
   real per-tuple boundary switching already lives in [Profile]; re-emitting
   it as spans per tuple would dominate the trace, so the timeline shows
   the per-operator totals instead — by construction their durations sum
   exactly to the profile's totals. *)
let emit_operator_track ?(tid = 100) ?(name = "operators") tr prof ~t0_us =
  let b = Trace.buffer ~name tr ~tid in
  let t = ref t0_us in
  Array.iter
    (fun (op : Profile.op) ->
      let dur = int_of_float (Float.round (op.time_s *. 1e6)) in
      Trace.add_complete ~cat:"operator"
        ~args:
          [
            ("kind", Trace.Str (Profile.kind_to_string op.kind));
            ("produced", Int op.produced);
            ("icost", Int op.icost);
            ("cache_hits", Int op.cache_hits);
            ("self_ms", Float (op.time_s *. 1e3));
          ]
        b ~name:op.label ~ts_us:!t ~dur_us:dur;
      t := !t + dur)
    (Profile.ops prof)

(* The governed core: every [run] variant funnels here. When no governor is
   supplied, [limit] becomes an output-cap budget — the old [Limit_reached]
   escape hatch is now an ordinary [Trip]. [trace] opts the run into span
   recording: the executor registers its own buffer (tid 1) on the trace,
   and a traced run is implicitly profiled so the operator summary track
   can be synthesized even when the caller asked for no profile. *)
let run_gov_rw ~rewrite ?(cache = true) ?(distinct = false) ?(leapfrog = false) ?limit
    ?gov ?prof ?trace ?(sink = fun _ -> ()) g plan =
  let shared =
    match gov with
    | Some t -> t
    | None -> Governor.create (Governor.budget ?max_output:limit ())
  in
  let h = Governor.handle shared in
  let c = Counters.create () in
  let prof = match (prof, trace) with None, Some _ -> Some (Profile.create plan) | _ -> prof in
  let tbuf = Option.map (fun tr -> Trace.buffer ~name:"exec" tr ~tid:1) trace in
  let env = { g; cache; distinct; leapfrog; c; gov = h; prof; trace = tbuf } in
  let driver = compile_rw rewrite env plan in
  let final t =
    Governor.claim_output h;
    c.output <- c.output + 1;
    sink t
  in
  let t0_us = Trace.now_us () in
  (match tbuf with Some b -> Trace.begin_span ~cat:"exec" b "execute" | None -> ());
  (match prof with Some p -> Profile.start p c | None -> ());
  (try driver final with Governor.Trip -> ());
  (* On a Trip the unwind skipped the trailing boundary switches; [finish]
     charges the outstanding deltas so truncated profiles stay consistent. *)
  (match prof with Some p -> Profile.finish p c | None -> ());
  (match tbuf with
  | Some b ->
      Trace.end_span ~args:[ ("output", Int c.output) ] b;
      Trace.close_all b
  | None -> ());
  (match (trace, prof) with
  | Some tr, Some p -> emit_operator_track tr p ~t0_us
  | _ -> ());
  Governor.finish h c;
  (c, Governor.outcome shared)

let run_rw ~rewrite ?cache ?distinct ?leapfrog ?limit ?gov ?prof ?sink g plan =
  fst (run_gov_rw ~rewrite ?cache ?distinct ?leapfrog ?limit ?gov ?prof ?sink g plan)

let run ?cache ?distinct ?leapfrog ?limit ?prof ?sink g plan =
  run_rw ~rewrite:no_rewrite ?cache ?distinct ?leapfrog ?limit ?prof ?sink g plan

let run_gov ?cache ?distinct ?leapfrog ?budget ?fault ?gov ?prof ?trace ?sink g plan =
  let gov =
    match gov with
    | Some t -> t
    | None -> Governor.create ?fault (Option.value budget ~default:Governor.unlimited)
  in
  run_gov_rw ~rewrite:no_rewrite ?cache ?distinct ?leapfrog ~gov ?prof ?trace ?sink g plan

let count ?cache ?distinct g plan =
  let c = run ?cache ?distinct g plan in
  c.Counters.output

let count_fast ?(cache = true) ?(distinct = false) ?(leapfrog = false) g plan =
  (* Distinct semantics need the final extensions enumerated (each candidate
     is checked against the bound prefix), so the factorized shortcut does
     not apply: fall back to the counting run rather than silently returning
     homomorphic counts. *)
  if distinct then count ~cache ~distinct:true g plan
  else
  match plan with
  | Plan.Extend { child; target_label; descriptors; _ } ->
      let c = Counters.create () in
      let gov = Governor.handle (Governor.create Governor.unlimited) in
      let env = { g; cache; distinct = false; leapfrog; c; gov; prof = None; trace = None } in
      let child_driver = compile_rw no_rewrite env child in
      let nd = Array.length descriptors in
      let total = ref 0 in
      if nd = 1 then begin
        let d = descriptors.(0) in
        let last_src = ref (-1) in
        let last_n = ref 0 in
        child_driver (fun t ->
            let src = t.(d.Plan.pos) in
            if cache && src = !last_src then c.Counters.cache_hits <- c.Counters.cache_hits + 1
            else begin
              let _, lo, hi =
                Graph.neighbours env.g d.Plan.dir src ~elabel:d.Plan.elabel ~nlabel:target_label
              in
              c.Counters.icost <- c.Counters.icost + (hi - lo);
              last_n := hi - lo;
              last_src := src
            end;
            total := !total + !last_n)
      end
      else begin
        let slices = Array.make nd Sorted.empty_slice in
        let srcs = Array.make nd (-1) in
        let last_srcs = Array.make nd (-1) in
        let result = Int_vec.create () and scratch = Int_vec.create () in
        let scratch2 = Int_vec.create () in
        let cache_valid = ref false in
        let last_n = ref 0 in
        child_driver (fun t ->
            let same = ref !cache_valid in
            for i = 0 to nd - 1 do
              let s = t.(descriptors.(i).Plan.pos) in
              srcs.(i) <- s;
              if s <> last_srcs.(i) then same := false
            done;
            if cache && !same then c.Counters.cache_hits <- c.Counters.cache_hits + 1
            else begin
              for i = 0 to nd - 1 do
                let d = descriptors.(i) in
                let slice =
                  Graph.neighbours env.g d.Plan.dir srcs.(i) ~elabel:d.Plan.elabel
                    ~nlabel:target_label
                in
                slices.(i) <- slice;
                c.Counters.icost <- c.Counters.icost + Sorted.slice_len slice
              done;
              Int_vec.clear result;
              governed_intersect env result slices ~scratch ~scratch2;
              last_n := Int_vec.length result;
              Array.blit srcs 0 last_srcs 0 nd;
              cache_valid := true
            end;
            total := !total + !last_n)
      end;
      !total
  | _ -> count ~cache g plan

let collect ?cache ?distinct g plan =
  let acc = ref [] in
  let (_ : Counters.t) = run ?cache ?distinct ~sink:(fun t -> acc := Array.copy t :: !acc) g plan in
  List.rev !acc

(* The SCAN that streams tuples into the root pipeline — same traversal as
   the parallel executor's morsel source, re-exported here so remote shards
   can carve the identical source space. *)
let rec driving_scan = function
  | Plan.Scan _ as s -> s
  | Plan.Extend { child; _ } -> driving_scan child
  | Plan.Hash_join { probe; _ } -> driving_scan probe

let num_scan_sources g plan =
  match driving_scan plan with
  | Plan.Scan { slabel; _ } -> Graph.num_with_label g slabel
  | _ -> assert false

let ranged_scan_rewrite plan ~lo ~hi : rewrite =
  let target = driving_scan plan in
  fun _recurse env node ->
    if node == target then
      match node with
      | Plan.Scan { edge; slabel; dlabel; _ } ->
          let buf = Array.make 2 0 in
          Some
            (fun sink ->
              Graph.iter_edges_range env.g ~elabel:edge.Gf_query.Query.label
                ~slabel ~dlabel ~lo ~hi (fun u v ->
                  buf.(0) <- u;
                  buf.(1) <- v;
                  env.c.Counters.produced <- env.c.Counters.produced + 1;
                  Governor.tick env.gov env.c;
                  sink buf))
      | _ -> None
    else None
