(** Hash table of fixed-stride integer rows keyed by integer tuples — the
    build side of HASH-JOIN. *)

type t

val create : key_len:int -> row_len:int -> t

(** [add t key row] stores a copy of [row] under a copy of [key]. *)
val add : t -> int array -> int array -> unit

val size : t -> int
val row_len : t -> int
val key_len : t -> int

(** [bytes_per_row t] is the approximate heap bytes one stored row costs
    (row words + index overhead) — what the governor's byte budget charges
    per {!add}. *)
val bytes_per_row : t -> int

(** [iter_matches t key f] applies [f row] to every stored row whose key
    equals [key]; [row] is a view that must not be retained across calls.
    Single-threaded only: the view buffer is owned by [t]. *)
val iter_matches : t -> int array -> (int array -> unit) -> unit

(** [iter_matches_view t ~view key f] is [iter_matches] writing rows through
    the caller-supplied [view] buffer (length [row_len t]) instead of the
    table's own. This is what makes a frozen table safe to probe from many
    domains at once: each prober brings its own view and the table itself is
    only read. *)
val iter_matches_view : t -> view:int array -> int array -> (int array -> unit) -> unit

(** [iter_rows t f] applies [f key row] to every stored row (both arguments
    are reused views). Iteration order is unspecified. *)
val iter_rows : t -> (int array -> int array -> unit) -> unit

(** [absorb dst src] adds every row of [src] into [dst] — merging the
    per-domain partial tables of a parallel build. Raises [Invalid_argument]
    on key/row shape mismatch. *)
val absorb : t -> t -> unit
