module Key = struct
  type t = int array

  let equal (a : int array) b = a = b
  let hash (a : int array) = Hashtbl.hash a
end

module H = Hashtbl.Make (Key)

type t = {
  rows : Gf_util.Int_vec.t; (* concatenated rows, stride row_len *)
  index : Gf_util.Int_vec.t H.t; (* key -> row start offsets *)
  key_len : int;
  row_len : int;
  view : int array; (* reusable row view handed to iter_matches callbacks *)
  mutable count : int;
}

let create ~key_len ~row_len =
  {
    rows = Gf_util.Int_vec.create ~capacity:1024 ();
    index = H.create 1024;
    key_len;
    row_len;
    view = Array.make (max row_len 1) 0;
    count = 0;
  }

let add t key row =
  assert (Array.length key = t.key_len && Array.length row = t.row_len);
  let start = Gf_util.Int_vec.length t.rows in
  Gf_util.Int_vec.push_array t.rows row 0 t.row_len;
  (match H.find_opt t.index key with
  | Some offsets -> Gf_util.Int_vec.push offsets start
  | None ->
      let offsets = Gf_util.Int_vec.create ~capacity:4 () in
      Gf_util.Int_vec.push offsets start;
      H.replace t.index (Array.copy key) offsets);
  t.count <- t.count + 1

let size t = t.count
let row_len t = t.row_len
let key_len t = t.key_len

(* Approximate heap cost of one stored row: the row words, one offset word
   in the index bucket, and a word of amortized hashtable overhead. *)
let bytes_per_row t = (t.row_len + 2) * 8

let iter_matches_view t ~view key f =
  match H.find_opt t.index key with
  | None -> ()
  | Some offsets ->
      Gf_util.Int_vec.iter
        (fun start ->
          Gf_util.Int_vec.blit_to_array t.rows start view 0 t.row_len;
          f view)
        offsets

let iter_matches t key f = iter_matches_view t ~view:t.view key f

let iter_rows t f =
  H.iter
    (fun key offsets ->
      Gf_util.Int_vec.iter
        (fun start ->
          Gf_util.Int_vec.blit_to_array t.rows start t.view 0 t.row_len;
          f key t.view)
        offsets)
    t.index

let absorb dst src =
  if dst.key_len <> src.key_len || dst.row_len <> src.row_len then
    invalid_arg "Join_table.absorb: shape mismatch";
  iter_rows src (fun key row -> add dst key row)
