(** A process-global metrics registry with Prometheus-style text
    exposition — the scrape surface for a future server/daemon front end,
    already wired through [Db] and [gfq].

    Metrics are created idempotently by name ([counter "x"] twice returns
    the same counter). Counters and histogram cells are atomic, so domains
    may bump them concurrently; only registry creation and exposition take
    the registry mutex. *)

type counter
type histogram

(** [counter name] registers (or finds) a monotonically increasing
    counter. [labels] selects one series of a family: the same name with
    different labels yields independent cells, rendered as
    [name{k="v"}] in the exposition. Raises [Invalid_argument] when the
    (name, labels) series is already a histogram. *)
val counter : ?help:string -> ?labels:(string * string) list -> string -> counter

val inc : ?by:int -> counter -> unit
val counter_value : counter -> int

(** Default histogram buckets: log-2 spaced from 1 µs to ~134 s. *)
val default_buckets : float array

(** [histogram name] registers (or finds) a histogram with log-bucketed
    upper bounds [buckets] (an implicit +Inf bucket is added). [labels]
    works as for {!counter}; bucket rows merge the series labels with
    [le] inside one brace group. *)
val histogram :
  ?help:string -> ?buckets:float array -> ?labels:(string * string) list -> string -> histogram

(** [observe h v] records one observation (e.g. a query latency in
    seconds). *)
val observe : histogram -> float -> unit

val histogram_count : histogram -> int

(** Sum of all observations in seconds. Accumulated internally in integer
    nanoseconds so sub-microsecond observations do not truncate away. *)
val histogram_sum : histogram -> float

(** [quantile h p] estimates the [p]-quantile ([0. <= p <= 1.]) by linear
    interpolation inside the log bucket where the cumulative count crosses
    [p * count]. Returns [nan] on an empty histogram; a target in the +Inf
    bucket reports the last finite boundary. *)
val quantile : histogram -> float -> float

(** Prometheus text exposition of every registered metric, sorted by
    family name then labels: [# HELP]/[# TYPE] once per family, cumulative
    [_bucket{le="..."}] rows, [_sum] and [_count]. *)
val exposition : unit -> string

(** Clear the registry (tests). *)
val reset : unit -> unit
