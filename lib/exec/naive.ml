module Graph = Gf_graph.Graph
module Query = Gf_query.Query
module Bitset = Gf_util.Bitset

let iter ?(distinct = false) g q f =
  let n = Query.num_vertices q in
  let order =
    match Query.connected_orders q with
    | o :: _ -> o
    | [] -> invalid_arg "Naive: disconnected query"
  in
  let assignment = Array.make n (-1) in
  let consistent qv dv =
    Graph.vlabel g dv = Query.vlabel q qv
    && (not (distinct && Array.exists (( = ) dv) assignment))
    && Array.for_all
         (fun (e : Query.edge) ->
           if e.src = qv && assignment.(e.dst) >= 0 then
             Graph.has_edge g dv assignment.(e.dst) ~elabel:e.label
           else if e.dst = qv && assignment.(e.src) >= 0 then
             Graph.has_edge g assignment.(e.src) dv ~elabel:e.label
           else true)
         q.Query.edges
  in
  let rec go depth =
    if depth = n then f (Array.copy assignment)
    else begin
      let qv = order.(depth) in
      (* Candidates: neighbours of an already-bound adjacent query vertex
         when one exists, otherwise all vertices of the right label. *)
      let candidates =
        let bound_nbr = ref None in
        Array.iter
          (fun (e : Query.edge) ->
            if !bound_nbr = None then begin
              if e.src = qv && assignment.(e.dst) >= 0 then
                bound_nbr := Some (assignment.(e.dst), Graph.Bwd, e.label)
              else if e.dst = qv && assignment.(e.src) >= 0 then
                bound_nbr := Some (assignment.(e.src), Graph.Fwd, e.label)
            end)
          q.Query.edges;
        match !bound_nbr with
        | Some (dv, dir, el) ->
            let arr, lo, hi = Graph.neighbours g dir dv ~elabel:el ~nlabel:(Query.vlabel q qv) in
            Gf_util.Buf.sub_array arr lo hi
        | None -> Graph.vertices_with_label g (Query.vlabel q qv)
      in
      Array.iter
        (fun dv ->
          if consistent qv dv then begin
            assignment.(qv) <- dv;
            go (depth + 1);
            assignment.(qv) <- -1
          end)
        candidates
    end
  in
  go 0

let count ?distinct g q =
  let c = ref 0 in
  iter ?distinct g q (fun _ -> incr c);
  !c

let collect ?distinct g q =
  let acc = ref [] in
  iter ?distinct g q (fun t -> acc := t :: !acc);
  List.rev !acc
