(** Push-based plan execution.

    A plan compiles to nested closures: SCAN drives the pipeline, each E/I
    extends tuples in place, HASH-JOIN materializes its build side eagerly
    on first demand. Tuples handed to [sink] are reused buffers — copy them
    if you need to retain them. Column order is [Plan.vars plan].

    [cache] toggles the E/I intersection cache (Table 3 studies exactly this
    switch). [distinct] requests injective (subgraph-isomorphism) matches
    instead of the default homomorphic join semantics; the CFL comparison
    uses it. [limit] stops execution after that many output tuples.

    Every run executes under a {!Governor}: budgets (deadline, output cap,
    intermediate cap, byte cap) trip a shared flag checked cooperatively
    from the operator inner loops, and {!run_gov} reports the structured
    {!Governor.outcome} alongside the counters. [limit] is sugar for an
    output-cap budget. *)

val run :
  ?cache:bool ->
  ?distinct:bool ->
  ?leapfrog:bool ->
  ?limit:int ->
  ?prof:Profile.t ->
  ?sink:(int array -> unit) ->
  Gf_graph.Graph.t ->
  Gf_plan.Plan.t ->
  Counters.t

(** [count g p] is the number of matches. *)
val count : ?cache:bool -> ?distinct:bool -> Gf_graph.Graph.t -> Gf_plan.Plan.t -> int

(** [count_fast g p] counts matches without materializing the final
    extension: when the plan's root is an E/I operator, each extension set
    contributes its size instead of being enumerated — the simplest form of
    the factorized processing the paper discusses in Sections 3.2.3 and 10.
    Combined with the intersection cache this skips the whole output loop
    for cache-hitting tuples. [leapfrog] selects the same multiway
    intersection kernel as {!run}. [distinct] falls back to
    [count ~distinct:true] (injectivity checks need the final extensions
    enumerated); either way [count_fast] always agrees with {!count} under
    the same flags. *)
val count_fast :
  ?cache:bool -> ?distinct:bool -> ?leapfrog:bool -> Gf_graph.Graph.t -> Gf_plan.Plan.t -> int

(** [collect g p] materializes all output tuples (tests and small queries
    only). *)
val collect : ?cache:bool -> ?distinct:bool -> Gf_graph.Graph.t -> Gf_plan.Plan.t -> int array list

(** The executor's environment: exposed so cooperating executors (the
    adaptive evaluator) can build custom drivers that share counters and
    semantics. *)
type env = {
  g : Gf_graph.Graph.t;
  cache : bool;
  distinct : bool;
  leapfrog : bool;  (** multiway intersections via Leapfrog Triejoin instead of the pairwise cascade *)
  c : Counters.t;
  gov : Governor.handle;
      (** this executor's cursor on the query's governor; operators
          {!Governor.tick} it per produced tuple *)
  prof : Profile.t option;
      (** when set, {!compile_rw} wraps every operator's driver with
          {!Profile.wrap}; when [None] the compiled pipeline carries no
          profiling code at all (the branch is at compile time) *)
  trace : Gf_obs.Trace.buf option;
      (** when set, the executor records phase spans (hash-join build/probe,
          giant segmented intersections) into this buffer; per-tuple code is
          never instrumented, so [None] vs [Some] differs only at operator
          phase boundaries *)
}

(** [tuple_contains t len v] tests whether [v] occurs in [t.(0 .. len-1)] —
    the injectivity check behind [distinct], shared with the parallel
    executor's probe-only HASH-JOIN driver. *)
val tuple_contains : int array -> int -> int -> bool

(** A rewrite hook: [rewrite recurse env plan] may return a replacement
    driver for [plan]; [recurse env child] compiles children with the same
    hook applied. Returning [None] compiles [plan] structurally. *)
type rewrite =
  (env -> Gf_plan.Plan.t -> (int array -> unit) -> unit) ->
  env ->
  Gf_plan.Plan.t ->
  ((int array -> unit) -> unit) option

(** [compile_rw rewrite env plan] is the compiler itself: returns the driver
    that pushes each produced tuple into a sink. For cooperating executors
    (the adaptive evaluator, the parallel runner). *)
val compile_rw : rewrite -> env -> Gf_plan.Plan.t -> (int array -> unit) -> unit

(** [run_rw ~rewrite g p] is [run] with a rewrite hook. [gov] supplies an
    externally created governor (shared cancellation, budgets, fault
    injection); when present, [limit] is ignored — encode it as
    [max_output] in the budget instead. *)
val run_rw :
  rewrite:rewrite ->
  ?cache:bool ->
  ?distinct:bool ->
  ?leapfrog:bool ->
  ?limit:int ->
  ?gov:Governor.t ->
  ?prof:Profile.t ->
  ?sink:(int array -> unit) ->
  Gf_graph.Graph.t ->
  Gf_plan.Plan.t ->
  Counters.t

(** [run_gov_rw] is {!run_rw} also returning the structured outcome.

    [trace] opts the run into span tracing: the executor registers its own
    recording buffer (tid 1) on the trace, records an [execute] root span
    plus hash-join / giant-intersection phase spans, and synthesizes a
    per-operator summary track (tid 100) from the profile after the run. A
    traced run is implicitly profiled. *)
val run_gov_rw :
  rewrite:rewrite ->
  ?cache:bool ->
  ?distinct:bool ->
  ?leapfrog:bool ->
  ?limit:int ->
  ?gov:Governor.t ->
  ?prof:Profile.t ->
  ?trace:Gf_obs.Trace.t ->
  ?sink:(int array -> unit) ->
  Gf_graph.Graph.t ->
  Gf_plan.Plan.t ->
  Counters.t * Governor.outcome

(** [driving_scan p] is the SCAN that streams tuples into [p]'s root
    pipeline: the leftmost scan through E/I children and HASH-JOIN probe
    sides. Its source-vertex range is the unit of work division shared by
    the parallel executor's morsels and the cluster's shard requests. *)
val driving_scan : Gf_plan.Plan.t -> Gf_plan.Plan.t

(** [num_scan_sources g p] is the size of the driving scan's source space —
    [Graph.num_with_label] of its source label. Ranges over
    [\[0, num_scan_sources)] partition the plan's output. *)
val num_scan_sources : Gf_graph.Graph.t -> Gf_plan.Plan.t -> int

(** [ranged_scan_rewrite p ~lo ~hi] is a rewrite restricting [p]'s driving
    scan to source indices [\[lo, hi)] — the remote-morsel source: a worker
    executing the full plan under this rewrite produces exactly the partial
    matches of that shard of the scan space, and disjoint ranges covering
    the whole space partition the query's output. HASH-JOIN build sides are
    untouched (they must stay complete, as in the parallel executor). *)
val ranged_scan_rewrite : Gf_plan.Plan.t -> lo:int -> hi:int -> rewrite

(** [emit_operator_track tr prof ~t0_us] synthesizes the per-operator
    summary track: one span per operator, durations = profile self-times,
    packed sequentially from [t0_us] on thread [tid] (default 100) so their
    lengths sum exactly to the profile's totals. Used by the sequential and
    parallel executors; exposed for cooperating runners. *)
val emit_operator_track : ?tid:int -> ?name:string -> Gf_obs.Trace.t -> Profile.t -> t0_us:int -> unit

(** [run_gov ?budget ?fault g p] executes under the given budget (default
    {!Governor.unlimited}) and reports how the query ended: [Completed],
    [Truncated reason] on any budget trip, or [Failed error] on an injected
    fault. Counters and any tuples already delivered to [sink] are
    preserved in all cases. [gov] supplies an externally created governor
    (cross-thread cancellation, e.g. a server draining its in-flight
    queries); when present, [budget] and [fault] are ignored — they were
    fixed at the governor's creation. *)
val run_gov :
  ?cache:bool ->
  ?distinct:bool ->
  ?leapfrog:bool ->
  ?budget:Governor.budget ->
  ?fault:Governor.fault ->
  ?gov:Governor.t ->
  ?prof:Profile.t ->
  ?trace:Gf_obs.Trace.t ->
  ?sink:(int array -> unit) ->
  Gf_graph.Graph.t ->
  Gf_plan.Plan.t ->
  Counters.t * Governor.outcome
