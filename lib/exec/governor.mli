(** The query governor: per-query budgets, cooperative cancellation and
    structured outcomes, shared by the sequential and the parallel executor.

    A query runs under a {!budget} — wall-clock deadline, output-row cap,
    intermediate-tuple cap, approximate byte cap for materialized state
    (hash-join build tables, morsel batches). One {!t} is created per query
    and shared by every domain working on it; each domain derives a private
    {!handle} and calls {!tick} from its inner loops. A tick decrements a
    local fuel counter and only every [cadence] ticks performs the full
    check: flush the domain's produced-tuple delta to the shared total, test
    the caps and the deadline, and raise {!Trip} if any budget (or an
    injected fault, or an explicit {!cancel}) has tripped — so the common
    case costs one decrement and one branch, and every domain stops within
    [cadence] tuples of any other domain tripping a budget.

    The first trip wins: the shared flag is set once, by compare-and-set,
    and {!outcome} reports it as [Truncated reason] or [Failed error].
    Budgets left unset are not checked at all (an unlimited governor never
    reads the clock). *)

(** Why a query was cut short. *)
type reason =
  | Deadline  (** wall-clock deadline exceeded *)
  | Output_limit  (** output-row cap reached *)
  | Intermediate_limit  (** intermediate-tuple cap exceeded *)
  | Memory_limit  (** approximate materialized bytes exceeded *)
  | Cancelled  (** explicit {!cancel} *)

(** A structured operator failure (also produced by fault injection). *)
type error = { operator : string; detail : string }

(** The structured result of governed execution. Partial results and
    counters are preserved in every case. *)
type outcome = Completed | Truncated of reason | Failed of error

val pp_outcome : Format.formatter -> outcome -> unit
val outcome_to_string : outcome -> string

(** Per-query resource budget; [None] fields are unchecked. [max_bytes]
    bounds the approximate bytes of materialized state (join-table rows,
    morsel batch buffers) accounted via {!add_bytes}. *)
type budget = {
  deadline_s : float option;  (** relative to query start, in seconds *)
  max_output : int option;
  max_intermediate : int option;
  max_bytes : int option;
}

(** No limits: never trips unless {!cancel}led or {!fail}ed. *)
val unlimited : budget

val budget :
  ?deadline_s:float ->
  ?max_output:int ->
  ?max_intermediate:int ->
  ?max_bytes:int ->
  unit ->
  budget

(** A deterministic injected fault: the query fails (outcome
    [Failed { operator; detail }]) at the first governor check after the
    global produced-tuple total reaches [at_tuple]. The test harness derives
    [at_tuple] from a seeded {!Gf_util.Rng} so unwinding is exercised at
    reproducible points mid-pipeline. *)
type fault = { at_tuple : int; operator : string }

(** The shared per-query governor state. Thread-safe: one [t] is shared by
    all domains of a parallel run. *)
type t

(** Raised by {!check}, {!tick} and {!claim_output} once the governor has
    tripped; executors unwind to the query entry point, which converts it
    into the {!outcome}. Never escapes [run_gov]-style entry points. *)
exception Trip

(** [create budget] starts the clock: a relative [deadline_s] is stamped
    into an absolute deadline now. *)
val create : ?fault:fault -> budget -> t

(** Trip the governor with [Cancelled] (e.g. from a signal handler or
    another thread). Idempotent; loses against an earlier trip. *)
val cancel : t -> unit

(** Record a structured failure and trip the governor. The first failure
    wins; later calls are ignored. *)
val fail : t -> operator:string -> detail:string -> unit

(** Has any budget tripped / cancel / fail occurred? One atomic read —
    cheap enough for per-morsel loop conditions. *)
val tripped : t -> bool

val outcome : t -> outcome

(** A domain-private cursor over the shared governor: owns the fuel
    counter and the last-flushed produced count, so ticking never touches
    shared state in the common case. *)
type handle

val handle : t -> handle

(** Number of full checks between deadline/cap evaluations; {!tick} costs a
    decrement and branch in between. *)
val cadence : int

(** [tick h c] is the cheap per-tuple call: decrements fuel and runs
    {!check} every {!cadence} calls. *)
val tick : handle -> Counters.t -> unit

(** [tick_work h c n] charges [n] tuple-equivalents of work at once —
    used by the E/I operator to account the scanned adjacency-list length
    of an intersection that produces few (or no) tuples, so a long run of
    expensive-but-unproductive intersections still reaches a deadline
    check within one cadence of work rather than one cadence of produced
    tuples. A no-op when [n <= 0]. *)
val tick_work : handle -> Counters.t -> int -> unit

(** [check h c] flushes [c.produced] to the shared total, evaluates the
    fault trigger, the intermediate cap and the deadline, and raises {!Trip}
    if the governor has tripped (here or elsewhere). *)
val check : handle -> Counters.t -> unit

(** [claim_output h] atomically claims one output slot. Raises {!Trip} if
    the output cap is already exhausted (the tuple must not be emitted);
    trips the governor — without raising — when this claim is the last one
    below the cap, so exactly [max_output] tuples are emitted globally.
    A no-op when no output cap is set. *)
val claim_output : handle -> unit

(** [add_bytes h n] accounts [n] approximate bytes of materialized state
    and trips the governor (without raising — a subsequent {!tick} unwinds)
    once the byte cap is exceeded. A no-op when no byte cap is set. *)
val add_bytes : handle -> int -> unit

(** [release_bytes h n] returns [n] bytes of materialized state that is no
    longer live (a consumed morsel batch), so [max_bytes] bounds *live*
    bytes rather than cumulative allocation. The shared total is clamped at
    zero. A no-op when no byte cap is set or [n <= 0]. *)
val release_bytes : handle -> int -> unit

(** [finish h c] flushes the remaining produced delta and records the
    number of full checks into [c.gov_checks]. Call once per domain after
    its pipeline ends (normally or by {!Trip}) so counter totals survive
    truncation. *)
val finish : handle -> Counters.t -> unit
