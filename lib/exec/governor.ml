module Timing = Gf_util.Timing

type reason = Deadline | Output_limit | Intermediate_limit | Memory_limit | Cancelled
type error = { operator : string; detail : string }
type outcome = Completed | Truncated of reason | Failed of error

let reason_to_string = function
  | Deadline -> "deadline"
  | Output_limit -> "output limit"
  | Intermediate_limit -> "intermediate limit"
  | Memory_limit -> "memory limit"
  | Cancelled -> "cancelled"

let outcome_to_string = function
  | Completed -> "completed"
  | Truncated r -> Printf.sprintf "truncated (%s)" (reason_to_string r)
  | Failed { operator; detail } -> Printf.sprintf "failed (%s: %s)" operator detail

let pp_outcome fmt o = Format.pp_print_string fmt (outcome_to_string o)

type budget = {
  deadline_s : float option;
  max_output : int option;
  max_intermediate : int option;
  max_bytes : int option;
}

let unlimited =
  { deadline_s = None; max_output = None; max_intermediate = None; max_bytes = None }

let budget ?deadline_s ?max_output ?max_intermediate ?max_bytes () =
  { deadline_s; max_output; max_intermediate; max_bytes }

type fault = { at_tuple : int; operator : string }

(* Trip codes stored in [flag]; 0 = running. First CAS wins. *)
let c_deadline = 1
let c_output = 2
let c_intermediate = 3
let c_memory = 4
let c_cancelled = 5
let c_failed = 6

type t = {
  flag : int Atomic.t;
  deadline : float; (* absolute; [infinity] = unchecked (skips the clock read) *)
  out_cap : int; (* [max_int] = unchecked *)
  inter_cap : int;
  byte_cap : int;
  produced : int Atomic.t; (* global produced total, flushed in deltas at checks *)
  outputs : int Atomic.t; (* global output claims (only used under an output cap) *)
  bytes : int Atomic.t;
  fault : fault option;
  failure : error option Atomic.t;
}

exception Trip

let create ?fault budget =
  {
    flag = Atomic.make 0;
    deadline =
      (match budget.deadline_s with
      | None -> infinity
      | Some d -> Timing.now_s () +. d);
    out_cap = Option.value budget.max_output ~default:max_int;
    inter_cap = Option.value budget.max_intermediate ~default:max_int;
    byte_cap = Option.value budget.max_bytes ~default:max_int;
    produced = Atomic.make 0;
    outputs = Atomic.make 0;
    bytes = Atomic.make 0;
    fault;
    failure = Atomic.make None;
  }

let trip t code = ignore (Atomic.compare_and_set t.flag 0 code)
let cancel t = trip t c_cancelled

let fail t ~operator ~detail =
  if Atomic.compare_and_set t.failure None (Some { operator; detail }) then
    trip t c_failed

let tripped t = Atomic.get t.flag <> 0

let outcome t =
  match Atomic.get t.flag with
  | 0 -> Completed
  | 1 -> Truncated Deadline
  | 2 -> Truncated Output_limit
  | 3 -> Truncated Intermediate_limit
  | 4 -> Truncated Memory_limit
  | 5 -> Truncated Cancelled
  | _ -> (
      match Atomic.get t.failure with
      | Some e -> Failed e
      | None -> Failed { operator = "?"; detail = "failure without record" })

type handle = {
  shared : t;
  mutable fuel : int;
  mutable last_produced : int; (* produced count already flushed to [shared] *)
  mutable checks : int;
}

let cadence = 256
let handle t = { shared = t; fuel = cadence; last_produced = 0; checks = 0 }

let flush_produced h (c : Counters.t) =
  let d = c.Counters.produced - h.last_produced in
  if d > 0 then begin
    ignore (Atomic.fetch_and_add h.shared.produced d);
    h.last_produced <- c.Counters.produced
  end

let check h c =
  h.fuel <- cadence;
  h.checks <- h.checks + 1;
  let t = h.shared in
  flush_produced h c;
  if Atomic.get t.flag <> 0 then raise Trip;
  let total = Atomic.get t.produced in
  (match t.fault with
  | Some f when total >= f.at_tuple ->
      fail t ~operator:f.operator
        ~detail:(Printf.sprintf "injected fault at tuple %d" f.at_tuple)
  | _ -> ());
  if total > t.inter_cap then trip t c_intermediate;
  if t.deadline < infinity && Timing.now_s () > t.deadline then trip t c_deadline;
  if Atomic.get t.flag <> 0 then raise Trip

let tick h c =
  h.fuel <- h.fuel - 1;
  if h.fuel <= 0 then check h c

let tick_work h c n =
  if n > 0 then begin
    h.fuel <- h.fuel - n;
    if h.fuel <= 0 then check h c
  end

let claim_output h =
  let t = h.shared in
  if t.out_cap < max_int then begin
    let prev = Atomic.fetch_and_add t.outputs 1 in
    if prev >= t.out_cap then begin
      trip t c_output;
      raise Trip
    end;
    if prev + 1 >= t.out_cap then trip t c_output
  end

let add_bytes h n =
  let t = h.shared in
  if t.byte_cap < max_int then begin
    let b = Atomic.fetch_and_add t.bytes n + n in
    if b > t.byte_cap then trip t c_memory
  end

let release_bytes h n =
  let t = h.shared in
  if t.byte_cap < max_int && n > 0 then begin
    (* Clamp at zero under a CAS loop: releases racing with each other (or
       with a release of bytes accounted before a partial unwind) must never
       drive the live total negative and mask later allocations. *)
    let rec go () =
      let b = Atomic.get t.bytes in
      let b' = max 0 (b - n) in
      if not (Atomic.compare_and_set t.bytes b b') then go ()
    in
    go ()
  end

let finish h c =
  flush_produced h c;
  c.Counters.gov_checks <- c.Counters.gov_checks + h.checks
