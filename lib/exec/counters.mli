(** Profiling counters matching the paper's reported metrics.

    [icost] is the *actual* i-cost of a run (Eq. 1): the summed sizes of the
    adjacency lists accessed by E/I operators, not counting lists whose
    intersection was served from the cache. [intermediate] is the number of
    partial matches produced by non-root operators ("part. m." in Tables
    4-6). *)

type t = {
  mutable icost : int;
  mutable produced : int;  (** tuples emitted by every operator, root included *)
  mutable output : int;
  mutable cache_hits : int;
  mutable intersections : int;  (** E/I extension-set computations performed *)
  mutable hj_build_tuples : int;
  mutable hj_probe_tuples : int;
  mutable morsels : int;  (** morsels executed by this domain (parallel runs) *)
  mutable steals : int;  (** morsels taken from another domain's deque *)
  mutable busy_s : float;
      (** wall-clock seconds spent executing morsels, excluding idle spinning
          — the per-domain load-imbalance signal of Figure 11 *)
  mutable gov_checks : int;
      (** full governor checks performed (deadline/cap evaluations; ticks in
          between cost a decrement) — the overhead signal for the governor *)
}

val create : unit -> t
val intermediate : t -> int
val add : t -> t -> unit

(** [merge cs] sums a list of counters (parallel execution). *)
val merge : t list -> t

val pp : Format.formatter -> t -> unit
