module Graph = Gf_graph.Graph
module Plan = Gf_plan.Plan
module Deque = Gf_util.Deque
module Timing = Gf_util.Timing
module Trace = Gf_obs.Trace

type report = {
  counters : Counters.t;
  per_domain : Counters.t array;
  per_domain_output : int array;
  outcome : Governor.outcome;
}

(* The SCAN that streams tuples into the root pipeline: probe side of joins,
   child of extends. *)
let rec driving_scan = function
  | Plan.Scan _ as s -> s
  | Plan.Extend { child; _ } -> driving_scan child
  | Plan.Hash_join { probe; _ } -> driving_scan probe

(* The morsel boundary: the first E/I level directly above the driving scan
   (its outputs are what workers materialize into stealable batches), or the
   driving scan itself when a HASH-JOIN sits immediately above it. *)
let rec find_boundary = function
  | Plan.Scan _ as s -> s
  | Plan.Extend { child = Plan.Scan _; _ } as e -> e
  | Plan.Extend { child; _ } -> find_boundary child
  | Plan.Hash_join { probe; _ } -> find_boundary probe

let scan_sources g = function
  | Plan.Scan { slabel; _ } -> Graph.num_with_label g slabel
  | _ -> assert false

(* HASH-JOIN nodes in post-order (children before parents), so that by the
   time a join's build side runs, every nested join already has its shared
   table and is compiled probe-only. *)
let collect_joins plan =
  let rec go acc = function
    | Plan.Scan _ -> acc
    | Plan.Extend { child; _ } -> go acc child
    | Plan.Hash_join { build; probe; _ } as j -> (go (go acc build) probe) @ [ j ]
  in
  go [] plan

let assq_find tables node =
  let rec go = function
    | [] -> None
    | (n, t) :: rest -> if n == node then Some t else go rest
  in
  go tables

(* A probe-only HASH-JOIN driver against a pre-built shared [table]: same
   probe/distinct semantics as Exec's structural compilation, but the build
   side is never executed and rows are read through a caller-owned view so
   any number of domains can probe the frozen table concurrently. *)
let probe_only recurse (env : Exec.env) node table =
  match node with
  | Plan.Hash_join { probe; probe_key_pos; build_extra_pos; vars; _ } ->
      let probe_driver = recurse env probe in
      let key_len = Array.length probe_key_pos in
      let pwidth = Array.length (Plan.vars probe) in
      let width = Array.length vars in
      let nextra = Array.length build_extra_pos in
      let buf = Array.make width 0 in
      let key_buf = Array.make key_len 0 in
      let view = Array.make (Join_table.row_len table) 0 in
      fun sink ->
        probe_driver (fun t ->
            env.Exec.c.Counters.hj_probe_tuples <-
              env.Exec.c.Counters.hj_probe_tuples + 1;
            Governor.tick env.Exec.gov env.Exec.c;
            for i = 0 to key_len - 1 do
              key_buf.(i) <- t.(probe_key_pos.(i))
            done;
            Array.blit t 0 buf 0 pwidth;
            Join_table.iter_matches_view table ~view key_buf (fun row ->
                let ok = ref true in
                for i = 0 to nextra - 1 do
                  let v = row.(build_extra_pos.(i)) in
                  buf.(pwidth + i) <- v;
                  if env.Exec.distinct && Exec.tuple_contains buf pwidth v then ok := false
                done;
                if !ok && env.Exec.distinct && nextra > 1 then begin
                  for i = 0 to nextra - 1 do
                    for j = i + 1 to nextra - 1 do
                      if buf.(pwidth + i) = buf.(pwidth + j) then ok := false
                    done
                  done
                end;
                if !ok then begin
                  env.Exec.c.Counters.produced <- env.Exec.c.Counters.produced + 1;
                  Governor.tick env.Exec.gov env.Exec.c;
                  sink buf
                end))
  | _ -> assert false

(* A driver for [node] (the driving scan of some pipeline) that pulls
   [chunk]-sized source ranges from a shared atomic counter — the static
   scheme, used for parallel hash-table builds where morsel stealing buys
   little (builds are materialized anyway). *)
let chunked_scan (env : Exec.env) node next chunk num_sources =
  match node with
  | Plan.Scan { edge; slabel; dlabel; _ } ->
      let buf = Array.make 2 0 in
      fun sink ->
        let continue = ref true in
        while !continue do
          let lo = Atomic.fetch_and_add next chunk in
          if lo >= num_sources then continue := false
          else begin
            let hi = min num_sources (lo + chunk) in
            Graph.iter_edges_range env.Exec.g ~elabel:edge.Gf_query.Query.label ~slabel
              ~dlabel ~lo ~hi (fun u v ->
                buf.(0) <- u;
                buf.(1) <- v;
                env.Exec.c.Counters.produced <- env.Exec.c.Counters.produced + 1;
                Governor.tick env.Exec.gov env.Exec.c;
                sink buf)
          end
        done
  | _ -> assert false

(* Build every HASH-JOIN table exactly once, in post-order. Each build runs
   its build sub-plan in parallel: domains pull scan chunks, fill per-domain
   partial tables, and the partials are absorbed into one shared read-only
   table. Returns the tables (keyed by physical plan node) and the counters
   of the whole build phase — so build tuples are counted once, not once per
   execution domain. *)
let build_tables ~domains ~cache ~distinct ~leapfrog ~gov ~prof ~tbuf g plan =
  let build_c = Counters.create () in
  let tables = ref [] in
  List.iter
    (fun node ->
      match node with
      | Plan.Hash_join { build; build_key_pos; _ } ->
          let before_build = build_c.Counters.hj_build_tuples in
          (match tbuf with
          | Some tb -> Trace.begin_span ~cat:"hash-join" tb "build-table"
          | None -> ());
          let key_len = Array.length build_key_pos in
          let row_len = Array.length (Plan.vars build) in
          let bscan = driving_scan build in
          let num_sources = scan_sources g bscan in
          let next = Atomic.make 0 in
          (* Table inserts are this join node's work: with profiling on, the
             build sink runs with the join operator current so its time and
             hj_build tuples land on the join's row — exactly where the
             sequential executor charges them. *)
          let join_id =
            match prof with None -> None | Some p -> Profile.id_of p node
          in
          let build_worker () =
            let c = Counters.create () in
            let h = Governor.handle gov in
            let dprof = Option.map Profile.fresh prof in
            let env =
              { Exec.g; cache; distinct; leapfrog; c; gov = h; prof = dprof; trace = None }
            in
            let local = Join_table.create ~key_len ~row_len in
            let row_bytes = Join_table.bytes_per_row local in
            let rewrite recurse env n =
              if n == bscan then Some (chunked_scan env n next 64 num_sources)
              else
                match assq_find !tables n with
                | Some tbl -> Some (probe_only recurse env n tbl)
                | None -> None
            in
            let d = Exec.compile_rw rewrite env build in
            let key_buf = Array.make key_len 0 in
            (match dprof with
            | Some p ->
                Profile.start p c;
                Option.iter (fun id -> Profile.enter p c id) join_id
            | None -> ());
            (* A tripped budget or a faulting operator must still hand back
               the partial table and counters, and must never propagate out
               of the domain (a raising [Domain.join] would leak its
               siblings). *)
            (try
               d (fun t ->
                   for i = 0 to key_len - 1 do
                     key_buf.(i) <- t.(build_key_pos.(i))
                   done;
                   Join_table.add local key_buf t;
                   c.Counters.hj_build_tuples <- c.Counters.hj_build_tuples + 1;
                   Governor.add_bytes h row_bytes;
                   Governor.tick h c)
             with
            | Governor.Trip -> ()
            | e ->
                Governor.fail gov ~operator:"hash-build" ~detail:(Printexc.to_string e));
            (match dprof with Some p -> Profile.finish p c | None -> ());
            Governor.finish h c;
            (local, c, dprof)
          in
          let results =
            if domains <= 1 then [| build_worker () |]
            else
              Array.map Domain.join (Array.init domains (fun _ -> Domain.spawn build_worker))
          in
          let table = Join_table.create ~key_len ~row_len in
          Array.iter
            (fun (local, c, dprof) ->
              Join_table.absorb table local;
              Counters.add build_c c;
              match (prof, dprof) with
              | Some into, Some p -> Profile.merge_into ~into p
              | _ -> ())
            results;
          (match tbuf with
          | Some tb ->
              Trace.end_span
                ~args:[ ("rows", Int (build_c.Counters.hj_build_tuples - before_build)) ]
                tb
          | None -> ());
          tables := (node, table) :: !tables
      | _ -> assert false)
    (collect_joins plan);
  (!tables, build_c)

(* A morsel is either a range of driving-scan source indices or a batch of
   materialized boundary-width partial matches (flat, row-major). *)
type morsel = Range of int * int | Batch of int array

(* Bound on the owner's deque length above which boundary tuples are pushed
   through the pipeline inline instead of being batched — keeps memory
   proportional to [max_local * batch] tuples per domain even when the upper
   pipeline is much slower than the producer. *)
let max_local = 32

let run ?(domains = 1) ?(cache = true) ?(distinct = false) ?(leapfrog = false) ?limit
    ?budget ?fault ?gov ?prof ?trace ?sink ?(chunk = 64) ?(batch = 256) g plan =
  let domains = max 1 domains in
  (* A traced run is implicitly profiled: the merged profile feeds the
     per-operator summary track, mirroring the sequential executor. *)
  let prof = match (prof, trace) with None, Some _ -> Some (Profile.create plan) | _ -> prof in
  let cbuf = Option.map (fun tr -> Trace.buffer ~name:"coordinator" tr ~tid:9) trace in
  let t0_us = Trace.now_us () in
  let gov =
    match gov with
    | Some t -> t
    | None ->
        let b = Option.value budget ~default:Governor.unlimited in
        let b =
          match limit with
          | None -> b
          | Some l ->
              {
                b with
                Governor.max_output =
                  Some
                    (match b.Governor.max_output with
                    | None -> l
                    | Some m -> min m l);
              }
        in
        Governor.create ?fault b
  in
  (match cbuf with
  | Some tb -> Trace.begin_span ~cat:"parallel" ~args:[ ("domains", Int domains) ] tb "build-tables"
  | None -> ());
  let tables, build_c =
    build_tables ~domains ~cache ~distinct ~leapfrog ~gov ~prof ~tbuf:cbuf g plan
  in
  (match cbuf with Some tb -> Trace.end_span tb | None -> ());
  let driver_node = driving_scan plan in
  let boundary_node = find_boundary plan in
  let bwidth = Array.length (Plan.vars boundary_node) in
  let num_sources = scan_sources g driver_node in
  let deques = Array.init domains (fun _ -> Deque.create ~dummy:(Range (0, 0)) ()) in
  (* Seed range morsels round-robin so every domain starts with local work
     and steals only once its own share is drained. *)
  let pending = Atomic.make 0 in
  let lo = ref 0 and d = ref 0 in
  while !lo < num_sources do
    let hi = min num_sources (!lo + max 1 chunk) in
    Deque.push_bottom deques.(!d) (Range (!lo, hi));
    Atomic.incr pending;
    lo := hi;
    d := (!d + 1) mod domains
  done;
  let sink_mutex = Mutex.create () in
  let unlock_sink () = Mutex.unlock sink_mutex in
  let worker wid () =
    let c = Counters.create () in
    let h = Governor.handle gov in
    let dprof = Option.map Profile.fresh prof in
    (* Each domain records into its own buffer — registration takes the
       trace mutex once per domain, recording is domain-local mutation. *)
    let wbuf =
      Option.map
        (fun tr -> Trace.buffer ~name:(Printf.sprintf "domain %d" wid) tr ~tid:(10 + wid))
        trace
    in
    let env = { Exec.g; cache; distinct; leapfrog; c; gov = h; prof = dprof; trace = wbuf } in
    let own = deques.(wid) in
    (* The root sink: claims an output slot from the governor (atomic under
       an output cap — over-claims abort the claiming worker via [Trip], so
       exactly min(cap, total) tuples are emitted), counts, and forwards to
       the user sink under a mutex so any sink is safe. [Fun.protect]
       guarantees the mutex is released even when the sink raises or a
       budget trips — a governed abort can never leave it held. *)
    let emit_out t =
      Governor.claim_output h;
      c.Counters.output <- c.Counters.output + 1;
      match sink with
      | None -> ()
      | Some f ->
          Mutex.lock sink_mutex;
          Fun.protect ~finally:unlock_sink (fun () -> f t)
    in
    let rewrite recurse env node =
      if node == boundary_node then
        Some
          (fun sink ->
            (* [sink] is the compiled pipeline above the boundary; this
               driver feeds it from the work-stealing scheduler. *)
            let cur_lo = ref 0 and cur_hi = ref 0 in
            let lower_rw _ (lenv : Exec.env) n =
              if n == driver_node then
                match n with
                | Plan.Scan { edge; slabel; dlabel; _ } ->
                    let buf = Array.make 2 0 in
                    Some
                      (fun s ->
                        Graph.iter_edges_range lenv.Exec.g
                          ~elabel:edge.Gf_query.Query.label ~slabel ~dlabel ~lo:!cur_lo
                          ~hi:!cur_hi (fun u v ->
                            buf.(0) <- u;
                            buf.(1) <- v;
                            lenv.Exec.c.Counters.produced <-
                              lenv.Exec.c.Counters.produced + 1;
                            s buf))
                | _ -> assert false
              else None
            in
            let lower = Exec.compile_rw lower_rw env boundary_node in
            let tuple = Array.make bwidth 0 in
            let batch_bytes = batch * bwidth * 8 in
            let replay data =
              let n = Array.length data / bwidth in
              for r = 0 to n - 1 do
                Array.blit data (r * bwidth) tuple 0 bwidth;
                Governor.tick h c;
                sink tuple
              done;
              (* The batch buffer is dead once replayed: return its bytes so
                 the cap bounds live batches (max_local per domain), not the
                 cumulative allocation of the whole run. *)
              Governor.release_bytes h batch_bytes
            in
            Governor.add_bytes h batch_bytes;
            let bbuf = ref (Array.make (batch * bwidth) 0) in
            let bn = ref 0 in
            let emit_lower t =
              if Deque.length own < max_local then begin
                Array.blit t 0 !bbuf (!bn * bwidth) bwidth;
                incr bn;
                if !bn = batch then begin
                  Atomic.incr pending;
                  Deque.push_bottom own (Batch !bbuf);
                  Governor.add_bytes h batch_bytes;
                  bbuf := Array.make (batch * bwidth) 0;
                  bn := 0
                end
              end
              else sink t
            in
            let flush_inline () =
              let n = !bn in
              bn := 0;
              let data = !bbuf in
              for r = 0 to n - 1 do
                Array.blit data (r * bwidth) tuple 0 bwidth;
                sink tuple
              done
            in
            let process m =
              c.Counters.morsels <- c.Counters.morsels + 1;
              match m with
              | Range (rlo, rhi) ->
                  cur_lo := rlo;
                  cur_hi := rhi;
                  lower emit_lower;
                  flush_inline ()
              | Batch data -> replay data
            in
            let steal_one () =
              let rec go k =
                if k >= domains then None
                else
                  let v = (wid + 1 + k) mod domains in
                  if v = wid then go (k + 1)
                  else
                    match Deque.steal deques.(v) with
                    | Some m -> Some (m, v)
                    | None -> go (k + 1)
              in
              go 0
            in
            (* Busy-time and the pending count must survive a [Trip] raised
               mid-morsel: the counters stay truthful and no sibling spins
               forever on a pending count that will never reach zero. *)
            let timed m =
              let t0 = Timing.now_s () in
              Fun.protect
                ~finally:(fun () ->
                  c.Counters.busy_s <- c.Counters.busy_s +. (Timing.now_s () -. t0);
                  Atomic.decr pending)
                (fun () ->
                  (* The untraced path is this single match — no span
                     machinery runs when tracing is off. *)
                  match wbuf with
                  | None -> process m
                  | Some tb ->
                      let args =
                        match m with
                        | Range (rlo, rhi) ->
                            [ ("kind", Trace.Str "range"); ("lo", Trace.Int rlo); ("hi", Int rhi) ]
                        | Batch data ->
                            [ ("kind", Trace.Str "batch");
                              ("rows", Int (Array.length data / bwidth));
                            ]
                      in
                      Trace.span ~cat:"morsel" ~args tb "morsel" (fun () -> process m))
            in
            while (not (Governor.tripped gov)) && Atomic.get pending > 0 do
              match Deque.pop_bottom own with
              | Some m -> timed m
              | None -> (
                  match steal_one () with
                  | Some (m, v) ->
                      c.Counters.steals <- c.Counters.steals + 1;
                      (match wbuf with
                      | Some tb ->
                          Trace.instant ~cat:"steal" ~args:[ ("victim", Trace.Int v) ] tb "steal"
                      | None -> ());
                      timed m
                  | None -> Domain.cpu_relax ())
            done;
            (* The worker's private buffer dies with the loop. *)
            Governor.release_bytes h batch_bytes)
      else
        match assq_find tables node with
        | Some tbl -> Some (probe_only recurse env node tbl)
        | None -> None
    in
    let driver = Exec.compile_rw rewrite env plan in
    (match dprof with Some p -> Profile.start p c | None -> ());
    (match wbuf with Some tb -> Trace.begin_span ~cat:"worker" tb "worker" | None -> ());
    (* Workers never let an exception escape: a raising [Domain.join] would
       leak the remaining domains. Budget trips end the worker quietly;
       anything else is recorded as a structured failure (tripping the
       governor so the siblings stop too). *)
    (try driver emit_out with
    | Governor.Trip -> ()
    | e -> Governor.fail gov ~operator:"worker" ~detail:(Printexc.to_string e));
    (match wbuf with
    | Some tb ->
        (* An unwinding Trip can leave morsel spans open; close them so the
           export stays balanced. *)
        Trace.close_all tb;
        ignore
          (Trace.instant ~cat:"worker"
             ~args:
               [ ("morsels", Trace.Int c.Counters.morsels);
                 ("steals", Int c.Counters.steals);
                 ("output", Int c.Counters.output);
               ]
             tb "worker-done")
    | None -> ());
    (match dprof with Some p -> Profile.finish p c | None -> ());
    Governor.finish h c;
    (c, dprof)
  in
  (match cbuf with Some tb -> Trace.begin_span ~cat:"parallel" tb "run" | None -> ());
  let results =
    if domains <= 1 then [| worker 0 () |]
    else Array.map Domain.join (Array.init domains (fun i -> Domain.spawn (worker i)))
  in
  (match cbuf with
  | Some tb ->
      Trace.end_span tb;
      Trace.close_all tb
  | None -> ());
  (* Merge the per-domain profiles in the coordinating thread, keyed by the
     shared preorder operator ids — same shape for every domain, so the
     merged profile is identical in form to a sequential one. *)
  (match prof with
  | Some into ->
      Array.iter (fun (_, dprof) -> Option.iter (fun p -> Profile.merge_into ~into p) dprof) results
  | None -> ());
  (* One merged operator-summary track: durations are self-times summed
     across build and all domains, so the track reads as CPU time (it can
     exceed the wall clock, like [busy_s]). *)
  (match (trace, prof) with
  | Some tr, Some p -> Exec.emit_operator_track tr p ~t0_us
  | _ -> ());
  let per_domain = Array.map fst results in
  {
    counters = Counters.merge (build_c :: Array.to_list per_domain);
    per_domain;
    per_domain_output = Array.map (fun (c, _) -> c.Counters.output) results;
    outcome = Governor.outcome gov;
  }

let count ?domains ?cache ?distinct ?leapfrog ?limit g plan =
  (run ?domains ?cache ?distinct ?leapfrog ?limit g plan).counters.Counters.output

(* The pre-morsel scheme, kept as the A/B baseline for the Figure 11 harness:
   every domain compiles the full plan (rebuilding hash tables per domain)
   and pulls static chunks of the driving scan from one shared counter.
   Counting only. *)
let run_chunked ?(domains = 1) ?(cache = true) ?(chunk = 64) g plan =
  let driver_node = driving_scan plan in
  let num_sources = scan_sources g driver_node in
  let next = Atomic.make 0 in
  let worker () =
    let t0 = Timing.now_s () in
    let c = Counters.create () in
    let gov = Governor.handle (Governor.create Governor.unlimited) in
    let env =
      { Exec.g; cache; distinct = false; leapfrog = false; c; gov; prof = None; trace = None }
    in
    let rewrite _recurse (env : Exec.env) node =
      if node == driver_node then Some (chunked_scan env node next chunk num_sources)
      else None
    in
    let driver = Exec.compile_rw rewrite env plan in
    driver (fun _ -> c.Counters.output <- c.Counters.output + 1);
    c.Counters.busy_s <- Timing.now_s () -. t0;
    c
  in
  let results =
    if domains <= 1 then [| worker () |]
    else Array.map Domain.join (Array.init domains (fun _ -> Domain.spawn worker))
  in
  {
    counters = Counters.merge (Array.to_list results);
    per_domain = results;
    per_domain_output = Array.map (fun c -> c.Counters.output) results;
    outcome = Governor.Completed;
  }
