(** Per-operator execution profiling.

    A profile attaches per-operator actuals — produced tuples, i-cost,
    cache hits, intersections, hash-join build/probe tuples, and *self*
    wall time — to the stable operator ids of {!Gf_plan.Plan.operators}.

    {2 How attribution works}

    The executor is push-based: a plan compiles to nested closures, so at
    any instant exactly one operator is doing work. The profiler tracks
    which one by *boundary switching*: {!wrap} decorates each compiled
    driver so that entering an operator's driver (and every callback into
    its sink) switches a current-operator register, and each switch charges
    the wall time and the {!Counters} deltas since the previous switch to
    the operator that was current. Time charged to an operator is therefore
    its self time (excluding children and parents), and the per-operator
    counter columns sum to the run's counter totals — no per-counter
    instrumentation in the operator kernels.

    The cost when profiling is on is two clock reads per tuple per wrapped
    pipeline boundary. When off, {!Gf_exec.Exec.compile_rw} skips {!wrap}
    entirely at plan-compile time — the compiled pipeline is identical to
    an unprofiled build, with zero per-tuple overhead.

    {2 Threading}

    A profile is single-domain mutable state. Parallel runs give each
    domain a {!fresh} copy (same plan, same id space) and
    {!merge_into} the per-domain profiles after the domains join —
    mirroring how per-domain {!Counters} are merged. Counter columns merge
    exactly; per-operator [time_s] sums CPU time across domains (like
    [Counters.busy_s], it can exceed wall time). *)

type kind = Scan | Extend | Hash_join

val kind_to_string : kind -> string

(** Accumulated actuals for one operator. [produced] counts tuples the
    operator emitted; [icost] is Eq. 1's summed adjacency-list sizes;
    [time_s] is self wall time. For a hash join, [hj_build]/[hj_probe]
    count tuples inserted into / probed against its table. *)
type op = {
  id : int;  (** preorder index from {!Gf_plan.Plan.operators} *)
  label : string;  (** {!Gf_plan.Plan.op_label} *)
  kind : kind;
  depth : int;  (** tree depth, for display *)
  mutable produced : int;
  mutable icost : int;
  mutable cache_hits : int;
  mutable intersections : int;
  mutable hj_build : int;
  mutable hj_probe : int;
  mutable time_s : float;
}

type t

(** [create plan] is an empty profile keyed by [plan]'s operator ids. The
    same plan value must be executed (operators are matched physically). *)
val create : Gf_plan.Plan.t -> t

(** [fresh t] is an empty profile over the same plan — one per domain in
    parallel runs. *)
val fresh : t -> t

val plan : t -> Gf_plan.Plan.t

(** The per-operator rows, in operator-id (preorder) order. *)
val ops : t -> op array

(** Wall time spent outside any operator (scheduler idle loops, the user
    sink, final output accounting). *)
val outside_s : t -> float

(** [id_of t node] is [node]'s operator id, by physical equality; [None]
    for a node that is not part of the profiled plan. *)
val id_of : t -> Gf_plan.Plan.t -> int option

(** [wrap t c id driver] decorates a compiled driver with the boundary
    switches described above. Applied by [Exec.compile_rw] when the
    environment carries a profile. *)
val wrap : t -> Counters.t -> int -> ((int array -> unit) -> unit) -> (int array -> unit) -> unit

(** [enter t c id] charges the time and counter deltas since the last
    switch, then makes [id] current ([-1] = outside any operator). For
    cooperating executors that run operator work outside wrapped drivers
    (the parallel build phase charges table inserts to the join node). *)
val enter : t -> Counters.t -> int -> unit

(** [start t c] begins a run: resets the clock and counter snapshots
    (without charging anything) and sets the current operator to outside.
    Call once before invoking the root driver. *)
val start : t -> Counters.t -> unit

(** [finish t c] charges any outstanding deltas (also on the unwind path of
    a {!Governor.Trip}, where the trailing boundary switches were skipped)
    and resets the current operator. Call once after the root driver
    returns or raises. *)
val finish : t -> Counters.t -> unit

(** [merge_into ~into src] adds [src]'s per-operator totals into [into].
    Raises [Invalid_argument] when the profiles have different shapes. *)
val merge_into : into:t -> t -> unit

val pp : Format.formatter -> t -> unit
val to_string : t -> string
