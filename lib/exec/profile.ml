module Plan = Gf_plan.Plan
module Timing = Gf_util.Timing

type kind = Scan | Extend | Hash_join

let kind_to_string = function
  | Scan -> "scan"
  | Extend -> "extend"
  | Hash_join -> "hash-join"

type op = {
  id : int;
  label : string;
  kind : kind;
  depth : int;
  mutable produced : int;
  mutable icost : int;
  mutable cache_hits : int;
  mutable intersections : int;
  mutable hj_build : int;
  mutable hj_probe : int;
  mutable time_s : float;
}

(* Attribution works by *boundary switching*: the executor is a stack of
   nested closures, so at any instant exactly one operator is doing work.
   [cur] names it (-1 = outside any operator: scheduler idle loops, the
   user sink). Each switch charges the elapsed wall time and the counter
   deltas since the previous switch to the operator that was current —
   all counter mutations happen while the responsible operator is current,
   so the deltas need no per-counter instrumentation in the kernels. *)
type t = {
  plan : Plan.t;
  nodes : Plan.t array; (* preorder; index = operator id *)
  ops : op array;
  mutable cur : int;
  mutable last_t : float;
  mutable s_produced : int;
  mutable s_icost : int;
  mutable s_cache_hits : int;
  mutable s_intersections : int;
  mutable s_hj_build : int;
  mutable s_hj_probe : int;
  mutable outside_s : float;
}

let kind_of = function
  | Plan.Scan _ -> Scan
  | Plan.Extend _ -> Extend
  | Plan.Hash_join _ -> Hash_join

let create plan =
  let entries = Plan.operators plan in
  {
    plan;
    nodes = Array.map fst entries;
    ops =
      Array.mapi
        (fun i (n, depth) ->
          {
            id = i;
            label = Plan.op_label n;
            kind = kind_of n;
            depth;
            produced = 0;
            icost = 0;
            cache_hits = 0;
            intersections = 0;
            hj_build = 0;
            hj_probe = 0;
            time_s = 0.0;
          })
        entries;
    cur = -1;
    last_t = 0.0;
    s_produced = 0;
    s_icost = 0;
    s_cache_hits = 0;
    s_intersections = 0;
    s_hj_build = 0;
    s_hj_probe = 0;
    outside_s = 0.0;
  }

let fresh t = create t.plan
let plan t = t.plan
let ops t = t.ops
let outside_s t = t.outside_s

let id_of t node =
  let n = Array.length t.nodes in
  let rec go i =
    if i >= n then None else if t.nodes.(i) == node then Some i else go (i + 1)
  in
  go 0

let snapshot t (c : Counters.t) =
  t.s_produced <- c.Counters.produced;
  t.s_icost <- c.Counters.icost;
  t.s_cache_hits <- c.Counters.cache_hits;
  t.s_intersections <- c.Counters.intersections;
  t.s_hj_build <- c.Counters.hj_build_tuples;
  t.s_hj_probe <- c.Counters.hj_probe_tuples

let charge t (c : Counters.t) =
  let now = Timing.now_s () in
  let dt = now -. t.last_t in
  t.last_t <- now;
  if t.cur >= 0 then begin
    let o = t.ops.(t.cur) in
    o.time_s <- o.time_s +. dt;
    o.produced <- o.produced + (c.Counters.produced - t.s_produced);
    o.icost <- o.icost + (c.Counters.icost - t.s_icost);
    o.cache_hits <- o.cache_hits + (c.Counters.cache_hits - t.s_cache_hits);
    o.intersections <- o.intersections + (c.Counters.intersections - t.s_intersections);
    o.hj_build <- o.hj_build + (c.Counters.hj_build_tuples - t.s_hj_build);
    o.hj_probe <- o.hj_probe + (c.Counters.hj_probe_tuples - t.s_hj_probe)
  end
  else t.outside_s <- t.outside_s +. dt;
  snapshot t c

let enter t c id =
  charge t c;
  t.cur <- id

let start t c =
  t.cur <- -1;
  t.last_t <- Timing.now_s ();
  snapshot t c

let finish t c =
  charge t c;
  t.cur <- -1

let wrap t c id driver =
 fun sink ->
  let prev = t.cur in
  enter t c id;
  driver (fun tuple ->
      let inner = t.cur in
      enter t c prev;
      sink tuple;
      enter t c inner);
  enter t c prev

let merge_into ~into src =
  if Array.length into.ops <> Array.length src.ops then
    invalid_arg "Profile.merge_into: profiles of different plans";
  Array.iteri
    (fun i (o : op) ->
      let d = into.ops.(i) in
      d.produced <- d.produced + o.produced;
      d.icost <- d.icost + o.icost;
      d.cache_hits <- d.cache_hits + o.cache_hits;
      d.intersections <- d.intersections + o.intersections;
      d.hj_build <- d.hj_build + o.hj_build;
      d.hj_probe <- d.hj_probe + o.hj_probe;
      d.time_s <- d.time_s +. o.time_s)
    src.ops;
  into.outside_s <- into.outside_s +. src.outside_s

let pp fmt t =
  Format.fprintf fmt "@[<v 0>";
  Array.iter
    (fun o ->
      Format.fprintf fmt "%2d %s%-24s produced=%-10d icost=%-12d hits=%-8d time=%.4fs@,"
        o.id
        (String.make (2 * o.depth) ' ')
        o.label o.produced o.icost o.cache_hits o.time_s)
    t.ops;
  Format.fprintf fmt "   (outside operators: %.4fs)@]" t.outside_s

let to_string t = Format.asprintf "%a" pp t
