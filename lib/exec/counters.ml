type t = {
  mutable icost : int;
  mutable produced : int;
  mutable output : int;
  mutable cache_hits : int;
  mutable intersections : int;
  mutable hj_build_tuples : int;
  mutable hj_probe_tuples : int;
  mutable morsels : int;
  mutable steals : int;
  mutable busy_s : float;
  mutable gov_checks : int;
}

let create () =
  {
    icost = 0;
    produced = 0;
    output = 0;
    cache_hits = 0;
    intersections = 0;
    hj_build_tuples = 0;
    hj_probe_tuples = 0;
    morsels = 0;
    steals = 0;
    busy_s = 0.0;
    gov_checks = 0;
  }

let intermediate c = c.produced - c.output

let add dst src =
  dst.icost <- dst.icost + src.icost;
  dst.produced <- dst.produced + src.produced;
  dst.output <- dst.output + src.output;
  dst.cache_hits <- dst.cache_hits + src.cache_hits;
  dst.intersections <- dst.intersections + src.intersections;
  dst.hj_build_tuples <- dst.hj_build_tuples + src.hj_build_tuples;
  dst.hj_probe_tuples <- dst.hj_probe_tuples + src.hj_probe_tuples;
  dst.morsels <- dst.morsels + src.morsels;
  dst.steals <- dst.steals + src.steals;
  dst.busy_s <- dst.busy_s +. src.busy_s;
  dst.gov_checks <- dst.gov_checks + src.gov_checks

let merge cs =
  let out = create () in
  List.iter (add out) cs;
  out

let pp fmt c =
  Format.fprintf fmt
    "output=%d intermediate=%d icost=%d cache_hits=%d intersections=%d hj=(%d,%d)" c.output
    (intermediate c) c.icost c.cache_hits c.intersections c.hj_build_tuples c.hj_probe_tuples;
  if c.morsels > 0 then
    Format.fprintf fmt " morsels=%d steals=%d busy=%.3fs" c.morsels c.steals c.busy_s;
  if c.gov_checks > 0 then Format.fprintf fmt " gov_checks=%d" c.gov_checks
