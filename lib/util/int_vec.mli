(** Growable off-heap vectors of unboxed integers.

    Used pervasively as output buffers for intersections and as flat tuple
    storage. The backing store is a native-int [Bigarray] ([Buf.i64a]):
    contents are never scanned by the GC, OCaml reads and writes are
    allocation-free, and the C intersection kernels write results directly
    into the same buffer — the hot path never bounces between heap and
    off-heap representations. All operations are amortized O(1). *)

type t

(** [create ?capacity ()] is an empty vector. *)
val create : ?capacity:int -> unit -> t

val length : t -> int

(** [get v i] is the [i]th element. Raises [Invalid_argument] when out of
    bounds. *)
val get : t -> int -> int

val set : t -> int -> int -> unit

(** [unsafe_get v i] skips the bounds check; only for hot inner loops whose
    indices are proved in range by construction. *)
val unsafe_get : t -> int -> int

val push : t -> int -> unit

(** [clear v] resets the length to 0 without releasing storage. *)
val clear : t -> unit

val is_empty : t -> bool

(** [ensure v n] grows the backing store (geometrically) to hold at least
    [n] elements without changing the length. Kernels call this before
    handing the raw buffer to C. *)
val ensure : t -> int -> unit

(** [big v] is the raw backing bigarray; only indices
    [0 .. length v - 1] are meaningful, and the value is invalidated by
    the next growth. Passed to the C kernels. *)
val big : t -> Buf.i64a

(** [buf v] is the backing store as a width-tagged [Buf.t] — what
    intermediate intersection results are sliced from. *)
val buf : t -> Buf.t

(** [unsafe_set_len v n] declares [n] elements valid — used after a C
    kernel has written results in place. [n] must not exceed the ensured
    capacity. *)
val unsafe_set_len : t -> int -> unit

(** [capacity_bytes v] is the off-heap footprint of the backing store. *)
val capacity_bytes : t -> int

val to_array : t -> int array

val of_array : int array -> t

val iter : (int -> unit) -> t -> unit

val fold_left : ('a -> int -> 'a) -> 'a -> t -> 'a

(** [append dst src] pushes all elements of [src] onto [dst]. *)
val append : t -> t -> unit

(** [push_array dst a lo hi] pushes [a.(lo) .. a.(hi-1)] onto [dst]. *)
val push_array : t -> int array -> int -> int -> unit

(** [push_buf dst b lo hi] pushes a buffer range onto [dst], widening
    int32 elements as needed. *)
val push_buf : t -> Buf.t -> int -> int -> unit

(** [copy_from dst src] makes [dst] an exact copy of [src]'s contents,
    reusing [dst]'s storage when large enough. *)
val copy_from : t -> t -> unit

(** [blit_to_array v lo dst dlo n] copies [n] elements starting at [lo]
    into a heap array — the row-view boundary of the join table. *)
val blit_to_array : t -> int -> int array -> int -> int -> unit

val pp : Format.formatter -> t -> unit
