(** Work-stealing deques for the morsel-driven parallel executor.

    Each domain owns one deque: the owner pushes and pops at the bottom
    (LIFO, so freshly split work stays hot in its producer's cache), thieves
    steal from the top (FIFO, so they take the oldest — typically largest —
    unit of work). A single mutex per deque keeps the implementation obviously
    correct; operations are O(1) and the critical sections are a few words
    long, so contention is negligible next to the morsel execution they
    bracket. *)

type 'a t

(** [create ~dummy ()] is an empty deque. [dummy] fills unused slots so the
    ring buffer never retains stolen elements. *)
val create : ?capacity:int -> dummy:'a -> unit -> 'a t

(** [length t] is the current element count. Reading it without the lock is
    intentional: it is only used as a heuristic (bounding the local queue),
    and a stale value is harmless. *)
val length : 'a t -> int

(** [push_bottom t x] appends at the owner's end. *)
val push_bottom : 'a t -> 'a -> unit

(** [pop_bottom t] removes the newest element (owner side, LIFO). *)
val pop_bottom : 'a t -> 'a option

(** [steal t] removes the oldest element (thief side, FIFO). *)
val steal : 'a t -> 'a option
