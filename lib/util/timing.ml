let now () = Unix.gettimeofday ()

let now_s = now

let time f =
  let t0 = now () in
  let r = f () in
  (now () -. t0, r)

let time_s f = fst (time f)
