let now () = Unix.gettimeofday ()

let now_s = now

(* Integer microseconds on the same clock as [now_s]: the timestamp unit of
   the Chrome trace-event format, so span stamps need no conversion at
   export time. One clock for busy-time, profiles and traces keeps the
   three views of a run comparable. *)
let now_us () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e6))

let time f =
  let t0 = now () in
  let r = f () in
  (now () -. t0, r)

let time_s f = fst (time f)
