(** Intersection kernels over sorted integer slices.

    A slice is a triple [(arr, lo, hi)] denoting [arr.(lo) .. arr.(hi - 1)],
    strictly increasing. These kernels are the computational core of the
    EXTEND/INTERSECT operator: the worst-case optimal multiway intersection is
    realized as iterative 2-way in-tandem intersections, smallest lists first,
    with galloping (exponential) search when one side is much longer. *)

type slice = int array * int * int

val slice_len : slice -> int

(** [member a lo hi x] is binary search for [x] in the slice. *)
val member : int array -> int -> int -> int -> bool

(** [lower_bound a lo hi x] is the least index [i in [lo, hi]] with
    [a.(i) >= x] (or [hi] when none). *)
val lower_bound : int array -> int -> int -> int -> int

(** [gallop a lo hi x] is [lower_bound] by exponential search from [lo]:
    O(log d) in the distance [d] to the answer instead of O(log (hi - lo)),
    which is what makes skewed intersections and leapfrog seeks cheap. *)
val gallop : int array -> int -> int -> int -> int

(** [intersect2 out a alo ahi b blo bhi] appends the intersection of two
    sorted slices onto [out]. Switches between in-tandem merging and galloping
    depending on the length ratio. *)
val intersect2 :
  Int_vec.t -> int array -> int -> int -> int array -> int -> int -> unit

(** [intersect out slices ~scratch] appends the k-way intersection onto
    [out]. [scratch] is a reusable temporary buffer; [scratch2] is the second
    ping-pong buffer for 4-way-and-wider intersections — hot callers pass it
    to keep the E/I loop allocation-free, otherwise it is allocated on demand
    (3-way intersections never need it). With zero slices the result is
    empty; with one slice it is a copy of that slice. *)
val intersect :
  ?scratch2:Int_vec.t -> Int_vec.t -> slice array -> scratch:Int_vec.t -> unit

(** [leapfrog out slices] appends the k-way intersection onto [out] using
    the Leapfrog Triejoin unary join [Veldhuizen 2012]: all iterators chase
    the running maximum with galloping seeks, emitting on full agreement.
    Worst-case optimal like the pairwise cascade but with different
    constants: it touches every list once instead of narrowing through
    intermediate buffers. *)
val leapfrog : Int_vec.t -> slice array -> unit

(** [count_intersect2 a alo ahi b blo bhi] counts intersection size without
    materializing it. *)
val count_intersect2 : int array -> int -> int -> int array -> int -> int -> int

(** [is_sorted_strict a lo hi] checks strict ascending order (test helper). *)
val is_sorted_strict : int array -> int -> int -> bool
