(** Intersection kernels over sorted integer slices.

    A slice is a triple [(buf, lo, hi)] denoting [buf.(lo) .. buf.(hi - 1)],
    strictly increasing, over an off-heap {!Buf.t}. These kernels are the
    computational core of the EXTEND/INTERSECT operator: the worst-case
    optimal multiway intersection is realized as iterative 2-way
    intersections, smallest lists first.

    Two interchangeable pairwise kernels sit behind {!intersect2}: a
    portable scalar OCaml kernel (in-tandem merge switching to galloping
    search under skew) and C stubs over the raw Bigarray payloads —
    shuffle-based SSE/AVX2 pairwise intersection and blocked galloping,
    selected per-CPU at runtime. Both produce bit-identical output (the
    set intersection of strictly increasing sequences is unique); the
    differential test suite enforces it. Selection: the [GFQ_KERNEL]
    environment variable ([scalar|simd|auto], default [auto]) at startup,
    or {!set_kernel_mode} at runtime. *)

type slice = Buf.t * int * int

val slice_len : slice -> int

(** The canonical zero-length slice — placeholder for slice arrays. *)
val empty_slice : slice

(** [of_array a] copies a heap array into an off-heap slice (tests,
    benches, boundary callers). *)
val of_array : ?width:[ `Auto | `I32 | `I64 ] -> int array -> slice

(** {1 Kernel dispatch} *)

type kernel_mode = Scalar | Simd | Auto

val kernel_mode_of_string : string -> kernel_mode option
val kernel_mode_to_string : kernel_mode -> string

(** [set_kernel_mode m] routes subsequent {!intersect2} calls: [Scalar]
    forces the portable OCaml kernel, [Simd] the C stubs, [Auto] picks
    the stubs when the CPU has vector units. *)
val set_kernel_mode : kernel_mode -> unit

(** The currently requested mode. *)
val kernel_mode : unit -> kernel_mode

(** The resolved kernel actually running: ["scalar"], ["simd-avx2"],
    ["simd-sse"], or ["simd-c-scalar"] (C stubs forced on a CPU without
    vector units). *)
val kernel_name : unit -> string

(** Whether the C stubs report usable vector units (CPUID probe). *)
val simd_available : unit -> bool

(** [with_kernel_mode m f] runs [f] under mode [m], restoring the
    previous mode afterwards — the benchmark A/B harness. *)
val with_kernel_mode : kernel_mode -> (unit -> 'a) -> 'a

(** Raw CPUID probe level from the stubs: 0 none, 1 SSE4, 2 AVX2. *)
val cpu_level : unit -> int

(** {1 Search primitives} *)

(** [member a lo hi x] is binary search for [x] in the slice. *)
val member : Buf.t -> int -> int -> int -> bool

(** [lower_bound a lo hi x] is the least index [i in [lo, hi]] with
    [a.(i) >= x] (or [hi] when none). *)
val lower_bound : Buf.t -> int -> int -> int -> int

(** [gallop a lo hi x] is [lower_bound] by exponential search from [lo]:
    O(log d) in the distance [d] to the answer instead of O(log (hi - lo)),
    which is what makes skewed intersections and leapfrog seeks cheap. *)
val gallop : Buf.t -> int -> int -> int -> int

(** {1 Intersection} *)

(** [intersect2 out a alo ahi b blo bhi] appends the intersection of two
    sorted slices onto [out], through whichever kernel is active. *)
val intersect2 : Int_vec.t -> Buf.t -> int -> int -> Buf.t -> int -> int -> unit

(** [intersect out slices ~scratch] appends the k-way intersection onto
    [out]. [scratch] is a reusable temporary buffer; [scratch2] is the second
    ping-pong buffer for 4-way-and-wider intersections — hot callers pass it
    to keep the E/I loop allocation-free, otherwise it is allocated on demand
    (3-way intersections never need it). With zero slices the result is
    empty; with one slice it is a copy of that slice. *)
val intersect :
  ?scratch2:Int_vec.t -> Int_vec.t -> slice array -> scratch:Int_vec.t -> unit

(** [leapfrog out slices] appends the k-way intersection onto [out] using
    the Leapfrog Triejoin unary join [Veldhuizen 2012]: all iterators chase
    the running maximum with galloping seeks, emitting on full agreement.
    Worst-case optimal like the pairwise cascade but with different
    constants: it touches every list once instead of narrowing through
    intermediate buffers. Always the portable OCaml implementation. *)
val leapfrog : Int_vec.t -> slice array -> unit

(** [count_intersect2 a alo ahi b blo bhi] counts intersection size without
    materializing it. *)
val count_intersect2 : Buf.t -> int -> int -> Buf.t -> int -> int -> int

(** [is_sorted_strict a lo hi] checks strict ascending order (test helper). *)
val is_sorted_strict : Buf.t -> int -> int -> bool
