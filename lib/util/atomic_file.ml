let write ?(fsync = true) ?(before_rename = fun _ -> ()) path f =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out tmp in
  (try
     f oc;
     flush oc;
     if fsync then Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  before_rename tmp;
  try Sys.rename tmp path
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e
