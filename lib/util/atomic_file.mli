(** Crash-safe file writes: write-to-temp-then-rename.

    [write path f] writes the file produced by [f] to a temporary sibling
    ([path.tmp.<pid>], same directory so the rename cannot cross a
    filesystem), fsyncs it, and atomically renames it over [path]. A crash
    — or an exception from [f] — at any point before the rename leaves the
    previous contents of [path] intact; at worst a stale [*.tmp.*] sibling
    survives a kill -9, and the next successful [write] simply replaces the
    target. On an exception the temp file is removed and the exception
    re-raised. *)

(** [write path f] atomically replaces [path] with the bytes [f] writes.
    [fsync] (default [true]) flushes the temp file to disk before the
    rename, so a machine crash cannot publish a hole-filled file.
    [before_rename] runs after the temp file is durable but before the
    rename publishes it, receiving the temp path — the window where crash
    torture injects kill -9 to prove a half-finished checkpoint is
    invisible. *)
val write :
  ?fsync:bool -> ?before_rename:(string -> unit) -> string -> (out_channel -> unit) -> unit
