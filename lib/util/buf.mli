(** Off-heap integer buffers backing the CSR graph and all intersection
    kernels.

    A buffer is a [Bigarray.Array1] living outside the OCaml heap: the GC
    never scans its contents, C kernels address it directly, and a
    snapshot file can be [Unix.map_file]'d straight into one with zero
    deserialization. Adjacency stores vertex ids, so the narrow [I32]
    representation is chosen whenever every value fits in an [int32]
    (n < 2^31); offsets and intersection outputs use the native-width
    [I64] form, whose elements are untagged OCaml [int]s — reads and
    writes from OCaml are allocation-free for both widths. *)

type i32a = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t
type i64a = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(** A width-tagged off-heap buffer. The tag is matched once per kernel
    call, not per element: hot loops are monomorphic per width. *)
type t = I32 of i32a | I64 of i64a

val empty : t

val alloc_i32 : int -> i32a
val alloc_i64 : int -> i64a

(** [alloc ~max_value n] picks the narrowest width that can hold
    [max_value] (the caller's value bound, e.g. [num_vertices - 1]). *)
val alloc : max_value:int -> int -> t

val length : t -> int

(** [width_bytes t] is 4 or 8. *)
val width_bytes : t -> int

(** [bytes t] is the off-heap footprint of the payload. *)
val bytes : t -> int

val get : t -> int -> int
val unsafe_get : t -> int -> int

(** [set t i x] stores [x]; raises when [x] does not fit an [I32]. *)
val set : t -> int -> int -> unit

val unsafe_set : t -> int -> int -> unit

(** [of_int_array ?width a] copies a heap array into a fresh buffer.
    [`Auto] (default) narrows to int32 when every value fits. *)
val of_int_array : ?width:[ `Auto | `I32 | `I64 ] -> int array -> t

(** [sub_array t lo hi] materializes [t.(lo) .. t.(hi-1)] as a heap
    array — boundary helper for non-hot callers. *)
val sub_array : t -> int -> int -> int array

val to_int_array : t -> int array

(** [blit_to_array t lo dst dlo n] copies [n] elements into a heap
    array. *)
val blit_to_array : t -> int -> int array -> int -> int -> unit

(** [iter_range f t lo hi] applies [f] over [t.(lo) .. t.(hi-1)] with a
    per-width monomorphic loop. *)
val iter_range : (int -> unit) -> t -> int -> int -> unit
