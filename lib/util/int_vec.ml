type t = { mutable data : Buf.i64a; mutable len : int }

let create ?(capacity = 16) () =
  { data = Buf.alloc_i64 (max capacity 1); len = 0 }

let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Int_vec.get";
  Bigarray.Array1.unsafe_get v.data i

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Int_vec.set";
  Bigarray.Array1.unsafe_set v.data i x

let unsafe_get v i = Bigarray.Array1.unsafe_get v.data i

let ensure v n =
  if n > Bigarray.Array1.dim v.data then begin
    let cap = ref (Bigarray.Array1.dim v.data) in
    while !cap < n do
      cap := !cap * 2
    done;
    let data = Buf.alloc_i64 !cap in
    if v.len > 0 then
      Bigarray.Array1.blit
        (Bigarray.Array1.sub v.data 0 v.len)
        (Bigarray.Array1.sub data 0 v.len);
    v.data <- data
  end

let push v x =
  ensure v (v.len + 1);
  Bigarray.Array1.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let clear v = v.len <- 0
let is_empty v = v.len = 0
let big v = v.data
let buf v = Buf.I64 v.data
let unsafe_set_len v n = v.len <- n
let capacity_bytes v = Bigarray.Array1.dim v.data * 8

let to_array v = Array.init v.len (fun i -> Bigarray.Array1.unsafe_get v.data i)

let of_array a =
  let v = create ~capacity:(max 1 (Array.length a)) () in
  for i = 0 to Array.length a - 1 do
    Bigarray.Array1.unsafe_set v.data i a.(i)
  done;
  v.len <- Array.length a;
  v

let iter f v =
  for i = 0 to v.len - 1 do
    f (Bigarray.Array1.unsafe_get v.data i)
  done

let fold_left f init v =
  let acc = ref init in
  for i = 0 to v.len - 1 do
    acc := f !acc (Bigarray.Array1.unsafe_get v.data i)
  done;
  !acc

let push_array dst a lo hi =
  let n = hi - lo in
  if n > 0 then begin
    ensure dst (dst.len + n);
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set dst.data (dst.len + i) a.(lo + i)
    done;
    dst.len <- dst.len + n
  end

let push_buf dst b lo hi =
  let n = hi - lo in
  if n > 0 then begin
    ensure dst (dst.len + n);
    (match b with
    | Buf.I64 src ->
        Bigarray.Array1.blit
          (Bigarray.Array1.sub src lo n)
          (Bigarray.Array1.sub dst.data dst.len n)
    | Buf.I32 src ->
        for i = 0 to n - 1 do
          Bigarray.Array1.unsafe_set dst.data (dst.len + i)
            (Int32.to_int (Bigarray.Array1.unsafe_get src (lo + i)))
        done);
    dst.len <- dst.len + n
  end

let append dst src = push_buf dst (Buf.I64 src.data) 0 src.len

let copy_from dst src =
  ensure dst src.len;
  if src.len > 0 then
    Bigarray.Array1.blit
      (Bigarray.Array1.sub src.data 0 src.len)
      (Bigarray.Array1.sub dst.data 0 src.len);
  dst.len <- src.len

let blit_to_array v lo dst dlo n =
  for i = 0 to n - 1 do
    dst.(dlo + i) <- Bigarray.Array1.unsafe_get v.data (lo + i)
  done

let pp fmt v =
  Format.fprintf fmt "[@[";
  for i = 0 to v.len - 1 do
    if i > 0 then Format.fprintf fmt ";@ ";
    Format.fprintf fmt "%d" (Bigarray.Array1.unsafe_get v.data i)
  done;
  Format.fprintf fmt "@]]"
