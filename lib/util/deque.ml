type 'a t = {
  lock : Mutex.t;
  mutable buf : 'a array; (* ring buffer *)
  mutable head : int; (* index of the oldest element *)
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 16) ~dummy () =
  { lock = Mutex.create (); buf = Array.make (max capacity 1) dummy; head = 0; len = 0; dummy }

let length t = t.len

let grow t =
  let cap = Array.length t.buf in
  let nbuf = Array.make (2 * cap) t.dummy in
  for i = 0 to t.len - 1 do
    nbuf.(i) <- t.buf.((t.head + i) mod cap)
  done;
  t.buf <- nbuf;
  t.head <- 0

let push_bottom t x =
  Mutex.lock t.lock;
  if t.len = Array.length t.buf then grow t;
  t.buf.((t.head + t.len) mod Array.length t.buf) <- x;
  t.len <- t.len + 1;
  Mutex.unlock t.lock

let pop_bottom t =
  Mutex.lock t.lock;
  let r =
    if t.len = 0 then None
    else begin
      let i = (t.head + t.len - 1) mod Array.length t.buf in
      let x = t.buf.(i) in
      t.buf.(i) <- t.dummy;
      t.len <- t.len - 1;
      Some x
    end
  in
  Mutex.unlock t.lock;
  r

let steal t =
  Mutex.lock t.lock;
  let r =
    if t.len = 0 then None
    else begin
      let x = t.buf.(t.head) in
      t.buf.(t.head) <- t.dummy;
      t.head <- (t.head + 1) mod Array.length t.buf;
      t.len <- t.len - 1;
      Some x
    end
  in
  Mutex.unlock t.lock;
  r
