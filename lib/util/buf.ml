type i32a = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t
type i64a = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = I32 of i32a | I64 of i64a

let alloc_i32 n : i32a = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout n
let alloc_i64 n : i64a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

let empty : t = I64 (alloc_i64 0)

(* int32 adjacency iff every stored value fits; the threshold is a value
   bound, not a length bound, because adjacency stores vertex ids. *)
let i32_max = 0x7fffffff

let alloc ~max_value n =
  if max_value <= i32_max then I32 (alloc_i32 n) else I64 (alloc_i64 n)

let length = function
  | I32 a -> Bigarray.Array1.dim a
  | I64 a -> Bigarray.Array1.dim a

let width_bytes = function I32 _ -> 4 | I64 _ -> 8
let bytes t = length t * width_bytes t

let unsafe_get t i =
  match t with
  | I32 a -> Int32.to_int (Bigarray.Array1.unsafe_get a i)
  | I64 a -> Bigarray.Array1.unsafe_get a i

let get t i =
  if i < 0 || i >= length t then invalid_arg "Buf.get";
  unsafe_get t i

let unsafe_set t i x =
  match t with
  | I32 a -> Bigarray.Array1.unsafe_set a i (Int32.of_int x)
  | I64 a -> Bigarray.Array1.unsafe_set a i x

let set t i x =
  if i < 0 || i >= length t then invalid_arg "Buf.set";
  match t with
  | I32 a ->
      if x < 0 || x > i32_max then invalid_arg "Buf.set: value exceeds int32";
      Bigarray.Array1.unsafe_set a i (Int32.of_int x)
  | I64 a -> Bigarray.Array1.unsafe_set a i x

let of_int_array ?(width = `Auto) a =
  let n = Array.length a in
  let max_v = Array.fold_left max 0 a in
  let use_i32 =
    match width with `I32 -> true | `I64 -> false | `Auto -> max_v <= i32_max
  in
  if use_i32 then begin
    let b = alloc_i32 n in
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set b i (Int32.of_int a.(i))
    done;
    I32 b
  end
  else begin
    let b = alloc_i64 n in
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set b i a.(i)
    done;
    I64 b
  end

let sub_array t lo hi =
  if lo < 0 || hi > length t || lo > hi then invalid_arg "Buf.sub_array";
  Array.init (hi - lo) (fun i -> unsafe_get t (lo + i))

let to_int_array t = sub_array t 0 (length t)

let blit_to_array t lo dst dlo n =
  for i = 0 to n - 1 do
    dst.(dlo + i) <- unsafe_get t (lo + i)
  done

let iter_range f t lo hi =
  match t with
  | I32 a ->
      for i = lo to hi - 1 do
        f (Int32.to_int (Bigarray.Array1.unsafe_get a i))
      done
  | I64 a ->
      for i = lo to hi - 1 do
        f (Bigarray.Array1.unsafe_get a i)
      done
