/* Native intersection kernels over off-heap sorted integer buffers.
 *
 * Inputs are Bigarray payloads: int32 adjacency (graphs with n < 2^31),
 * native-int (64-bit untagged) intermediate buffers. Outputs are always
 * written into a native-int Bigarray (the Int_vec backing store), starting
 * at a caller-supplied position; every entry point returns the new length.
 * The OCaml caller guarantees capacity >= pos + min(|a|, |b|) + 8 — the
 * vectorized paths use unconditional full-width stores, so up to 8 lanes
 * of scratch beyond the logical length may be clobbered.
 *
 * Dispatch is CPUID-based and happens once: gfq_cpu_level() probes AVX2 /
 * SSE4.2 support at first use; non-x86 builds compile only the portable
 * scalar paths and report level 0. All stubs are [@@noalloc]: they never
 * allocate, raise, or touch the OCaml heap beyond reading tagged ints.
 */

#include <caml/mlvalues.h>
#include <caml/bigarray.h>
#include <stdint.h>
#include <string.h>

#if defined(__x86_64__) || defined(_M_X64)
#define GFQ_X86 1
#include <immintrin.h>
#endif

/* ------------------------------------------------------------------ */
/* CPU feature probe                                                   */
/* ------------------------------------------------------------------ */

static int cpu_level_cache = -1;

static int probe_cpu_level(void)
{
#ifdef GFQ_X86
  if (__builtin_cpu_supports("avx2")) return 2;
  if (__builtin_cpu_supports("sse4.2")) return 1;
#endif
  return 0;
}

static inline int cpu_level(void)
{
  if (cpu_level_cache < 0) cpu_level_cache = probe_cpu_level();
  return cpu_level_cache;
}

value gfq_cpu_level(value unit)
{
  (void)unit;
  return Val_long(cpu_level());
}

/* ------------------------------------------------------------------ */
/* Portable scalar kernels (macro-stamped per width combination)       */
/* ------------------------------------------------------------------ */

/* Exponential bracket + binary search: first index in [lo, hi) with
 * b[i] >= x, assuming b sorted ascending. O(log d) in the distance d. */
#define DEF_GALLOP(NAME, T)                                                  \
  static intnat NAME(const T *b, intnat lo, intnat hi, T x)                  \
  {                                                                          \
    intnat prev, cur, step, l, h;                                            \
    if (lo >= hi || b[lo] >= x) return lo;                                   \
    step = 1;                                                                \
    prev = lo;                                                               \
    cur = lo + 1;                                                            \
    while (cur < hi && b[cur] < x) {                                         \
      prev = cur;                                                            \
      step <<= 1;                                                            \
      cur += step;                                                           \
      if (cur > hi) cur = hi;                                                \
    }                                                                        \
    l = prev + 1;                                                            \
    h = cur < hi ? cur : hi;                                                 \
    while (l < h) {                                                          \
      intnat mid = l + ((h - l) >> 1);                                       \
      if (b[mid] < x) l = mid + 1; else h = mid;                             \
    }                                                                        \
    return l;                                                                \
  }

DEF_GALLOP(gallop_i32, int32_t)
DEF_GALLOP(gallop_i64, intnat)

/* Scalar intersection with the same shape heuristic as the OCaml
 * fallback: in-tandem merge for comparable lengths, per-element galloping
 * when one side dominates. Output is the set intersection of two strictly
 * increasing sequences, so every correct kernel emits bit-identical
 * results. */
#define DEF_SCALAR_INTERSECT(NAME, TA, TB, GALLOP_B, GALLOP_A)               \
  static intnat NAME(const TA *a, intnat alo, intnat ahi, const TB *b,       \
                     intnat blo, intnat bhi, intnat *out, intnat n)          \
  {                                                                          \
    intnat la = ahi - alo, lb = bhi - blo;                                   \
    if (la == 0 || lb == 0) return n;                                        \
    if (lb > la * 16) {                                                      \
      intnat i = alo, j = blo;                                               \
      while (i < ahi && j < bhi) {                                           \
        TB x = (TB)a[i];                                                     \
        j = GALLOP_B(b, j, bhi, x);                                          \
        if (j < bhi && b[j] == x) { out[n++] = (intnat)x; j++; }             \
        i++;                                                                 \
      }                                                                      \
    } else if (la > lb * 16) {                                               \
      intnat i = alo, j = blo;                                               \
      while (i < ahi && j < bhi) {                                           \
        TA x = (TA)b[j];                                                     \
        i = GALLOP_A(a, i, ahi, x);                                          \
        if (i < ahi && a[i] == x) { out[n++] = (intnat)x; i++; }             \
        j++;                                                                 \
      }                                                                      \
    } else {                                                                 \
      intnat i = alo, j = blo;                                               \
      while (i < ahi && j < bhi) {                                           \
        intnat x = (intnat)a[i], y = (intnat)b[j];                           \
        if (x < y) i++;                                                      \
        else if (y < x) j++;                                                 \
        else { out[n++] = x; i++; j++; }                                     \
      }                                                                      \
    }                                                                        \
    return n;                                                                \
  }

DEF_SCALAR_INTERSECT(isect_scalar_i32_i32, int32_t, int32_t, gallop_i32, gallop_i32)
DEF_SCALAR_INTERSECT(isect_scalar_i64_i32, intnat, int32_t, gallop_i32, gallop_i64)
DEF_SCALAR_INTERSECT(isect_scalar_i64_i64, intnat, intnat, gallop_i64, gallop_i64)

#ifdef GFQ_X86

/* ------------------------------------------------------------------ */
/* Vectorized kernels (AVX2; SSE4.2 machines take the scalar C path)   */
/* ------------------------------------------------------------------ */

/* shuffle control for compacting matched 4-byte lanes to the front:
 * shuf_tab[mask] packs the lanes whose bit is set in mask, zeroing the
 * rest. Filled once at load time. */
static uint8_t shuf_tab[16][16];

__attribute__((constructor)) static void gfq_init_shuf_tab(void)
{
  for (int m = 0; m < 16; m++) {
    int k = 0;
    for (int lane = 0; lane < 4; lane++) {
      if (m & (1 << lane)) {
        for (int byte = 0; byte < 4; byte++)
          shuf_tab[m][4 * k + byte] = (uint8_t)(4 * lane + byte);
        k++;
      }
    }
    for (; k < 4; k++)
      for (int byte = 0; byte < 4; byte++)
        shuf_tab[m][4 * k + byte] = 0x80; /* zero the slack lanes */
  }
}

/* Blocked gallop, i32: resolve the common short hop with one 8-lane
 * compare before falling back to exponential search. Returns the first
 * index in [j, hi) with b[i] >= x. */
__attribute__((target("avx2")))
static inline intnat gallop32_avx2(const int32_t *b, intnat j, intnat hi,
                                   int32_t x)
{
  if (j < hi && b[j] >= x) return j;
  if (j + 8 <= hi) {
    __m256i vx = _mm256_set1_epi32(x);
    __m256i vb = _mm256_loadu_si256((const __m256i *)(b + j));
    /* lanes where b < x */
    unsigned lt = (unsigned)_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(vx, vb)));
    if (lt != 0xffu) return j + __builtin_ctz(~lt);
    j += 8;
  }
  return gallop_i32(b, j, hi, x);
}

/* Balanced i32 x i32: the classic 4x4 shuffle kernel. Compare a 4-lane
 * block of a against all rotations of a 4-lane block of b, compact the
 * matches with a byte shuffle, widen to int64 and store; advance the
 * side(s) whose block maximum was not larger. */
__attribute__((target("avx2")))
static intnat isect32_shuffle(const int32_t *a, intnat alo, intnat ahi,
                              const int32_t *b, intnat blo, intnat bhi,
                              intnat *out, intnat n)
{
  intnat i = alo, j = blo;
  while (i + 4 <= ahi && j + 4 <= bhi) {
    __m128i va = _mm_loadu_si128((const __m128i *)(a + i));
    __m128i vb = _mm_loadu_si128((const __m128i *)(b + j));
    __m128i c0 = _mm_cmpeq_epi32(va, vb);
    __m128i c1 =
        _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1)));
    __m128i c2 =
        _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2)));
    __m128i c3 =
        _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3)));
    __m128i any = _mm_or_si128(_mm_or_si128(c0, c1), _mm_or_si128(c2, c3));
    unsigned mask = (unsigned)_mm_movemask_ps(_mm_castsi128_ps(any));
    __m128i packed =
        _mm_shuffle_epi8(va, _mm_loadu_si128((const __m128i *)shuf_tab[mask]));
    _mm256_storeu_si256((__m256i *)(out + n), _mm256_cvtepi32_epi64(packed));
    n += (intnat)__builtin_popcount(mask);
    int32_t amax = a[i + 3], bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  /* tandem tail */
  while (i < ahi && j < bhi) {
    int32_t x = a[i], y = b[j];
    if (x < y) i++;
    else if (y < x) j++;
    else { out[n++] = (intnat)x; i++; j++; }
  }
  return n;
}

/* Skewed i32 x i32: iterate the short side, blocked-gallop the long one. */
__attribute__((target("avx2")))
static intnat isect32_gallop_avx2(const int32_t *a, intnat alo, intnat ahi,
                                  const int32_t *b, intnat blo, intnat bhi,
                                  intnat *out, intnat n)
{
  intnat i = alo, j = blo;
  while (i < ahi && j < bhi) {
    int32_t x = a[i];
    j = gallop32_avx2(b, j, bhi, x);
    if (j < bhi && b[j] == x) { out[n++] = (intnat)x; j++; }
    i++;
  }
  return n;
}

__attribute__((target("avx2")))
static intnat isect_avx2_i32_i32(const int32_t *a, intnat alo, intnat ahi,
                                 const int32_t *b, intnat blo, intnat bhi,
                                 intnat *out, intnat n)
{
  intnat la = ahi - alo, lb = bhi - blo;
  if (la == 0 || lb == 0) return n;
  if (lb > la * 16) return isect32_gallop_avx2(a, alo, ahi, b, blo, bhi, out, n);
  if (la > lb * 16) return isect32_gallop_avx2(b, blo, bhi, a, alo, ahi, out, n);
  return isect32_shuffle(a, alo, ahi, b, blo, bhi, out, n);
}

/* Blocked gallop, native-int lanes (4 per AVX2 vector). */
__attribute__((target("avx2")))
static inline intnat gallop64_avx2(const intnat *b, intnat j, intnat hi,
                                   intnat x)
{
  if (j < hi && b[j] >= x) return j;
  if (j + 4 <= hi) {
    __m256i vx = _mm256_set1_epi64x((long long)x);
    __m256i vb = _mm256_loadu_si256((const __m256i *)(b + j));
    unsigned lt = (unsigned)_mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpgt_epi64(vx, vb)));
    if (lt != 0xfu) return j + __builtin_ctz(~lt);
    j += 4;
  }
  return gallop_i64(b, j, hi, x);
}

__attribute__((target("avx2")))
static intnat isect_avx2_i64_i32(const intnat *a, intnat alo, intnat ahi,
                                 const int32_t *b, intnat blo, intnat bhi,
                                 intnat *out, intnat n)
{
  intnat la = ahi - alo, lb = bhi - blo;
  if (la == 0 || lb == 0) return n;
  if (lb > la * 16) {
    intnat i = alo, j = blo;
    while (i < ahi && j < bhi) {
      int32_t x = (int32_t)a[i];
      j = gallop32_avx2(b, j, bhi, x);
      if (j < bhi && b[j] == x) { out[n++] = (intnat)x; j++; }
      i++;
    }
    return n;
  }
  if (la > lb * 16) {
    intnat i = alo, j = blo;
    while (i < ahi && j < bhi) {
      intnat x = (intnat)b[j];
      i = gallop64_avx2(a, i, ahi, x);
      if (i < ahi && a[i] == x) { out[n++] = x; i++; }
      j++;
    }
    return n;
  }
  return isect_scalar_i64_i32(a, alo, ahi, b, blo, bhi, out, n);
}

__attribute__((target("avx2")))
static intnat isect_avx2_i64_i64(const intnat *a, intnat alo, intnat ahi,
                                 const intnat *b, intnat blo, intnat bhi,
                                 intnat *out, intnat n)
{
  intnat la = ahi - alo, lb = bhi - blo;
  if (la == 0 || lb == 0) return n;
  if (lb > la * 16) {
    intnat i = alo, j = blo;
    while (i < ahi && j < bhi) {
      intnat x = a[i];
      j = gallop64_avx2(b, j, bhi, x);
      if (j < bhi && b[j] == x) { out[n++] = x; j++; }
      i++;
    }
    return n;
  }
  if (la > lb * 16) {
    intnat i = alo, j = blo;
    while (i < ahi && j < bhi) {
      intnat x = b[j];
      i = gallop64_avx2(a, i, ahi, x);
      if (i < ahi && a[i] == x) { out[n++] = x; i++; }
      j++;
    }
    return n;
  }
  return isect_scalar_i64_i64(a, alo, ahi, b, blo, bhi, out, n);
}

#endif /* GFQ_X86 */

/* ------------------------------------------------------------------ */
/* OCaml entry points                                                  */
/* ------------------------------------------------------------------ */

value gfq_intersect_i32_i32(value va, value valo, value vahi, value vb,
                            value vblo, value vbhi, value vout, value vpos)
{
  const int32_t *a = (const int32_t *)Caml_ba_data_val(va);
  const int32_t *b = (const int32_t *)Caml_ba_data_val(vb);
  intnat *out = (intnat *)Caml_ba_data_val(vout);
  intnat alo = Long_val(valo), ahi = Long_val(vahi);
  intnat blo = Long_val(vblo), bhi = Long_val(vbhi);
  intnat n = Long_val(vpos);
#ifdef GFQ_X86
  if (cpu_level() >= 2)
    return Val_long(isect_avx2_i32_i32(a, alo, ahi, b, blo, bhi, out, n));
#endif
  return Val_long(isect_scalar_i32_i32(a, alo, ahi, b, blo, bhi, out, n));
}

value gfq_intersect_i32_i32_bc(value *argv, int argn)
{
  (void)argn;
  return gfq_intersect_i32_i32(argv[0], argv[1], argv[2], argv[3], argv[4],
                               argv[5], argv[6], argv[7]);
}

value gfq_intersect_i64_i32(value va, value valo, value vahi, value vb,
                            value vblo, value vbhi, value vout, value vpos)
{
  const intnat *a = (const intnat *)Caml_ba_data_val(va);
  const int32_t *b = (const int32_t *)Caml_ba_data_val(vb);
  intnat *out = (intnat *)Caml_ba_data_val(vout);
  intnat alo = Long_val(valo), ahi = Long_val(vahi);
  intnat blo = Long_val(vblo), bhi = Long_val(vbhi);
  intnat n = Long_val(vpos);
#ifdef GFQ_X86
  if (cpu_level() >= 2)
    return Val_long(isect_avx2_i64_i32(a, alo, ahi, b, blo, bhi, out, n));
#endif
  return Val_long(isect_scalar_i64_i32(a, alo, ahi, b, blo, bhi, out, n));
}

value gfq_intersect_i64_i32_bc(value *argv, int argn)
{
  (void)argn;
  return gfq_intersect_i64_i32(argv[0], argv[1], argv[2], argv[3], argv[4],
                               argv[5], argv[6], argv[7]);
}

value gfq_intersect_i64_i64(value va, value valo, value vahi, value vb,
                            value vblo, value vbhi, value vout, value vpos)
{
  const intnat *a = (const intnat *)Caml_ba_data_val(va);
  const intnat *b = (const intnat *)Caml_ba_data_val(vb);
  intnat *out = (intnat *)Caml_ba_data_val(vout);
  intnat alo = Long_val(valo), ahi = Long_val(vahi);
  intnat blo = Long_val(vblo), bhi = Long_val(vbhi);
  intnat n = Long_val(vpos);
#ifdef GFQ_X86
  if (cpu_level() >= 2)
    return Val_long(isect_avx2_i64_i64(a, alo, ahi, b, blo, bhi, out, n));
#endif
  return Val_long(isect_scalar_i64_i64(a, alo, ahi, b, blo, bhi, out, n));
}

value gfq_intersect_i64_i64_bc(value *argv, int argn)
{
  (void)argn;
  return gfq_intersect_i64_i64(argv[0], argv[1], argv[2], argv[3], argv[4],
                               argv[5], argv[6], argv[7]);
}
