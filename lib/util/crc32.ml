(* CRC-32/ISO-HDLC: reflected polynomial 0xEDB88320, init 0xFFFFFFFF,
   final xor 0xFFFFFFFF — the checksum zlib, PNG, and gzip use. The
   accumulator is kept pre-inverted so [update] is a pure table loop. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let init = 0xFFFFFFFFl

let update crc bytes pos len =
  if pos < 0 || len < 0 || pos + len > Bytes.length bytes then
    invalid_arg "Crc32.update: range out of bounds";
  let table = Lazy.force table in
  let crc = ref crc in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code (Bytes.unsafe_get bytes i)))) 0xFFl)
    in
    crc := Int32.logxor (Array.unsafe_get table idx) (Int32.shift_right_logical !crc 8)
  done;
  !crc

let update_string crc s = update crc (Bytes.unsafe_of_string s) 0 (String.length s)
let finish crc = Int32.logxor crc 0xFFFFFFFFl
let string s = finish (update_string init s)
let bytes b = finish (update init b 0 (Bytes.length b))
