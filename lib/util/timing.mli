(** Wall-clock timing helpers for the benchmark harness. *)

(** [now_s ()] is the current wall-clock time in seconds, for accumulating
    per-domain busy-time in the parallel executor. *)
val now_s : unit -> float

(** [time f] runs [f ()] and returns [(seconds, result)]. *)
val time : (unit -> 'a) -> float * 'a

(** [time_s f] is just the elapsed seconds. *)
val time_s : (unit -> unit) -> float
