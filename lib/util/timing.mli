(** Wall-clock timing helpers for the benchmark harness. *)

(** [now_s ()] is the current wall-clock time in seconds, for accumulating
    per-domain busy-time in the parallel executor. *)
val now_s : unit -> float

(** [now_us ()] is the same clock in integer microseconds — the native
    timestamp unit of Chrome trace-event JSON, used by [Gf_obs.Trace]. *)
val now_us : unit -> int

(** [time f] runs [f ()] and returns [(seconds, result)]. *)
val time : (unit -> 'a) -> float * 'a

(** [time_s f] is just the elapsed seconds. *)
val time_s : (unit -> unit) -> float
