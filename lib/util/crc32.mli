(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.

    The integrity check behind every durable byte this system writes: the
    write-ahead log frames each record with a CRC of its payload, and v2
    binary snapshots carry one checksum per section so bit-rot is caught
    when the file is opened, not as silently wrong query results.

    Checksums are incremental: feed chunks through {!update} as they are
    written, so a multi-gigabyte section never needs a second pass. *)

(** The initial accumulator value. *)
val init : int32

(** [update crc bytes pos len] folds [len] bytes starting at [pos] into the
    running checksum. *)
val update : int32 -> Bytes.t -> int -> int -> int32

(** [update_string crc s] folds a whole string. *)
val update_string : int32 -> string -> int32

(** [finish crc] is the final CRC-32 value for the accumulated input. *)
val finish : int32 -> int32

(** [string s] / [bytes b] are one-shot conveniences. *)
val string : string -> int32

val bytes : Bytes.t -> int32
