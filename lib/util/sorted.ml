type slice = Buf.t * int * int

let slice_len ((_, lo, hi) : slice) = hi - lo
let empty_slice : slice = (Buf.empty, 0, 0)

let of_array ?width a : slice = (Buf.of_int_array ?width a, 0, Array.length a)

(* ------------------------------------------------------------------ *)
(* C stubs and kernel dispatch                                         *)
(* ------------------------------------------------------------------ *)

external cpu_level : unit -> int = "gfq_cpu_level" [@@noalloc]

external c_intersect_i32_i32 :
  Buf.i32a -> int -> int -> Buf.i32a -> int -> int -> Buf.i64a -> int -> int
  = "gfq_intersect_i32_i32_bc" "gfq_intersect_i32_i32"
[@@noalloc]

external c_intersect_i64_i32 :
  Buf.i64a -> int -> int -> Buf.i32a -> int -> int -> Buf.i64a -> int -> int
  = "gfq_intersect_i64_i32_bc" "gfq_intersect_i64_i32"
[@@noalloc]

external c_intersect_i64_i64 :
  Buf.i64a -> int -> int -> Buf.i64a -> int -> int -> Buf.i64a -> int -> int
  = "gfq_intersect_i64_i64_bc" "gfq_intersect_i64_i64"
[@@noalloc]

type kernel_mode = Scalar | Simd | Auto

let kernel_mode_to_string = function
  | Scalar -> "scalar"
  | Simd -> "simd"
  | Auto -> "auto"

let kernel_mode_of_string = function
  | "scalar" -> Some Scalar
  | "simd" -> Some Simd
  | "auto" -> Some Auto
  | _ -> None

let simd_available () = cpu_level () >= 1

let requested = ref Auto
let use_simd = ref false

let set_kernel_mode m =
  requested := m;
  use_simd :=
    match m with Scalar -> false | Simd -> true | Auto -> simd_available ()

let kernel_mode () = !requested

(* The resolved kernel, for `stats` and benchmark reports. A forced [Simd]
   on hardware without vector units still runs through the C stubs, whose
   internal dispatch falls back to portable scalar C — reported
   distinctly so an A/B knows what it measured. *)
let kernel_name () =
  if not !use_simd then "scalar"
  else
    match cpu_level () with
    | 2 -> "simd-avx2"
    | 1 -> "simd-sse"
    | _ -> "simd-c-scalar"

let with_kernel_mode m f =
  let saved = !requested in
  set_kernel_mode m;
  Fun.protect ~finally:(fun () -> set_kernel_mode saved) f

let () =
  set_kernel_mode
    (match Sys.getenv_opt "GFQ_KERNEL" with
    | Some s -> (
        match kernel_mode_of_string (String.lowercase_ascii (String.trim s)) with
        | Some m -> m
        | None -> Auto)
    | None -> Auto)

(* ------------------------------------------------------------------ *)
(* Search primitives (portable, allocation-free)                       *)
(* ------------------------------------------------------------------ *)

let lower_bound a lo hi x =
  let l = ref lo and h = ref hi in
  while !l < !h do
    let mid = (!l + !h) / 2 in
    if Buf.unsafe_get a mid < x then l := mid + 1 else h := mid
  done;
  !l

let member a lo hi x =
  let i = lower_bound a lo hi x in
  i < hi && Buf.unsafe_get a i = x

(* Exponential search for x in a.(lo..hi-1), returns the least index with
   a.(i) >= x. Starts from lo, doubling the probe distance: O(log d) where d is
   the distance to the answer, which makes skewed intersections cheap. *)
let gallop a lo hi x =
  if lo >= hi || Buf.unsafe_get a lo >= x then lo
  else begin
    let step = ref 1 in
    let prev = ref lo in
    let cur = ref (lo + 1) in
    while !cur < hi && Buf.unsafe_get a !cur < x do
      prev := !cur;
      step := !step * 2;
      cur := min hi (!cur + !step)
    done;
    lower_bound a (!prev + 1) (min !cur hi) x
  end

(* ------------------------------------------------------------------ *)
(* Pairwise intersection: scalar OCaml fallback + SIMD dispatch        *)
(* ------------------------------------------------------------------ *)

let intersect2_tandem out a alo ahi b blo bhi =
  let i = ref alo and j = ref blo in
  while !i < ahi && !j < bhi do
    let x = Buf.unsafe_get a !i and y = Buf.unsafe_get b !j in
    if x < y then incr i
    else if y < x then incr j
    else begin
      Int_vec.push out x;
      incr i;
      incr j
    end
  done

(* When |b| >> |a|, iterate over a and gallop in b. *)
let intersect2_gallop out a alo ahi b blo bhi =
  let j = ref blo in
  let i = ref alo in
  while !i < ahi && !j < bhi do
    let x = Buf.unsafe_get a !i in
    j := gallop b !j bhi x;
    if !j < bhi && Buf.unsafe_get b !j = x then begin
      Int_vec.push out x;
      incr j
    end;
    incr i
  done

let gallop_threshold = 16

let intersect2_scalar out a alo ahi b blo bhi =
  let la = ahi - alo and lb = bhi - blo in
  if la = 0 || lb = 0 then ()
  else if lb > la * gallop_threshold then intersect2_gallop out a alo ahi b blo bhi
  else if la > lb * gallop_threshold then intersect2_gallop out b blo bhi a alo ahi
  else intersect2_tandem out a alo ahi b blo bhi

(* The vectorized kernels use unconditional full-width stores: reserve
   min(|a|, |b|) for results plus 8 lanes of scratch slack. *)
let simd_slack = 8

let intersect2_simd out a alo ahi b blo bhi =
  let la = ahi - alo and lb = bhi - blo in
  if la = 0 || lb = 0 then ()
  else begin
    let pos = Int_vec.length out in
    Int_vec.ensure out (pos + min la lb + simd_slack);
    let o = Int_vec.big out in
    let n =
      match (a, b) with
      | Buf.I32 a32, Buf.I32 b32 -> c_intersect_i32_i32 a32 alo ahi b32 blo bhi o pos
      | Buf.I64 a64, Buf.I32 b32 -> c_intersect_i64_i32 a64 alo ahi b32 blo bhi o pos
      | Buf.I32 a32, Buf.I64 b64 -> c_intersect_i64_i32 b64 blo bhi a32 alo ahi o pos
      | Buf.I64 a64, Buf.I64 b64 -> c_intersect_i64_i64 a64 alo ahi b64 blo bhi o pos
    in
    Int_vec.unsafe_set_len out n
  end

let intersect2 out a alo ahi b blo bhi =
  if !use_simd then intersect2_simd out a alo ahi b blo bhi
  else intersect2_scalar out a alo ahi b blo bhi

let count_intersect2 a alo ahi b blo bhi =
  let out = Int_vec.create ~capacity:64 () in
  intersect2 out a alo ahi b blo bhi;
  Int_vec.length out

(* ------------------------------------------------------------------ *)
(* Multiway intersection                                               *)
(* ------------------------------------------------------------------ *)

let intersect ?scratch2 out (slices : slice array) ~scratch =
  match Array.length slices with
  | 0 -> ()
  | 1 ->
      let a, lo, hi = slices.(0) in
      Int_vec.push_buf out a lo hi
  | n ->
      let order = Array.init n (fun i -> i) in
      Array.sort (fun i j -> compare (slice_len slices.(i)) (slice_len slices.(j))) order;
      let a0, lo0, hi0 = slices.(order.(0)) in
      let a1, lo1, hi1 = slices.(order.(1)) in
      if n = 2 then intersect2 out a0 lo0 hi0 a1 lo1 hi1
      else begin
        (* Iteratively narrow a running result, ping-ponging between the two
           scratch buffers so no per-call allocation happens. n = 3 needs only
           one buffer; the second is touched — and, absent [scratch2],
           allocated — only from four slices up. *)
        let cur = scratch in
        Int_vec.clear cur;
        intersect2 cur a0 lo0 hi0 a1 lo1 hi1;
        let curr = ref cur in
        if n > 3 then begin
          let tmp =
            match scratch2 with
            | Some v -> v
            | None -> Int_vec.create ~capacity:(Int_vec.length cur) ()
          in
          let next = ref tmp in
          for k = 2 to n - 2 do
            let b, blo, bhi = slices.(order.(k)) in
            Int_vec.clear !next;
            intersect2 !next (Int_vec.buf !curr) 0 (Int_vec.length !curr) b blo bhi;
            let t = !curr in
            curr := !next;
            next := t
          done
        end;
        let b, blo, bhi = slices.(order.(n - 1)) in
        intersect2 out (Int_vec.buf !curr) 0 (Int_vec.length !curr) b blo bhi
      end

let leapfrog out (slices : slice array) =
  let k = Array.length slices in
  if k = 0 then ()
  else if k = 1 then begin
    let a, lo, hi = slices.(0) in
    Int_vec.push_buf out a lo hi
  end
  else begin
    (* Current cursor per iterator; none may start empty. *)
    let pos = Array.make k 0 in
    let nonempty = ref true in
    for i = 0 to k - 1 do
      let _, lo, hi = slices.(i) in
      pos.(i) <- lo;
      if lo >= hi then nonempty := false
    done;
    if !nonempty then begin
      (* Sort iterators by first key so neighbours differ the most; then
         round-robin: each iterator seeks to >= the previous one's key. *)
      let order = Array.init k (fun i -> i) in
      Array.sort
        (fun i j ->
          let a, lo, _ = slices.(i) and b, mo, _ = slices.(j) in
          compare (Buf.get a lo) (Buf.get b mo))
        order;
      let key i = let a, _, _ = slices.(i) in Buf.unsafe_get a pos.(i) in
      let p = ref 0 in
      (* Largest first key = key of the last iterator in sorted order. *)
      let max_key = ref (key order.(k - 1)) in
      let exception Done in
      (try
         while true do
           let it = order.(!p) in
           let a, _, hi = slices.(it) in
           if key it = !max_key then begin
             (* All k iterators agree. *)
             Int_vec.push out !max_key;
             pos.(it) <- pos.(it) + 1;
             if pos.(it) >= hi then raise Done;
             max_key := Buf.unsafe_get a pos.(it);
             p := (!p + 1) mod k
           end
           else begin
             pos.(it) <- gallop a pos.(it) hi !max_key;
             if pos.(it) >= hi then raise Done;
             max_key := Buf.unsafe_get a pos.(it);
             p := (!p + 1) mod k
           end
         done
       with Done -> ())
    end
  end

let is_sorted_strict a lo hi =
  let ok = ref true in
  for i = lo + 1 to hi - 1 do
    if Buf.get a (i - 1) >= Buf.get a i then ok := false
  done;
  !ok
