module Bitset = Gf_util.Bitset
module Query = Gf_query.Query
module Graph = Gf_graph.Graph

type descriptor = { pos : int; dir : Graph.direction; elabel : int }

type t =
  | Scan of { edge : Query.edge; slabel : int; dlabel : int; vars : int array }
  | Extend of {
      child : t;
      target : int;
      target_label : int;
      descriptors : descriptor array;
      vars : int array;
    }
  | Hash_join of {
      build : t;
      probe : t;
      key : int array;
      build_key_pos : int array;
      probe_key_pos : int array;
      build_extra_pos : int array;
      vars : int array;
    }

let vars = function
  | Scan { vars; _ } | Extend { vars; _ } | Hash_join { vars; _ } -> vars

let var_set p = Array.fold_left (fun s v -> Bitset.add v s) Bitset.empty (vars p)

let scan q (e : Query.edge) =
  let between =
    Array.to_list q.Query.edges
    |> List.filter (fun (e' : Query.edge) ->
           (e'.src = e.src && e'.dst = e.dst) || (e'.src = e.dst && e'.dst = e.src))
  in
  if List.length between <> 1 then
    invalid_arg "Plan.scan: query has parallel/anti-parallel edges between the scanned pair";
  Scan
    {
      edge = e;
      slabel = Query.vlabel q e.src;
      dlabel = Query.vlabel q e.dst;
      vars = [| e.src; e.dst |];
    }

let position schema v =
  let rec go i =
    if i >= Array.length schema then raise Not_found
    else if schema.(i) = v then i
    else go (i + 1)
  in
  go 0

let extend q child target =
  let cvars = vars child in
  if Array.exists (( = ) target) cvars then invalid_arg "Plan.extend: target already bound";
  let descriptors =
    Array.to_list q.Query.edges
    |> List.filter_map (fun (e : Query.edge) ->
           if e.dst = target && Array.exists (( = ) e.src) cvars then
             Some { pos = position cvars e.src; dir = Graph.Fwd; elabel = e.label }
           else if e.src = target && Array.exists (( = ) e.dst) cvars then
             Some { pos = position cvars e.dst; dir = Graph.Bwd; elabel = e.label }
           else None)
    |> Array.of_list
  in
  if Array.length descriptors = 0 then
    invalid_arg "Plan.extend: target not adjacent to the sub-plan";
  Extend
    {
      child;
      target;
      target_label = Query.vlabel q target;
      descriptors;
      vars = Array.append cvars [| target |];
    }

let hash_join q build probe =
  let bset = var_set build and pset = var_set probe in
  let shared = Bitset.inter bset pset in
  if shared = Bitset.empty then invalid_arg "Plan.hash_join: disjoint children";
  let union = Bitset.union bset pset in
  (* Every induced edge of q on the union must be covered by a child
     (otherwise the join would silently drop a predicate). *)
  let covered (e : Query.edge) set = Bitset.mem e.src set && Bitset.mem e.dst set in
  List.iter
    (fun e ->
      if not (covered e bset || covered e pset) then
        invalid_arg "Plan.hash_join: uncovered query edge across the join")
    (Query.edges_within q union);
  let bvars = vars build and pvars = vars probe in
  let key = Bitset.to_array shared in
  let build_key_pos = Array.map (position bvars) key in
  let probe_key_pos = Array.map (position pvars) key in
  let build_extra =
    Array.to_list bvars |> List.filter (fun v -> not (Bitset.mem v shared)) |> Array.of_list
  in
  let build_extra_pos = Array.map (position bvars) build_extra in
  Hash_join
    {
      build;
      probe;
      key;
      build_key_pos;
      probe_key_pos;
      build_extra_pos;
      vars = Array.append pvars build_extra;
    }

let wco q order =
  let n = Array.length order in
  if n < 2 then invalid_arg "Plan.wco: need at least two vertices";
  let first =
    Array.to_list q.Query.edges
    |> List.find_opt (fun (e : Query.edge) ->
           (e.src = order.(0) && e.dst = order.(1)) || (e.src = order.(1) && e.dst = order.(0)))
  in
  match first with
  | None -> invalid_arg "Plan.wco: first two vertices are not adjacent"
  | Some e ->
      let plan = ref (scan q e) in
      for k = 2 to n - 1 do
        plan := extend q !plan order.(k)
      done;
      !plan

let rec num_ei_operators = function
  | Scan _ -> 0
  | Extend { child; _ } -> 1 + num_ei_operators child
  | Hash_join { build; probe; _ } -> num_ei_operators build + num_ei_operators probe

let rec max_ei_chain p =
  let rec chain_at = function
    | Extend { child; _ } -> 1 + chain_at child
    | Scan _ | Hash_join _ -> 0
  in
  match p with
  | Scan _ -> 0
  | Extend { child; _ } -> max (chain_at p) (max_ei_chain child)
  | Hash_join { build; probe; _ } -> max (max_ei_chain build) (max_ei_chain probe)

let operators p =
  let acc = ref [] in
  let rec go depth node =
    acc := (node, depth) :: !acc;
    match node with
    | Scan _ -> ()
    | Extend { child; _ } -> go (depth + 1) child
    | Hash_join { build; probe; _ } ->
        go (depth + 1) build;
        go (depth + 1) probe
  in
  go 0 p;
  Array.of_list (List.rev !acc)

let op_label = function
  | Scan { edge; _ } -> Printf.sprintf "SCAN a%d->a%d" (edge.src + 1) (edge.dst + 1)
  | Extend { child; target; descriptors; _ } ->
      let cvars = vars child in
      Printf.sprintf "E/I a%d <- %s" (target + 1)
        (String.concat ","
           (Array.to_list descriptors
           |> List.map (fun d -> Printf.sprintf "a%d" (cvars.(d.pos) + 1))))
  | Hash_join { key; _ } ->
      Printf.sprintf "HASH-JOIN {%s}"
        (String.concat ","
           (Array.to_list key |> List.map (fun v -> Printf.sprintf "a%d" (v + 1))))

let dir_str = function Graph.Fwd -> "f" | Graph.Bwd -> "b"

let rec signature = function
  | Scan { edge; _ } -> Printf.sprintf "S(%d>%d@%d)" edge.src edge.dst edge.label
  | Extend { child; target; descriptors; _ } ->
      let cvars = vars child in
      let ds =
        Array.to_list descriptors
        |> List.map (fun d -> Printf.sprintf "%d%s%d" cvars.(d.pos) (dir_str d.dir) d.elabel)
        |> List.sort compare
        |> String.concat ","
      in
      Printf.sprintf "E(%s;%d;[%s])" (signature child) target ds
  | Hash_join { build; probe; key; _ } ->
      let ks = Array.to_list key |> List.map string_of_int |> String.concat "," in
      Printf.sprintf "J(%s;%s;[%s])" (signature build) (signature probe) ks

let rec pp fmt = function
  | Scan { edge; _ } ->
      Format.fprintf fmt "SCAN a%d->a%d" (edge.src + 1) (edge.dst + 1)
  | Extend { child; target; descriptors; _ } ->
      let cvars = vars child in
      Format.fprintf fmt "@[<v 0>E/I a%d <- {%s}@,  %a@]" (target + 1)
        (String.concat ", "
           (Array.to_list descriptors
           |> List.map (fun d ->
                  Printf.sprintf "a%d.%s@%d" (cvars.(d.pos) + 1)
                    (match d.dir with Graph.Fwd -> "fwd" | Graph.Bwd -> "bwd")
                    d.elabel)))
        pp child
  | Hash_join { build; probe; key; _ } ->
      Format.fprintf fmt "@[<v 0>HASH-JOIN on {%s}@,  build: %a@,  probe: %a@]"
        (String.concat ", " (Array.to_list key |> List.map (fun v -> Printf.sprintf "a%d" (v + 1))))
        pp build pp probe

let to_string p = Format.asprintf "%a" pp p

let to_dot p =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph plan {\n  node [shape=box, fontname=\"monospace\"];\n";
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "n%d" !counter
  in
  let var_list vs =
    String.concat " " (Array.to_list vs |> List.map (fun v -> Printf.sprintf "a%d" (v + 1)))
  in
  let rec go node =
    let id = fresh () in
    (match node with
    | Scan { edge; _ } ->
        Buffer.add_string buf
          (Printf.sprintf "  %s [label=\"SCAN a%d->a%d\"];\n" id (edge.src + 1) (edge.dst + 1))
    | Extend { child; target; descriptors; vars = schema; _ } ->
        let cvars = vars child in
        let ds =
          Array.to_list descriptors
          |> List.map (fun d ->
                 Printf.sprintf "a%d.%s" (cvars.(d.pos) + 1) (dir_str d.dir))
          |> String.concat " & "
        in
        Buffer.add_string buf
          (Printf.sprintf "  %s [label=\"E/I a%d <- %s\\n{%s}\"];\n" id (target + 1) ds
             (var_list schema));
        let cid = go child in
        Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" id cid)
    | Hash_join { build; probe; key; vars = schema; _ } ->
        Buffer.add_string buf
          (Printf.sprintf "  %s [label=\"HASH-JOIN on {%s}\\n{%s}\"];\n" id
             (String.concat " "
                (Array.to_list key |> List.map (fun v -> Printf.sprintf "a%d" (v + 1))))
             (var_list schema));
        let bid = go build and pid = go probe in
        Buffer.add_string buf (Printf.sprintf "  %s -> %s [label=\"build\"];\n" id bid);
        Buffer.add_string buf (Printf.sprintf "  %s -> %s [label=\"probe\"];\n" id pid));
    id
  in
  ignore (go p);
  Buffer.add_string buf "}\n";
  Buffer.contents buf


