(** Query plans (Section 4.1): rooted operator trees over three operators.

    - [Scan] matches a single query edge (leaf);
    - [Extend] is the EXTEND/INTERSECT (E/I) operator: it adds one query
      vertex to each partial match by intersecting the adjacency lists named
      by its descriptors;
    - [Hash_join] joins two sub-plans on their common query vertices.

    Every node carries its output schema [vars]: the query vertices of each
    tuple column, in order. A chain of [Scan]+[Extend] nodes is a WCO plan;
    a tree of [Hash_join]s over [Scan]s is a BJ plan; anything else is a
    hybrid plan. *)

(** An adjacency list descriptor [(pos, dir, elabel)] (Section 3.1): during
    extension of tuple [t], the list
    [Graph.neighbours g dir t.(pos) ~elabel ~nlabel:target_label] joins the
    intersection. *)
type descriptor = {
  pos : int;  (** column index into the child's schema *)
  dir : Gf_graph.Graph.direction;
  elabel : int;
}

type t = private
  | Scan of { edge : Gf_query.Query.edge; slabel : int; dlabel : int; vars : int array }
  | Extend of {
      child : t;
      target : int;
      target_label : int;
      descriptors : descriptor array;
      vars : int array;
    }
  | Hash_join of {
      build : t;
      probe : t;
      key : int array;  (** shared query vertices *)
      build_key_pos : int array;
      probe_key_pos : int array;
      build_extra_pos : int array;  (** build columns not part of the key *)
      vars : int array;  (** probe schema followed by build-only vertices *)
    }

(** [vars p] is the output schema. *)
val vars : t -> int array

(** [var_set p] is the set of query vertices covered. *)
val var_set : t -> Gf_util.Bitset.t

(** [scan q e] matches query edge [e] of [q]. Raises [Invalid_argument] when
    [q] has another edge between the same pair of vertices (such queries
    need their first E/I to re-check the extra edge; our benchmark queries
    have at most one edge per ordered pair). *)
val scan : Gf_query.Query.t -> Gf_query.Query.edge -> t

(** [extend q child target] adds query vertex [target]; the descriptors are
    derived from every edge of [q] between [target] and the child's
    vertices. Raises [Invalid_argument] if there is no such edge or [target]
    is already covered. *)
val extend : Gf_query.Query.t -> t -> int -> t

(** [hash_join q build probe] joins on the common vertices. Raises
    [Invalid_argument] when the overlap is empty or when the union of the
    children's edge sets does not cover every edge of [q] induced on the
    union of their vertices (such a plan would silently drop a predicate). *)
val hash_join : Gf_query.Query.t -> t -> t -> t

(** [wco q order] is the WCO plan for the query vertex ordering [order]:
    a [Scan] of the edge between [order.(0)] and [order.(1)] followed by
    E/I extensions. [order] may cover a subset of [q]'s vertices, producing
    a sub-plan for the induced sub-query (every edge between a new vertex
    and the bound prefix becomes a descriptor, so induced semantics hold).
    Raises [Invalid_argument] when a prefix is disconnected. *)
val wco : Gf_query.Query.t -> int array -> t

(** [num_ei_operators p] counts E/I nodes; [max_ei_chain p] is the longest
    chain of consecutive E/I operators ending at the root of any sub-plan
    (the unit the adaptive evaluator rewrites). *)
val num_ei_operators : t -> int

val max_ei_chain : t -> int

(** [operators p] enumerates the plan's operator tree in preorder (node
    before children; a join's build side before its probe side) with each
    node's depth. The index into the returned array is the node's stable
    operator id — the profiling layer ({!Gf_exec.Profile}) and
    [explain_analyze] both key on it, so an operator keeps the same id
    across sequential, adaptive and parallel runs of the same plan value.
    Nodes are compared physically ([==]); plan values are immutable and
    shared, never rebuilt between planning and execution. *)
val operators : t -> (t * int) array

(** [op_label p] is a short one-line label for the root operator of [p]
    (e.g. ["SCAN a1->a2"], ["E/I a3 <- a1,a2"], ["HASH-JOIN {a2,a3}"]). *)
val op_label : t -> string

(** [signature p] is a canonical string of the operator tree, used to
    deduplicate plans that perform identical operations (e.g. the two
    orderings sharing a SCAN of the same edge). *)
val signature : t -> string

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [to_dot p] renders the operator tree as a Graphviz digraph (drawn with
    the query on top as in the paper's plan figures):
    [dune exec bin/gfq.exe -- plan ... --dot | dot -Tpng > plan.png]. *)
val to_dot : t -> string
