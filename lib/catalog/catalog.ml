module Graph = Gf_graph.Graph
module Query = Gf_query.Query
module Canon = Gf_query.Canon
module Bitset = Gf_util.Bitset
module Rng = Gf_util.Rng
module Int_vec = Gf_util.Int_vec
module Sorted = Gf_util.Sorted

type entry = {
  mu : float;
  sizes : ((int * Graph.direction * int) * float) list;
  total_size : float;
  samples : int;
}

type t = {
  g : Graph.t;
  h : int;
  z : int;
  rng : Rng.t;
  entries : (string, entry) Hashtbl.t;
  edge_lists : (int * int * int, (int * int) array) Hashtbl.t;
  edge_counts : (int * int * int, int) Hashtbl.t;
  avg_sizes : (Graph.direction * int * int * int, float) Hashtbl.t;
}

let create ?(h = 3) ?(z = 1000) ?(seed = 7) g =
  if h < 2 then invalid_arg "Catalog.create: h must be >= 2";
  if z < 1 then invalid_arg "Catalog.create: z must be >= 1";
  {
    g;
    h;
    z;
    rng = Rng.create seed;
    entries = Hashtbl.create 1024;
    edge_lists = Hashtbl.create 64;
    edge_counts = Hashtbl.create 64;
    avg_sizes = Hashtbl.create 64;
  }

let h t = t.h
let z t = t.z
let graph t = t.g
let num_entries t = Hashtbl.length t.entries

let edge_count t ~elabel ~slabel ~dlabel =
  let key = (elabel, slabel, dlabel) in
  match Hashtbl.find_opt t.edge_counts key with
  | Some c -> c
  | None ->
      let c = Graph.count_edges t.g ~elabel ~slabel ~dlabel in
      Hashtbl.replace t.edge_counts key c;
      c

let edge_list t ~elabel ~slabel ~dlabel =
  let key = (elabel, slabel, dlabel) in
  match Hashtbl.find_opt t.edge_lists key with
  | Some l -> l
  | None ->
      let acc = ref [] in
      Graph.iter_edges t.g ~elabel ~slabel ~dlabel (fun u v -> acc := (u, v) :: !acc);
      let arr = Array.of_list !acc in
      Hashtbl.replace t.edge_lists key arr;
      arr

let avg_partition_size t ~dir ~slabel ~elabel ~nlabel =
  let key = (dir, slabel, elabel, nlabel) in
  match Hashtbl.find_opt t.avg_sizes key with
  | Some s -> s
  | None ->
      let vs = Graph.vertices_with_label t.g slabel in
      let total =
        Array.fold_left
          (fun acc v -> acc + Graph.partition_size t.g dir v ~elabel ~nlabel)
          0 vs
      in
      let s =
        if Array.length vs = 0 then 0.0
        else float_of_int total /. float_of_int (Array.length vs)
      in
      Hashtbl.replace t.avg_sizes key s;
      s

(* Descriptors of the extension of [qk minus new_v] to [qk], in qk's own
   vertex ids: (source vertex, direction, edge label). *)
let extension_descriptors qk new_v =
  Array.to_list qk.Query.edges
  |> List.filter_map (fun (e : Query.edge) ->
         if e.dst = new_v then Some (e.src, Graph.Fwd, e.label)
         else if e.src = new_v then Some (e.dst, Graph.Bwd, e.label)
         else None)

let global_avg_sizes t qk new_v =
  let nl = Query.vlabel qk new_v in
  List.map
    (fun (src, dir, el) ->
      ((src, dir, el), avg_partition_size t ~dir ~slabel:(Query.vlabel qk src) ~elabel:el ~nlabel:nl))
    (extension_descriptors qk new_v)

(* Measure the extension statistics by sampling z edges at the SCAN and
   streaming the sub-query's matches through to the last extension
   (Section 5.1). Work is capped so that a single entry never costs more
   than a few hundred thousand operations. *)
let sample_entry t qk new_v =
  let k = Query.num_vertices qk in
  let descriptors = extension_descriptors qk new_v in
  assert (descriptors <> []);
  (* Choose a connected order ending with the new vertex. *)
  let order =
    let all = Query.connected_orders qk in
    match List.find_opt (fun o -> o.(k - 1) = new_v) all with
    | Some o -> o
    | None -> invalid_arg "Catalog: sub-query minus new vertex is disconnected"
  in
  let scan_edges =
    Array.to_list qk.Query.edges
    |> List.filter (fun (e : Query.edge) ->
           (e.src = order.(0) && e.dst = order.(1)) || (e.src = order.(1) && e.dst = order.(0)))
  in
  let scan_edge = List.hd scan_edges in
  let extra_scan_checks = List.tl scan_edges in
  let pool =
    edge_list t ~elabel:scan_edge.Query.label
      ~slabel:(Query.vlabel qk scan_edge.Query.src)
      ~dlabel:(Query.vlabel qk scan_edge.Query.dst)
  in
  if Array.length pool = 0 then
    { mu = 0.0; sizes = global_avg_sizes t qk new_v; total_size = 0.0; samples = 0 }
  else begin
    let npool = Array.length pool in
    let nsample = min t.z npool in
    let indices =
      if nsample = npool then Array.init npool (fun i -> i)
      else Rng.sample_without_replacement t.rng ~n:npool ~k:nsample
    in
    (* Position of each query vertex in the match tuple (= order index). *)
    let pos = Array.make k (-1) in
    Array.iteri (fun i v -> pos.(v) <- i) order;
    let step_descriptors depth =
      (* Descriptors for extending to order.(depth). *)
      let target = order.(depth) in
      Array.to_list qk.Query.edges
      |> List.filter_map (fun (e : Query.edge) ->
             if e.dst = target && pos.(e.src) < depth then Some (pos.(e.src), Graph.Fwd, e.label)
             else if e.src = target && pos.(e.dst) < depth then
               Some (pos.(e.dst), Graph.Bwd, e.label)
             else None)
      |> Array.of_list
    in
    let steps = Array.init k (fun d -> if d < 2 then [||] else step_descriptors d) in
    (* Accumulators for the final step. *)
    let measured = ref 0 in
    let mu_sum = ref 0.0 in
    let nd_final = Array.length steps.(k - 1) in
    let size_sums = Array.make nd_final 0.0 in
    let max_measure = max (4 * t.z) 4000 in
    let scratch = Int_vec.create () and result = Int_vec.create () in
    let tuple = Array.make k 0 in
    let final_target_label = Query.vlabel qk new_v in
    let exception Done in
    let rec extend depth =
      if !measured >= max_measure then raise Done;
      let target = order.(depth) in
      let target_label = Query.vlabel qk target in
      let ds = steps.(depth) in
      let slices =
        Array.map
          (fun (p, dir, el) ->
            Graph.neighbours t.g dir tuple.(p) ~elabel:el ~nlabel:target_label)
          ds
      in
      if depth = k - 1 then begin
        (* Measure: record each list's size and the extension count. *)
        incr measured;
        Array.iteri
          (fun i s -> size_sums.(i) <- size_sums.(i) +. float_of_int (Sorted.slice_len s))
          slices;
        Int_vec.clear result;
        Sorted.intersect result slices ~scratch;
        mu_sum := !mu_sum +. float_of_int (Int_vec.length result);
        ignore final_target_label
      end
      else begin
        Int_vec.clear result;
        Sorted.intersect result slices ~scratch;
        (* [result] is reused by recursive calls: copy it out first. *)
        let exts = Int_vec.to_array result in
        Array.iter
          (fun w ->
            tuple.(depth) <- w;
            extend (depth + 1))
          exts
      end
    in
    (try
       Array.iter
         (fun i ->
           let u, v = pool.(i) in
           let a, b = if scan_edge.Query.src = order.(0) then (u, v) else (v, u) in
           tuple.(0) <- a;
           tuple.(1) <- b;
           let ok =
             List.for_all
               (fun (e : Query.edge) ->
                 let s = if e.src = order.(0) then a else b in
                 let d = if e.dst = order.(0) then a else b in
                 Graph.has_edge t.g s d ~elabel:e.label)
               extra_scan_checks
           in
           if ok then if k = 2 then incr measured else extend 2)
         indices
     with Done -> ());
    if !measured = 0 then
      { mu = 0.0; sizes = global_avg_sizes t qk new_v; total_size = 0.0; samples = 0 }
    else begin
      let n = float_of_int !measured in
      (* Map descriptor statistics onto canonical vertex ids. *)
      let _, perm = Canon.code ~mark:new_v qk in
      let sizes =
        Array.to_list steps.(k - 1)
        |> List.mapi (fun i (p, dir, el) -> ((perm.(order.(p)), dir, el), size_sums.(i) /. n))
      in
      let total_size = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 sizes in
      { mu = !mu_sum /. n; sizes; total_size; samples = !measured }
    end
  end

let entry t qk ~new_vertex =
  let k = Query.num_vertices qk in
  if k > t.h + 1 then None
  else begin
    let code, _ = Canon.code ~mark:new_vertex qk in
    match Hashtbl.find_opt t.entries code with
    | Some e -> Some e
    | None ->
        let e = sample_entry t qk new_vertex in
        Hashtbl.replace t.entries code e;
        Some e
  end

(* Section 5.2 fallback: for oversize patterns, remove every (k - h - 1)-size
   subset of the old vertices that keeps the pattern valid, and take the
   minimum selectivity over the resulting catalogue entries. *)
let rec mu_estimate t qk ~new_vertex =
  match entry t qk ~new_vertex with
  | Some e -> e.mu
  | None ->
      let k = Query.num_vertices qk in
      let removable = Bitset.remove new_vertex (Bitset.full k) in
      let want_remove = k - (t.h + 1) in
      let candidates = ref [] in
      let rec choose picked count start =
        if count = want_remove then candidates := picked :: !candidates
        else
          for v = start to k - 1 do
            if Bitset.mem v removable then choose (Bitset.add v picked) (count + 1) (v + 1)
          done
      in
      choose Bitset.empty 0 0;
      let best = ref infinity in
      List.iter
        (fun rm ->
          let keep = Bitset.diff (Bitset.full k) rm in
          let sub, map = Query.induced qk keep in
          (* Position of the new vertex in the reduced pattern. *)
          let new_pos = ref (-1) in
          Array.iteri (fun i v -> if v = new_vertex then new_pos := i) map;
          if !new_pos >= 0 then begin
            let np = !new_pos in
            let old_part = Bitset.remove np (Bitset.full (Query.num_vertices sub)) in
            if
              Query.is_connected sub
              && Query.is_connected_subset sub old_part
              && extension_descriptors sub np <> []
            then begin
              let m = mu_estimate t sub ~new_vertex:np in
              if m < !best then best := m
            end
          end)
        !candidates;
      if !best < infinity then !best
      else
        (* No valid removal (heavily disconnected after removal): fall back
           to the least global average list size, a coarse upper bound. *)
        List.fold_left
          (fun acc (_, s) -> Float.min acc s)
          infinity
          (global_avg_sizes t qk new_vertex)
        |> fun x -> if x = infinity then 1.0 else x

let descriptor_size t qk ~new_vertex ~src ~dir ~elabel =
  let global () =
    avg_partition_size t ~dir ~slabel:(Query.vlabel qk src) ~elabel
      ~nlabel:(Query.vlabel qk new_vertex)
  in
  match entry t qk ~new_vertex with
  | None -> global ()
  | Some e ->
      if e.samples = 0 then global ()
      else begin
        let _, perm = Canon.code ~mark:new_vertex qk in
        match List.assoc_opt (perm.(src), dir, elabel) e.sizes with
        | Some s -> s
        | None -> global ()
      end

let estimate_cardinality t q =
  let n = Query.num_vertices q in
  let memo = Hashtbl.create 64 in
  let rec card s =
    match Hashtbl.find_opt memo s with
    | Some c -> c
    | None ->
        let c =
          if Bitset.cardinal s = 2 then begin
            match Query.edges_within q s with
            | [] -> 0.0
            | es ->
                (* With >1 edge between the pair the exact joint count is not
                   indexed; approximate with the most selective edge. *)
                List.fold_left
                  (fun acc (e : Query.edge) ->
                    Float.min acc
                      (float_of_int
                         (edge_count t ~elabel:e.label ~slabel:(Query.vlabel q e.src)
                            ~dlabel:(Query.vlabel q e.dst))))
                  infinity es
          end
          else begin
            let best = ref infinity in
            Bitset.iter
              (fun v ->
                let rest = Bitset.remove v s in
                if Query.is_connected_subset q rest then begin
                  let sub, map = Query.induced q s in
                  let vpos = ref (-1) in
                  Array.iteri (fun i ov -> if ov = v then vpos := i) map;
                  if extension_descriptors sub !vpos <> [] then begin
                    let est = card rest *. mu_estimate t sub ~new_vertex:!vpos in
                    if est < !best then best := est
                  end
                end)
              s;
            if !best < infinity then !best else 0.0
          end
        in
        Hashtbl.replace memo s c;
        c
  in
  card (Bitset.full n)

(* ---------- exhaustive construction (Tables 10-11) ---------- *)

let build_exhaustive t =
  let g = t.g in
  let nv = Graph.num_vlabels g and ne = Graph.num_elabels g in
  (* Level-2 patterns: one per (elabel, slabel, dlabel). *)
  let level2 =
    List.concat_map
      (fun el ->
        List.concat_map
          (fun sl ->
            List.map
              (fun dl ->
                Query.create ~num_vertices:2 ~vlabels:[| sl; dl |]
                  ~edges:[| { Query.src = 0; dst = 1; label = el } |]
                  ())
              (List.init nv (fun i -> i)))
          (List.init nv (fun i -> i)))
      (List.init ne (fun i -> i))
  in
  (* Connection options for the new vertex towards one existing vertex:
     nothing, or a single directed labeled edge either way. *)
  let conn_options = ref [ None ] in
  for el = ne - 1 downto 0 do
    conn_options := Some (`Out, el) :: Some (`In, el) :: !conn_options
  done;
  let conn_options = Array.of_list !conn_options in
  let extend_pattern (q : Query.t) =
    (* All ways to attach one new vertex. *)
    let j = Query.num_vertices q in
    let results = ref [] in
    let assignment = Array.make j None in
    let rec assign i any =
      if i = j then begin
        if any then
          for lv = 0 to nv - 1 do
            let new_edges =
              Array.to_list assignment
              |> List.mapi (fun src c ->
                     match c with
                     | None -> []
                     | Some (`Out, el) -> [ { Query.src; dst = j; label = el } ]
                     | Some (`In, el) -> [ { Query.src = j; dst = src; label = el } ])
              |> List.concat
            in
            let qk =
              Query.create ~num_vertices:(j + 1)
                ~vlabels:(Array.append q.Query.vlabels [| lv |])
                ~edges:(Array.append q.Query.edges (Array.of_list new_edges))
                ()
            in
            results := qk :: !results
          done
      end
      else
        Array.iter
          (fun c ->
            assignment.(i) <- c;
            assign (i + 1) (any || c <> None))
          conn_options
    in
    assign 0 false;
    !results
  in
  let seen_patterns = Hashtbl.create 256 in
  let dedup qs =
    List.filter
      (fun q ->
        let code, _ = Canon.code q in
        if Hashtbl.mem seen_patterns code then false
        else begin
          Hashtbl.replace seen_patterns code ();
          true
        end)
      qs
  in
  let level = ref (dedup level2) in
  for j = 2 to t.h do
    let next = ref [] in
    List.iter
      (fun q ->
        List.iter
          (fun qk ->
            (* Materialize the entry for this extension. *)
            ignore (entry t qk ~new_vertex:j);
            if j + 1 <= t.h then next := qk :: !next)
          (extend_pattern q))
      !level;
    level := dedup !next
  done;
  num_entries t

(* Crash-safe: temp sibling + rename ({!Gf_util.Atomic_file}). The v2
   format carries the entry count in the parameter line and a trailing
   [end] marker so [load_result] can tell a torn file from a complete
   one. *)
let save t path =
  Gf_util.Atomic_file.write path (fun oc ->
      Printf.fprintf oc "graphflow-catalog v2\n%d %d %d\n" t.h t.z
        (Hashtbl.length t.entries);
      Hashtbl.iter
        (fun code e ->
          Printf.fprintf oc "entry %s %.17g %.17g %d %d\n" code e.mu e.total_size e.samples
            (List.length e.sizes);
          List.iter
            (fun ((v, dir, el), s) ->
              Printf.fprintf oc "size %d %c %d %.17g\n" v
                (match dir with Graph.Fwd -> 'f' | Graph.Bwd -> 'b')
                el s)
            e.sizes)
        t.entries;
      Printf.fprintf oc "end\n")

type load_error = { path : string; line : int; kind : error_kind }

and error_kind =
  | Unreadable of string
  | Bad_header of string
  | Bad_params of string
  | Bad_token of string
  | Orphan_size
  | Size_count_mismatch of { expected : int; got : int }
  | Truncated of { expected_entries : int; got : int }

let kind_to_string = function
  | Unreadable msg -> "cannot read: " ^ msg
  | Bad_header h ->
      Printf.sprintf "bad header %S (expected \"graphflow-catalog v1|v2\")" h
  | Bad_params p -> Printf.sprintf "bad parameter line %S (expected \"h z [entries]\")" p
  | Bad_token tok -> Printf.sprintf "malformed token %S" tok
  | Orphan_size -> "size line without a preceding entry"
  | Size_count_mismatch { expected; got } ->
      Printf.sprintf "entry declares %d size lines, got %d (truncated?)" expected got
  | Truncated { expected_entries; got } ->
      Printf.sprintf
        "truncated file: expected %d entries and a trailing \"end\" marker, got %d"
        expected_entries got

let load_error_to_string e =
  if e.line > 0 then
    Printf.sprintf "Catalog.load %s, line %d: %s" e.path e.line (kind_to_string e.kind)
  else Printf.sprintf "Catalog.load %s: %s" e.path (kind_to_string e.kind)

let pp_load_error fmt e = Format.pp_print_string fmt (load_error_to_string e)

exception Err of load_error

let load_result g path =
  match open_in path with
  | exception Sys_error msg -> Error { path; line = 0; kind = Unreadable msg }
  | ic -> (
      let lineno = ref 0 in
      let fail kind = raise (Err { path; line = !lineno; kind }) in
      let int_of tok =
        match int_of_string_opt tok with Some i -> i | None -> fail (Bad_token tok)
      in
      let float_of tok =
        match float_of_string_opt tok with Some f -> f | None -> fail (Bad_token tok)
      in
      try
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            incr lineno;
            let header =
              try input_line ic with End_of_file -> fail (Bad_header "<empty file>")
            in
            let v2 =
              match header with
              | "graphflow-catalog v2" -> true
              | "graphflow-catalog v1" -> false
              | h -> fail (Bad_header h)
            in
            incr lineno;
            let params =
              try input_line ic
              with End_of_file -> fail (Bad_params "<end of file>")
            in
            let h, z, expected_entries =
              match (v2, String.split_on_char ' ' params) with
              | false, [ a; b ] -> (int_of a, int_of b, None)
              | true, [ a; b; c ] -> (int_of a, int_of b, Some (int_of c))
              | _ -> fail (Bad_params params)
            in
            let t =
              match create ~h ~z g with
              | t -> t
              | exception Invalid_argument msg -> fail (Bad_params msg)
            in
            (* (code, mu, total_size, samples, declared size count, sizes rev) *)
            let pending = ref None in
            let flush_pending () =
              match !pending with
              | Some (code, mu, total_size, samples, declared, sizes) ->
                  let got = List.length sizes in
                  if got <> declared then
                    fail (Size_count_mismatch { expected = declared; got });
                  Hashtbl.replace t.entries code
                    { mu; total_size; samples; sizes = List.rev sizes };
                  pending := None
              | None -> ()
            in
            let finished = ref false in
            (try
               while not !finished do
                 incr lineno;
                 let line = input_line ic in
                 match String.split_on_char ' ' line with
                 | [ "entry"; code; mu; total; samples; nsizes ] ->
                     flush_pending ();
                     pending :=
                       Some
                         ( code,
                           float_of mu,
                           float_of total,
                           int_of samples,
                           int_of nsizes,
                           [] )
                 | [ "size"; v; dir; el; s ] -> (
                     match !pending with
                     | None -> fail Orphan_size
                     | Some (code, mu, total, samples, declared, sizes) ->
                         let d =
                           match dir with
                           | "f" -> Graph.Fwd
                           | "b" -> Graph.Bwd
                           | _ -> fail (Bad_token dir)
                         in
                         pending :=
                           Some
                             ( code,
                               mu,
                               total,
                               samples,
                               declared,
                               ((int_of v, d, int_of el), float_of s) :: sizes ))
                 | [ "end" ] ->
                     flush_pending ();
                     finished := true
                 | [ "" ] -> ()
                 | _ -> fail (Bad_token line)
               done
             with End_of_file -> ());
            flush_pending ();
            (match expected_entries with
            | Some n ->
                let got = Hashtbl.length t.entries in
                if (not !finished) || got <> n then begin
                  lineno := 0;
                  fail (Truncated { expected_entries = n; got })
                end
            | None -> ());
            Ok t)
      with Err e -> Error e)

let load g path =
  match load_result g path with
  | Ok t -> t
  | Error e -> failwith (load_error_to_string e)

let q_error ~estimate ~truth =
  let e = Float.max 1.0 estimate and r = Float.max 1.0 truth in
  Float.max (e /. r) (r /. e)

let pp_entry fmt e =
  Format.fprintf fmt "mu=%.3f samples=%d sizes=[%s]" e.mu e.samples
    (String.concat "; "
       (List.map
          (fun ((v, dir, el), s) ->
            Printf.sprintf "%d.%s@%d:%.1f" v
              (match dir with Graph.Fwd -> "fwd" | Graph.Bwd -> "bwd")
              el s)
          e.sizes))
