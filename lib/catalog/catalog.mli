(** The subgraph catalogue (Section 5).

    Each entry describes extending a sub-query [Q_{k-1}] by one query vertex
    into [Q_k] through a set of adjacency list descriptors [A], and stores:

    - [mu]: the average number of [Q_k] matches produced per [Q_{k-1}]
      match (selectivity), and
    - [|A|]: the average size of each intersected adjacency list.

    Entries are keyed by the canonical code of [Q_k] with the new vertex
    distinguished, so isomorphic extensions share one entry. Statistics come
    from sampling: [z] random edges seed a WCO plan of [Q_k] whose last E/I
    measures list sizes and extension counts (Section 5.1).

    Entries exist only for extensions of at-most-[h]-vertex sub-queries;
    larger patterns are estimated by the minimum-over-removals fallback of
    Section 5.2, implemented by [mu_estimate].

    The default construction is lazy — entries materialize on first lookup —
    so a catalogue is cheap to create and pay-as-you-go for a workload.
    [build_exhaustive] eagerly enumerates every pattern (the paper's
    construction, measured in Tables 10-11). *)

type t

(** [create ?h ?z ?seed g] is an empty catalogue over [g]. Defaults match
    the paper: [h = 3], [z = 1000]. *)
val create : ?h:int -> ?z:int -> ?seed:int -> Gf_graph.Graph.t -> t

val h : t -> int
val z : t -> int
val graph : t -> Gf_graph.Graph.t

(** Statistics of one materialized entry. [sizes] maps each descriptor —
    identified by (canonical source-vertex id, direction, edge label) — to
    its average list size. [samples] is the number of measured [Q_{k-1}]
    matches (0 when the sampler found none, in which case [mu] is 0 and
    sizes fall back to global per-label averages). *)
type entry = {
  mu : float;
  sizes : ((int * Gf_graph.Graph.direction * int) * float) list;
  total_size : float;
  samples : int;
}

(** [entry cat qk ~new_vertex] is the entry for extending
    [qk minus new_vertex] to [qk]. [None] when [qk] has more than [h + 1]
    vertices (the catalogue does not store such patterns). Requires [qk]
    connected and [qk minus new_vertex] connected and nonempty. *)
val entry : t -> Gf_query.Query.t -> new_vertex:int -> entry option

(** [mu_estimate cat qk ~new_vertex] estimates the selectivity of the
    extension, applying the Section 5.2 fallback (minimum over removals of
    vertex subsets) when the pattern exceeds [h + 1] vertices. *)
val mu_estimate : t -> Gf_query.Query.t -> new_vertex:int -> float

(** [descriptor_size cat qk ~new_vertex ~src ~dir ~elabel] estimates the
    average size of the descriptor's adjacency list in the context of the
    extension, falling back to global label averages for oversize
    patterns. *)
val descriptor_size :
  t ->
  Gf_query.Query.t ->
  new_vertex:int ->
  src:int ->
  dir:Gf_graph.Graph.direction ->
  elabel:int ->
  float

(** [avg_partition_size cat ~dir ~slabel ~elabel ~nlabel] is the global
    average adjacency-partition size: the mean, over vertices labeled
    [slabel], of the partition for ([elabel], [nlabel]) in direction
    [dir]. *)
val avg_partition_size :
  t -> dir:Gf_graph.Graph.direction -> slabel:int -> elabel:int -> nlabel:int -> float

(** [edge_count cat ~elabel ~slabel ~dlabel] is the exact number of matching
    data edges (memoized) — the paper's initialization of 2-vertex
    sub-query cardinalities. *)
val edge_count : t -> elabel:int -> slabel:int -> dlabel:int -> int

(** [estimate_cardinality cat q] estimates [|Q|] as a product of [mu]s along
    extension sequences, minimized over the choice of extension order
    (dynamic program over connected vertex subsets). *)
val estimate_cardinality : t -> Gf_query.Query.t -> float

(** [build_exhaustive cat] eagerly materializes every entry extending a
    connected pattern of 2..h vertices to h+1 vertices, enumerating all
    shapes and label assignments (at most one edge per ordered vertex pair,
    no anti-parallel pairs — matching the paper's entry counts). Returns the
    number of entries. *)
val build_exhaustive : t -> int

val num_entries : t -> int

(** [q_error ~estimate ~truth] is
    [max (estimate / truth) (truth / estimate)] with both clamped to at
    least 1, the metric of Tables 10-11. *)
val q_error : estimate:float -> truth:float -> float

val pp_entry : Format.formatter -> entry -> unit

(** [save cat path] persists the materialized entries (lazy entries computed
    so far, or everything after [build_exhaustive]) so a later session can
    skip sampling. The write is crash-safe: bytes go to a [path.tmp.<pid>]
    sibling renamed over [path] only once fully written
    ({!Gf_util.Atomic_file}), so a crash mid-save leaves the previous file
    intact. The file carries the entry count and a trailing [end] marker so
    {!load_result} can detect torn files. *)
val save : t -> string -> unit

(** What went wrong loading a catalogue file, and where. [line] is 1-based;
    0 when the error is not tied to a specific line. Mirrors
    {!Gf_graph.Graph_io.load_error}. *)
type load_error = { path : string; line : int; kind : error_kind }

and error_kind =
  | Unreadable of string  (** missing or unreadable file (OS message) *)
  | Bad_header of string
  | Bad_params of string  (** malformed [h z [entries]] parameter line *)
  | Bad_token of string  (** non-numeric token or malformed line *)
  | Orphan_size  (** a [size] line with no preceding [entry] *)
  | Size_count_mismatch of { expected : int; got : int }
      (** an entry declared more size lines than it carried — the signature
          of a file cut mid-entry *)
  | Truncated of { expected_entries : int; got : int }
      (** a v2 file missing entries or its trailing [end] marker *)

val load_error_to_string : load_error -> string
val pp_load_error : Format.formatter -> load_error -> unit

(** [load_result g path] restores a catalogue saved by [save], reporting
    missing, truncated, and malformed files as a structured {!load_error}.
    Accepts both the current v2 format and legacy v1 files (which carry no
    entry count, so torn v1 files are detected only when cut mid-entry). The
    graph must be the one the statistics were sampled from (the file records
    only parameters and entries). *)
val load_result : Gf_graph.Graph.t -> string -> (t, load_error) result

(** [load g path] is {!load_result} raising [Failure] with the formatted
    message on error (the original API, kept for convenience). *)
val load : Gf_graph.Graph.t -> string -> t
